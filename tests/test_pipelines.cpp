//===- tests/test_pipelines.cpp - Application structure tests -------------------===//
//
// Each benchmark application must have the kernel-DAG structure the paper
// describes (Section V-B), with the right operator kinds, image sizes, and
// filter semantics.
//
//===----------------------------------------------------------------------===//

#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/CostInfo.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kf;

namespace {

KernelId kernelByName(const Program &P, const std::string &Name) {
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (P.kernel(Id).Name == Name)
      return Id;
  ADD_FAILURE() << "kernel not found: " << Name;
  return 0;
}

TEST(Registry, SixApplicationsWithPaperSizes) {
  const std::vector<PipelineSpec> &Specs = paperPipelines();
  ASSERT_EQ(Specs.size(), 6u);
  for (const PipelineSpec &Spec : Specs) {
    if (Spec.Name == "night") {
      EXPECT_EQ(Spec.Width, 1920);
      EXPECT_EQ(Spec.Height, 1200);
    } else {
      EXPECT_EQ(Spec.Width, 2048);
      EXPECT_EQ(Spec.Height, 2048);
    }
  }
  EXPECT_NE(findPipeline("harris"), nullptr);
  EXPECT_EQ(findPipeline("does-not-exist"), nullptr);
}

TEST(HarrisPipeline, NineKernelsTenEdges) {
  Program P = makeHarris(64, 64);
  EXPECT_EQ(P.numKernels(), 9u);
  EXPECT_EQ(P.buildKernelDag().numEdges(), 10u);
  // Operator kinds per the paper: dx/dy/gx/gy/gxy local, rest point.
  for (const char *Name : {"dx", "dy", "gx", "gy", "gxy"})
    EXPECT_EQ(P.kernel(kernelByName(P, Name)).Kind, OperatorKind::Local)
        << Name;
  for (const char *Name : {"sx", "sy", "sxy", "hc"})
    EXPECT_EQ(P.kernel(kernelByName(P, Name)).Kind, OperatorKind::Point)
        << Name;
}

TEST(HarrisPipeline, CornerResponsePeaksAtCorner) {
  // A bright square in the middle of a dark image: the response magnitude
  // at the square's corner must exceed the response at flat regions.
  Program P = makeHarris(32, 32);
  std::vector<Image> Pool = makeImagePool(P);
  Image In(32, 32, 1, 0.0f);
  for (int Y = 10; Y != 22; ++Y)
    for (int X = 10; X != 22; ++X)
      In.at(X, Y) = 1.0f;
  Pool[0] = In;
  runUnfused(P, Pool);
  const Image &Hc = Pool[9];
  double CornerMag = std::abs(Hc.at(10, 10));
  double FlatMag = std::abs(Hc.at(4, 4));
  double EdgeMidMag = std::abs(Hc.at(16, 10));
  EXPECT_GT(CornerMag, FlatMag);
  EXPECT_GT(CornerMag, 1e-6);
  // Edges score lower than corners for the Harris measure.
  EXPECT_GT(CornerMag, EdgeMidMag);
}

TEST(SobelPipeline, DetectsVerticalEdge) {
  Program P = makeSobel(16, 16);
  std::vector<Image> Pool = makeImagePool(P);
  Image In(16, 16, 1, 0.0f);
  for (int Y = 0; Y != 16; ++Y)
    for (int X = 8; X != 16; ++X)
      In.at(X, Y) = 1.0f;
  Pool[0] = In;
  runUnfused(P, Pool);
  const Image &Mag = Pool[3];
  EXPECT_GT(Mag.at(8, 8), 0.1f);  // On the edge.
  EXPECT_LT(Mag.at(3, 8), 1e-6f); // Flat region.
}

TEST(UnsharpPipeline, SharpensEdges) {
  Program P = makeUnsharp(16, 16);
  std::vector<Image> Pool = makeImagePool(P);
  Image In(16, 16, 1, 0.0f);
  for (int Y = 0; Y != 16; ++Y)
    for (int X = 8; X != 16; ++X)
      In.at(X, Y) = 1.0f;
  Pool[0] = In;
  runUnfused(P, Pool);
  const Image &Out = Pool[4];
  // Overshoot on the bright side of the edge, undershoot on the dark side.
  EXPECT_GT(Out.at(8, 8), 1.0f);
  EXPECT_LE(Out.at(7, 8), 0.0f + 1e-6f);
  // Flat regions are unchanged.
  EXPECT_NEAR(Out.at(2, 8), 0.0f, 1e-6);
  EXPECT_NEAR(Out.at(14, 8), 1.0f, 1e-5);
}

TEST(UnsharpPipeline, AllFourKernelsReadTheSource) {
  // The Figure 2b shape that defeats basic fusion.
  Program P = makeUnsharp(32, 32);
  unsigned ReadersOfInput = P.consumersOf(0).size();
  EXPECT_EQ(ReadersOfInput, 4u);
}

TEST(ShiTomasiPipeline, ResponseIsMinEigenvalue) {
  // For the structure matrix, min-eigenvalue <= harris response ... just
  // validate the response is finite and non-positive-definite regions
  // score lower than corners.
  Program P = makeShiTomasi(32, 32);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeCheckerboardImage(32, 32, 8, 0.0f, 1.0f);
  runUnfused(P, Pool);
  for (float V : Pool[9].data())
    ASSERT_TRUE(std::isfinite(V));
}

TEST(EnhancementPipeline, GeometricMeanSmoothsAndGammaBrightens) {
  Program P = makeEnhancement(16, 16);
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(5);
  Pool[0] = makeRandomImage(16, 16, 1, Gen, 0.2f, 0.8f);
  runUnfused(P, Pool);
  // Geometric mean output lies within the input range.
  for (float V : Pool[1].data()) {
    EXPECT_GT(V, 0.15f);
    EXPECT_LT(V, 0.85f);
  }
  // Gamma 0.8 brightens mid-tones.
  for (size_t I = 0; I != Pool[2].data().size(); ++I)
    EXPECT_GE(Pool[2].data()[I], Pool[1].data()[I] - 1e-6f);
}

TEST(NightPipeline, RgbShapeAndKernelKinds) {
  Program P = makeNight(32, 32);
  EXPECT_EQ(P.numKernels(), 3u);
  EXPECT_EQ(P.image(0).Channels, 3);
  EXPECT_EQ(P.image(3).Channels, 3);
  EXPECT_EQ(P.kernel(0).Kind, OperatorKind::Local);
  EXPECT_EQ(P.kernel(1).Kind, OperatorKind::Local);
  EXPECT_EQ(P.kernel(2).Kind, OperatorKind::Point);
  // The atrous masks: 3x3 then 5x5 as in the paper.
  KernelCost A0 = analyzeKernelCost(P, 0);
  KernelCost A1 = analyzeKernelCost(P, 1);
  EXPECT_EQ(A0.WindowWidth, 3);
  EXPECT_EQ(A1.WindowWidth, 5);
}

TEST(NightPipeline, BilateralPreservesEdgesBetterThanItsBlur) {
  // The range kernel suppresses smoothing across strong edges: after the
  // bilateral stage an edge must remain sharper than a plain binomial
  // blur would leave it.
  Program P = makeNight(16, 16);
  std::vector<Image> Pool = makeImagePool(P);
  Image In(16, 16, 3, 0.0f);
  for (int Y = 0; Y != 16; ++Y)
    for (int X = 8; X != 16; ++X)
      for (int Ch = 0; Ch != 3; ++Ch)
        In.at(X, Y, Ch) = 1.0f;
  Pool[0] = In;
  runUnfused(P, Pool);
  const Image &A0 = Pool[1];
  // At the dark side of the edge the bilateral output stays near 0
  // (a plain binomial would pull it to ~0.25).
  EXPECT_LT(A0.at(7, 8, 0), 0.1f);
  EXPECT_GT(A0.at(8, 8, 0), 0.9f);
}

TEST(NightPipeline, ScotoOutputStaysInDisplayRange) {
  Program P = makeNight(16, 16);
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(11);
  Pool[0] = makeRandomImage(16, 16, 3, Gen, 0.0f, 1.0f);
  runUnfused(P, Pool);
  for (float V : Pool[3].data()) {
    EXPECT_GE(V, 0.0f);
    EXPECT_LE(V, 1.3f);
  }
}

TEST(Masks, AtrousHasHoles) {
  Mask M = atrous5();
  EXPECT_EQ(M.Width, 5);
  // Holes: odd offsets are zero.
  EXPECT_FLOAT_EQ(M.at(-1, 0), 0.0f);
  EXPECT_FLOAT_EQ(M.at(0, 1), 0.0f);
  EXPECT_GT(M.at(0, 0), 0.0f);
  EXPECT_GT(M.at(2, 2), 0.0f);
}

TEST(Masks, SobelMasksAntisymmetric) {
  Mask X = sobelX3();
  Mask Y = sobelY3();
  for (int D = -1; D <= 1; ++D) {
    EXPECT_FLOAT_EQ(X.at(-1, D), -X.at(1, D));
    EXPECT_FLOAT_EQ(Y.at(D, -1), -Y.at(D, 1));
    EXPECT_FLOAT_EQ(X.at(0, D), 0.0f);
  }
}

TEST(Masks, BinomialNormalizedSumsToOne) {
  Mask M = binomial3Normalized();
  float Sum = 0.0f;
  for (float W : M.Weights)
    Sum += W;
  EXPECT_NEAR(Sum, 1.0f, 1e-6);
}

TEST(PointChain, HasRequestedArithmeticLoad) {
  Program P = makePointChain(16, 16, 3, 10);
  EXPECT_EQ(P.numKernels(), 3u);
  KernelCost Cost = analyzeKernelCost(P, 0);
  // 10 arithmetic nodes plus the store.
  EXPECT_EQ(Cost.NumAlu, 11);
}

} // namespace
