//===- tests/test_fusion_partitioners.cpp - Algorithm 1 & friends -------------===//
//
// Validates the recursive min-cut fusion algorithm (Algorithm 1) against
// the paper's Figure 3 walk-through, the basic pairwise fusion of prior
// work against the behaviour Table I describes per application, and the
// greedy/exhaustive partitioners on small graphs.
//
//===----------------------------------------------------------------------===//

#include "fusion/BasicFusion.h"
#include "fusion/ExhaustivePartitioner.h"
#include "fusion/GreedyPartitioner.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

#include <set>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.GlobalAccessCycles = 400.0;
  HW.SharedAccessCycles = 4.0;
  HW.AluCost = 4.0;
  HW.SfuCost = 16.0;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

/// The set-of-name-sets view of a partition, for readable comparisons.
std::set<std::set<std::string>> namedBlocks(const Program &P,
                                            const Partition &S) {
  std::set<std::set<std::string>> Result;
  for (const PartitionBlock &B : S.Blocks) {
    std::set<std::string> Names;
    for (KernelId Id : B.Kernels)
      Names.insert(P.kernel(Id).Name);
    Result.insert(std::move(Names));
  }
  return Result;
}

TEST(MinCutFusion, HarrisReproducesFigure3Partition) {
  Program P = makeHarris(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());

  std::set<std::set<std::string>> Expected = {
      {"dx"}, {"dy"}, {"sx", "gx"}, {"sy", "gy"}, {"sxy", "gxy"}, {"hc"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);

  // Total benefit: 328 + 328 + 256 = 912 cycles per pixel.
  EXPECT_DOUBLE_EQ(Result.TotalBenefit, 912.0);

  // The partition is valid per Section II-A (disjoint cover).
  EXPECT_EQ(validatePartition(P, Result.Blocks), "");
}

TEST(MinCutFusion, HarrisFirstIterationMatchesPaper) {
  Program P = makeHarris(64, 64);
  HardwareModel HW = paperModel();
  MinCutFusionResult Result = runMinCutFusion(P, HW);

  ASSERT_FALSE(Result.Trace.empty());
  const FusionTraceStep &First = Result.Trace.front();
  // Iteration 1 examines the whole nine-kernel DAG, finds it illegal
  // (shared-memory constraint), and cuts with weight 2 * epsilon.
  EXPECT_EQ(First.Block.size(), 9u);
  EXPECT_FALSE(First.Accepted);
  EXPECT_NE(First.Reason.find("shared memory"), std::string::npos);
  EXPECT_NEAR(First.CutWeight, 2.0 * HW.Epsilon, 1e-12);
}

TEST(MinCutFusion, HarrisFullGraphSharedRatioIsFive) {
  // "In total, the memory consumption increases five times if all those
  // kernels would be fused to one."
  Program P = makeHarris(64, 64);
  LegalityChecker Checker(P, paperModel());
  std::vector<KernelId> All;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    All.push_back(Id);
  EXPECT_DOUBLE_EQ(Checker.sharedMemoryRatio(All), 5.0);
}

TEST(MinCutFusion, SobelFusesAllThreeKernels) {
  Program P = makeSobel(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {{"dx", "dy", "mag"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(MinCutFusion, UnsharpFusesIntoSingleKernel) {
  // The shared-input DAG (Figure 2b) aggregates into one kernel -- the
  // headline win over prior work.
  Program P = makeUnsharp(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  EXPECT_EQ(Result.Blocks.Blocks.size(), 1u);
  EXPECT_EQ(Result.Blocks.Blocks.front().Kernels.size(), 4u);
}

TEST(MinCutFusion, EnhancementFusesWholeChain) {
  Program P = makeEnhancement(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {{"gmean", "gamma", "stretch"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(MinCutFusion, NightFusesOnlyAtrous1WithScoto) {
  Program P = makeNight(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {{"atrous0"},
                                              {"atrous1", "scoto"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(MinCutFusion, ShiTomasiMatchesHarrisStructure) {
  Program P = makeShiTomasi(64, 64);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {
      {"dx"}, {"dy"}, {"sx", "gx"}, {"sy", "gy"}, {"sxy", "gxy"}, {"st"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(MinCutFusion, AllPointPipelineFusesAtOnce) {
  // "if all the kernels are point operators and no shared memory is used,
  // the proposed algorithm would identify a legal fusion at the beginning
  // and the whole graph would be fused into one kernel."
  Program P = makePointChain(32, 32, 6, 8);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  EXPECT_EQ(Result.Blocks.Blocks.size(), 1u);
  ASSERT_EQ(Result.Trace.size(), 1u);
  EXPECT_TRUE(Result.Trace.front().Accepted);
}

TEST(BasicFusion, HarrisFusesTheThreePointToLocalPairs) {
  Program P = makeHarris(64, 64);
  BasicFusionResult Result = runBasicFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {
      {"dx"}, {"dy"}, {"sx", "gx"}, {"sy", "gy"}, {"sxy", "gxy"}, {"hc"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(BasicFusion, RejectsSobelEntirely) {
  // "The filter Sobel ... rejected by the basic kernel fusion algorithm"
  // (mag has two inputs: a shared-input shape).
  Program P = makeSobel(64, 64);
  BasicFusionResult Result = runBasicFusion(P, paperModel());
  EXPECT_EQ(Result.Blocks.numFusedBlocks(), 0u);
}

TEST(BasicFusion, RejectsUnsharpEntirely) {
  Program P = makeUnsharp(64, 64);
  BasicFusionResult Result = runBasicFusion(P, paperModel());
  EXPECT_EQ(Result.Blocks.numFusedBlocks(), 0u);
}

TEST(BasicFusion, EnhancementFusesOnlyOnePair) {
  // Pairwise only: {gmean, gamma} fuse, stretch stays separate, unlike the
  // optimized whole-chain fusion.
  Program P = makeEnhancement(64, 64);
  BasicFusionResult Result = runBasicFusion(P, paperModel());
  std::set<std::set<std::string>> Expected = {{"gmean", "gamma"},
                                              {"stretch"}};
  EXPECT_EQ(namedBlocks(P, Result.Blocks), Expected);
}

TEST(BasicFusion, NightMatchesOptimizedPartition) {
  // Table I: optimized over basic is 1.000 on Night -- both find exactly
  // {atrous1, scoto}.
  Program P = makeNight(64, 64);
  BasicFusionResult Basic = runBasicFusion(P, paperModel());
  MinCutFusionResult Optimized = runMinCutFusion(P, paperModel());
  EXPECT_EQ(namedBlocks(P, Basic.Blocks), namedBlocks(P, Optimized.Blocks));
}

TEST(BasicFusion, NeverExceedsOptimizedBenefit) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 64);
    BasicFusionResult Basic = runBasicFusion(P, paperModel());
    MinCutFusionResult Optimized = runMinCutFusion(P, paperModel());
    EXPECT_LE(Basic.TotalBenefit, Optimized.TotalBenefit)
        << "pipeline: " << Spec.Name;
  }
}

TEST(GreedyFusion, MissesSobelThatMinCutFinds) {
  // Greedy heaviest-edge grouping merges along beneficial edges; every
  // Sobel edge is pairwise-illegal (epsilon), so greedy finds nothing
  // while the min-cut formulation fuses the whole DAG.
  Program P = makeSobel(64, 64);
  GreedyFusionResult Greedy = runGreedyFusion(P, paperModel());
  MinCutFusionResult Optimized = runMinCutFusion(P, paperModel());
  EXPECT_EQ(Greedy.Blocks.numFusedBlocks(), 0u);
  EXPECT_EQ(Optimized.Blocks.Blocks.size(), 1u);
}

TEST(GreedyFusion, MatchesMinCutWhereEdgesAreBeneficial) {
  // On pipelines whose fusible edges carry positive weights the greedy
  // grouping reaches the same objective as the min-cut search.
  for (const char *Name : {"harris", "shitomasi", "enhance", "night"}) {
    const PipelineSpec *Spec = findPipeline(Name);
    ASSERT_NE(Spec, nullptr);
    Program P = Spec->Builder(64, 64);
    GreedyFusionResult Greedy = runGreedyFusion(P, paperModel());
    MinCutFusionResult Optimized = runMinCutFusion(P, paperModel());
    EXPECT_DOUBLE_EQ(Greedy.TotalBenefit, Optimized.TotalBenefit)
        << "pipeline: " << Name;
  }
}

TEST(ExhaustiveFusion, MinCutIsOptimalOnThePaperPipelines) {
  // Algorithm 1 is a heuristic (min-weight k-cut is NP-complete), but on
  // all six evaluation pipelines it attains the optimal objective.
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 64);
    ExhaustiveFusionResult Optimal = runExhaustiveFusion(P, paperModel());
    MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
    EXPECT_DOUBLE_EQ(MinCut.TotalBenefit, Optimal.TotalBenefit)
        << "pipeline: " << Spec.Name;
    EXPECT_LE(MinCut.TotalBenefit, Optimal.TotalBenefit + 1e-9);
  }
}

TEST(ExhaustiveFusion, ExaminesBellNumberOfPartitions) {
  Program P = makePointChain(16, 16, 4, 4);
  ExhaustiveFusionResult Result = runExhaustiveFusion(P, paperModel());
  // Bell(4) = 15 set partitions.
  EXPECT_EQ(Result.PartitionsExamined, 15ull);
}

TEST(PartitionInvariants, MinCutAlwaysYieldsValidPartitions) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 64);
    MinCutFusionResult Result = runMinCutFusion(P, paperModel());
    EXPECT_EQ(validatePartition(P, Result.Blocks), "")
        << "pipeline: " << Spec.Name;
    // Every accepted multi-kernel block must be legal.
    LegalityChecker Checker(P, paperModel());
    for (const PartitionBlock &B : Result.Blocks.Blocks)
      EXPECT_TRUE(Checker.checkBlock(B.Kernels).Legal)
          << "pipeline: " << Spec.Name;
  }
}

} // namespace
