//===- tests/test_tiling.cpp - Overlapped-tiling execution strategy -----------===//
//
// The overlapped tiling strategy (TilingStrategy::Overlapped: every tile
// recomputes its own halo into margin-grown scratch planes, no inter-tile
// synchronization) must be bit-identical to the interior/halo split on
// every bundled pipeline, at every thread count, for every border mode,
// under both VM interior modes, and for every tile geometry -- including
// degenerate ones (tile larger than the image, 1x1 and 1xN images, tiles
// the reach exceeds). The interior/halo strategy is itself verified
// against the AST walker in test_fusedvm.cpp, so overlapped == interior
// closes the chain back to the semantic reference.
//
// Also covers: KF_TILING / KF_TILE environment resolution, the tile-spec
// parser, the overlap schedule's margin arithmetic, the per-strategy cost
// model, the execution autotuner (determinism, trace spans, metrics
// decision records), the tuned session plan, and the KF-F06 overlap
// coverage check.
//
//===----------------------------------------------------------------------===//

#include "analysis/FootprintCheck.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Metrics.h"
#include "sim/Session.h"
#include "sim/Tuner.h"
#include "support/Trace.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

using namespace kf;

namespace {

Partition wholeProgramPartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

void expectPoolsIdentical(const Program &P, const std::vector<Image> &Got,
                          const std::vector<Image> &Want,
                          const std::string &Tag) {
  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    EXPECT_EQ(Got[Id].empty(), Want[Id].empty())
        << Tag << " image " << P.image(Id).Name;
    if (Got[Id].empty() || Want[Id].empty())
      continue;
    EXPECT_DOUBLE_EQ(maxAbsDifference(Got[Id], Want[Id]), 0.0)
        << Tag << " image " << P.image(Id).Name;
  }
}

std::vector<int> threadSweep() {
  unsigned Hardware = std::max(std::thread::hardware_concurrency(), 1u);
  return {1, 3, static_cast<int>(Hardware)};
}

/// Fills the external inputs of \p P deterministically and runs \p FP
/// under \p Options, returning the pool.
std::vector<Image> runWith(const Program &P, const FusedProgram &FP,
                           const ExecutionOptions &Options, uint64_t Seed) {
  std::vector<bool> Produced(P.numImages());
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Produced[P.kernel(Id).Output] = true;
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(Seed);
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    if (!Produced[Id]) {
      const ImageInfo &Info = P.image(Id);
      Pool[Id] =
          makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
    }
  runFusedVm(FP, Pool, Options);
  return Pool;
}

//===--------------------------------------------------------------------===//
// Differential: overlapped == interior/halo
//===--------------------------------------------------------------------===//

/// Registry pipelines, min-cut fused, at 1 / 3 / hardware threads, in
/// both VM interior modes, with a small tile so images decompose into
/// many overlapped tiles whose margins cross tile boundaries.
class TilingEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(TilingEquivalence, OverlappedMatchesInteriorAcrossThreadsAndModes) {
  const PipelineSpec *Spec = findPipeline(GetParam());
  ASSERT_NE(Spec, nullptr);
  Program P = Spec->Builder(149, 61);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);

  for (int Threads : threadSweep())
    for (VmMode Mode : {VmMode::Scalar, VmMode::Span}) {
      ExecutionOptions Interior;
      Interior.Threads = Threads;
      Interior.Mode = Mode;
      Interior.Tiling = TilingStrategy::InteriorHalo;
      ExecutionOptions Overlapped = Interior;
      Overlapped.Tiling = TilingStrategy::Overlapped;
      Overlapped.TileWidth = 32;
      Overlapped.TileHeight = 8;

      std::vector<Image> Want = runWith(P, FP, Interior, 977);
      std::vector<Image> Got = runWith(P, FP, Overlapped, 977);
      expectPoolsIdentical(P, Got, Want,
                           GetParam() + " threads=" +
                               std::to_string(Threads) + " vm=" +
                               vmModeName(Mode));
    }
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, TilingEquivalence,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

/// Border-mode sweep on the local-to-local blur chain, with and without
/// the index exchange: the halo ring path is shared between strategies,
/// but the interior rectangle overlapped tiles cover depends on the
/// reach, so sweep both.
class TilingBorder : public ::testing::TestWithParam<BorderMode> {};

TEST_P(TilingBorder, BlurChainOverlappedMatchesInterior) {
  Program P = makeBlurChain(83, 27, GetParam());
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  for (bool Exchange : {true, false}) {
    ExecutionOptions Interior;
    Interior.UseIndexExchange = Exchange;
    Interior.Tiling = TilingStrategy::InteriorHalo;
    ExecutionOptions Overlapped = Interior;
    Overlapped.Tiling = TilingStrategy::Overlapped;
    Overlapped.TileWidth = 16;
    Overlapped.TileHeight = 4;

    std::vector<Image> Want = runWith(P, FP, Interior, 4242);
    std::vector<Image> Got = runWith(P, FP, Overlapped, 4242);
    expectPoolsIdentical(P, Got, Want,
                         std::string(borderModeName(GetParam())) +
                             (Exchange ? " (index exchange)" : " (naive)"));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, TilingBorder,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return std::string(borderModeName(Info.param));
                         });

//===--------------------------------------------------------------------===//
// Tile-geometry edge cases
//===--------------------------------------------------------------------===//

/// Degenerate geometries must be handled without out-of-bounds accesses
/// (this suite runs under ASan/UBSan via the sanitize-smoke label) and
/// stay bit-identical to the interior/halo strategy.
class TilingGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TilingGeometry, OverlappedMatchesInteriorOnDegenerateShapes) {
  const auto [W, H, TileW, TileH] = GetParam();
  Program P = makeBlurChain(W, H, BorderMode::Mirror);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  for (VmMode Mode : {VmMode::Scalar, VmMode::Span}) {
    ExecutionOptions Interior;
    Interior.Mode = Mode;
    Interior.Tiling = TilingStrategy::InteriorHalo;
    ExecutionOptions Overlapped = Interior;
    Overlapped.Tiling = TilingStrategy::Overlapped;
    Overlapped.TileWidth = TileW;
    Overlapped.TileHeight = TileH;

    std::vector<Image> Want = runWith(P, FP, Interior, 11);
    std::vector<Image> Got = runWith(P, FP, Overlapped, 11);
    expectPoolsIdentical(P, Got, Want,
                         std::to_string(W) + "x" + std::to_string(H) +
                             " tile " + std::to_string(TileW) + "x" +
                             std::to_string(TileH) + " vm=" +
                             vmModeName(Mode));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degenerate, TilingGeometry,
    ::testing::Values(
        std::make_tuple(33, 17, 256, 256), // Tile larger than the image.
        std::make_tuple(1, 1, 8, 8),       // 1x1 image: all halo.
        std::make_tuple(1, 23, 8, 8),      // 1xN image: all halo.
        std::make_tuple(23, 1, 8, 8),      // Nx1 image: all halo.
        std::make_tuple(37, 19, 7, 5),     // Tile sizes not dividing W/H.
        std::make_tuple(41, 21, 1, 1),     // Reach (2) larger than tile.
        std::make_tuple(40, 24, 3, 2)));   // Reach crosses several tiles.

/// Harris at a size where the fused reach is large relative to tiny
/// tiles: every plane is mostly margin, the worst case for the schedule
/// arithmetic.
TEST(TilingGeometry, HarrisReachLargerThanTile) {
  Program P = makeHarris(57, 33);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  ExecutionOptions Interior;
  Interior.Tiling = TilingStrategy::InteriorHalo;
  ExecutionOptions Overlapped = Interior;
  Overlapped.Tiling = TilingStrategy::Overlapped;
  Overlapped.TileWidth = 2;
  Overlapped.TileHeight = 2;

  std::vector<Image> Want = runWith(P, FP, Interior, 29);
  std::vector<Image> Got = runWith(P, FP, Overlapped, 29);
  expectPoolsIdentical(P, Got, Want, "harris tiny tiles");
}

//===--------------------------------------------------------------------===//
// Strategy / tile-size resolution
//===--------------------------------------------------------------------===//

/// KF_TILING resolution mirrors KF_VM: explicit requests win, malformed
/// values fall back to the interior default with a once-per-process
/// warning. Runs in one process, so manipulate and restore carefully.
TEST(TilingResolve, ResolveTilingStrategyHonorsEnvironment) {
  const char *Saved = std::getenv("KF_TILING");
  std::string SavedCopy = Saved ? Saved : "";

  ::unsetenv("KF_TILING");
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Auto),
            TilingStrategy::InteriorHalo);

  ::setenv("KF_TILING", "overlapped", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Auto),
            TilingStrategy::Overlapped);

  ::setenv("KF_TILING", "interior", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Auto),
            TilingStrategy::InteriorHalo);

  ::setenv("KF_TILING", "tuned", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Auto),
            TilingStrategy::Tuned);

  // Malformed values fall back to the interior/halo default.
  ::setenv("KF_TILING", "diagonal", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Auto),
            TilingStrategy::InteriorHalo);

  // Explicit requests win regardless of the environment.
  ::setenv("KF_TILING", "overlapped", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::InteriorHalo),
            TilingStrategy::InteriorHalo);
  ::setenv("KF_TILING", "interior", 1);
  EXPECT_EQ(resolveTilingStrategy(TilingStrategy::Overlapped),
            TilingStrategy::Overlapped);

  if (Saved)
    ::setenv("KF_TILING", SavedCopy.c_str(), 1);
  else
    ::unsetenv("KF_TILING");
}

TEST(TilingResolve, StrategyNames) {
  EXPECT_STREQ(tilingStrategyName(TilingStrategy::Auto), "auto");
  EXPECT_STREQ(tilingStrategyName(TilingStrategy::InteriorHalo),
               "interior");
  EXPECT_STREQ(tilingStrategyName(TilingStrategy::Overlapped),
               "overlapped");
  EXPECT_STREQ(tilingStrategyName(TilingStrategy::Tuned), "tuned");
}

TEST(TilingResolve, ParseTileSpecAcceptsOnlyWellFormedRanges) {
  int W = -1, H = -1;
  EXPECT_TRUE(parseTileSpec("128x32", W, H));
  EXPECT_EQ(W, 128);
  EXPECT_EQ(H, 32);
  EXPECT_TRUE(parseTileSpec("1x65536", W, H));
  EXPECT_EQ(W, 1);
  EXPECT_EQ(H, 65536);

  // Garbage is rejected and leaves the outputs untouched.
  W = H = -1;
  EXPECT_FALSE(parseTileSpec(nullptr, W, H));
  EXPECT_FALSE(parseTileSpec("", W, H));
  EXPECT_FALSE(parseTileSpec("128", W, H));
  EXPECT_FALSE(parseTileSpec("x32", W, H));
  EXPECT_FALSE(parseTileSpec("128x", W, H));
  EXPECT_FALSE(parseTileSpec("128x32x8", W, H));
  EXPECT_FALSE(parseTileSpec("128x32 ", W, H));
  EXPECT_FALSE(parseTileSpec("axb", W, H));
  // Both components must start with a digit: strtol's own leading-space
  // and sign tolerance ("  12", "+8") is not part of the WxH grammar.
  EXPECT_FALSE(parseTileSpec(" 12x34", W, H));
  EXPECT_FALSE(parseTileSpec("+8x+8", W, H));
  EXPECT_FALSE(parseTileSpec("8x+8", W, H));
  EXPECT_FALSE(parseTileSpec("8x 8", W, H));
  EXPECT_FALSE(parseTileSpec("0x32", W, H));
  EXPECT_FALSE(parseTileSpec("-4x8", W, H));
  EXPECT_FALSE(parseTileSpec("65537x1", W, H));
  EXPECT_FALSE(parseTileSpec("99999999999999999999x4", W, H));
  EXPECT_EQ(W, -1);
  EXPECT_EQ(H, -1);
}

TEST(TilingResolve, ResolveTileSizeExplicitEnvAndDefaults) {
  const char *Saved = std::getenv("KF_TILE");
  std::string SavedCopy = Saved ? Saved : "";
  ::unsetenv("KF_TILE");

  int W = 0, H = 0;
  ExecutionOptions Options;

  // Strategy defaults: full rows for interior, an L2 block for
  // overlapped; both clamped to the image.
  resolveTileSize(Options, TilingStrategy::InteriorHalo, 640, 480, 2, W, H);
  EXPECT_EQ(W, 640);
  EXPECT_GE(H, 1);
  resolveTileSize(Options, TilingStrategy::Overlapped, 640, 480, 2, W, H);
  EXPECT_EQ(W, 128);
  EXPECT_EQ(H, 32);
  resolveTileSize(Options, TilingStrategy::Overlapped, 20, 10, 2, W, H);
  EXPECT_EQ(W, 20); // Clamped to the image.
  EXPECT_EQ(H, 10);

  // Explicit options always win.
  Options.TileWidth = 48;
  Options.TileHeight = 12;
  ::setenv("KF_TILE", "64x64", 1);
  resolveTileSize(Options, TilingStrategy::Overlapped, 640, 480, 2, W, H);
  EXPECT_EQ(W, 48);
  EXPECT_EQ(H, 12);

  // The environment fills in when the caller left the tile unset.
  Options.TileWidth = Options.TileHeight = 0;
  resolveTileSize(Options, TilingStrategy::Overlapped, 640, 480, 2, W, H);
  EXPECT_EQ(W, 64);
  EXPECT_EQ(H, 64);

  // Malformed environment values are ignored (strategy default applies).
  ::setenv("KF_TILE", "64by64", 1);
  resolveTileSize(Options, TilingStrategy::Overlapped, 640, 480, 2, W, H);
  EXPECT_EQ(W, 128);
  EXPECT_EQ(H, 32);
  ::setenv("KF_TILE", "0x7", 1);
  resolveTileSize(Options, TilingStrategy::Overlapped, 640, 480, 2, W, H);
  EXPECT_EQ(W, 128);
  EXPECT_EQ(H, 32);

  if (Saved)
    ::setenv("KF_TILE", SavedCopy.c_str(), 1);
  else
    ::unsetenv("KF_TILE");
}

/// End-to-end: KF_TILING=overlapped must produce bit-identical results
/// through the default Auto options (the configuration the CI
/// tiling-differential job runs the whole suite under).
TEST(TilingResolve, EnvironmentSelectedOverlappedIsBitIdentical) {
  const char *Saved = std::getenv("KF_TILING");
  std::string SavedCopy = Saved ? Saved : "";

  Program P = makeSobel(70, 30);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  ::setenv("KF_TILING", "interior", 1);
  std::vector<Image> Want = runWith(P, FP, ExecutionOptions(), 5);
  ::setenv("KF_TILING", "overlapped", 1);
  std::vector<Image> Got = runWith(P, FP, ExecutionOptions(), 5);
  expectPoolsIdentical(P, Got, Want, "env overlapped");

  if (Saved)
    ::setenv("KF_TILING", SavedCopy.c_str(), 1);
  else
    ::unsetenv("KF_TILING");
}

//===--------------------------------------------------------------------===//
// Overlap schedule arithmetic
//===--------------------------------------------------------------------===//

TEST(OverlapSchedule, BlurChainMarginsMatchReach) {
  // Two chained 3x3 blurs: the eliminated first blur's plane must extend
  // 1 pixel beyond the tile (the second blur's window radius), and with
  // its own 3x3 loads on top that exactly spends the fused reach of 2.
  Program P = makeBlurChain(40, 20, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  ASSERT_EQ(SP.Stages.size(), 2u);
  ASSERT_EQ(SP.Reach[Root], 2);

  OverlapSchedule Schedule = buildOverlapSchedule(SP, Root, 1);
  ASSERT_TRUE(Schedule.Valid);
  ASSERT_EQ(Schedule.PerChannel.size(), 1u);
  ASSERT_EQ(Schedule.PerChannel[0].size(), 1u); // One eliminated stage.
  EXPECT_EQ(Schedule.PerChannel[0][0].Stage, 0u);
  EXPECT_EQ(Schedule.PerChannel[0][0].Margin, 1);
  EXPECT_EQ(Schedule.MaxMargin, 1);

  // The scratch requirement covers the margin-grown plane.
  size_t Floats = overlapPlaneFloats(Schedule, 16, 8);
  EXPECT_EQ(Floats, static_cast<size_t>(16 + 2) * (8 + 2));
}

TEST(OverlapSchedule, MarginPlusLoadHaloStaysWithinReach) {
  // The margin-safety invariant the executor relies on, checked here for
  // every registry pipeline: every demanded plane's margin plus that
  // stage's direct load halo is covered by the root's recorded reach.
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 32);
    Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
    FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      if (!SP.UniformExtents)
        continue;
      for (KernelId DestId : FK.Destinations) {
        uint16_t Root = 0;
        for (size_t I = 0; I != FK.Stages.size(); ++I)
          if (FK.Stages[I].Kernel == DestId)
            Root = static_cast<uint16_t>(I);
        const ImageInfo &Info = P.image(P.kernel(DestId).Output);
        OverlapSchedule Schedule =
            buildOverlapSchedule(SP, Root, Info.Channels);
        ASSERT_TRUE(Schedule.Valid) << Spec.Name;
        DiagnosticEngine DE;
        checkOverlapCoverage(SP, Root, SP.Reach[Root], DE);
        EXPECT_EQ(DE.errorCount(), 0u)
            << Spec.Name << ": " << DE.renderText();
        EXPECT_LE(Schedule.MaxMargin, SP.Reach[Root]) << Spec.Name;
      }
    }
  }
}

TEST(OverlapSchedule, MixedExtentsAreRejected) {
  // The night filter's a-trous chain on mixed-size inputs is not the
  // concern here -- build a schedule from a program whose UniformExtents
  // flag is false and expect Valid == false (the executor falls back).
  Program P = makeBlurChain(40, 20, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  SP.UniformExtents = false;
  OverlapSchedule Schedule = buildOverlapSchedule(
      SP, static_cast<uint16_t>(SP.Stages.size() - 1), 1);
  EXPECT_FALSE(Schedule.Valid);
}

//===--------------------------------------------------------------------===//
// KF-F06: overlap coverage check
//===--------------------------------------------------------------------===//

TEST(OverlapCoverage, UndersizedHaloIsDiagnosed) {
  Program P = makeBlurChain(40, 20, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  ASSERT_EQ(SP.Reach[Root], 2);

  DiagnosticEngine Good;
  checkOverlapCoverage(SP, Root, 2, Good);
  EXPECT_EQ(Good.errorCount(), 0u) << Good.renderText();

  // A halo of 1 cannot cover the eliminated blur's margin (1) plus its
  // own 3x3 load halo (1): grown tiles would read out of bounds.
  DiagnosticEngine Bad;
  checkOverlapCoverage(SP, Root, 1, Bad);
  EXPECT_GT(Bad.errorCount(), 0u);
  EXPECT_TRUE(Bad.hasCode("KF-F06")) << Bad.renderText();

  // Mixed extents skip the check (overlapped execution falls back).
  SP.UniformExtents = false;
  DiagnosticEngine Skipped;
  checkOverlapCoverage(SP, Root, 0, Skipped);
  EXPECT_EQ(Skipped.errorCount(), 0u);
}

//===--------------------------------------------------------------------===//
// Per-strategy cost model
//===--------------------------------------------------------------------===//

TEST(TilingCostModel, DefaultStrategyAccountingUnchanged) {
  Program P = makeHarris(128, 128);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);

  ProgramStats Default = accountFusedProgram(FP);
  ProgramStats Explicit =
      accountFusedProgram(FP, TileShape(), TilingStrategy::InteriorHalo);
  ASSERT_EQ(Default.Launches.size(), Explicit.Launches.size());
  for (size_t I = 0; I != Default.Launches.size(); ++I) {
    EXPECT_DOUBLE_EQ(Default.Launches[I].AluOps,
                     Explicit.Launches[I].AluOps);
    EXPECT_DOUBLE_EQ(Default.Launches[I].SharedAccesses,
                     Explicit.Launches[I].SharedAccesses);
    EXPECT_DOUBLE_EQ(Default.Launches[I].SharedBytesPerBlock,
                     Explicit.Launches[I].SharedBytesPerBlock);
    EXPECT_DOUBLE_EQ(Default.Launches[I].GlobalBytesRead,
                     Explicit.Launches[I].GlobalBytesRead);
  }
}

TEST(TilingCostModel, OverlappedTradesRecomputeForPlaneTraffic) {
  // A point producer so expensive that recompute chains dominate: the
  // overlapped strategy, which evaluates each stage once per plane cell,
  // must charge fewer ALU ops than interior/halo recompute -- and pay for
  // it in on-chip plane traffic and per-block plane bytes.
  Program P = makePointToLocal(256, 256, 64);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  const TileShape Tile{32, 8};

  ProgramStats Interior =
      accountFusedProgram(FP, Tile, TilingStrategy::InteriorHalo);
  ProgramStats Overlapped =
      accountFusedProgram(FP, Tile, TilingStrategy::Overlapped);
  ASSERT_EQ(Interior.Launches.size(), 1u);
  ASSERT_EQ(Overlapped.Launches.size(), 1u);

  EXPECT_LT(Overlapped.totalAluOps(), Interior.totalAluOps());
  EXPECT_GT(Overlapped.Launches[0].SharedBytesPerBlock,
            Interior.Launches[0].SharedBytesPerBlock);
}

//===--------------------------------------------------------------------===//
// Execution autotuner
//===--------------------------------------------------------------------===//

TEST(ExecTuner, DeterministicAndExploresWholeGrid) {
  Program P = makeHarris(256, 256);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);
  DeviceSpec Device = MetricsRegistry::referenceDevice();

  ExecTuneResult A = tuneExecution(FP, Device, CostModelParams());
  ExecTuneResult B = tuneExecution(FP, Device, CostModelParams());
  EXPECT_EQ(A.Explored.size(), defaultExecTuneGrid().size());
  ASSERT_FALSE(A.Explored.empty());
  EXPECT_EQ(A.Best.Candidate.Strategy, B.Best.Candidate.Strategy);
  EXPECT_EQ(A.Best.Candidate.Tile.Width, B.Best.Candidate.Tile.Width);
  EXPECT_EQ(A.Best.Candidate.Tile.Height, B.Best.Candidate.Tile.Height);
  EXPECT_DOUBLE_EQ(A.Best.TimeMs, B.Best.TimeMs);
  for (const ExecTunePoint &Point : A.Explored) {
    EXPECT_GT(Point.TimeMs, 0.0);
    EXPECT_GE(Point.TimeMs, A.Best.TimeMs); // Best is the minimum.
  }
}

TEST(ExecTuner, DecisionIsDebuggableFromTraceAlone) {
  TraceRecorder &TR = TraceRecorder::global();
  TR.clear();
  TR.setEnabled(true);

  Program P = makeHarris(128, 128);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);
  ExecTuneResult Result = tuneExecution(
      FP, MetricsRegistry::referenceDevice(), CostModelParams());

  unsigned Decisions = 0, Candidates = 0;
  double BestMs = -1.0, BestOverlapped = -1.0;
  for (const TraceSpanRecord &Span : TR.spans()) {
    if (Span.Name == "tuner.candidate")
      ++Candidates;
    if (Span.Name != "tuner.execution")
      continue;
    ++Decisions;
    for (const auto &[Key, Value] : Span.Args) {
      if (Key == "best_predicted_ms")
        BestMs = Value;
      if (Key == "best_overlapped")
        BestOverlapped = Value;
    }
  }
  EXPECT_EQ(Decisions, 1u);
  EXPECT_EQ(Candidates, static_cast<unsigned>(defaultExecTuneGrid().size()));
  EXPECT_DOUBLE_EQ(BestMs, Result.Best.TimeMs);
  EXPECT_EQ(BestOverlapped,
            Result.Best.Candidate.Strategy == TilingStrategy::Overlapped
                ? 1.0
                : 0.0);

  TR.setEnabled(false);
  TR.clear();
}

TEST(ExecTuner, DecisionIsRecordedInMetrics) {
  MetricsRegistry &Registry = MetricsRegistry::global();
  Registry.clear();
  Registry.setEnabled(true);

  Program P = makeHarris(128, 128);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);
  ExecTuneResult Result = tuneExecution(
      FP, MetricsRegistry::referenceDevice(), CostModelParams());

  std::vector<TunerDecisionRecord> Decisions = Registry.tunerDecisions();
  ASSERT_EQ(Decisions.size(), 1u);
  EXPECT_EQ(Decisions[0].Program, P.name());
  EXPECT_EQ(Decisions[0].Strategy, Result.Best.Candidate.Strategy);
  EXPECT_DOUBLE_EQ(Decisions[0].PredictedMs, Result.Best.TimeMs);
  EXPECT_EQ(Decisions[0].Candidates,
            static_cast<unsigned>(defaultExecTuneGrid().size()));
  // The decision renders into the metrics table.
  std::string Table = Registry.renderTable();
  EXPECT_NE(Table.find("tuned tiling"), std::string::npos);

  Registry.setEnabled(false);
  Registry.clear();
}

//===--------------------------------------------------------------------===//
// Tuned plans and sessions
//===--------------------------------------------------------------------===//

TEST(TilingSession, TunedPlanMatchesExplicitStrategies) {
  Program P = makeHarris(96, 48);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);

  auto RunSession = [&](TilingStrategy Strategy) {
    ExecutionOptions Options;
    Options.Threads = 2;
    Options.Tiling = Strategy;
    PlanCache Cache(4);
    PipelineSession Session(FP, Options, &Cache);
    std::vector<Image> Frame = Session.acquireFrame();
    Rng Gen(333);
    for (ImageId Id : P.externalInputs()) {
      const ImageInfo &Info = P.image(Id);
      Frame[Id] =
          makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
    }
    Session.runFrame(Frame);
    return Frame;
  };

  std::vector<Image> Interior = RunSession(TilingStrategy::InteriorHalo);
  std::vector<Image> Overlapped = RunSession(TilingStrategy::Overlapped);
  std::vector<Image> Tuned = RunSession(TilingStrategy::Tuned);
  expectPoolsIdentical(P, Overlapped, Interior, "session overlapped");
  expectPoolsIdentical(P, Tuned, Interior, "session tuned");
}

TEST(TilingSession, TunedPlanCarriesTheTunerDecision) {
  Program P = makeHarris(96, 48);
  Partition Blocks = runMinCutFusion(P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);

  ExecutionOptions Plain;
  Plain.Tiling = TilingStrategy::InteriorHalo; // Pin against KF_TILING.
  std::shared_ptr<const CompiledPlan> PlainPlan = compilePlan(FP, Plain);
  EXPECT_FALSE(PlainPlan->Tuning.Active);

  ExecutionOptions Tuned;
  Tuned.Tiling = TilingStrategy::Tuned;
  std::shared_ptr<const CompiledPlan> TunedPlan = compilePlan(FP, Tuned);
  EXPECT_TRUE(TunedPlan->Tuning.Active);
  EXPECT_GT(TunedPlan->Tuning.PredictedMs, 0.0);

  ExecTuneResult Expect = tuneExecution(
      FP, MetricsRegistry::referenceDevice(), CostModelParams());
  EXPECT_EQ(TunedPlan->Tuning.Strategy, Expect.Best.Candidate.Strategy);
  EXPECT_EQ(TunedPlan->Tuning.TileWidth, Expect.Best.Candidate.Tile.Width);
  EXPECT_EQ(TunedPlan->Tuning.TileHeight,
            Expect.Best.Candidate.Tile.Height);

  // Distinct strategies key distinct plans.
  EXPECT_NE(PlainPlan->Key, TunedPlan->Key);
}

//===--------------------------------------------------------------------===//
// Trace counters and launch metrics
//===--------------------------------------------------------------------===//

TEST(TilingTrace, OverlappedLaunchEmitsTileCounters) {
  TraceRecorder &TR = TraceRecorder::global();
  TR.clear();
  TR.setEnabled(true);

  Program P = makeBlurChain(96, 40, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  ExecutionOptions Options;
  Options.Threads = 1;
  Options.Tiling = TilingStrategy::Overlapped;
  Options.TileWidth = 16;
  Options.TileHeight = 8;
  (void)runWith(P, FP, Options, 77);

  std::map<std::string, double> Counters = TR.counters();
  ASSERT_TRUE(Counters.count("tile.overlap_pixels"));
  EXPECT_GT(Counters.at("tile.overlap_pixels"), 0.0);
  ASSERT_TRUE(Counters.count("tile.redundant_halo_ms"));
  EXPECT_GE(Counters.at("tile.redundant_halo_ms"), 0.0);
  // The launch span labels the strategy.
  bool SawOverlappedLaunch = false;
  for (const TraceSpanRecord &Span : TR.spans())
    if (Span.Name.rfind("launch ", 0) == 0)
      for (const auto &[Key, Value] : Span.Args)
        if (Key == "tiling_overlapped" && Value == 1.0)
          SawOverlappedLaunch = true;
  EXPECT_TRUE(SawOverlappedLaunch);

  TR.setEnabled(false);
  TR.clear();
}

TEST(TilingTrace, LaunchMetricsSplitPerStrategy) {
  MetricsRegistry &Registry = MetricsRegistry::global();
  Registry.clear();
  Registry.setEnabled(true);

  Program P = makeBlurChain(96, 40, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  ExecutionOptions Options;
  Options.Threads = 1;
  Options.Tiling = TilingStrategy::InteriorHalo;
  (void)runWith(P, FP, Options, 78);
  Options.Tiling = TilingStrategy::Overlapped;
  (void)runWith(P, FP, Options, 78);

  std::vector<LaunchModelRecord> Records = Registry.records();
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Runs, 2u);
  EXPECT_EQ(Records[0].InteriorTilingRuns, 1u);
  EXPECT_EQ(Records[0].OverlappedRuns, 1u);
  // The speedup needs both strategies' wall time above timer resolution;
  // on a fast box a tiny launch can legitimately measure 0 ms.
  if (Records[0].OverlappedMs > 0.0 && Records[0].InteriorTilingMs > 0.0) {
    EXPECT_GT(Records[0].overlappedSpeedup(), 0.0);
  }
  std::string Json = Registry.toJson();
  EXPECT_NE(Json.find("\"overlapped_runs\""), std::string::npos);
  EXPECT_NE(Json.find("\"overlapped_speedup\""), std::string::npos);

  Registry.setEnabled(false);
  Registry.clear();
}

} // namespace
