//===- tests/test_exprvm.cpp - Bytecode VM vs tree-walking interpreter ----------===//

#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/ExprVM.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

TEST(ExprVm, CompilesConvolutionToUnrolledStream) {
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  VmProgram VM = compileKernelBody(P, 0);
  // 9 mask constants + 9 loads + 9 muls + 8 reduce adds = 35.
  EXPECT_EQ(VM.Insts.size(), 35u);
  EXPECT_GT(VM.NumRegs, 0u);
  unsigned Loads = 0;
  for (const VmInst &Inst : VM.Insts)
    if (Inst.Op == VmOp::Load)
      ++Loads;
  EXPECT_EQ(Loads, 9u);
}

TEST(ExprVm, BakesMaskWeightsAsImmediates) {
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  VmProgram VM = compileKernelBody(P, 0);
  // The binomial center weight 0.25 must appear as a Const immediate.
  bool SawCenterWeight = false;
  for (const VmInst &Inst : VM.Insts)
    if (Inst.Op == VmOp::Const && Inst.Imm == 0.25f)
      SawCenterWeight = true;
  EXPECT_TRUE(SawCenterWeight);
}

TEST(ExprVm, MatchesInterpreterAtSinglePixels) {
  Program P = makeSobel(12, 12);
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(4);
  Pool[0] = makeRandomImage(12, 12, 1, Gen);
  VmProgram VM = compileKernelBody(P, 0);
  std::vector<float> Regs(VM.NumRegs);
  for (int X : {0, 1, 6, 11})
    for (int Y : {0, 5, 11})
      EXPECT_FLOAT_EQ(runVm(VM, P, 0, Pool, X, Y, 0, Regs.data()),
                      evalKernelAt(P, 0, Pool, X, Y, 0))
          << X << "," << Y;
}

/// Full-pipeline equivalence across all bundled applications.
class VmEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(VmEquivalence, RunUnfusedVmMatchesInterpreter) {
  const PipelineSpec *Spec = findPipeline(GetParam());
  ASSERT_NE(Spec, nullptr);
  int W = GetParam() == "night" ? 18 : 22;
  Program P = Spec->Builder(W, 16);
  const ImageInfo &InInfo = P.image(0);
  Rng Gen(123);
  Image Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = Input;
  runUnfused(P, Reference);

  std::vector<Image> VmPool = makeImagePool(P);
  VmPool[0] = Input;
  runUnfusedVm(P, VmPool);

  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    if (Reference[Id].empty())
      continue;
    EXPECT_DOUBLE_EQ(maxAbsDifference(VmPool[Id], Reference[Id]), 0.0)
        << GetParam() << " image " << P.image(Id).Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, VmEquivalence,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

TEST(ExprVm, BorderModesMatchInterpreter) {
  for (BorderMode Mode : {BorderMode::Clamp, BorderMode::Mirror,
                          BorderMode::Repeat, BorderMode::Constant}) {
    Program P = makeBlurChain(14, 10, Mode);
    Rng Gen(8);
    std::vector<Image> Reference = makeImagePool(P);
    Reference[0] = makeRandomImage(14, 10, 1, Gen);
    runUnfused(P, Reference);
    std::vector<Image> VmPool = makeImagePool(P);
    VmPool[0] = Reference[0];
    runUnfusedVm(P, VmPool);
    EXPECT_DOUBLE_EQ(maxAbsDifference(VmPool[2], Reference[2]), 0.0)
        << borderModeName(Mode);
  }
}

TEST(ExprVm, CoordinatesAndSelect) {
  Program P("coords");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  // out = x < y ? in : -in.
  K.Body = C.select(C.binary(BinOp::CmpLT, C.coordX(), C.coordY()),
                    C.inputAt(0), C.unary(UnOp::Neg, C.inputAt(0)));
  P.addKernel(std::move(K));

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(5);
  Pool[0] = makeRandomImage(8, 8, 1, Gen, 0.5f, 1.0f);
  VmProgram VM = compileKernelBody(P, 0);
  std::vector<float> Regs(VM.NumRegs);
  EXPECT_FLOAT_EQ(runVm(VM, P, 0, Pool, 2, 5, 0, Regs.data()),
                  Pool[0].at(2, 5));
  EXPECT_FLOAT_EQ(runVm(VM, P, 0, Pool, 5, 2, 0, Regs.data()),
                  -Pool[0].at(5, 2));
}

} // namespace
