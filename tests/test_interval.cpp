//===- tests/test_interval.cpp - Interval abstract interpretation ---------------===//
//
// The interval abstract interpreter over fused bytecode
// (analysis/IntervalAnalysis.h): unit tests of the transfer functions on
// hand-built staged programs, the KF-V diagnostics, and the soundness
// property suite -- every register value a concrete evaluation ever
// produces must lie inside the predicted interval. The property holds at
// every pixel (interior, halo, and the index-exchanged exterior positions
// stage calls evaluate at), over every registry pipeline and over
// randomized programs; that position-independence is exactly what lets
// the bytecode optimizer (ir/VmOptimizer.h) rewrite on these facts.
//
//===----------------------------------------------------------------------===//

#include "analysis/IntervalAnalysis.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Session.h"
#include "support/Random.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

using namespace kf;

namespace {

//===--------------------------------------------------------------------===//
// Hand-built single-stage programs
//===--------------------------------------------------------------------===//

VmInst alu(VmOp Op, uint16_t Dst, uint16_t A = 0, uint16_t B = 0,
           uint16_t Sel = 0) {
  VmInst I;
  I.Op = Op;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  I.Sel = Sel;
  return I;
}

VmInst constant(uint16_t Dst, float Imm) {
  VmInst I;
  I.Op = VmOp::Const;
  I.Dst = Dst;
  I.Imm = Imm;
  return I;
}

VmInst load(uint16_t Dst, int16_t InputIdx = 0) {
  VmInst I;
  I.Op = VmOp::Load;
  I.Dst = Dst;
  I.InputIdx = InputIdx;
  return I;
}

/// One 16x16 stage reading pool image 0, result in the highest register.
StagedVmProgram singleStage(std::vector<VmInst> Insts, uint16_t ResultReg,
                            unsigned NumRegs,
                            BorderMode Border = BorderMode::Clamp,
                            float BorderConstant = 0.0f) {
  StagedVmProgram SP;
  VmStage S;
  S.Code.Insts = std::move(Insts);
  S.Code.ResultReg = ResultReg;
  S.Code.NumRegs = NumRegs;
  S.Inputs = {0};
  S.Border = Border;
  S.BorderConstant = BorderConstant;
  S.OutW = 16;
  S.OutH = 16;
  S.RegBase = 0;
  SP.Stages.push_back(std::move(S));
  SP.NumRegs = NumRegs;
  SP.Reach = {0};
  return SP;
}

RegInterval resultOf(const StagedVmProgram &SP,
                     const std::vector<InputRange> &Ranges = {},
                     DiagnosticEngine *DE = nullptr) {
  return analyzeStagedIntervals(SP, 0, Ranges, DE).Result;
}

TEST(IntervalTransfer, ConstAndAdd) {
  StagedVmProgram SP = singleStage(
      {constant(0, 2.0f), constant(1, 3.0f), alu(VmOp::Add, 2, 0, 1)}, 2, 3);
  RegInterval R = resultOf(SP);
  EXPECT_EQ(R.Lo, 5.0f);
  EXPECT_EQ(R.Hi, 5.0f);
  EXPECT_FALSE(R.MayNaN);
}

TEST(IntervalTransfer, LoadDefaultsToUnitRange) {
  StagedVmProgram SP = singleStage({load(0)}, 0, 1);
  RegInterval R = resultOf(SP);
  EXPECT_EQ(R.Lo, 0.0f);
  EXPECT_EQ(R.Hi, 1.0f);
  EXPECT_FALSE(R.MayNaN);
}

TEST(IntervalTransfer, LoadHonorsDeclaredRange) {
  StagedVmProgram SP = singleStage({load(0)}, 0, 1);
  InputRange In;
  In.Lo = -3.0f;
  In.Hi = 7.0f;
  RegInterval R = resultOf(SP, {In});
  EXPECT_EQ(R.Lo, -3.0f);
  EXPECT_EQ(R.Hi, 7.0f);
}

TEST(IntervalTransfer, ConstantBorderJoinsTheBorderValue) {
  StagedVmProgram SP = singleStage({load(0)}, 0, 1, BorderMode::Constant,
                                   5.0f);
  RegInterval R = resultOf(SP);
  EXPECT_EQ(R.Lo, 0.0f);
  EXPECT_EQ(R.Hi, 5.0f);
}

TEST(IntervalTransfer, CoordsCoverReachGrownExtent) {
  StagedVmProgram SP = singleStage({alu(VmOp::CoordX, 0)}, 0, 1);
  SP.Reach = {2};
  RegInterval R = resultOf(SP);
  EXPECT_EQ(R.Lo, -2.0f);
  EXPECT_EQ(R.Hi, 17.0f); // 16 - 1 + 2
}

TEST(IntervalTransfer, DivByZeroIsFullAndWarnsV01) {
  // in / (in - 0.5): the divisor spans zero.
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1),
       alu(VmOp::Div, 3, 0, 2)},
      3, 4);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V01")) << DE.renderText();
  EXPECT_EQ(R.Lo, -INFINITY);
  EXPECT_EQ(R.Hi, INFINITY);
  EXPECT_TRUE(R.MayNaN); // 0 / 0 is attainable
}

TEST(IntervalTransfer, SignPureDivisionStaysTight) {
  StagedVmProgram SP = singleStage(
      {constant(0, 1.0f), constant(1, 2.0f), constant(2, 4.0f),
       alu(VmOp::Min, 3, 1, 2), alu(VmOp::Div, 4, 0, 1)},
      4, 5);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_FALSE(DE.hasCode("KF-V01"));
  EXPECT_EQ(R.Lo, 0.5f);
  EXPECT_EQ(R.Hi, 0.5f);
  EXPECT_FALSE(R.MayNaN);
}

TEST(IntervalTransfer, SqrtOfPossiblyNegativeWarnsV02) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1),
       alu(VmOp::Sqrt, 3, 2)},
      3, 4);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V02")) << DE.renderText();
  EXPECT_TRUE(R.MayNaN);
  EXPECT_EQ(R.Lo, 0.0f);
}

TEST(IntervalTransfer, SquaredSubtreeIsProvablyNonNegative) {
  // (in - 0.5) * (in - 0.5): value numbering must recognize the operands
  // as the same subtree, so the square -- and a sqrt of it -- is clean.
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1),
       alu(VmOp::Mul, 3, 2, 2), alu(VmOp::Sqrt, 4, 3)},
      4, 5);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_FALSE(DE.hasCode("KF-V02")) << DE.renderText();
  EXPECT_GE(R.Lo, 0.0f);
  EXPECT_FALSE(R.MayNaN);
}

TEST(IntervalTransfer, RematerializedSubtreeUnifiesAcrossRegisters) {
  // The same subtree computed twice into different registers must get one
  // value number (operand VNs, not register numbers).
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1), load(3),
       constant(4, 0.5f), alu(VmOp::Sub, 5, 3, 4), alu(VmOp::Mul, 6, 2, 5),
       alu(VmOp::Sqrt, 7, 6)},
      7, 8);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_FALSE(DE.hasCode("KF-V02")) << DE.renderText();
  EXPECT_GE(R.Lo, 0.0f);
}

TEST(IntervalTransfer, ZeroTimesInfinityMayBeNaN) {
  // [0, 1] * [0, inf] admits 0 * inf = NaN even though no corner shows it.
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 1.0f), constant(2, 0.0f),
       alu(VmOp::Div, 3, 1, 2), alu(VmOp::Abs, 4, 3),
       alu(VmOp::Mul, 5, 0, 4)},
      5, 6);
  RegInterval R = resultOf(SP);
  EXPECT_TRUE(R.MayNaN);
}

TEST(IntervalTransfer, PowWithIntegralConstExponentIsClean) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1),
       constant(3, 2.0f), alu(VmOp::Pow, 4, 2, 3)},
      4, 5);
  DiagnosticEngine DE;
  resultOf(SP, {}, &DE);
  EXPECT_FALSE(DE.hasCode("KF-V03")) << DE.renderText();
}

TEST(IntervalTransfer, PowNegativeBaseFractionalExponentWarnsV03) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::Sub, 2, 0, 1),
       alu(VmOp::Pow, 3, 2, 0)},
      3, 4);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V03")) << DE.renderText();
  EXPECT_TRUE(R.MayNaN);
}

TEST(IntervalTransfer, GuaranteedNonFiniteWarnsV04Once) {
  // log(0) = -inf poisons the chain; the cascade reports only the origin.
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.0f), alu(VmOp::Log, 2, 1),
       alu(VmOp::Add, 3, 0, 2)},
      3, 4);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V04")) << DE.renderText();
  unsigned V04 = 0;
  for (const Diagnostic &D : DE.diagnostics())
    if (D.Code == "KF-V04")
      ++V04;
  EXPECT_EQ(V04, 1u) << DE.renderText();
  EXPECT_EQ(R.Lo, -INFINITY);
  EXPECT_EQ(R.Hi, -INFINITY);
}

TEST(IntervalTransfer, DecidedSelectNotesV05) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 2.0f), alu(VmOp::Add, 2, 0, 1),
       constant(3, 0.5f), alu(VmOp::Select, 4, 0, 3, 2)},
      4, 5);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V05")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u);
  EXPECT_EQ(DE.warningCount(), 0u); // a note, not a warning
  EXPECT_EQ(R.Lo, 0.0f);            // the taken arm only
  EXPECT_EQ(R.Hi, 1.0f);
}

TEST(IntervalTransfer, NoopClampNotesV06) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, -1.0f), alu(VmOp::Max, 2, 0, 1)}, 2, 3);
  DiagnosticEngine DE;
  RegInterval R = resultOf(SP, {}, &DE);
  EXPECT_TRUE(DE.hasCode("KF-V06")) << DE.renderText();
  EXPECT_EQ(DE.warningCount(), 0u);
  EXPECT_EQ(R.Lo, 0.0f);
  EXPECT_EQ(R.Hi, 1.0f);
}

TEST(IntervalTransfer, ComparisonsAreZeroOne) {
  StagedVmProgram SP = singleStage(
      {load(0), constant(1, 0.5f), alu(VmOp::CmpLT, 2, 0, 1)}, 2, 3);
  RegInterval R = resultOf(SP);
  EXPECT_EQ(R.Lo, 0.0f);
  EXPECT_EQ(R.Hi, 1.0f);
  EXPECT_FALSE(R.MayNaN); // comparisons never produce NaN
}

TEST(IntervalTransfer, StageCallTakesCalleeResult) {
  StagedVmProgram SP;
  VmStage Callee;
  Callee.Code.Insts = {constant(0, 7.0f)};
  Callee.Code.ResultReg = 0;
  Callee.Code.NumRegs = 1;
  Callee.OutW = Callee.OutH = 16;
  VmStage Caller;
  VmInst Call;
  Call.Op = VmOp::StageCall;
  Call.Dst = 0;
  Call.Sel = 0; // stage index, not a register
  Caller.Code.Insts = {Call};
  Caller.Code.ResultReg = 0;
  Caller.Code.NumRegs = 1;
  Caller.OutW = Caller.OutH = 16;
  Caller.RegBase = 1;
  SP.Stages = {Callee, Caller};
  SP.NumRegs = 2;
  SP.Reach = {0, 0};
  RegInterval R = analyzeStagedIntervals(SP, 1).Result;
  EXPECT_EQ(R.Lo, 7.0f);
  EXPECT_EQ(R.Hi, 7.0f);
}

//===--------------------------------------------------------------------===//
// Soundness property suite
//===--------------------------------------------------------------------===//

/// NaN payload no VM operation produces: a register still holding it
/// after evaluation was simply never written on that path.
constexpr uint32_t SentinelBits = 0x7fc0dead;

float sentinel() {
  float V;
  std::memcpy(&V, &SentinelBits, sizeof(V));
  return V;
}

bool isSentinel(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits == SentinelBits;
}

/// The pixels the suite samples: the full border ring neighborhood, the
/// center, and a few seeded interior positions.
std::vector<std::pair<int, int>> samplePositions(int W, int H, Rng &Gen) {
  std::vector<std::pair<int, int>> Out;
  for (int X : {0, 1, W / 2, W - 2, W - 1})
    for (int Y : {0, 1, H / 2, H - 2, H - 1})
      if (X >= 0 && X < W && Y >= 0 && Y < H)
        Out.emplace_back(X, Y);
  for (int I = 0; I != 8; ++I)
    Out.emplace_back(static_cast<int>(Gen.nextBelow(W)),
                     static_cast<int>(Gen.nextBelow(H)));
  return Out;
}

/// Compiles \p FP unoptimized (so launch facts and launch bytecode line
/// up), fills external inputs with random data inside the declared
/// [0, 1] contract, then evaluates every launch at sampled pixels with
/// sentinel-initialized registers and asserts each written register --
/// including callee-stage registers left behind by recursive stage calls
/// at index-exchanged positions -- lies inside its predicted interval.
/// Launch results feed the pool, so later launches read real data.
void checkFactSoundness(const FusedProgram &FP, uint64_t Seed) {
  ExecutionOptions Options;
  Options.Opt = OptMode::Off;
  std::shared_ptr<const CompiledPlan> Plan = compilePlan(FP, Options);
  ASSERT_TRUE(Plan != nullptr);

  Rng Gen(Seed);
  std::vector<Image> Pool(Plan->Shapes.size());
  for (ImageId In : Plan->ExternalInputs) {
    const ImageInfo &Info = Plan->Shapes[In];
    Pool[In] = makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen,
                               0.0f, 1.0f);
  }

  for (const CompiledLaunch &Launch : Plan->Launches) {
    const StagedVmProgram &SP = Launch.Code;
    ASSERT_EQ(Launch.Facts.size(), SP.Stages.size());
    const ImageInfo &Info = Plan->Shapes[Launch.Output];
    Image Out(Info.Width, Info.Height, Info.Channels);
    std::vector<float> Regs(SP.NumRegs);

    long long Checked = 0;
    for (auto [X, Y] : samplePositions(Info.Width, Info.Height, Gen)) {
      for (int C = 0; C != Info.Channels; ++C) {
        std::fill(Regs.begin(), Regs.end(), sentinel());
        float V = runStagedVm(SP, Launch.Root, Pool, X, Y, C, Regs.data());
        Out.at(X, Y, C) = V;
        for (size_t SI = 0; SI != SP.Stages.size(); ++SI) {
          const VmStage &Stage = SP.Stages[SI];
          const StageValueFacts &F = Launch.Facts[SI];
          ASSERT_EQ(F.Regs.size(), Stage.Code.NumRegs);
          for (unsigned R = 0; R != Stage.Code.NumRegs; ++R) {
            float Value = Regs[Stage.RegBase + R];
            if (isSentinel(Value))
              continue;
            ++Checked;
            if (!F.Regs[R].contains(Value))
              ADD_FAILURE() << "seed " << Seed << ", launch '" << Launch.Name
                            << "', stage " << SI << ", reg " << R << ": "
                            << Value << " outside "
                            << formatInterval(F.Regs[R]) << " at (" << X
                            << ", " << Y << ", " << C << ")";
          }
        }
      }
    }
    EXPECT_GT(Checked, 0) << "launch '" << Launch.Name << "' checked nothing";

    // Later launches load this output: make the whole image real so the
    // cross-launch range seeding is exercised against actual data.
    for (int Y = 0; Y != Info.Height; ++Y)
      for (int X = 0; X != Info.Width; ++X)
        for (int C = 0; C != Info.Channels; ++C)
          Out.at(X, Y, C) =
              runStagedVm(SP, Launch.Root, Pool, X, Y, C, Regs.data());
    Pool[Launch.Output] = std::move(Out);
  }
}

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

TEST(IntervalSoundness, RegistryPipelines) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    MinCutFusionResult Result = runMinCutFusion(P, paperModel());
    FusedProgram FP = fuseProgram(P, Result.Blocks, FusionStyle::Optimized);
    SCOPED_TRACE(Spec.Name);
    checkFactSoundness(FP, 0xC0FFEE ^ std::hash<std::string>()(Spec.Name));
  }
}

class IntervalSoundnessRandom : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSoundnessRandom, RandomProgramsStayInsideFacts) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 2654435761u + 11);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(8));
  double LocalFraction = Gen.uniform(0.0, 0.7);
  Program P = makeRandomPipeline(NumKernels, LocalFraction, 16, 12, Gen);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Result.Blocks, FusionStyle::Optimized);
  checkFactSoundness(FP, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundnessRandom,
                         ::testing::Range(0, 100));

} // namespace
