//===- tests/test_costmodel.cpp - Simulator cost model -------------------------===//
//
// Accounting and timing-model properties: fusion removes global traffic
// and launches, occupancy reacts to shared-memory pressure, and the
// estimated times reproduce the evaluation's qualitative shape (memory-
// bound pipelines gain, the compute-bound Night filter does not).
//
//===----------------------------------------------------------------------===//

#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"
#include "sim/CostModel.h"
#include "sim/Runner.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

/// Baseline/optimized stats of a pipeline at a reduced size (accounting is
/// analytic, so any size exercises the same code).
struct VariantStats {
  ProgramStats Baseline;
  ProgramStats Optimized;
};

VariantStats statsFor(const Program &P) {
  VariantStats Result;
  Result.Baseline = accountFusedProgram(unfusedProgram(P));
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  Result.Optimized = accountFusedProgram(
      fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized));
  return Result;
}

TEST(CostModel, FusionReducesGlobalTrafficAndLaunches) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(256, 256);
    VariantStats Stats = statsFor(P);
    EXPECT_LE(Stats.Optimized.totalGlobalBytes(),
              Stats.Baseline.totalGlobalBytes())
        << Spec.Name;
    EXPECT_LE(Stats.Optimized.numLaunches(), Stats.Baseline.numLaunches())
        << Spec.Name;
  }
}

TEST(CostModel, UnsharpEliminatesThreeIntermediates) {
  Program P = makeUnsharp(256, 256);
  VariantStats Stats = statsFor(P);
  double ImageBytes = 256.0 * 256.0 * 4.0;
  // Baseline writes 4 images; the fused kernel writes only the output.
  double BaselineWrites = 0.0, OptimizedWrites = 0.0;
  for (const LaunchStats &L : Stats.Baseline.Launches)
    BaselineWrites += L.GlobalBytesWritten;
  for (const LaunchStats &L : Stats.Optimized.Launches)
    OptimizedWrites += L.GlobalBytesWritten;
  EXPECT_DOUBLE_EQ(BaselineWrites, 4.0 * ImageBytes);
  EXPECT_DOUBLE_EQ(OptimizedWrites, 1.0 * ImageBytes);
  EXPECT_EQ(Stats.Optimized.numLaunches(), 1u);
}

TEST(CostModel, RecomputeMultipliesComputation) {
  // Harris optimized: sx is recomputed 9x inside sx+gx, so fused ALU ops
  // exceed the baseline's.
  Program P = makeHarris(128, 128);
  VariantStats Stats = statsFor(P);
  EXPECT_GT(Stats.Optimized.totalAluOps(), Stats.Baseline.totalAluOps());
}

TEST(CostModel, OccupancyDropsWithSharedPressure) {
  DeviceSpec Device = DeviceSpec::gtx680();
  CostModelParams Params;
  LaunchStats Light;
  Light.SharedBytesPerBlock = 512.0;
  LaunchStats Heavy;
  Heavy.SharedBytesPerBlock = 24.0 * 1024.0;
  EXPECT_GT(launchOccupancy(Light, Device, Params),
            launchOccupancy(Heavy, Device, Params));
  EXPECT_LE(launchOccupancy(Light, Device, Params), 1.0);
  EXPECT_GT(launchOccupancy(Heavy, Device, Params), 0.0);
}

TEST(CostModel, LowOccupancyStretchesTime) {
  DeviceSpec Device = DeviceSpec::gtx680();
  CostModelParams Params;
  LaunchStats Stats;
  Stats.OutputPixels = 1 << 20;
  Stats.GlobalBytesRead = 64.0 * (1 << 20);
  Stats.GlobalBytesWritten = 4.0 * (1 << 20);
  Stats.AluOps = 1e7;
  double Fast = estimateLaunchTimeMs(Stats, Device, Params);
  Stats.SharedBytesPerBlock = 40.0 * 1024.0; // One block per SM.
  double Slow = estimateLaunchTimeMs(Stats, Device, Params);
  EXPECT_GT(Slow, Fast);
}

TEST(CostModel, MoreBandwidthShortensMemoryBoundKernels) {
  CostModelParams Params;
  LaunchStats Stats;
  Stats.GlobalBytesRead = 1e9;
  double Slow = estimateLaunchTimeMs(Stats, DeviceSpec::gtx745(), Params);
  double Fast = estimateLaunchTimeMs(Stats, DeviceSpec::gtx680(), Params);
  EXPECT_GT(Slow, Fast);
  EXPECT_NEAR(Slow / Fast, 192.3 / 28.8, 0.01);
}

TEST(CostModel, ProgramTimeIncludesLaunchOverheads) {
  DeviceSpec Device = DeviceSpec::k20c();
  CostModelParams Params;
  ProgramStats Stats;
  Stats.Launches.resize(4); // Four empty launches.
  double Time = estimateProgramTimeMs(Stats, Device, Params);
  EXPECT_NEAR(Time, 4 * Device.LaunchOverheadUs * 1e-3, 1e-9);
}

TEST(CostModel, DeviceSpecsMatchPaperFigures) {
  DeviceSpec A = DeviceSpec::gtx745();
  EXPECT_EQ(A.CudaCores, 384);
  EXPECT_NEAR(A.CoreClockGHz, 1.033, 1e-9);
  DeviceSpec B = DeviceSpec::gtx680();
  EXPECT_EQ(B.CudaCores, 1536);
  EXPECT_NEAR(B.MemClockMHz, 3004.0, 1e-9);
  DeviceSpec Ck = DeviceSpec::k20c();
  EXPECT_EQ(Ck.CudaCores, 2496);
  EXPECT_NEAR(Ck.CoreClockGHz, 0.706, 1e-9);
  for (const DeviceSpec &D : DeviceSpec::paperDevices()) {
    EXPECT_EQ(D.SharedMemPerSMBytes, 48 * 1024);
    EXPECT_EQ(D.RegistersPerSM, 65536);
  }
}

TEST(CostModel, OptimizedBeatsBaselineOnMemoryBoundApps) {
  CostModelParams Params;
  for (const char *Name : {"harris", "sobel", "unsharp", "shitomasi"}) {
    const PipelineSpec *Spec = findPipeline(Name);
    ASSERT_NE(Spec, nullptr);
    Program P = Spec->build();
    VariantStats Stats = statsFor(P);
    for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
      double Base = estimateProgramTimeMs(Stats.Baseline, Device, Params);
      double Opt = estimateProgramTimeMs(Stats.Optimized, Device, Params);
      EXPECT_GT(Base / Opt, 1.0) << Name << " on " << Device.Name;
    }
  }
}

TEST(CostModel, NightSpeedupIsMarginal) {
  // The compute-bound case: the paper reports at most 1.02.
  Program P = makeNight(1920, 1200);
  VariantStats Stats = statsFor(P);
  CostModelParams Params;
  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    double Base = estimateProgramTimeMs(Stats.Baseline, Device, Params);
    double Opt = estimateProgramTimeMs(Stats.Optimized, Device, Params);
    EXPECT_GE(Base / Opt, 0.99) << Device.Name;
    EXPECT_LE(Base / Opt, 1.10) << Device.Name;
  }
}

TEST(Runner, NoiseIsDeterministicAndBounded) {
  NoiseModel Noise;
  BoxStats A = simulateRuns(10.0, 500, Noise);
  BoxStats B = simulateRuns(10.0, 500, Noise);
  EXPECT_DOUBLE_EQ(A.Median, B.Median);
  EXPECT_DOUBLE_EQ(A.Max, B.Max);
  EXPECT_EQ(A.Count, 500u);
  // All samples at or above the base time, within the spike bound.
  EXPECT_GE(A.Min, 10.0);
  EXPECT_LE(A.Max, 10.0 * (1.0 + 6.0 * Noise.JitterStdDev + Noise.SpikeMax));
  EXPECT_LE(A.Q25, A.Median);
  EXPECT_LE(A.Median, A.Q75);
}

TEST(Runner, MeasureFusedProgramProducesStats) {
  Program P = makeSobel(64, 64);
  FusedProgram FP = unfusedProgram(P);
  BoxStats Stats = measureFusedProgram(FP, DeviceSpec::gtx680(),
                                       CostModelParams(), 50);
  EXPECT_EQ(Stats.Count, 50u);
  EXPECT_GT(Stats.Median, 0.0);
}

} // namespace
