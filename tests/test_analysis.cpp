//===- tests/test_analysis.cpp - Static analyzer: lint + footprint --------------===//
//
// The diagnostics engine, the program lint pass (KF-P codes on
// hand-constructed bad programs), the footprint/halo checker (KF-F codes
// against compiled fused launches), and the legality recheck (KF-F05).
// The bytecode validator has its own mutation suite in
// test_bytecode_validator.cpp.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "support/Trace.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

//===--------------------------------------------------------------------===//
// DiagnosticEngine
//===--------------------------------------------------------------------===//

TEST(Diagnostics, CountsAndFailurePolicy) {
  DiagnosticEngine DE;
  EXPECT_TRUE(DE.empty());
  EXPECT_FALSE(DE.failed());

  DE.warning("KF-P10", "unused image");
  EXPECT_EQ(DE.warningCount(), 1u);
  EXPECT_FALSE(DE.failed());
  EXPECT_TRUE(DE.failed(/*Werror=*/true));

  DE.error("KF-P01", "cycle");
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_TRUE(DE.failed());
  EXPECT_TRUE(DE.hasCode("KF-P01"));
  EXPECT_TRUE(DE.hasCode("KF-P10"));
  EXPECT_FALSE(DE.hasCode("KF-P02"));
}

TEST(Diagnostics, TextRendering) {
  DiagnosticEngine DE;
  DiagLocation Loc;
  Loc.Unit = "prog";
  Loc.Kernel = "blur";
  Loc.Stage = 2;
  Loc.Inst = 7;
  DE.error("KF-B02", "register out of range", Loc, "shrink the frame");
  std::string Text = DE.renderText();
  EXPECT_NE(Text.find("error: KF-B02:"), std::string::npos) << Text;
  EXPECT_NE(Text.find("prog"), std::string::npos);
  EXPECT_NE(Text.find("blur"), std::string::npos);
  EXPECT_NE(Text.find("register out of range"), std::string::npos);
  EXPECT_NE(Text.find("hint: shrink the frame"), std::string::npos);
}

TEST(Diagnostics, JsonRendering) {
  DiagnosticEngine DE;
  DiagLocation Loc;
  Loc.Unit = "p";
  DE.warning("KF-P10", "a \"quoted\" message", Loc);
  DE.error("KF-P01", "cycle");
  std::string Json = DE.renderJson();
  EXPECT_NE(Json.find("\"diagnostics\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"code\": \"KF-P10\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"errors\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"warnings\": 1"), std::string::npos) << Json;
}

//===--------------------------------------------------------------------===//
// Program lint
//===--------------------------------------------------------------------===//

/// Lints \p P into a fresh engine.
DiagnosticEngine lint(const Program &P) {
  DiagnosticEngine DE;
  lintProgram(P, DE);
  return DE;
}

TEST(ProgramLint, RegistryPipelinesAreClean) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    DiagnosticEngine DE = lint(P);
    EXPECT_TRUE(DE.empty()) << Spec.Name << ":\n" << DE.renderText();
  }
}

TEST(ProgramLint, CyclicDagIsKFP01) {
  Program P("cyclic");
  ImageId A = P.addImage("a", 8, 8);
  ImageId B = P.addImage("b", 8, 8);
  Kernel K1;
  K1.Name = "k1";
  K1.Inputs = {B};
  K1.Output = A;
  K1.Body = P.context().inputAt(0);
  P.addKernel(std::move(K1));
  Kernel K2;
  K2.Name = "k2";
  K2.Inputs = {A};
  K2.Output = B;
  K2.Body = P.context().inputAt(0);
  P.addKernel(std::move(K2));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P01")) << DE.renderText();
  EXPECT_TRUE(DE.failed());
}

TEST(ProgramLint, UndefinedImageIsKFP02) {
  Program P("badid");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Inputs = {In};
  K.Output = Out;
  K.Body = P.context().inputAt(0);
  KernelId Id = P.addKernel(std::move(K));
  // addKernel asserts on out-of-range ids, so corrupt the stored kernel
  // afterwards -- the lint pass exists to catch exactly this kind of
  // hand-mutated or deserialized program.
  P.kernel(Id).Inputs[0] = 7; // No such image.

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P02")) << DE.renderText();
}

TEST(ProgramLint, MultipleProducersIsKFP03) {
  Program P("twoprod");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  for (const char *Name : {"k1", "k2"}) {
    Kernel K;
    K.Name = Name;
    K.Inputs = {In};
    K.Output = Out;
    K.Body = P.context().inputAt(0);
    P.addKernel(std::move(K));
  }
  EXPECT_TRUE(lint(P).hasCode("KF-P03"));
}

TEST(ProgramLint, EvenMaskIsKFP04) {
  Program P("evenmask");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  // Field assignment bypasses the asserting Mask constructor, exactly as
  // the lenient parser does for bad fixtures.
  Mask M;
  M.Width = 2;
  M.Height = 2;
  M.Weights = {1, 1, 1, 1};
  int MaskIdx = P.addMask(std::move(M));
  Kernel K;
  K.Name = "blur";
  K.Kind = OperatorKind::Local;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = P.context().stencil(MaskIdx, ReduceOp::Sum,
                               P.context().mul(P.context().stencilInput(0),
                                               P.context().maskValue()));
  P.addKernel(std::move(K));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P04")) << DE.renderText();
}

TEST(ProgramLint, MaskCoefficientCountIsKFP04) {
  Program P("shortmask");
  Mask M;
  M.Width = 3;
  M.Height = 3;
  M.Weights = {1, 2, 3}; // 9 expected.
  P.addMask(std::move(M));
  EXPECT_TRUE(lint(P).hasCode("KF-P04"));
}

TEST(ProgramLint, OutOfRangeMaskReferenceIsKFP05) {
  Program P("badmask");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "blur";
  K.Kind = OperatorKind::Local;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = P.context().stencil(5, ReduceOp::Sum, // No mask 5.
                               P.context().stencilInput(0));
  P.addKernel(std::move(K));
  EXPECT_TRUE(lint(P).hasCode("KF-P05"));
}

TEST(ProgramLint, ShapeMismatchAndSelfReadAreKFP06) {
  Program P("shapes");
  ImageId Small = P.addImage("small", 4, 4);
  ImageId Big = P.addImage("big", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Inputs = {Small, Big};
  K.Output = Big;
  K.Body = P.context().add(P.context().inputAt(0), P.context().inputAt(1));
  P.addKernel(std::move(K));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P06")) << DE.renderText();
  EXPECT_GE(DE.errorCount(), 2u); // Shape mismatch + reads its own output.
}

TEST(ProgramLint, ChannelOutOfRangeIsKFP07) {
  Program P("channels");
  ImageId In = P.addImage("in", 8, 8, /*Channels=*/3);
  ImageId Out = P.addImage("out", 8, 8, /*Channels=*/3);
  Kernel K;
  K.Name = "k";
  K.Inputs = {In};
  K.Output = Out;
  K.Body = P.context().inputAt(0, 0, 0, /*Channel=*/5);
  P.addKernel(std::move(K));
  EXPECT_TRUE(lint(P).hasCode("KF-P07"));
}

TEST(ProgramLint, KindBodyMismatchIsKFP08) {
  Program P("kinds");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Mid = P.addImage("mid", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel Point;
  Point.Name = "offset_point";
  Point.Kind = OperatorKind::Point;
  Point.Inputs = {In};
  Point.Output = Mid;
  Point.Body = P.context().inputAt(0, 1, 0); // Offset in a point kernel.
  P.addKernel(std::move(Point));
  Kernel Local;
  Local.Name = "pointy_local";
  Local.Kind = OperatorKind::Local;
  Local.Inputs = {Mid};
  Local.Output = Out;
  Local.Body = P.context().inputAt(0); // No window in a local kernel.
  P.addKernel(std::move(Local));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P08"));
  EXPECT_EQ(DE.errorCount(), 2u) << DE.renderText();
}

TEST(ProgramLint, DeadKernelIsKFP09Warning) {
  Program P("dead");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Orphan = P.addImage("orphan", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel D;
  D.Name = "deadend";
  D.Inputs = {In};
  D.Output = Orphan; // Terminal, but not the primary result.
  D.Body = P.context().inputAt(0);
  P.addKernel(std::move(D));
  Kernel R;
  R.Name = "result";
  R.Inputs = {In};
  R.Output = Out;
  R.Body = P.context().inputAt(0);
  P.addKernel(std::move(R));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P09")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u); // Dead code is a warning, not an error.
  EXPECT_TRUE(DE.failed(/*Werror=*/true));
}

TEST(ProgramLint, UnusedImageIsKFP10Warning) {
  Program P("unused");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  P.addImage("nobody", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Inputs = {In};
  K.Output = Out;
  K.Body = P.context().inputAt(0);
  P.addKernel(std::move(K));

  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P10"));
  EXPECT_EQ(DE.errorCount(), 0u);
}

TEST(ProgramLint, BorderConflictIsKFP11Warning) {
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  P.kernel(1).Border = BorderMode::Mirror; // Consumer disagrees.
  DiagnosticEngine DE = lint(P);
  EXPECT_TRUE(DE.hasCode("KF-P11")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u);
}

TEST(ProgramLint, NonPositiveGranularityIsKFP12) {
  Program P("gran");
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Inputs = {In};
  K.Output = Out;
  K.Granularity = 0;
  K.Body = P.context().inputAt(0);
  P.addKernel(std::move(K));
  EXPECT_TRUE(lint(P).hasCode("KF-P12"));
}

//===--------------------------------------------------------------------===//
// Footprint / halo checker
//===--------------------------------------------------------------------===//

/// Shapes vector as compilePlan builds it.
std::vector<ImageInfo> poolShapes(const Program &P) {
  std::vector<ImageInfo> Shapes;
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    Shapes.push_back(P.image(Id));
  return Shapes;
}

/// Fuses both blurs of makeBlurChain into one multi-stage kernel via an
/// explicit partition (the mincut benefit model may legally decline this
/// fusion, but test_fusion_legality proves the block itself is legal).
FusedProgram fuseBlurChain(const Program &P) {
  Partition Blocks;
  Blocks.Blocks.push_back(PartitionBlock{{0, 1}});
  return fuseProgram(P, Blocks, FusionStyle::Optimized);
}

TEST(FootprintCheck, BytecodeReachMatchesIrReachOnRegistry) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    FusedProgram FP =
        fuseProgram(P, runMinCutFusion(P, HardwareModel()).Blocks,
                    FusionStyle::Optimized);
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      std::vector<int> Bc = computeBytecodeReach(SP);
      std::vector<int> Ir = computeIrReach(P, FK);
      ASSERT_EQ(Bc.size(), Ir.size());
      for (size_t S = 0; S != Bc.size(); ++S)
        EXPECT_LE(Bc[S], Ir[S]) << Spec.Name << " " << FK.Name << " stage "
                                << S;
    }
  }
}

TEST(FootprintCheck, CompiledRegistryLaunchesVerifyClean) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    FusedProgram FP =
        fuseProgram(P, runMinCutFusion(P, HardwareModel()).Blocks,
                    FusionStyle::Optimized);
    std::vector<ImageInfo> Shapes = poolShapes(P);
    DiagnosticEngine DE;
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
      int Halo =
          fusedLaunchHalo(SP, Root, P.image(P.kernel(FK.Destination).Output));
      analyzeLaunch(P, FK, FK.Name, SP, Root, Halo, Shapes, DE);
    }
    EXPECT_FALSE(DE.failed()) << Spec.Name << ":\n" << DE.renderText();
  }
}

TEST(FootprintCheck, UndersizedHaloIsKFF01) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  FusedProgram FP = fuseBlurChain(P);
  ASSERT_EQ(FP.Kernels.size(), 1u); // Both blurs fuse.
  const FusedKernel &FK = FP.Kernels.front();
  StagedVmProgram SP = compileFusedKernel(FP, FK);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  int Halo =
      fusedLaunchHalo(SP, Root, P.image(P.kernel(FK.Destination).Output));
  ASSERT_GT(Halo, 0);

  DiagnosticEngine DE;
  checkLaunchFootprint(P, FK, SP, Root, Halo - 1, poolShapes(P), DE);
  EXPECT_TRUE(DE.hasCode("KF-F01")) << DE.renderText();
}

TEST(FootprintCheck, ShrunkReachMetadataIsKFF03) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  FusedProgram FP = fuseBlurChain(P);
  const FusedKernel &FK = FP.Kernels.front();
  StagedVmProgram SP = compileFusedKernel(FP, FK);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  ASSERT_GT(SP.Reach[Root], 0);
  SP.Reach[Root] = 0; // Claim the root reaches nothing.

  DiagnosticEngine DE;
  checkLaunchFootprint(P, FK, SP, Root, /*Halo=*/8, poolShapes(P), DE);
  EXPECT_TRUE(DE.hasCode("KF-F03")) << DE.renderText();
}

TEST(FootprintCheck, DishonestUniformExtentsIsKFF04) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  FusedProgram FP = fuseBlurChain(P);
  const FusedKernel &FK = FP.Kernels.front();
  StagedVmProgram SP = compileFusedKernel(FP, FK);
  ASSERT_TRUE(SP.UniformExtents);
  SP.Stages.front().OutW += 4; // Stage extents no longer agree.

  DiagnosticEngine DE;
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  checkLaunchFootprint(P, FK, SP, Root, /*Halo=*/8, poolShapes(P), DE);
  EXPECT_TRUE(DE.hasCode("KF-F04")) << DE.renderText();
}

//===--------------------------------------------------------------------===//
// Legality recheck (KF-F05) and trace counters
//===--------------------------------------------------------------------===//

TEST(AnalyzeLegality, RegistryFusionsPassRecheck) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    HardwareModel HW;
    FusedProgram FP = fuseProgram(P, runMinCutFusion(P, HW).Blocks,
                                  FusionStyle::Optimized);
    DiagnosticEngine DE;
    checkFusedLegality(FP, HW, LegalityOptions(), DE);
    EXPECT_FALSE(DE.failed()) << Spec.Name << ":\n" << DE.renderText();
  }
}

TEST(AnalyzeLegality, IllegalHandBuiltBlockIsKFF05) {
  // Harris {dx, sx}: dx's output also feeds sxy outside the block -- the
  // Figure 2c external-output scenario no partitioner may emit.
  Program P = makeHarris(16, 16);
  KernelId Dx = 0, Sx = 0;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    if (P.kernel(Id).Name == "dx")
      Dx = Id;
    if (P.kernel(Id).Name == "sx")
      Sx = Id;
  }
  Partition Blocks = makeSingletonPartition(P);
  FusedProgram FP = fuseProgram(P, Blocks, FusionStyle::Optimized);
  FusedKernel Bad;
  Bad.Name = "dx+sx";
  Bad.Stages.push_back(FusedStage{Dx, Placement::Register, 1.0, 1, 0});
  Bad.Stages.push_back(FusedStage{Sx, Placement::Global, 1.0, 1, 0});
  Bad.Destination = Sx;
  Bad.Destinations = {Sx};
  FP.Kernels.push_back(std::move(Bad));

  DiagnosticEngine DE;
  checkFusedLegality(FP, HardwareModel(), LegalityOptions(), DE);
  EXPECT_TRUE(DE.hasCode("KF-F05")) << DE.renderText();
}

TEST(AnalyzeLaunch, RecordsTraceCounters) {
  TraceRecorder::global().clear();
  TraceRecorder::global().setEnabled(true);
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  FusedProgram FP = fuseBlurChain(P);
  const FusedKernel &FK = FP.Kernels.front();
  StagedVmProgram SP = compileFusedKernel(FP, FK);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  DiagnosticEngine DE;
  analyzeLaunch(P, FK, FK.Name, SP, Root, /*Halo=*/8, poolShapes(P), DE);
  TraceRecorder::global().setEnabled(false);

  std::map<std::string, double> Counters = TraceRecorder::global().counters();
  EXPECT_GE(Counters["analysis.launches_checked"], 1.0);
  bool SawSpan = false;
  for (const TraceSpanRecord &Span : TraceRecorder::global().spans())
    if (Span.Name == "analysis.launch")
      SawSpan = true;
  EXPECT_TRUE(SawSpan);
  TraceRecorder::global().clear();
}

} // namespace
