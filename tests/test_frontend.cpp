//===- tests/test_frontend.cpp - Lexer / parser / serializer --------------------===//
//
// The textual pipeline format: lexing, parsing with diagnostics, and the
// serialize -> parse round trip, checked structurally (fixpoint of
// serialization) and semantically (identical execution) on all bundled
// pipelines.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

TEST(Lexer, TokenizesAllKinds) {
  std::vector<std::string> Errors;
  std::vector<Token> Tokens = lexPipelineText(
      "program p # comment\nimage in 4 4\na -> b ( ) [ ] { } , . = + - * "
      "/ < > 3.5e-2",
      Errors);
  EXPECT_TRUE(Errors.empty());
  ASSERT_GE(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[0].Text, "program");
  EXPECT_EQ(Tokens[0].Line, 1u);
  // 'image' starts line 2 (the comment was skipped).
  EXPECT_EQ(Tokens[2].Text, "image");
  EXPECT_EQ(Tokens[2].Line, 2u);
  // The final number lexes as one token.
  EXPECT_EQ(Tokens[Tokens.size() - 2].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[Tokens.size() - 2].Text, "3.5e-2");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

TEST(Lexer, ReportsUnexpectedCharacters) {
  std::vector<std::string> Errors;
  lexPipelineText("program p\n  @", Errors);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(Errors[0].find("'@'"), std::string::npos);
}

TEST(Parser, ParsesMinimalPipeline) {
  ParseResult Result = parsePipelineText(R"(
program tiny
image in 8 8
image out 8 8
point kernel scale(in) -> out {
  out = in * 2 + 0.5
}
)");
  ASSERT_TRUE(Result.success()) << (Result.Errors.empty()
                                        ? "?"
                                        : Result.Errors.front());
  EXPECT_EQ(Result.Prog->name(), "tiny");
  EXPECT_EQ(Result.Prog->numKernels(), 1u);
  EXPECT_EQ(Result.Prog->kernel(0).Kind, OperatorKind::Point);
}

TEST(Parser, ParsesLocalKernelWithMaskAndBorder) {
  ParseResult Result = parsePipelineText(R"(
program conv
image in 8 8
image out 8 8
mask g 3 3 [1 2 1 2 4 2 1 2 1]
local kernel blur(in) -> out border mirror {
  out = sum(g, mv * in[])
}
)");
  ASSERT_TRUE(Result.success()) << (Result.Errors.empty()
                                        ? "?"
                                        : Result.Errors.front());
  EXPECT_EQ(Result.Prog->kernel(0).Border, BorderMode::Mirror);
  EXPECT_EQ(Result.Prog->numMasks(), 1u);
  EXPECT_EQ(Result.Prog->mask(0).size(), 9);
}

TEST(Parser, OperatorPrecedenceIsConventional) {
  ParseResult Result = parsePipelineText(R"(
program prec
image in 4 4
image out 4 4
point kernel k(in) -> out {
  out = 1 + in * 2 < 7
}
)");
  ASSERT_TRUE(Result.success());
  // Top node: CmpLT; left: Add(1, Mul(in, 2)); right: 7.
  const Expr *Body = Result.Prog->kernel(0).Body;
  ASSERT_EQ(Body->Kind, ExprKind::Binary);
  EXPECT_EQ(Body->BinaryOp, BinOp::CmpLT);
  EXPECT_EQ(Body->Lhs->BinaryOp, BinOp::Add);
  EXPECT_EQ(Body->Lhs->Rhs->BinaryOp, BinOp::Mul);
}

TEST(Parser, DiagnosesUnknownImage) {
  ParseResult Result = parsePipelineText(R"(
program bad
image in 8 8
point kernel k(nope) -> in {
  out = 1
}
)");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("unknown image 'nope'"),
            std::string::npos);
}

TEST(Parser, DiagnosesWrongMaskWeightCount) {
  ParseResult Result = parsePipelineText(R"(
program bad
mask g 3 3 [1 2 3]
)");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("expects 9 weights"),
            std::string::npos);
}

TEST(Parser, DiagnosesUnknownNameInExpression) {
  ParseResult Result = parsePipelineText(R"(
program bad
image in 8 8
image out 8 8
point kernel k(in) -> out {
  out = other + 1
}
)");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("unknown name 'other'"),
            std::string::npos);
}

TEST(Parser, FoldsVerifierDiagnostics) {
  // Structurally parseable but semantically invalid: a point kernel with
  // a window access.
  ParseResult Result = parsePipelineText(R"(
program bad
image in 8 8
image out 8 8
mask g 3 3 [1 1 1 1 1 1 1 1 1]
point kernel k(in) -> out {
  out = sum(g, in[])
}
)");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("verifier:"), std::string::npos);
}

TEST(Parser, DiagnosesMissingBrace) {
  ParseResult Result = parsePipelineText(R"(
program bad
image in 8 8
image out 8 8
point kernel k(in) -> out {
  out = in
)");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("'}'"), std::string::npos);
}

TEST(Parser, FileNotFound) {
  ParseResult Result = parsePipelineFile("/nonexistent/pipeline.kfp");
  ASSERT_FALSE(Result.success());
  EXPECT_NE(Result.Errors.front().find("cannot open"), std::string::npos);
}

/// Round trip over every bundled pipeline.
class FrontendRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(FrontendRoundTrip, SerializeParseFixpointAndSameSemantics) {
  const PipelineSpec *Spec = findPipeline(GetParam());
  ASSERT_NE(Spec, nullptr);
  int W = GetParam() == "night" ? 18 : 20;
  int H = 16;
  Program Original = Spec->Builder(W, H);

  // Structural fixpoint: serialize(parse(serialize(P))) == serialize(P).
  std::string Text = serializeProgram(Original);
  ParseResult Parsed = parsePipelineText(Text);
  ASSERT_TRUE(Parsed.success())
      << GetParam() << ": "
      << (Parsed.Errors.empty() ? "?" : Parsed.Errors.front()) << "\n"
      << Text;
  EXPECT_EQ(serializeProgram(*Parsed.Prog), Text) << GetParam();

  // Semantic equivalence: identical execution on random input.
  const ImageInfo &InInfo = Original.image(0);
  Rng Gen(31);
  Image Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);

  std::vector<Image> PoolA = makeImagePool(Original);
  PoolA[0] = Input;
  runUnfused(Original, PoolA);
  std::vector<Image> PoolB = makeImagePool(*Parsed.Prog);
  PoolB[0] = Input;
  runUnfused(*Parsed.Prog, PoolB);

  for (ImageId Out : Original.terminalOutputs())
    EXPECT_DOUBLE_EQ(maxAbsDifference(PoolA[Out], PoolB[Out]), 0.0)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, FrontendRoundTrip,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

} // namespace
