//===- tests/test_frontend_robustness.cpp - Parser stress tests -----------------===//
//
// Robustness of the .kfp frontend: malformed inputs of every shape must
// produce diagnostics, never crashes, hangs, or invalid programs. The
// randomized rounds feed token soup assembled from the grammar's own
// vocabulary -- the inputs most likely to confuse a recursive-descent
// parser.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

TEST(ParserRobustness, EmptyAndWhitespaceInputs) {
  for (const char *Source : {"", "   \n\n  ", "# only a comment\n"}) {
    ParseResult Result = parsePipelineText(Source);
    EXPECT_FALSE(Result.success()) << "'" << Source << "'";
    EXPECT_FALSE(Result.Errors.empty());
  }
}

TEST(ParserRobustness, TruncatedPrograms) {
  const char *Cases[] = {
      "program",
      "program p image",
      "program p image img",
      "program p image img 8",
      "program p mask m",
      "program p mask m 3 3 [1 2",
      "program p point",
      "program p point kernel",
      "program p point kernel k",
      "program p point kernel k (",
      "program p image a 8 8 image b 8 8 point kernel k(a) ->",
      "program p image a 8 8 image b 8 8 point kernel k(a) -> b {",
      "program p image a 8 8 image b 8 8 point kernel k(a) -> b { out",
      "program p image a 8 8 image b 8 8 point kernel k(a) -> b { out =",
      "program p image a 8 8 image b 8 8 point kernel k(a) -> b { out = a "
      "+ }",
  };
  for (const char *Source : Cases) {
    ParseResult Result = parsePipelineText(Source);
    EXPECT_FALSE(Result.success()) << Source;
    EXPECT_FALSE(Result.Errors.empty()) << Source;
  }
}

TEST(ParserRobustness, MisplacedTokens) {
  const char *Cases[] = {
      "program p ]",
      "program p image a 8 8 -> b",
      "program p mask m -3 3 [1]",
      "program p mask m 2 2 [1 1 1 1]", // Even extents.
      "program p image a 0 8",          // Zero extent.
      "program p image a 8 8 image a 8 8", // Redeclared.
      "program p image a 8 8 image b 8 8 global kernel k(a) -> b { out = "
      "a ( 1 }", // Access with one index.
  };
  for (const char *Source : Cases) {
    ParseResult Result = parsePipelineText(Source);
    EXPECT_FALSE(Result.success()) << Source;
  }
}

TEST(ParserRobustness, RandomTokenSoupNeverCrashes) {
  const char *Vocabulary[] = {
      "program", "image",  "mask",   "point", "local",  "global",
      "kernel",  "border", "clamp",  "value", "out",    "sum",
      "select",  "min",    "sqrt",   "mv",    "dx",     "in",
      "k",       "m",      "(",      ")",     "[",      "]",
      "{",       "}",      ",",      ".",     "=",      "->",
      "+",       "-",      "*",      "/",     "<",      ">",
      "3",       "0.5",    "8",      "1e3",
  };
  Rng Gen(0xF022);
  for (int Round = 0; Round != 300; ++Round) {
    std::string Source;
    unsigned Length = 1 + static_cast<unsigned>(Gen.nextBelow(60));
    for (unsigned I = 0; I != Length; ++I) {
      Source += Vocabulary[Gen.nextBelow(std::size(Vocabulary))];
      Source += ' ';
    }
    ParseResult Result = parsePipelineText(Source);
    // Any outcome is fine as long as it is consistent: either a verified
    // program or diagnostics, never both empty.
    if (!Result.Prog) {
      EXPECT_FALSE(Result.Errors.empty())
          << "round " << Round << ": " << Source;
    }
  }
}

TEST(ParserRobustness, DeepExpressionNesting) {
  // 200 nested parentheses: recursive descent must survive (the depth is
  // bounded and far below stack limits).
  std::string Body = "a";
  for (int I = 0; I != 200; ++I)
    Body = "(" + Body + " + 1)";
  std::string Source = "program p\nimage a 8 8\nimage b 8 8\n"
                       "point kernel k(a) -> b { out = " +
                       Body + " }";
  ParseResult Result = parsePipelineText(Source);
  EXPECT_TRUE(Result.success());
}

TEST(ParserRobustness, LongIdentifiersAndNumbers) {
  std::string Long(400, 'a');
  std::string Source = "program " + Long + "\nimage " + Long +
                       " 8 8\nimage b 8 8\npoint kernel k(" + Long +
                       ") -> b { out = " + Long + " * 1234567890.125 }";
  ParseResult Result = parsePipelineText(Source);
  EXPECT_TRUE(Result.success());
  EXPECT_EQ(Result.Prog->name(), Long);
}

/// True when some diagnostic mentions \p Needle.
bool anyErrorContains(const ParseResult &Result, const std::string &Needle) {
  for (const std::string &Error : Result.Errors)
    if (Error.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(ParserRobustness, OutOfRangeIntegerLiteral) {
  // An image extent that overflows long must be a diagnostic, not silent
  // truncation (atoi/strtol without errno checking would return garbage).
  ParseResult Result = parsePipelineText(
      "program p\nimage a 99999999999999999999 8\nimage b 8 8\n"
      "point kernel k(a) -> b { out = a }");
  EXPECT_FALSE(Result.success());
  EXPECT_TRUE(anyErrorContains(Result, "out of range"));
}

TEST(ParserRobustness, OutOfRangeFloatLiteral) {
  // 1e999 overflows float; both the plain literal and the negated
  // constant-fold path must diagnose instead of producing inf.
  for (const char *Literal : {"1e999", "-1e999"}) {
    std::string Source = std::string("program p\nimage a 8 8\nimage b 8 8\n"
                                     "point kernel k(a) -> b { out = a * ") +
                         Literal + " }";
    ParseResult Result = parsePipelineText(Source);
    EXPECT_FALSE(Result.success()) << Literal;
    EXPECT_TRUE(anyErrorContains(Result, "out of range")) << Literal;
  }
}

TEST(ParserRobustness, ExtremeButRepresentableLiteralsParse) {
  // Large-but-finite and underflowing literals are fine: 1e30 is a valid
  // float, and 1e-999 underflows to zero without being an error.
  for (const char *Literal : {"1e30", "1e-999", "3.4e38"}) {
    std::string Source = std::string("program p\nimage a 8 8\nimage b 8 8\n"
                                     "point kernel k(a) -> b { out = a * ") +
                         Literal + " }";
    ParseResult Result = parsePipelineText(Source);
    EXPECT_TRUE(Result.success()) << Literal;
  }
}

} // namespace
