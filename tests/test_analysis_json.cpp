//===- tests/test_analysis_json.cpp - Diagnostics JSON schema -------------------===//
//
// Schema-style tests for the --analysis-json output surface
// (DiagnosticEngine::renderJson): the machine-readable contract is the
// required top-level keys, a closed severity enum, and the stable
// diagnostic code registry of docs/ANALYSIS.md -- every code the passes
// can emit (KF-P, KF-F, KF-B, KF-V) stays in the registry, and every
// diagnostic a battery of bad fixtures produces carries a registered
// code. Downstream consumers key on these strings; renaming one is a
// breaking change this test is meant to catch.
//
//===----------------------------------------------------------------------===//

#include "analysis/BytecodeValidator.h"
#include "analysis/FootprintCheck.h"
#include "analysis/IntervalAnalysis.h"
#include "analysis/ProgramLint.h"
#include "frontend/Parser.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <set>
#include <string>

using namespace kf;

namespace {

/// The stable code registry (docs/ANALYSIS.md). Append-only: removing or
/// renaming an entry breaks JSON consumers.
const std::set<std::string> &knownCodes() {
  static const std::set<std::string> Codes = {
      // Driver-level parse failure.
      "KF-P00",
      // Program/IR lint.
      "KF-P01", "KF-P02", "KF-P03", "KF-P04", "KF-P05", "KF-P06", "KF-P07",
      "KF-P08", "KF-P09", "KF-P10", "KF-P11", "KF-P12",
      // Footprint / halo checks.
      "KF-F01", "KF-F02", "KF-F03", "KF-F04", "KF-F05", "KF-F06",
      // Bytecode validation.
      "KF-B01", "KF-B02", "KF-B03", "KF-B04", "KF-B05", "KF-B06", "KF-B07",
      "KF-B08", "KF-B09", "KF-B10", "KF-B11",
      // Interval abstract interpretation.
      "KF-V01", "KF-V02", "KF-V03", "KF-V04", "KF-V05", "KF-V06",
  };
  return Codes;
}

const std::set<std::string> &severityEnum() {
  static const std::set<std::string> Severities = {"note", "warning",
                                                   "error"};
  return Severities;
}

std::string fixtureDir() {
  for (const char *Candidate :
       {"fixtures/analysis/", "tests/fixtures/analysis/",
        "../tests/fixtures/analysis/", "../../tests/fixtures/analysis/",
        "../../../tests/fixtures/analysis/"}) {
    std::ifstream Probe(std::string(Candidate) + "cyclic.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

/// Extracts every value of a `"key": "value"` string field from
/// rendered JSON.
std::vector<std::string> stringField(const std::string &Json,
                                     const std::string &Key) {
  std::vector<std::string> Values;
  const std::string Needle = "\"" + Key + "\": \"";
  size_t Pos = 0;
  while ((Pos = Json.find(Needle, Pos)) != std::string::npos) {
    Pos += Needle.size();
    size_t End = Json.find('"', Pos);
    if (End == std::string::npos)
      break;
    Values.push_back(Json.substr(Pos, End - Pos));
    Pos = End;
  }
  return Values;
}

/// Runs the full analysis stack of `kfc --analyze` over one leniently
/// parsed fixture: lint, and -- when the program is structurally sound
/// enough to fuse -- per-launch bytecode validation, footprint checks,
/// and interval interpretation.
DiagnosticEngine analyzeFixture(const std::string &File) {
  DiagnosticEngine DE;
  std::string Dir = fixtureDir();
  EXPECT_FALSE(Dir.empty()) << "tests/fixtures/analysis not found";
  ParseResult Parsed = parsePipelineFile(Dir + File, /*Verify=*/false);
  if (!Parsed.Prog) {
    for (const std::string &Error : Parsed.Errors)
      DE.error("KF-P00", Error);
    return DE;
  }
  lintProgram(*Parsed.Prog, DE);
  if (DE.errorCount() != 0)
    return DE;
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  MinCutFusionResult Result = runMinCutFusion(*Parsed.Prog, HW);
  FusedProgram FP =
      fuseProgram(*Parsed.Prog, Result.Blocks, FusionStyle::Optimized);
  std::vector<ImageInfo> Shapes;
  for (ImageId Id = 0; Id != Parsed.Prog->numImages(); ++Id)
    Shapes.push_back(Parsed.Prog->image(Id));
  for (const FusedKernel &FK : FP.Kernels) {
    StagedVmProgram SP = compileFusedKernel(FP, FK);
    uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
    validateStagedProgram(SP, Root, Shapes, DE);
    DiagLocation Loc;
    Loc.Kernel = FK.Name;
    analyzeStagedIntervals(SP, Root, {}, &DE, Loc);
  }
  return DE;
}

const std::vector<std::string> &batteryFixtures() {
  static const std::vector<std::string> Fixtures = {
      "cyclic.kfp",          "undefined_image.kfp", "even_mask.kfp",
      "unused_output.kfp",   "border_conflict.kfp", "shape_mismatch.kfp",
      "div_by_zero.kfp",     "sqrt_domain.kfp",     "pow_domain.kfp",
      "guaranteed_nan.kfp",  "decided_select.kfp",  "noop_clamp.kfp",
  };
  return Fixtures;
}

TEST(AnalysisJson, RequiredTopLevelKeys) {
  DiagnosticEngine DE = analyzeFixture("div_by_zero.kfp");
  std::string Json = DE.renderJson();
  for (const char *Key : {"\"diagnostics\"", "\"errors\":", "\"warnings\":"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Json;
}

TEST(AnalysisJson, EveryDiagnosticCarriesTheRequiredFields) {
  for (const std::string &File : batteryFixtures()) {
    SCOPED_TRACE(File);
    DiagnosticEngine DE = analyzeFixture(File);
    EXPECT_FALSE(DE.empty()) << "fixture produced no diagnostics";
    std::string Json = DE.renderJson();
    std::vector<std::string> Codes = stringField(Json, "code");
    std::vector<std::string> Severities = stringField(Json, "severity");
    std::vector<std::string> Messages = stringField(Json, "message");
    EXPECT_EQ(Codes.size(), DE.diagnostics().size()) << Json;
    EXPECT_EQ(Severities.size(), DE.diagnostics().size()) << Json;
    EXPECT_EQ(Messages.size(), DE.diagnostics().size()) << Json;
    for (const std::string &Message : Messages)
      EXPECT_FALSE(Message.empty());
  }
}

TEST(AnalysisJson, SeverityIsAClosedEnum) {
  for (const std::string &File : batteryFixtures()) {
    DiagnosticEngine DE = analyzeFixture(File);
    for (const std::string &Severity :
         stringField(DE.renderJson(), "severity"))
      EXPECT_TRUE(severityEnum().count(Severity))
          << File << ": unknown severity '" << Severity << "'";
  }
}

TEST(AnalysisJson, EveryEmittedCodeIsRegistered) {
  for (const std::string &File : batteryFixtures()) {
    DiagnosticEngine DE = analyzeFixture(File);
    for (const Diagnostic &D : DE.diagnostics())
      EXPECT_TRUE(knownCodes().count(D.Code))
          << File << ": unregistered diagnostic code '" << D.Code << "'";
  }
}

TEST(AnalysisJson, CodeRegistryTableMatchesTheKnownCodeList) {
  // Diagnostics.h's DiagCodeRegistry (which tools/check_doc_links.py
  // parses to keep the docs honest) and this file's knownCodes() list
  // must agree exactly, in both directions.
  EXPECT_EQ(std::size(DiagCodeRegistry), knownCodes().size());
  for (const DiagCodeInfo &Info : DiagCodeRegistry)
    EXPECT_TRUE(knownCodes().count(Info.Code))
        << "registry code '" << Info.Code << "' missing from knownCodes()";
  for (const std::string &Code : knownCodes()) {
    const DiagCodeInfo *Info = lookupDiagCode(Code);
    ASSERT_NE(Info, nullptr) << "known code '" << Code
                             << "' missing from DiagCodeRegistry";
    EXPECT_TRUE(severityEnum().count(diagSeverityName(Info->Severity)));
  }
  EXPECT_EQ(lookupDiagCode("KF-X99"), nullptr);
}

TEST(AnalysisJson, EmittedSeveritiesMatchTheRegistry) {
  // Every diagnostic a fixture produces must carry the severity the
  // registry table declares for its code.
  for (const std::string &File : batteryFixtures()) {
    DiagnosticEngine DE = analyzeFixture(File);
    for (const Diagnostic &D : DE.diagnostics()) {
      const DiagCodeInfo *Info = lookupDiagCode(D.Code);
      ASSERT_NE(Info, nullptr) << File << ": " << D.Code;
      EXPECT_EQ(Info->Severity, D.Severity)
          << File << ": code " << D.Code << " emitted as "
          << diagSeverityName(D.Severity) << " but registered as "
          << diagSeverityName(Info->Severity);
    }
  }
}

TEST(AnalysisJson, EveryIntervalCodeHasAFixtureWitness) {
  // Each KF-V code must be demonstrable on at least one shipped fixture
  // (the text/JSON surface of kfc --analyze is pinned by ctest entries on
  // the same files).
  const std::pair<const char *, const char *> Witnesses[] = {
      {"KF-V01", "div_by_zero.kfp"},   {"KF-V02", "sqrt_domain.kfp"},
      {"KF-V03", "pow_domain.kfp"},    {"KF-V04", "guaranteed_nan.kfp"},
      {"KF-V05", "decided_select.kfp"}, {"KF-V06", "noop_clamp.kfp"},
  };
  for (const auto &[Code, File] : Witnesses) {
    DiagnosticEngine DE = analyzeFixture(File);
    EXPECT_TRUE(DE.hasCode(Code))
        << File << " must witness " << Code << ":\n"
        << DE.renderText();
    std::string Json = DE.renderJson();
    EXPECT_NE(Json.find(std::string("\"code\": \"") + Code + "\""),
              std::string::npos)
        << Json;
  }
}

TEST(AnalysisJson, ShippedExamplesAreIntervalClean) {
  // The registry builders mirror examples/pipelines/*.kfp; none may
  // trigger interval warnings at paper shapes.
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.build();
    HardwareModel HW;
    HW.SharedMemThreshold = 2.0;
    MinCutFusionResult Result = runMinCutFusion(P, HW);
    FusedProgram FP = fuseProgram(P, Result.Blocks, FusionStyle::Optimized);
    DiagnosticEngine DE;
    std::vector<InputRange> PoolRanges(P.numImages());
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
      DiagLocation Loc;
      Loc.Kernel = FK.Name;
      IntervalAnalysisResult Intervals =
          analyzeStagedIntervals(SP, Root, PoolRanges, &DE, Loc);
      for (KernelId DestId : FK.Destinations) {
        uint16_t DestRoot = 0;
        for (size_t I = 0; I != FK.Stages.size(); ++I)
          if (FK.Stages[I].Kernel == DestId)
            DestRoot = static_cast<uint16_t>(I);
        const RegInterval &R = Intervals.Stages[DestRoot].Result;
        InputRange Written;
        Written.Lo = R.Lo;
        Written.Hi = R.Hi;
        Written.MayNaN = R.MayNaN;
        PoolRanges[P.kernel(DestId).Output] = Written;
      }
    }
    EXPECT_EQ(DE.errorCount(), 0u) << Spec.Name << ":\n" << DE.renderText();
    EXPECT_EQ(DE.warningCount(), 0u) << Spec.Name << ":\n" << DE.renderText();
  }
}

} // namespace
