//===- tests/test_golden_kfp.cpp - .kfp serializer golden files -----------------===//
//
// Byte-for-byte golden tests for the .kfp serializer. The plan cache of
// the serving layer keys on content hashes of parsed programs, so silent
// format drift (whitespace, float printing, declaration order) would
// invalidate cache keys and golden comparisons everywhere. Each fixture
// under tests/golden/ is the canonical serialization of a small builder
// program; the serializer must reproduce it exactly, and parsing the
// fixture must round-trip to the identical bytes and structural hash.
//
// To regenerate after an *intentional* format change, write the new
// serializeProgram output over the fixture and review the diff.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>

using namespace kf;

namespace {

/// Locates the repository's tests/golden directory relative to the test
/// binary's working directory (ctest runs in build/tests).
std::string goldenDir() {
  for (const char *Candidate :
       {"golden/", "tests/golden/", "../tests/golden/",
        "../../tests/golden/", "../../../tests/golden/"}) {
    std::ifstream Probe(std::string(Candidate) + "blur_chain_clamp.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

struct GoldenCase {
  const char *File;
  std::function<Program()> Builder;
};

class GoldenKfp : public ::testing::TestWithParam<int> {};

const GoldenCase &goldenCase(int Index) {
  static const GoldenCase Cases[] = {
      {"blur_chain_clamp.kfp",
       [] { return makeBlurChain(8, 6, BorderMode::Clamp); }},
      {"figure4.kfp", [] { return makeFigure4Program(); }},
      {"sobel_small.kfp", [] { return makeSobel(12, 10); }},
  };
  return Cases[Index];
}

TEST_P(GoldenKfp, SerializerMatchesFixtureByteForByte) {
  std::string Dir = goldenDir();
  ASSERT_FALSE(Dir.empty()) << "tests/golden not found from the test cwd";
  const GoldenCase &Case = goldenCase(GetParam());

  std::string Golden = readFile(Dir + Case.File);
  ASSERT_FALSE(Golden.empty()) << Case.File;

  Program Built = Case.Builder();
  EXPECT_EQ(serializeProgram(Built), Golden)
      << Case.File
      << " drifted from the serializer output; if the format change is "
         "intentional, regenerate the fixture and review the diff";

  // The fixture must also round-trip: parse -> serialize reproduces the
  // exact bytes, and the parsed program is structurally identical to the
  // builder's (same plan-cache key).
  ParseResult Parsed = parsePipelineText(Golden);
  ASSERT_TRUE(Parsed.success())
      << Case.File << ": "
      << (Parsed.Errors.empty() ? "?" : Parsed.Errors.front());
  EXPECT_EQ(serializeProgram(*Parsed.Prog), Golden) << Case.File;
  EXPECT_EQ(Parsed.Prog->structuralHash(), Built.structuralHash())
      << Case.File;
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenKfp, ::testing::Range(0, 3),
                         [](const auto &Info) {
                           std::string Name = goldenCase(Info.param).File;
                           return Name.substr(0, Name.find('.'));
                         });

} // namespace
