//===- tests/test_transform.cpp - Fuser structure tests -----------------------===//
//
// Structural properties of the fusion transform: stage ordering,
// placement decisions (register vs register-recompute vs shared tile,
// optimized vs basic style), multiplicities along recompute chains, and
// the grown window metadata (Eq. 9).
//
//===----------------------------------------------------------------------===//

#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.GlobalAccessCycles = 400.0;
  HW.SharedAccessCycles = 4.0;
  HW.AluCost = 4.0;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

const FusedKernel *kernelNamed(const FusedProgram &FP,
                               const std::string &Name) {
  for (const FusedKernel &FK : FP.Kernels)
    if (FK.Name == Name)
      return &FK;
  return nullptr;
}

TEST(Fuser, UnfusedProgramHasOneLaunchPerKernel) {
  Program P = makeHarris(32, 32);
  FusedProgram FP = unfusedProgram(P);
  EXPECT_EQ(FP.numLaunches(), P.numKernels());
  for (const FusedKernel &FK : FP.Kernels) {
    EXPECT_TRUE(FK.isSingleton());
    EXPECT_EQ(FK.destinationStage().OutputPlacement, Placement::Global);
    EXPECT_DOUBLE_EQ(FK.destinationStage().Multiplicity, 1.0);
  }
}

TEST(Fuser, HarrisOptimizedPlacesRecompute) {
  Program P = makeHarris(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  EXPECT_EQ(FP.numLaunches(), 6u);

  const FusedKernel *SxGx = kernelNamed(FP, "sx+gx");
  ASSERT_NE(SxGx, nullptr);
  ASSERT_EQ(SxGx->Stages.size(), 2u);
  // sx is window-consumed by the local gx: optimized style recomputes it
  // into registers, 9 evaluations per output pixel (the 3x3 window).
  EXPECT_EQ(SxGx->Stages[0].OutputPlacement, Placement::RegisterRecompute);
  EXPECT_DOUBLE_EQ(SxGx->Stages[0].Multiplicity, 9.0);
  EXPECT_EQ(SxGx->Stages[1].OutputPlacement, Placement::Global);
}

TEST(Fuser, HarrisBasicStyleStagesThroughSharedMemory) {
  Program P = makeHarris(32, 32);
  BasicFusionResult Fusion = runBasicFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Basic);
  const FusedKernel *SxGx = kernelNamed(FP, "sx+gx");
  ASSERT_NE(SxGx, nullptr);
  // Prior work stages the point-to-local intermediate in shared memory.
  EXPECT_EQ(SxGx->Stages[0].OutputPlacement, Placement::SharedTile);
  // Tile fill is amortized over the thread block: multiplicity is the
  // tile-to-block area ratio, slightly above 1.
  EXPECT_GT(SxGx->Stages[0].Multiplicity, 1.0);
  EXPECT_LT(SxGx->Stages[0].Multiplicity, 9.0);
}

TEST(Fuser, SobelFusedKernelUsesRegistersForPointConsumer) {
  Program P = makeSobel(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 1u);
  const FusedKernel &FK = FP.Kernels.front();
  ASSERT_EQ(FK.Stages.size(), 3u);
  // dx and dy are consumed point-wise by mag: plain register placement.
  EXPECT_EQ(FK.Stages[0].OutputPlacement, Placement::Register);
  EXPECT_EQ(FK.Stages[1].OutputPlacement, Placement::Register);
  EXPECT_DOUBLE_EQ(FK.Stages[0].Multiplicity, 1.0);
  EXPECT_EQ(FK.Stages[2].OutputPlacement, Placement::Global);
}

TEST(Fuser, BlurChainGrowsWindowPerEquation9) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  Partition S;
  S.Blocks.push_back(PartitionBlock{{0, 1}});
  FusedProgram FP = fuseProgram(P, S, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 1u);
  const FusedKernel &FK = FP.Kernels.front();
  // conv0 keeps its own window (3); the destination conv1 grows to 5.
  EXPECT_EQ(FK.Stages[0].EffectiveWindowWidth, 3);
  EXPECT_EQ(FK.Stages[1].EffectiveWindowWidth, 5);
  // Local producer window-consumed by a local consumer: shared tile.
  EXPECT_EQ(FK.Stages[0].OutputPlacement, Placement::SharedTile);
}

TEST(Fuser, UnsharpSingleKernelKeepsEverythingInRegisters) {
  Program P = makeUnsharp(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 1u);
  const FusedKernel &FK = FP.Kernels.front();
  ASSERT_EQ(FK.Stages.size(), 4u);
  for (size_t I = 0; I + 1 < FK.Stages.size(); ++I) {
    EXPECT_EQ(FK.Stages[I].OutputPlacement, Placement::Register);
    EXPECT_DOUBLE_EQ(FK.Stages[I].Multiplicity, 1.0);
  }
}

TEST(Fuser, LaunchOrderRespectsBlockDependences) {
  Program P = makeNight(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 2u);
  // atrous0 must launch before the fused atrous1+scoto kernel.
  EXPECT_EQ(FP.Kernels[0].Name, "atrous0");
  EXPECT_EQ(FP.Kernels[1].Name, "atrous1+scoto");
}

TEST(Fuser, InvalidPartitionDies) {
  Program P = makeSobel(16, 16);
  Partition S; // Missing kernels: not a cover.
  S.Blocks.push_back(PartitionBlock{{0}});
  EXPECT_DEATH(fuseProgram(P, S, FusionStyle::Optimized), "not covered");
}

TEST(Fuser, FusedProgramToStringMentionsPlacements) {
  Program P = makeHarris(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  std::string Text = fusedProgramToString(FP);
  EXPECT_NE(Text.find("register-recompute"), std::string::npos);
  EXPECT_NE(Text.find("sx+gx"), std::string::npos);
  EXPECT_NE(Text.find("6 launches"), std::string::npos);
}

TEST(Fuser, ProducerOfLocatesFusedKernels) {
  Program P = makeNight(16, 16);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  // Image 1 is atrous0's output: produced by the singleton kernel.
  const FusedKernel *A0 = FP.producerOf(1);
  ASSERT_NE(A0, nullptr);
  EXPECT_EQ(A0->Name, "atrous0");
  // Image 0 is the pipeline input: no producer.
  EXPECT_EQ(FP.producerOf(0), nullptr);
}

} // namespace
