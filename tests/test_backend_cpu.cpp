//===- tests/test_backend_cpu.cpp - Compile-and-run differential test -----------===//
//
// The strongest validation of the source-to-source path: the C++ backend's
// output is compiled with the host compiler into a shared object, loaded
// with dlopen, executed kernel by kernel, and compared against the
// interpreter. This exercises the *generated code's* border handling and
// index exchange, not just the interpreter's.
//
// FMA contraction is disabled (-ffp-contract=off) so the compiled code
// performs the exact float operations of the interpreter; outputs must
// match to a tight tolerance.
//
//===----------------------------------------------------------------------===//

#include "backend/cpu/CppEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <string>

using namespace kf;

namespace {

/// RAII holder for a dlopen'ed shared object.
class SharedObject {
public:
  explicit SharedObject(const std::string &Path)
      : Handle(dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL)) {}
  ~SharedObject() {
    if (Handle)
      dlclose(Handle);
  }
  SharedObject(const SharedObject &) = delete;
  SharedObject &operator=(const SharedObject &) = delete;

  bool valid() const { return Handle != nullptr; }
  void *symbol(const std::string &Name) const {
    return dlsym(Handle, Name.c_str());
  }

private:
  void *Handle;
};

/// Writes \p Code to a temp file and compiles it into a shared object.
/// Returns the .so path, or an empty string on failure.
std::string compileSharedObject(const std::string &Code,
                                const std::string &Tag) {
  std::string Base = ::testing::TempDir() + "kf_gen_" + Tag;
  std::string CppPath = Base + ".cpp";
  std::string SoPath = Base + ".so";
  std::FILE *File = std::fopen(CppPath.c_str(), "w");
  if (!File)
    return "";
  std::fwrite(Code.data(), 1, Code.size(), File);
  std::fclose(File);
  std::string Command = "c++ -O1 -ffp-contract=off -shared -fPIC -o " +
                        SoPath + " " + CppPath + " 2>&1";
  if (std::system(Command.c_str()) != 0)
    return "";
  return SoPath;
}

/// Invokes a generated kernel entry with N external-image parameters.
void callKernel(void *Sym, float *Out,
                const std::vector<const float *> &Ins, int W, int H) {
  switch (Ins.size()) {
  case 0:
    reinterpret_cast<void (*)(float *, int, int)>(Sym)(Out, W, H);
    return;
  case 1:
    reinterpret_cast<void (*)(float *, const float *, int, int)>(Sym)(
        Out, Ins[0], W, H);
    return;
  case 2:
    reinterpret_cast<void (*)(float *, const float *, const float *, int,
                              int)>(Sym)(Out, Ins[0], Ins[1], W, H);
    return;
  case 3:
    reinterpret_cast<void (*)(float *, const float *, const float *,
                              const float *, int, int)>(Sym)(
        Out, Ins[0], Ins[1], Ins[2], W, H);
    return;
  case 4:
    reinterpret_cast<void (*)(float *, const float *, const float *,
                              const float *, const float *, int, int)>(Sym)(
        Out, Ins[0], Ins[1], Ins[2], Ins[3], W, H);
    return;
  default:
    FAIL() << "unsupported external-image arity " << Ins.size();
  }
}

/// Compiles \p FP, runs it on \p Input, and compares every produced image
/// against the interpreter's fused execution.
void runDifferential(const Program &P, const FusedProgram &FP,
                     const Image &Input, const std::string &Tag) {
  std::string SoPath = compileSharedObject(emitCppProgram(FP), Tag);
  ASSERT_FALSE(SoPath.empty()) << "host compilation failed for " << Tag;
  SharedObject So(SoPath);
  ASSERT_TRUE(So.valid()) << dlerror();

  // Interpreter reference.
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = Input;
  runFused(FP, Reference);

  // Generated-code execution: materialize buffers in launch order.
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Input;
  for (unsigned Index = 0; Index != FP.Kernels.size(); ++Index) {
    const FusedKernel &FK = FP.Kernels[Index];
    void *Sym = So.symbol(cppKernelEntryName(FP, Index));
    ASSERT_NE(Sym, nullptr) << cppKernelEntryName(FP, Index);

    const Kernel &Dest = P.kernel(FK.Destination);
    const ImageInfo &Info = P.image(Dest.Output);
    Image Out(Info.Width, Info.Height, Info.Channels);
    std::vector<const float *> Ins;
    for (ImageId Img : cppKernelExternalImages(FP, Index)) {
      ASSERT_FALSE(Pool[Img].empty())
          << "external image not materialized: " << P.image(Img).Name;
      Ins.push_back(Pool[Img].data().data());
    }
    callKernel(Sym, Out.data().data(), Ins, Info.Width, Info.Height);
    Pool[Dest.Output] = std::move(Out);
  }

  for (unsigned Index = 0; Index != FP.Kernels.size(); ++Index) {
    ImageId Out = P.kernel(FP.Kernels[Index].Destination).Output;
    EXPECT_LE(maxAbsDifference(Pool[Out], Reference[Out]), 1e-5)
        << Tag << ": image " << P.image(Out).Name;
  }
}

HardwareModel paperModel() { return HardwareModel(); }

TEST(CppBackend, EmitsExternCEntryPoints) {
  Program P = makeSobel(32, 32);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCppProgram(FP);
  EXPECT_NE(Code.find("extern \"C\" void sobel_dx_kernel"),
            std::string::npos);
  EXPECT_NE(Code.find("#include <cmath>"), std::string::npos);
  EXPECT_NE(Code.find("static inline int idx_clamp"), std::string::npos);
  EXPECT_EQ(Code.find("__global__"), std::string::npos);
  EXPECT_EQ(Code.find("__device__"), std::string::npos);

  // Fused variant: producer stages become static inline functions.
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram Fused = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  EXPECT_NE(emitCppProgram(Fused).find("static inline float"),
            std::string::npos);
}

TEST(CppBackend, EntryNamesAndExternals) {
  Program P = makeSobel(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 1u);
  EXPECT_EQ(cppKernelEntryName(FP, 0), "sobel_dx_dy_mag_kernel");
  EXPECT_EQ(cppKernelExternalImages(FP, 0), std::vector<ImageId>{0});
}

TEST(CppBackend, CompiledSobelMatchesInterpreter) {
  Program P = makeSobel(40, 28);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  Rng Gen(21);
  runDifferential(P, FP, makeRandomImage(40, 28, 1, Gen), "sobel");
}

TEST(CppBackend, CompiledHarrisMatchesInterpreter) {
  // Six launches, recompute stages, multi-input point kernels.
  Program P = makeHarris(32, 24);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  Rng Gen(22);
  runDifferential(P, FP, makeRandomImage(32, 24, 1, Gen), "harris");
}

TEST(CppBackend, CompiledUnsharpMatchesInterpreter) {
  // Shared-input DAG fused to one kernel.
  Program P = makeUnsharp(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  Rng Gen(23);
  runDifferential(P, FP, makeRandomImage(32, 32, 1, Gen), "unsharp");
}

TEST(CppBackend, CompiledBlurChainExercisesIndexExchange) {
  // Forced local-to-local fusion: the generated code must contain the
  // index exchange and still match the unfused semantics at the borders.
  Program P = makeBlurChain(24, 18, BorderMode::Clamp);
  Partition Whole;
  Whole.Blocks.push_back(PartitionBlock{{0, 1}});
  FusedProgram FP = fuseProgram(P, Whole, FusionStyle::Optimized);
  std::string Code = emitCppProgram(FP);
  EXPECT_NE(Code.find("index exchange (clamp)"), std::string::npos);
  Rng Gen(24);
  runDifferential(P, FP, makeRandomImage(24, 18, 1, Gen), "blurchain");

  // And the interpreter's fused run equals the unfused baseline, closing
  // the triangle: generated code == interpreter fused == baseline.
  std::vector<Image> Baseline = makeImagePool(P);
  Rng Gen2(24);
  Baseline[0] = makeRandomImage(24, 18, 1, Gen2);
  runUnfused(P, Baseline);
  std::vector<Image> FusedPool = makeImagePool(P);
  FusedPool[0] = Baseline[0];
  runFused(FP, FusedPool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(FusedPool[2], Baseline[2]), 0.0);
}

TEST(CppBackend, CompiledNightHandlesRgb) {
  Program P = makeNight(20, 14);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  Rng Gen(25);
  runDifferential(P, FP, makeRandomImage(20, 14, 3, Gen), "night");
}

} // namespace
