//===- tests/test_distribution.cpp - Kernel distribution pass -------------------===//
//
// The retargeting pass: partitions fused under one hardware model are
// re-split under a tighter one, preserving validity and acceptability,
// keeping acceptable blocks verbatim, and losing as little estimated
// benefit as the min-cut can manage.
//
//===----------------------------------------------------------------------===//

#include "fusion/Distribution.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel modelWithThreshold(double Threshold) {
  HardwareModel HW;
  HW.SharedMemThreshold = Threshold;
  return HW;
}

TEST(Distribution, KeepsFittingPartitionsVerbatim) {
  Program P = makeHarris(32, 32);
  HardwareModel HW = modelWithThreshold(2.0);
  MinCutFusionResult Fusion = runMinCutFusion(P, HW);
  DistributionResult Dist = distributeBlocks(P, Fusion.Blocks, HW);
  EXPECT_EQ(Dist.NumBlocksSplit, 0u);
  EXPECT_TRUE(Dist.Blocks == Fusion.Blocks);
  EXPECT_DOUBLE_EQ(Dist.BenefitBefore, Dist.BenefitAfter);
}

TEST(Distribution, SplitsBlurChainUnderTighterThreshold) {
  // Fused under a permissive threshold, the two convolutions form one
  // block (ratio 5/3); a threshold below that forces distribution.
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  HardwareModel Loose = modelWithThreshold(4.0);
  Loose.GlobalAccessCycles = 80000.0; // Make the l2l edge beneficial.
  MinCutFusionResult Fusion = runMinCutFusion(P, Loose);
  ASSERT_EQ(Fusion.Blocks.Blocks.size(), 1u) << "expected l2l fusion";

  HardwareModel Tight = Loose;
  Tight.SharedMemThreshold = 1.2; // Below 5/3.
  DistributionResult Dist = distributeBlocks(P, Fusion.Blocks, Tight);
  EXPECT_EQ(Dist.NumBlocksSplit, 1u);
  EXPECT_EQ(Dist.Blocks.Blocks.size(), 2u);
  EXPECT_EQ(validatePartition(P, Dist.Blocks), "");
  ASSERT_EQ(Dist.Log.size(), 1u);
  EXPECT_NE(Dist.Log.front().find("split {conv0, conv1}"),
            std::string::npos);
}

TEST(Distribution, ResultIsAcceptableUnderTargetModel) {
  // Property over the paper pipelines: fuse with a loose model, retarget
  // to the paper model -- every resulting block must be acceptable, and
  // the result must be a valid partition.
  HardwareModel Loose = modelWithThreshold(100.0);
  HardwareModel Target = modelWithThreshold(2.0);
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(48, 48);
    MinCutFusionResult Fusion = runMinCutFusion(P, Loose);
    DistributionResult Dist = distributeBlocks(P, Fusion.Blocks, Target);
    EXPECT_EQ(validatePartition(P, Dist.Blocks), "") << Spec.Name;
    LegalityChecker Checker(P, Target);
    BenefitModel Model(Checker);
    for (const PartitionBlock &Block : Dist.Blocks.Blocks)
      EXPECT_EQ(fusibleBlockRejection(Model, Block.Kernels), "")
          << Spec.Name;
    EXPECT_LE(Dist.BenefitAfter, Dist.BenefitBefore + 1e-9) << Spec.Name;
  }
}

TEST(Distribution, HarrisLooseThenPaperMatchesDirectFusion) {
  // Distributing the loose full-ish fusion under the paper model must
  // reach the same objective as fusing directly with the paper model
  // (both are driven by the same min-cut machinery).
  Program P = makeHarris(32, 32);
  HardwareModel Loose = modelWithThreshold(100.0);
  HardwareModel Paper = modelWithThreshold(2.0);
  MinCutFusionResult LooseFusion = runMinCutFusion(P, Loose);
  DistributionResult Dist = distributeBlocks(P, LooseFusion.Blocks, Paper);
  MinCutFusionResult Direct = runMinCutFusion(P, Paper);
  EXPECT_DOUBLE_EQ(Dist.BenefitAfter, Direct.TotalBenefit);
}

TEST(Distribution, DistributedProgramStillExecutesCorrectly) {
  Program P = makeUnsharp(24, 24);
  HardwareModel Loose = modelWithThreshold(100.0);
  MinCutFusionResult Fusion = runMinCutFusion(P, Loose);
  DistributionResult Dist =
      distributeBlocks(P, Fusion.Blocks, modelWithThreshold(2.0));
  FusedProgram FP = fuseProgram(P, Dist.Blocks, FusionStyle::Optimized);

  Rng Gen(5);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(24, 24, 1, Gen);
  runUnfused(P, Reference);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[4], Reference[4]), 0.0);
}

TEST(Distribution, RandomProgramsRetargetSoundly) {
  Rng Gen(404);
  HardwareModel Loose = modelWithThreshold(50.0);
  HardwareModel Target = modelWithThreshold(1.5);
  for (int Trial = 0; Trial != 10; ++Trial) {
    Program P = makeRandomPipeline(8, 0.5, 16, 16, Gen);
    MinCutFusionResult Fusion = runMinCutFusion(P, Loose);
    DistributionResult Dist = distributeBlocks(P, Fusion.Blocks, Target);
    ASSERT_EQ(validatePartition(P, Dist.Blocks), "") << "trial " << Trial;

    FusedProgram FP = fuseProgram(P, Dist.Blocks, FusionStyle::Optimized);
    std::vector<Image> Reference = makeImagePool(P);
    Reference[0] = makeRandomImage(16, 16, 1, Gen);
    runUnfused(P, Reference);
    std::vector<Image> Pool = makeImagePool(P);
    Pool[0] = Reference[0];
    runFused(FP, Pool);
    for (ImageId Out : P.terminalOutputs())
      EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[Out], Reference[Out]), 0.0)
          << "trial " << Trial;
  }
}

} // namespace
