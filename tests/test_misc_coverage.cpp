//===- tests/test_misc_coverage.cpp - Cross-cutting edge cases ------------------===//
//
// Edge paths not owned by a single module's test file: Algorithm 1 trace
// invariants, serializer corner cases, constant-border fused execution,
// cost-model boundary behaviour, and partition utilities.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "fusion/MinCutPartitioner.h"
#include "graph/MinCut.h"
#include "ir/Verifier.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/CostModel.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace kf;

namespace {

HardwareModel paperModel() { return HardwareModel(); }

TEST(TraceInvariants, CutsFormABinaryTreeOverTheDag) {
  // Every split step's sides partition the block it split; every block
  // examined is either the root or a side of an earlier split.
  Program P = makeHarris(32, 32);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  std::vector<std::vector<KernelId>> Expected;
  std::vector<KernelId> Root(P.numKernels());
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Root[Id] = Id;
  Expected.push_back(Root);

  for (const FusionTraceStep &Step : Result.Trace) {
    std::vector<KernelId> Block = Step.Block;
    std::sort(Block.begin(), Block.end());
    bool Known = false;
    for (const auto &E : Expected)
      Known |= E == Block;
    EXPECT_TRUE(Known) << "unexpected block in trace";
    if (Step.Accepted)
      continue;
    // Sides partition the block.
    std::vector<KernelId> Union = Step.SideA;
    Union.insert(Union.end(), Step.SideB.begin(), Step.SideB.end());
    std::sort(Union.begin(), Union.end());
    EXPECT_EQ(Union, Block);
    std::vector<KernelId> A = Step.SideA, B = Step.SideB;
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    Expected.push_back(A);
    Expected.push_back(B);
  }
}

TEST(TraceInvariants, AcceptedBlocksEqualFinalPartition) {
  Program P = makeShiTomasi(32, 32);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  Partition FromTrace;
  for (const FusionTraceStep &Step : Result.Trace)
    if (Step.Accepted)
      FromTrace.Blocks.push_back(PartitionBlock{Step.Block});
  EXPECT_TRUE(FromTrace == Result.Blocks);
}

TEST(PartitionUtils, BlockOfAndFusedCount) {
  Program P = makeNight(16, 16);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  const Partition &S = Result.Blocks;
  EXPECT_EQ(S.numFusedBlocks(), 1u);
  int AtrousBlock = S.blockOf(0);
  int FusedBlock = S.blockOf(1);
  EXPECT_EQ(S.blockOf(2), FusedBlock);
  EXPECT_NE(AtrousBlock, FusedBlock);
  EXPECT_EQ(S.blockOf(99), -1);
}

TEST(PartitionUtils, SingletonPartitionProperties) {
  Program P = makeSobel(16, 16);
  Partition S = makeSingletonPartition(P);
  EXPECT_EQ(S.Blocks.size(), 3u);
  EXPECT_EQ(S.numFusedBlocks(), 0u);
  EXPECT_EQ(validatePartition(P, S), "");
  EXPECT_EQ(partitionToString(P, S), "{dx} {dy} {mag}");
}

TEST(Serializer, ConstantBorderValueRoundTrips) {
  Program P("cborder");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  int M = P.addMask(Mask::uniform(3, 3, 1.0f / 9.0f));
  Kernel K;
  K.Name = "box";
  K.Kind = OperatorKind::Local;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.stencil(M, ReduceOp::Sum,
                     C.mul(C.maskValue(), C.stencilInput(0)));
  K.Border = BorderMode::Constant;
  K.BorderConstant = 0.3125f; // Exactly representable.
  P.addKernel(std::move(K));

  ParseResult Round = parsePipelineText(serializeProgram(P));
  ASSERT_TRUE(Round.success())
      << (Round.Errors.empty() ? "?" : Round.Errors.front());
  EXPECT_EQ(Round.Prog->kernel(0).Border, BorderMode::Constant);
  EXPECT_FLOAT_EQ(Round.Prog->kernel(0).BorderConstant, 0.3125f);
}

TEST(Serializer, GranularityRoundTrips) {
  Program P("gran");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.inputAt(0);
  K.Granularity = 4;
  P.addKernel(std::move(K));
  ParseResult Round = parsePipelineText(serializeProgram(P));
  ASSERT_TRUE(Round.success());
  EXPECT_EQ(Round.Prog->kernel(0).Granularity, 4);
}

TEST(Executor, ConstantBorderFusedChainUsesConsumerConstant) {
  // Constant-border local-to-local fusion: exterior window accesses to
  // the eliminated intermediate must yield the *consumer's* constant,
  // exactly like the unfused reference.
  Program P = makeBlurChain(10, 10, BorderMode::Constant);
  // Give the two kernels different constants to catch mixups.
  P.kernel(0).BorderConstant = 2.0f;
  P.kernel(1).BorderConstant = 5.0f;

  std::vector<Image> Reference = makeImagePool(P);
  Rng Gen(6);
  Reference[0] = makeRandomImage(10, 10, 1, Gen);
  runUnfused(P, Reference);

  Partition Whole;
  Whole.Blocks.push_back(PartitionBlock{{0, 1}});
  FusedProgram FP = fuseProgram(P, Whole, FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[2], Reference[2]), 0.0);
}

TEST(Executor, ExplicitChannelAccessAcrossChannels) {
  // A gray output computed from explicit channels of an RGB input.
  Program P("luma");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 6, 6, 3);
  ImageId Out = P.addImage("out", 6, 6, 1);
  Kernel K;
  K.Name = "luma";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.add(C.add(C.mul(C.floatConst(0.25f), C.inputAt(0, 0, 0, 0)),
                       C.mul(C.floatConst(0.5f), C.inputAt(0, 0, 0, 1))),
                 C.mul(C.floatConst(0.25f), C.inputAt(0, 0, 0, 2)));
  P.addKernel(std::move(K));
  verifyProgramOrDie(P);

  std::vector<Image> Pool = makeImagePool(P);
  Image Rgb(6, 6, 3);
  Rgb.at(2, 3, 0) = 0.4f;
  Rgb.at(2, 3, 1) = 0.8f;
  Rgb.at(2, 3, 2) = 0.0f;
  Pool[0] = Rgb;
  runUnfused(P, Pool);
  EXPECT_FLOAT_EQ(Pool[1].at(2, 3), 0.25f * 0.4f + 0.5f * 0.8f);
}

TEST(CostModel, LaunchOccupancyIsClampedAndPositive) {
  DeviceSpec Device = DeviceSpec::gtx745();
  CostModelParams Params;
  LaunchStats ZeroShared;
  double Occ = launchOccupancy(ZeroShared, Device, Params);
  EXPECT_GT(Occ, 0.0);
  EXPECT_LE(Occ, 1.0);
  LaunchStats Monster;
  Monster.SharedBytesPerBlock = 47.0 * 1024.0; // One block at most.
  EXPECT_GT(launchOccupancy(Monster, Device, Params), 0.0);
}

TEST(CostModel, EmptyLaunchCostsNothingButOverhead) {
  DeviceSpec Device = DeviceSpec::gtx680();
  CostModelParams Params;
  LaunchStats Empty;
  EXPECT_DOUBLE_EQ(estimateLaunchTimeMs(Empty, Device, Params), 0.0);
}

TEST(CostModel, NumStagesReported) {
  Program P = makeUnsharp(32, 32);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  ProgramStats Stats = accountFusedProgram(FP);
  ASSERT_EQ(Stats.Launches.size(), 1u);
  EXPECT_EQ(Stats.Launches[0].NumStages, 4u);
  EXPECT_EQ(Stats.Launches[0].OutputPixels, 32 * 32);
}

TEST(Digraph, ParallelEdgesAccumulateInMinCutMatrix) {
  Digraph G;
  G.addNode("a");
  G.addNode("b");
  G.addEdge(0, 1, 2.0);
  G.addEdge(0, 1, 3.0); // Parallel edge.
  auto W = buildUndirectedWeights(G, {0, 1});
  EXPECT_DOUBLE_EQ(W[0][1], 5.0);
  EXPECT_DOUBLE_EQ(W[1][0], 5.0);
}

TEST(Fuser, TileShapeChangesSharedTileMultiplicity) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  Partition Whole;
  Whole.Blocks.push_back(PartitionBlock{{0, 1}});
  FusedProgram Small =
      fuseProgram(P, Whole, FusionStyle::Optimized, TileShape{16, 2});
  FusedProgram Large =
      fuseProgram(P, Whole, FusionStyle::Optimized, TileShape{64, 16});
  // Smaller blocks pay proportionally more halo per pixel.
  EXPECT_GT(Small.Kernels[0].Stages[0].Multiplicity,
            Large.Kernels[0].Stages[0].Multiplicity);
}

TEST(Verifier, GlobalKernelsPassStructuralChecks) {
  // Global (reduction) operators are representable and verify, they just
  // never fuse.
  Program P("glob");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "reduce";
  K.Kind = OperatorKind::Global;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.inputAt(0);
  P.addKernel(std::move(K));
  EXPECT_TRUE(verifyProgram(P).empty());
}

} // namespace
