//===- tests/test_graph.cpp - Graph substrate tests ----------------------------===//
//
// Digraph invariants, topological sorting, connectivity, and -- most
// importantly -- the Stoer-Wagner minimum cut validated against the
// exhaustive oracle on randomized connected graphs (the property the
// fusion algorithm's splitting step relies on).
//
//===----------------------------------------------------------------------===//

#include "graph/BruteForceMinCut.h"
#include "graph/Digraph.h"
#include "graph/MinCut.h"
#include "graph/RandomGraphs.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace kf;

namespace {

TEST(Digraph, BasicConstruction) {
  Digraph G;
  Digraph::NodeId A = G.addNode("a");
  Digraph::NodeId B = G.addNode("b");
  Digraph::EdgeId E = G.addEdge(A, B, 3.5);
  EXPECT_EQ(G.numNodes(), 2u);
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.label(A), "a");
  EXPECT_DOUBLE_EQ(G.edge(E).Weight, 3.5);
  EXPECT_EQ(G.successors(A), std::vector<Digraph::NodeId>{B});
  EXPECT_EQ(G.predecessors(B), std::vector<Digraph::NodeId>{A});
  EXPECT_TRUE(G.successors(B).empty());
}

TEST(Digraph, FindNodeByLabel) {
  Digraph G;
  G.addNode("x");
  Digraph::NodeId Y = G.addNode("y");
  EXPECT_EQ(G.findNode("y"), Y);
  EXPECT_FALSE(G.findNode("z").has_value());
}

TEST(Digraph, TopologicalOrderIsDeterministicAndValid) {
  Digraph G;
  for (int I = 0; I != 5; ++I)
    G.addNode("n" + std::to_string(I));
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(2, 4);
  auto Order = G.topologicalOrder();
  ASSERT_TRUE(Order.has_value());
  // Kahn with smallest-id tie-break: 0 1 2 3 4.
  EXPECT_EQ(*Order, (std::vector<Digraph::NodeId>{0, 1, 2, 3, 4}));
}

TEST(Digraph, CycleDetection) {
  Digraph G;
  G.addNode("a");
  G.addNode("b");
  G.addEdge(0, 1);
  EXPECT_FALSE(G.hasCycle());
  G.addEdge(1, 0);
  EXPECT_TRUE(G.hasCycle());
  EXPECT_FALSE(G.topologicalOrder().has_value());
}

TEST(Digraph, WeakConnectivityIgnoresDirection) {
  Digraph G;
  for (int I = 0; I != 4; ++I)
    G.addNode("n" + std::to_string(I));
  G.addEdge(0, 1);
  G.addEdge(2, 1); // 2 connects against the flow.
  EXPECT_TRUE(G.isWeaklyConnected({0, 1, 2}));
  EXPECT_FALSE(G.isWeaklyConnected({0, 3}));
  EXPECT_TRUE(G.isWeaklyConnected({3}));
  EXPECT_FALSE(G.isWeaklyConnected({}));
}

TEST(Digraph, InternalEdgesAndBlockWeight) {
  Digraph G;
  for (int I = 0; I != 3; ++I)
    G.addNode("n" + std::to_string(I));
  G.addEdge(0, 1, 5.0);
  G.addEdge(1, 2, 7.0);
  EXPECT_EQ(G.internalEdges({0, 1}).size(), 1u);
  EXPECT_DOUBLE_EQ(G.blockWeight({0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(G.blockWeight({0, 1, 2}), 12.0);
  EXPECT_DOUBLE_EQ(G.totalWeight(), 12.0);
}

TEST(StoerWagner, TwoVertexGraph) {
  std::vector<std::vector<double>> W = {{0, 4}, {4, 0}};
  CutResult Cut = stoerWagnerMinCut(W);
  EXPECT_DOUBLE_EQ(Cut.Weight, 4.0);
  EXPECT_EQ(Cut.SideA.size() + Cut.SideB.size(), 2u);
}

TEST(StoerWagner, DisconnectedGraphCutsForFree) {
  std::vector<std::vector<double>> W = {{0, 1, 0, 0},
                                        {1, 0, 0, 0},
                                        {0, 0, 0, 1},
                                        {0, 0, 1, 0}};
  CutResult Cut = stoerWagnerMinCut(W);
  EXPECT_DOUBLE_EQ(Cut.Weight, 0.0);
}

TEST(StoerWagner, KnownWheatstoneBridge) {
  // Classic example: path weights force the cut across the light edges.
  //   0 -2- 1
  //   |     |
  //   3     1
  //   |     |
  //   2 -2- 3
  std::vector<std::vector<double>> W(4, std::vector<double>(4, 0.0));
  W[0][1] = W[1][0] = 2.0;
  W[0][2] = W[2][0] = 3.0;
  W[1][3] = W[3][1] = 1.0;
  W[2][3] = W[3][2] = 2.0;
  CutResult Cut = stoerWagnerMinCut(W);
  EXPECT_DOUBLE_EQ(Cut.Weight, 3.0); // Isolate vertex 3: 1 + 2.
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  // Property: on random connected graphs the Stoer-Wagner cut weight
  // equals the exhaustive minimum over all bipartitions.
  Rng Gen(2026);
  for (int Round = 0; Round != 60; ++Round) {
    unsigned N = 2 + static_cast<unsigned>(Gen.nextBelow(9));
    unsigned Extra = static_cast<unsigned>(Gen.nextBelow(2 * N));
    auto W = randomConnectedWeights(N, Extra, 1.0, 50.0, Gen);
    CutResult Fast = stoerWagnerMinCut(W);
    CutResult Oracle = bruteForceMinCut(W);
    EXPECT_NEAR(Fast.Weight, Oracle.Weight, 1e-9)
        << "round " << Round << ", n=" << N;
  }
}

TEST(StoerWagner, CutSidesPartitionTheVertices) {
  Rng Gen(7);
  auto W = randomConnectedWeights(12, 10, 1.0, 10.0, Gen);
  CutResult Cut = stoerWagnerMinCut(W);
  std::vector<bool> Seen(12, false);
  for (unsigned V : Cut.SideA)
    Seen[V] = true;
  for (unsigned V : Cut.SideB) {
    EXPECT_FALSE(Seen[V]) << "vertex on both sides";
    Seen[V] = true;
  }
  EXPECT_TRUE(std::all_of(Seen.begin(), Seen.end(),
                          [](bool B) { return B; }));
}

TEST(StoerWagner, ReportedWeightMatchesCrossingEdges) {
  Rng Gen(11);
  for (int Round = 0; Round != 20; ++Round) {
    auto W = randomConnectedWeights(8, 6, 1.0, 9.0, Gen);
    CutResult Cut = stoerWagnerMinCut(W);
    double Crossing = 0.0;
    for (unsigned A : Cut.SideA)
      for (unsigned B : Cut.SideB)
        Crossing += W[A][B];
    EXPECT_NEAR(Cut.Weight, Crossing, 1e-9);
  }
}

TEST(StoerWagner, DigraphOverloadSumsAntiparallelEdges) {
  Digraph G;
  for (int I = 0; I != 3; ++I)
    G.addNode("n" + std::to_string(I));
  G.addEdge(0, 1, 2.0);
  G.addEdge(1, 0, 3.0); // Anti-parallel: undirected weight 5.
  G.addEdge(1, 2, 1.0);
  CutResult Cut = stoerWagnerMinCut(G, {0, 1, 2});
  EXPECT_DOUBLE_EQ(Cut.Weight, 1.0); // Isolate node 2.
  // Sides are node ids of G.
  std::vector<unsigned> All = Cut.SideA;
  All.insert(All.end(), Cut.SideB.begin(), Cut.SideB.end());
  std::sort(All.begin(), All.end());
  EXPECT_EQ(All, (std::vector<unsigned>{0, 1, 2}));
}

TEST(StoerWagner, SubsetCutIgnoresOutsideEdges) {
  Digraph G;
  for (int I = 0; I != 4; ++I)
    G.addNode("n" + std::to_string(I));
  G.addEdge(0, 1, 10.0);
  G.addEdge(1, 2, 1.0);
  G.addEdge(2, 3, 10.0); // Outside the queried subset.
  CutResult Cut = stoerWagnerMinCut(G, {0, 1, 2});
  EXPECT_DOUBLE_EQ(Cut.Weight, 1.0);
}

TEST(BruteForce, FourVertexExact) {
  std::vector<std::vector<double>> W(4, std::vector<double>(4, 0.0));
  W[0][1] = W[1][0] = 1.0;
  W[1][2] = W[2][1] = 1.0;
  W[2][3] = W[3][2] = 1.0;
  W[3][0] = W[0][3] = 1.0;
  CutResult Cut = bruteForceMinCut(W);
  EXPECT_DOUBLE_EQ(Cut.Weight, 2.0); // Any cut of the 4-cycle crosses 2.
}

TEST(RandomGraphs, DagIsAcyclicAndConnected) {
  Rng Gen(77);
  for (int Round = 0; Round != 10; ++Round) {
    Digraph G = randomDag(15, 0.1, Gen);
    EXPECT_FALSE(G.hasCycle());
    std::vector<Digraph::NodeId> All;
    for (Digraph::NodeId N = 0; N != G.numNodes(); ++N)
      All.push_back(N);
    EXPECT_TRUE(G.isWeaklyConnected(All));
  }
}

TEST(RandomGraphs, WeightsMatrixIsSymmetric) {
  Rng Gen(3);
  auto W = randomConnectedWeights(10, 8, 1.0, 5.0, Gen);
  for (size_t I = 0; I != W.size(); ++I)
    for (size_t J = 0; J != W.size(); ++J)
      EXPECT_DOUBLE_EQ(W[I][J], W[J][I]);
}

} // namespace
