//===- tests/test_lazy.cpp - Lazy frontend differential + gate tests ------------===//
//
// The lazy frontend must be invisible in the results and strict at the
// gate: a lazily recorded Harris DAG materializes bit-identically to the
// registry pipeline across every VM mode, tiling strategy, and thread
// count; two independently recorded DAGs of the same *shape* share one
// plan-cache entry (canonical-naming structural hash); and malformed
// DAGs -- cycles, dangling handles, bad masks, shape mismatches,
// unparsable scripts -- are rejected with exact KF-* codes, never a
// crash. A server test pins down that lazy and registry tenants coexist
// on one shared cache.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lazy.h"
#include "frontend/LazyScript.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/LazyRuntime.h"
#include "sim/Server.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

using namespace kf;

namespace {

/// Worker-thread counts the differential sweeps: serial, an uneven
/// count, and whatever the hardware reports.
std::vector<int> threadSweep() {
  int Hardware =
      static_cast<int>(std::max(std::thread::hardware_concurrency(), 1u));
  std::vector<int> Counts{1, 3};
  if (Hardware != 1 && Hardware != 3)
    Counts.push_back(Hardware);
  return Counts;
}

/// Records the registry Harris pipeline (pipelines/Harris.cpp) through
/// the lazy handle API, op for op, and returns the corner-response
/// handle. \p InputName varies the user-facing name without changing the
/// DAG shape; \p K varies the corner constant (a shape change for the
/// structural hash, since float bits are hashed).
LazyImage buildLazyHarris(LazyPipeline &LP, int Width, int Height,
                          const std::string &InputName = "in",
                          float K = 0.04f) {
  const float S8 = 1.0f / 8.0f;
  const float S16 = 1.0f / 16.0f;
  int SobelX = LP.addMask(3, 3,
                          {-1 * S8, 0, 1 * S8, -2 * S8, 0, 2 * S8, -1 * S8, 0,
                           1 * S8});
  int SobelY = LP.addMask(3, 3,
                          {-1 * S8, -2 * S8, -1 * S8, 0, 0, 0, 1 * S8, 2 * S8,
                           1 * S8});
  int Binom = LP.addMask(3, 3,
                         {1 * S16, 2 * S16, 1 * S16, 2 * S16, 4 * S16, 2 * S16,
                          1 * S16, 2 * S16, 1 * S16});

  LazyImage In = LP.input(InputName, Width, Height);
  LazyImage Dx = LP.convolve(In, SobelX);
  LazyImage Dy = LP.convolve(In, SobelY);
  LazyImage Sx = LP.mul(Dx, Dx);
  LazyImage Sy = LP.mul(Dy, Dy);
  LazyImage Sxy = LP.mul(Dx, Dy);
  LazyImage Gx = LP.convolve(Sx, Binom);
  LazyImage Gy = LP.convolve(Sy, Binom);
  LazyImage Gxy = LP.convolve(Sxy, Binom);

  // hc = (gx*gy - gxy^2) - K * (gx + gy)^2, in the registry's operation
  // order so the float rounding sequence matches bit for bit.
  LazyImage Det = LP.mul(Gx, Gy);
  LazyImage Gxy2 = LP.mul(Gxy, Gxy);
  LazyImage M = LP.sub(Det, Gxy2);
  LazyImage Tr = LP.add(Gx, Gy);
  LazyImage Tr2 = LP.mul(Tr, Tr);
  LazyImage Ktr = LP.binary(BinOp::Mul, K, Tr2);
  return LP.sub(M, Ktr);
}

/// The semantic ground truth: the registry Harris program run through
/// the unfused AST walker on \p In.
Image registryHarrisReference(int Width, int Height, const Image &In) {
  Program P = makeHarris(Width, Height);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[P.externalInputs().front()] = In;
  runUnfused(P, Pool);
  return Pool[P.kernels().back().Output];
}

/// True when some frontend issue carries \p Code.
bool hasIssue(const std::vector<LazyIssue> &Issues, const std::string &Code) {
  return std::any_of(Issues.begin(), Issues.end(),
                     [&](const LazyIssue &I) { return I.Code == Code; });
}

std::string renderIssues(const std::vector<LazyIssue> &Issues) {
  std::ostringstream Out;
  for (const LazyIssue &I : Issues)
    Out << I.Code << " (" << I.Where << "): " << I.Message << "\n";
  return Out.str();
}

/// Locates the shipped lazy-script example from the test working
/// directory (build tree or repo root); "" when absent.
std::string harrisScriptPath() {
  for (const char *Candidate :
       {"examples/lazy/harris.lz", "../examples/lazy/harris.lz",
        "../../examples/lazy/harris.lz", "../../../examples/lazy/harris.lz"}) {
    std::ifstream Probe(Candidate);
    if (Probe.good())
      return Candidate;
  }
  return "";
}

//===--------------------------------------------------------------------===//
// Differential: lazy vs registry, across engines
//===--------------------------------------------------------------------===//

struct EngineCase {
  const char *Label;
  VmMode Mode;
  TilingStrategy Tiling;
};

class LazyDifferential : public ::testing::TestWithParam<EngineCase> {};

TEST_P(LazyDifferential, HarrisBitIdenticalToRegistryPipeline) {
  const int Width = 64, Height = 64;
  Rng Gen(0x1a2f);
  Image In = makeRandomImage(Width, Height, 1, Gen, 0.05f, 1.0f);
  Image Ref = registryHarrisReference(Width, Height, In);

  LazyPipeline LP("lazy_harris");
  LazyImage Hc = buildLazyHarris(LP, Width, Height);
  MaterializedPipeline MP = compileLazy(LP, {Hc});
  ASSERT_TRUE(MP.Ok) << MP.Diags.renderText();

  const EngineCase &Engine = GetParam();
  for (int Threads : threadSweep()) {
    ExecutionOptions Exec;
    Exec.Mode = Engine.Mode;
    Exec.Tiling = Engine.Tiling;
    Exec.Threads = Threads;
    PlanCache Cache;
    LazyRunResult R = runLazy(MP, {{"in", &In}}, Exec, &Cache);
    ASSERT_TRUE(R.Ok) << R.Diags.renderText();
    ASSERT_EQ(R.Outputs.size(), 1u);
    EXPECT_DOUBLE_EQ(maxAbsDifference(R.Outputs.front(), Ref), 0.0)
        << Engine.Label << ", threads=" << Threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, LazyDifferential,
    ::testing::Values(
        EngineCase{"scalar_interior", VmMode::Scalar,
                   TilingStrategy::InteriorHalo},
        EngineCase{"span_interior", VmMode::Span,
                   TilingStrategy::InteriorHalo},
        EngineCase{"jit_interior", VmMode::Jit, TilingStrategy::InteriorHalo},
        EngineCase{"scalar_overlapped", VmMode::Scalar,
                   TilingStrategy::Overlapped},
        EngineCase{"span_overlapped", VmMode::Span,
                   TilingStrategy::Overlapped},
        EngineCase{"jit_overlapped", VmMode::Jit,
                   TilingStrategy::Overlapped}),
    [](const ::testing::TestParamInfo<EngineCase> &Info) {
      return Info.param.Label;
    });

TEST(LazyDifferentialExtra, OpAtATimeGateMatchesFusedResult) {
  const int Width = 48, Height = 40;
  Rng Gen(0xbeef);
  Image In = makeRandomImage(Width, Height, 1, Gen, 0.05f, 1.0f);
  Image Ref = registryHarrisReference(Width, Height, In);

  LazyPipeline LP("lazy_harris_unfused");
  LazyImage Hc = buildLazyHarris(LP, Width, Height);
  LazyGateOptions Gate;
  Gate.Fuse = false; // singleton partition: one launch per kernel
  MaterializedPipeline MP = compileLazy(LP, {Hc}, Gate);
  ASSERT_TRUE(MP.Ok) << MP.Diags.renderText();
  EXPECT_EQ(MP.Fused.Kernels.size(), MP.Prog->kernels().size());

  PlanCache Cache;
  LazyRunResult R = runLazy(MP, {{"in", &In}}, ExecutionOptions(), &Cache);
  ASSERT_TRUE(R.Ok) << R.Diags.renderText();
  EXPECT_DOUBLE_EQ(maxAbsDifference(R.Outputs.front(), Ref), 0.0);
}

//===--------------------------------------------------------------------===//
// Structural hash: shape-keyed plan sharing
//===--------------------------------------------------------------------===//

TEST(LazyStructuralHash, SameShapeDifferentNamesSharesThePlan) {
  const int Width = 64, Height = 64;
  LazyPipeline A("tenant_a"), B("tenant_b");
  LazyImage HcA = buildLazyHarris(A, Width, Height, "frame");
  LazyImage HcB = buildLazyHarris(B, Width, Height, "sensor_feed");

  MaterializedPipeline MA = compileLazy(A, {HcA});
  MaterializedPipeline MB = compileLazy(B, {HcB});
  ASSERT_TRUE(MA.Ok) << MA.Diags.renderText();
  ASSERT_TRUE(MB.Ok) << MB.Diags.renderText();

  // Canonical-naming lowering: value names must not leak into the key.
  EXPECT_EQ(MA.StructuralHash, MB.StructuralHash);

  Rng Gen(0x77);
  Image In = makeRandomImage(Width, Height, 1, Gen, 0.05f, 1.0f);
  ExecutionOptions Exec;
  Exec.Threads = 1;
  PlanCache Cache;
  LazyRunResult RA = runLazy(MA, {{"frame", &In}}, Exec, &Cache);
  LazyRunResult RB = runLazy(MB, {{"sensor_feed", &In}}, Exec, &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Diags.renderText();
  ASSERT_TRUE(RB.Ok) << RB.Diags.renderText();

  EXPECT_FALSE(RA.Stats.PlanWasHit) << "first tenant compiles cold";
  EXPECT_TRUE(RB.Stats.PlanWasHit)
      << "second same-shape tenant must hit the shared plan warm";
  EXPECT_EQ(RA.Stats.PlanKey, RB.Stats.PlanKey);
  EXPECT_DOUBLE_EQ(maxAbsDifference(RA.Outputs.front(), RB.Outputs.front()),
                   0.0);
}

TEST(LazyStructuralHash, ConstantShapeAndOpChangesMiss) {
  const int Width = 64, Height = 64;
  LazyPipeline Base("base");
  MaterializedPipeline MBase =
      compileLazy(Base, {buildLazyHarris(Base, Width, Height)});
  ASSERT_TRUE(MBase.Ok) << MBase.Diags.renderText();

  // A different float constant is a different shape (bit-pattern hashed).
  LazyPipeline K("k005");
  MaterializedPipeline MK =
      compileLazy(K, {buildLazyHarris(K, Width, Height, "in", 0.05f)});
  ASSERT_TRUE(MK.Ok) << MK.Diags.renderText();
  EXPECT_NE(MBase.StructuralHash, MK.StructuralHash);

  // A different image extent is a different shape.
  LazyPipeline Sz("small");
  MaterializedPipeline MSz = compileLazy(Sz, {buildLazyHarris(Sz, 32, 64)});
  ASSERT_TRUE(MSz.Ok) << MSz.Diags.renderText();
  EXPECT_NE(MBase.StructuralHash, MSz.StructuralHash);

  // A different operator is a different shape.
  LazyPipeline AddP("addp"), SubP("subp");
  {
    LazyImage A = AddP.input("a", 16, 16), B = AddP.input("b", 16, 16);
    MaterializedPipeline MAdd = compileLazy(AddP, {AddP.add(A, B)});
    LazyImage C = SubP.input("a", 16, 16), D = SubP.input("b", 16, 16);
    MaterializedPipeline MSub = compileLazy(SubP, {SubP.sub(C, D)});
    ASSERT_TRUE(MAdd.Ok && MSub.Ok);
    EXPECT_NE(MAdd.StructuralHash, MSub.StructuralHash);
  }

  // And a shape change must actually miss a warm cache.
  Rng Gen(0x31);
  Image In64 = makeRandomImage(64, 64, 1, Gen, 0.05f, 1.0f);
  ExecutionOptions Exec;
  Exec.Threads = 1;
  PlanCache Cache;
  LazyRunResult R1 = runLazy(MBase, {{"in", &In64}}, Exec, &Cache);
  LazyRunResult R2 = runLazy(MK, {{"in", &In64}}, Exec, &Cache);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_FALSE(R2.Stats.PlanWasHit)
      << "different corner constant must not share a plan";
  EXPECT_NE(R1.Stats.PlanKey, R2.Stats.PlanKey);
}

//===--------------------------------------------------------------------===//
// Malformed DAGs: exact KF-* rejection, never a crash
//===--------------------------------------------------------------------===//

TEST(LazyReject, RawRecordCycleIsRejectedAsDependenceCycle) {
  LazyPipeline LP("cyclic");
  LazyNode NA;
  NA.Op = LazyOpKind::Binary;
  NA.Bin = BinOp::Mul;
  NA.Name = "a";
  NA.A = 1;
  NA.B = 1;
  LazyNode NB = NA;
  NB.Name = "b";
  NB.A = 0;
  NB.B = 0;
  LazyImage HA = LP.record(NA);
  LP.record(NB);

  MaterializedPipeline MP = compileLazy(LP, {HA});
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P01")) << MP.Diags.renderText();
}

TEST(LazyReject, ForeignHandleIsDangling) {
  LazyPipeline A("a"), B("b");
  LazyImage InA = A.input("in", 8, 8);
  LazyImage InB = B.input("in", 8, 8);
  LazyImage Mixed = A.add(InA, InB); // InB belongs to pipeline B

  MaterializedPipeline MP = compileLazy(A, {Mixed});
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P02")) << MP.Diags.renderText();
}

TEST(LazyReject, OutOfRangeHandleIsDangling) {
  LazyPipeline LP("dangling");
  LP.input("in", 8, 8);
  MaterializedPipeline MP = compileLazy(LP, {LP.handleAt(42)});
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P02")) << MP.Diags.renderText();
}

TEST(LazyReject, MalformedMasksAreRejected) {
  { // Even extents.
    LazyPipeline LP("even_mask");
    LazyImage In = LP.input("in", 8, 8);
    int M = LP.addMask(2, 2, {1, 1, 1, 1});
    MaterializedPipeline MP = compileLazy(LP, {LP.convolve(In, M)});
    EXPECT_FALSE(MP.Ok);
    EXPECT_TRUE(MP.Diags.hasCode("KF-P04")) << MP.Diags.renderText();
  }
  { // Weight count contradicting the extents.
    LazyPipeline LP("short_mask");
    LazyImage In = LP.input("in", 8, 8);
    int M = LP.addMask(3, 3, {1, 2});
    MaterializedPipeline MP = compileLazy(LP, {LP.convolve(In, M)});
    EXPECT_FALSE(MP.Ok);
    EXPECT_TRUE(MP.Diags.hasCode("KF-P04")) << MP.Diags.renderText();
  }
  { // Undeclared mask index.
    LazyPipeline LP("no_mask");
    LazyImage In = LP.input("in", 8, 8);
    MaterializedPipeline MP = compileLazy(LP, {LP.convolve(In, 7)});
    EXPECT_FALSE(MP.Ok);
    EXPECT_TRUE(MP.Diags.hasCode("KF-P05")) << MP.Diags.renderText();
  }
}

TEST(LazyReject, OperandShapeMismatchIsRejected) {
  LazyPipeline LP("mismatch");
  LazyImage A = LP.input("a", 64, 64);
  LazyImage B = LP.input("b", 32, 32);
  MaterializedPipeline MP = compileLazy(LP, {LP.add(A, B)});
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P06")) << MP.Diags.renderText();
}

TEST(LazyReject, NonPositiveInputExtentIsRejected) {
  LazyPipeline LP("degenerate");
  LazyImage In = LP.input("in", 0, 64);
  MaterializedPipeline MP = compileLazy(LP, {In});
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P00")) << MP.Diags.renderText();
}

TEST(LazyReject, MissingAndMisshapenRunInputsAreRejected) {
  LazyPipeline LP("inputs");
  LazyImage In = LP.input("in", 16, 16);
  MaterializedPipeline MP = compileLazy(LP, {LP.add(In, 1.0f)});
  ASSERT_TRUE(MP.Ok) << MP.Diags.renderText();

  PlanCache Cache;
  LazyRunResult Missing = runLazy(MP, {}, ExecutionOptions(), &Cache);
  EXPECT_FALSE(Missing.Ok);
  EXPECT_TRUE(Missing.Diags.hasCode("KF-P00")) << Missing.Diags.renderText();

  Rng Gen(1);
  Image Wrong = makeRandomImage(8, 16, 1, Gen, 0.05f, 1.0f);
  LazyRunResult Bad =
      runLazy(MP, {{"in", &Wrong}}, ExecutionOptions(), &Cache);
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags.hasCode("KF-P00")) << Bad.Diags.renderText();
}

//===--------------------------------------------------------------------===//
// Script frontend
//===--------------------------------------------------------------------===//

TEST(LazyScript, GarbageLinesAreParseErrors) {
  LazyScriptResult R = parseLazyScript("widget foo 1 2\n");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasIssue(R.Errors, "KF-P00")) << renderIssues(R.Errors);
}

TEST(LazyScript, RedefinitionIsRejected) {
  LazyScriptResult R = parseLazyScript("input a 8 8\n"
                                       "input a 8 8\n"
                                       "output a\n");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasIssue(R.Errors, "KF-P03")) << renderIssues(R.Errors);
}

TEST(LazyScript, ForwardReferenceCycleReachesTheLintGate) {
  // The two-pass parser makes cycles expressible; the analyzer, not the
  // parser, rejects them.
  LazyScriptResult R = parseLazyScript("input in 8 8\n"
                                       "a = mul b b\n"
                                       "b = mul a a\n"
                                       "output a\n");
  ASSERT_TRUE(R.ok()) << renderIssues(R.Errors);
  MaterializedPipeline MP = compileLazy(*R.Pipeline, R.outputs());
  EXPECT_FALSE(MP.Ok);
  EXPECT_TRUE(MP.Diags.hasCode("KF-P01")) << MP.Diags.renderText();
}

TEST(LazyScript, AllLiteralOperandsAreRejectedAtParse) {
  LazyScriptResult R = parseLazyScript("input in 8 8\n"
                                       "a = add 1.0 2.0\n"
                                       "output a\n");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasIssue(R.Errors, "KF-P00")) << renderIssues(R.Errors);
}

TEST(LazyScript, ShippedHarrisScriptMatchesTheHandleApi) {
  std::string Path = harrisScriptPath();
  if (Path.empty())
    GTEST_SKIP() << "examples/lazy/harris.lz not reachable from cwd";

  LazyScriptResult R = parseLazyScriptFile(Path);
  ASSERT_TRUE(R.ok()) << renderIssues(R.Errors);
  EXPECT_EQ(R.Pipeline->numOps(), 16u);
  ASSERT_EQ(R.OutputNodes.size(), 1u);

  MaterializedPipeline MScript = compileLazy(*R.Pipeline, R.outputs());
  ASSERT_TRUE(MScript.Ok) << MScript.Diags.renderText();

  // The script and the C++ handle API record the same DAG shape, so they
  // must share a structural hash -- and therefore a plan.
  LazyPipeline Api("api_harris");
  MaterializedPipeline MApi = compileLazy(Api, {buildLazyHarris(Api, 256, 256)});
  ASSERT_TRUE(MApi.Ok) << MApi.Diags.renderText();
  EXPECT_EQ(MScript.StructuralHash, MApi.StructuralHash);

  Rng Gen(0x256);
  Image In = makeRandomImage(256, 256, 1, Gen, 0.05f, 1.0f);
  ExecutionOptions Exec;
  Exec.Threads = 1;
  PlanCache Cache;
  LazyRunResult RS = runLazy(MScript, {{"in", &In}}, Exec, &Cache);
  ASSERT_TRUE(RS.Ok) << RS.Diags.renderText();
  EXPECT_DOUBLE_EQ(
      maxAbsDifference(RS.Outputs.front(),
                       registryHarrisReference(256, 256, In)),
      0.0);
}

//===--------------------------------------------------------------------===//
// Server coexistence: lazy and registry tenants share one cache
//===--------------------------------------------------------------------===//

TEST(LazyServer, LazyTenantsCoexistWithRegistryTenantsAndSharePlans) {
  const int Width = 64, Height = 64;
  Rng Gen(0x5eed);
  Image In = makeRandomImage(Width, Height, 1, Gen, 0.05f, 1.0f);
  Image Ref = registryHarrisReference(Width, Height, In);

  // Registry tenant: the classic parse->fuse path.
  Program P = makeHarris(Width, Height);
  HardwareModel HW;
  MinCutFusionResult MinCut = runMinCutFusion(P, HW);
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  // Two lazy tenants of the same shape, recorded independently.
  LazyPipeline A("lazy_a"), B("lazy_b");
  MaterializedPipeline MA = compileLazy(A, {buildLazyHarris(A, Width, Height,
                                                            "cam0")});
  MaterializedPipeline MB = compileLazy(B, {buildLazyHarris(B, Width, Height,
                                                            "cam1")});
  ASSERT_TRUE(MA.Ok) << MA.Diags.renderText();
  ASSERT_TRUE(MB.Ok) << MB.Diags.renderText();

  ServerOptions SO;
  SO.Threads = 2;
  SO.Dispatchers = 0; // inline, deterministic dispatch
  PipelineServer Server(SO);
  PipelineServer::SessionId Reg = Server.open(FP);
  PipelineServer::SessionId TenA = Server.open(MA.Fused);
  PipelineServer::SessionId TenB = Server.open(MB.Fused);

  Image OutReg, OutA, OutB;
  ImageId RegIn = P.externalInputs().front();
  ImageId RegOut = P.kernels().back().Output;
  Server.submit(
      Reg, [&](int, std::vector<Image> &Frame) { Frame[RegIn] = In; },
      [&](int, const std::vector<Image> &Pool) { OutReg = Pool[RegOut]; });
  Server.submit(
      TenA,
      [&](int, std::vector<Image> &Frame) { Frame[MA.Inputs.front().second] = In; },
      [&](int, const std::vector<Image> &Pool) {
        OutA = Pool[MA.Outputs.front()];
      });
  Server.submit(
      TenB,
      [&](int, std::vector<Image> &Frame) { Frame[MB.Inputs.front().second] = In; },
      [&](int, const std::vector<Image> &Pool) {
        OutB = Pool[MB.Outputs.front()];
      });
  EXPECT_EQ(Server.runPending(), 3u);

  EXPECT_DOUBLE_EQ(maxAbsDifference(OutReg, Ref), 0.0);
  EXPECT_DOUBLE_EQ(maxAbsDifference(OutA, Ref), 0.0);
  EXPECT_DOUBLE_EQ(maxAbsDifference(OutB, Ref), 0.0);

  // The registry program and the canonical lazy program are distinct
  // shapes (one plan each); the two lazy tenants share theirs.
  PlanCacheStats CS = Server.cacheStats();
  EXPECT_EQ(CS.Misses, 2u);
  EXPECT_EQ(CS.Hits, 1u)
      << "second lazy tenant must reuse the first tenant's plan";
  EXPECT_EQ(CS.Entries, 2u);
}

//===--------------------------------------------------------------------===//
// Gate plumbing details
//===--------------------------------------------------------------------===//

TEST(LazyGate, DeadBranchesPruneSilently) {
  // A record-everything client: only one branch is requested. The dead
  // branch must neither execute nor warn (KF-P09/KF-P10 suppressed).
  LazyPipeline LP("branches");
  LazyImage In = LP.input("in", 16, 16);
  LazyImage Wanted = LP.add(In, 1.0f);
  LP.mul(In, 3.0f); // recorded, never requested

  MaterializedPipeline MP = compileLazy(LP, {Wanted});
  ASSERT_TRUE(MP.Ok) << MP.Diags.renderText();
  EXPECT_EQ(MP.Diags.warningCount(), 0u) << MP.Diags.renderText();
  EXPECT_EQ(MP.Prog->kernels().size(), 1u)
      << "dead branch must be pruned from the live program";
}

TEST(LazyGate, RejectedPipelinesRefuseToRun) {
  LazyPipeline LP("rejected");
  MaterializedPipeline MP = compileLazy(LP, {LP.handleAt(5)});
  ASSERT_FALSE(MP.Ok);
  PlanCache Cache;
  LazyRunResult R = runLazy(MP, {}, ExecutionOptions(), &Cache);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags.hasCode("KF-P00")) << R.Diags.renderText();
  EXPECT_TRUE(R.Outputs.empty());
}

TEST(LazyGate, MaterializeLazyIsCompilePlusRun) {
  LazyPipeline LP("oneshot");
  LazyImage In = LP.input("in", 16, 16);
  LazyImage Out = LP.mul(LP.add(In, 0.5f), 2.0f);
  Rng Gen(9);
  Image Frame = makeRandomImage(16, 16, 1, Gen, 0.05f, 1.0f);
  LazyRunResult R = materializeLazy(LP, {Out}, {{"in", &Frame}});
  ASSERT_TRUE(R.Ok) << R.Diags.renderText();
  ASSERT_EQ(R.Outputs.size(), 1u);
  for (int Y = 0; Y != 16; ++Y)
    for (int X = 0; X != 16; ++X)
      ASSERT_EQ(R.Outputs.front().at(X, Y, 0),
                (Frame.at(X, Y, 0) + 0.5f) * 2.0f);
}

} // namespace
