//===- tests/test_fusion_benefit.cpp - Benefit model (Sec. II-C) -------------===//
//
// Validates the benefit-estimation model against the numbers the paper
// derives in its Harris walk-through (Section III-B / Figure 3) and the
// closed-form pieces: Eq. 6 (cost_op), Eq. 9 (window growth), and the
// scenario classification with Eq. 12 clamping.
//
//===----------------------------------------------------------------------===//

#include "fusion/BenefitModel.h"
#include "ir/Verifier.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

/// Paper defaults: tg = 400, cALU = 4, cMshared = 2, gamma omitted.
HardwareModel paperModel() {
  HardwareModel HW;
  HW.GlobalAccessCycles = 400.0;
  HW.SharedAccessCycles = 4.0;
  HW.AluCost = 4.0;
  HW.SfuCost = 16.0;
  HW.SharedMemThreshold = 2.0;
  HW.Gamma = 0.0;
  return HW;
}

KernelId kernelByName(const Program &P, const std::string &Name) {
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (P.kernel(Id).Name == Name)
      return Id;
  ADD_FAILURE() << "kernel not found: " << Name;
  return 0;
}

TEST(FusedWindowWidth, PaperExample) {
  // "fusing a 3x3 source kernel with a 5x5 destination kernel yields a
  // convolution size of 7x7 for the fused kernel".
  EXPECT_EQ(fusedWindowWidth(3, 5), 7);
  // "if two 3x3 local kernels are fused, a window of 5x5 is required".
  EXPECT_EQ(fusedWindowWidth(3, 3), 5);
  EXPECT_EQ(fusedWindowWidth(1, 3), 3);
  EXPECT_EQ(fusedWindowWidth(5, 1), 5);
  EXPECT_EQ(fusedWindowWidth(5, 5), 9);
}

TEST(BenefitModel, HarrisSquareKernelCostOp) {
  Program P = makeHarris(64, 64);
  LegalityChecker Checker(P, paperModel());
  BenefitModel Model(Checker);
  // The paper assumes n_ALU = 2 for sx, sy, sxy, hence cost_op = 8.
  EXPECT_DOUBLE_EQ(Model.costOp(kernelByName(P, "sx")), 8.0);
  EXPECT_DOUBLE_EQ(Model.costOp(kernelByName(P, "sy")), 8.0);
  EXPECT_DOUBLE_EQ(Model.costOp(kernelByName(P, "sxy")), 8.0);
}

TEST(BenefitModel, HarrisEdgeWeightsMatchFigure3) {
  Program P = makeHarris(64, 64);
  LegalityChecker Checker(P, paperModel());
  BenefitModel Model(Checker);

  // sx -> gx and sy -> gy: w = 400 - 8 * 1 * 9 = 328.
  EdgeBenefit SxGx =
      Model.edgeBenefit(kernelByName(P, "sx"), kernelByName(P, "gx"));
  EXPECT_EQ(SxGx.Scenario, FusionScenario::PointToLocal);
  EXPECT_DOUBLE_EQ(SxGx.Weight, 328.0);

  EdgeBenefit SyGy =
      Model.edgeBenefit(kernelByName(P, "sy"), kernelByName(P, "gy"));
  EXPECT_DOUBLE_EQ(SyGy.Weight, 328.0);

  // sxy -> gxy: sxy has two input images, w = 400 - 8 * 2 * 9 = 256.
  EdgeBenefit SxyGxy =
      Model.edgeBenefit(kernelByName(P, "sxy"), kernelByName(P, "gxy"));
  EXPECT_EQ(SxyGxy.Scenario, FusionScenario::PointToLocal);
  EXPECT_DOUBLE_EQ(SxyGxy.Weight, 256.0);
}

TEST(BenefitModel, HarrisIllegalEdgesGetEpsilon) {
  Program P = makeHarris(64, 64);
  HardwareModel HW = paperModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);

  // dx -> sx: dx's output is also consumed by sxy (external output dep).
  EdgeBenefit DxSx =
      Model.edgeBenefit(kernelByName(P, "dx"), kernelByName(P, "sx"));
  EXPECT_EQ(DxSx.Scenario, FusionScenario::Illegal);
  EXPECT_DOUBLE_EQ(DxSx.Weight, HW.Epsilon);
  EXPECT_FALSE(DxSx.IllegalReason.empty());

  // gx -> hc: hc reads gy and gxy, which no source kernel of the pair
  // preserves (external input dependence; the paper's Figure 2d).
  EdgeBenefit GxHc =
      Model.edgeBenefit(kernelByName(P, "gx"), kernelByName(P, "hc"));
  EXPECT_EQ(GxHc.Scenario, FusionScenario::Illegal);
  EXPECT_DOUBLE_EQ(GxHc.Weight, HW.Epsilon);
}

TEST(BenefitModel, HarrisWeightedDagHasTenEdges) {
  Program P = makeHarris(64, 64);
  LegalityChecker Checker(P, paperModel());
  BenefitModel Model(Checker);
  std::vector<EdgeBenefit> Info;
  Digraph Dag = Model.buildWeightedDag(&Info);
  // "Those nine kernels are connected by ten edges."
  EXPECT_EQ(Dag.numNodes(), 9u);
  EXPECT_EQ(Dag.numEdges(), 10u);
  ASSERT_EQ(Info.size(), 10u);

  // Exactly three legal edges: {(sx,gx), (sxy,gxy), (sy,gy)}.
  unsigned NumLegal = 0;
  for (const EdgeBenefit &B : Info)
    if (B.Scenario != FusionScenario::Illegal)
      ++NumLegal;
  EXPECT_EQ(NumLegal, 3u);
}

TEST(BenefitModel, PointBasedScenarioUsesRegisterImprovement) {
  Program P = makeEnhancement(64, 64);
  HardwareModel HW = paperModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  // gmean -> gamma: consumer is a point kernel => point-based (the paper's
  // Eq. 5 applies "regardless of the compute pattern" of the producer).
  EdgeBenefit B =
      Model.edgeBenefit(kernelByName(P, "gmean"), kernelByName(P, "gamma"));
  EXPECT_EQ(B.Scenario, FusionScenario::PointBased);
  EXPECT_DOUBLE_EQ(B.Weight, 400.0);
  EXPECT_DOUBLE_EQ(B.RecomputeCost, 0.0);
}

TEST(BenefitModel, SobelEdgesArePairwiseIllegalButBlockFuses) {
  // The Sobel magnitude kernel reads both derivative images, so each
  // *pair* has an external input dependence (epsilon weight) -- yet the
  // three-kernel block is legal. This is precisely the "larger scope"
  // advantage of the min-cut formulation over pairwise approaches.
  Program P = makeSobel(64, 64);
  HardwareModel HW = paperModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  EdgeBenefit B =
      Model.edgeBenefit(kernelByName(P, "dx"), kernelByName(P, "mag"));
  EXPECT_EQ(B.Scenario, FusionScenario::Illegal);
  EXPECT_DOUBLE_EQ(B.Weight, HW.Epsilon);

  std::vector<KernelId> All = {kernelByName(P, "dx"), kernelByName(P, "dy"),
                               kernelByName(P, "mag")};
  EXPECT_TRUE(Checker.checkBlock(All).Legal);
  EXPECT_EQ(fusibleBlockRejection(Model, All), "");
}

TEST(BenefitModel, NightAtrousChainIsNotBeneficial) {
  Program P = makeNight(64, 64);
  HardwareModel HW = paperModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);

  // atrous0 -> atrous1 is a legal local-to-local pair, but the producer is
  // far too expensive: the recompute cost dwarfs delta_shared = 100 and
  // the weight clamps to epsilon (Section V: "the first two local kernels
  // are not fused").
  EdgeBenefit A0A1 = Model.edgeBenefit(kernelByName(P, "atrous0"),
                                       kernelByName(P, "atrous1"));
  EXPECT_EQ(A0A1.Scenario, FusionScenario::LocalToLocal);
  EXPECT_DOUBLE_EQ(A0A1.Weight, HW.Epsilon);
  EXPECT_GT(A0A1.RecomputeCost, A0A1.Locality);

  // atrous1 -> scoto is local-to-point: point-based, beneficial.
  EdgeBenefit A1Sc = Model.edgeBenefit(kernelByName(P, "atrous1"),
                                       kernelByName(P, "scoto"));
  EXPECT_EQ(A1Sc.Scenario, FusionScenario::PointBased);
  EXPECT_DOUBLE_EQ(A1Sc.Weight, 400.0);
}

TEST(BenefitModel, GammaTermShiftsWeights) {
  Program P = makeEnhancement(64, 64);
  HardwareModel HW = paperModel();
  HW.Gamma = 25.0;
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  EdgeBenefit B =
      Model.edgeBenefit(kernelByName(P, "gmean"), kernelByName(P, "gamma"));
  EXPECT_DOUBLE_EQ(B.Weight, 425.0);
}

TEST(BenefitModel, LocalToLocalUsesGrownWindow) {
  // A cheap 3x3 -> 3x3 chain: phi = cost_op * 1 * g(9, 9) with g = 25.
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  HardwareModel HW = paperModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  EdgeBenefit B =
      Model.edgeBenefit(kernelByName(P, "conv0"), kernelByName(P, "conv1"));
  EXPECT_EQ(B.Scenario, FusionScenario::LocalToLocal);
  EXPECT_DOUBLE_EQ(B.Locality, 100.0); // tg / ts = 400 / 4.
  // conv0: 9 muls + 8 adds + store = 18 ALU -> cost_op 72; phi = 72 * 25.
  EXPECT_DOUBLE_EQ(B.RecomputeCost, 72.0 * 25.0);
  EXPECT_DOUBLE_EQ(B.Weight, HW.Epsilon); // 100 - 1800 clamps.
}

TEST(BenefitModel, LocalToLocalCanBeBeneficialOnFastSharedMemory) {
  // With a architecture where shared memory is dramatically faster
  // relative to the recompute cost, local-to-local fusion pays off.
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  HardwareModel HW = paperModel();
  HW.GlobalAccessCycles = 8000.0; // Pathologically slow global memory.
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  EdgeBenefit B =
      Model.edgeBenefit(kernelByName(P, "conv0"), kernelByName(P, "conv1"));
  EXPECT_EQ(B.Scenario, FusionScenario::LocalToLocal);
  EXPECT_DOUBLE_EQ(B.Weight, 2000.0 - 1800.0);
}

} // namespace
