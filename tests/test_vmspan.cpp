//===- tests/test_vmspan.cpp - Span-mode vs scalar-mode VM execution ------------===//
//
// The lane-batched span interior mode (runVmSpan / runStagedVmSpan,
// VmMode::Span) must be bit-identical to the per-pixel scalar mode on
// every bundled pipeline, at every thread count, for every border mode,
// and across every tail width around the lane boundary. The scalar mode
// is itself verified against the AST walker in test_fusedvm.cpp, so
// span == scalar closes the chain back to the semantic reference.
//
// Also covers the KF_VM environment resolution (resolveVmMode).
//
//===----------------------------------------------------------------------===//

#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

using namespace kf;

namespace {

/// Fuses the whole program into one block (forces fusion regardless of
/// the benefit model).
Partition wholeProgramPartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

/// Builds a pipeline at test size with a deterministic random input.
struct TestApp {
  Program P;
  Image Input;
};

TestApp makeTestApp(const std::string &Name) {
  const PipelineSpec *Spec = findPipeline(Name);
  EXPECT_NE(Spec, nullptr);
  // Wide enough that interior rows span several lane chunks plus a tail.
  int W = VmLaneWidth * 2 + 21;
  TestApp App{Spec->Builder(W, 24), Image()};
  const ImageInfo &InInfo = App.P.image(0);
  Rng Gen(977);
  App.Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);
  return App;
}

void expectPoolsIdentical(const Program &P, const std::vector<Image> &Got,
                          const std::vector<Image> &Want,
                          const std::string &Tag) {
  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    EXPECT_EQ(Got[Id].empty(), Want[Id].empty())
        << Tag << " image " << P.image(Id).Name;
    if (Got[Id].empty() || Want[Id].empty())
      continue;
    EXPECT_DOUBLE_EQ(maxAbsDifference(Got[Id], Want[Id]), 0.0)
        << Tag << " image " << P.image(Id).Name;
  }
}

std::vector<int> threadSweep() {
  unsigned Hardware = std::max(std::thread::hardware_concurrency(), 1u);
  return {1, 3, static_cast<int>(Hardware)};
}

/// Span vs scalar differential across the bundled applications, fused
/// with the paper's min-cut partition, at 1 / 3 / hardware threads.
class VmSpanEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(VmSpanEquivalence, FusedSpanMatchesScalarAcrossThreadCounts) {
  TestApp App = makeTestApp(GetParam());
  Partition Blocks = runMinCutFusion(App.P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(App.P, Blocks, FusionStyle::Optimized);

  for (int Threads : threadSweep()) {
    ExecutionOptions Scalar;
    Scalar.Threads = Threads;
    Scalar.TileHeight = 3; // Force multiple tiles even on small images.
    Scalar.Mode = VmMode::Scalar;
    ExecutionOptions Span = Scalar;
    Span.Mode = VmMode::Span;

    std::vector<Image> ScalarPool = makeImagePool(App.P);
    ScalarPool[0] = App.Input;
    runFusedVm(FP, ScalarPool, Scalar);

    std::vector<Image> SpanPool = makeImagePool(App.P);
    SpanPool[0] = App.Input;
    runFusedVm(FP, SpanPool, Span);

    expectPoolsIdentical(App.P, SpanPool, ScalarPool,
                         GetParam() + " fused threads=" +
                             std::to_string(Threads));
  }
}

TEST_P(VmSpanEquivalence, UnfusedSpanMatchesScalarAcrossThreadCounts) {
  TestApp App = makeTestApp(GetParam());

  for (int Threads : threadSweep()) {
    ExecutionOptions Scalar;
    Scalar.Threads = Threads;
    Scalar.TileHeight = 3;
    Scalar.Mode = VmMode::Scalar;
    ExecutionOptions Span = Scalar;
    Span.Mode = VmMode::Span;

    std::vector<Image> ScalarPool = makeImagePool(App.P);
    ScalarPool[0] = App.Input;
    runUnfusedVm(App.P, ScalarPool, Scalar);

    std::vector<Image> SpanPool = makeImagePool(App.P);
    SpanPool[0] = App.Input;
    runUnfusedVm(App.P, SpanPool, Span);

    expectPoolsIdentical(App.P, SpanPool, ScalarPool,
                         GetParam() + " unfused threads=" +
                             std::to_string(Threads));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, VmSpanEquivalence,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

/// Border-mode sweep: span and scalar must agree for every border mode,
/// with and without the index exchange (the halo path is shared, but the
/// interior/halo split depends on the reach, so sweep both).
class VmSpanBorder : public ::testing::TestWithParam<BorderMode> {};

TEST_P(VmSpanBorder, BlurChainSpanMatchesScalar) {
  BorderMode Mode = GetParam();
  int W = VmLaneWidth + 19, H = 14;
  Program P = makeBlurChain(W, H, Mode);
  Rng Gen(4242);
  Image Input = makeRandomImage(W, H, 1, Gen);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  for (bool Exchange : {true, false}) {
    ExecutionOptions Scalar;
    Scalar.UseIndexExchange = Exchange;
    Scalar.Mode = VmMode::Scalar;
    ExecutionOptions Span = Scalar;
    Span.Mode = VmMode::Span;

    std::vector<Image> ScalarPool = makeImagePool(P);
    ScalarPool[0] = Input;
    runFusedVm(FP, ScalarPool, Scalar);

    std::vector<Image> SpanPool = makeImagePool(P);
    SpanPool[0] = Input;
    runFusedVm(FP, SpanPool, Span);

    EXPECT_DOUBLE_EQ(maxAbsDifference(SpanPool[2], ScalarPool[2]), 0.0)
        << borderModeName(Mode)
        << (Exchange ? " (index exchange)" : " (naive)");
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, VmSpanBorder,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return std::string(borderModeName(Info.param));
                         });

/// Tail handling: spans of width 1, VmLaneWidth - 1, VmLaneWidth and
/// VmLaneWidth + 1 must each match per-pixel interior evaluation exactly
/// -- the widths that straddle the chunking boundary.
TEST(VmSpan, StagedTailWidthsMatchPerPixel) {
  int W = VmLaneWidth + 16, H = 12;
  Program P = makeBlurChain(W, H, BorderMode::Mirror);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(19);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  int Halo = SP.Reach[Root];
  int Y = H / 2;
  std::vector<float> LaneRegs(static_cast<size_t>(SP.NumRegs) *
                              VmLaneWidth);
  std::vector<float> PixelRegs(SP.NumRegs);

  for (int Width :
       {1, VmLaneWidth - 1, VmLaneWidth, VmLaneWidth + 1}) {
    int X0 = Halo, X1 = X0 + Width;
    ASSERT_LE(X1, W - Halo) << "test image too narrow";
    std::vector<float> Out(Width);
    runStagedVmSpan(SP, Root, Pool, Y, X0, X1, 0, LaneRegs.data(),
                    Out.data());
    for (int X = X0; X != X1; ++X)
      EXPECT_FLOAT_EQ(Out[X - X0], runStagedVmInterior(SP, Root, Pool, X,
                                                       Y, 0,
                                                       PixelRegs.data()))
          << "width=" << Width << " x=" << X;
  }
}

TEST(VmSpan, PlainKernelTailWidthsMatchPerPixel) {
  int W = VmLaneWidth + 16, H = 12;
  Program P = makeBlurChain(W, H, BorderMode::Clamp);
  KernelId Id = 0; // First blur: a plain 3x3 convolution.
  VmProgram VM = compileKernelBody(P, Id);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(23);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  int Halo = vmHalo(VM);
  int Y = H / 2;
  std::vector<float> LaneRegs(static_cast<size_t>(VM.NumRegs) *
                              VmLaneWidth);
  std::vector<float> PixelRegs(VM.NumRegs);

  for (int Width :
       {1, VmLaneWidth - 1, VmLaneWidth, VmLaneWidth + 1}) {
    int X0 = Halo, X1 = X0 + Width;
    ASSERT_LE(X1, W - Halo) << "test image too narrow";
    std::vector<float> Out(Width);
    runVmSpan(VM, P, Id, Pool, Y, X0, X1, 0, LaneRegs.data(), Out.data());
    for (int X = X0; X != X1; ++X)
      EXPECT_FLOAT_EQ(Out[X - X0], runVmInterior(VM, P, Id, Pool, X, Y, 0,
                                                 PixelRegs.data()))
          << "width=" << Width << " x=" << X;
  }
}

/// Strided output: span mode must honor OutStride (the multi-channel
/// destination layout the tiled executor uses).
TEST(VmSpan, StridedOutputMatchesDense) {
  int W = VmLaneWidth + 16, H = 10;
  Program P = makeBlurChain(W, H, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(31);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  int Halo = SP.Reach[Root];
  int X0 = Halo, X1 = W - Halo, Y = 4, Width = X1 - X0;
  std::vector<float> LaneRegs(static_cast<size_t>(SP.NumRegs) *
                              VmLaneWidth);

  std::vector<float> Dense(Width);
  runStagedVmSpan(SP, Root, Pool, Y, X0, X1, 0, LaneRegs.data(),
                  Dense.data());

  const int Stride = 3;
  std::vector<float> Strided(static_cast<size_t>(Width) * Stride, -1.0f);
  runStagedVmSpan(SP, Root, Pool, Y, X0, X1, 0, LaneRegs.data(),
                  Strided.data(), Stride);

  for (int I = 0; I != Width; ++I) {
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride], Dense[I])
        << "i=" << I;
    // The gaps stay untouched.
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride + 1], -1.0f);
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride + 2], -1.0f);
  }
}

/// KF_VM environment resolution. Runs in one process, so manipulate and
/// restore the variable carefully; explicit requests must win over it.
TEST(VmSpan, ResolveVmModeHonorsEnvironment) {
  const char *Saved = std::getenv("KF_VM");
  std::string SavedCopy = Saved ? Saved : "";

  ::unsetenv("KF_VM");
  EXPECT_EQ(resolveVmMode(VmMode::Auto), VmMode::Span);

  ::setenv("KF_VM", "scalar", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto), VmMode::Scalar);

  ::setenv("KF_VM", "span", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto), VmMode::Span);

  // Malformed values fall back to span (with a once-per-process warning).
  ::setenv("KF_VM", "vectorized", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto), VmMode::Span);

  // Explicit requests win regardless of the environment.
  ::setenv("KF_VM", "span", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Scalar), VmMode::Scalar);
  ::setenv("KF_VM", "scalar", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Span), VmMode::Span);

  if (Saved)
    ::setenv("KF_VM", SavedCopy.c_str(), 1);
  else
    ::unsetenv("KF_VM");
}

TEST(VmSpan, ModeNames) {
  EXPECT_STREQ(vmModeName(VmMode::Auto), "auto");
  EXPECT_STREQ(vmModeName(VmMode::Scalar), "scalar");
  EXPECT_STREQ(vmModeName(VmMode::Span), "span");
}

} // namespace
