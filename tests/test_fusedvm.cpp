//===- tests/test_fusedvm.cpp - Staged VM vs AST fused execution ----------------===//
//
// The staged bytecode VM (compileFusedKernel / runFusedVm) must be
// bit-identical to the AST fused walker (runFused) -- including the halo
// region, where the index-exchange method of Section IV-B applies -- on
// every bundled pipeline, at every thread count. The AST walker is the
// semantic reference; these tests are what lets the benchmarks trust the
// fast path.
//
//===----------------------------------------------------------------------===//

#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "support/ThreadPool.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <thread>

using namespace kf;

namespace {

/// Fuses the whole program into one block (forces local-to-local fusion
/// regardless of the benefit model).
Partition wholeProgramPartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

/// Builds a pipeline at test size with a deterministic random input.
struct TestApp {
  Program P;
  Image Input;
};

TestApp makeTestApp(const std::string &Name) {
  const PipelineSpec *Spec = findPipeline(Name);
  EXPECT_NE(Spec, nullptr);
  int W = Name == "night" ? 18 : 22;
  TestApp App{Spec->Builder(W, 16), Image()};
  const ImageInfo &InInfo = App.P.image(0);
  Rng Gen(321);
  App.Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);
  return App;
}

/// Every image the fused run writes must match the reference pool
/// bit-for-bit.
void expectPoolsIdentical(const Program &P, const std::vector<Image> &Got,
                          const std::vector<Image> &Want,
                          const std::string &Tag) {
  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    EXPECT_EQ(Got[Id].empty(), Want[Id].empty())
        << Tag << " image " << P.image(Id).Name;
    if (Got[Id].empty() || Want[Id].empty())
      continue;
    EXPECT_DOUBLE_EQ(maxAbsDifference(Got[Id], Want[Id]), 0.0)
        << Tag << " image " << P.image(Id).Name;
  }
}

/// Staged-VM equivalence across the bundled applications, fused with the
/// paper's min-cut partition under the default (paper) hardware model.
class FusedVmEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(FusedVmEquivalence, MatchesAstReferenceOnMinCutPartition) {
  TestApp App = makeTestApp(GetParam());
  Partition Blocks = runMinCutFusion(App.P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(App.P, Blocks, FusionStyle::Optimized);

  std::vector<Image> Reference = makeImagePool(App.P);
  Reference[0] = App.Input;
  runFused(FP, Reference);

  std::vector<Image> VmPool = makeImagePool(App.P);
  VmPool[0] = App.Input;
  runFusedVm(FP, VmPool);

  expectPoolsIdentical(App.P, VmPool, Reference, GetParam());
}

TEST_P(FusedVmEquivalence, UnfusedVmDriverMatchesAstReference) {
  TestApp App = makeTestApp(GetParam());

  std::vector<Image> Reference = makeImagePool(App.P);
  Reference[0] = App.Input;
  runUnfused(App.P, Reference);

  ExecutionOptions Options;
  Options.Threads = 2;
  std::vector<Image> VmPool = makeImagePool(App.P);
  VmPool[0] = App.Input;
  runUnfusedVm(App.P, VmPool, Options);

  expectPoolsIdentical(App.P, VmPool, Reference, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, FusedVmEquivalence,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

/// Border-mode sweep: the staged VM must reproduce the AST walker exactly
/// in the halo for every border mode, both with the correct index
/// exchange and in the deliberately-incorrect naive mode of Figure 4b.
class FusedVmBorder : public ::testing::TestWithParam<BorderMode> {};

TEST_P(FusedVmBorder, BlurChainMatchesAstWithAndWithoutExchange) {
  BorderMode Mode = GetParam();
  Program P = makeBlurChain(20, 14, Mode);
  Rng Gen(77);
  Image Input = makeRandomImage(20, 14, 1, Gen);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  for (bool Exchange : {true, false}) {
    ExecutionOptions Options;
    Options.UseIndexExchange = Exchange;

    std::vector<Image> Reference = makeImagePool(P);
    Reference[0] = Input;
    runFused(FP, Reference, Options);

    std::vector<Image> VmPool = makeImagePool(P);
    VmPool[0] = Input;
    runFusedVm(FP, VmPool, Options);

    EXPECT_DOUBLE_EQ(maxAbsDifference(VmPool[2], Reference[2]), 0.0)
        << borderModeName(Mode)
        << (Exchange ? " (index exchange)" : " (naive)");
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, FusedVmBorder,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return std::string(borderModeName(Info.param));
                         });

TEST(FusedVm, Figure4ValuesThroughTheStagedVm) {
  // The staged VM reproduces the paper's Figure 4 numbers: 992 in the
  // body, 763 at the corner with index exchange, 684 without (the naive
  // border fusion the paper warns about; see test_executor.cpp for why
  // 684 rather than the printed 648).
  Program P = makeFigure4Program();
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeFigure4Matrix();
  runFusedVm(FP, Pool);
  EXPECT_FLOAT_EQ(Pool[2].at(2, 2), 992.0f);
  EXPECT_FLOAT_EQ(Pool[2].at(0, 0), 763.0f);

  ExecutionOptions Naive;
  Naive.UseIndexExchange = false;
  std::vector<Image> NaivePool = makeImagePool(P);
  NaivePool[0] = makeFigure4Matrix();
  runFusedVm(FP, NaivePool, Naive);
  EXPECT_FLOAT_EQ(NaivePool[2].at(2, 2), 992.0f);
  EXPECT_FLOAT_EQ(NaivePool[2].at(0, 0), 684.0f);
}

TEST(FusedVm, CompiledKernelExposesStagesAndReach) {
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  ASSERT_EQ(FP.Kernels.size(), 1u);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);

  ASSERT_EQ(SP.Stages.size(), 2u);
  EXPECT_TRUE(SP.UniformExtents);
  ASSERT_EQ(SP.Reach.size(), 2u);
  // Stage 0 is a lone 3x3 convolution (reach 1); stage 1 recomputes it
  // per window element, growing the footprint to 2 -- Eq. 9's grown
  // window.
  EXPECT_EQ(SP.Reach[0], 1);
  EXPECT_EQ(SP.Reach[1], 2);

  // The consumer's subprogram reads the producer through stage calls,
  // not pool loads.
  unsigned Calls = 0;
  for (const VmInst &Inst : SP.Stages[1].Code.Insts)
    if (Inst.Op == VmOp::StageCall) {
      ++Calls;
      EXPECT_EQ(Inst.Sel, 0u);
    }
  EXPECT_EQ(Calls, 9u);
}

TEST(FusedVm, RowEvaluationMatchesPerPixel) {
  Program P = makeBlurChain(24, 12, BorderMode::Mirror);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(11);
  Pool[0] = makeRandomImage(24, 12, 1, Gen);

  int Halo = SP.Reach[Root];
  int X0 = Halo, X1 = 24 - Halo, Y = 5;
  std::vector<float> RowRegs(static_cast<size_t>(SP.NumRegs) * (X1 - X0));
  std::vector<float> PixelRegs(SP.NumRegs);
  std::vector<float> Row(X1 - X0);
  runStagedVmRow(SP, Root, Pool, Y, X0, X1, 0, RowRegs.data(), Row.data());
  for (int X = X0; X != X1; ++X)
    EXPECT_FLOAT_EQ(Row[X - X0],
                    runStagedVm(SP, Root, Pool, X, Y, 0, PixelRegs.data()))
        << "x=" << X;
}

/// Thread-count invariance: every engine is bit-identical at 1, 3, and
/// hardware-concurrency threads (pixels are pure functions of the
/// inputs; tiles write disjoint regions).
TEST(FusedVm, ThreadCountInvariance) {
  TestApp App = makeTestApp("harris");
  Partition Blocks = runMinCutFusion(App.P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(App.P, Blocks, FusionStyle::Optimized);

  unsigned Hardware = std::max(std::thread::hardware_concurrency(), 1u);
  std::vector<int> Counts{1, 3, static_cast<int>(Hardware)};

  std::vector<std::vector<Image>> FusedRuns, UnfusedVmRuns, UnfusedRuns;
  for (int Threads : Counts) {
    ExecutionOptions Options;
    Options.Threads = Threads;
    Options.TileHeight = 3; // Force multiple tiles even on small images.

    std::vector<Image> A = makeImagePool(App.P);
    A[0] = App.Input;
    runFusedVm(FP, A, Options);
    FusedRuns.push_back(std::move(A));

    std::vector<Image> B = makeImagePool(App.P);
    B[0] = App.Input;
    runUnfusedVm(App.P, B, Options);
    UnfusedVmRuns.push_back(std::move(B));

    std::vector<Image> C = makeImagePool(App.P);
    C[0] = App.Input;
    runUnfused(App.P, C, Options);
    UnfusedRuns.push_back(std::move(C));
  }

  for (size_t I = 1; I != Counts.size(); ++I) {
    std::string Tag = "threads=" + std::to_string(Counts[I]);
    expectPoolsIdentical(App.P, FusedRuns[I], FusedRuns[0],
                         "runFusedVm " + Tag);
    expectPoolsIdentical(App.P, UnfusedVmRuns[I], UnfusedVmRuns[0],
                         "runUnfusedVm " + Tag);
    expectPoolsIdentical(App.P, UnfusedRuns[I], UnfusedRuns[0],
                         "runUnfused " + Tag);
  }
}

} // namespace
