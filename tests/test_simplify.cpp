//===- tests/test_simplify.cpp - Simplifier & CSE analysis ----------------------===//

#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/Simplify.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

TEST(Simplify, FoldsConstantArithmetic) {
  ExprContext C;
  const Expr *E = C.add(C.mul(C.floatConst(2.0f), C.floatConst(3.0f)),
                        C.floatConst(1.0f));
  const Expr *S = simplifyExpr(C, E);
  ASSERT_EQ(S->Kind, ExprKind::FloatConst);
  EXPECT_FLOAT_EQ(S->Value, 7.0f);
}

TEST(Simplify, FoldsConstantCallsAndComparisons) {
  ExprContext C;
  const Expr *Sqrt = C.unary(UnOp::Sqrt, C.floatConst(9.0f));
  EXPECT_FLOAT_EQ(simplifyExpr(C, Sqrt)->Value, 3.0f);
  const Expr *Cmp =
      C.binary(BinOp::CmpLT, C.floatConst(1.0f), C.floatConst(2.0f));
  EXPECT_FLOAT_EQ(simplifyExpr(C, Cmp)->Value, 1.0f);
  const Expr *Pw =
      C.binary(BinOp::Pow, C.floatConst(2.0f), C.floatConst(10.0f));
  EXPECT_FLOAT_EQ(simplifyExpr(C, Pw)->Value, 1024.0f);
}

TEST(Simplify, AppliesIdentities) {
  ExprContext C;
  const Expr *X = C.inputAt(0);
  EXPECT_EQ(simplifyExpr(C, C.add(X, C.floatConst(0.0f))), X);
  EXPECT_EQ(simplifyExpr(C, C.add(C.floatConst(0.0f), X)), X);
  EXPECT_EQ(simplifyExpr(C, C.sub(X, C.floatConst(0.0f))), X);
  EXPECT_EQ(simplifyExpr(C, C.mul(X, C.floatConst(1.0f))), X);
  EXPECT_EQ(simplifyExpr(C, C.mul(C.floatConst(1.0f), X)), X);
  EXPECT_EQ(simplifyExpr(C, C.div(X, C.floatConst(1.0f))), X);
  EXPECT_EQ(
      simplifyExpr(C, C.unary(UnOp::Neg, C.unary(UnOp::Neg, X))), X);
}

TEST(Simplify, DoesNotApplyUnsafeZeroRule) {
  // x * 0 must NOT fold to 0: x could be NaN or infinite.
  ExprContext C;
  const Expr *E = C.mul(C.inputAt(0), C.floatConst(0.0f));
  const Expr *S = simplifyExpr(C, E);
  EXPECT_EQ(S->Kind, ExprKind::Binary);
}

TEST(Simplify, ResolvesConstantSelect) {
  ExprContext C;
  const Expr *A = C.inputAt(0);
  const Expr *B = C.inputAt(1);
  EXPECT_EQ(simplifyExpr(C, C.select(C.floatConst(1.0f), A, B)), A);
  EXPECT_EQ(simplifyExpr(C, C.select(C.floatConst(0.0f), A, B)), B);
}

TEST(Simplify, ReturnsSamePointerWhenUnchanged) {
  ExprContext C;
  const Expr *E = C.mul(C.inputAt(0), C.inputAt(1));
  EXPECT_EQ(simplifyExpr(C, E), E);
}

TEST(Simplify, SimplifiesInsideStencilElements) {
  ExprContext C;
  const Expr *Elem = C.mul(C.maskValue(),
                           C.mul(C.stencilInput(0), C.floatConst(1.0f)));
  const Expr *E = C.stencil(0, ReduceOp::Sum, Elem);
  const Expr *S = simplifyExpr(C, E);
  ASSERT_EQ(S->Kind, ExprKind::Stencil);
  // The inner * 1 disappeared.
  EXPECT_EQ(S->Lhs->Rhs->Kind, ExprKind::StencilInput);
}

TEST(Simplify, ProgramPassPreservesSemantics) {
  // Build a pipeline with foldable fat, simplify, and check outputs are
  // unchanged.
  Program P("fat");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 12, 12);
  ImageId Out = P.addImage("out", 12, 12);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.add(C.mul(C.inputAt(0), C.floatConst(1.0f)),
                 C.mul(C.floatConst(2.0f), C.floatConst(0.25f)));
  P.addKernel(std::move(K));

  Rng Gen(3);
  std::vector<Image> Before = makeImagePool(P);
  Before[0] = makeRandomImage(12, 12, 1, Gen);
  runUnfused(P, Before);

  EXPECT_EQ(simplifyProgram(P), 1u);
  std::vector<Image> After = makeImagePool(P);
  After[0] = Before[0];
  runUnfused(P, After);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Before[1], After[1]), 0.0);
  // Paper pipelines are already tight: simplification changes nothing.
  Program Harris = makeHarris(16, 16);
  EXPECT_EQ(simplifyProgram(Harris), 0u);
}

TEST(CseAnalysis, UniqueVsTotalOps) {
  ExprContext C;
  // (a*b) + (a*b): total 3 ops, unique 2 (the product shared).
  const Expr *Prod = C.mul(C.inputAt(0), C.inputAt(1));
  const Expr *E = C.add(Prod, C.mul(C.inputAt(0), C.inputAt(1)));
  EXPECT_EQ(countTotalOps(E), 3);
  EXPECT_EQ(countUniqueOps(E), 2);
}

TEST(CseAnalysis, CrossKernelSavingsSeesThroughImageIds) {
  // Two kernels computing the same subexpression of the same image: the
  // fused scope dedups it.
  Program P("cse");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId A = P.addImage("a", 8, 8);
  ImageId B = P.addImage("b", 8, 8);
  auto addK = [&](const char *Name, ImageId Out) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Point;
    K.Inputs = {In};
    K.Output = Out;
    // in*in + const: the square is common across both kernels.
    K.Body = C.add(C.mul(C.inputAt(0), C.inputAt(0)),
                   C.floatConst(Out == A ? 1.0f : 2.0f));
    P.addKernel(std::move(K));
  };
  addK("ka", A);
  addK("kb", B);
  // Each kernel: 2 unique ops (mul, add). Union: mul shared -> 3.
  EXPECT_EQ(crossKernelCseSavings(P, {0, 1}), 1);
}

TEST(CseAnalysis, NoSavingsAcrossDifferentImages) {
  Program P = makeSobel(16, 16);
  // dx and dy convolve the same input with different masks: nothing to
  // share beyond leaf loads (which are not ops).
  EXPECT_EQ(crossKernelCseSavings(P, {0, 1}), 0);
}

TEST(CseAnalysis, HarrisSquareKernelsShareTheDerivativeLoads) {
  Program P = makeHarris(16, 16);
  // sx = dx*dx, sxy = dx*dy: distinct products, no op savings; the
  // derived gamma is then just the launch-overhead share.
  long long Savings = crossKernelCseSavings(P, {2, 4});
  EXPECT_EQ(Savings, 0);
  double Gamma = deriveGamma(P, 2, 4, 4.0, 0.5);
  EXPECT_DOUBLE_EQ(Gamma, 0.5);
}

TEST(CseAnalysis, DerivedGammaFeedsTheBenefitModel) {
  // Using a derived gamma instead of the default 0 shifts weights exactly
  // as Eq. 12 prescribes.
  Program P("g");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Mid = P.addImage("mid", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K1;
  K1.Name = "a";
  K1.Kind = OperatorKind::Point;
  K1.Inputs = {In};
  K1.Output = Mid;
  K1.Body = C.mul(C.inputAt(0), C.inputAt(0));
  P.addKernel(std::move(K1));
  Kernel K2;
  K2.Name = "b";
  K2.Kind = OperatorKind::Point;
  K2.Inputs = {In, Mid};
  K2.Output = Out;
  // Recomputes in*in redundantly: fusion scope saves one multiply.
  K2.Body = C.add(C.mul(C.inputAt(0), C.inputAt(0)), C.inputAt(1));
  P.addKernel(std::move(K2));

  EXPECT_EQ(crossKernelCseSavings(P, {0, 1}), 1);
  EXPECT_DOUBLE_EQ(deriveGamma(P, 0, 1, 4.0, 0.25), 4.25);
}

} // namespace
