//===- tests/test_multioutput.cpp - Multi-destination fusion extension ----------===//
//
// The extension beyond the paper: fused kernels with several destination
// outputs (LegalityOptions::AllowMultipleDestinations). Checks legality
// relaxation, partitioning, transform structure, execution exactness, and
// the emitted entry-point signatures.
//
//===----------------------------------------------------------------------===//

#include "backend/cpu/CppEmitter.h"
#include "backend/cuda/CudaEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/Verifier.h"
#include "pipelines/Pipelines.h"
#include "sim/CostModel.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

LegalityOptions multiOut() {
  LegalityOptions Options;
  Options.AllowMultipleDestinations = true;
  return Options;
}

/// A pipeline with two terminal outputs sharing one producer: grad
/// computes a derivative, and two point kernels derive both a magnitude
/// and a sign map from it.
Program makeTwoOutputs(int Width, int Height) {
  Program P("twoout");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", Width, Height);
  ImageId G = P.addImage("grad", Width, Height);
  ImageId MagOut = P.addImage("mag", Width, Height);
  ImageId SignOut = P.addImage("sign", Width, Height);

  Kernel Grad;
  Grad.Name = "grad";
  Grad.Kind = OperatorKind::Point;
  Grad.Inputs = {In};
  Grad.Output = G;
  Grad.Body = C.sub(C.mul(C.inputAt(0), C.inputAt(0)), C.floatConst(0.25f));
  P.addKernel(std::move(Grad));

  Kernel Mag;
  Mag.Name = "mag";
  Mag.Kind = OperatorKind::Point;
  Mag.Inputs = {G};
  Mag.Output = MagOut;
  Mag.Body = C.unary(UnOp::Abs, C.inputAt(0));
  P.addKernel(std::move(Mag));

  Kernel Sign;
  Sign.Name = "sign";
  Sign.Kind = OperatorKind::Point;
  Sign.Inputs = {G};
  Sign.Output = SignOut;
  Sign.Body = C.binary(BinOp::CmpGT, C.inputAt(0), C.floatConst(0.0f));
  P.addKernel(std::move(Sign));

  verifyProgramOrDie(P);
  return P;
}

TEST(MultiOutput, LegalityRelaxesSinkCount) {
  Program P = makeTwoOutputs(16, 16);
  std::vector<KernelId> All = {0, 1, 2};

  LegalityChecker Strict(P, paperModel());
  LegalityResult StrictResult = Strict.checkBlock(All);
  EXPECT_FALSE(StrictResult.Legal);
  EXPECT_NE(StrictResult.Reason.find("destination"), std::string::npos);

  LegalityChecker Relaxed(P, paperModel(), multiOut());
  EXPECT_TRUE(Relaxed.checkBlock(All).Legal);
}

TEST(MultiOutput, OtherRulesStayInForce) {
  // Multi-destination does not legalize escaping *intermediates*: in
  // Harris, {dx, sx} still fails because dx's output feeds sxy outside.
  Program P = makeHarris(16, 16);
  LegalityChecker Relaxed(P, paperModel(), multiOut());
  LegalityResult R = Relaxed.checkBlock({0, 2});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("external output"), std::string::npos);
}

TEST(MultiOutput, PartitionerFusesTwoOutputPipeline) {
  Program P = makeTwoOutputs(16, 16);
  // Paper rules: {grad, mag} or {grad, sign} can pair at best.
  MinCutFusionResult Single = runMinCutFusion(P, paperModel());
  EXPECT_GE(Single.Blocks.Blocks.size(), 2u);
  // Extension: the whole pipeline becomes one launch.
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  EXPECT_EQ(Multi.Blocks.Blocks.size(), 1u);
  EXPECT_GE(Multi.TotalBenefit, Single.TotalBenefit);
}

TEST(MultiOutput, FuserRecordsAllDestinations) {
  Program P = makeTwoOutputs(16, 16);
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);
  ASSERT_EQ(FP.numLaunches(), 1u);
  const FusedKernel &FK = FP.Kernels.front();
  EXPECT_EQ(FK.Destinations.size(), 2u);
  EXPECT_TRUE(FK.isDestination(1));
  EXPECT_TRUE(FK.isDestination(2));
  EXPECT_FALSE(FK.isDestination(0));
  // grad is register-placed; both destinations write global memory.
  EXPECT_EQ(FK.findStage(0)->OutputPlacement, Placement::Register);
  EXPECT_EQ(FK.findStage(1)->OutputPlacement, Placement::Global);
  EXPECT_EQ(FK.findStage(2)->OutputPlacement, Placement::Global);
}

TEST(MultiOutput, ExecutionMatchesBaselineOnBothOutputs) {
  Program P = makeTwoOutputs(20, 14);
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);

  Rng Gen(77);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(20, 14, 1, Gen);
  runUnfused(P, Reference);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[2], Reference[2]), 0.0);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[3], Reference[3]), 0.0);
  EXPECT_TRUE(Pool[1].empty()); // grad eliminated.
}

TEST(MultiOutput, AccountingWritesBothOutputsReadsInputOnce) {
  Program P = makeTwoOutputs(64, 64);
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);
  ProgramStats Stats = accountFusedProgram(FP);
  ASSERT_EQ(Stats.Launches.size(), 1u);
  double ImageBytes = 64.0 * 64.0 * 4.0;
  EXPECT_DOUBLE_EQ(Stats.Launches[0].GlobalBytesWritten, 2.0 * ImageBytes);
  EXPECT_DOUBLE_EQ(Stats.Launches[0].GlobalBytesRead, ImageBytes);

  // Against the baseline: 3 launches, 4 reads + 3 writes.
  ProgramStats Base = accountFusedProgram(unfusedProgram(P));
  EXPECT_EQ(Base.numLaunches(), 3u);
  EXPECT_GT(Base.totalGlobalBytes(),
            Stats.Launches[0].totalGlobalBytes());
}

TEST(MultiOutput, EmittersTakeOneOutputPointerPerDestination) {
  Program P = makeTwoOutputs(16, 16);
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);
  std::string Cuda = emitCudaProgram(FP);
  EXPECT_NE(Cuda.find("float *out_mag, float *out_sign"),
            std::string::npos);
  EXPECT_NE(Cuda.find("out_mag[(y * width + x) * 1 + c]"),
            std::string::npos);
  EXPECT_NE(Cuda.find("out_sign[(y * width + x) * 1 + c]"),
            std::string::npos);
  std::string Cpp = emitCppProgram(FP);
  EXPECT_NE(Cpp.find("extern \"C\" void twoout_grad_mag_sign_kernel("
                     "float *out_mag, float *out_sign"),
            std::string::npos);
}

TEST(MultiOutput, SingleDestinationSignaturesUnchanged) {
  // The extension must not disturb the paper-mode output.
  Program P = makeSobel(16, 16);
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  std::string Cuda = emitCudaProgram(FP);
  EXPECT_NE(Cuda.find("sobel_dx_dy_mag_kernel(float *out, "),
            std::string::npos);
}

TEST(MultiOutput, HarrisGainsLaunchesUnderExtension) {
  // With multiple destinations, Harris can fuse {dx, dy, sx, sy, sxy}
  // (three destinations) -- fewer launches than the paper partition.
  Program P = makeHarris(32, 32);
  MinCutFusionResult Single = runMinCutFusion(P, paperModel());
  MinCutFusionResult Multi = runMinCutFusion(P, paperModel(), multiOut());
  EXPECT_LE(Multi.Blocks.Blocks.size(), Single.Blocks.Blocks.size());
  EXPECT_GE(Multi.TotalBenefit, Single.TotalBenefit);

  // Whatever the partition, execution stays exact.
  FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);
  Rng Gen(9);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(32, 32, 1, Gen);
  runUnfused(P, Reference);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[9], Reference[9]), 0.0);
}

TEST(MultiOutput, RandomPipelinesStayExact) {
  Rng Gen(2025);
  for (int Trial = 0; Trial != 10; ++Trial) {
    Program P = makeRandomPipeline(8, 0.4, 14, 14, Gen);
    MinCutFusionResult Multi =
        runMinCutFusion(P, paperModel(), multiOut());
    ASSERT_EQ(validatePartition(P, Multi.Blocks), "") << Trial;
    FusedProgram FP = fuseProgram(P, Multi.Blocks, FusionStyle::Optimized);
    std::vector<Image> Reference = makeImagePool(P);
    Reference[0] = makeRandomImage(14, 14, 1, Gen);
    runUnfused(P, Reference);
    std::vector<Image> Pool = makeImagePool(P);
    Pool[0] = Reference[0];
    runFused(FP, Pool);
    for (ImageId Out : P.terminalOutputs())
      EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[Out], Reference[Out]), 0.0)
          << "trial " << Trial;
  }
}

} // namespace
