//===- tests/test_threadpool.cpp - Tiled thread-pool primitives -----------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace kf;

namespace {

/// Runs parallelFor2D and returns a per-cell visit-count grid.
std::vector<int> paintCells(ThreadPool &TP, int W, int H, int TileW,
                            int TileH) {
  std::vector<int> Counts(static_cast<size_t>(std::max(W, 0)) *
                          std::max(H, 0));
  TP.parallelFor2D(W, H, TileW, TileH,
                   [&](const TileRange &T, unsigned) {
                     for (int Y = T.Y0; Y != T.Y1; ++Y)
                       for (int X = T.X0; X != T.X1; ++X)
                         ++Counts[static_cast<size_t>(Y) * W + X];
                   });
  return Counts;
}

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  ThreadPool TP(4);
  std::atomic<int> Calls{0};
  TP.parallelFor2D(0, 8, 4, 4,
                   [&](const TileRange &, unsigned) { ++Calls; });
  TP.parallelFor2D(8, 0, 4, 4,
                   [&](const TileRange &, unsigned) { ++Calls; });
  TP.parallelFor2D(-3, 5, 4, 4,
                   [&](const TileRange &, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPool, SingleTileCoversWholeSpace) {
  ThreadPool TP(4);
  std::mutex M;
  std::vector<TileRange> Seen;
  TP.parallelFor2D(7, 5, 16, 16, [&](const TileRange &T, unsigned) {
    std::lock_guard<std::mutex> Lock(M);
    Seen.push_back(T);
  });
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0].X0, 0);
  EXPECT_EQ(Seen[0].Y0, 0);
  EXPECT_EQ(Seen[0].X1, 7);
  EXPECT_EQ(Seen[0].Y1, 5);
}

TEST(ThreadPool, NonPositiveTileExtentsSelectFullExtent) {
  ThreadPool TP(2);
  std::atomic<int> Calls{0};
  TP.parallelFor2D(9, 6, 0, -1, [&](const TileRange &T, unsigned) {
    ++Calls;
    EXPECT_EQ(T.width(), 9);
    EXPECT_EQ(T.height(), 6);
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, OddRemainderTilesPartitionExactly) {
  // 37 x 13 with 16 x 5 tiles: clipped edge tiles, every cell exactly once.
  for (unsigned Threads : {1u, 3u}) {
    ThreadPool TP(Threads);
    std::vector<int> Counts = paintCells(TP, 37, 13, 16, 5);
    for (int C : Counts)
      EXPECT_EQ(C, 1);
  }
}

TEST(ThreadPool, TilesStayInsideTheSpaceAndAreNonEmpty) {
  ThreadPool TP(3);
  std::mutex M;
  std::vector<TileRange> Seen;
  TP.parallelFor2D(33, 9, 8, 4, [&](const TileRange &T, unsigned) {
    std::lock_guard<std::mutex> Lock(M);
    Seen.push_back(T);
  });
  // ceil(33/8) * ceil(9/4) tiles.
  EXPECT_EQ(Seen.size(), 5u * 3u);
  for (const TileRange &T : Seen) {
    EXPECT_GE(T.X0, 0);
    EXPECT_GE(T.Y0, 0);
    EXPECT_LE(T.X1, 33);
    EXPECT_LE(T.Y1, 9);
    EXPECT_GT(T.area(), 0);
  }
}

TEST(ThreadPool, WorkerIndexStaysInRange) {
  ThreadPool TP(4);
  EXPECT_EQ(TP.numThreads(), 4u);
  TP.parallelFor2D(64, 64, 8, 8, [&](const TileRange &, unsigned Worker) {
    EXPECT_LT(Worker, 4u);
  });
}

TEST(ThreadPool, PoolIsReusableAcrossLaunches) {
  ThreadPool TP(3);
  for (int Round = 0; Round != 5; ++Round) {
    std::vector<int> Counts = paintCells(TP, 21, 17, 4, 3);
    for (int C : Counts)
      EXPECT_EQ(C, 1);
  }
}

TEST(ThreadPool, SingleThreadRunsTilesInRowMajorOrder) {
  // The serial reference path: deterministic enumeration order.
  ThreadPool TP(1);
  std::vector<TileRange> Seen;
  TP.parallelFor2D(8, 8, 4, 4, [&](const TileRange &T, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    Seen.push_back(T);
  });
  ASSERT_EQ(Seen.size(), 4u);
  EXPECT_EQ(Seen[0].X0, 0);
  EXPECT_EQ(Seen[0].Y0, 0);
  EXPECT_EQ(Seen[1].X0, 4);
  EXPECT_EQ(Seen[1].Y0, 0);
  EXPECT_EQ(Seen[2].X0, 0);
  EXPECT_EQ(Seen[2].Y0, 4);
  EXPECT_EQ(Seen[3].X0, 4);
  EXPECT_EQ(Seen[3].Y0, 4);
}

TEST(ThreadPool, ResolveThreadCountPrefersExplicitRequest) {
  EXPECT_EQ(resolveThreadCount(5), 5u);
  EXPECT_EQ(resolveThreadCount(1), 1u);
}

TEST(ThreadPool, ResolveThreadCountReadsEnvironment) {
  setenv("KF_THREADS", "3", 1);
  EXPECT_EQ(resolveThreadCount(0), 3u);
  setenv("KF_THREADS", "not-a-number", 1);
  EXPECT_GE(resolveThreadCount(0), 1u);
  unsetenv("KF_THREADS");
  EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ThreadPool, ResolveThreadCountRejectsMalformedEnvironment) {
  // Malformed or non-positive KF_THREADS values must all fall back to
  // hardware concurrency (>= 1), never crash or return 0. The fallback
  // must match what an unset variable yields.
  unsetenv("KF_THREADS");
  unsigned Fallback = resolveThreadCount(0);
  EXPECT_GE(Fallback, 1u);
  const char *Bad[] = {"abc", "0",   "-2",
                       "3x",  "",    "2.5",
                       "99999999999999999999"};
  for (const char *Value : Bad) {
    setenv("KF_THREADS", Value, 1);
    EXPECT_EQ(resolveThreadCount(0), Fallback)
        << "KF_THREADS='" << Value << "'";
  }
  // An explicit request still wins over a (valid or invalid) environment.
  setenv("KF_THREADS", "7", 1);
  EXPECT_EQ(resolveThreadCount(2), 2u);
  unsetenv("KF_THREADS");
}

TEST(ThreadPool, StatsCountLaunchesAndTiles) {
  ThreadPool Pool(2);
  Pool.parallelFor2D(8, 8, 4, 4, [](const TileRange &, unsigned) {});
  Pool.parallelFor2D(4, 4, 4, 4, [](const TileRange &, unsigned) {});
  ThreadPoolStats Stats = Pool.stats();
  EXPECT_EQ(Stats.Launches, 2u);
  EXPECT_EQ(Stats.Tiles, 5u);
  uint64_t PerWorker = 0;
  for (uint64_t Count : Stats.TilesPerWorker)
    PerWorker += Count;
  EXPECT_EQ(PerWorker, Stats.Tiles);
}

} // namespace
