//===- tests/test_analysis_fixtures.cpp - Bad .kfp fixtures ---------------------===//
//
// Hand-written bad .kfp fixtures under tests/fixtures/analysis/, each
// exercising one analyzer diagnostic. The lenient parse (Verify=false)
// admits what the strict parser would reject wholesale, and the lint pass
// must report the exact code. `kfc --analyze --Werror` exit statuses for
// the same fixtures are asserted by ctest entries in tests/CMakeLists.txt.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProgramLint.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace kf;

namespace {

/// Locates tests/fixtures/analysis relative to the test binary's working
/// directory (ctest runs in build/tests).
std::string fixtureDir() {
  for (const char *Candidate :
       {"fixtures/analysis/", "tests/fixtures/analysis/",
        "../tests/fixtures/analysis/", "../../tests/fixtures/analysis/",
        "../../../tests/fixtures/analysis/"}) {
    std::ifstream Probe(std::string(Candidate) + "cyclic.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

/// Leniently parses a fixture and lints it; the program must be
/// structurally parseable.
DiagnosticEngine lintFixture(const std::string &File) {
  std::string Dir = fixtureDir();
  EXPECT_FALSE(Dir.empty()) << "tests/fixtures/analysis not found";
  ParseResult Parsed = parsePipelineFile(Dir + File, /*Verify=*/false);
  EXPECT_TRUE(Parsed.Prog != nullptr)
      << File << ": " << (Parsed.Errors.empty() ? "" : Parsed.Errors.front());
  DiagnosticEngine DE;
  if (Parsed.Prog)
    lintProgram(*Parsed.Prog, DE);
  return DE;
}

TEST(AnalysisFixtures, CyclicDagIsKFP01) {
  DiagnosticEngine DE = lintFixture("cyclic.kfp");
  EXPECT_TRUE(DE.hasCode("KF-P01")) << DE.renderText();
  EXPECT_TRUE(DE.failed());
}

TEST(AnalysisFixtures, UndefinedImageFailsTheParse) {
  // Unknown image names are a parse-level failure even in lenient mode;
  // kfc --analyze maps them to KF-P00.
  std::string Dir = fixtureDir();
  ASSERT_FALSE(Dir.empty());
  ParseResult Parsed =
      parsePipelineFile(Dir + "undefined_image.kfp", /*Verify=*/false);
  EXPECT_EQ(Parsed.Prog, nullptr);
  ASSERT_FALSE(Parsed.Errors.empty());
  EXPECT_NE(Parsed.Errors.front().find("unknown image"), std::string::npos)
      << Parsed.Errors.front();
}

TEST(AnalysisFixtures, EvenMaskIsKFP04) {
  DiagnosticEngine DE = lintFixture("even_mask.kfp");
  EXPECT_TRUE(DE.hasCode("KF-P04")) << DE.renderText();
  EXPECT_TRUE(DE.failed());
}

TEST(AnalysisFixtures, UnusedOutputIsKFP09AndKFP10) {
  DiagnosticEngine DE = lintFixture("unused_output.kfp");
  EXPECT_TRUE(DE.hasCode("KF-P09")) << DE.renderText();
  EXPECT_TRUE(DE.hasCode("KF-P10")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u); // Warnings: fails only under --Werror.
  EXPECT_FALSE(DE.failed());
  EXPECT_TRUE(DE.failed(/*Werror=*/true));
}

TEST(AnalysisFixtures, BorderConflictIsKFP11) {
  DiagnosticEngine DE = lintFixture("border_conflict.kfp");
  EXPECT_TRUE(DE.hasCode("KF-P11")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u);
  EXPECT_TRUE(DE.failed(/*Werror=*/true));
}

TEST(AnalysisFixtures, ShapeMismatchIsKFP06) {
  DiagnosticEngine DE = lintFixture("shape_mismatch.kfp");
  EXPECT_TRUE(DE.hasCode("KF-P06")) << DE.renderText();
  EXPECT_TRUE(DE.failed());
}

} // namespace
