//===- tests/test_support.cpp - Support library tests --------------------------===//

#include "support/CommandLine.h"
#include "support/DotWriter.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kf;

namespace {

TEST(Statistics, BoxStatsOfConstantSample) {
  BoxStats Stats = computeBoxStats({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(Stats.Min, 5.0);
  EXPECT_DOUBLE_EQ(Stats.Max, 5.0);
  EXPECT_DOUBLE_EQ(Stats.Median, 5.0);
  EXPECT_DOUBLE_EQ(Stats.Q25, 5.0);
  EXPECT_DOUBLE_EQ(Stats.Q75, 5.0);
  EXPECT_EQ(Stats.Count, 4u);
}

TEST(Statistics, BoxStatsQuartilesInterpolate) {
  // 1..5: median 3, quartiles 2 and 4 under the R-7 definition.
  BoxStats Stats = computeBoxStats({5.0, 1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(Stats.Median, 3.0);
  EXPECT_DOUBLE_EQ(Stats.Q25, 2.0);
  EXPECT_DOUBLE_EQ(Stats.Q75, 4.0);
  EXPECT_DOUBLE_EQ(Stats.Mean, 3.0);
}

TEST(Statistics, QuantileSingleElement) {
  std::vector<double> One{7.5};
  EXPECT_DOUBLE_EQ(quantileSorted(One, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(quantileSorted(One, 1.0), 7.5);
}

TEST(Statistics, QuantileInterpolatesLinearly) {
  std::vector<double> Sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantileSorted(Sorted, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantileSorted(Sorted, 0.5), 5.0);
}

TEST(Statistics, GeometricMeanMatchesHandValue) {
  // The Table II computation: geomean of per-GPU speedups.
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.145, 1.344, 1.146}),
              std::cbrt(1.145 * 1.344 * 1.146), 1e-12);
}

TEST(Statistics, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0, 6.0}), 3.0);
}

TEST(Random, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, UniformStaysInRange) {
  Rng Gen(7);
  for (int I = 0; I != 1000; ++I) {
    double V = Gen.uniform(2.0, 5.0);
    EXPECT_GE(V, 2.0);
    EXPECT_LT(V, 5.0);
  }
}

TEST(Random, GaussianHasPlausibleMoments) {
  Rng Gen(123);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double V = Gen.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(Random, NextBelowRespectsBound) {
  Rng Gen(5);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(Gen.nextBelow(17), 17u);
}

TEST(StringUtils, SplitAndJoinRoundTrip) {
  std::vector<std::string> Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(joinStrings(Parts, ","), "a,b,,c");
}

TEST(StringUtils, TrimStripsWhitespace) {
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(2.5215, 3), "2.522");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(StringUtils, IntegerLiteralDetection) {
  EXPECT_TRUE(isIntegerLiteral("42"));
  EXPECT_TRUE(isIntegerLiteral("-7"));
  EXPECT_FALSE(isIntegerLiteral("4.2"));
  EXPECT_FALSE(isIntegerLiteral(""));
  EXPECT_FALSE(isIntegerLiteral("-"));
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter Table({"App", "Speedup"});
  Table.addRow({"harris", "1.208"});
  Table.addRow({"unsharp", "2.522"});
  std::string Text = Table.render();
  EXPECT_NE(Text.find("App"), std::string::npos);
  EXPECT_NE(Text.find("2.522"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(Text.find("---"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter Table({"a", "b"});
  Table.addRow({"1", "2"});
  EXPECT_EQ(Table.renderCsv(), "a,b\n1,2\n");
}

TEST(TablePrinter, RowArityMismatchDies) {
  TablePrinter Table({"a", "b"});
  EXPECT_DEATH(Table.addRow({"only-one"}), "arity");
}

TEST(DotWriter, EmitsNodesEdgesClusters) {
  DotWriter Dot("g");
  Dot.addNode("a", "kernel a");
  Dot.addNode("b", "kernel b");
  Dot.addEdge("a", "b", "328");
  Dot.addCluster("block 0", {"a", "b"});
  std::string Text = Dot.finish();
  EXPECT_NE(Text.find("digraph"), std::string::npos);
  EXPECT_NE(Text.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(Text.find("label=\"328\""), std::string::npos);
  EXPECT_NE(Text.find("subgraph cluster_0"), std::string::npos);
}

TEST(CommandLine, ParsesOptionsAndPositionals) {
  const char *Argv[] = {"prog", "--runs", "500", "--gpu=GTX680",
                        "harris", "--verbose"};
  CommandLine Cl(6, Argv, {"verbose"});
  EXPECT_EQ(Cl.getIntOption("runs", 0), 500);
  EXPECT_EQ(Cl.getOption("gpu", ""), "GTX680");
  EXPECT_TRUE(Cl.hasOption("verbose"));
  ASSERT_EQ(Cl.positional().size(), 1u);
  EXPECT_EQ(Cl.positional().front(), "harris");
}

TEST(CommandLine, DefaultsWhenAbsent) {
  const char *Argv[] = {"prog"};
  CommandLine Cl(1, Argv);
  EXPECT_EQ(Cl.getIntOption("runs", 500), 500);
  EXPECT_DOUBLE_EQ(Cl.getDoubleOption("eps", 0.5), 0.5);
  EXPECT_FALSE(Cl.hasOption("runs"));
}

TEST(CommandLine, MalformedIntegerDies) {
  const char *Argv[] = {"prog", "--runs", "abc"};
  CommandLine Cl(3, Argv);
  EXPECT_DEATH(Cl.getIntOption("runs", 0), "expects an integer");
}

TEST(CommandLine, OutOfRangeIntegerDies) {
  const char *Argv[] = {"prog", "--runs", "99999999999999999999"};
  CommandLine Cl(3, Argv);
  EXPECT_DEATH(Cl.getIntOption("runs", 0), "out of range");
}

TEST(CommandLine, OutOfRangeDoubleDies) {
  const char *Argv[] = {"prog", "--scale", "1e999"};
  CommandLine Cl(3, Argv);
  EXPECT_DEATH(Cl.getDoubleOption("scale", 0.0), "out of range");
}

TEST(CommandLine, TrailingGarbageDoubleDies) {
  const char *Argv[] = {"prog", "--scale", "1.5x"};
  CommandLine Cl(3, Argv);
  EXPECT_DEATH(Cl.getDoubleOption("scale", 0.0), "expects a number");
}

TEST(CommandLine, NonFiniteDoubleDies) {
  // strtod parses "nan" and "inf" successfully, but no option consumer
  // (rates, weights, thresholds) can use them; they must be rejected
  // like any other out-of-range value rather than poisoning arithmetic.
  for (const char *Bad : {"nan", "inf", "-inf", "INF", "NaN"}) {
    const char *Argv[] = {"prog", "--scale", Bad};
    CommandLine Cl(3, Argv);
    EXPECT_DEATH(Cl.getDoubleOption("scale", 0.0), "out of range")
        << Bad;
  }
}

TEST(CommandLine, UnderflowDoubleIsAccepted) {
  // Denormal/underflow results are not an error: strtod sets ERANGE but
  // returns a usable (near-zero) value.
  const char *Argv[] = {"prog", "--scale", "1e-999"};
  CommandLine Cl(3, Argv);
  double Value = Cl.getDoubleOption("scale", 1.0);
  EXPECT_GE(Value, 0.0);
  EXPECT_LT(Value, 1e-300);
}

} // namespace
