//===- tests/test_kfp_sync.cpp - Shipped .kfp files stay in sync ----------------===//
//
// The repository ships the six paper applications as .kfp files under
// examples/pipelines/ so users can drive them through kfc. These tests
// guard against drift: every shipped file must parse, and its program
// must serialize identically to the bundled C++ builder's output (i.e.
// same structure, bodies, and constants). If a builder changes,
// regenerate the files by re-serializing (the test failure message says
// which one).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace kf;

namespace {

/// Locates the repository's examples/pipelines directory relative to the
/// test binary's working directory (ctest runs in build/tests).
std::string pipelinesDir() {
  for (const char *Candidate :
       {"examples/pipelines/", "../examples/pipelines/",
        "../../examples/pipelines/", "../../../examples/pipelines/"}) {
    std::ifstream Probe(std::string(Candidate) + "harris.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

class KfpSync : public ::testing::TestWithParam<std::string> {};

TEST_P(KfpSync, ShippedFileMatchesBuilder) {
  std::string Dir = pipelinesDir();
  if (Dir.empty())
    GTEST_SKIP() << "examples/pipelines not found from the test cwd";

  const PipelineSpec *Spec = findPipeline(GetParam());
  ASSERT_NE(Spec, nullptr);

  ParseResult Parsed = parsePipelineFile(Dir + GetParam() + ".kfp");
  ASSERT_TRUE(Parsed.success())
      << GetParam() << ": "
      << (Parsed.Errors.empty() ? "?" : Parsed.Errors.front());

  Program FromBuilder = Spec->build();
  EXPECT_EQ(serializeProgram(*Parsed.Prog), serializeProgram(FromBuilder))
      << GetParam()
      << ".kfp is out of sync with its builder; regenerate it by "
         "re-serializing the builder's program";

  // The shipped file must drive the fusion engine to the same partition.
  HardwareModel HW;
  MinCutFusionResult A = runMinCutFusion(*Parsed.Prog, HW);
  MinCutFusionResult B = runMinCutFusion(FromBuilder, HW);
  EXPECT_TRUE(A.Blocks == B.Blocks) << GetParam();
  EXPECT_DOUBLE_EQ(A.TotalBenefit, B.TotalBenefit) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperApps, KfpSync,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

} // namespace
