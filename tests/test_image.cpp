//===- tests/test_image.cpp - Image substrate tests -----------------------------===//

#include "image/Border.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "image/ImageIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace kf;

namespace {

TEST(Image, ConstructionAndAccess) {
  Image Img(4, 3, 2, 0.5f);
  EXPECT_EQ(Img.width(), 4);
  EXPECT_EQ(Img.height(), 3);
  EXPECT_EQ(Img.channels(), 2);
  EXPECT_EQ(Img.iterationSpace(), 12);
  EXPECT_EQ(Img.sizeInBytes(), 12 * 2 * 4);
  EXPECT_FLOAT_EQ(Img.at(3, 2, 1), 0.5f);
  Img.at(1, 1, 0) = 2.0f;
  EXPECT_FLOAT_EQ(Img.at(1, 1, 0), 2.0f);
}

TEST(Image, SameShape) {
  Image A(4, 4, 1), B(4, 4, 1), C(4, 4, 3);
  EXPECT_TRUE(A.sameShape(B));
  EXPECT_FALSE(A.sameShape(C));
}

TEST(Border, ClampExchange) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Clamp), 0);
  EXPECT_EQ(exchangeIndex(-10, 5, BorderMode::Clamp), 0);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Clamp), 4);
  EXPECT_EQ(exchangeIndex(2, 5, BorderMode::Clamp), 2);
}

TEST(Border, MirrorExchange) {
  // Edge pixel included: -1 -> 0, -2 -> 1, size -> size-1.
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Mirror), 0);
  EXPECT_EQ(exchangeIndex(-2, 5, BorderMode::Mirror), 1);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Mirror), 4);
  EXPECT_EQ(exchangeIndex(6, 5, BorderMode::Mirror), 3);
  // Far out-of-range still lands inside.
  for (int I = -20; I != 20; ++I) {
    int E = exchangeIndex(I, 5, BorderMode::Mirror);
    EXPECT_GE(E, 0);
    EXPECT_LT(E, 5);
  }
}

TEST(Border, RepeatExchange) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Repeat), 4);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Repeat), 0);
  EXPECT_EQ(exchangeIndex(12, 5, BorderMode::Repeat), 2);
  EXPECT_EQ(exchangeIndex(-6, 5, BorderMode::Repeat), 4);
}

TEST(Border, ConstantSignalsSentinel) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Constant), -1);
  EXPECT_EQ(exchangeIndex(2, 5, BorderMode::Constant), 2);
}

TEST(Border, SampleWithBorder) {
  Image Img(3, 3, 1);
  Img.at(0, 0) = 7.0f;
  Img.at(2, 2) = 9.0f;
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, -2, -2, 0, BorderMode::Clamp), 7.0f);
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, 3, 3, 0, BorderMode::Clamp), 9.0f);
  EXPECT_FLOAT_EQ(
      sampleWithBorder(Img, -1, 0, 0, BorderMode::Constant, 5.5f), 5.5f);
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, 1, 1, 0, BorderMode::Constant, 5.5f),
                  0.0f);
}

TEST(Border, ModeNames) {
  EXPECT_STREQ(borderModeName(BorderMode::Clamp), "clamp");
  EXPECT_STREQ(borderModeName(BorderMode::Mirror), "mirror");
  EXPECT_STREQ(borderModeName(BorderMode::Repeat), "repeat");
  EXPECT_STREQ(borderModeName(BorderMode::Constant), "constant");
}

TEST(Generators, RandomImageDeterministicAndInRange) {
  Rng A(42), B(42);
  Image ImgA = makeRandomImage(8, 8, 1, A, 0.25f, 0.75f);
  Image ImgB = makeRandomImage(8, 8, 1, B, 0.25f, 0.75f);
  EXPECT_DOUBLE_EQ(maxAbsDifference(ImgA, ImgB), 0.0);
  for (float V : ImgA.data()) {
    EXPECT_GE(V, 0.25f);
    EXPECT_LT(V, 0.75f);
  }
}

TEST(Generators, Figure4MatrixMatchesPaper) {
  Image M = makeFigure4Matrix();
  EXPECT_EQ(M.width(), 5);
  EXPECT_FLOAT_EQ(M.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(M.at(2, 1), 9.0f);
  EXPECT_FLOAT_EQ(M.at(4, 4), 2.0f);
  EXPECT_FLOAT_EQ(M.at(2, 2), 3.0f);
}

TEST(Generators, CheckerboardAlternates) {
  Image M = makeCheckerboardImage(8, 8, 2, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(M.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(M.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(M.at(2, 2), 0.0f);
}

TEST(Generators, GradientMonotone) {
  Image M = makeGradientImage(8, 8);
  EXPECT_LT(M.at(0, 0), M.at(7, 0));
  EXPECT_LT(M.at(7, 0), M.at(7, 7));
}

TEST(Compare, CountAndMax) {
  Image A(4, 4, 1, 1.0f), B(4, 4, 1, 1.0f);
  B.at(2, 2) = 1.5f;
  B.at(0, 0) = 1.0001f;
  EXPECT_DOUBLE_EQ(maxAbsDifference(A, B), 0.5);
  EXPECT_EQ(countDifferingSamples(A, B, 0.01), 1);
  EXPECT_FALSE(imagesAlmostEqual(A, B, 0.1));
  EXPECT_TRUE(imagesAlmostEqual(A, B, 0.6));
}

TEST(Compare, HaloVsInterior) {
  Image A(6, 6, 1, 0.0f), B(6, 6, 1, 0.0f);
  B.at(0, 0) = 1.0f; // Halo difference.
  B.at(3, 3) = 2.0f; // Interior difference.
  EXPECT_DOUBLE_EQ(maxAbsDifferenceInHalo(A, B, 1), 1.0);
  EXPECT_DOUBLE_EQ(maxAbsDifferenceInInterior(A, B, 1), 2.0);
}

TEST(ImageIO, PgmRoundTrip) {
  Image Src(7, 5, 1);
  for (int Y = 0; Y != 5; ++Y)
    for (int X = 0; X != 7; ++X)
      Src.at(X, Y) = static_cast<float>((X + Y) % 5) / 4.0f;
  std::string Path = ::testing::TempDir() + "kf_roundtrip.pgm";
  ASSERT_TRUE(writePnm(Src, Path));
  std::optional<Image> Back = readPnm(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->sameShape(Src));
  // 8-bit quantization: within 1/255 plus rounding.
  EXPECT_LE(maxAbsDifference(Src, *Back), 0.5 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(ImageIO, PpmRoundTripRgb) {
  Image Src(4, 4, 3);
  for (int Y = 0; Y != 4; ++Y)
    for (int X = 0; X != 4; ++X)
      for (int Ch = 0; Ch != 3; ++Ch)
        Src.at(X, Y, Ch) = static_cast<float>(Ch) / 2.0f;
  std::string Path = ::testing::TempDir() + "kf_roundtrip.ppm";
  ASSERT_TRUE(writePnm(Src, Path));
  std::optional<Image> Back = readPnm(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->channels(), 3);
  EXPECT_LE(maxAbsDifference(Src, *Back), 0.5 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(ImageIO, RejectsMissingFile) {
  EXPECT_FALSE(readPnm("/nonexistent/path.pgm").has_value());
}

TEST(ImageIO, RejectsUnsupportedChannelCount) {
  Image TwoChannel(4, 4, 2);
  EXPECT_FALSE(writePnm(TwoChannel, ::testing::TempDir() + "kf_bad.pnm"));
}

} // namespace
