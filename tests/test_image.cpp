//===- tests/test_image.cpp - Image substrate tests -----------------------------===//

#include "image/Border.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "image/ImageIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace kf;

namespace {

TEST(Image, ConstructionAndAccess) {
  Image Img(4, 3, 2, 0.5f);
  EXPECT_EQ(Img.width(), 4);
  EXPECT_EQ(Img.height(), 3);
  EXPECT_EQ(Img.channels(), 2);
  EXPECT_EQ(Img.iterationSpace(), 12);
  EXPECT_EQ(Img.sizeInBytes(), 12 * 2 * 4);
  EXPECT_FLOAT_EQ(Img.at(3, 2, 1), 0.5f);
  Img.at(1, 1, 0) = 2.0f;
  EXPECT_FLOAT_EQ(Img.at(1, 1, 0), 2.0f);
}

TEST(Image, SameShape) {
  Image A(4, 4, 1), B(4, 4, 1), C(4, 4, 3);
  EXPECT_TRUE(A.sameShape(B));
  EXPECT_FALSE(A.sameShape(C));
}

TEST(Border, ClampExchange) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Clamp), 0);
  EXPECT_EQ(exchangeIndex(-10, 5, BorderMode::Clamp), 0);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Clamp), 4);
  EXPECT_EQ(exchangeIndex(2, 5, BorderMode::Clamp), 2);
}

TEST(Border, MirrorExchange) {
  // Edge pixel included: -1 -> 0, -2 -> 1, size -> size-1.
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Mirror), 0);
  EXPECT_EQ(exchangeIndex(-2, 5, BorderMode::Mirror), 1);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Mirror), 4);
  EXPECT_EQ(exchangeIndex(6, 5, BorderMode::Mirror), 3);
  // Far out-of-range still lands inside.
  for (int I = -20; I != 20; ++I) {
    int E = exchangeIndex(I, 5, BorderMode::Mirror);
    EXPECT_GE(E, 0);
    EXPECT_LT(E, 5);
  }
}

TEST(Border, RepeatExchange) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Repeat), 4);
  EXPECT_EQ(exchangeIndex(5, 5, BorderMode::Repeat), 0);
  EXPECT_EQ(exchangeIndex(12, 5, BorderMode::Repeat), 2);
  EXPECT_EQ(exchangeIndex(-6, 5, BorderMode::Repeat), 4);
}

TEST(Border, ConstantSignalsSentinel) {
  EXPECT_EQ(exchangeIndex(-1, 5, BorderMode::Constant), -1);
  EXPECT_EQ(exchangeIndex(2, 5, BorderMode::Constant), 2);
}

TEST(Border, SampleWithBorder) {
  Image Img(3, 3, 1);
  Img.at(0, 0) = 7.0f;
  Img.at(2, 2) = 9.0f;
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, -2, -2, 0, BorderMode::Clamp), 7.0f);
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, 3, 3, 0, BorderMode::Clamp), 9.0f);
  EXPECT_FLOAT_EQ(
      sampleWithBorder(Img, -1, 0, 0, BorderMode::Constant, 5.5f), 5.5f);
  EXPECT_FLOAT_EQ(sampleWithBorder(Img, 1, 1, 0, BorderMode::Constant, 5.5f),
                  0.0f);
}

TEST(Border, ModeNames) {
  EXPECT_STREQ(borderModeName(BorderMode::Clamp), "clamp");
  EXPECT_STREQ(borderModeName(BorderMode::Mirror), "mirror");
  EXPECT_STREQ(borderModeName(BorderMode::Repeat), "repeat");
  EXPECT_STREQ(borderModeName(BorderMode::Constant), "constant");
}

TEST(Generators, RandomImageDeterministicAndInRange) {
  Rng A(42), B(42);
  Image ImgA = makeRandomImage(8, 8, 1, A, 0.25f, 0.75f);
  Image ImgB = makeRandomImage(8, 8, 1, B, 0.25f, 0.75f);
  EXPECT_DOUBLE_EQ(maxAbsDifference(ImgA, ImgB), 0.0);
  for (float V : ImgA.data()) {
    EXPECT_GE(V, 0.25f);
    EXPECT_LT(V, 0.75f);
  }
}

TEST(Generators, Figure4MatrixMatchesPaper) {
  Image M = makeFigure4Matrix();
  EXPECT_EQ(M.width(), 5);
  EXPECT_FLOAT_EQ(M.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(M.at(2, 1), 9.0f);
  EXPECT_FLOAT_EQ(M.at(4, 4), 2.0f);
  EXPECT_FLOAT_EQ(M.at(2, 2), 3.0f);
}

TEST(Generators, CheckerboardAlternates) {
  Image M = makeCheckerboardImage(8, 8, 2, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(M.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(M.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(M.at(2, 2), 0.0f);
}

TEST(Generators, GradientMonotone) {
  Image M = makeGradientImage(8, 8);
  EXPECT_LT(M.at(0, 0), M.at(7, 0));
  EXPECT_LT(M.at(7, 0), M.at(7, 7));
}

TEST(Compare, CountAndMax) {
  Image A(4, 4, 1, 1.0f), B(4, 4, 1, 1.0f);
  B.at(2, 2) = 1.5f;
  B.at(0, 0) = 1.0001f;
  EXPECT_DOUBLE_EQ(maxAbsDifference(A, B), 0.5);
  EXPECT_EQ(countDifferingSamples(A, B, 0.01), 1);
  EXPECT_FALSE(imagesAlmostEqual(A, B, 0.1));
  EXPECT_TRUE(imagesAlmostEqual(A, B, 0.6));
}

TEST(Compare, HaloVsInterior) {
  Image A(6, 6, 1, 0.0f), B(6, 6, 1, 0.0f);
  B.at(0, 0) = 1.0f; // Halo difference.
  B.at(3, 3) = 2.0f; // Interior difference.
  EXPECT_DOUBLE_EQ(maxAbsDifferenceInHalo(A, B, 1), 1.0);
  EXPECT_DOUBLE_EQ(maxAbsDifferenceInInterior(A, B, 1), 2.0);
}

TEST(ImageIO, PgmRoundTrip) {
  Image Src(7, 5, 1);
  for (int Y = 0; Y != 5; ++Y)
    for (int X = 0; X != 7; ++X)
      Src.at(X, Y) = static_cast<float>((X + Y) % 5) / 4.0f;
  std::string Path = ::testing::TempDir() + "kf_roundtrip.pgm";
  ASSERT_TRUE(writePnm(Src, Path));
  std::optional<Image> Back = readPnm(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->sameShape(Src));
  // 8-bit quantization: within 1/255 plus rounding.
  EXPECT_LE(maxAbsDifference(Src, *Back), 0.5 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(ImageIO, PpmRoundTripRgb) {
  Image Src(4, 4, 3);
  for (int Y = 0; Y != 4; ++Y)
    for (int X = 0; X != 4; ++X)
      for (int Ch = 0; Ch != 3; ++Ch)
        Src.at(X, Y, Ch) = static_cast<float>(Ch) / 2.0f;
  std::string Path = ::testing::TempDir() + "kf_roundtrip.ppm";
  ASSERT_TRUE(writePnm(Src, Path));
  std::optional<Image> Back = readPnm(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->channels(), 3);
  EXPECT_LE(maxAbsDifference(Src, *Back), 0.5 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(ImageIO, RejectsMissingFile) {
  EXPECT_FALSE(readPnm("/nonexistent/path.pgm").has_value());
}

TEST(ImageIO, RejectsUnsupportedChannelCount) {
  Image TwoChannel(4, 4, 2);
  EXPECT_FALSE(writePnm(TwoChannel, ::testing::TempDir() + "kf_bad.pnm"));
}

/// Writes raw bytes to a temp file and returns its path.
static std::string writeRawPnm(const std::string &Name,
                               const std::string &Bytes) {
  std::string Path = ::testing::TempDir() + Name;
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  EXPECT_NE(File, nullptr);
  std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  return Path;
}

TEST(ImageIO, ScalesByDeclaredMaxval) {
  // A maxval-15 PGM: sample 15 must read back as 1.0, sample 3 as 3/15.
  std::string Path = writeRawPnm(
      "kf_maxval15.pgm", std::string("P5\n2 1\n15\n") + '\x0f' + '\x03');
  std::optional<Image> Img = readPnm(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(Img.has_value());
  EXPECT_EQ(Img->width(), 2);
  EXPECT_EQ(Img->height(), 1);
  EXPECT_FLOAT_EQ(Img->at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(Img->at(1, 0), 3.0f / 15.0f);
}

TEST(ImageIO, MaxvalOneIsBinary) {
  std::string Path = writeRawPnm(
      "kf_maxval1.pgm", std::string("P5\n2 1\n1\n") + '\x01' + '\x00');
  std::optional<Image> Img = readPnm(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(Img.has_value());
  EXPECT_FLOAT_EQ(Img->at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(Img->at(1, 0), 0.0f);
}

TEST(ImageIO, RejectsMalformedHeaders) {
  const char Pixel = '\x00';
  struct Case {
    const char *Name;
    std::string Header;
  } Cases[] = {
      {"kf_badw.pgm", "P5\n4x 1\n255\n"},       // trailing garbage in width
      {"kf_negw.pgm", "P5\n-2 1\n255\n"},       // negative width
      {"kf_zerow.pgm", "P5\n0 1\n255\n"},       // zero width
      {"kf_hugew.pgm",                          // width overflows long
       "P5\n99999999999999999999 1\n255\n"},
      {"kf_max0.pgm", "P5\n1 1\n0\n"},          // maxval 0
      {"kf_max256.pgm", "P5\n1 1\n256\n"},      // 16-bit maxval unsupported
      {"kf_maxg.pgm", "P5\n1 1\n255x\n"},       // trailing garbage in maxval
      {"kf_negmax.pgm", "P5\n1 1\n-255\n"},     // negative maxval
  };
  for (const Case &C : Cases) {
    std::string Path = writeRawPnm(C.Name, C.Header + Pixel);
    EXPECT_FALSE(readPnm(Path).has_value()) << C.Name;
    std::remove(Path.c_str());
  }
}

} // namespace
