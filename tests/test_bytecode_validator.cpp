//===- tests/test_bytecode_validator.cpp - Mutation-based validation ------------===//
//
// Takes every registry pipeline's compiled fused bytecode, applies
// systematic single-field corruptions (bad register index, truncated
// instruction stream, negative input slot, invalid stage-call targets,
// frame overruns), and asserts the validator rejects each with the right
// code while every pristine program verifies clean.
//
//===----------------------------------------------------------------------===//

#include "analysis/BytecodeValidator.h"
#include "fusion/MinCutPartitioner.h"
#include "jit/JitProgram.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

using namespace kf;

namespace {

struct CompiledPipeline {
  Program P;
  FusedProgram FP;
  std::vector<ImageInfo> Shapes;
  std::vector<StagedVmProgram> Programs; // One per fused kernel.
  std::vector<uint16_t> Roots;
};

CompiledPipeline compileSpec(const PipelineSpec &Spec) {
  CompiledPipeline C{Spec.Builder(64, 48), {}, {}, {}, {}};
  C.FP = fuseProgram(C.P, runMinCutFusion(C.P, HardwareModel()).Blocks,
                     FusionStyle::Optimized);
  for (ImageId Id = 0; Id != C.P.numImages(); ++Id)
    C.Shapes.push_back(C.P.image(Id));
  for (const FusedKernel &FK : C.FP.Kernels) {
    C.Programs.push_back(compileFusedKernel(C.FP, FK));
    C.Roots.push_back(
        static_cast<uint16_t>(C.Programs.back().Stages.size() - 1));
  }
  return C;
}

/// Validates one staged program into a fresh engine.
DiagnosticEngine validate(const StagedVmProgram &SP, uint16_t Root,
                          const std::vector<ImageInfo> &Shapes) {
  DiagnosticEngine DE;
  validateStagedProgram(SP, Root, Shapes, DE);
  return DE;
}

/// One corruption: mutates a pristine copy and names the code that must
/// fire.
struct Corruption {
  const char *Name;
  const char *ExpectedCode;
  /// Applies the mutation; returns false when the program has no site for
  /// it (e.g. no multi-stage kernel for a StageCall corruption).
  std::function<bool(StagedVmProgram &)> Apply;
};

VmInst *findInst(StagedVmProgram &SP, VmOp Op) {
  for (VmStage &Stage : SP.Stages)
    for (VmInst &Inst : Stage.Code.Insts)
      if (Inst.Op == Op)
        return &Inst;
  return nullptr;
}

const std::vector<Corruption> &corruptions() {
  static const std::vector<Corruption> Cases = {
      {"destination register out of frame", "KF-B02",
       [](StagedVmProgram &SP) {
         VmStage &Stage = SP.Stages.front();
         Stage.Code.Insts.front().Dst = Stage.Code.NumRegs;
         return true;
       }},
      {"operand register wildly out of range", "KF-B02",
       [](StagedVmProgram &SP) {
         VmInst *Inst = findInst(SP, VmOp::Add);
         if (!Inst)
           Inst = findInst(SP, VmOp::Mul);
         if (!Inst)
           return false;
         Inst->A = 0xFFFF;
         return true;
       }},
      {"result register never written (truncated stream)", "KF-B03",
       [](StagedVmProgram &SP) {
         // Truncate the tail until no remaining instruction writes the
         // stage result; an empty stream would trip KF-B01 instead, so
         // that case counts as no mutation site.
         VmStage &Stage = SP.Stages.back();
         auto writesResult = [&] {
           for (const VmInst &Inst : Stage.Code.Insts)
             if (Inst.Dst == Stage.Code.ResultReg)
               return true;
           return false;
         };
         if (!writesResult())
           return false;
         while (!Stage.Code.Insts.empty() && writesResult())
           Stage.Code.Insts.pop_back();
         return !Stage.Code.Insts.empty();
       }},
      {"negative load input slot", "KF-B04",
       [](StagedVmProgram &SP) {
         VmInst *Load = findInst(SP, VmOp::Load);
         if (!Load)
           return false;
         Load->InputIdx = -3;
         return true;
       }},
      {"load channel out of range", "KF-B04",
       [](StagedVmProgram &SP) {
         VmInst *Load = findInst(SP, VmOp::Load);
         if (!Load)
           return false;
         Load->Channel = 99;
         return true;
       }},
      {"stage call targets itself", "KF-B05",
       [](StagedVmProgram &SP) {
         for (size_t S = 0; S != SP.Stages.size(); ++S)
           for (VmInst &Inst : SP.Stages[S].Code.Insts)
             if (Inst.Op == VmOp::StageCall) {
               Inst.Sel = static_cast<uint16_t>(S);
               return true;
             }
         return false;
       }},
      {"stage call targets a missing stage", "KF-B05",
       [](StagedVmProgram &SP) {
         VmInst *Call = findInst(SP, VmOp::StageCall);
         if (!Call)
           return false;
         Call->Sel = static_cast<uint16_t>(SP.Stages.size());
         return true;
       }},
      {"register frame overruns the scratch block", "KF-B07",
       [](StagedVmProgram &SP) {
         SP.Stages.back().RegBase = SP.NumRegs + 1;
         return true;
       }},
      {"stage frames overlap", "KF-B11",
       [](StagedVmProgram &SP) {
         // Slide stage 1's frame onto stage 0's: both still fit the
         // shared scratch (KF-B07 stays quiet) but are no longer
         // pairwise disjoint, the layout span mode depends on.
         if (SP.Stages.size() < 2)
           return false;
         SP.Stages[1].RegBase = SP.Stages[0].RegBase;
         return true;
       }},
      {"reach table truncated", "KF-B08",
       [](StagedVmProgram &SP) {
         if (SP.Reach.empty())
           return false;
         SP.Reach.pop_back();
         return true;
       }},
  };
  return Cases;
}

TEST(BytecodeValidator, PristineRegistryProgramsPass) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    CompiledPipeline C = compileSpec(Spec);
    for (size_t K = 0; K != C.Programs.size(); ++K) {
      DiagnosticEngine DE = validate(C.Programs[K], C.Roots[K], C.Shapes);
      EXPECT_TRUE(DE.empty()) << Spec.Name << " " << C.FP.Kernels[K].Name
                              << ":\n"
                              << DE.renderText();
    }
  }
}

TEST(BytecodeValidator, EveryCorruptionIsRejected) {
  // Each corruption must fire on at least one registry program, and on
  // every program it applies to it must produce its code.
  std::map<std::string, int> Fired;
  for (const PipelineSpec &Spec : paperPipelines()) {
    CompiledPipeline C = compileSpec(Spec);
    for (size_t K = 0; K != C.Programs.size(); ++K) {
      for (const Corruption &Bad : corruptions()) {
        StagedVmProgram Mutant = C.Programs[K]; // Pristine copy.
        if (!Bad.Apply(Mutant))
          continue;
        DiagnosticEngine DE = validate(Mutant, C.Roots[K], C.Shapes);
        EXPECT_TRUE(DE.hasCode(Bad.ExpectedCode))
            << Spec.Name << " " << C.FP.Kernels[K].Name << ": " << Bad.Name
            << " produced\n"
            << DE.renderText();
        // The validator is the JIT codegen's contract: every corrupted
        // program the validator rejects must be refused before cell
        // selection, never compiled (let alone crash).
        EXPECT_EQ(compileJitProgram(Mutant, C.Roots[K], C.Shapes), nullptr)
            << Spec.Name << " " << C.FP.Kernels[K].Name << ": " << Bad.Name
            << " was JIT-compiled despite failing validation";
        ++Fired[Bad.Name];
      }
    }
  }
  for (const Corruption &Bad : corruptions())
    EXPECT_GT(Fired[Bad.Name], 0)
        << "corruption '" << Bad.Name << "' never found a mutation site";
}

TEST(BytecodeValidator, RootOutOfRangeIsKFB05) {
  CompiledPipeline C = compileSpec(paperPipelines().front());
  const StagedVmProgram &SP = C.Programs.front();
  DiagnosticEngine DE =
      validate(SP, static_cast<uint16_t>(SP.Stages.size()), C.Shapes);
  EXPECT_TRUE(DE.hasCode("KF-B05")) << DE.renderText();
}

TEST(BytecodeValidator, EmptyProgramIsKFB01) {
  StagedVmProgram SP;
  DiagnosticEngine DE;
  validateStagedProgram(SP, 0, {}, DE);
  EXPECT_TRUE(DE.hasCode("KF-B01"));
}

TEST(BytecodeValidator, PlainProgramStageCallIsKFB06) {
  VmProgram VM;
  VM.NumRegs = 2;
  VmInst Call;
  Call.Op = VmOp::StageCall;
  Call.Dst = 0;
  Call.Sel = 0;
  VM.Insts.push_back(Call);
  VM.ResultReg = 0;
  DiagnosticEngine DE;
  validateVmProgram(VM, /*NumInputs=*/1, DE);
  EXPECT_TRUE(DE.hasCode("KF-B06")) << DE.renderText();
}

TEST(BytecodeValidator, PlainKernelBodiesPass) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
      VmProgram VM = compileKernelBody(P, Id);
      DiagnosticEngine DE;
      validateVmProgram(VM, P.kernel(Id).Inputs.size(), DE);
      EXPECT_TRUE(DE.empty()) << Spec.Name << " " << P.kernel(Id).Name
                              << ":\n"
                              << DE.renderText();
    }
  }
}

} // namespace
