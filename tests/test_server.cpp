//===- tests/test_server.cpp - Multi-tenant server differential harness ---===//
//
// The serving layer on top of the serving layer: a PipelineServer
// multiplexes N tenant sessions over one shared ThreadPool and one shared
// PlanCache, and none of that sharing may be visible in the pixels. The
// differential harness here runs mixed registry pipelines concurrently
// and demands bit-identical outputs versus each pipeline run serially on
// a private session, across thread counts and VM modes. Around it sit
// deterministic unit tests for the stride arbiter, the tagged thread
// pool, the bounded-queue backpressure policies, the fair (weighted,
// starvation-free) dispatch order, and the cross-tenant plan-cache
// accounting.
//
//===----------------------------------------------------------------------===//

#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Server.h"
#include "support/Stride.h"
#include "support/ThreadPool.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

using namespace kf;

namespace {

/// Deterministically fills every external input of \p P in \p Pool.
void fillInputs(const Program &P, std::vector<Image> &Pool, uint64_t Seed) {
  Rng Gen(Seed);
  for (ImageId Id : P.externalInputs()) {
    const ImageInfo &Info = P.image(Id);
    Pool[Id] = makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen,
                               0.05f, 1.0f);
  }
}

/// Worker-thread counts the differential harness sweeps: serial, a small
/// oversubscribed pool, and the hardware concurrency when distinct.
std::vector<int> threadSweep() {
  std::vector<int> Counts = {1, 3};
  int Hw = static_cast<int>(std::thread::hardware_concurrency());
  if (Hw > 1 && Hw != 3)
    Counts.push_back(Hw);
  return Counts;
}

/// A registry pipeline lowered to its fused form. The Program is heap
/// allocated because FusedProgram::Source points at it: the pair must
/// stay valid while any tenant session runs it.
struct BuiltPipeline {
  std::unique_ptr<Program> P;
  FusedProgram FP;
};

BuiltPipeline buildPipeline(const std::string &Name, int W, int H) {
  const PipelineSpec *Spec = findPipeline(Name);
  EXPECT_NE(Spec, nullptr) << Name;
  BuiltPipeline Built;
  Built.P = std::make_unique<Program>(Spec->Builder(W, H));
  MinCutFusionResult MinCut = runMinCutFusion(*Built.P, HardwareModel());
  Built.FP = fuseProgram(*Built.P, MinCut.Blocks, FusionStyle::Optimized);
  return Built;
}

/// Per-(tenant, frame) input seed, identical for the server run and the
/// serial reference run.
uint64_t frameSeed(size_t Tenant, int Frame) {
  return 0x7e57 + Tenant * 1009 + static_cast<uint64_t>(Frame);
}

//===--------------------------------------------------------------------===//
// StrideScheduler
//===--------------------------------------------------------------------===//

TEST(StrideScheduler, EqualWeightsAlternate) {
  StrideScheduler S;
  unsigned A = S.addSource(1);
  unsigned B = S.addSource(1);
  std::vector<unsigned> Candidates = {A, B};
  std::string Order;
  for (int I = 0; I != 8; ++I) {
    int Picked = S.pick(Candidates);
    Order += Picked == static_cast<int>(A) ? 'A' : 'B';
    S.charge(static_cast<unsigned>(Picked));
  }
  EXPECT_EQ(Order, "ABABABAB");
}

TEST(StrideScheduler, WeightsYieldProportionalService) {
  StrideScheduler S;
  unsigned A = S.addSource(3);
  unsigned B = S.addSource(1);
  std::vector<unsigned> Candidates = {A, B};
  int CountA = 0, CountB = 0;
  for (int I = 0; I != 400; ++I) {
    int Picked = S.pick(Candidates);
    (Picked == static_cast<int>(A) ? CountA : CountB)++;
    S.charge(static_cast<unsigned>(Picked));
  }
  // 3:1 service over any sufficiently long window.
  EXPECT_EQ(CountA, 300);
  EXPECT_EQ(CountB, 100);
}

TEST(StrideScheduler, TiesBreakToLowestId) {
  StrideScheduler S;
  S.addSource(1);
  S.addSource(1);
  S.addSource(1);
  EXPECT_EQ(S.pick({2, 1, 0}), 0);
  S.charge(0);
  EXPECT_EQ(S.pick({2, 1, 0}), 1);
}

TEST(StrideScheduler, ActivateClampsToCompetitorsMinPass) {
  StrideScheduler S;
  unsigned A = S.addSource(1);
  unsigned B = S.addSource(1);
  // A races alone for a while; B then joins at parity, not at pass 0.
  for (int I = 0; I != 5; ++I)
    S.charge(A);
  S.activate(B, {A});
  EXPECT_EQ(S.pass(B), S.pass(A));
  // A long-idle source never moves BACKWARD either.
  S.charge(B);
  S.activate(B, {A});
  EXPECT_GT(S.pass(B), S.pass(A));
}

TEST(StrideScheduler, SetWeightTakesEffectOnNextCharge) {
  StrideScheduler S;
  unsigned A = S.addSource(1);
  S.charge(A);
  uint64_t Full = S.pass(A);
  S.setWeight(A, 4);
  S.charge(A);
  EXPECT_EQ(S.pass(A) - Full, StrideScheduler::StrideOne / 4);
  // Weight 0 is clamped, never a division by zero.
  S.setWeight(A, 0);
  EXPECT_EQ(S.weight(A), 1u);
}

TEST(StrideScheduler, OversizedWeightIsClampedNotMonopolizing) {
  // A weight above StrideOne used to truncate the stride (StrideOne /
  // weight) to zero: the source's pass never advanced, so it won every
  // min-pass pick forever and starved the other tenants. normalize()
  // now clamps weights to [1, StrideOne]; the heaviest legal weight
  // still pays one pass unit per charge, so service interleaves.
  StrideScheduler S;
  unsigned A = S.addSource(StrideScheduler::StrideOne * 4);
  unsigned B = S.addSource(1);
  EXPECT_EQ(S.weight(A), StrideScheduler::StrideOne);
  std::vector<unsigned> Candidates = {A, B};
  std::string Order;
  for (int I = 0; I != 8; ++I) {
    int Picked = S.pick(Candidates);
    Order += Picked == static_cast<int>(A) ? 'A' : 'B';
    S.charge(static_cast<unsigned>(Picked));
  }
  // A's stride is 1 pass unit, B's is StrideOne: A runs ahead within the
  // first of B's pass units but must yield to B exactly once per
  // StrideOne units -- the exact sequence pins down that A's pass
  // advances at all (the bug froze it at 0 and produced "AAAAAAAA").
  EXPECT_EQ(Order, "ABAAAAAA");
  EXPECT_GT(S.pass(A), 0u);
}

TEST(StrideScheduler, ReWeightClampsPassAgainstRunnableCompetitors) {
  // Downgrading a tenant's weight mid-run used to leave its pass far
  // behind the competitors it had been beating at high weight: the
  // next picks would hand it a monopoly until the pass caught up. The
  // Runnable-aware setWeight overload re-clamps like activate().
  StrideScheduler S;
  unsigned A = S.addSource(1000);
  unsigned B = S.addSource(1);
  std::vector<unsigned> Candidates = {A, B};
  // A's high weight lets it accumulate service while B advances slowly.
  for (int I = 0; I != 50; ++I) {
    int Picked = S.pick(Candidates);
    S.charge(static_cast<unsigned>(Picked));
  }
  ASSERT_LT(S.pass(A), S.pass(B));
  // Demote A to parity, clamping against the runnable set: A resumes at
  // B's pass instead of replaying its backlog.
  S.setWeight(A, 1, {B});
  EXPECT_EQ(S.pass(A), S.pass(B));
  std::string Order;
  for (int I = 0; I != 8; ++I) {
    int Picked = S.pick(Candidates);
    Order += Picked == static_cast<int>(A) ? 'A' : 'B';
    S.charge(static_cast<unsigned>(Picked));
  }
  EXPECT_EQ(Order, "ABABABAB");
}

TEST(StrideScheduler, EmptyCandidatesPickNone) {
  StrideScheduler S;
  S.addSource(1);
  EXPECT_EQ(S.pick({}), -1);
}

//===--------------------------------------------------------------------===//
// Tagged ThreadPool
//===--------------------------------------------------------------------===//

TEST(ThreadPoolSources, RegisterAssignsDenseIdsAboveDefault) {
  ThreadPool Pool(2);
  unsigned A = Pool.registerSource("a", 2);
  unsigned B = Pool.registerSource("b");
  EXPECT_EQ(A, 1u);
  EXPECT_EQ(B, 2u);
  ThreadPoolStats Stats = Pool.stats();
  ASSERT_EQ(Stats.SourceNames.size(), 3u);
  EXPECT_EQ(Stats.SourceNames[0], "default");
  EXPECT_EQ(Stats.SourceNames[1], "a");
  EXPECT_EQ(Stats.SourceNames[2], "b");
}

TEST(ThreadPoolSources, TilesAreChargedPerSource) {
  ThreadPool Pool(2);
  unsigned A = Pool.registerSource("a");
  auto Nop = [](const TileRange &, unsigned) {};
  Pool.parallelFor2D(16, 16, 8, 8, Nop, A); // 4 tiles on source a.
  Pool.parallelFor2D(16, 8, 8, 8, Nop);     // 2 tiles on the default.
  ThreadPoolStats Stats = Pool.stats();
  ASSERT_EQ(Stats.TilesPerSource.size(), 2u);
  EXPECT_EQ(Stats.TilesPerSource[0], 2u);
  EXPECT_EQ(Stats.TilesPerSource[1], 4u);
  EXPECT_EQ(Stats.Tiles, 6u);
}

TEST(ThreadPoolSources, UnregisteredSourceFallsBackToDefault) {
  ThreadPool Pool(2);
  Pool.parallelFor2D(8, 8, 8, 8, [](const TileRange &, unsigned) {}, 77);
  ThreadPoolStats Stats = Pool.stats();
  ASSERT_EQ(Stats.TilesPerSource.size(), 1u);
  EXPECT_EQ(Stats.TilesPerSource[0], 1u);
}

TEST(ThreadPoolSources, ConcurrentLaunchesShareWorkersCorrectly) {
  // Two caller threads launch onto ONE pool concurrently, each writing a
  // distinct function of (x, y) into its own buffer. Every pixel must be
  // written exactly once with the right value no matter how the stride
  // arbiter interleaves the tile claims. Runs under -DKF_SANITIZE=thread
  // via the sanitize-smoke label.
  constexpr int W = 64, H = 48;
  ThreadPool Pool(3);
  unsigned SrcA = Pool.registerSource("a");
  unsigned SrcB = Pool.registerSource("b", 2);
  std::vector<int> BufA(W * H, -1), BufB(W * H, -1);
  auto Launch = [&](std::vector<int> &Buf, int Scale, unsigned Source) {
    Pool.parallelFor2D(W, H, 8, 8,
                       [&](const TileRange &Tile, unsigned) {
                         for (int Y = Tile.Y0; Y != Tile.Y1; ++Y)
                           for (int X = Tile.X0; X != Tile.X1; ++X)
                             Buf[Y * W + X] = Scale * (Y * W + X);
                       },
                       Source);
  };
  for (int Round = 0; Round != 4; ++Round) {
    std::thread TA([&] { Launch(BufA, 3, SrcA); });
    std::thread TB([&] { Launch(BufB, 5, SrcB); });
    TA.join();
    TB.join();
    for (int I = 0; I != W * H; ++I) {
      ASSERT_EQ(BufA[I], 3 * I);
      ASSERT_EQ(BufB[I], 5 * I);
    }
  }
  ThreadPoolStats Stats = Pool.stats();
  constexpr uint64_t TilesPerLaunch = (W / 8) * (H / 8);
  EXPECT_EQ(Stats.TilesPerSource[SrcA], 4 * TilesPerLaunch);
  EXPECT_EQ(Stats.TilesPerSource[SrcB], 4 * TilesPerLaunch);
  uint64_t PerWorker = 0;
  for (uint64_t T : Stats.TilesPerWorker)
    PerWorker += T;
  EXPECT_EQ(PerWorker, Stats.Tiles);
}

//===--------------------------------------------------------------------===//
// Differential correctness: concurrent tenants == serial sessions
//===--------------------------------------------------------------------===//

/// Runs \p Pipelines as concurrent server tenants (dispatcher threads,
/// shared pool and plan cache) and as serial private sessions with the
/// same per-frame input seeds, then demands bit-identical outputs.
void expectServerMatchesSerial(const std::vector<std::string> &Names,
                               int Threads, VmMode Mode, int FramesEach) {
  std::vector<BuiltPipeline> Pipelines;
  for (const std::string &Name : Names)
    Pipelines.push_back(buildPipeline(Name, 48, 40));

  ExecutionOptions Options;
  Options.Threads = Threads;
  Options.Mode = Mode;

  // Captured outputs: [tenant][frame][image id]. Slots are pre-sized so
  // consumers (dispatcher threads) write disjoint cells; one tenant's
  // frames are serialized by the scheduler's busy flag.
  std::vector<std::vector<std::vector<Image>>> Served(Names.size());
  for (auto &Frames : Served)
    Frames.resize(FramesEach);

  {
    ServerOptions SO;
    SO.Threads = Threads;
    SO.Dispatchers = 2;
    PipelineServer Server(SO);
    std::vector<PipelineServer::SessionId> Ids;
    for (size_t T = 0; T != Pipelines.size(); ++T) {
      TenantOptions TO;
      TO.Name = Names[T] + "-" + std::to_string(T);
      TO.QueueCapacity = 2; // Small: exercises Block backpressure too.
      Ids.push_back(Server.open(Pipelines[T].FP, Options, TO));
    }
    for (int Frame = 0; Frame != FramesEach; ++Frame)
      for (size_t T = 0; T != Ids.size(); ++T) {
        const Program &P = *Pipelines[T].P;
        std::vector<Image> *Slot = &Served[T][Frame];
        bool Ok = Server.submit(
            Ids[T],
            [&P, T](int Index, std::vector<Image> &Pool) {
              fillInputs(P, Pool, frameSeed(T, Index));
            },
            [Slot, &P](int, const std::vector<Image> &Pool) {
              for (ImageId Out : P.terminalOutputs())
                Slot->push_back(Pool[Out]);
            });
        ASSERT_TRUE(Ok);
      }
    Server.drainAll();
    for (size_t T = 0; T != Ids.size(); ++T) {
      TenantStats Stats = Server.tenantStats(Ids[T]);
      EXPECT_EQ(Stats.Completed, static_cast<uint64_t>(FramesEach));
      EXPECT_EQ(Stats.Rejected, 0u);
      EXPECT_EQ(Stats.LatenciesMs.size(),
                static_cast<size_t>(FramesEach));
    }
  }

  // Serial references: each pipeline on its own session, pool and cache.
  for (size_t T = 0; T != Pipelines.size(); ++T) {
    const Program &P = *Pipelines[T].P;
    PlanCache Cache;
    PipelineSession Session(Pipelines[T].FP, Options, &Cache);
    for (int Frame = 0; Frame != FramesEach; ++Frame) {
      std::vector<Image> Ref = Session.acquireFrame();
      fillInputs(P, Ref, frameSeed(T, Frame));
      Session.runFrame(Ref);
      size_t Slot = 0;
      for (ImageId Out : P.terminalOutputs()) {
        ASSERT_LT(Slot, Served[T][Frame].size());
        EXPECT_DOUBLE_EQ(
            maxAbsDifference(Ref[Out], Served[T][Frame][Slot]), 0.0)
            << Names[T] << " frame " << Frame << " threads " << Threads;
        ++Slot;
      }
      Session.releaseFrame(std::move(Ref));
    }
  }
}

class ServerDifferential : public ::testing::TestWithParam<VmMode> {};

TEST_P(ServerDifferential, MixedTenantsMatchSerialAcrossThreads) {
  const std::vector<std::string> Names = {"harris", "sobel", "unsharp",
                                          "night"};
  for (int Threads : threadSweep())
    expectServerMatchesSerial(Names, Threads, GetParam(), 3);
}

INSTANTIATE_TEST_SUITE_P(VmModes, ServerDifferential,
                         ::testing::Values(VmMode::Scalar, VmMode::Span),
                         [](const auto &Info) {
                           return Info.param == VmMode::Scalar ? "scalar"
                                                               : "span";
                         });

//===--------------------------------------------------------------------===//
// Backpressure
//===--------------------------------------------------------------------===//

TEST(ServerBackpressure, RejectPolicyIsDeterministic) {
  BuiltPipeline Built = buildPipeline("sobel", 32, 28);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 0; // Inline dispatch: queue state is fully controlled.
  PipelineServer Server(SO);
  TenantOptions TO;
  TO.QueueCapacity = 2;
  TO.Policy = BackpressurePolicy::Reject;
  PipelineServer::SessionId Id = Server.open(Built.FP, ExecutionOptions(), TO);

  const Program &P = *Built.P;
  auto Fill = [&P](int Index, std::vector<Image> &Pool) {
    fillInputs(P, Pool, static_cast<uint64_t>(Index));
  };
  EXPECT_TRUE(Server.submit(Id, Fill));
  EXPECT_TRUE(Server.submit(Id, Fill));
  EXPECT_FALSE(Server.submit(Id, Fill)); // Queue full: rejected.
  EXPECT_EQ(Server.tenantStats(Id).Rejected, 1u);

  EXPECT_EQ(Server.runPending(1), 1u); // One slot frees...
  EXPECT_TRUE(Server.submit(Id, Fill)); // ...and the retry is admitted.
  EXPECT_EQ(Server.runPending(), 2u);

  TenantStats Stats = Server.tenantStats(Id);
  EXPECT_EQ(Stats.Submitted, 3u);
  EXPECT_EQ(Stats.Completed, 3u);
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.MaxQueueDepth, 2u);
}

TEST(ServerBackpressure, BlockPolicyAdmitsEverythingEventually) {
  BuiltPipeline Built = buildPipeline("sobel", 32, 28);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 1;
  PipelineServer Server(SO);
  TenantOptions TO;
  TO.QueueCapacity = 1; // Every second submit must block on the full queue.
  TO.Policy = BackpressurePolicy::Block;
  PipelineServer::SessionId Id = Server.open(Built.FP, ExecutionOptions(), TO);

  const Program &P = *Built.P;
  constexpr int Frames = 6;
  std::atomic<int> Consumed{0};
  for (int I = 0; I != Frames; ++I) {
    bool Ok = Server.submit(
        Id,
        [&P](int Index, std::vector<Image> &Pool) {
          fillInputs(P, Pool, static_cast<uint64_t>(Index));
        },
        [&Consumed](int, const std::vector<Image> &) { ++Consumed; });
    EXPECT_TRUE(Ok);
  }
  Server.drain(Id);
  EXPECT_EQ(Consumed.load(), Frames);
  TenantStats Stats = Server.tenantStats(Id);
  EXPECT_EQ(Stats.Completed, static_cast<uint64_t>(Frames));
  EXPECT_EQ(Stats.Rejected, 0u);
  EXPECT_LE(Stats.MaxQueueDepth, 1u);
}

TEST(ServerBackpressure, SubmitToClosedTenantFails) {
  BuiltPipeline Built = buildPipeline("sobel", 32, 28);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 0;
  PipelineServer Server(SO);
  PipelineServer::SessionId Id = Server.open(Built.FP);
  Server.close(Id);
  EXPECT_FALSE(Server.submit(
      Id, [](int, std::vector<Image> &) {}));
}

//===--------------------------------------------------------------------===//
// Fair scheduling (inline dispatch: the order is exact, not statistical)
//===--------------------------------------------------------------------===//

/// Opens one tenant per (name, weight) pair, submits the given frame
/// counts, dispatches everything inline and returns the tenant index of
/// each served frame in dispatch order.
std::vector<size_t> dispatchOrder(const std::vector<uint64_t> &Weights,
                                  const std::vector<int> &Frames) {
  BuiltPipeline Built = buildPipeline("sobel", 24, 20);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 0;
  PipelineServer Server(SO);
  std::vector<size_t> Order;
  std::vector<PipelineServer::SessionId> Ids;
  for (size_t T = 0; T != Weights.size(); ++T) {
    TenantOptions TO;
    TO.QueueCapacity = 64;
    TO.Weight = Weights[T];
    Ids.push_back(Server.open(Built.FP, ExecutionOptions(), TO));
  }
  const Program &P = *Built.P;
  for (size_t T = 0; T != Ids.size(); ++T)
    for (int I = 0; I != Frames[T]; ++I) {
      bool Ok = Server.submit(
          Ids[T],
          [&P](int Index, std::vector<Image> &Pool) {
            fillInputs(P, Pool, static_cast<uint64_t>(Index));
          },
          [&Order, T](int, const std::vector<Image> &) {
            Order.push_back(T);
          });
      EXPECT_TRUE(Ok);
    }
  Server.runPending();
  return Order;
}

TEST(ServerFairness, EqualWeightsInterleaveRoundRobin) {
  std::vector<size_t> Order = dispatchOrder({1, 1}, {4, 4});
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(ServerFairness, WeightsSkewServiceProportionally) {
  // Weight 3 vs 1: the stride arithmetic fixes the exact interleaving.
  std::vector<size_t> Order = dispatchOrder({3, 1}, {6, 2});
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 0, 0, 0, 1, 0, 0}));
}

TEST(ServerFairness, SaturatingTenantCannotStarveOthers) {
  // Tenant 0 floods 12 frames; tenant 1's 2 frames must still land inside
  // the first 4 dispatches at equal weight.
  std::vector<size_t> Order = dispatchOrder({1, 1}, {12, 2});
  ASSERT_EQ(Order.size(), 14u);
  int LastOfTenant1 = -1;
  for (size_t I = 0; I != Order.size(); ++I)
    if (Order[I] == 1)
      LastOfTenant1 = static_cast<int>(I);
  EXPECT_LE(LastOfTenant1, 3);
}

TEST(ServerFairness, LateJoinerEntersAtParityNotCatchUp) {
  // Tenant 0 runs alone for a while; tenant 1 then joins and must NOT get
  // a monopolizing catch-up burst -- the schedule returns to alternation.
  BuiltPipeline Built = buildPipeline("sobel", 24, 20);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 0;
  PipelineServer Server(SO);
  TenantOptions TO;
  TO.QueueCapacity = 64;
  PipelineServer::SessionId A = Server.open(Built.FP, ExecutionOptions(), TO);
  PipelineServer::SessionId B = Server.open(Built.FP, ExecutionOptions(), TO);
  const Program &P = *Built.P;
  std::vector<unsigned> Order;
  auto SubmitOne = [&](PipelineServer::SessionId Id, unsigned Tag) {
    ASSERT_TRUE(Server.submit(
        Id,
        [&P](int Index, std::vector<Image> &Pool) {
          fillInputs(P, Pool, static_cast<uint64_t>(Index));
        },
        [&Order, Tag](int, const std::vector<Image> &) {
          Order.push_back(Tag);
        }));
  };
  for (int I = 0; I != 4; ++I)
    SubmitOne(A, 0);
  Server.runPending(); // A's pass is now far ahead of B's untouched 0.
  for (int I = 0; I != 3; ++I) {
    SubmitOne(A, 0);
    SubmitOne(B, 1);
  }
  Server.runPending();
  EXPECT_EQ(Order, (std::vector<unsigned>{0, 0, 0, 0, 0, 1, 0, 1, 0, 1}));
}

//===--------------------------------------------------------------------===//
// Shared plan cache across tenants
//===--------------------------------------------------------------------===//

TEST(ServerPlanCache, SameProgramAndOptionsShareOnePlan) {
  BuiltPipeline Built = buildPipeline("harris", 40, 34);
  ServerOptions SO;
  SO.Threads = 1;
  SO.Dispatchers = 0;
  PipelineServer Server(SO);
  const Program &P = *Built.P;
  auto Fill = [&P](int Index, std::vector<Image> &Pool) {
    fillInputs(P, Pool, static_cast<uint64_t>(Index));
  };

  PipelineServer::SessionId A = Server.open(Built.FP);
  PipelineServer::SessionId B = Server.open(Built.FP);
  ASSERT_TRUE(Server.submit(A, Fill));
  ASSERT_TRUE(Server.submit(B, Fill));
  ASSERT_TRUE(Server.submit(A, Fill));
  EXPECT_EQ(Server.runPending(), 3u);

  // Three plan lookups, ONE compilation: the first tenant misses, every
  // other lookup (including the sibling tenant's first) hits the shared
  // entry.
  PlanCacheStats Cache = Server.cacheStats();
  EXPECT_EQ(Cache.Misses, 1u);
  EXPECT_EQ(Cache.Hits, 2u);
  EXPECT_EQ(Cache.Entries, 1u);
  EXPECT_EQ(Server.tenantStats(A).Session.PlanMisses +
                Server.tenantStats(B).Session.PlanMisses,
            1u);

  // A tenant under DIFFERENT options is isolated: its own key, its own
  // compilation, a second cache entry.
  ExecutionOptions Tiled;
  Tiled.TileHeight = 8;
  PipelineServer::SessionId C = Server.open(Built.FP, Tiled);
  ASSERT_TRUE(Server.submit(C, Fill));
  EXPECT_EQ(Server.runPending(), 1u);
  Cache = Server.cacheStats();
  EXPECT_EQ(Cache.Misses, 2u);
  EXPECT_EQ(Cache.Entries, 2u);

  // The Source tag differs across ALL tenants yet never splits the key:
  // sharing above happened despite distinct per-tenant sources.
  EXPECT_EQ(Server.tenantStats(C).Session.PlanMisses, 1u);
}

//===--------------------------------------------------------------------===//
// Session churn under concurrency (TSan food)
//===--------------------------------------------------------------------===//

TEST(ServerChurn, RandomizedOpenSubmitCloseFromManyThreads) {
  // Client threads churn tenants against live dispatchers: open, submit a
  // few frames, sometimes drain, close. Exercises the close-vs-dispatch
  // and submit-vs-close races; runs under -DKF_SANITIZE=thread via the
  // sanitize-smoke and server-smoke labels.
  BuiltPipeline Sobel = buildPipeline("sobel", 24, 20);
  BuiltPipeline Unsharp = buildPipeline("unsharp", 24, 20);
  const BuiltPipeline *Specs[2] = {&Sobel, &Unsharp};

  ServerOptions SO;
  SO.Threads = 2;
  SO.Dispatchers = 2;
  PipelineServer Server(SO);

  constexpr int Clients = 3;
  constexpr int IterationsPerClient = 8;
  std::atomic<uint64_t> ServedTotal{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C != Clients; ++C)
    Threads.emplace_back([&, C] {
      Rng Gen(0xc0ffee + static_cast<uint64_t>(C));
      for (int I = 0; I != IterationsPerClient; ++I) {
        uint64_t R = Gen.next();
        const BuiltPipeline &Built = *Specs[R & 1];
        TenantOptions TO;
        TO.QueueCapacity = 1 + (R >> 1) % 3;
        TO.Weight = 1 + (R >> 3) % 3;
        TO.Policy = (R >> 5) & 1 ? BackpressurePolicy::Reject
                                 : BackpressurePolicy::Block;
        PipelineServer::SessionId Id =
            Server.open(Built.FP, ExecutionOptions(), TO);
        const Program &P = *Built.P;
        int Frames = 1 + (R >> 6) % 3;
        for (int F = 0; F != Frames; ++F)
          if (Server.submit(
                  Id,
                  [&P](int Index, std::vector<Image> &Pool) {
                    fillInputs(P, Pool, static_cast<uint64_t>(Index));
                  },
                  [&ServedTotal](int, const std::vector<Image> &) {
                    ++ServedTotal;
                  }))
            ;
        if ((R >> 8) & 1)
          Server.drain(Id);
        Server.close(Id);
        // After close() returns the tenant is gone: stats are zeroed and
        // further submits fail.
        EXPECT_FALSE(Server.submit(Id, nullptr));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Server.drainAll();
  EXPECT_GT(ServedTotal.load(), 0u);
  // Both pipelines under default options: at most two distinct plans.
  EXPECT_LE(Server.cacheStats().Entries, 2u);
  EXPECT_GE(Server.cacheStats().Hits, 1u);
}

} // namespace
