//===- tests/test_fusion_legality.cpp - Legality rules (Sec. II-B) -------------===//
//
// The four dependence scenarios of Figure 2, header compatibility, the
// shared-memory constraint of Eq. 2 (with the paper's Harris arithmetic),
// and the grown-window computation behind it.
//
//===----------------------------------------------------------------------===//

#include "fusion/BenefitModel.h"
#include "fusion/Legality.h"
#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

KernelId kernelByName(const Program &P, const std::string &Name) {
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (P.kernel(Id).Name == Name)
      return Id;
  ADD_FAILURE() << "kernel not found: " << Name;
  return 0;
}

TEST(Legality, SingletonsAreLegalEmptyIsNot) {
  Program P = makeSobel(16, 16);
  LegalityChecker Checker(P, paperModel());
  EXPECT_TRUE(Checker.checkBlock({0}).Legal);
  EXPECT_FALSE(Checker.checkBlock({}).Legal);
}

TEST(Legality, Figure2aTrueDependenceIsLegal) {
  Program P = makeEnhancement(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock(
      {kernelByName(P, "gmean"), kernelByName(P, "gamma")});
  EXPECT_TRUE(R.Legal) << R.Reason;
}

TEST(Legality, Figure2bSharedInputIsLegal) {
  // Unsharp: all four kernels read the source image; fusing the whole DAG
  // is legal because the source kernel (blur) preserves that input.
  Program P = makeUnsharp(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({0, 1, 2, 3});
  EXPECT_TRUE(R.Legal) << R.Reason;
}

TEST(Legality, Figure2cExternalOutputIsIllegal) {
  // Harris {dx, sx}: dx's output also feeds sxy outside the block.
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R =
      Checker.checkBlock({kernelByName(P, "dx"), kernelByName(P, "sx")});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("external output"), std::string::npos);
}

TEST(Legality, Figure2dExternalInputIsIllegal) {
  // Harris {gx, hc}: hc reads gy and gxy, which no source kernel of the
  // block preserves.
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R =
      Checker.checkBlock({kernelByName(P, "gx"), kernelByName(P, "hc")});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("external input"), std::string::npos);
}

TEST(Legality, DisconnectedBlockIsIllegal) {
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R =
      Checker.checkBlock({kernelByName(P, "dx"), kernelByName(P, "dy")});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("connected"), std::string::npos);
}

TEST(Legality, TwoSinksAreIllegal) {
  // {dx, sx, sxy}: both sx and sxy have no in-block consumer.
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({kernelByName(P, "dx"),
                                         kernelByName(P, "sx"),
                                         kernelByName(P, "sxy")});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("destination"), std::string::npos);
}

TEST(Legality, HarrisFullGraphViolatesEq2WithRatioFive) {
  // The paper's arithmetic: fusing all nine kernels quintuples the
  // shared-memory consumption; threshold 2 rejects it.
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  std::vector<KernelId> All;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    All.push_back(Id);
  LegalityResult R = Checker.checkBlock(All);
  EXPECT_FALSE(R.Legal);
  EXPECT_DOUBLE_EQ(R.SharedRatio, 5.0);
  EXPECT_NE(R.Reason.find("shared memory"), std::string::npos);

  // A permissive threshold admits the block.
  HardwareModel Loose = paperModel();
  Loose.SharedMemThreshold = 5.0;
  LegalityChecker LooseChecker(P, Loose);
  EXPECT_TRUE(LooseChecker.checkBlock(All).Legal);
}

TEST(Legality, EffectiveWindowWidthGrowsThroughPointStages) {
  // gx fused with {dx, sx}: the point stage sx passes dx's halo through,
  // so gx's effective window is 5 (Eq. 9: 3x3 after 3x3).
  Program P = makeHarris(16, 16);
  LegalityChecker Checker(P, paperModel());
  std::vector<KernelId> Block = {kernelByName(P, "dx"),
                                 kernelByName(P, "sx"),
                                 kernelByName(P, "gx")};
  EXPECT_EQ(Checker.effectiveWindowWidth(Block, kernelByName(P, "gx")), 5);
  // Without dx in the block, sx carries no halo: gx stays 3.
  std::vector<KernelId> Pair = {kernelByName(P, "sx"),
                                kernelByName(P, "gx")};
  EXPECT_EQ(Checker.effectiveWindowWidth(Pair, kernelByName(P, "gx")), 3);
}

TEST(Legality, SharedRatioZeroWithoutInternalWindowConsumers) {
  // Sobel {dx, dy, mag}: the locals consume only the external input, so
  // Eq. 2 is vacuous for the fused kernel.
  Program P = makeSobel(16, 16);
  LegalityChecker Checker(P, paperModel());
  EXPECT_DOUBLE_EQ(Checker.sharedMemoryRatio({0, 1, 2}), 0.0);
}

TEST(Legality, BlurChainSharedRatio) {
  // conv0 -> conv1 (both 3x3): the fused consumer window is 5, the widest
  // member window is 3: ratio 5/3.
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  LegalityChecker Checker(P, paperModel());
  EXPECT_NEAR(Checker.sharedMemoryRatio({0, 1}), 5.0 / 3.0, 1e-12);
  EXPECT_TRUE(Checker.checkBlock({0, 1}).Legal);
}

TEST(Legality, HeaderMismatchGranularity) {
  Program P("granularity");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Mid = P.addImage("mid", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K1;
  K1.Name = "a";
  K1.Kind = OperatorKind::Point;
  K1.Inputs = {In};
  K1.Output = Mid;
  K1.Body = C.inputAt(0);
  P.addKernel(std::move(K1));
  Kernel K2;
  K2.Name = "b";
  K2.Kind = OperatorKind::Point;
  K2.Inputs = {Mid};
  K2.Output = Out;
  K2.Body = C.inputAt(0);
  K2.Granularity = 2; // Incompatible header.
  P.addKernel(std::move(K2));
  verifyProgramOrDie(P);

  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({0, 1});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("granularity"), std::string::npos);
}

TEST(Legality, GlobalOperatorsAreBarriers) {
  Program P("global");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Mid = P.addImage("mid", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K1;
  K1.Name = "a";
  K1.Kind = OperatorKind::Point;
  K1.Inputs = {In};
  K1.Output = Mid;
  K1.Body = C.inputAt(0);
  P.addKernel(std::move(K1));
  Kernel K2;
  K2.Name = "reduce";
  K2.Kind = OperatorKind::Global;
  K2.Inputs = {Mid};
  K2.Output = Out;
  K2.Body = C.inputAt(0);
  P.addKernel(std::move(K2));

  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({0, 1});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("global operator"), std::string::npos);
}

TEST(Legality, NightBlockPassesEq2ButFailsBenefit) {
  // {atrous0, atrous1, scoto} satisfies the resource constraint (ratio
  // 7/5 = 1.4 <= 2) -- it is the benefit barrier, not Eq. 2, that keeps
  // the atrous kernels apart.
  Program P = makeNight(16, 16);
  LegalityChecker Checker(P, paperModel());
  std::vector<KernelId> All = {0, 1, 2};
  EXPECT_NEAR(Checker.sharedMemoryRatio(All), 7.0 / 5.0, 1e-12);
  EXPECT_TRUE(Checker.checkBlock(All).Legal);

  BenefitModel Model(Checker);
  EXPECT_NE(fusibleBlockRejection(Model, All), "");
}

TEST(Legality, ConflictingBorderModesAreIllegal) {
  // Fusing replaces the producer's border handling with index exchange
  // under the consumer's mode; disagreeing modes would change border
  // pixels, so the edge must not fuse.
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  P.kernel(1).Border = BorderMode::Mirror;
  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({0, 1});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("conflicting border modes"), std::string::npos)
      << R.Reason;
}

TEST(Legality, MatchingBorderModesStayLegal) {
  for (BorderMode Mode : {BorderMode::Clamp, BorderMode::Mirror,
                          BorderMode::Repeat, BorderMode::Constant}) {
    Program P = makeBlurChain(16, 16, Mode);
    LegalityChecker Checker(P, paperModel());
    LegalityResult R = Checker.checkBlock({0, 1});
    EXPECT_TRUE(R.Legal) << R.Reason;
  }
}

TEST(Legality, ConstantBorderValueMismatchIsIllegal) {
  // Same mode but different constant values still disagree at the border.
  Program P = makeBlurChain(16, 16, BorderMode::Constant);
  P.kernel(0).BorderConstant = 0.0f;
  P.kernel(1).BorderConstant = 1.0f;
  LegalityChecker Checker(P, paperModel());
  LegalityResult R = Checker.checkBlock({0, 1});
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("conflicting border modes"), std::string::npos)
      << R.Reason;
}

TEST(Legality, PerTileWindowGrowthIsCaughtDespiteDilution) {
  // The aggregate Eq. 2 ratio divides by the widest original mask in the
  // block: a 9x9 bystander kernel dilutes the ratio of a 5x5 -> 3x3 chain
  // whose grown window (11) far exceeds what its own tile sustains
  // (threshold x 3 = 6). The per-tile bound must reject the block even
  // though the aggregate ratio (11/9) passes.
  Program P("dilution");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 32, 32);
  ImageId WideOut = P.addImage("wide_out", 32, 32);
  ImageId BOut = P.addImage("b_out", 32, 32);
  ImageId COut = P.addImage("c_out", 32, 32);
  int Wide9 = P.addMask(Mask::uniform(9, 9, 1.0f / 81.0f));
  int Box5 = P.addMask(Mask::uniform(5, 5, 0.04f));
  int Bin3 = P.addMask(binomial3Normalized());

  Kernel Wide;
  Wide.Name = "wide";
  Wide.Kind = OperatorKind::Local;
  Wide.Inputs = {In};
  Wide.Output = WideOut;
  Wide.Body = C.stencil(Wide9, ReduceOp::Sum,
                        C.mul(C.stencilInput(0), C.maskValue()));
  P.addKernel(std::move(Wide));

  Kernel B;
  B.Name = "b";
  B.Kind = OperatorKind::Local;
  B.Inputs = {In};
  B.Output = BOut;
  B.Body = C.stencil(Box5, ReduceOp::Sum,
                     C.mul(C.stencilInput(0), C.maskValue()));
  P.addKernel(std::move(B));

  Kernel Cons;
  Cons.Name = "c";
  Cons.Kind = OperatorKind::Local;
  Cons.Inputs = {BOut, WideOut};
  Cons.Output = COut;
  Cons.Body = C.add(C.stencil(Bin3, ReduceOp::Sum,
                              C.mul(C.stencilInput(0), C.maskValue())),
                    C.inputAt(1));
  P.addKernel(std::move(Cons));

  LegalityChecker Checker(P, paperModel());
  std::vector<KernelId> Block = {0, 1, 2};
  // The aggregate ratio alone would admit the block...
  EXPECT_LE(Checker.sharedMemoryRatio(Block),
            paperModel().SharedMemThreshold);
  // ...but the per-tile growth bound rejects it.
  LegalityResult R = Checker.checkBlock(Block);
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("grows"), std::string::npos) << R.Reason;
}

} // namespace

