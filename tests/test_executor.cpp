//===- tests/test_executor.cpp - Functional execution & Figure 4 -------------===//
//
// Correctness of the interpreter and the fusion transform: fused execution
// must be bit-identical to unfused execution, including the halo region --
// the central claim of Section IV. The Figure 4 tests check the paper's
// exact numbers: 992 (body fusion), 648 (incorrect naive border fusion),
// 763 (correct border fusion with index exchange).
//
//===----------------------------------------------------------------------===//

#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kf;

namespace {

/// Fuses the whole program into one block (used to force local-to-local
/// fusion regardless of the benefit model).
Partition wholeProgramPartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

TEST(Executor, Figure4UnfusedIntermediateValues) {
  Program P = makeFigure4Program();
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeFigure4Matrix();
  runUnfused(P, Pool);

  const Image &Mid = Pool[1];
  // Intermediate values the paper prints in Figure 4: centre 61, border
  // values 34 / 68 / 57 / 82 at the top-left corner.
  EXPECT_FLOAT_EQ(Mid.at(2, 2), 61.0f);
  EXPECT_FLOAT_EQ(Mid.at(0, 0), 34.0f);
  EXPECT_FLOAT_EQ(Mid.at(1, 0), 68.0f);
  EXPECT_FLOAT_EQ(Mid.at(0, 1), 57.0f);
  EXPECT_FLOAT_EQ(Mid.at(1, 1), 82.0f);
}

TEST(Executor, Figure4BodyFusionValueIs992) {
  // "Body fusion: conv+conv" -- the interior value of the twice-convolved
  // matrix is 992 (Figure 4a).
  Program P = makeFigure4Program();
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeFigure4Matrix();
  runUnfused(P, Pool);
  EXPECT_FLOAT_EQ(Pool[2].at(2, 2), 992.0f);

  // The fused kernel computes the same interior value.
  FusedProgram FP = fuseProgram(P, wholeProgramPartition(P),
                                FusionStyle::Optimized);
  std::vector<Image> FusedPool = makeImagePool(P);
  FusedPool[0] = makeFigure4Matrix();
  runFused(FP, FusedPool);
  EXPECT_FLOAT_EQ(FusedPool[2].at(2, 2), 992.0f);
}

TEST(Executor, Figure4IncorrectBorderFusionIntermediates) {
  // "Border fusion incorrect: clamp+conv+conv" -- without the index
  // exchange the fused kernel recomputes the producer at raw exterior
  // positions. The window of intermediate values feeding the top-left
  // output pixel is exactly the matrix Figure 4b prints:
  //   16 24 56 / 24 34 68 / 48 57 82.
  Program P = makeFigure4Program();
  FusedProgram FP = fuseProgram(P, wholeProgramPartition(P),
                                FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeFigure4Matrix();
  ExecutionOptions Naive;
  Naive.UseIndexExchange = false;
  runFused(FP, Pool, Naive);

  // The raw exterior evaluations of the producer match Figure 4b's
  // intermediate matrix exactly.
  EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, -1, -1, 0), 16.0f);
  EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, 0, -1, 0), 24.0f);
  EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, 1, -1, 0), 56.0f);
  EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, -1, 0, 0), 24.0f);
  EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, -1, 1, 0), 48.0f);

  // Convolving that window with the binomial mask gives 684. (The paper
  // prints 648 in Figure 4b; recomputing from the figure's own
  // intermediate values -- all of which we match -- yields 684, so 648
  // appears to be an arithmetic slip. The point stands either way: the
  // naive result differs from the correct 763.) See EXPERIMENTS.md.
  EXPECT_FLOAT_EQ(Pool[2].at(0, 0), 684.0f);
  EXPECT_NE(Pool[2].at(0, 0), 763.0f);
}

TEST(Executor, Figure4CorrectBorderFusionGives763) {
  // "Border fusion correct: clamp+conv+clamp+conv" (Figure 4c).
  Program P = makeFigure4Program();

  // Unfused reference.
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeFigure4Matrix();
  runUnfused(P, Reference);
  EXPECT_FLOAT_EQ(Reference[2].at(0, 0), 763.0f);

  // Fused with index exchange: identical, including the halo.
  FusedProgram FP = fuseProgram(P, wholeProgramPartition(P),
                                FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeFigure4Matrix();
  runFused(FP, Pool);
  EXPECT_FLOAT_EQ(Pool[2].at(0, 0), 763.0f);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[2], Reference[2]), 0.0);
}

TEST(Executor, NaiveBorderFusionIsCorrectInTheInteriorOnly) {
  // The naive method is exact in the interior region and wrong exactly in
  // the halo -- the paper's motivation for the index-exchange method.
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  std::vector<Image> Reference = makeImagePool(P);
  Rng Gen(1234);
  Reference[0] = makeRandomImage(16, 16, 1, Gen);
  runUnfused(P, Reference);

  FusedProgram FP = fuseProgram(P, wholeProgramPartition(P),
                                FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  ExecutionOptions Naive;
  Naive.UseIndexExchange = false;
  runFused(FP, Pool, Naive);

  // Fused halo for two 3x3 kernels: the outer 2 rows/columns.
  EXPECT_EQ(maxAbsDifferenceInInterior(Pool[2], Reference[2], 2), 0.0);
  EXPECT_GT(maxAbsDifferenceInHalo(Pool[2], Reference[2], 2), 0.0);
}

/// Border-mode sweep: local-to-local fusion must be exact for every
/// border handling mode the DSL supports.
class BorderModeFusion : public ::testing::TestWithParam<BorderMode> {};

TEST_P(BorderModeFusion, BlurChainFusedMatchesUnfused) {
  BorderMode Mode = GetParam();
  Program P = makeBlurChain(20, 14, Mode);
  Rng Gen(99);
  Image Input = makeRandomImage(20, 14, 1, Gen);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = Input;
  runUnfused(P, Reference);

  FusedProgram FP = fuseProgram(P, wholeProgramPartition(P),
                                FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Input;
  runFused(FP, Pool);

  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[2], Reference[2]), 0.0)
      << "border mode: " << borderModeName(Mode);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BorderModeFusion,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return std::string(borderModeName(Info.param));
                         });

TEST(Executor, UnfusedHarrisProducesFiniteCornerResponse) {
  Program P = makeHarris(24, 24);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeCheckerboardImage(24, 24, 6, 0.0f, 1.0f);
  runUnfused(P, Pool);
  const Image &Hc = Pool[P.numImages() - 1];
  // A checkerboard has strong corners: the response must not be all-zero.
  double MaxResponse = 0.0;
  for (float V : Hc.data()) {
    ASSERT_TRUE(std::isfinite(V));
    MaxResponse = std::max(MaxResponse, std::abs(static_cast<double>(V)));
  }
  EXPECT_GT(MaxResponse, 1e-4);
}

TEST(Executor, EvalKernelAtMatchesFullRun) {
  Program P = makeSobel(12, 12);
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(7);
  Pool[0] = makeRandomImage(12, 12, 1, Gen);
  std::vector<Image> Full = Pool;
  runUnfused(P, Full);
  // Spot-check kernel 0 (dx) at a few pixels.
  for (int X : {0, 5, 11})
    for (int Y : {0, 6, 11})
      EXPECT_FLOAT_EQ(evalKernelAt(P, 0, Pool, X, Y, 0), Full[1].at(X, Y));
}

TEST(Executor, ImpulseRevealsMaskFootprint) {
  // Convolving an impulse spreads it exactly over the fused 5x5 window
  // after two 3x3 convolutions.
  Program P = makeBlurChain(15, 15, BorderMode::Constant);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeImpulseImage(15, 15, 256.0f);
  runUnfused(P, Pool);
  const Image &Out = Pool[2];
  for (int Y = 0; Y != 15; ++Y)
    for (int X = 0; X != 15; ++X) {
      bool InFootprint = std::abs(X - 7) <= 2 && std::abs(Y - 7) <= 2;
      if (InFootprint)
        EXPECT_GT(Out.at(X, Y), 0.0f) << X << "," << Y;
      else
        EXPECT_FLOAT_EQ(Out.at(X, Y), 0.0f) << X << "," << Y;
    }
}

} // namespace
