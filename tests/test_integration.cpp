//===- tests/test_integration.cpp - End-to-end pipeline properties --------------===//
//
// The system-level property behind the whole paper: for every application,
// the fused programs (both the optimized partition and the basic prior-
// work partition) produce outputs identical to the unfused baseline --
// kernel fusion is a pure locality transformation. Plus end-to-end
// simulated-performance orderings across the three GPUs.
//
//===----------------------------------------------------------------------===//

#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Runner.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

/// Correctness sweep: fused == unfused for one pipeline and one seed.
class PipelineCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PipelineCorrectness, FusedMatchesBaselineExactly) {
  const auto &[Name, Seed] = GetParam();
  const PipelineSpec *Spec = findPipeline(Name);
  ASSERT_NE(Spec, nullptr);
  // Reduced sizes keep the interpreter fast; the transform is size-
  // agnostic. Keep the Night aspect ratio (RGB path).
  int W = Name == "night" ? 20 : 24;
  int H = Name == "night" ? 12 : 24;
  Program P = Spec->Builder(W, H);

  Rng Gen(static_cast<uint64_t>(Seed) * 7919 + 13);
  const ImageInfo &InInfo = P.image(0);
  Image Input = makeRandomImage(InInfo.Width, InInfo.Height,
                                InInfo.Channels, Gen);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = Input;
  runUnfused(P, Reference);

  // Optimized fusion.
  MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
  FusedProgram Optimized =
      fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);
  std::vector<Image> OptPool = makeImagePool(P);
  OptPool[0] = Input;
  runFused(Optimized, OptPool);

  // Basic (prior work) fusion.
  BasicFusionResult Basic = runBasicFusion(P, paperModel());
  FusedProgram BasicFused =
      fuseProgram(P, Basic.Blocks, FusionStyle::Basic);
  std::vector<Image> BasicPool = makeImagePool(P);
  BasicPool[0] = Input;
  runFused(BasicFused, BasicPool);

  for (ImageId Out : P.terminalOutputs()) {
    EXPECT_DOUBLE_EQ(maxAbsDifference(OptPool[Out], Reference[Out]), 0.0)
        << Name << " optimized, output image " << Out;
    EXPECT_DOUBLE_EQ(maxAbsDifference(BasicPool[Out], Reference[Out]), 0.0)
        << Name << " basic, output image " << Out;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPipelines, PipelineCorrectness,
    ::testing::Combine(::testing::Values("harris", "sobel", "unsharp",
                                         "shitomasi", "enhance", "night"),
                       ::testing::Values(1, 2, 3)),
    [](const auto &Info) {
      return std::get<0>(Info.param) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(Integration, SpeedupOrderingAcrossVariants) {
  // Optimized must never lose to basic, and basic never to baseline, on
  // any of the three GPUs (Table I's columns are all >= 1, modulo noise).
  CostModelParams Params;
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.build();
    ProgramStats Base = accountFusedProgram(unfusedProgram(P));
    MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
    ProgramStats Opt = accountFusedProgram(
        fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized));
    BasicFusionResult Basic = runBasicFusion(P, paperModel());
    ProgramStats Bas = accountFusedProgram(
        fuseProgram(P, Basic.Blocks, FusionStyle::Basic));

    for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
      double TBase = estimateProgramTimeMs(Base, Device, Params);
      double TBasic = estimateProgramTimeMs(Bas, Device, Params);
      double TOpt = estimateProgramTimeMs(Opt, Device, Params);
      EXPECT_LE(TOpt, TBasic * 1.005)
          << Spec.Name << " on " << Device.Name;
      EXPECT_LE(TBasic, TBase * 1.005)
          << Spec.Name << " on " << Device.Name;
    }
  }
}

TEST(Integration, UnsharpShowsTheLargestOptimizedOverBasicGain) {
  // Table I's headline: basic fails on Unsharp entirely, optimized fuses
  // it into one kernel -- the optimized-over-basic ratio must be the
  // largest among the six applications on every GPU.
  CostModelParams Params;
  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    double UnsharpRatio = 0.0;
    double BestOtherRatio = 0.0;
    for (const PipelineSpec &Spec : paperPipelines()) {
      Program P = Spec.build();
      BasicFusionResult Basic = runBasicFusion(P, paperModel());
      MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
      double TBasic = estimateProgramTimeMs(
          accountFusedProgram(
              fuseProgram(P, Basic.Blocks, FusionStyle::Basic)),
          Device, Params);
      double TOpt = estimateProgramTimeMs(
          accountFusedProgram(
              fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized)),
          Device, Params);
      double Ratio = TBasic / TOpt;
      if (Spec.Name == "unsharp")
        UnsharpRatio = Ratio;
      else
        BestOtherRatio = std::max(BestOtherRatio, Ratio);
    }
    EXPECT_GT(UnsharpRatio, BestOtherRatio) << Device.Name;
    EXPECT_GT(UnsharpRatio, 1.5) << Device.Name;
  }
}

TEST(Integration, FusionPassIsDeterministic) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P1 = Spec.Builder(64, 64);
    Program P2 = Spec.Builder(64, 64);
    MinCutFusionResult R1 = runMinCutFusion(P1, paperModel());
    MinCutFusionResult R2 = runMinCutFusion(P2, paperModel());
    EXPECT_TRUE(R1.Blocks == R2.Blocks) << Spec.Name;
    EXPECT_DOUBLE_EQ(R1.TotalBenefit, R2.TotalBenefit) << Spec.Name;
    EXPECT_EQ(R1.Trace.size(), R2.Trace.size()) << Spec.Name;
  }
}

TEST(Integration, FusedProgramsEliminateIntermediates) {
  // After fused execution, eliminated intermediates must stay empty --
  // they were never materialized in (simulated) global memory.
  Program P = makeUnsharp(24, 24);
  MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(3);
  Pool[0] = makeRandomImage(24, 24, 1, Gen);
  runFused(FP, Pool);
  EXPECT_TRUE(Pool[1].empty()); // blur_out eliminated.
  EXPECT_TRUE(Pool[2].empty()); // hi_out eliminated.
  EXPECT_TRUE(Pool[3].empty()); // cub_out eliminated.
  EXPECT_FALSE(Pool[4].empty());
}

TEST(Integration, GradientInputFusionIsExactToo) {
  // Structured (non-random) inputs exercise different value patterns in
  // the border paths.
  Program P = makeHarris(24, 24);
  MinCutFusionResult MinCut = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeGradientImage(24, 24);
  runUnfused(P, Reference);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeGradientImage(24, 24);
  runFused(FP, Pool);
  EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[9], Reference[9]), 0.0);
}

} // namespace
