//===- tests/test_ir.cpp - IR, cost analysis, verifier, printer ---------------===//

#include "ir/CostInfo.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

KernelId kernelByName(const Program &P, const std::string &Name) {
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (P.kernel(Id).Name == Name)
      return Id;
  ADD_FAILURE() << "kernel not found: " << Name;
  return 0;
}

TEST(Mask, AccessorsAndHalo) {
  Mask M = binomial3Unnormalized();
  EXPECT_EQ(M.size(), 9);
  EXPECT_EQ(M.haloX(), 1);
  EXPECT_FLOAT_EQ(M.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(M.at(-1, -1), 1.0f);
  EXPECT_FLOAT_EQ(M.at(1, 0), 2.0f);
}

TEST(Mask, UniformFactory) {
  Mask M = Mask::uniform(5, 5, 0.04f);
  EXPECT_EQ(M.size(), 25);
  EXPECT_FLOAT_EQ(M.at(2, -2), 0.04f);
}

TEST(Program, ProducerConsumerQueries) {
  Program P = makeSobel(16, 16);
  // Image 1 is dx_out, produced by kernel 0 (dx), consumed by mag.
  EXPECT_EQ(P.producerOf(1), KernelId{0});
  EXPECT_FALSE(P.producerOf(0).has_value()); // Input image.
  std::vector<KernelId> Consumers = P.consumersOf(0);
  EXPECT_EQ(Consumers.size(), 2u); // dx and dy read the input.
  EXPECT_EQ(P.externalInputs(), std::vector<ImageId>{0});
  EXPECT_EQ(P.terminalOutputs(), std::vector<ImageId>{3});
}

TEST(Program, KernelDagShape) {
  Program P = makeHarris(16, 16);
  Digraph Dag = P.buildKernelDag();
  EXPECT_EQ(Dag.numNodes(), 9u);
  EXPECT_EQ(Dag.numEdges(), 10u);
  EXPECT_FALSE(Dag.hasCycle());
}

TEST(Program, CommunicatedImage) {
  Program P = makeSobel(16, 16);
  KernelId Dx = kernelByName(P, "dx");
  KernelId Mag = kernelByName(P, "mag");
  ASSERT_TRUE(P.communicatedImage(Dx, Mag).has_value());
  EXPECT_EQ(*P.communicatedImage(Dx, Mag), P.kernel(Dx).Output);
  EXPECT_FALSE(P.communicatedImage(Mag, Dx).has_value());
}

TEST(CostInfo, PointKernelCountsStore) {
  Program P = makeHarris(16, 16);
  KernelCost Cost = analyzeKernelCost(P, kernelByName(P, "sx"));
  EXPECT_EQ(Cost.NumAlu, 2); // One multiply plus the store.
  EXPECT_EQ(Cost.NumSfu, 0);
  EXPECT_EQ(Cost.WindowWidth, 1);
  ASSERT_EQ(Cost.Footprints.size(), 1u);
  EXPECT_EQ(Cost.Footprints[0].ReadsPerPixel, 2);
  EXPECT_FALSE(Cost.Footprints[0].WindowAccess);
}

TEST(CostInfo, LocalConvolutionCounts) {
  Program P = makeBlurChain(16, 16, BorderMode::Clamp);
  KernelCost Cost = analyzeKernelCost(P, 0);
  // 9 multiplies + 8 reduce-adds + 1 store.
  EXPECT_EQ(Cost.NumAlu, 18);
  EXPECT_EQ(Cost.WindowWidth, 3);
  EXPECT_EQ(Cost.windowSize(), 9);
  ASSERT_EQ(Cost.Footprints.size(), 1u);
  EXPECT_EQ(Cost.Footprints[0].ReadsPerPixel, 9);
  EXPECT_TRUE(Cost.Footprints[0].WindowAccess);
  EXPECT_EQ(Cost.Footprints[0].HaloX, 1);
}

TEST(CostInfo, SfuOperationsAreCountedSeparately) {
  Program P = makeSobel(16, 16);
  KernelCost Cost = analyzeKernelCost(P, kernelByName(P, "mag"));
  EXPECT_EQ(Cost.NumSfu, 1); // The sqrt.
  EXPECT_EQ(Cost.NumAlu, 4); // mul, mul, add, store.
  // dx*dx + dy*dy: each squared operand is two AST-level reads (the
  // analysis does not assume CSE).
  EXPECT_EQ(Cost.totalReadsPerPixel(), 4);
}

TEST(CostInfo, NightAtrousIsExpensive) {
  Program P = makeNight(16, 16);
  KernelCost Cost = analyzeKernelCost(P, kernelByName(P, "atrous0"));
  // The bilateral kernel is heavyweight (the paper counts 68 ALU
  // operations in the Hipacc version; ours is in the same league).
  EXPECT_GT(Cost.NumAlu, 60);
  EXPECT_GT(Cost.NumSfu, 10);
}

TEST(Verifier, AcceptsAllPaperPipelines) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(32, 32);
    EXPECT_TRUE(verifyProgram(P).empty()) << Spec.Name;
  }
}

TEST(Verifier, RejectsPointKernelWithWindowAccess) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  int M = P.addMask(Mask::uniform(3, 3, 1.0f));
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point; // Claimed point, but uses a stencil.
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.stencil(M, ReduceOp::Sum, C.stencilInput(0));
  P.addKernel(std::move(K));
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("point kernels"), std::string::npos);
}

TEST(Verifier, RejectsLocalKernelWithoutWindow) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Local;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.inputAt(0);
  P.addKernel(std::move(K));
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("window access"), std::string::npos);
}

TEST(Verifier, RejectsDoubleProducer) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  for (int I = 0; I != 2; ++I) {
    Kernel K;
    K.Name = "k" + std::to_string(I);
    K.Kind = OperatorKind::Point;
    K.Inputs = {In};
    K.Output = Out;
    K.Body = C.inputAt(0);
    P.addKernel(std::move(K));
  }
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("more than one producer"),
            std::string::npos);
}

TEST(Verifier, RejectsShapeMismatch) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 16, 16);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.inputAt(0);
  P.addKernel(std::move(K));
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("shape differs"), std::string::npos);
}

TEST(Verifier, RejectsStencilScopedNodesOutsideStencil) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8);
  ImageId Out = P.addImage("out", 8, 8);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.maskValue();
  P.addKernel(std::move(K));
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("outside a stencil"), std::string::npos);
}

TEST(Verifier, RejectsChannelMismatchWithImplicitAccess) {
  Program P("bad");
  ExprContext &C = P.context();
  ImageId In = P.addImage("in", 8, 8, 3);
  ImageId Out = P.addImage("out", 8, 8, 1);
  Kernel K;
  K.Name = "k";
  K.Kind = OperatorKind::Point;
  K.Inputs = {In};
  K.Output = Out;
  K.Body = C.inputAt(0); // Implicit channel over mismatched counts.
  P.addKernel(std::move(K));
  std::vector<std::string> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("channel"), std::string::npos);
}

TEST(Printer, ExprRendering) {
  ExprContext C;
  const Expr *E =
      C.add(C.mul(C.inputAt(0), C.floatConst(2.0f)), C.inputAt(1));
  EXPECT_EQ(exprToString(E, {"a", "b"}),
            "((a(0,0) * 2.0000) + b(0,0))");
}

TEST(Printer, KernelAndProgramRendering) {
  Program P = makeSobel(8, 8);
  std::string Text = programToString(P);
  EXPECT_NE(Text.find("program sobel"), std::string::npos);
  EXPECT_NE(Text.find("local kernel dx(in)"), std::string::npos);
  EXPECT_NE(Text.find("[border=clamp]"), std::string::npos);
  EXPECT_NE(Text.find("sqrt("), std::string::npos);
  EXPECT_NE(Text.find("sum[mask0]"), std::string::npos);
}

TEST(ExprContext, ArenaGrowsAndNodesStayValid) {
  ExprContext C;
  const Expr *First = C.floatConst(1.0f);
  for (int I = 0; I != 10000; ++I)
    C.floatConst(static_cast<float>(I));
  EXPECT_FLOAT_EQ(First->Value, 1.0f); // deque keeps addresses stable.
  EXPECT_EQ(C.numExprs(), 10001u);
}

} // namespace
