//===- tests/test_trace.cpp - Tracing & metrics layer tests ---------------------===//
//
// The observability subsystem: span/counter recording semantics, the
// disabled-path inertness guarantee, the chrome://tracing exporter, and
// the predicted-vs-measured MetricsRegistry. The recorder and registry
// are process-wide singletons, so every test here enables, clears, and
// disables them around its body (a fixture enforces the reset).
//
//===----------------------------------------------------------------------===//

#include "fusion/Partition.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace kf;

namespace {

/// Fuses the whole program into one block so the VM path always runs a
/// genuinely fused launch.
FusedProgram wholeProgramFused(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return fuseProgram(P, S, FusionStyle::Optimized);
}

/// Builds the image pool with deterministic random external inputs.
std::vector<Image> seededPool(const Program &P, uint64_t Seed) {
  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(Seed);
  for (ImageId Id : P.externalInputs()) {
    const ImageInfo &Info = P.image(Id);
    Pool[Id] = makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
  }
  return Pool;
}

/// Leaves both singletons disabled and empty regardless of test outcome.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::global().setEnabled(false);
    TraceRecorder::global().clear();
    MetricsRegistry::global().setEnabled(false);
    MetricsRegistry::global().clear();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(TraceTest, DisabledRecorderIsInert) {
  TraceRecorder &Recorder = TraceRecorder::global();
  EXPECT_FALSE(TraceRecorder::enabled());
  Recorder.recordSpan("ignored", "test", 0.0, 1.0);
  Recorder.addCounter("ignored", 5.0);
  {
    TraceSpan Span("ignored", "test");
    EXPECT_FALSE(Span.active());
  }
  EXPECT_TRUE(Recorder.spans().empty());
  EXPECT_TRUE(Recorder.counters().empty());
}

TEST_F(TraceTest, RecordsSpansAndCounters) {
  TraceRecorder &Recorder = TraceRecorder::global();
  Recorder.setEnabled(true);
  Recorder.recordSpan("alpha", "test", 10.0, 5.0, {{"k", 2.0}});
  Recorder.recordSpan("alpha", "test", 20.0, 7.0);
  Recorder.recordSpan("beta", "test", 0.0, 100.0);
  Recorder.addCounter("hits", 1.0);
  Recorder.addCounter("hits", 2.0);

  std::vector<TraceSpanRecord> Spans = Recorder.spans();
  ASSERT_EQ(Spans.size(), 3u);
  EXPECT_EQ(Spans[0].Name, "alpha");
  ASSERT_EQ(Spans[0].Args.size(), 1u);
  EXPECT_EQ(Spans[0].Args[0].first, "k");

  std::vector<SpanAggregate> Aggs = Recorder.aggregateSpans();
  ASSERT_EQ(Aggs.size(), 2u);
  // Ordered by descending total time: beta (100) before alpha (12).
  EXPECT_EQ(Aggs[0].Name, "beta");
  EXPECT_EQ(Aggs[1].Count, 2u);
  EXPECT_DOUBLE_EQ(Aggs[1].TotalUs, 12.0);
  EXPECT_DOUBLE_EQ(Recorder.counters().at("hits"), 3.0);

  std::string Summary = Recorder.metricsSummary();
  EXPECT_NE(Summary.find("alpha"), std::string::npos);
  EXPECT_NE(Summary.find("hits"), std::string::npos);
}

TEST_F(TraceTest, RaiiSpanMeasuresNonNegativeInterval) {
  TraceRecorder::global().setEnabled(true);
  {
    TraceSpan Span("scoped", "test");
    EXPECT_TRUE(Span.active());
    Span.arg("x", 42.0);
  }
  std::vector<TraceSpanRecord> Spans = TraceRecorder::global().spans();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_EQ(Spans[0].Name, "scoped");
  EXPECT_GE(Spans[0].DurationUs, 0.0);
  ASSERT_EQ(Spans[0].Args.size(), 1u);
  EXPECT_DOUBLE_EQ(Spans[0].Args[0].second, 42.0);
}

TEST_F(TraceTest, ThreadIdsAreSmallAndDistinct) {
  TraceRecorder &Recorder = TraceRecorder::global();
  Recorder.setEnabled(true);
  Recorder.recordSpan("main", "test", 0.0, 1.0);
  std::thread Other(
      [&Recorder] { Recorder.recordSpan("other", "test", 0.0, 1.0); });
  Other.join();
  std::vector<TraceSpanRecord> Spans = Recorder.spans();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_NE(Spans[0].ThreadId, Spans[1].ThreadId);
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormedJson) {
  TraceRecorder &Recorder = TraceRecorder::global();
  Recorder.setEnabled(true);
  Recorder.recordSpan("needs \"escaping\"\n", "test", 1.0, 2.0,
                      {{"arg", 0.5}});
  Recorder.recordSpan("plain", "test", 3.0, 4.0);

  std::string Path = ::testing::TempDir() + "kf_trace.json";
  ASSERT_TRUE(Recorder.writeChromeTrace(Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  std::remove(Path.c_str());

  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Text.find("\\\"escaping\\\""), std::string::npos);
  EXPECT_NE(Text.find("\\u000a"), std::string::npos);
  // Brace balance is a cheap well-formedness proxy.
  int Depth = 0;
  for (char C : Text) {
    if (C == '{')
      ++Depth;
    if (C == '}')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST_F(TraceTest, ClearDropsDataButKeepsEnabled) {
  TraceRecorder &Recorder = TraceRecorder::global();
  Recorder.setEnabled(true);
  Recorder.recordSpan("x", "test", 0.0, 1.0);
  Recorder.addCounter("c", 1.0);
  Recorder.clear();
  EXPECT_TRUE(Recorder.spans().empty());
  EXPECT_TRUE(Recorder.counters().empty());
  EXPECT_TRUE(TraceRecorder::enabled());
}

TEST_F(TraceTest, ThreadPoolExportsSchedulingCounters) {
  TraceRecorder::global().setEnabled(true);
  {
    ThreadPool Pool(2);
    Pool.parallelFor2D(8, 8, 4, 4, [](const TileRange &, unsigned) {});
    ThreadPoolStats Stats = Pool.stats();
    EXPECT_EQ(Stats.Launches, 1u);
    EXPECT_EQ(Stats.Tiles, 4u);
    ASSERT_EQ(Stats.TilesPerWorker.size(), 2u);
    EXPECT_EQ(Stats.TilesPerWorker[0] + Stats.TilesPerWorker[1], 4u);
  }
  // Destruction exported the counters into the recorder.
  std::map<std::string, double> Counters = TraceRecorder::global().counters();
  EXPECT_DOUBLE_EQ(Counters.at("threadpool.launches"), 1.0);
  EXPECT_DOUBLE_EQ(Counters.at("threadpool.tiles"), 4.0);
}

TEST_F(TraceTest, MetricsRegistryMergesPredictionsAndMeasurements) {
  MetricsRegistry &Registry = MetricsRegistry::global();
  Registry.setEnabled(true);

  Program P = makeSobel(32, 32);
  FusedProgram FP = wholeProgramFused(P);
  Registry.recordPrediction(P.name(), FP);

  std::vector<LaunchModelRecord> Records = Registry.records();
  ASSERT_EQ(Records.size(), FP.numLaunches());
  for (const LaunchModelRecord &Record : Records) {
    EXPECT_GT(Record.PredictedMs, 0.0);
    EXPECT_GT(Record.PredictedCycles, 0.0);
    EXPECT_EQ(Record.Runs, 0u);
    EXPECT_DOUBLE_EQ(Record.ratio(), 0.0); // No measurement yet.
  }

  const std::string Launch = Records[0].Launch; // Copy: Records is reassigned.
  Registry.recordLaunch(P.name(), Launch, 2.0, 1.5, 0.5);
  Registry.recordLaunch(P.name(), Launch, 4.0, 3.0, 1.0);
  Records = Registry.records();
  ASSERT_EQ(Records.size(), FP.numLaunches()); // Merged, not appended.
  EXPECT_EQ(Records[0].Runs, 2u);
  EXPECT_DOUBLE_EQ(Records[0].MeasuredMs, 6.0);
  EXPECT_DOUBLE_EQ(Records[0].measuredMeanMs(), 3.0);
  EXPECT_GT(Records[0].ratio(), 0.0);

  EXPECT_GT(Registry.geomeanRatio(), 0.0);
  std::string Table = Registry.renderTable();
  EXPECT_NE(Table.find(Launch), std::string::npos);
  EXPECT_NE(Table.find("geomean"), std::string::npos);
  std::string Json = Registry.toJson();
  EXPECT_NE(Json.find("\"predicted_ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"measured_mean_ms\""), std::string::npos);
}

TEST_F(TraceTest, FusedVmRecordsLaunchMetricsWhenEnabled) {
  MetricsRegistry &Registry = MetricsRegistry::global();
  Registry.setEnabled(true);
  TraceRecorder::global().setEnabled(true);

  Program P = makeSobel(24, 24);
  FusedProgram FP = wholeProgramFused(P);
  std::vector<Image> Pool = seededPool(P, 7);
  ExecutionOptions Options;
  Options.Threads = 1;
  runFusedVm(FP, Pool, Options);

  // Every launch carries both sides and an interior/halo split.
  std::vector<LaunchModelRecord> Records = Registry.records();
  ASSERT_EQ(Records.size(), FP.numLaunches());
  for (const LaunchModelRecord &Record : Records) {
    EXPECT_EQ(Record.Runs, 1u);
    EXPECT_GT(Record.PredictedMs, 0.0);
    EXPECT_GT(Record.MeasuredMs, 0.0);
    EXPECT_GE(Record.InteriorMs + Record.HaloMs, 0.0);
  }
  // And the trace saw one "launch <name>" span per launch.
  unsigned LaunchSpans = 0;
  for (const TraceSpanRecord &Span : TraceRecorder::global().spans())
    if (Span.Name.rfind("launch ", 0) == 0)
      ++LaunchSpans;
  EXPECT_EQ(LaunchSpans, FP.numLaunches());
}

TEST_F(TraceTest, DisabledExecutionRecordsNothing) {
  Program P = makeSobel(16, 16);
  FusedProgram FP = wholeProgramFused(P);
  std::vector<Image> Pool = seededPool(P, 9);
  ExecutionOptions Options;
  Options.Threads = 1;
  runFusedVm(FP, Pool, Options);
  EXPECT_TRUE(TraceRecorder::global().spans().empty());
  EXPECT_TRUE(MetricsRegistry::global().records().empty());
}

} // namespace
