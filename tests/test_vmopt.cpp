//===- tests/test_vmopt.cpp - Fact-gated bytecode optimizer ---------------------===//
//
// The interval-fact-gated bytecode optimizer (ir/VmOptimizer.h): unit
// tests of the bit-exact Min/Max/Select decision predicates, the
// differential suite proving optimized session plans bit-identical to
// unoptimized ones across every registry pipeline x VM mode x tiling
// strategy, the validator re-pass over optimized streams, the
// KF_OPT / OptMode::Off escape hatch, the removed-instruction stats, and
// the KF-B09 mutation test for the JIT refusal gate.
//
//===----------------------------------------------------------------------===//

#include "analysis/BytecodeValidator.h"
#include "analysis/IntervalAnalysis.h"
#include "frontend/Parser.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "jit/JitProgram.h"
#include "pipelines/Pipelines.h"
#include "sim/Session.h"
#include "support/Random.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <cstdlib>
#include <fstream>
#include <functional>

using namespace kf;

namespace {

//===--------------------------------------------------------------------===//
// Decision predicates
//===--------------------------------------------------------------------===//

RegInterval iv(float Lo, float Hi, bool MayNaN = false) {
  return RegInterval::range(Lo, Hi, MayNaN);
}

TEST(ClampDecisions, MinDecides) {
  // min(A, B) = (B < A) ? B : A -- returns A when either side is NaN.
  EXPECT_EQ(decideMin(iv(0, 1), iv(2, 3)), ClampDecision::TakeA);
  EXPECT_EQ(decideMin(iv(0, 1), iv(1, 2)), ClampDecision::TakeA); // ties -> A
  EXPECT_EQ(decideMin(iv(2, 3), iv(0, 1)), ClampDecision::TakeB);
  EXPECT_EQ(decideMin(iv(0, 2), iv(1, 3)), ClampDecision::Keep);
  // NaN possibilities: TakeA stays sound (NaN A is returned either way);
  // TakeB is not (a NaN on either side makes the result A).
  EXPECT_EQ(decideMin(iv(0, 1, true), iv(2, 3)), ClampDecision::TakeA);
  EXPECT_EQ(decideMin(iv(2, 3, true), iv(0, 1)), ClampDecision::Keep);
  EXPECT_EQ(decideMin(iv(2, 3), iv(0, 1, true)), ClampDecision::Keep);
  // An always-NaN A is returned by the exact semantics.
  RegInterval AlwaysNaN;
  AlwaysNaN.MayNaN = true;
  EXPECT_EQ(decideMin(AlwaysNaN, iv(0, 1)), ClampDecision::TakeA);
  // Bottom facts decide nothing.
  EXPECT_EQ(decideMin(RegInterval(), iv(0, 1)), ClampDecision::Keep);
  EXPECT_EQ(decideMin(iv(0, 1), RegInterval()), ClampDecision::Keep);
}

TEST(ClampDecisions, MaxDecides) {
  // max(A, B) = (A < B) ? B : A.
  EXPECT_EQ(decideMax(iv(2, 3), iv(0, 1)), ClampDecision::TakeA);
  EXPECT_EQ(decideMax(iv(1, 2), iv(0, 1)), ClampDecision::TakeA); // ties -> A
  EXPECT_EQ(decideMax(iv(0, 1), iv(2, 3)), ClampDecision::TakeB);
  EXPECT_EQ(decideMax(iv(0, 2), iv(1, 3)), ClampDecision::Keep);
  EXPECT_EQ(decideMax(iv(2, 3, true), iv(0, 1)), ClampDecision::TakeA);
  EXPECT_EQ(decideMax(iv(0, 1, true), iv(2, 3)), ClampDecision::Keep);
  EXPECT_EQ(decideMax(iv(0, 1), iv(2, 3, true)), ClampDecision::Keep);
}

TEST(ClampDecisions, SignedZeroKeepsMinMaxUndecided) {
  // [-0, +0] vs [0, 0]: both compare equal, so the comparison never
  // fires and the exact semantics return A -- equal bounds decide TakeA,
  // and that is bit-identical even for mixed zero signs because
  // std::min/std::max return A on ties.
  float NegZero = -0.0f;
  EXPECT_EQ(decideMin(iv(NegZero, 0), iv(0, 0)), ClampDecision::TakeA);
  EXPECT_EQ(decideMax(iv(NegZero, 0), iv(0, 0)), ClampDecision::TakeA);
}

TEST(ClampDecisions, SelectDecides) {
  // Sel != 0 ? A : B; NaN != 0 is true, -0 == 0 is false.
  EXPECT_EQ(decideSelect(iv(1, 2)), ClampDecision::TakeA);
  EXPECT_EQ(decideSelect(iv(-2, -1)), ClampDecision::TakeA);
  EXPECT_EQ(decideSelect(iv(0, 0)), ClampDecision::TakeB);
  EXPECT_EQ(decideSelect(iv(-0.0f, 0.0f)), ClampDecision::TakeB);
  EXPECT_EQ(decideSelect(iv(0, 1)), ClampDecision::Keep);
  EXPECT_EQ(decideSelect(iv(-1, 1)), ClampDecision::Keep);
  // A possibly-NaN zero cannot take B (NaN selects A) ...
  EXPECT_EQ(decideSelect(iv(0, 0, true)), ClampDecision::Keep);
  // ... but a possibly-NaN nonzero still takes A.
  EXPECT_EQ(decideSelect(iv(1, 2, true)), ClampDecision::TakeA);
  // An always-NaN condition takes A.
  RegInterval AlwaysNaN;
  AlwaysNaN.MayNaN = true;
  EXPECT_EQ(decideSelect(AlwaysNaN), ClampDecision::TakeA);
  // Bottom decides nothing.
  EXPECT_EQ(decideSelect(RegInterval()), ClampDecision::Keep);
}

//===--------------------------------------------------------------------===//
// Shared fixtures
//===--------------------------------------------------------------------===//

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

/// A registry pipeline fused at test size; the Program lives behind a
/// stable pointer because FusedProgram::Source refers into it.
struct BuiltPipeline {
  std::unique_ptr<Program> P;
  FusedProgram FP;
};

BuiltPipeline fuseRegistry(const PipelineSpec &Spec) {
  BuiltPipeline B;
  B.P = std::make_unique<Program>(Spec.Builder(96, 64));
  MinCutFusionResult Result = runMinCutFusion(*B.P, paperModel());
  B.FP = fuseProgram(*B.P, Result.Blocks, FusionStyle::Optimized);
  return B;
}

/// Fills the plan's external inputs with seeded random data in the
/// declared [0, 1] contract.
void fillInputs(const CompiledPlan &Plan, std::vector<Image> &Frame,
                uint64_t Seed) {
  Rng Gen(Seed);
  for (ImageId In : Plan.ExternalInputs) {
    const ImageInfo &Info = Plan.Shapes[In];
    Frame[In] = makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen,
                                0.0f, 1.0f);
  }
}

/// Runs one frame of \p FP under \p Options and returns the terminal
/// outputs.
std::vector<Image> runOneFrame(const FusedProgram &FP, const Program &P,
                               const ExecutionOptions &Options,
                               PlanCache &Cache, uint64_t Seed) {
  PipelineSession Session(FP, Options, &Cache);
  std::vector<Image> Frame = Session.acquireFrame();
  fillInputs(*Session.plan(), Frame, Seed);
  Session.runFrame(Frame);
  std::vector<Image> Outputs;
  for (ImageId Out : P.terminalOutputs())
    Outputs.push_back(Frame[Out]);
  return Outputs;
}

//===--------------------------------------------------------------------===//
// Differential: optimized == unoptimized, bit for bit
//===--------------------------------------------------------------------===//

TEST(VmOptDifferential, RegistryBitIdenticalAcrossModesAndTilings) {
  PlanCache Cache(64);
  for (const PipelineSpec &Spec : paperPipelines()) {
    SCOPED_TRACE(Spec.Name);
    BuiltPipeline B = fuseRegistry(Spec);
    const Program &P = *B.P;
    const FusedProgram &FP = B.FP;
    uint64_t Seed = 0xD1FF ^ std::hash<std::string>()(Spec.Name);

    ExecutionOptions Reference;
    Reference.Opt = OptMode::Off;
    Reference.Mode = VmMode::Scalar;
    std::vector<Image> Want = runOneFrame(FP, P, Reference, Cache, Seed);

    for (VmMode Mode : {VmMode::Scalar, VmMode::Span, VmMode::Jit}) {
      for (TilingStrategy Tiling :
           {TilingStrategy::InteriorHalo, TilingStrategy::Overlapped}) {
        for (OptMode Opt : {OptMode::On, OptMode::Off}) {
          ExecutionOptions Options;
          Options.Mode = Mode;
          Options.Tiling = Tiling;
          Options.Opt = Opt;
          std::vector<Image> Got = runOneFrame(FP, P, Options, Cache, Seed);
          ASSERT_EQ(Got.size(), Want.size());
          for (size_t I = 0; I != Want.size(); ++I)
            EXPECT_DOUBLE_EQ(maxAbsDifference(Got[I], Want[I]), 0.0)
                << Spec.Name << " mode=" << vmModeName(Mode)
                << " tiling=" << tilingStrategyName(Tiling)
                << " opt=" << optModeName(Opt) << " output " << I;
        }
      }
    }
  }
}

TEST(VmOptDifferential, OptimizedStreamsRevalidate) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    SCOPED_TRACE(Spec.Name);
    BuiltPipeline B = fuseRegistry(Spec);
    const FusedProgram &FP = B.FP;
    ExecutionOptions Options;
    Options.Opt = OptMode::On;
    std::shared_ptr<const CompiledPlan> Plan = compilePlan(FP, Options);
    ASSERT_TRUE(Plan != nullptr);
    for (const CompiledLaunch &Launch : Plan->Launches) {
      DiagnosticEngine DE;
      validateStagedProgram(Launch.Code, Launch.Root, Plan->Shapes, DE);
      EXPECT_EQ(DE.errorCount(), 0u)
          << Launch.Name << ":\n" << DE.renderText();
    }
  }
}

TEST(VmOptDifferential, OptimizerShrinksOrKeepsEveryRegistryLaunch) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    BuiltPipeline B = fuseRegistry(Spec);
    const FusedProgram &FP = B.FP;
    ExecutionOptions On;
    On.Opt = OptMode::On;
    ExecutionOptions Off;
    Off.Opt = OptMode::Off;
    std::shared_ptr<const CompiledPlan> Optimized = compilePlan(FP, On);
    std::shared_ptr<const CompiledPlan> Baseline = compilePlan(FP, Off);
    ASSERT_EQ(Optimized->Launches.size(), Baseline->Launches.size());
    for (size_t I = 0; I != Optimized->Launches.size(); ++I) {
      size_t OptInsts = 0, BaseInsts = 0;
      for (const VmStage &S : Optimized->Launches[I].Code.Stages)
        OptInsts += S.Code.Insts.size();
      for (const VmStage &S : Baseline->Launches[I].Code.Stages)
        BaseInsts += S.Code.Insts.size();
      EXPECT_LE(OptInsts, BaseInsts) << Spec.Name;
      EXPECT_EQ(Baseline->Launches[I].OptStats.removedInsts(), 0u);
    }
  }
}

//===--------------------------------------------------------------------===//
// Escape hatch
//===--------------------------------------------------------------------===//

/// Saves and restores KF_OPT around a test.
struct ScopedKfOpt {
  ScopedKfOpt(const char *Value) {
    const char *Saved = std::getenv("KF_OPT");
    Had = Saved != nullptr;
    Old = Saved ? Saved : "";
    if (Value)
      ::setenv("KF_OPT", Value, 1);
    else
      ::unsetenv("KF_OPT");
  }
  ~ScopedKfOpt() {
    if (Had)
      ::setenv("KF_OPT", Old.c_str(), 1);
    else
      ::unsetenv("KF_OPT");
  }
  bool Had = false;
  std::string Old;
};

TEST(OptMode, ResolutionAndEnvOverride) {
  {
    ScopedKfOpt Env(nullptr);
    EXPECT_EQ(resolveOptMode(OptMode::Auto), OptMode::On);
    EXPECT_EQ(resolveOptMode(OptMode::On), OptMode::On);
    EXPECT_EQ(resolveOptMode(OptMode::Off), OptMode::Off);
  }
  {
    ScopedKfOpt Env("off");
    EXPECT_EQ(resolveOptMode(OptMode::Auto), OptMode::Off);
    // An explicit request beats the environment.
    EXPECT_EQ(resolveOptMode(OptMode::On), OptMode::On);
  }
  {
    ScopedKfOpt Env("on");
    EXPECT_EQ(resolveOptMode(OptMode::Auto), OptMode::On);
    EXPECT_EQ(resolveOptMode(OptMode::Off), OptMode::Off);
  }
  EXPECT_STREQ(optModeName(OptMode::Auto), "auto");
  EXPECT_STREQ(optModeName(OptMode::On), "on");
  EXPECT_STREQ(optModeName(OptMode::Off), "off");
}

TEST(OptMode, KfOptOffDisablesTheRewriteUnderAuto) {
  ScopedKfOpt Env("off");
  BuiltPipeline B = fuseRegistry(*findPipeline("harris"));
  ExecutionOptions Options; // Opt = Auto resolves via KF_OPT
  std::shared_ptr<const CompiledPlan> Plan = compilePlan(B.FP, Options);
  for (const CompiledLaunch &Launch : Plan->Launches)
    EXPECT_EQ(Launch.OptStats.removedInsts(), 0u) << Launch.Name;
}

//===--------------------------------------------------------------------===//
// Stats on known-reducible programs
//===--------------------------------------------------------------------===//

/// Locates tests/fixtures/analysis relative to the test binary's working
/// directory (ctest runs in build/tests).
std::string fixtureDir() {
  for (const char *Candidate :
       {"fixtures/analysis/", "tests/fixtures/analysis/",
        "../tests/fixtures/analysis/", "../../tests/fixtures/analysis/",
        "../../../tests/fixtures/analysis/"}) {
    std::ifstream Probe(std::string(Candidate) + "noop_clamp.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

/// Compiles a fixture pipeline into an Opt=On plan.
std::shared_ptr<const CompiledPlan> planForFixture(const std::string &File,
                                                   FusedProgram &FP,
                                                   ParseResult &Parsed) {
  std::string Dir = fixtureDir();
  EXPECT_FALSE(Dir.empty()) << "tests/fixtures/analysis not found";
  Parsed = parsePipelineFile(Dir + File);
  EXPECT_TRUE(Parsed.Prog != nullptr)
      << (Parsed.Errors.empty() ? "" : Parsed.Errors.front());
  if (!Parsed.Prog)
    return nullptr;
  MinCutFusionResult Result = runMinCutFusion(*Parsed.Prog, paperModel());
  FP = fuseProgram(*Parsed.Prog, Result.Blocks, FusionStyle::Optimized);
  ExecutionOptions Options;
  Options.Opt = OptMode::On;
  return compilePlan(FP, Options);
}

TEST(VmOptStatsCounters, DecidedSelectIsRemoved) {
  FusedProgram FP;
  ParseResult Parsed;
  std::shared_ptr<const CompiledPlan> Plan =
      planForFixture("decided_select.kfp", FP, Parsed);
  ASSERT_TRUE(Plan != nullptr);
  unsigned Selects = 0, Removed = 0;
  for (const CompiledLaunch &Launch : Plan->Launches) {
    Selects += Launch.OptStats.SelectsDecided;
    Removed += Launch.OptStats.removedInsts();
  }
  EXPECT_GE(Selects, 1u);
  EXPECT_GE(Removed, 1u);
}

TEST(VmOptStatsCounters, NoopClampIsRemoved) {
  FusedProgram FP;
  ParseResult Parsed;
  std::shared_ptr<const CompiledPlan> Plan =
      planForFixture("noop_clamp.kfp", FP, Parsed);
  ASSERT_TRUE(Plan != nullptr);
  unsigned Clamps = 0, Removed = 0;
  for (const CompiledLaunch &Launch : Plan->Launches) {
    Clamps += Launch.OptStats.ClampsRemoved;
    Removed += Launch.OptStats.removedInsts();
  }
  EXPECT_GE(Clamps, 1u);
  EXPECT_GE(Removed, 1u);
  // And the rewritten plan still computes the same frame.
  ASSERT_TRUE(Parsed.Prog != nullptr);
  PlanCache Cache(8);
  ExecutionOptions On;
  On.Opt = OptMode::On;
  ExecutionOptions Off;
  Off.Opt = OptMode::Off;
  std::vector<Image> Want = runOneFrame(FP, *Parsed.Prog, Off, Cache, 99);
  std::vector<Image> Got = runOneFrame(FP, *Parsed.Prog, On, Cache, 99);
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I != Want.size(); ++I)
    EXPECT_DOUBLE_EQ(maxAbsDifference(Got[I], Want[I]), 0.0);
}

//===--------------------------------------------------------------------===//
// KF-B09 JIT refusal gate (mutation test)
//===--------------------------------------------------------------------===//

TEST(JitRefusal, NonFiniteConstIsKfB09AndJitRefuses) {
  BuiltPipeline B = fuseRegistry(*findPipeline("harris"));
  ExecutionOptions Options;
  Options.Opt = OptMode::Off;
  std::shared_ptr<const CompiledPlan> Plan = compilePlan(B.FP, Options);
  ASSERT_FALSE(Plan->Launches.empty());

  // Mutate one Const immediate to infinity: the validator must flag
  // KF-B09 (a warning, not an error) and the JIT gate must refuse even
  // though no *error* was reported.
  StagedVmProgram Mutated;
  uint16_t Root = 0;
  int Halo = 0;
  ImageId Output = 0;
  bool Found = false;
  for (const CompiledLaunch &Launch : Plan->Launches) {
    for (const VmStage &Stage : Launch.Code.Stages)
      for (const VmInst &Inst : Stage.Code.Insts)
        if (Inst.Op == VmOp::Const) {
          Mutated = Launch.Code;
          Root = Launch.Root;
          Halo = Launch.Halo;
          Output = Launch.Output;
          Found = true;
          break;
        }
    if (Found)
      break;
  }
  ASSERT_TRUE(Found) << "no Const instruction in any harris launch";
  for (VmStage &Stage : Mutated.Stages)
    for (VmInst &Inst : Stage.Code.Insts)
      if (Inst.Op == VmOp::Const)
        Inst.Imm = INFINITY;

  DiagnosticEngine DE;
  validateStagedProgram(Mutated, Root, Plan->Shapes, DE);
  EXPECT_TRUE(DE.hasCode("KF-B09")) << DE.renderText();
  EXPECT_EQ(DE.errorCount(), 0u) << DE.renderText();
  EXPECT_EQ(compileJitProgram(Mutated, Root, Plan->Shapes), nullptr);

  // The refused launch still runs -- a Jit request falls back to the
  // span interpreter, bit-identical to the scalar reference on the
  // mutated program.
  std::vector<Image> Pool(Plan->Shapes.size());
  fillInputs(*Plan, Pool, 1234);
  for (size_t I = 0; I != Pool.size(); ++I)
    if (Pool[I].empty())
      Pool[I] = Image(Plan->Shapes[I].Width, Plan->Shapes[I].Height,
                      Plan->Shapes[I].Channels);
  const ImageInfo &Info = Plan->Shapes[Output];
  ThreadPool TP(2);
  VmScratch Scratch;

  Image ScalarOut(Info.Width, Info.Height, Info.Channels);
  ExecutionOptions Scalar;
  Scalar.Mode = VmMode::Scalar;
  runCompiledLaunch(Mutated, Root, Halo, Pool, ScalarOut, Scalar, TP,
                    Scratch);

  Image JitOut(Info.Width, Info.Height, Info.Channels);
  ExecutionOptions Jit;
  Jit.Mode = VmMode::Jit;
  LaunchTiming Timing;
  runCompiledLaunch(Mutated, Root, Halo, Pool, JitOut, Jit, TP, Scratch,
                    &Timing, /*Jit=*/nullptr);
  EXPECT_NE(Timing.Mode, VmMode::Jit); // the gate refused; span ran
  EXPECT_EQ(countDifferingSamples(JitOut, ScalarOut, 0.0), 0);
}

} // namespace
