//===- tests/test_backend.cpp - CUDA emitter golden checks ----------------------===//

#include "backend/cuda/CudaEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

FusedProgram optimizedFusion(const Program &P) {
  MinCutFusionResult Fusion = runMinCutFusion(P, paperModel());
  return fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
}

TEST(CudaEmitter, UnfusedSobelEmitsThreeKernels) {
  Program P = makeSobel(64, 64);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCudaProgram(FP);
  EXPECT_NE(Code.find("__global__ void sobel_dx_kernel"), std::string::npos);
  EXPECT_NE(Code.find("__global__ void sobel_dy_kernel"), std::string::npos);
  EXPECT_NE(Code.find("__global__ void sobel_mag_kernel"),
            std::string::npos);
  EXPECT_NE(Code.find("sqrtf("), std::string::npos);
  EXPECT_NE(Code.find("__constant__ float sobel_mask0[9]"),
            std::string::npos);
}

TEST(CudaEmitter, FusedSobelEmitsOneKernelWithStages) {
  Program P = makeSobel(64, 64);
  FusedProgram FP = optimizedFusion(P);
  std::string Code = emitCudaProgram(FP);
  // One launchable kernel...
  EXPECT_NE(Code.find("__global__ void sobel_dx_dy_mag_kernel"),
            std::string::npos);
  EXPECT_EQ(Code.find("__global__ void sobel_dx_kernel"),
            std::string::npos);
  // ...with device stage functions for the fused producers.
  EXPECT_NE(Code.find("__device__ float sobel_dx_dy_mag_dx"),
            std::string::npos);
  EXPECT_NE(Code.find("placement register"), std::string::npos);
}

TEST(CudaEmitter, RecomputedStageAppliesIndexExchange) {
  Program P = makeHarris(64, 64);
  FusedProgram FP = optimizedFusion(P);
  std::string Code = emitCudaProgram(FP);
  // The gx stage window-reads the recomputed sx: the emitted code must
  // exchange indices with the consumer's border mode before the call.
  EXPECT_NE(Code.find("index exchange (clamp)"), std::string::npos);
  EXPECT_NE(Code.find("idx_clamp("), std::string::npos);
  EXPECT_NE(Code.find("harris_sx_gx_sx"), std::string::npos);
}

TEST(CudaEmitter, BorderHelpersEmittedOnce) {
  Program P = makeBlurChain(32, 32, BorderMode::Mirror);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCudaProgram(FP);
  EXPECT_NE(Code.find("__device__ int idx_mirror"), std::string::npos);
  EXPECT_NE(Code.find("idx_mirror("), std::string::npos);
}

TEST(CudaEmitter, ConstantBorderInlinesValue) {
  Program P = makeBlurChain(32, 32, BorderMode::Constant);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCudaProgram(FP);
  // Constant border: out-of-bounds reads short-circuit to the constant.
  EXPECT_NE(Code.find("? 0.000000f :"), std::string::npos);
}

TEST(CudaEmitter, StencilLoopsAreEmitted) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCudaKernel(FP, 0);
  EXPECT_NE(Code.find("for (int dy0 = -1; dy0 <= 1; ++dy0)"),
            std::string::npos);
  EXPECT_NE(Code.find("blurchain_mask0["), std::string::npos);
}

TEST(CudaEmitter, RgbKernelLoopsOverChannels) {
  Program P = makeNight(32, 32);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitCudaProgram(FP);
  EXPECT_NE(Code.find("for (int c = 0; c < 3; ++c)"), std::string::npos);
}

TEST(CudaEmitter, HeaderMentionsStyleAndLaunchCount) {
  Program P = makeUnsharp(32, 32);
  FusedProgram FP = optimizedFusion(P);
  std::string Code = emitCudaProgram(FP);
  EXPECT_NE(Code.find("style: optimized, launches: 1"), std::string::npos);
}

TEST(CudaEmitter, DeterministicOutput) {
  Program P = makeHarris(64, 64);
  FusedProgram FP = optimizedFusion(P);
  EXPECT_EQ(emitCudaProgram(FP), emitCudaProgram(FP));
}

} // namespace
