//===- tests/test_tuner_plot.cpp - Autotuner & ASCII plots ----------------------===//

#include "support/AsciiPlot.h"
#include "pipelines/Pipelines.h"
#include "sim/Tuner.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

TEST(Tuner, DefaultGridCrossesThresholdsAndTiles) {
  std::vector<TuneCandidate> Grid = defaultTuneGrid();
  EXPECT_EQ(Grid.size(), 30u); // 6 thresholds x 5 tiles.
}

TEST(Tuner, BestIsNoWorseThanAnyExploredPoint) {
  Program P = makeHarris(128, 128);
  HardwareModel HW;
  CostModelParams Params;
  TuneResult Result = tuneFusion(P, DeviceSpec::gtx680(), HW, Params);
  ASSERT_EQ(Result.Explored.size(), defaultTuneGrid().size());
  for (const TunePoint &Point : Result.Explored)
    EXPECT_LE(Result.Best.TimeMs, Point.TimeMs);
  EXPECT_EQ(validatePartition(P, Result.BestPartition), "");
}

TEST(Tuner, SingleCandidateGridIsIdentity) {
  Program P = makeSobel(64, 64);
  HardwareModel HW;
  CostModelParams Params;
  TuneCandidate Default;
  TuneResult Result =
      tuneFusion(P, DeviceSpec::k20c(), HW, Params, {Default});
  EXPECT_EQ(Result.Explored.size(), 1u);
  EXPECT_DOUBLE_EQ(Result.Best.TimeMs, Result.Explored.front().TimeMs);
  EXPECT_DOUBLE_EQ(Result.Best.Candidate.SharedMemThreshold, 2.0);
}

TEST(Tuner, Deterministic) {
  Program P1 = makeUnsharp(64, 64);
  Program P2 = makeUnsharp(64, 64);
  HardwareModel HW;
  CostModelParams Params;
  TuneResult A = tuneFusion(P1, DeviceSpec::gtx745(), HW, Params);
  TuneResult B = tuneFusion(P2, DeviceSpec::gtx745(), HW, Params);
  EXPECT_DOUBLE_EQ(A.Best.TimeMs, B.Best.TimeMs);
  EXPECT_DOUBLE_EQ(A.Best.Candidate.SharedMemThreshold,
                   B.Best.Candidate.SharedMemThreshold);
}

TEST(AsciiPlot, RendersWhiskersBoxAndMedian) {
  BoxStats Stats;
  Stats.Min = 1.0;
  Stats.Q25 = 4.0;
  Stats.Median = 5.0;
  Stats.Q75 = 6.0;
  Stats.Max = 9.0;
  std::string Out =
      renderBoxPlots({BoxPlotRow{"row", Stats}}, /*Width=*/41,
                     /*AxisMax=*/10.0);
  // Whisker dashes, box brackets, and the median bar all present.
  EXPECT_NE(Out.find('-'), std::string::npos);
  EXPECT_NE(Out.find('['), std::string::npos);
  EXPECT_NE(Out.find(']'), std::string::npos);
  EXPECT_NE(Out.find('|'), std::string::npos);
  // Median value printed at the end of the row.
  EXPECT_NE(Out.find("5.000"), std::string::npos);
  // Median bar lands mid-axis: column 4 + (5/10)*40 = 26 overall.
  size_t Bar = Out.find('|');
  EXPECT_EQ(Bar, 5u + 20u); // label(3) + 2 spaces + 20 columns.
}

TEST(AsciiPlot, SharedAxisAcrossRows) {
  BoxStats Small;
  Small.Min = Small.Q25 = Small.Median = Small.Q75 = Small.Max = 1.0;
  BoxStats Large = Small;
  Large.Max = 100.0;
  Large.Median = 50.0;
  std::string Out = renderBoxPlots(
      {BoxPlotRow{"small", Small}, BoxPlotRow{"large", Large}}, 30);
  // The axis ends at the largest maximum.
  EXPECT_NE(Out.find("100.00"), std::string::npos);
}

} // namespace
