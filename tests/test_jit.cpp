//===- tests/test_jit.cpp - JIT backend vs span-mode VM execution ---------------===//
//
// The JIT execution backend (VmMode::Jit, src/jit) compiles validated
// fused bytecode into chains of width-specialized op cells and must be
// bit-identical to the span interpreter on every bundled pipeline, at
// every thread count, for every border mode, under both tiling
// strategies, and across every tail width around the lane boundary. The
// span mode is itself verified against the scalar mode and the AST
// walker (test_vmspan.cpp, test_fusedvm.cpp), so jit == span closes the
// chain back to the semantic reference.
//
// Also covers: the plan-time artifact (compilePlan populates
// CompiledLaunch::Jit and Auto prefers it), KF_VM=jit resolution, and
// the validator gate (corrupted bytecode is refused, never compiled --
// the systematic sweep lives in test_bytecode_validator.cpp).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "jit/JitProgram.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Session.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace kf;

namespace {

/// Fuses the whole program into one block (forces fusion regardless of
/// the benefit model).
Partition wholeProgramPartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

/// Builds a pipeline at test size with a deterministic random input.
struct TestApp {
  Program P;
  Image Input;
};

TestApp makeTestApp(const std::string &Name) {
  const PipelineSpec *Spec = findPipeline(Name);
  EXPECT_NE(Spec, nullptr);
  // Wide enough that interior rows span several lane chunks plus a tail.
  int W = VmLaneWidth * 2 + 21;
  TestApp App{Spec->Builder(W, 24), Image()};
  const ImageInfo &InInfo = App.P.image(0);
  Rng Gen(977);
  App.Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);
  return App;
}

void expectPoolsIdentical(const Program &P, const std::vector<Image> &Got,
                          const std::vector<Image> &Want,
                          const std::string &Tag) {
  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    EXPECT_EQ(Got[Id].empty(), Want[Id].empty())
        << Tag << " image " << P.image(Id).Name;
    if (Got[Id].empty() || Want[Id].empty())
      continue;
    EXPECT_DOUBLE_EQ(maxAbsDifference(Got[Id], Want[Id]), 0.0)
        << Tag << " image " << P.image(Id).Name;
  }
}

std::vector<int> threadSweep() {
  unsigned Hardware = std::max(std::thread::hardware_concurrency(), 1u);
  return {1, 3, static_cast<int>(Hardware)};
}

std::vector<ImageInfo> poolShapes(const Program &P) {
  std::vector<ImageInfo> Shapes;
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    Shapes.push_back(P.image(Id));
  return Shapes;
}

/// Saves and clears KF_VM for a test body, restoring it on destruction:
/// Auto-mode assertions must not depend on the ambient environment.
struct ScopedClearKfVm {
  ScopedClearKfVm() {
    const char *Saved = std::getenv("KF_VM");
    Had = Saved != nullptr;
    Value = Saved ? Saved : "";
    ::unsetenv("KF_VM");
  }
  ~ScopedClearKfVm() {
    if (Had)
      ::setenv("KF_VM", Value.c_str(), 1);
    else
      ::unsetenv("KF_VM");
  }
  bool Had = false;
  std::string Value;
};

/// JIT vs span differential across the bundled applications, fused with
/// the paper's min-cut partition, at 1 / 3 / hardware threads, under
/// both tiling strategies.
class JitEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(JitEquivalence, FusedJitMatchesSpanAcrossThreadsAndTiling) {
  TestApp App = makeTestApp(GetParam());
  Partition Blocks = runMinCutFusion(App.P, HardwareModel()).Blocks;
  FusedProgram FP = fuseProgram(App.P, Blocks, FusionStyle::Optimized);

  for (TilingStrategy Tiling :
       {TilingStrategy::InteriorHalo, TilingStrategy::Overlapped}) {
    for (int Threads : threadSweep()) {
      ExecutionOptions Span;
      Span.Threads = Threads;
      Span.TileHeight = 3; // Force multiple tiles even on small images.
      Span.Mode = VmMode::Span;
      Span.Tiling = Tiling;
      ExecutionOptions Jit = Span;
      Jit.Mode = VmMode::Jit;

      std::vector<Image> SpanPool = makeImagePool(App.P);
      SpanPool[0] = App.Input;
      runFusedVm(FP, SpanPool, Span);

      std::vector<Image> JitPool = makeImagePool(App.P);
      JitPool[0] = App.Input;
      runFusedVm(FP, JitPool, Jit);

      expectPoolsIdentical(
          App.P, JitPool, SpanPool,
          GetParam() + " tiling=" + tilingStrategyName(Tiling) +
              " threads=" + std::to_string(Threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, JitEquivalence,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night"),
                         [](const auto &Info) { return Info.param; });

/// Border-mode sweep: jit and span must agree for every border mode,
/// with and without the index exchange (the halo path is shared, but the
/// interior/halo split depends on the reach, so sweep both).
class JitBorder : public ::testing::TestWithParam<BorderMode> {};

TEST_P(JitBorder, BlurChainJitMatchesSpan) {
  BorderMode Mode = GetParam();
  int W = VmLaneWidth + 19, H = 14;
  Program P = makeBlurChain(W, H, Mode);
  Rng Gen(4242);
  Image Input = makeRandomImage(W, H, 1, Gen);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);

  for (bool Exchange : {true, false}) {
    ExecutionOptions Span;
    Span.UseIndexExchange = Exchange;
    Span.Mode = VmMode::Span;
    ExecutionOptions Jit = Span;
    Jit.Mode = VmMode::Jit;

    std::vector<Image> SpanPool = makeImagePool(P);
    SpanPool[0] = Input;
    runFusedVm(FP, SpanPool, Span);

    std::vector<Image> JitPool = makeImagePool(P);
    JitPool[0] = Input;
    runFusedVm(FP, JitPool, Jit);

    EXPECT_DOUBLE_EQ(maxAbsDifference(JitPool[2], SpanPool[2]), 0.0)
        << borderModeName(Mode)
        << (Exchange ? " (index exchange)" : " (naive)");
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, JitBorder,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return std::string(borderModeName(Info.param));
                         });

/// Tail handling: spans of width 1, VmLaneWidth - 1, VmLaneWidth and
/// VmLaneWidth + 1 must each match per-pixel interior evaluation exactly
/// -- the widths that exercise both the full and the tail cell chain.
TEST(JitVm, TailWidthsMatchPerPixel) {
  int W = VmLaneWidth + 16, H = 12;
  Program P = makeBlurChain(W, H, BorderMode::Mirror);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);

  std::shared_ptr<const JitProgram> JP =
      compileJitProgram(SP, Root, poolShapes(P));
  ASSERT_NE(JP, nullptr);
  EXPECT_EQ(JP->NumRegs, SP.NumRegs);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(19);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  int Halo = SP.Reach[Root];
  int Y = H / 2;
  std::vector<float> LaneRegs(static_cast<size_t>(JP->NumRegs) *
                              VmLaneWidth);
  std::vector<float> PixelRegs(SP.NumRegs);

  for (int Width :
       {1, VmLaneWidth - 1, VmLaneWidth, VmLaneWidth + 1}) {
    int X0 = Halo, X1 = X0 + Width;
    ASSERT_LE(X1, W - Halo) << "test image too narrow";
    std::vector<float> Out(Width);
    runJitSpan(*JP, Pool, Y, X0, X1, 0, LaneRegs.data(), Out.data());
    for (int X = X0; X != X1; ++X)
      EXPECT_FLOAT_EQ(Out[X - X0], runStagedVmInterior(SP, Root, Pool, X,
                                                       Y, 0,
                                                       PixelRegs.data()))
          << "width=" << Width << " x=" << X;
  }
}

/// Strided output: the jit driver must honor OutStride (the
/// multi-channel destination layout the tiled executor uses).
TEST(JitVm, StridedOutputMatchesDense) {
  int W = VmLaneWidth + 16, H = 10;
  Program P = makeBlurChain(W, H, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);

  std::shared_ptr<const JitProgram> JP =
      compileJitProgram(SP, Root, poolShapes(P));
  ASSERT_NE(JP, nullptr);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(31);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  int Halo = SP.Reach[Root];
  int X0 = Halo, X1 = W - Halo, Y = 4, Width = X1 - X0;
  std::vector<float> LaneRegs(static_cast<size_t>(JP->NumRegs) *
                              VmLaneWidth);

  std::vector<float> Dense(Width);
  runJitSpan(*JP, Pool, Y, X0, X1, 0, LaneRegs.data(), Dense.data());

  const int Stride = 3;
  std::vector<float> Strided(static_cast<size_t>(Width) * Stride, -1.0f);
  runJitSpan(*JP, Pool, Y, X0, X1, 0, LaneRegs.data(), Strided.data(),
             Stride);

  for (int I = 0; I != Width; ++I) {
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride], Dense[I])
        << "i=" << I;
    // The gaps stay untouched.
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride + 1], -1.0f);
    EXPECT_FLOAT_EQ(Strided[static_cast<size_t>(I) * Stride + 2], -1.0f);
  }
}

/// Every registry pipeline's pristine fused bytecode must JIT-compile
/// (the validator passes it, so the gate must too), with a flattened
/// cell count of at least the staged instruction count.
TEST(JitVm, PristineRegistryProgramsCompile) {
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(64, 48);
    FusedProgram FP = fuseProgram(
        P, runMinCutFusion(P, HardwareModel()).Blocks,
        FusionStyle::Optimized);
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
      std::shared_ptr<const JitProgram> JP =
          compileJitProgram(SP, Root, poolShapes(P));
      ASSERT_NE(JP, nullptr) << Spec.Name << " " << FK.Name;
      EXPECT_GT(JP->FlatInsts, 0u) << Spec.Name << " " << FK.Name;
      // Both chains carry one cell per flattened instruction plus the
      // null-Fn terminator.
      EXPECT_EQ(JP->Full.size(), JP->FlatInsts + 1);
      EXPECT_EQ(JP->Tail.size(), JP->FlatInsts + 1);
      EXPECT_EQ(JP->Full.back().Fn, nullptr);
      EXPECT_EQ(JP->Tail.back().Fn, nullptr);
    }
  }
}

/// Mode resolution: Auto prefers the JIT only when the caller actually
/// holds an artifact; KF_VM=jit forces it regardless.
TEST(JitVm, ResolveVmModePrefersJitWhenAvailable) {
  ScopedClearKfVm Clear;

  EXPECT_EQ(resolveVmMode(VmMode::Auto, /*JitAvailable=*/true),
            VmMode::Jit);
  EXPECT_EQ(resolveVmMode(VmMode::Auto, /*JitAvailable=*/false),
            VmMode::Span);

  ::setenv("KF_VM", "jit", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto, false), VmMode::Jit);
  EXPECT_EQ(resolveVmMode(VmMode::Auto, true), VmMode::Jit);

  // An explicit environment choice overrides artifact availability...
  ::setenv("KF_VM", "span", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto, true), VmMode::Span);
  ::setenv("KF_VM", "scalar", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Auto, true), VmMode::Scalar);

  // ...and an explicit request wins over everything.
  ::setenv("KF_VM", "jit", 1);
  EXPECT_EQ(resolveVmMode(VmMode::Span, true), VmMode::Span);
  EXPECT_EQ(resolveVmMode(VmMode::Scalar, true), VmMode::Scalar);
}

TEST(JitVm, ModeName) { EXPECT_STREQ(vmModeName(VmMode::Jit), "jit"); }

/// The launch-level contract: an Auto launch carrying an artifact runs
/// the JIT interior (LaunchTiming reports the resolved mode), while the
/// overlapped strategy degrades to the span engine, and results match
/// span mode bit for bit either way.
TEST(JitVm, AutoLaunchRunsJitAndOverlappedDegradesToSpan) {
  ScopedClearKfVm Clear;

  int W = VmLaneWidth * 2 + 9, H = 32;
  Program P = makeBlurChain(W, H, BorderMode::Clamp);
  FusedProgram FP =
      fuseProgram(P, wholeProgramPartition(P), FusionStyle::Optimized);
  StagedVmProgram SP = compileFusedKernel(FP, FP.Kernels[0]);
  uint16_t Root = static_cast<uint16_t>(SP.Stages.size() - 1);
  const ImageInfo &Info = P.image(2);
  int Halo = fusedLaunchHalo(SP, Root, Info);

  std::shared_ptr<const JitProgram> JP =
      compileJitProgram(SP, Root, poolShapes(P));
  ASSERT_NE(JP, nullptr);

  std::vector<Image> Pool = makeImagePool(P);
  Rng Gen(55);
  Pool[0] = makeRandomImage(W, H, 1, Gen);

  ThreadPool TP(2);
  VmScratch Scratch;
  ExecutionOptions Options;
  Options.Mode = VmMode::Auto;

  Image SpanOut(W, H, 1);
  {
    ExecutionOptions Span = Options;
    Span.Mode = VmMode::Span;
    runCompiledLaunch(SP, Root, Halo, Pool, SpanOut, Span, TP, Scratch);
  }

  // Auto + artifact: the launch resolves to (and reports) Jit.
  Image JitOut(W, H, 1);
  LaunchTiming Timing;
  runCompiledLaunch(SP, Root, Halo, Pool, JitOut, Options, TP, Scratch,
                    &Timing, JP.get());
  EXPECT_EQ(Timing.Mode, VmMode::Jit);
  EXPECT_DOUBLE_EQ(maxAbsDifference(JitOut, SpanOut), 0.0);

  // Auto without an artifact: span, unchanged default.
  LaunchTiming NoArtifact;
  runCompiledLaunch(SP, Root, Halo, Pool, JitOut, Options, TP, Scratch,
                    &NoArtifact);
  EXPECT_EQ(NoArtifact.Mode, VmMode::Span);

  // Overlapped tiles read scratch planes, not pool images: a Jit request
  // degrades to the span engine, bit-identically.
  ExecutionOptions Overlapped = Options;
  Overlapped.Mode = VmMode::Jit;
  Overlapped.Tiling = TilingStrategy::Overlapped;
  LaunchTiming OverlapTiming;
  runCompiledLaunch(SP, Root, Halo, Pool, JitOut, Overlapped, TP, Scratch,
                    &OverlapTiming, JP.get());
  if (OverlapTiming.Tiling == TilingStrategy::Overlapped) {
    EXPECT_EQ(OverlapTiming.Mode, VmMode::Span);
  }
  EXPECT_DOUBLE_EQ(maxAbsDifference(JitOut, SpanOut), 0.0);
}

/// The plan-time artifact: compilePlan populates CompiledLaunch::Jit for
/// every launch of every registry pipeline, the cached plan shares it,
/// and a session's frames (which prefer it under Auto) stay bit-identical
/// to the span interpreter.
TEST(JitSession, PlansCarryJitArtifactsAndFramesMatchSpan) {
  ScopedClearKfVm Clear;

  for (const PipelineSpec &Spec : paperPipelines()) {
    TestApp App = makeTestApp(Spec.Name);
    FusedProgram FP = fuseProgram(
        App.P, runMinCutFusion(App.P, HardwareModel()).Blocks,
        FusionStyle::Optimized);

    PlanCache Cache(4);
    PipelineSession Session(FP, ExecutionOptions(), &Cache);
    std::shared_ptr<const CompiledPlan> Plan = Session.plan();
    ASSERT_NE(Plan, nullptr) << Spec.Name;
    for (const CompiledLaunch &Launch : Plan->Launches)
      EXPECT_NE(Launch.Jit, nullptr)
          << Spec.Name << " " << Launch.Name
          << ": validated launch has no JIT artifact";

    // The cache returns the same plan object -- artifact included.
    std::shared_ptr<const CompiledPlan> Cached = Cache.lookup(Plan->Key);
    ASSERT_NE(Cached, nullptr) << Spec.Name;
    for (size_t I = 0; I != Plan->Launches.size(); ++I)
      EXPECT_EQ(Cached->Launches[I].Jit, Plan->Launches[I].Jit);

    std::vector<Image> Frame = Session.acquireFrame();
    Frame[0] = App.Input;
    Session.runFrame(Frame);

    ExecutionOptions Span;
    Span.Mode = VmMode::Span;
    std::vector<Image> SpanPool = makeImagePool(App.P);
    SpanPool[0] = App.Input;
    runFusedVm(FP, SpanPool, Span);

    expectPoolsIdentical(App.P, Frame, SpanPool,
                         Spec.Name + std::string(" session-jit"));
    Session.releaseFrame(std::move(Frame));
  }
}

/// Locates the repository's examples/pipelines directory relative to the
/// test binary's working directory (ctest runs in build/tests).
std::string pipelinesDir() {
  for (const char *Candidate :
       {"examples/pipelines/", "../examples/pipelines/",
        "../../examples/pipelines/", "../../../examples/pipelines/"}) {
    std::ifstream Probe(std::string(Candidate) + "harris.kfp");
    if (Probe.good())
      return Candidate;
  }
  return "";
}

/// Rewrites every `image <name> W H [C]` declaration of a .kfp source to
/// the given extents, preserving the channel count. The shipped files
/// declare native 2048^2-class frames; the differential only needs the
/// shipped *structure*, and test-sized frames keep the suite fast.
std::string rescaleKfpImages(const std::string &Source, int W, int H) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    std::string Line = Source.substr(Pos, End - Pos);
    std::istringstream Stream(Line);
    std::string Kw, Name, OldW, OldH, Channels;
    if (Stream >> Kw && Kw == "image" && Stream >> Name >> OldW >> OldH) {
      Line = "image " + Name + " " + std::to_string(W) + " " +
             std::to_string(H);
      if (Stream >> Channels)
        Line += " " + Channels;
    }
    Out += Line;
    Out += '\n';
    Pos = End + 1;
  }
  return Out;
}

/// Golden-fixture differential: every shipped .kfp pipeline, parsed from
/// disk (not rebuilt from the C++ builders), must run bit-identically
/// under the JIT and the span interpreter.
class JitGoldenKfp : public ::testing::TestWithParam<std::string> {};

TEST_P(JitGoldenKfp, ShippedPipelineJitMatchesSpan) {
  std::string Dir = pipelinesDir();
  if (Dir.empty())
    GTEST_SKIP() << "examples/pipelines not found from the test cwd";

  std::ifstream File(Dir + GetParam() + ".kfp");
  ASSERT_TRUE(File.good()) << GetParam();
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  ParseResult Parsed = parsePipelineText(
      rescaleKfpImages(Buffer.str(), VmLaneWidth * 2 + 21, 96));
  ASSERT_TRUE(Parsed.success())
      << GetParam() << ": "
      << (Parsed.Errors.empty() ? "?" : Parsed.Errors.front());
  const Program &P = *Parsed.Prog;
  FusedProgram FP = fuseProgram(
      P, runMinCutFusion(P, HardwareModel()).Blocks,
      FusionStyle::Optimized);

  const ImageInfo &InInfo = P.image(0);
  Rng Gen(20260807);
  Image Input =
      makeRandomImage(InInfo.Width, InInfo.Height, InInfo.Channels, Gen);

  ExecutionOptions Span;
  Span.Mode = VmMode::Span;
  std::vector<Image> SpanPool = makeImagePool(P);
  SpanPool[0] = Input;
  runFusedVm(FP, SpanPool, Span);

  ExecutionOptions Jit = Span;
  Jit.Mode = VmMode::Jit;
  std::vector<Image> JitPool = makeImagePool(P);
  JitPool[0] = Input;
  runFusedVm(FP, JitPool, Jit);

  expectPoolsIdentical(P, JitPool, SpanPool, GetParam() + ".kfp");
}

INSTANTIATE_TEST_SUITE_P(PaperApps, JitGoldenKfp,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance",
                                           "night", "dog", "emboss"),
                         [](const auto &Info) { return Info.param; });

} // namespace
