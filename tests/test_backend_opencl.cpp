//===- tests/test_backend_opencl.cpp - OpenCL emitter golden checks -------------===//

#include "backend/opencl/ClEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "pipelines/Pipelines.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

FusedProgram optimizedFusion(const Program &P) {
  HardwareModel HW;
  MinCutFusionResult Fusion = runMinCutFusion(P, HW);
  return fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
}

TEST(OpenClEmitter, EmitsKernelEntryPoints) {
  Program P = makeSobel(64, 64);
  FusedProgram FP = unfusedProgram(P);
  std::string Code = emitOpenClProgram(FP);
  EXPECT_NE(Code.find("__kernel void sobel_dx_kernel(__global float *out, "
                      "__global const float *img_in"),
            std::string::npos);
  EXPECT_NE(Code.find("int x = get_global_id(0);"), std::string::npos);
  EXPECT_NE(Code.find("int y = get_global_id(1);"), std::string::npos);
  // No CUDA or host-C++ constructs leak through.
  EXPECT_EQ(Code.find("__global__"), std::string::npos);
  EXPECT_EQ(Code.find("__device__"), std::string::npos);
  EXPECT_EQ(Code.find("blockIdx"), std::string::npos);
  EXPECT_EQ(Code.find("#include"), std::string::npos);
  EXPECT_EQ(Code.find("extern \"C\""), std::string::npos);
}

TEST(OpenClEmitter, UsesGenericMathBuiltins) {
  Program P = makeSobel(64, 64);
  std::string Code = emitOpenClProgram(optimizedFusion(P));
  // sqrt, not sqrtf -- OpenCL C generic overloads.
  EXPECT_NE(Code.find("sqrt("), std::string::npos);
  EXPECT_EQ(Code.find("sqrtf("), std::string::npos);
}

TEST(OpenClEmitter, MasksLiveInConstantMemory) {
  Program P = makeBlurChain(32, 32, BorderMode::Clamp);
  std::string Code = emitOpenClProgram(unfusedProgram(P));
  EXPECT_NE(Code.find("__constant float blurchain_mask0[9]"),
            std::string::npos);
}

TEST(OpenClEmitter, FusedStagesBecomeHelperFunctions) {
  Program P = makeHarris(64, 64);
  std::string Code = emitOpenClProgram(optimizedFusion(P));
  EXPECT_NE(Code.find("float harris_sx_gx_sx(__global const float "
                      "*img_dx_out"),
            std::string::npos);
  EXPECT_NE(Code.find("index exchange (clamp)"), std::string::npos);
}

TEST(OpenClEmitter, HeaderNamesTheDialect) {
  Program P = makeUnsharp(32, 32);
  std::string Code = emitOpenClProgram(optimizedFusion(P));
  EXPECT_NE(Code.find("// OpenCL code generated"), std::string::npos);
}

TEST(OpenClEmitter, DeterministicOutput) {
  Program P = makeEnhancement(32, 32);
  FusedProgram FP = optimizedFusion(P);
  EXPECT_EQ(emitOpenClProgram(FP), emitOpenClProgram(FP));
}

} // namespace
