//===- tests/test_session.cpp - Streaming session differential harness ----------===//
//
// The serving layer must be invisible in the results: a session's cached
// warm-run output has to be bit-identical to a fresh runFusedVm call and
// to the runFused AST reference, for every registry pipeline, across
// border modes and thread counts. Alongside the differential harness this
// file unit-tests the plan cache (LRU, hit/miss counters), the frame
// pool's buffer recycling, and the structural/options hashing that keys
// the cache.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Session.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace kf;

namespace {

/// Deterministically fills every external input of \p P in \p Pool.
void fillInputs(const Program &P, std::vector<Image> &Pool, uint64_t Seed) {
  Rng Gen(Seed);
  for (ImageId Id : P.externalInputs()) {
    const ImageInfo &Info = P.image(Id);
    Pool[Id] = makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen,
                               0.05f, 1.0f);
  }
}

/// Worker-thread counts the differential harness sweeps: serial, an
/// uneven count, and whatever the hardware reports.
std::vector<int> threadSweep() {
  int Hardware =
      static_cast<int>(std::max(std::thread::hardware_concurrency(), 1u));
  std::vector<int> Counts{1, 3};
  if (Hardware != 1 && Hardware != 3)
    Counts.push_back(Hardware);
  return Counts;
}

/// Runs the full differential check for one program: the session's warm
/// (second) frame must be bit-identical to fresh runFusedVm and runFused
/// references at every swept thread count.
void expectSessionMatchesReferences(const Program &P,
                                    const std::string &Label) {
  HardwareModel HW;
  MinCutFusionResult MinCut = runMinCutFusion(P, HW);
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  // AST reference (the semantic ground truth).
  std::vector<Image> AstPool = makeImagePool(P);
  fillInputs(P, AstPool, 0x5e55);
  runFused(FP, AstPool);

  for (int Threads : threadSweep()) {
    ExecutionOptions Options;
    Options.Threads = Threads;

    // Fresh per-call fused VM reference.
    std::vector<Image> VmPool = makeImagePool(P);
    fillInputs(P, VmPool, 0x5e55);
    runFusedVm(FP, VmPool, Options);

    // Session: two frames with identical input; keep the warm frame.
    PlanCache Cache;
    PipelineSession Session(FP, Options, &Cache);
    std::vector<Image> Warm;
    Session.runFrames(
        2,
        [&](int, std::vector<Image> &Frame) {
          fillInputs(P, Frame, 0x5e55);
        },
        [&](int Frame, const std::vector<Image> &Pool) {
          if (Frame == 1)
            Warm = Pool;
        });

    EXPECT_EQ(Session.stats().PlanMisses, 1u) << Label;
    EXPECT_EQ(Session.stats().PlanHits, 1u)
        << Label << ": second frame must hit the plan cache";

    for (const FusedKernel &FK : FP.Kernels)
      for (KernelId Dest : FK.Destinations) {
        ImageId Out = P.kernel(Dest).Output;
        EXPECT_DOUBLE_EQ(maxAbsDifference(Warm[Out], VmPool[Out]), 0.0)
            << Label << " vs fresh runFusedVm, threads=" << Threads
            << ", output " << P.image(Out).Name;
        EXPECT_DOUBLE_EQ(maxAbsDifference(Warm[Out], AstPool[Out]), 0.0)
            << Label << " vs runFused AST, threads=" << Threads
            << ", output " << P.image(Out).Name;
      }
  }
}

//===--------------------------------------------------------------------===//
// Differential harness
//===--------------------------------------------------------------------===//

class SessionDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionDifferential, WarmFrameBitIdenticalToFreshExecution) {
  const PipelineSpec *Spec = findPipeline(GetParam());
  ASSERT_NE(Spec, nullptr);
  // Paper-shaped but test-sized (the night pipeline keeps its RGB shape).
  Program P = Spec->Builder(64, 52);
  expectSessionMatchesReferences(P, GetParam());
}

INSTANTIATE_TEST_SUITE_P(RegistryPipelines, SessionDifferential,
                         ::testing::Values("harris", "sobel", "unsharp",
                                           "shitomasi", "enhance", "night"),
                         [](const auto &Info) { return Info.param; });

class SessionBorderModes : public ::testing::TestWithParam<BorderMode> {};

TEST_P(SessionBorderModes, BlurChainMatchesAcrossBorders) {
  Program P = makeBlurChain(40, 34, GetParam());
  expectSessionMatchesReferences(P,
                                 std::string("blurchain-") +
                                     borderModeName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllModes, SessionBorderModes,
                         ::testing::Values(BorderMode::Clamp,
                                           BorderMode::Mirror,
                                           BorderMode::Repeat,
                                           BorderMode::Constant),
                         [](const auto &Info) {
                           return borderModeName(Info.param);
                         });

TEST(SessionCache, OptionsChangeMissesThenRehits) {
  Program P = makeSobel(32, 28);
  MinCutFusionResult MinCut = runMinCutFusion(P, HardwareModel());
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  PlanCache Cache;
  PipelineSession Session(FP, ExecutionOptions(), &Cache);
  auto Fill = [&](int, std::vector<Image> &Frame) {
    fillInputs(P, Frame, 7);
  };
  Session.runFrames(2, Fill);
  EXPECT_EQ(Session.stats().PlanMisses, 1u);
  EXPECT_EQ(Session.stats().PlanHits, 1u);

  // A changed execution configuration is a different plan: miss.
  ExecutionOptions Tiled;
  Tiled.TileHeight = 8;
  Session.setOptions(Tiled);
  Session.runFrames(2, Fill);
  EXPECT_EQ(Session.stats().PlanMisses, 2u);
  EXPECT_EQ(Session.stats().PlanHits, 2u);

  // Switching back re-hits the still-cached original plan.
  Session.setOptions(ExecutionOptions());
  Session.runFrames(1, Fill);
  EXPECT_EQ(Session.stats().PlanMisses, 2u);
  EXPECT_EQ(Session.stats().PlanHits, 3u);
  EXPECT_EQ(Cache.stats().Entries, 2u);
}

TEST(SessionFrames, BuffersAreRecycledAcrossFrames) {
  Program P = makeSobel(24, 20);
  MinCutFusionResult MinCut = runMinCutFusion(P, HardwareModel());
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  PlanCache Cache;
  PipelineSession Session(FP, ExecutionOptions(), &Cache);
  Session.runFrames(6, [&](int Frame, std::vector<Image> &Pool) {
    fillInputs(P, Pool, static_cast<uint64_t>(Frame));
  });
  EXPECT_EQ(Session.stats().Frames, 6u);
  // Double buffering holds two frames in flight; every later acquire
  // must be served from the pool.
  EXPECT_EQ(Session.stats().FramesAllocated, 2u);
  EXPECT_GE(Session.stats().FramesReused, 4u);
}

TEST(SessionFrames, ManualFrameLoopMatchesStreaming) {
  Program P = makeBlurChain(30, 26, BorderMode::Mirror);
  MinCutFusionResult MinCut = runMinCutFusion(P, HardwareModel());
  FusedProgram FP = fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);

  PlanCache Cache;
  PipelineSession Session(FP, ExecutionOptions(), &Cache);
  std::vector<Image> Frame = Session.acquireFrame();
  fillInputs(P, Frame, 99);
  Session.runFrame(Frame);

  std::vector<Image> Reference = makeImagePool(P);
  fillInputs(P, Reference, 99);
  runFusedVm(FP, Reference, ExecutionOptions());
  for (ImageId Out : P.terminalOutputs())
    EXPECT_DOUBLE_EQ(maxAbsDifference(Frame[Out], Reference[Out]), 0.0);
  Session.releaseFrame(std::move(Frame));
}

//===--------------------------------------------------------------------===//
// PlanCache unit tests
//===--------------------------------------------------------------------===//

std::shared_ptr<const CompiledPlan> dummyPlan(uint64_t Key) {
  auto Plan = std::make_shared<CompiledPlan>();
  Plan->Key = Key;
  return Plan;
}

TEST(PlanCache, CountsHitsAndMisses) {
  PlanCache Cache(4);
  EXPECT_EQ(Cache.lookup(1), nullptr);
  Cache.insert(dummyPlan(1));
  EXPECT_NE(Cache.lookup(1), nullptr);
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache Cache(2);
  Cache.insert(dummyPlan(1));
  Cache.insert(dummyPlan(2));
  EXPECT_NE(Cache.lookup(1), nullptr); // 1 is now most recent.
  Cache.insert(dummyPlan(3));          // Evicts 2.
  EXPECT_NE(Cache.lookup(1), nullptr);
  EXPECT_EQ(Cache.lookup(2), nullptr);
  EXPECT_NE(Cache.lookup(3), nullptr);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_EQ(Cache.stats().Entries, 2u);
}

TEST(PlanCache, ReinsertReplacesWithoutGrowth) {
  PlanCache Cache(2);
  Cache.insert(dummyPlan(1));
  Cache.insert(dummyPlan(1));
  EXPECT_EQ(Cache.stats().Entries, 1u);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
}

TEST(PlanCache, CapacityOneEvictsOnEveryNewKey) {
  PlanCache Cache(1);
  Cache.insert(dummyPlan(1));
  Cache.insert(dummyPlan(2)); // Evicts 1.
  EXPECT_EQ(Cache.lookup(1), nullptr);
  EXPECT_NE(Cache.lookup(2), nullptr);
  Cache.insert(dummyPlan(2)); // Same key: replace, no eviction.
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_NE(Cache.lookup(2), nullptr);
}

TEST(PlanCache, ReinsertKeepsEntryMostRecentlyUsed) {
  PlanCache Cache(2);
  Cache.insert(dummyPlan(1));
  Cache.insert(dummyPlan(2));
  Cache.insert(dummyPlan(1)); // Replace: 1 becomes most recent.
  Cache.insert(dummyPlan(3)); // Evicts 2, not 1.
  EXPECT_NE(Cache.lookup(1), nullptr);
  EXPECT_EQ(Cache.lookup(2), nullptr);
  EXPECT_NE(Cache.lookup(3), nullptr);
}

TEST(PlanCache, ConcurrentLookupInsertKeepsStatsConsistent) {
  // Threads hammer a shared cache with overlapping key ranges; afterwards
  // every lookup must be accounted as exactly one hit or miss, and the
  // entry count must respect capacity. Runs under -DKF_SANITIZE=thread
  // via the sanitize-smoke label.
  PlanCache Cache(4);
  constexpr int NumThreads = 4;
  constexpr int IterationsPerThread = 500;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Cache, T] {
      for (int I = 0; I != IterationsPerThread; ++I) {
        uint64_t Key = static_cast<uint64_t>((T + I) % 8);
        if (!Cache.lookup(Key))
          Cache.insert(dummyPlan(Key));
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses,
            static_cast<uint64_t>(NumThreads) * IterationsPerThread);
  EXPECT_LE(Stats.Entries, 4u);
  EXPECT_GT(Stats.Hits, 0u);
  EXPECT_GT(Stats.Misses, 0u);
}

TEST(PlanCache, ClearResets) {
  PlanCache Cache(2);
  Cache.insert(dummyPlan(1));
  (void)Cache.lookup(1);
  Cache.clear();
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Entries, 0u);
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Cache.lookup(1), nullptr);
}

//===--------------------------------------------------------------------===//
// Cache-key hashing
//===--------------------------------------------------------------------===//

TEST(OptionsHash, StableAcrossFieldReordering) {
  // The options hash is an XOR of named-field hashes, so any fold order
  // -- i.e. any field order in ExecutionOptions -- produces the same key.
  uint64_t Forward =
      hashNamedField("UseIndexExchange", 1) ^ hashNamedField("Threads", 4) ^
      hashNamedField("TileWidth", 0) ^ hashNamedField("TileHeight", 16) ^
      hashNamedField("VmMode", static_cast<uint32_t>(VmMode::Span)) ^
      hashNamedField("Tiling",
                     static_cast<uint32_t>(TilingStrategy::Overlapped)) ^
      hashNamedField("Opt", static_cast<uint32_t>(OptMode::Auto));
  uint64_t Reordered =
      hashNamedField("Opt", static_cast<uint32_t>(OptMode::Auto)) ^
      hashNamedField("Tiling",
                     static_cast<uint32_t>(TilingStrategy::Overlapped)) ^
      hashNamedField("VmMode", static_cast<uint32_t>(VmMode::Span)) ^
      hashNamedField("TileHeight", 16) ^ hashNamedField("TileWidth", 0) ^
      hashNamedField("Threads", 4) ^ hashNamedField("UseIndexExchange", 1);
  EXPECT_EQ(Forward, Reordered);

  ExecutionOptions Options;
  Options.Threads = 4;
  Options.TileHeight = 16;
  Options.Mode = VmMode::Span;
  Options.Tiling = TilingStrategy::Overlapped;
  EXPECT_EQ(hashExecutionOptions(Options), Forward);
}

TEST(OptionsHash, SensitiveToEveryField) {
  ExecutionOptions Base;
  uint64_t H = hashExecutionOptions(Base);
  ExecutionOptions A = Base;
  A.UseIndexExchange = false;
  ExecutionOptions B = Base;
  B.Threads = 2;
  ExecutionOptions C = Base;
  C.TileWidth = 32;
  ExecutionOptions D = Base;
  D.TileHeight = 8;
  ExecutionOptions E = Base;
  E.Mode = VmMode::Scalar;
  ExecutionOptions F = Base;
  F.Tiling = TilingStrategy::Overlapped;
  ExecutionOptions G = Base;
  G.Opt = OptMode::Off;
  EXPECT_NE(hashExecutionOptions(A), H);
  EXPECT_NE(hashExecutionOptions(B), H);
  EXPECT_NE(hashExecutionOptions(C), H);
  EXPECT_NE(hashExecutionOptions(D), H);
  EXPECT_NE(hashExecutionOptions(E), H);
  EXPECT_NE(hashExecutionOptions(F), H);
  EXPECT_NE(hashExecutionOptions(G), H);
}

TEST(StructuralHash, IndependentParsesHashEqually) {
  Program Built = makeHarris(48, 40);
  std::string Text = serializeProgram(Built);
  ParseResult First = parsePipelineText(Text);
  ParseResult Second = parsePipelineText(Text);
  ASSERT_TRUE(First.success());
  ASSERT_TRUE(Second.success());
  EXPECT_EQ(First.Prog->structuralHash(), Second.Prog->structuralHash());
  EXPECT_EQ(Built.structuralHash(), First.Prog->structuralHash());
}

TEST(StructuralHash, OneConstantChangeChangesEveryKernelHash) {
  // Flipping a single constant in any kernel's body must re-key the plan.
  Program Base = makeUnsharp(32, 28);
  uint64_t BaseHash = Base.structuralHash();
  for (KernelId Id = 0; Id != Base.numKernels(); ++Id) {
    Program Mutated = makeUnsharp(32, 28);
    Kernel &K = Mutated.kernel(Id);
    const Expr *Bump = Mutated.context().floatConst(1e-3f);
    K.Body = Mutated.context().add(K.Body, Bump);
    EXPECT_NE(Mutated.structuralHash(), BaseHash)
        << "kernel " << Base.kernel(Id).Name;
  }
}

TEST(StructuralHash, DistinguishesShapesAndBorders) {
  EXPECT_NE(makeSobel(32, 28).structuralHash(),
            makeSobel(32, 30).structuralHash());
  EXPECT_NE(makeBlurChain(24, 24, BorderMode::Clamp).structuralHash(),
            makeBlurChain(24, 24, BorderMode::Mirror).structuralHash());
}

TEST(StructuralHash, PlanKeySeparatesPartitionsAndOptions) {
  Program P = makeSobel(32, 28);
  MinCutFusionResult MinCut = runMinCutFusion(P, HardwareModel());
  FusedProgram Fused =
      fuseProgram(P, MinCut.Blocks, FusionStyle::Optimized);
  FusedProgram Unfused = unfusedProgram(P);

  ExecutionOptions Options;
  EXPECT_NE(planKey(Fused, Options), planKey(Unfused, Options));
  ExecutionOptions Other;
  Other.Threads = 5;
  EXPECT_NE(planKey(Fused, Options), planKey(Fused, Other));
}

TEST(OptionsHash, SourceTagDoesNotSplitPlans) {
  // ExecutionOptions::Source is a scheduling hint: the pipeline server
  // gives every tenant a distinct tag, and tenants running the same
  // pipeline under the same options MUST still share one compiled plan.
  ExecutionOptions A, B;
  A.Source = 0;
  B.Source = 17;
  EXPECT_EQ(hashExecutionOptions(A), hashExecutionOptions(B));
}

//===--------------------------------------------------------------------===//
// PlanCache sharing under concurrency
//===--------------------------------------------------------------------===//

TEST(PlanCache, EvictionDoesNotInvalidateBorrowedPlan) {
  // Regression for a latent single-owner assumption: a borrower's plan
  // used to be reachable only through the cache, so an eviction while a
  // session still executed from it was a use-after-free waiting to
  // happen. Plans are shared_ptr-owned: eviction drops only the cache's
  // reference.
  PlanCache Cache(1);
  Cache.insert(dummyPlan(1));
  std::shared_ptr<const CompiledPlan> Borrowed = Cache.lookup(1);
  ASSERT_NE(Borrowed, nullptr);
  Cache.insert(dummyPlan(2)); // Evicts key 1 while it is borrowed.
  EXPECT_EQ(Cache.lookup(1), nullptr);
  EXPECT_EQ(Borrowed->Key, 1u); // The borrower's copy is still alive.
  EXPECT_EQ(Borrowed.use_count(), 1);
}

TEST(PlanCache, EvictionRacingBorrowerIsSafe) {
  // The concurrent version: borrower threads hold and read plans while
  // the main thread churns a capacity-1 cache through evictions. Runs
  // under -DKF_SANITIZE=thread via the sanitize-smoke label.
  PlanCache Cache(1);
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};
  std::vector<std::thread> Borrowers;
  for (int T = 0; T != 2; ++T)
    Borrowers.emplace_back([&] {
      while (!Stop.load()) {
        std::shared_ptr<const CompiledPlan> Plan = Cache.lookup(1);
        if (Plan) {
          // Dereference AFTER the entry may have been evicted.
          EXPECT_EQ(Plan->Key, 1u);
          ++Reads;
        }
      }
    });
  // Make sure the borrowers actually observe the entry at least once
  // (one core may not schedule them during a fast churn loop).
  Cache.insert(dummyPlan(1));
  while (Reads.load() == 0)
    std::this_thread::yield();
  for (int I = 0; I != 2000; ++I) {
    Cache.insert(dummyPlan(1));
    Cache.insert(dummyPlan(2)); // Evicts 1 under the borrowers' feet.
  }
  Stop = true;
  for (std::thread &T : Borrowers)
    T.join();
  EXPECT_GT(Reads.load(), 0u);
}

TEST(PlanCache, GetOrCompileIsSingleFlight) {
  // N threads race the same cold key: exactly ONE runs the compile
  // functor; the rest block on the in-flight slot and count as hits.
  PlanCache Cache(4);
  constexpr int NumThreads = 4;
  std::atomic<int> Compiles{0};
  std::vector<std::shared_ptr<const CompiledPlan>> Got(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Got[T] = Cache.getOrCompile(42, [&] {
        ++Compiles;
        // Widen the race window so followers really wait on the latch.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return dummyPlan(42);
      });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Compiles.load(), 1);
  for (int T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Got[T], Got[0]); // One shared plan object.
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, static_cast<uint64_t>(NumThreads - 1));
  EXPECT_EQ(Stats.Entries, 1u);
}

TEST(PlanCache, GetOrCompileFailureIsNotCached) {
  PlanCache Cache(4);
  bool WasHit = true;
  std::shared_ptr<const CompiledPlan> Plan = Cache.getOrCompile(
      7, [] { return std::shared_ptr<const CompiledPlan>(); }, &WasHit);
  EXPECT_EQ(Plan, nullptr);
  EXPECT_FALSE(WasHit);
  EXPECT_EQ(Cache.stats().Entries, 0u);
  // The failed attempt does not poison the key: a later compile lands.
  Plan = Cache.getOrCompile(7, [] { return dummyPlan(7); }, &WasHit);
  EXPECT_NE(Plan, nullptr);
  EXPECT_FALSE(WasHit);
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

//===--------------------------------------------------------------------===//
// FramePool under concurrency
//===--------------------------------------------------------------------===//

TEST(FramePool, ConcurrentAcquireReleaseKeepsCountersConsistent) {
  // Regression for a latent single-owner assumption: the pool's free list
  // and counters were unguarded, which the server's frame churn (a
  // borrower racing the double-buffered filler) could corrupt. Threads
  // hammer one pool; every acquire must be accounted as exactly one reuse
  // or one allocation. Runs under -DKF_SANITIZE=thread via the
  // sanitize-smoke label.
  std::vector<ImageInfo> Shapes(2);
  Shapes[0] = ImageInfo{"in", 16, 12, 1};
  Shapes[1] = ImageInfo{"out", 16, 12, 1};
  std::vector<ImageId> Outputs = {1};
  FramePool Pool;
  constexpr int NumThreads = 3;
  constexpr int IterationsPerThread = 200;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != IterationsPerThread; ++I) {
        std::vector<Image> Frame = Pool.acquire(Shapes, Outputs);
        ASSERT_EQ(Frame.size(), Shapes.size());
        Pool.release(std::move(Frame));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Pool.framesAllocated() + Pool.framesReused(),
            static_cast<uint64_t>(NumThreads) * IterationsPerThread);
  // At most NumThreads frames were ever simultaneously outstanding.
  EXPECT_LE(Pool.framesAllocated(), static_cast<uint64_t>(NumThreads));
  EXPECT_GT(Pool.framesReused(), 0u);
}

} // namespace
