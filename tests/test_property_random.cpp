//===- tests/test_property_random.cpp - Randomized properties -------------------===//
//
// Property-based testing over randomly generated pipelines: for arbitrary
// DAG-shaped programs, Algorithm 1 must produce valid, legal partitions,
// the fuser must materialize them, and fused execution must equal the
// unfused baseline exactly -- the core soundness property of the system.
// All randomness is seeded; failures reproduce deterministically.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "fusion/BasicFusion.h"
#include "fusion/ExhaustivePartitioner.h"
#include "fusion/GreedyPartitioner.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/Verifier.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Session.h"
#include "transform/Fuser.h"

#include <gtest/gtest.h>

using namespace kf;

namespace {

HardwareModel paperModel() {
  HardwareModel HW;
  HW.SharedMemThreshold = 2.0;
  return HW;
}

/// One randomized soundness round, parameterized by seed.
class RandomPipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineProperty, MinCutPartitionIsValidLegalAndExact) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 1000003 + 17);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(10));
  double LocalFraction = Gen.uniform(0.0, 0.7);
  Program P = makeRandomPipeline(NumKernels, LocalFraction, 16, 12, Gen);
  ASSERT_TRUE(verifyProgram(P).empty());

  HardwareModel HW = paperModel();
  MinCutFusionResult Result = runMinCutFusion(P, HW);

  // Partition invariants of Section II-A.
  ASSERT_EQ(validatePartition(P, Result.Blocks), "");
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  for (const PartitionBlock &Block : Result.Blocks.Blocks)
    EXPECT_EQ(fusibleBlockRejection(Model, Block.Kernels), "")
        << "seed " << Seed;

  // Functional soundness: fused == unfused on random data, all outputs.
  FusedProgram FP = fuseProgram(P, Result.Blocks, FusionStyle::Optimized);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(16, 12, 1, Gen, 0.1f, 1.0f);
  runUnfused(P, Reference);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  for (ImageId Out : P.terminalOutputs())
    EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[Out], Reference[Out]), 0.0)
        << "seed " << Seed << ", output " << P.image(Out).Name;
}

TEST_P(RandomPipelineProperty, BasicFusionIsSoundToo) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 7777777 + 3);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(8));
  Program P = makeRandomPipeline(NumKernels, 0.5, 14, 14, Gen);

  BasicFusionResult Basic = runBasicFusion(P, paperModel());
  ASSERT_EQ(validatePartition(P, Basic.Blocks), "");
  FusedProgram FP = fuseProgram(P, Basic.Blocks, FusionStyle::Basic);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(14, 14, 1, Gen, 0.1f, 1.0f);
  runUnfused(P, Reference);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  for (ImageId Out : P.terminalOutputs())
    EXPECT_DOUBLE_EQ(maxAbsDifference(Pool[Out], Reference[Out]), 0.0)
        << "seed " << Seed;
}

TEST_P(RandomPipelineProperty, GreedyNeverBeatsExhaustive) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 31337 + 29);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(6));
  Program P = makeRandomPipeline(NumKernels, 0.4, 16, 16, Gen);

  HardwareModel HW = paperModel();
  ExhaustiveFusionResult Optimal = runExhaustiveFusion(P, HW);
  GreedyFusionResult Greedy = runGreedyFusion(P, HW);
  MinCutFusionResult MinCut = runMinCutFusion(P, HW);
  EXPECT_LE(Greedy.TotalBenefit, Optimal.TotalBenefit + 1e-9)
      << "seed " << Seed;
  EXPECT_LE(MinCut.TotalBenefit, Optimal.TotalBenefit + 1e-9)
      << "seed " << Seed;
  // Every exhaustive-optimal block must itself be acceptable (sanity of
  // the oracle).
  ASSERT_EQ(validatePartition(P, Optimal.Blocks), "");
}

TEST_P(RandomPipelineProperty, SerializeParseSessionRoundTripIsExact) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 424243 + 11);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(8));
  double LocalFraction = Gen.uniform(0.0, 0.6);
  Program P = makeRandomPipeline(NumKernels, LocalFraction, 18, 14, Gen);

  // Round-trip the IR through the textual format: the parsed copy must be
  // structurally identical (same plan-cache key).
  ParseResult Parsed = parsePipelineText(serializeProgram(P));
  ASSERT_TRUE(Parsed.success())
      << "seed " << Seed << ": "
      << (Parsed.Errors.empty() ? "?" : Parsed.Errors.front());
  Program &Q = *Parsed.Prog;
  ASSERT_EQ(P.structuralHash(), Q.structuralHash()) << "seed " << Seed;

  // Direct execution of the original program.
  std::vector<Image> Reference = makeImagePool(P);
  Rng Fill(Seed * 31 + 5);
  for (ImageId In : P.externalInputs()) {
    const ImageInfo &Info = P.image(In);
    Reference[In] = makeRandomImage(Info.Width, Info.Height, Info.Channels,
                                    Fill, 0.1f, 1.0f);
  }
  runUnfused(P, Reference);

  // Fuse the parsed copy and stream it through a session (cold + warm
  // frame with the same inputs). The warm frame must match exactly.
  MinCutFusionResult Result = runMinCutFusion(Q, paperModel());
  FusedProgram FP = fuseProgram(Q, Result.Blocks, FusionStyle::Optimized);
  PlanCache Cache;
  PipelineSession Session(FP, ExecutionOptions(), &Cache);
  std::vector<Image> Warm;
  Session.runFrames(
      2,
      [&](int, std::vector<Image> &Frame) {
        for (ImageId In : Q.externalInputs())
          Frame[In] = Reference[In];
      },
      [&](int Frame, const std::vector<Image> &Pool) {
        if (Frame == 1)
          Warm = Pool;
      });
  EXPECT_EQ(Session.stats().PlanHits, 1u) << "seed " << Seed;

  for (ImageId Out : Q.terminalOutputs())
    EXPECT_DOUBLE_EQ(maxAbsDifference(Warm[Out], Reference[Out]), 0.0)
        << "seed " << Seed << ", output " << Q.image(Out).Name;
}

TEST_P(RandomPipelineProperty, OptionsHashGovernsCrossSessionPlanSharing) {
  // The contract the multi-tenant server's shared plan cache rests on:
  // two sessions whose (structural hash, options hash) pair is equal MUST
  // share one compiled plan (the second lookup is a cache hit on the
  // literal same object), and sessions whose options hash differs MUST be
  // isolated in distinct entries. The Source scheduling tag is excluded
  // from the hash, so it is always randomized to differ.
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng Gen(Seed * 777767 + 3);
  unsigned NumKernels = 3 + static_cast<unsigned>(Gen.nextBelow(6));
  Program P = makeRandomPipeline(NumKernels, Gen.uniform(0.0, 0.6), 16, 12,
                                 Gen);
  MinCutFusionResult Result = runMinCutFusion(P, paperModel());
  FusedProgram FP = fuseProgram(P, Result.Blocks, FusionStyle::Optimized);

  auto randomOptions = [&Gen] {
    ExecutionOptions O;
    O.UseIndexExchange = Gen.nextBelow(2) == 0;
    O.Threads = 1 + static_cast<int>(Gen.nextBelow(4));
    O.TileWidth = static_cast<int>(Gen.nextBelow(3)) * 8;
    O.TileHeight = static_cast<int>(Gen.nextBelow(3)) * 8;
    O.Mode = Gen.nextBelow(2) ? VmMode::Scalar : VmMode::Span;
    O.Tiling = Gen.nextBelow(2) ? TilingStrategy::InteriorHalo
                                : TilingStrategy::Overlapped;
    O.Source = static_cast<unsigned>(Gen.nextBelow(4));
    return O;
  };
  ExecutionOptions A = randomOptions();
  // Half the seeds take a guaranteed-equal permutation so both branches
  // of the property are exercised; the rest draw independently.
  ExecutionOptions B = Gen.nextBelow(2) ? randomOptions() : A;
  B.Source = A.Source + 1; // Never equal; never part of the key.

  PlanCache Cache(8);
  PipelineSession S1(FP, A, &Cache);
  PipelineSession S2(FP, B, &Cache);
  ASSERT_NE(S1.plan(), nullptr) << "seed " << Seed;
  ASSERT_NE(S2.plan(), nullptr) << "seed " << Seed;
  PlanCacheStats Stats = Cache.stats();
  if (hashExecutionOptions(A) == hashExecutionOptions(B)) {
    EXPECT_EQ(Stats.Entries, 1u) << "seed " << Seed;
    EXPECT_EQ(Stats.Misses, 1u) << "seed " << Seed;
    EXPECT_GE(Stats.Hits, 1u) << "seed " << Seed;
    EXPECT_EQ(S1.plan(), S2.plan()) << "seed " << Seed;
  } else {
    EXPECT_EQ(Stats.Entries, 2u) << "seed " << Seed;
    EXPECT_EQ(Stats.Misses, 2u) << "seed " << Seed;
    EXPECT_NE(S1.plan(), S2.plan()) << "seed " << Seed;
  }
}

TEST_P(RandomPipelineProperty, FusionIsDeterministicPerSeed) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Rng GenA(Seed), GenB(Seed);
  Program PA = makeRandomPipeline(8, 0.4, 16, 16, GenA);
  Program PB = makeRandomPipeline(8, 0.4, 16, 16, GenB);
  MinCutFusionResult RA = runMinCutFusion(PA, paperModel());
  MinCutFusionResult RB = runMinCutFusion(PB, paperModel());
  EXPECT_TRUE(RA.Blocks == RB.Blocks) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineProperty,
                         ::testing::Range(1, 21));

} // namespace
