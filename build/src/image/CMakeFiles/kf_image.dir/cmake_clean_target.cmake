file(REMOVE_RECURSE
  "libkf_image.a"
)
