
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/Border.cpp" "src/image/CMakeFiles/kf_image.dir/Border.cpp.o" "gcc" "src/image/CMakeFiles/kf_image.dir/Border.cpp.o.d"
  "/root/repo/src/image/Compare.cpp" "src/image/CMakeFiles/kf_image.dir/Compare.cpp.o" "gcc" "src/image/CMakeFiles/kf_image.dir/Compare.cpp.o.d"
  "/root/repo/src/image/Generators.cpp" "src/image/CMakeFiles/kf_image.dir/Generators.cpp.o" "gcc" "src/image/CMakeFiles/kf_image.dir/Generators.cpp.o.d"
  "/root/repo/src/image/Image.cpp" "src/image/CMakeFiles/kf_image.dir/Image.cpp.o" "gcc" "src/image/CMakeFiles/kf_image.dir/Image.cpp.o.d"
  "/root/repo/src/image/ImageIO.cpp" "src/image/CMakeFiles/kf_image.dir/ImageIO.cpp.o" "gcc" "src/image/CMakeFiles/kf_image.dir/ImageIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
