file(REMOVE_RECURSE
  "CMakeFiles/kf_image.dir/Border.cpp.o"
  "CMakeFiles/kf_image.dir/Border.cpp.o.d"
  "CMakeFiles/kf_image.dir/Compare.cpp.o"
  "CMakeFiles/kf_image.dir/Compare.cpp.o.d"
  "CMakeFiles/kf_image.dir/Generators.cpp.o"
  "CMakeFiles/kf_image.dir/Generators.cpp.o.d"
  "CMakeFiles/kf_image.dir/Image.cpp.o"
  "CMakeFiles/kf_image.dir/Image.cpp.o.d"
  "CMakeFiles/kf_image.dir/ImageIO.cpp.o"
  "CMakeFiles/kf_image.dir/ImageIO.cpp.o.d"
  "libkf_image.a"
  "libkf_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
