# Empty compiler generated dependencies file for kf_image.
# This may be replaced when dependencies are built.
