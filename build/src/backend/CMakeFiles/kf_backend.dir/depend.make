# Empty dependencies file for kf_backend.
# This may be replaced when dependencies are built.
