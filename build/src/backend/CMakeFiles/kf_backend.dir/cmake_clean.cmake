file(REMOVE_RECURSE
  "CMakeFiles/kf_backend.dir/EmitterCore.cpp.o"
  "CMakeFiles/kf_backend.dir/EmitterCore.cpp.o.d"
  "CMakeFiles/kf_backend.dir/cpu/CppEmitter.cpp.o"
  "CMakeFiles/kf_backend.dir/cpu/CppEmitter.cpp.o.d"
  "CMakeFiles/kf_backend.dir/cuda/CudaEmitter.cpp.o"
  "CMakeFiles/kf_backend.dir/cuda/CudaEmitter.cpp.o.d"
  "CMakeFiles/kf_backend.dir/opencl/ClEmitter.cpp.o"
  "CMakeFiles/kf_backend.dir/opencl/ClEmitter.cpp.o.d"
  "libkf_backend.a"
  "libkf_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
