file(REMOVE_RECURSE
  "libkf_backend.a"
)
