file(REMOVE_RECURSE
  "CMakeFiles/kf_support.dir/AsciiPlot.cpp.o"
  "CMakeFiles/kf_support.dir/AsciiPlot.cpp.o.d"
  "CMakeFiles/kf_support.dir/CommandLine.cpp.o"
  "CMakeFiles/kf_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/kf_support.dir/DotWriter.cpp.o"
  "CMakeFiles/kf_support.dir/DotWriter.cpp.o.d"
  "CMakeFiles/kf_support.dir/Error.cpp.o"
  "CMakeFiles/kf_support.dir/Error.cpp.o.d"
  "CMakeFiles/kf_support.dir/Random.cpp.o"
  "CMakeFiles/kf_support.dir/Random.cpp.o.d"
  "CMakeFiles/kf_support.dir/Statistics.cpp.o"
  "CMakeFiles/kf_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/kf_support.dir/StringUtils.cpp.o"
  "CMakeFiles/kf_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/kf_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/kf_support.dir/TablePrinter.cpp.o.d"
  "libkf_support.a"
  "libkf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
