# Empty dependencies file for kf_support.
# This may be replaced when dependencies are built.
