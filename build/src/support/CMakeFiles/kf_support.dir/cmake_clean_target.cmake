file(REMOVE_RECURSE
  "libkf_support.a"
)
