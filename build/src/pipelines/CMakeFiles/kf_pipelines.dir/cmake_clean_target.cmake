file(REMOVE_RECURSE
  "libkf_pipelines.a"
)
