file(REMOVE_RECURSE
  "CMakeFiles/kf_pipelines.dir/ConvChains.cpp.o"
  "CMakeFiles/kf_pipelines.dir/ConvChains.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Enhancement.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Enhancement.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Harris.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Harris.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Masks.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Masks.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Night.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Night.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Registry.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Registry.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/ShiTomasi.cpp.o"
  "CMakeFiles/kf_pipelines.dir/ShiTomasi.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Sobel.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Sobel.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Synthetic.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Synthetic.cpp.o.d"
  "CMakeFiles/kf_pipelines.dir/Unsharp.cpp.o"
  "CMakeFiles/kf_pipelines.dir/Unsharp.cpp.o.d"
  "libkf_pipelines.a"
  "libkf_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
