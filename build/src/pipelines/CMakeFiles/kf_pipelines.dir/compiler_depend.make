# Empty compiler generated dependencies file for kf_pipelines.
# This may be replaced when dependencies are built.
