
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipelines/ConvChains.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/ConvChains.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/ConvChains.cpp.o.d"
  "/root/repo/src/pipelines/Enhancement.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Enhancement.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Enhancement.cpp.o.d"
  "/root/repo/src/pipelines/Harris.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Harris.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Harris.cpp.o.d"
  "/root/repo/src/pipelines/Masks.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Masks.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Masks.cpp.o.d"
  "/root/repo/src/pipelines/Night.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Night.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Night.cpp.o.d"
  "/root/repo/src/pipelines/Registry.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Registry.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Registry.cpp.o.d"
  "/root/repo/src/pipelines/ShiTomasi.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/ShiTomasi.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/ShiTomasi.cpp.o.d"
  "/root/repo/src/pipelines/Sobel.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Sobel.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Sobel.cpp.o.d"
  "/root/repo/src/pipelines/Synthetic.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Synthetic.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Synthetic.cpp.o.d"
  "/root/repo/src/pipelines/Unsharp.cpp" "src/pipelines/CMakeFiles/kf_pipelines.dir/Unsharp.cpp.o" "gcc" "src/pipelines/CMakeFiles/kf_pipelines.dir/Unsharp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/kf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/kf_image.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
