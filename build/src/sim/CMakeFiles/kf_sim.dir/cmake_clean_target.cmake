file(REMOVE_RECURSE
  "libkf_sim.a"
)
