# Empty compiler generated dependencies file for kf_sim.
# This may be replaced when dependencies are built.
