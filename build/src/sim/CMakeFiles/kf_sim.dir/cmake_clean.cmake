file(REMOVE_RECURSE
  "CMakeFiles/kf_sim.dir/CostModel.cpp.o"
  "CMakeFiles/kf_sim.dir/CostModel.cpp.o.d"
  "CMakeFiles/kf_sim.dir/DeviceSpec.cpp.o"
  "CMakeFiles/kf_sim.dir/DeviceSpec.cpp.o.d"
  "CMakeFiles/kf_sim.dir/Executor.cpp.o"
  "CMakeFiles/kf_sim.dir/Executor.cpp.o.d"
  "CMakeFiles/kf_sim.dir/Runner.cpp.o"
  "CMakeFiles/kf_sim.dir/Runner.cpp.o.d"
  "CMakeFiles/kf_sim.dir/Tuner.cpp.o"
  "CMakeFiles/kf_sim.dir/Tuner.cpp.o.d"
  "libkf_sim.a"
  "libkf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
