
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CostInfo.cpp" "src/ir/CMakeFiles/kf_ir.dir/CostInfo.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/CostInfo.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/kf_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/ExprVM.cpp" "src/ir/CMakeFiles/kf_ir.dir/ExprVM.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/ExprVM.cpp.o.d"
  "/root/repo/src/ir/Kernel.cpp" "src/ir/CMakeFiles/kf_ir.dir/Kernel.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Kernel.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/kf_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/ir/CMakeFiles/kf_ir.dir/Program.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Program.cpp.o.d"
  "/root/repo/src/ir/Simplify.cpp" "src/ir/CMakeFiles/kf_ir.dir/Simplify.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Simplify.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/kf_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/kf_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/kf_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
