file(REMOVE_RECURSE
  "CMakeFiles/kf_ir.dir/CostInfo.cpp.o"
  "CMakeFiles/kf_ir.dir/CostInfo.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Expr.cpp.o"
  "CMakeFiles/kf_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/kf_ir.dir/ExprVM.cpp.o"
  "CMakeFiles/kf_ir.dir/ExprVM.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Kernel.cpp.o"
  "CMakeFiles/kf_ir.dir/Kernel.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Printer.cpp.o"
  "CMakeFiles/kf_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Program.cpp.o"
  "CMakeFiles/kf_ir.dir/Program.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Simplify.cpp.o"
  "CMakeFiles/kf_ir.dir/Simplify.cpp.o.d"
  "CMakeFiles/kf_ir.dir/Verifier.cpp.o"
  "CMakeFiles/kf_ir.dir/Verifier.cpp.o.d"
  "libkf_ir.a"
  "libkf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
