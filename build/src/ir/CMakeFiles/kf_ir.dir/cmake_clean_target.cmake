file(REMOVE_RECURSE
  "libkf_ir.a"
)
