# Empty dependencies file for kf_ir.
# This may be replaced when dependencies are built.
