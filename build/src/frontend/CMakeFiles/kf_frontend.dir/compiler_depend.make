# Empty compiler generated dependencies file for kf_frontend.
# This may be replaced when dependencies are built.
