file(REMOVE_RECURSE
  "libkf_frontend.a"
)
