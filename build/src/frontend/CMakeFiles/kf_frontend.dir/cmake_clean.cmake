file(REMOVE_RECURSE
  "CMakeFiles/kf_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/kf_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/kf_frontend.dir/Parser.cpp.o"
  "CMakeFiles/kf_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/kf_frontend.dir/Serializer.cpp.o"
  "CMakeFiles/kf_frontend.dir/Serializer.cpp.o.d"
  "libkf_frontend.a"
  "libkf_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
