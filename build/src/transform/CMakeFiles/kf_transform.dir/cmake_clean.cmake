file(REMOVE_RECURSE
  "CMakeFiles/kf_transform.dir/Fuser.cpp.o"
  "CMakeFiles/kf_transform.dir/Fuser.cpp.o.d"
  "libkf_transform.a"
  "libkf_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
