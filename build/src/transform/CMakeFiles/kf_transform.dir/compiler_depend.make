# Empty compiler generated dependencies file for kf_transform.
# This may be replaced when dependencies are built.
