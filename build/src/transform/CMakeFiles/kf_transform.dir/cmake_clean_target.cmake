file(REMOVE_RECURSE
  "libkf_transform.a"
)
