# Empty dependencies file for kf_fusion.
# This may be replaced when dependencies are built.
