file(REMOVE_RECURSE
  "CMakeFiles/kf_fusion.dir/BasicFusion.cpp.o"
  "CMakeFiles/kf_fusion.dir/BasicFusion.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/BenefitModel.cpp.o"
  "CMakeFiles/kf_fusion.dir/BenefitModel.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/Distribution.cpp.o"
  "CMakeFiles/kf_fusion.dir/Distribution.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/ExhaustivePartitioner.cpp.o"
  "CMakeFiles/kf_fusion.dir/ExhaustivePartitioner.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/GreedyPartitioner.cpp.o"
  "CMakeFiles/kf_fusion.dir/GreedyPartitioner.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/Legality.cpp.o"
  "CMakeFiles/kf_fusion.dir/Legality.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/MinCutPartitioner.cpp.o"
  "CMakeFiles/kf_fusion.dir/MinCutPartitioner.cpp.o.d"
  "CMakeFiles/kf_fusion.dir/Partition.cpp.o"
  "CMakeFiles/kf_fusion.dir/Partition.cpp.o.d"
  "libkf_fusion.a"
  "libkf_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
