file(REMOVE_RECURSE
  "libkf_fusion.a"
)
