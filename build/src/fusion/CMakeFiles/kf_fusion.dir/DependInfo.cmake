
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/BasicFusion.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/BasicFusion.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/BasicFusion.cpp.o.d"
  "/root/repo/src/fusion/BenefitModel.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/BenefitModel.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/BenefitModel.cpp.o.d"
  "/root/repo/src/fusion/Distribution.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/Distribution.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/Distribution.cpp.o.d"
  "/root/repo/src/fusion/ExhaustivePartitioner.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/ExhaustivePartitioner.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/ExhaustivePartitioner.cpp.o.d"
  "/root/repo/src/fusion/GreedyPartitioner.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/GreedyPartitioner.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/GreedyPartitioner.cpp.o.d"
  "/root/repo/src/fusion/Legality.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/Legality.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/Legality.cpp.o.d"
  "/root/repo/src/fusion/MinCutPartitioner.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/MinCutPartitioner.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/MinCutPartitioner.cpp.o.d"
  "/root/repo/src/fusion/Partition.cpp" "src/fusion/CMakeFiles/kf_fusion.dir/Partition.cpp.o" "gcc" "src/fusion/CMakeFiles/kf_fusion.dir/Partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/kf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/kf_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
