file(REMOVE_RECURSE
  "libkf_graph.a"
)
