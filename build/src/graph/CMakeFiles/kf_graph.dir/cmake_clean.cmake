file(REMOVE_RECURSE
  "CMakeFiles/kf_graph.dir/BruteForceMinCut.cpp.o"
  "CMakeFiles/kf_graph.dir/BruteForceMinCut.cpp.o.d"
  "CMakeFiles/kf_graph.dir/Digraph.cpp.o"
  "CMakeFiles/kf_graph.dir/Digraph.cpp.o.d"
  "CMakeFiles/kf_graph.dir/MinCut.cpp.o"
  "CMakeFiles/kf_graph.dir/MinCut.cpp.o.d"
  "CMakeFiles/kf_graph.dir/RandomGraphs.cpp.o"
  "CMakeFiles/kf_graph.dir/RandomGraphs.cpp.o.d"
  "libkf_graph.a"
  "libkf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
