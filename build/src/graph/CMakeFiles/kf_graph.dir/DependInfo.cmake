
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/BruteForceMinCut.cpp" "src/graph/CMakeFiles/kf_graph.dir/BruteForceMinCut.cpp.o" "gcc" "src/graph/CMakeFiles/kf_graph.dir/BruteForceMinCut.cpp.o.d"
  "/root/repo/src/graph/Digraph.cpp" "src/graph/CMakeFiles/kf_graph.dir/Digraph.cpp.o" "gcc" "src/graph/CMakeFiles/kf_graph.dir/Digraph.cpp.o.d"
  "/root/repo/src/graph/MinCut.cpp" "src/graph/CMakeFiles/kf_graph.dir/MinCut.cpp.o" "gcc" "src/graph/CMakeFiles/kf_graph.dir/MinCut.cpp.o.d"
  "/root/repo/src/graph/RandomGraphs.cpp" "src/graph/CMakeFiles/kf_graph.dir/RandomGraphs.cpp.o" "gcc" "src/graph/CMakeFiles/kf_graph.dir/RandomGraphs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
