file(REMOVE_RECURSE
  "CMakeFiles/fig6_execution_times.dir/fig6_execution_times.cpp.o"
  "CMakeFiles/fig6_execution_times.dir/fig6_execution_times.cpp.o.d"
  "fig6_execution_times"
  "fig6_execution_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_execution_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
