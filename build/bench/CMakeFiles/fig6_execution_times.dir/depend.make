# Empty dependencies file for fig6_execution_times.
# This may be replaced when dependencies are built.
