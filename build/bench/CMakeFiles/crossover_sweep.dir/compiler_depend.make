# Empty compiler generated dependencies file for crossover_sweep.
# This may be replaced when dependencies are built.
