file(REMOVE_RECURSE
  "CMakeFiles/crossover_sweep.dir/crossover_sweep.cpp.o"
  "CMakeFiles/crossover_sweep.dir/crossover_sweep.cpp.o.d"
  "crossover_sweep"
  "crossover_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
