# Empty compiler generated dependencies file for mincut_scaling.
# This may be replaced when dependencies are built.
