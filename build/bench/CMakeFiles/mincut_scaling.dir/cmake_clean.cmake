file(REMOVE_RECURSE
  "CMakeFiles/mincut_scaling.dir/mincut_scaling.cpp.o"
  "CMakeFiles/mincut_scaling.dir/mincut_scaling.cpp.o.d"
  "mincut_scaling"
  "mincut_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincut_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
