file(REMOVE_RECURSE
  "../lib/libkf_bench_common.a"
  "../lib/libkf_bench_common.pdb"
  "CMakeFiles/kf_bench_common.dir/common/BenchCommon.cpp.o"
  "CMakeFiles/kf_bench_common.dir/common/BenchCommon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
