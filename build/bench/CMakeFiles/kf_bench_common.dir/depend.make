# Empty dependencies file for kf_bench_common.
# This may be replaced when dependencies are built.
