file(REMOVE_RECURSE
  "../lib/libkf_bench_common.a"
)
