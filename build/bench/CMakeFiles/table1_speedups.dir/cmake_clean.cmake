file(REMOVE_RECURSE
  "CMakeFiles/table1_speedups.dir/table1_speedups.cpp.o"
  "CMakeFiles/table1_speedups.dir/table1_speedups.cpp.o.d"
  "table1_speedups"
  "table1_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
