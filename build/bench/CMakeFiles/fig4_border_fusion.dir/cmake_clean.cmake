file(REMOVE_RECURSE
  "CMakeFiles/fig4_border_fusion.dir/fig4_border_fusion.cpp.o"
  "CMakeFiles/fig4_border_fusion.dir/fig4_border_fusion.cpp.o.d"
  "fig4_border_fusion"
  "fig4_border_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_border_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
