# Empty compiler generated dependencies file for ablation_multioutput.
# This may be replaced when dependencies are built.
