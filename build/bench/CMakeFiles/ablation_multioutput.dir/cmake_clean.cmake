file(REMOVE_RECURSE
  "CMakeFiles/ablation_multioutput.dir/ablation_multioutput.cpp.o"
  "CMakeFiles/ablation_multioutput.dir/ablation_multioutput.cpp.o.d"
  "ablation_multioutput"
  "ablation_multioutput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multioutput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
