# Empty dependencies file for table2_geomean.
# This may be replaced when dependencies are built.
