file(REMOVE_RECURSE
  "CMakeFiles/table2_geomean.dir/table2_geomean.cpp.o"
  "CMakeFiles/table2_geomean.dir/table2_geomean.cpp.o.d"
  "table2_geomean"
  "table2_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
