# Empty compiler generated dependencies file for fig3_harris_trace.
# This may be replaced when dependencies are built.
