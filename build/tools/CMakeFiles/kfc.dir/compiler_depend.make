# Empty compiler generated dependencies file for kfc.
# This may be replaced when dependencies are built.
