file(REMOVE_RECURSE
  "CMakeFiles/custom_dsl.dir/custom_dsl.cpp.o"
  "CMakeFiles/custom_dsl.dir/custom_dsl.cpp.o.d"
  "custom_dsl"
  "custom_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
