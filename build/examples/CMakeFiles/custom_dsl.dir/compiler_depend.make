# Empty compiler generated dependencies file for custom_dsl.
# This may be replaced when dependencies are built.
