
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_dsl.cpp" "examples/CMakeFiles/custom_dsl.dir/custom_dsl.cpp.o" "gcc" "examples/CMakeFiles/custom_dsl.dir/custom_dsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipelines/CMakeFiles/kf_pipelines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/kf_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kf_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/kf_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/kf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/kf_image.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
