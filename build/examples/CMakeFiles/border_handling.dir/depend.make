# Empty dependencies file for border_handling.
# This may be replaced when dependencies are built.
