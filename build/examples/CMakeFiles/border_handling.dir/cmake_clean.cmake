file(REMOVE_RECURSE
  "CMakeFiles/border_handling.dir/border_handling.cpp.o"
  "CMakeFiles/border_handling.dir/border_handling.cpp.o.d"
  "border_handling"
  "border_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/border_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
