file(REMOVE_RECURSE
  "CMakeFiles/harris_pipeline.dir/harris_pipeline.cpp.o"
  "CMakeFiles/harris_pipeline.dir/harris_pipeline.cpp.o.d"
  "harris_pipeline"
  "harris_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harris_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
