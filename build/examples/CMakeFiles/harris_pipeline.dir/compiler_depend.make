# Empty compiler generated dependencies file for harris_pipeline.
# This may be replaced when dependencies are built.
