
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/kf_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_backend_cpu.cpp" "tests/CMakeFiles/kf_tests.dir/test_backend_cpu.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_backend_cpu.cpp.o.d"
  "/root/repo/tests/test_backend_opencl.cpp" "tests/CMakeFiles/kf_tests.dir/test_backend_opencl.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_backend_opencl.cpp.o.d"
  "/root/repo/tests/test_costmodel.cpp" "tests/CMakeFiles/kf_tests.dir/test_costmodel.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_costmodel.cpp.o.d"
  "/root/repo/tests/test_distribution.cpp" "tests/CMakeFiles/kf_tests.dir/test_distribution.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_distribution.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/kf_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_exprvm.cpp" "tests/CMakeFiles/kf_tests.dir/test_exprvm.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_exprvm.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/kf_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_frontend_robustness.cpp" "tests/CMakeFiles/kf_tests.dir/test_frontend_robustness.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_frontend_robustness.cpp.o.d"
  "/root/repo/tests/test_fusion_benefit.cpp" "tests/CMakeFiles/kf_tests.dir/test_fusion_benefit.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_fusion_benefit.cpp.o.d"
  "/root/repo/tests/test_fusion_legality.cpp" "tests/CMakeFiles/kf_tests.dir/test_fusion_legality.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_fusion_legality.cpp.o.d"
  "/root/repo/tests/test_fusion_partitioners.cpp" "tests/CMakeFiles/kf_tests.dir/test_fusion_partitioners.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_fusion_partitioners.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/kf_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_image.cpp" "tests/CMakeFiles/kf_tests.dir/test_image.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_image.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/kf_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/kf_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_kfp_sync.cpp" "tests/CMakeFiles/kf_tests.dir/test_kfp_sync.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_kfp_sync.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/kf_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_multioutput.cpp" "tests/CMakeFiles/kf_tests.dir/test_multioutput.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_multioutput.cpp.o.d"
  "/root/repo/tests/test_pipelines.cpp" "tests/CMakeFiles/kf_tests.dir/test_pipelines.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_pipelines.cpp.o.d"
  "/root/repo/tests/test_property_random.cpp" "tests/CMakeFiles/kf_tests.dir/test_property_random.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_property_random.cpp.o.d"
  "/root/repo/tests/test_simplify.cpp" "tests/CMakeFiles/kf_tests.dir/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_simplify.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/kf_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/kf_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/test_tuner_plot.cpp" "tests/CMakeFiles/kf_tests.dir/test_tuner_plot.cpp.o" "gcc" "tests/CMakeFiles/kf_tests.dir/test_tuner_plot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipelines/CMakeFiles/kf_pipelines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/kf_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/kf_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kf_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/kf_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/kf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/kf_image.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
