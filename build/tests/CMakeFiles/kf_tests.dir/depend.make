# Empty dependencies file for kf_tests.
# This may be replaced when dependencies are built.
