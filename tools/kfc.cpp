//===- tools/kfc.cpp - The kernel-fusion compiler driver -------------------------===//
//
// kfc: parse a .kfp pipeline description, run the kernel-fusion analysis,
// and emit reports or code -- the command-line face of the library, in the
// spirit of Hipacc's source-to-source compiler driver.
//
//   kfc pipeline.kfp                       fusion report (default)
//   kfc pipeline.kfp --emit cuda           fused CUDA source on stdout
//   kfc pipeline.kfp --emit cpp            fused C++ source
//   kfc pipeline.kfp --emit ir             textual IR dump
//   kfc pipeline.kfp --emit kfp            re-serialized pipeline
//   kfc pipeline.kfp --emit dot            Graphviz DAG with fusion blocks
//   kfc pipeline.kfp --style basic         prior-work pairwise fusion
//   kfc pipeline.kfp --style none          no fusion (baseline)
//   kfc pipeline.kfp --trace               print Algorithm 1 iterations
//   kfc pipeline.kfp --time                simulated times on the 3 GPUs
//
// Hardware-model knobs: --tg --ts --calu --csfu --cmshared --gamma.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/IntervalAnalysis.h"
#include "backend/cpu/CppEmitter.h"
#include "backend/cuda/CudaEmitter.h"
#include "backend/opencl/ClEmitter.h"
#include "frontend/LazyScript.h"
#include "frontend/Parser.h"
#include "frontend/Serializer.h"
#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/Printer.h"
#include "ir/Simplify.h"
#include "sim/CostModel.h"
#include "sim/Executor.h"
#include "sim/LazyRuntime.h"
#include "sim/Metrics.h"
#include "sim/Server.h"
#include "sim/Session.h"
#include "support/Statistics.h"
#include "support/CommandLine.h"
#include "support/DotWriter.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "transform/Fuser.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace kf;

static void printUsage() {
  std::printf(
      "usage: kfc <pipeline.kfp> [options]\n"
      "       kfc --lazy <script.lz> [options]\n"
      "  --lazy <script.lz>           record the op-per-line lazy builder\n"
      "                               script (docs/FRONTEND.md), fuse and\n"
      "                               gate it, then materialize --repeat\n"
      "                               times (default 2: cold build + warm\n"
      "                               plan-cache hit) and compare against\n"
      "                               the unfused reference; honors\n"
      "                               --analyze/--Werror, --style\n"
      "                               optimized|none, and the --run\n"
      "                               engine options below\n"
      "  --emit cuda|cpp|opencl|ir|kfp|dot  emit code instead of the "
      "report\n"
      "  --style optimized|basic|none fusion strategy (default optimized)\n"
      "  --analyze                    run the static analyzer: program\n"
      "                               lint, fused-bytecode validation, and\n"
      "                               footprint/halo checks; exit 1 on\n"
      "                               errors\n"
      "  --analysis-json=<out.json>   with --analyze: also write the\n"
      "                               diagnostics as JSON\n"
      "  --Werror                     with --analyze: warnings fail too\n"
      "  --trace                      print the Algorithm 1 iterations\n"
      "  --trace=<out.json>           with --run: record spans and write a\n"
      "                               chrome://tracing JSON timeline\n"
      "  --metrics                    with --run: per-launch predicted vs\n"
      "                               measured table + span/counter summary\n"
      "  --time                       print simulated GPU times\n"
      "  --run                        execute on random input: fused VM vs\n"
      "                               unfused AST wall time + max |diff|\n"
      "  --threads <n>                worker threads for --run (0 = auto)\n"
      "  --vm scalar|span|jit         interior VM engine for --run:\n"
      "                               span (lane-batched, default), jit\n"
      "                               (compiled per-plan cell chains), or\n"
      "                               scalar (per-pixel); KF_VM overrides\n"
      "                               the default\n"
      "  --tiling interior|overlapped|tuned  tiling strategy for --run:\n"
      "                               interior/halo split (default),\n"
      "                               overlapped tiles recomputing their\n"
      "                               own halos, or cost-model autotuned;\n"
      "                               KF_TILING overrides the default\n"
      "  --opt on|off                 interval-fact-gated bytecode\n"
      "                               optimizer at session compile time\n"
      "                               (default on; KF_OPT overrides the\n"
      "                               default; off executes bytecode as\n"
      "                               compiled -- results are identical)\n"
      "  --tile <WxH>                 tile extents for --run, e.g. 128x32\n"
      "                               (default per strategy; KF_TILE\n"
      "                               overrides the default)\n"
      "  --frames <n>                 with --run: stream n frames through a\n"
      "                               pipeline session (compiled-plan cache\n"
      "                               + frame buffer reuse)\n"
      "  --repeat <k>                 with --frames: repeat the stream k\n"
      "                               times on one session (warm repeats)\n"
      "  --serve                      multiplex the pipeline across N\n"
      "                               concurrent sessions of one server\n"
      "                               (shared thread pool + plan cache):\n"
      "                               per-session p50/p99 frame latency,\n"
      "                               aggregate pixels/s, and a\n"
      "                               bit-identical probe vs a serial\n"
      "                               session\n"
      "  --sessions <n>               with --serve: concurrent sessions\n"
      "                               (default 4)\n"
      "  --arrival uniform|zipf       with --serve: frame arrival pattern\n"
      "                               (uniform round-robin, or Zipf-skewed\n"
      "                               popularity; default uniform)\n"
      "  --fold                       run constant folding/simplification\n"
      "  --multi-out                  allow multi-destination fusion\n"
      "  --tg/--ts/--calu/--csfu/--cmshared/--gamma <num>  model knobs\n");
}

/// Parses the shared execution-engine options (--threads/--vm/--tiling/
/// --opt/--tile) into \p Exec, hardened per the option-grammar rules:
/// every unknown enumerator or malformed tile spec is a printed
/// diagnostic and a false return, never a crash. Used by --run, --serve,
/// and --lazy.
static bool parseExecutionOptions(const CommandLine &Cl,
                                  ExecutionOptions &Exec) {
  Exec.Threads = static_cast<int>(Cl.getIntOption("threads", 0));
  std::string VmName = Cl.getOption("vm", "auto");
  if (VmName == "scalar")
    Exec.Mode = VmMode::Scalar;
  else if (VmName == "span")
    Exec.Mode = VmMode::Span;
  else if (VmName == "jit")
    Exec.Mode = VmMode::Jit;
  else if (VmName != "auto") {
    std::fprintf(stderr,
                 "error: invalid --vm '%s' (expected 'scalar', 'span' "
                 "or 'jit')\n",
                 VmName.c_str());
    return false;
  }
  std::string TilingName = Cl.getOption("tiling", "auto");
  if (TilingName == "interior")
    Exec.Tiling = TilingStrategy::InteriorHalo;
  else if (TilingName == "overlapped")
    Exec.Tiling = TilingStrategy::Overlapped;
  else if (TilingName == "tuned")
    Exec.Tiling = TilingStrategy::Tuned;
  else if (TilingName != "auto") {
    std::fprintf(stderr,
                 "error: invalid --tiling '%s' (expected 'interior', "
                 "'overlapped' or 'tuned')\n",
                 TilingName.c_str());
    return false;
  }
  std::string OptName = Cl.getOption("opt", "auto");
  if (OptName == "on")
    Exec.Opt = OptMode::On;
  else if (OptName == "off")
    Exec.Opt = OptMode::Off;
  else if (OptName != "auto") {
    std::fprintf(stderr, "error: invalid --opt '%s' (expected 'on' or "
                         "'off')\n",
                 OptName.c_str());
    return false;
  }
  std::string TileSpec = Cl.getOption("tile", "");
  if (!TileSpec.empty() &&
      !parseTileSpec(TileSpec.c_str(), Exec.TileWidth, Exec.TileHeight)) {
    std::fprintf(stderr,
                 "error: invalid --tile '%s' (expected 'WxH' with "
                 "extents in [1, 65536])\n",
                 TileSpec.c_str());
    return false;
  }
  return true;
}

static std::string blockNames(const Program &P,
                              const std::vector<KernelId> &Block) {
  std::vector<std::string> Names;
  for (KernelId Id : Block)
    Names.push_back(P.kernel(Id).Name);
  return "{" + joinStrings(Names, ", ") + "}";
}

/// The `kfc --lazy <script>` driver: records the builder script through
/// the lazy frontend, runs the materialization gate, and (outside
/// --analyze) executes the pipeline --repeat times against the shared
/// plan cache -- the second materialization of the same shape must hit
/// warm -- then differentially compares the fused result against the
/// unfused AST reference.
static int runLazyDriver(const CommandLine &Cl, DiagnosticEngine &DE,
                         bool Analyze, bool Werror,
                         const std::function<int()> &FinishAnalysis) {
  // Hardened option grammar: an empty or whitespace-only script path is
  // a diagnostic, never a crash or an open() of "".
  std::string ScriptPath = trimString(Cl.getOption("lazy", ""));
  if (ScriptPath.empty()) {
    std::fprintf(stderr,
                 "error: --lazy expects a non-empty script path\n");
    return 1;
  }

  LazyScriptResult Script = parseLazyScriptFile(ScriptPath);
  if (!Script.ok()) {
    for (const LazyIssue &Issue : Script.Errors) {
      DiagLocation Loc;
      Loc.Unit = ScriptPath;
      Loc.Kernel = Issue.Where;
      DE.error(Issue.Code, Issue.Message, Loc);
    }
    if (Analyze)
      return FinishAnalysis();
    std::fputs(DE.renderText().c_str(), stdout);
    std::fprintf(stderr, "error: lazy script '%s' rejected\n",
                 ScriptPath.c_str());
    return 1;
  }

  ExecutionOptions Exec;
  if (!parseExecutionOptions(Cl, Exec))
    return 1;

  LazyGateOptions Gate;
  Gate.Werror = Werror;
  Gate.Legality.AllowMultipleDestinations = Cl.hasOption("multi-out");
  std::string Style = Cl.getOption("style", "optimized");
  if (Style == "none")
    Gate.Fuse = false;
  else if (Style != "optimized") {
    std::fprintf(stderr,
                 "error: invalid --style '%s' for --lazy (expected "
                 "'optimized' or 'none')\n",
                 Style.c_str());
    return 1;
  }
  Gate.HW.GlobalAccessCycles =
      Cl.getDoubleOption("tg", Gate.HW.GlobalAccessCycles);
  Gate.HW.SharedAccessCycles =
      Cl.getDoubleOption("ts", Gate.HW.SharedAccessCycles);
  Gate.HW.AluCost = Cl.getDoubleOption("calu", Gate.HW.AluCost);
  Gate.HW.SfuCost = Cl.getDoubleOption("csfu", Gate.HW.SfuCost);
  Gate.HW.SharedMemThreshold =
      Cl.getDoubleOption("cmshared", Gate.HW.SharedMemThreshold);
  Gate.HW.Gamma = Cl.getDoubleOption("gamma", Gate.HW.Gamma);

  MaterializedPipeline MP =
      compileLazy(*Script.Pipeline, Script.outputs(), Gate);
  for (const Diagnostic &Diag : MP.Diags.diagnostics())
    DE.report(Diag);
  if (Analyze)
    return FinishAnalysis();
  if (!MP.Ok) {
    std::fputs(DE.renderText().c_str(), stdout);
    std::fprintf(stderr,
                 "error: lazy pipeline '%s' rejected by the analyzer\n",
                 ScriptPath.c_str());
    return 1;
  }
  if (!DE.empty())
    std::fputs(DE.renderText().c_str(), stdout);

  const Program &P = *MP.Prog;
  std::printf("lazy pipeline '%s': %zu recorded ops -> %u live kernels "
              "in %u fused launches (shape hash %016llx)\n",
              Script.Pipeline->name().c_str(), Script.Pipeline->numOps(),
              P.numKernels(), MP.Fused.numLaunches(),
              static_cast<unsigned long long>(MP.StructuralHash));

  // Deterministic inputs honoring the repo-wide [0, 1] contract.
  Rng Gen(2026);
  std::vector<Image> InputImages;
  InputImages.reserve(MP.Inputs.size());
  for (const auto &Entry : MP.Inputs) {
    const ImageInfo &Info = P.image(Entry.second);
    InputImages.push_back(
        makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen));
  }
  std::vector<std::pair<std::string, const Image *>> Inputs;
  Inputs.reserve(MP.Inputs.size());
  for (size_t I = 0; I != MP.Inputs.size(); ++I)
    Inputs.emplace_back(MP.Inputs[I].first, &InputImages[I]);

  // Repeat materializations against the process-wide plan cache; the
  // default of two demonstrates the cold build followed by the warm
  // same-shape hit.
  int Repeat = std::max(1, static_cast<int>(Cl.getIntOption("repeat", 2)));
  LazyRunResult Last;
  for (int R = 0; R != Repeat; ++R) {
    LazyRunResult Run = runLazy(MP, Inputs, Exec);
    if (!Run.Ok) {
      std::fputs(Run.Diags.renderText().c_str(), stdout);
      std::fprintf(stderr, "error: lazy execution failed\n");
      return 1;
    }
    std::printf("materialize %d: %s, compile %.3f ms, exec %.3f ms\n", R,
                Run.Stats.PlanWasHit ? "warm (plan-cache hit)"
                                     : "cold (compiled)",
                Run.Stats.CompileMs, Run.Stats.ExecMs);
    Last = std::move(Run);
  }

  // Differential probe: the unfused AST walker over the same live
  // program and inputs must agree bit-for-bit.
  std::vector<Image> Pool = makeImagePool(P);
  for (const auto &Entry : MP.Inputs)
    for (const auto &Given : Inputs)
      if (Given.first == Entry.first)
        Pool[Entry.second] = *Given.second;
  runUnfused(P, Pool, Exec);
  double MaxDiff = 0.0;
  for (size_t I = 0; I != MP.Outputs.size(); ++I)
    MaxDiff = std::max(
        MaxDiff, maxAbsDifference(Last.Outputs[I], Pool[MP.Outputs[I]]));
  for (size_t I = 0; I != MP.Outputs.size(); ++I) {
    const Image &Out = Last.Outputs[I];
    double Sum = 0.0;
    for (int Y = 0; Y != Out.height(); ++Y)
      for (int X = 0; X != Out.width(); ++X)
        for (int C = 0; C != Out.channels(); ++C)
          Sum += Out.at(X, Y, C);
    std::printf("  output %zu: %dx%dx%d mean %.6f\n", I, Out.width(),
                Out.height(), Out.channels(),
                Sum / (static_cast<double>(Out.iterationSpace()) *
                       Out.channels()));
  }
  std::printf("max |lazy - unfused| = %.3g%s\n", MaxDiff,
              MaxDiff == 0.0 ? " (bit-identical)" : "");
  if (MaxDiff != 0.0) {
    std::fprintf(stderr,
                 "error: lazy result differs from the reference\n");
    return 1;
  }
  return 0;
}

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv,
                 {"trace", "time", "fold", "multi-out", "run", "metrics",
                  "analyze", "Werror", "serve", "help"});
  // --lazy takes its script as the option value, so lazy mode runs with
  // zero positionals; every other mode requires exactly the .kfp path.
  const bool LazyMode = Cl.hasOption("lazy");
  if (Cl.hasOption("help") ||
      Cl.positional().size() != (LazyMode ? 0U : 1U)) {
    printUsage();
    return Cl.hasOption("help") ? 0 : 1;
  }

  // A bare --trace prints the Algorithm 1 iterations (report mode);
  // --trace=<file> records execution spans and writes a chrome://tracing
  // timeline. --metrics implies recording too.
  std::string TracePath = Cl.getOption("trace", "");
  if (TracePath == "1")
    TracePath.clear();
  const bool Metrics = Cl.hasOption("metrics");
  if (!TracePath.empty() || Metrics) {
    TraceRecorder::global().setEnabled(true);
    MetricsRegistry::global().setEnabled(true);
  }

  // --analyze parses leniently: the strict verifier is replaced by the
  // coded lint pass so every problem is reported, not just the first.
  const bool Analyze = Cl.hasOption("analyze");
  const bool Werror = Cl.hasOption("Werror");
  DiagnosticEngine DE;

  // Renders the collected diagnostics (text to stdout, optional JSON
  // file) and returns the process exit status.
  auto finishAnalysis = [&]() -> int {
    std::string JsonPath = Cl.getOption("analysis-json", "");
    if (!JsonPath.empty()) {
      std::FILE *Out = std::fopen(JsonPath.c_str(), "wb");
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
        return 1;
      }
      std::string Json = DE.renderJson();
      std::fwrite(Json.data(), 1, Json.size(), Out);
      std::fclose(Out);
    }
    if (!DE.empty())
      std::fputs(DE.renderText().c_str(), stdout);
    std::printf("analysis: %u error(s), %u warning(s)\n", DE.errorCount(),
                DE.warningCount());
    return DE.failed(Werror) ? 1 : 0;
  };

  if (LazyMode)
    return runLazyDriver(Cl, DE, Analyze, Werror, finishAnalysis);

  ParseResult Parsed =
      parsePipelineFile(Cl.positional().front(), /*Verify=*/!Analyze);
  if (!Parsed.success() && !(Analyze && Parsed.Prog)) {
    if (Analyze) {
      // Lex/parse failures still get coded, machine-readable output.
      DiagLocation Loc;
      Loc.Unit = Cl.positional().front();
      for (const std::string &Error : Parsed.Errors)
        DE.error("KF-P00", Error, Loc);
      return finishAnalysis();
    }
    for (const std::string &Error : Parsed.Errors)
      std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Program &P = *Parsed.Prog;
  if (Analyze) {
    lintProgram(P, DE);
    // Fusion and bytecode compilation assume well-formed IR (their cost
    // analysis asserts on malformed bodies), so stop at lint errors.
    if (DE.errorCount() > 0)
      return finishAnalysis();
  }
  if (Cl.hasOption("fold")) {
    unsigned Changed = simplifyProgram(P);
    if (Changed != 0)
      std::fprintf(stderr, "note: simplified %u kernel bodies\n", Changed);
  }

  HardwareModel HW;
  HW.GlobalAccessCycles = Cl.getDoubleOption("tg", HW.GlobalAccessCycles);
  HW.SharedAccessCycles = Cl.getDoubleOption("ts", HW.SharedAccessCycles);
  HW.AluCost = Cl.getDoubleOption("calu", HW.AluCost);
  HW.SfuCost = Cl.getDoubleOption("csfu", HW.SfuCost);
  HW.SharedMemThreshold =
      Cl.getDoubleOption("cmshared", HW.SharedMemThreshold);
  HW.Gamma = Cl.getDoubleOption("gamma", HW.Gamma);

  // Run the requested fusion strategy.
  LegalityOptions Options;
  Options.AllowMultipleDestinations = Cl.hasOption("multi-out");
  std::string Style = Cl.getOption("style", "optimized");
  MinCutFusionResult MinCut; // Also used for the report's edge table.
  Partition Blocks;
  FusionStyle TransformStyle = FusionStyle::Optimized;
  if (Style == "optimized") {
    MinCut = runMinCutFusion(P, HW, Options);
    Blocks = MinCut.Blocks;
  } else if (Style == "basic") {
    MinCut = runMinCutFusion(P, HW, Options);
    BasicFusionResult Basic = runBasicFusion(P, HW);
    Blocks = Basic.Blocks;
    TransformStyle = FusionStyle::Basic;
  } else if (Style == "none") {
    MinCut = runMinCutFusion(P, HW, Options);
    Blocks = makeSingletonPartition(P);
  } else {
    std::fprintf(stderr, "error: unknown --style '%s'\n", Style.c_str());
    return 1;
  }
  FusedProgram FP = fuseProgram(P, Blocks, TransformStyle);

  if (Analyze) {
    // Re-check the chosen partition against the legality rules, then
    // compile each fused launch exactly as the session would and prove
    // its bytecode and interior/halo split sound.
    checkFusedLegality(FP, HW, Options, DE);
    std::vector<ImageInfo> Shapes;
    Shapes.reserve(P.numImages());
    for (ImageId Id = 0; Id != P.numImages(); ++Id)
      Shapes.push_back(P.image(Id));
    // Interval interpretation runs per fused kernel (the facts are
    // root-independent); each destination's result interval seeds the
    // load ranges of every later kernel that reads it, mirroring the
    // session compile. External inputs carry the [0, 1] contract.
    std::vector<InputRange> PoolRanges(P.numImages());
    for (const FusedKernel &FK : FP.Kernels) {
      StagedVmProgram SP = compileFusedKernel(FP, FK);
      uint16_t FirstRoot = 0;
      std::vector<std::pair<KernelId, uint16_t>> Dests;
      for (KernelId DestId : FK.Destinations) {
        uint16_t Root = 0;
        for (size_t I = 0; I != FK.Stages.size(); ++I)
          if (FK.Stages[I].Kernel == DestId)
            Root = static_cast<uint16_t>(I);
        if (Dests.empty())
          FirstRoot = Root;
        Dests.emplace_back(DestId, Root);
        int Halo = fusedLaunchHalo(SP, Root, P.image(P.kernel(DestId).Output));
        analyzeLaunch(P, FK, FK.Name, SP, Root, Halo, Shapes, DE);
      }
      DiagLocation Loc;
      Loc.Kernel = FK.Name;
      IntervalAnalysisResult Intervals =
          analyzeStagedIntervals(SP, FirstRoot, PoolRanges, &DE, Loc);
      std::printf("intervals for %s:\n", FK.Name.c_str());
      for (size_t I = 0; I != SP.Stages.size(); ++I)
        std::printf("  stage %zu (%s): %s\n", I,
                    P.kernel(FK.Stages[I].Kernel).Name.c_str(),
                    formatInterval(Intervals.Stages[I].Result).c_str());
      for (const auto &Dest : Dests) {
        const RegInterval &R = Intervals.Stages[Dest.second].Result;
        InputRange Written;
        Written.Lo = R.Lo;
        Written.Hi = R.Hi;
        Written.MayNaN = R.MayNaN;
        PoolRanges[P.kernel(Dest.first).Output] = Written;
      }
    }
    return finishAnalysis();
  }

  if (Cl.hasOption("run") || Cl.hasOption("serve")) {
    ExecutionOptions Exec;
    if (!parseExecutionOptions(Cl, Exec))
      return 1;

    // Runs after the engines (and their thread pools, which export their
    // scheduling counters at destruction) are done.
    auto reportObservability = [&] {
      if (Metrics) {
        std::string Table = MetricsRegistry::global().renderTable();
        if (!Table.empty()) {
          std::printf("\npredicted vs measured launches (reference device "
                      "%s):\n",
                      MetricsRegistry::referenceDevice().Name.c_str());
          std::fputs(Table.c_str(), stdout);
        }
        std::string Summary = TraceRecorder::global().metricsSummary();
        if (!Summary.empty()) {
          std::printf("\nspan / counter summary:\n");
          std::fputs(Summary.c_str(), stdout);
        }
      }
      if (!TracePath.empty()) {
        if (TraceRecorder::global().writeChromeTrace(TracePath))
          std::printf("wrote chrome trace to '%s' (load in "
                      "chrome://tracing)\n",
                      TracePath.c_str());
        else
          std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                       TracePath.c_str());
      }
    };

    int Frames = static_cast<int>(Cl.getIntOption("frames", 0));
    int Repeat = std::max(1, static_cast<int>(Cl.getIntOption("repeat", 1)));

    if (Cl.hasOption("serve")) {
      // Server mode: N concurrent client sessions of this pipeline,
      // multiplexed over one shared thread pool and plan cache, driven by
      // dispatcher threads. Reports per-session frame latency quantiles,
      // aggregate throughput, and a bit-identical probe against a serial
      // private session.
      int Sessions = std::max(1, static_cast<int>(Cl.getIntOption(
                                     "sessions", 4)));
      std::string Arrival = Cl.getOption("arrival", "uniform");
      if (Arrival != "uniform" && Arrival != "zipf") {
        std::fprintf(stderr,
                     "error: invalid --arrival '%s' (expected 'uniform' "
                     "or 'zipf')\n",
                     Arrival.c_str());
        return 1;
      }
      int FramesEach = Frames > 0 ? Frames : 8;
      int Total = FramesEach * Sessions;

      // Arrival schedule: the tenant of each successive submission.
      // Uniform round-robins; zipf draws tenants with probability
      // proportional to 1/(rank+1) -- the classic skewed-popularity
      // model -- so low-numbered sessions are hot and the tail is cold.
      std::vector<int> Schedule;
      Schedule.reserve(Total);
      if (Arrival == "uniform") {
        for (int F = 0; F != Total; ++F)
          Schedule.push_back(F % Sessions);
      } else {
        std::vector<double> Cdf(Sessions);
        double Sum = 0.0;
        for (int S = 0; S != Sessions; ++S) {
          Sum += 1.0 / (S + 1);
          Cdf[S] = Sum;
        }
        Rng Gen(2026);
        for (int F = 0; F != Total; ++F) {
          double U = Gen.uniform(0.0, Sum);
          int S = 0;
          while (S + 1 < Sessions && Cdf[S] < U)
            ++S;
          Schedule.push_back(S);
        }
      }
      std::vector<int> PerSession(Sessions, 0);
      for (int S : Schedule)
        ++PerSession[S];

      // The same (session, frame) seed drives the server run and the
      // serial probe, so the outputs must be bit-identical.
      auto FillFor = [&P](int SessionIdx) {
        return [&P, SessionIdx](int FrameIdx, std::vector<Image> &Pool) {
          Rng Gen(2026 + static_cast<uint64_t>(SessionIdx) * 131071 +
                  static_cast<uint64_t>(FrameIdx) * 977);
          for (ImageId Id : P.externalInputs()) {
            const ImageInfo &Info = P.image(Id);
            Pool[Id] = makeRandomImage(Info.Width, Info.Height,
                                       Info.Channels, Gen);
          }
        };
      };

      std::vector<ImageId> Outputs;
      for (const FusedKernel &FK : FP.Kernels)
        for (KernelId Dest : FK.Destinations)
          Outputs.push_back(P.kernel(Dest).Output);

      // Probe: capture session 0's last frame from inside the server...
      int ProbeIndex = PerSession[0] - 1;
      std::vector<Image> Probe;
      double WallMs = 0.0;
      std::vector<TenantStats> Stats;
      {
        ServerOptions SO;
        SO.Threads = Exec.Threads;
        SO.Dispatchers = 2;
        PipelineServer Server(SO);
        std::vector<PipelineServer::SessionId> Ids;
        for (int S = 0; S != Sessions; ++S) {
          TenantOptions TO;
          TO.Name = "s" + std::to_string(S);
          TO.QueueCapacity = 4;
          Ids.push_back(Server.open(FP, Exec, TO));
        }
        auto Start = std::chrono::steady_clock::now();
        for (int S : Schedule) {
          PipelineSession::FrameConsumer Consume;
          if (S == 0)
            Consume = [&Probe, &Outputs,
                       ProbeIndex](int Idx, const std::vector<Image> &Pool) {
              if (Idx == ProbeIndex)
                for (ImageId Out : Outputs)
                  Probe.push_back(Pool[Out]);
            };
          Server.submit(Ids[S], FillFor(S), Consume);
        }
        Server.drainAll();
        WallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
        for (int S = 0; S != Sessions; ++S)
          Stats.push_back(Server.tenantStats(Ids[S]));
      } // Server scope: pool exports its counters on destruction.

      // ...and replay session 0 serially on a private session.
      double MaxDiff = 0.0;
      if (ProbeIndex >= 0) {
        PipelineSession Serial(FP, Exec);
        std::vector<Image> Ref = Serial.acquireFrame();
        FillFor(0)(ProbeIndex, Ref);
        Serial.runFrame(Ref);
        size_t Slot = 0;
        for (ImageId Out : Outputs)
          MaxDiff = std::max(MaxDiff,
                             maxAbsDifference(Ref[Out], Probe[Slot++]));
        Serial.releaseFrame(std::move(Ref));
      }

      uint64_t Completed = 0;
      long long PixelsPerFrame = 0;
      for (ImageId Out : Outputs)
        PixelsPerFrame += P.image(Out).iterationSpace();
      TablePrinter Table({"session", "frames", "p50 ms", "p99 ms",
                          "mean ms", "queue ms", "exec ms"});
      for (const TenantStats &T : Stats) {
        Completed += T.Completed;
        std::vector<double> Sorted = T.LatenciesMs;
        std::sort(Sorted.begin(), Sorted.end());
        double Mean = 0.0;
        for (double L : Sorted)
          Mean += L;
        Table.addRow(
            {T.Name, std::to_string(T.Completed),
             Sorted.empty() ? "-" : formatDouble(quantileSorted(Sorted, 0.5), 3),
             Sorted.empty() ? "-" : formatDouble(quantileSorted(Sorted, 0.99), 3),
             Sorted.empty() ? "-"
                            : formatDouble(Mean / Sorted.size(), 3),
             formatDouble(T.QueueMs, 3), formatDouble(T.ExecMs, 3)});
      }
      double PixelsPerSec =
          Completed * PixelsPerFrame * 1000.0 / std::max(WallMs, 1e-9);
      std::printf("served '%s' to %d sessions (%s arrival, %u threads, "
                  "%s fusion): %llu frames in %.3f ms\n",
                  P.name().c_str(), Sessions, Arrival.c_str(),
                  resolveThreadCount(Exec.Threads), Style.c_str(),
                  static_cast<unsigned long long>(Completed), WallMs);
      std::fputs(Table.render().c_str(), stdout);
      std::printf("aggregate throughput: %.3f Mpixel/s\n",
                  PixelsPerSec / 1e6);
      std::printf("max |server frame - serial session| over destinations: "
                  "%g\n",
                  MaxDiff);
      reportObservability();
      return MaxDiff == 0.0 ? 0 : 1;
    }

    if (Frames > 0) {
      // Session streaming mode: compile the fused plan once, stream
      // frames through recycled buffers with double-buffered input fill.
      auto FillFrame = [&](int Frame, std::vector<Image> &Pool) {
        Rng Gen(2026 + static_cast<uint64_t>(Frame) * 977);
        for (ImageId Id : P.externalInputs()) {
          const ImageInfo &Info = P.image(Id);
          Pool[Id] =
              makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
        }
      };

      // Unfused AST reference for the stream's final frame.
      std::vector<Image> Reference = makeImagePool(P);
      FillFrame(Frames - 1, Reference);
      runUnfused(P, Reference, Exec);

      {
      PipelineSession Session(FP, Exec);
      std::vector<Image> LastFrame;
      TablePrinter Stream({"repeat", "wall ms", "frames/s"});
      for (int R = 0; R != Repeat; ++R) {
        auto Start = std::chrono::steady_clock::now();
        Session.runFrames(
            Frames, FillFrame,
            [&](int Frame, const std::vector<Image> &Pool) {
              if (R + 1 == Repeat && Frame + 1 == Frames)
                LastFrame = Pool;
            });
        double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
        Stream.addRow({std::to_string(R + 1) + (R == 0 ? " (cold)" : ""),
                       formatDouble(Ms, 3),
                       formatDouble(Frames * 1000.0 / Ms, 3)});
      }

      double MaxDiff = 0.0;
      for (const FusedKernel &FK : FP.Kernels)
        for (KernelId Dest : FK.Destinations) {
          ImageId Out = P.kernel(Dest).Output;
          MaxDiff = std::max(
              MaxDiff, maxAbsDifference(LastFrame[Out], Reference[Out]));
        }

      const SessionStats &S = Session.stats();
      std::printf("streamed '%s' with %u threads (%s fusion, %s tiling), "
                  "%d frames x %d repeats\n",
                  P.name().c_str(), resolveThreadCount(Exec.Threads),
                  Style.c_str(),
                  tilingStrategyName(resolveTilingStrategy(Exec.Tiling)),
                  Frames, Repeat);
      std::fputs(Stream.render().c_str(), stdout);
      std::printf("plan cache: %llu hits, %llu misses (compile %.3f ms); "
                  "frame buffers: %llu reused, %llu allocated\n",
                  static_cast<unsigned long long>(S.PlanHits),
                  static_cast<unsigned long long>(S.PlanMisses),
                  S.CompileMs,
                  static_cast<unsigned long long>(S.FramesReused),
                  static_cast<unsigned long long>(S.FramesAllocated));
      std::printf("max |session frame - unfused ast| over destinations: "
                  "%g\n",
                  MaxDiff);
      } // Session scope: its thread pool exports counters on destruction.
      reportObservability();
      return 0;
    }

    // Deterministic random fill of every external input (images no
    // kernel produces), so runs are reproducible across invocations.
    std::vector<bool> Produced(P.numImages());
    for (KernelId Id = 0; Id != P.numKernels(); ++Id)
      Produced[P.kernel(Id).Output] = true;
    std::vector<Image> Reference = makeImagePool(P);
    Rng Gen(2026);
    for (ImageId Id = 0; Id != P.numImages(); ++Id)
      if (!Produced[Id]) {
        const ImageInfo &Info = P.image(Id);
        Reference[Id] =
            makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
      }
    std::vector<Image> VmPool = Reference;

    auto WallMs = [](auto &&Fn) {
      auto Start = std::chrono::steady_clock::now();
      Fn();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
          .count();
    };
    double AstMs = WallMs([&] { runUnfused(P, Reference, Exec); });
    double VmMs = WallMs([&] { runFusedVm(FP, VmPool, Exec); });

    double MaxDiff = 0.0;
    for (const FusedKernel &FK : FP.Kernels)
      for (KernelId Dest : FK.Destinations) {
        ImageId Out = P.kernel(Dest).Output;
        MaxDiff = std::max(MaxDiff,
                           maxAbsDifference(VmPool[Out], Reference[Out]));
      }

    std::printf("executed '%s' with %u threads (%s fusion, %s tiling)\n",
                P.name().c_str(), resolveThreadCount(Exec.Threads),
                Style.c_str(),
                tilingStrategyName(resolveTilingStrategy(Exec.Tiling)));
    TablePrinter Run({"engine", "wall ms", "speedup"});
    Run.addRow({"unfused ast", formatDouble(AstMs, 3), "1.000"});
    Run.addRow(
        {"fused vm", formatDouble(VmMs, 3), formatDouble(AstMs / VmMs, 3)});
    std::fputs(Run.render().c_str(), stdout);
    std::printf("max |fused vm - unfused ast| over destinations: %g\n",
                MaxDiff);
    reportObservability();
    return 0;
  }

  std::string Emit = Cl.getOption("emit", "");
  if (Emit == "cuda") {
    std::fputs(emitCudaProgram(FP).c_str(), stdout);
    return 0;
  }
  if (Emit == "cpp") {
    std::fputs(emitCppProgram(FP).c_str(), stdout);
    return 0;
  }
  if (Emit == "opencl") {
    std::fputs(emitOpenClProgram(FP).c_str(), stdout);
    return 0;
  }
  if (Emit == "ir") {
    std::fputs(programToString(P).c_str(), stdout);
    std::fputs(fusedProgramToString(FP).c_str(), stdout);
    return 0;
  }
  if (Emit == "kfp") {
    std::fputs(serializeProgram(P).c_str(), stdout);
    return 0;
  }
  if (Emit == "dot") {
    DotWriter Dot(P.name());
    for (KernelId Id = 0; Id != P.numKernels(); ++Id)
      Dot.addNode(P.kernel(Id).Name, P.kernel(Id).Name);
    for (Digraph::EdgeId E = 0; E != MinCut.WeightedDag.numEdges(); ++E) {
      const Digraph::Edge &Ed = MinCut.WeightedDag.edge(E);
      Dot.addEdge(P.kernel(Ed.From).Name, P.kernel(Ed.To).Name,
                  Ed.Weight <= HW.Epsilon ? "eps"
                                          : formatDouble(Ed.Weight, 0));
    }
    unsigned Index = 0;
    for (const PartitionBlock &Block : Blocks.Blocks) {
      std::vector<std::string> Names;
      for (KernelId Id : Block.Kernels)
        Names.push_back(P.kernel(Id).Name);
      Dot.addCluster("P" + std::to_string(Index++), Names);
    }
    std::fputs(Dot.finish().c_str(), stdout);
    return 0;
  }
  if (!Emit.empty()) {
    std::fprintf(stderr, "error: unknown --emit '%s'\n", Emit.c_str());
    return 1;
  }

  // Default: the fusion report.
  std::printf("pipeline '%s': %u kernels, %u images, %u dependence edges\n",
              P.name().c_str(), P.numKernels(), P.numImages(),
              MinCut.WeightedDag.numEdges());

  TablePrinter Edges({"edge", "scenario", "weight"});
  for (Digraph::EdgeId E = 0; E != MinCut.WeightedDag.numEdges(); ++E) {
    const Digraph::Edge &Ed = MinCut.WeightedDag.edge(E);
    const EdgeBenefit &B = MinCut.EdgeInfo[E];
    Edges.addRow({P.kernel(Ed.From).Name + " -> " + P.kernel(Ed.To).Name,
                  fusionScenarioName(B.Scenario),
                  B.Weight <= HW.Epsilon ? "eps"
                                         : formatDouble(B.Weight, 1)});
  }
  std::fputs(Edges.render().c_str(), stdout);

  if (Cl.hasOption("trace") && TracePath.empty()) {
    std::printf("\nAlgorithm 1 trace:\n");
    unsigned Iteration = 0;
    for (const FusionTraceStep &Step : MinCut.Trace) {
      ++Iteration;
      if (Step.Accepted)
        std::printf("[%2u] %s -> ready\n", Iteration,
                    blockNames(P, Step.Block).c_str());
      else
        std::printf("[%2u] %s illegal (%s); cut %.4g -> %s | %s\n",
                    Iteration, blockNames(P, Step.Block).c_str(),
                    Step.Reason.c_str(), Step.CutWeight,
                    blockNames(P, Step.SideA).c_str(),
                    blockNames(P, Step.SideB).c_str());
    }
  }

  std::printf("\n%s partition: %s\n", Style.c_str(),
              partitionToString(P, Blocks).c_str());
  if (Style == "optimized")
    std::printf("estimated benefit (Eq. 1): %.1f cycles/pixel\n",
                MinCut.TotalBenefit);
  std::printf("%s", fusedProgramToString(FP).c_str());

  if (Cl.hasOption("time")) {
    CostModelParams Params;
    FusedProgram Baseline = unfusedProgram(P);
    std::printf("\nsimulated times (ms):\n");
    TablePrinter Times({"device", "baseline", Style, "speedup"});
    for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
      double TBase = estimateProgramTimeMs(accountFusedProgram(Baseline),
                                           Device, Params);
      double TFused =
          estimateProgramTimeMs(accountFusedProgram(FP), Device, Params);
      Times.addRow({Device.Name, formatDouble(TBase, 3),
                    formatDouble(TFused, 3),
                    formatDouble(TBase / TFused, 3)});
    }
    std::fputs(Times.render().c_str(), stdout);
  }
  return 0;
}
