//===- tools/kfp_golden_gen.cpp - Regenerate .kfp golden fixtures ---------------===//
//
// Writes the canonical serializeProgram output of each golden-test builder
// into a directory (default tests/golden/). Run after an *intentional*
// serializer format change, then review the diff; tests/test_golden_kfp.cpp
// pins these files byte-for-byte.
//
//   kfp_golden_gen [--dir tests/golden/]
//
//===----------------------------------------------------------------------===//

#include "frontend/Serializer.h"
#include "pipelines/Pipelines.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {});
  std::string Dir = Cl.getOption("dir", "tests/golden/");
  if (!Dir.empty() && Dir.back() != '/')
    Dir += '/';

  struct Fixture {
    const char *File;
    std::function<Program()> Builder;
  };
  // Must stay in sync with the GoldenCase table in tests/test_golden_kfp.cpp.
  const Fixture Fixtures[] = {
      {"blur_chain_clamp.kfp",
       [] { return makeBlurChain(8, 6, BorderMode::Clamp); }},
      {"figure4.kfp", [] { return makeFigure4Program(); }},
      {"sobel_small.kfp", [] { return makeSobel(12, 10); }},
  };

  for (const Fixture &F : Fixtures) {
    std::string Path = Dir + F.File;
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
    Out << serializeProgram(F.Builder());
    std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
