#!/usr/bin/env python3
"""Dead-link checker for the repo's markdown documentation.

Scans every *.md at the repository root and under docs/ for inline
markdown links, resolves each relative target against the linking file,
and fails (exit 1) listing every target that does not exist. External
links (http/https/mailto) and pure in-page anchors are skipped; anchor
suffixes on relative links are stripped before the existence check, and
fenced code blocks are ignored (C++ lambdas parse as links otherwise).

Also cross-checks the benchmark JSON sections: every section name a
bench/*.cpp source passes to spliceJsonSection must exist as a top-level
key of the committed BENCH_throughput.json -- a renamed (or silently
dropped) section key fails here instead of vanishing unnoticed from the
results file.

Also cross-checks the diagnostic-code registry: every KF-* code the
docs mention must be an entry of DiagCodeRegistry in
src/analysis/Diagnostics.h, and every warning- or error-severity
registry code must be documented somewhere under docs/ -- so the docs
can neither cite a code the analyses cannot emit nor silently omit one
a user can actually be stopped by (notes are informational and may stay
undocumented).

Run from anywhere: paths are resolved against the repo root (this
script's parent directory). CI runs it as the docs link-check step.

Standard library only.
"""

import json
import re
import sys
from pathlib import Path

# [text](target) with an optional "title"; target ends at whitespace or ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    yield from sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(path: Path, root: Path):
    dead = []
    text = path.read_text(encoding="utf-8", errors="replace")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        # C++ lambdas like [](int F, ...) inside fenced code blocks look
        # exactly like markdown links; fences carry no links by design.
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Relative file link; drop any #anchor suffix.
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


# spliceJsonSection(<file-or-var>, "section_name", ...) in bench sources.
SPLICE_RE = re.compile(r'spliceJsonSection\([^,]+,\s*"([^"]+)"')


def check_bench_sections(root: Path):
    """Every spliceJsonSection key in bench/*.cpp must be a top-level key
    of the committed BENCH_throughput.json."""
    problems = []
    wanted = {}  # section name -> first declaring source file
    for src in sorted((root / "bench").glob("*.cpp")):
        for match in SPLICE_RE.finditer(src.read_text(encoding="utf-8",
                                                      errors="replace")):
            wanted.setdefault(match.group(1), src.relative_to(root))
    if not wanted:
        return problems
    results = root / "BENCH_throughput.json"
    if not results.exists():
        problems.append(f"{results.name}: missing, but bench sources "
                        f"declare sections {sorted(wanted)}")
        return problems
    try:
        present = set(json.loads(results.read_text(encoding="utf-8")))
    except json.JSONDecodeError as err:
        problems.append(f"{results.name}: unparsable JSON: {err}")
        return problems
    for section, src in sorted(wanted.items()):
        if section not in present:
            problems.append(
                f"{results.name}: missing section '{section}' "
                f"(declared by {src}; re-run the bench to splice it in)")
    return problems


# One registry entry per line in Diagnostics.h (the header keeps this
# format by contract; see the comment above DiagCodeRegistry).
REGISTRY_ENTRY_RE = re.compile(
    r'\{"(KF-[A-Z]\d{2})",\s*DiagSeverity::(\w+)\}')
DOC_CODE_RE = re.compile(r"\bKF-[A-Z]\d{2}\b")


def parse_code_registry(root: Path):
    """DiagCodeRegistry of src/analysis/Diagnostics.h as {code: severity}."""
    header = root / "src" / "analysis" / "Diagnostics.h"
    registry = {}
    for match in REGISTRY_ENTRY_RE.finditer(header.read_text(encoding="utf-8",
                                                       errors="replace")):
        registry[match.group(1)] = match.group(2)
    return registry


def check_diag_codes(root: Path):
    """Docs and DiagCodeRegistry must agree on the KF-* code vocabulary."""
    problems = []
    registry = parse_code_registry(root)
    if not registry:
        return ["src/analysis/Diagnostics.h: DiagCodeRegistry not found "
                "(format changed? this script parses one {\"KF-..\"} entry "
                "per line)"]

    mentioned = {}  # code -> first mentioning doc:line
    for doc in doc_files(root):
        for lineno, line in enumerate(
                doc.read_text(encoding="utf-8",
                              errors="replace").splitlines(), start=1):
            for match in DOC_CODE_RE.finditer(line):
                mentioned.setdefault(match.group(0),
                                     f"{doc.relative_to(root)}:{lineno}")

    for code, where in sorted(mentioned.items()):
        if code not in registry:
            problems.append(
                f"{where}: documented code '{code}' is not in "
                f"DiagCodeRegistry (src/analysis/Diagnostics.h)")
    for code, severity in sorted(registry.items()):
        if severity in ("Error", "Warning") and code not in mentioned:
            problems.append(
                f"src/analysis/Diagnostics.h: {severity.lower()}-severity "
                f"code '{code}' is not documented anywhere under docs/")
    return problems


def main():
    root = Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for doc in doc_files(root):
        checked += 1
        for lineno, target in check_file(doc, root):
            failures += 1
            print(f"{doc.relative_to(root)}:{lineno}: dead link: {target}")
    for problem in check_bench_sections(root) + check_diag_codes(root):
        failures += 1
        print(problem)
    if failures:
        print(f"\n{failures} problem(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {checked} markdown file(s): all relative links resolve; "
          f"all bench JSON sections present; KF-* codes consistent with "
          f"DiagCodeRegistry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
