#!/usr/bin/env python3
"""Dead-link checker for the repo's markdown documentation.

Scans every *.md at the repository root and under docs/ for inline
markdown links, resolves each relative target against the linking file,
and fails (exit 1) listing every target that does not exist. External
links (http/https/mailto) and pure in-page anchors are skipped; anchor
suffixes on relative links are stripped before the existence check.

Run from anywhere: paths are resolved against the repo root (this
script's parent directory). CI runs it as the docs link-check step.

Standard library only.
"""

import re
import sys
from pathlib import Path

# [text](target) with an optional "title"; target ends at whitespace or ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    yield from sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(path: Path, root: Path):
    dead = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Relative file link; drop any #anchor suffix.
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


def main():
    root = Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for doc in doc_files(root):
        checked += 1
        for lineno, target in check_file(doc, root):
            failures += 1
            print(f"{doc.relative_to(root)}:{lineno}: dead link: {target}")
    if failures:
        print(f"\n{failures} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {checked} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
