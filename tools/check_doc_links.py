#!/usr/bin/env python3
"""Dead-link checker for the repo's markdown documentation.

Scans every *.md at the repository root and under docs/ for inline
markdown links, resolves each relative target against the linking file,
and fails (exit 1) listing every target that does not exist. External
links (http/https/mailto) and pure in-page anchors are skipped; anchor
suffixes on relative links are stripped before the existence check, and
fenced code blocks are ignored (C++ lambdas parse as links otherwise).

Also cross-checks the benchmark JSON sections: every section name a
bench/*.cpp source passes to spliceJsonSection must exist as a top-level
key of the committed BENCH_throughput.json -- a renamed (or silently
dropped) section key fails here instead of vanishing unnoticed from the
results file.

Run from anywhere: paths are resolved against the repo root (this
script's parent directory). CI runs it as the docs link-check step.

Standard library only.
"""

import json
import re
import sys
from pathlib import Path

# [text](target) with an optional "title"; target ends at whitespace or ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    yield from sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(path: Path, root: Path):
    dead = []
    text = path.read_text(encoding="utf-8", errors="replace")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        # C++ lambdas like [](int F, ...) inside fenced code blocks look
        # exactly like markdown links; fences carry no links by design.
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Relative file link; drop any #anchor suffix.
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


# spliceJsonSection(<file-or-var>, "section_name", ...) in bench sources.
SPLICE_RE = re.compile(r'spliceJsonSection\([^,]+,\s*"([^"]+)"')


def check_bench_sections(root: Path):
    """Every spliceJsonSection key in bench/*.cpp must be a top-level key
    of the committed BENCH_throughput.json."""
    problems = []
    wanted = {}  # section name -> first declaring source file
    for src in sorted((root / "bench").glob("*.cpp")):
        for match in SPLICE_RE.finditer(src.read_text(encoding="utf-8",
                                                      errors="replace")):
            wanted.setdefault(match.group(1), src.relative_to(root))
    if not wanted:
        return problems
    results = root / "BENCH_throughput.json"
    if not results.exists():
        problems.append(f"{results.name}: missing, but bench sources "
                        f"declare sections {sorted(wanted)}")
        return problems
    try:
        present = set(json.loads(results.read_text(encoding="utf-8")))
    except json.JSONDecodeError as err:
        problems.append(f"{results.name}: unparsable JSON: {err}")
        return problems
    for section, src in sorted(wanted.items()):
        if section not in present:
            problems.append(
                f"{results.name}: missing section '{section}' "
                f"(declared by {src}; re-run the bench to splice it in)")
    return problems


def main():
    root = Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for doc in doc_files(root):
        checked += 1
        for lineno, target in check_file(doc, root):
            failures += 1
            print(f"{doc.relative_to(root)}:{lineno}: dead link: {target}")
    sections = check_bench_sections(root)
    for problem in sections:
        failures += 1
        print(problem)
    if failures:
        print(f"\n{failures} problem(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {checked} markdown file(s): all relative links resolve; "
          f"all bench JSON sections present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
