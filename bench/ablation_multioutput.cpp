//===- bench/ablation_multioutput.cpp - Multi-destination extension --------------===//
//
// Ablation of the single-destination restriction (Section II-B: "only the
// input of the source kernel and the output of the destination kernel are
// preserved"). The multi-destination extension lets a fused kernel write
// one global output per sink, which widens the legal search space --
// e.g. the two Sobel derivative kernels of a gradient-field pipeline can
// fuse even when both results are pipeline outputs. This bench measures
// what the restriction costs across the paper applications and random
// pipelines: launches, objective value (Eq. 1), and simulated time.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/MinCutPartitioner.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

namespace {

struct VariantNumbers {
  unsigned Launches = 0;
  double Benefit = 0.0;
  double TimeMs = 0.0; // GTX680.
};

VariantNumbers evaluate(const Program &P, const HardwareModel &HW,
                        const LegalityOptions &Options) {
  VariantNumbers Result;
  MinCutFusionResult Fusion = runMinCutFusion(P, HW, Options);
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  Result.Launches = FP.numLaunches();
  Result.Benefit = Fusion.TotalBenefit;
  CostModelParams Params;
  Result.TimeMs = estimateProgramTimeMs(accountFusedProgram(FP),
                                        DeviceSpec::gtx680(), Params);
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int Trials = static_cast<int>(Cl.getIntOption("trials", 30));
  HardwareModel HW = paperHardwareModel();
  LegalityOptions Single;
  LegalityOptions Multi;
  Multi.AllowMultipleDestinations = true;

  std::printf("=== Ablation: single- vs multi-destination fusion (GTX680 "
              "times) ===\n\n");

  std::printf("-- the six paper applications --\n");
  TablePrinter Table({"app", "launches single", "launches multi",
                      "beta single", "beta multi", "ms single", "ms multi",
                      "gain"});
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.build();
    VariantNumbers S = evaluate(P, HW, Single);
    VariantNumbers M = evaluate(P, HW, Multi);
    Table.addRow({Spec.Name, std::to_string(S.Launches),
                  std::to_string(M.Launches), formatDouble(S.Benefit, 0),
                  formatDouble(M.Benefit, 0), formatDouble(S.TimeMs, 3),
                  formatDouble(M.TimeMs, 3),
                  formatDouble(S.TimeMs / M.TimeMs, 3)});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\n-- random pipelines (%d trials per size) --\n", Trials);
  TablePrinter Rand({"kernels", "avg launches single", "avg launches multi",
                     "avg ms single", "avg ms multi", "gain"});
  Rng Gen(8844);
  for (unsigned NumKernels : {6u, 10u, 16u}) {
    double LS = 0, LM = 0, TS = 0, TM = 0;
    for (int Trial = 0; Trial != Trials; ++Trial) {
      Program P = makeRandomPipeline(NumKernels, 0.35, 512, 512, Gen);
      VariantNumbers S = evaluate(P, HW, Single);
      VariantNumbers M = evaluate(P, HW, Multi);
      LS += S.Launches;
      LM += M.Launches;
      TS += S.TimeMs;
      TM += M.TimeMs;
    }
    Rand.addRow({std::to_string(NumKernels),
                 formatDouble(LS / Trials, 2), formatDouble(LM / Trials, 2),
                 formatDouble(TS / Trials, 3), formatDouble(TM / Trials, 3),
                 formatDouble(TS / TM, 3)});
  }
  std::fputs(Rand.render().c_str(), stdout);

  std::printf("\nReading: the six paper pipelines have single outputs, so "
              "the extension mostly helps\nwhere several sinks share "
              "producers (Harris's square kernels); random DAGs with "
              "multiple\nterminal outputs gain more. The paper's "
              "restriction is cheap on its own benchmark set --\nwhich "
              "this ablation quantifies.\n");
  return 0;
}
