//===- bench/fig3_harris_trace.cpp - Figure 3 reproduction ---------------------===//
//
// Regenerates the paper's Figure 3: the kernel-fusion algorithm applied
// to the Harris corner detector. Prints the weighted dependence DAG (edge
// weights 328 / 256 / epsilon), every iteration of Algorithm 1 (block
// examined, legality verdict, min-cut weight and sides), and the final
// partition with its total benefit. Use --dot to emit Graphviz output
// with partition blocks as clusters.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/MinCutPartitioner.h"
#include "support/CommandLine.h"
#include "support/DotWriter.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

static std::string blockNames(const Program &P,
                              const std::vector<KernelId> &Block) {
  std::vector<std::string> Names;
  for (KernelId Id : Block)
    Names.push_back(P.kernel(Id).Name);
  return "{" + joinStrings(Names, ", ") + "}";
}

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"dot"});

  Program P = makeHarris(2048, 2048);
  HardwareModel HW = paperHardwareModel();
  MinCutFusionResult Result = runMinCutFusion(P, HW);

  std::printf("=== Figure 3: kernel fusion algorithm on the Harris corner "
              "detector ===\n\n");
  std::printf("Benefit model constants: tg=%.0f ts=%.0f cALU=%.0f "
              "cMshared=%.0f epsilon=%g\n\n",
              HW.GlobalAccessCycles, HW.SharedAccessCycles, HW.AluCost,
              HW.SharedMemThreshold, HW.Epsilon);

  std::printf("-- Step 1: weight computation and assignment --\n");
  TablePrinter Edges({"edge", "scenario", "weight", "note"});
  for (Digraph::EdgeId E = 0; E != Result.WeightedDag.numEdges(); ++E) {
    const Digraph::Edge &Ed = Result.WeightedDag.edge(E);
    const EdgeBenefit &B = Result.EdgeInfo[E];
    Edges.addRow({P.kernel(Ed.From).Name + " -> " + P.kernel(Ed.To).Name,
                  fusionScenarioName(B.Scenario),
                  B.Weight <= HW.Epsilon ? "eps" : formatDouble(B.Weight, 0),
                  B.IllegalReason});
  }
  std::fputs(Edges.render().c_str(), stdout);
  std::printf("(paper: sx->gx and sy->gy get 328, sxy->gxy gets 256, the "
              "other seven edges epsilon)\n\n");

  std::printf("-- Step 2: recursive min-cut partitioning --\n");
  unsigned Iteration = 0;
  for (const FusionTraceStep &Step : Result.Trace) {
    ++Iteration;
    if (Step.Accepted) {
      std::printf("[%2u] %-34s -> ready set\n", Iteration,
                  blockNames(P, Step.Block).c_str());
      continue;
    }
    std::printf("[%2u] %-34s illegal: %s\n", Iteration,
                blockNames(P, Step.Block).c_str(), Step.Reason.c_str());
    std::printf("       min-cut weight %.4g separates %s | %s\n",
                Step.CutWeight, blockNames(P, Step.SideA).c_str(),
                blockNames(P, Step.SideB).c_str());
  }

  std::printf("\n-- Result --\n");
  std::printf("final partition: %s\n",
              partitionToString(P, Result.Blocks).c_str());
  std::printf("total fusion benefit (Eq. 1): %.0f cycles/pixel "
              "(paper: 328 + 328 + 256 = 912)\n",
              Result.TotalBenefit);

  if (Cl.hasOption("dot")) {
    DotWriter Dot("harris_fusion");
    for (KernelId Id = 0; Id != P.numKernels(); ++Id)
      Dot.addNode(P.kernel(Id).Name, P.kernel(Id).Name);
    for (Digraph::EdgeId E = 0; E != Result.WeightedDag.numEdges(); ++E) {
      const Digraph::Edge &Ed = Result.WeightedDag.edge(E);
      double W = Result.WeightedDag.edge(E).Weight;
      Dot.addEdge(P.kernel(Ed.From).Name, P.kernel(Ed.To).Name,
                  W <= HW.Epsilon ? "eps" : formatDouble(W, 0));
    }
    unsigned BlockIdx = 0;
    for (const PartitionBlock &Block : Result.Blocks.Blocks) {
      std::vector<std::string> Names;
      for (KernelId Id : Block.Kernels)
        Names.push_back(P.kernel(Id).Name);
      Dot.addCluster("P" + std::to_string(BlockIdx++), Names);
    }
    std::printf("\n%s", Dot.finish().c_str());
  }
  return 0;
}
