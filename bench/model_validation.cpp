//===- bench/model_validation.cpp - Predicted vs measured launches --------------===//
//
// Validates the analytic cost model against execution for every registry
// pipeline: runs the optimized fused program through the bytecode VM with
// the MetricsRegistry enabled, so each fused launch pairs the model's
// predicted cycles (on the reference GTX 745) with the host simulator's
// measured wall time and interior/halo split.
//
// Predicted and measured times live on different machines, so the
// predicted/measured ratio is not expected to be 1.0; what matters is its
// *stability* across launches (the paper's Table I argument): a launch
// whose ratio strays far from the geomean is one the model mis-ranks.
//
// Results are appended to the throughput JSON (BENCH_throughput.json) as
// a "model_validation" section.
//
// Options:
//   --scale S         image-size scale vs the paper sizes (default 0.25)
//   --threads N       worker threads (0 = auto)
//   --repeats N       measured runs per pipeline (default 2)
//   --out FILE        JSON results file (default BENCH_throughput.json)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/Metrics.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {});
  double Scale = Cl.getDoubleOption("scale", 0.25);
  int Repeats = std::max(1, static_cast<int>(Cl.getIntOption("repeats", 2)));
  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");

  ExecutionOptions Options;
  Options.Threads = static_cast<int>(Cl.getIntOption("threads", 0));

  MetricsRegistry &Registry = MetricsRegistry::global();
  Registry.setEnabled(true);
  Registry.clear();

  std::printf("=== Model validation: predicted vs measured launches "
              "(scale %.2f, %d repeats, %u threads) ===\n\n",
              Scale, Repeats, resolveThreadCount(Options.Threads));

  for (const PipelineSpec &Spec : paperPipelines()) {
    AppVariants App = buildAppVariants(Spec, Scale);
    const Program &P = *App.Source;
    std::vector<Image> Pool = makeImagePool(P);
    fillExternalInputs(P, Pool, 0x5eed + P.numKernels());
    for (int R = 0; R != Repeats; ++R) {
      // Fresh output buffers per run; runFusedVm records prediction and
      // measurement into the registry.
      std::vector<Image> Run = Pool;
      runFusedVm(App.Optimized, Run, Options);
    }
    std::printf("measured '%s' (%u fused launches)\n", Spec.Name.c_str(),
                App.Optimized.numLaunches());
  }

  std::printf("\n%s", Registry.renderTable().c_str());

  std::string Section = "{\"scale\": " + formatDouble(Scale, 4) +
                        ", \"repeats\": " + std::to_string(Repeats) +
                        ", \"threads\": " +
                        std::to_string(resolveThreadCount(Options.Threads)) +
                        ", \"vm_mode\": \"" +
                        vmModeName(resolveVmMode(Options.Mode)) + "\"" +
                        ", \"reference_device\": \"" +
                        MetricsRegistry::referenceDevice().Name +
                        "\", \"geomean_ratio\": " +
                        formatDouble(Registry.geomeanRatio(), 6) +
                        ", \"launches\": " + Registry.toJson("    ") + "}";
  if (spliceJsonSection(OutFile, "model_validation", Section))
    std::printf("\nappended model_validation section to %s\n",
                OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  std::printf("\nExpected shape: every launch carries both a prediction "
              "and a measurement, and\nthe per-launch predicted/measured "
              "ratios cluster around the geomean -- the two\nsides live "
              "on different machines (analytic GPU vs host simulator), "
              "so the\nabsolute ratio is meaningless but its spread is "
              "the model's ranking error.\n");
  return 0;
}
