//===- bench/table1_speedups.cpp - Table I reproduction -------------------------===//
//
// Regenerates the paper's Table I: per-GPU speedups of optimized fusion
// over baseline, basic fusion over baseline, and optimized over basic,
// for the six applications -- printed side by side with the paper's
// published numbers. Speedups are derived from the median of the
// simulated runs, as the paper derives its gains from medians.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int Runs = static_cast<int>(Cl.getIntOption("runs", 500));

  CostModelParams Params;
  std::vector<AppVariants> Apps;
  for (const PipelineSpec &Spec : paperPipelines())
    Apps.push_back(buildAppVariants(Spec));
  const PaperTable1 &Paper = paperTable1();

  std::printf("=== Table I: speedup comparison (measured = simulator, "
              "paper values in parentheses) ===\n");

  struct Comparison {
    const char *Title;
    Variant Num;
    Variant Den;
    const std::map<std::string, std::map<std::string, double>> *Published;
  };
  const Comparison Comparisons[3] = {
      {"Optimized Fusion over Baseline", Variant::Baseline,
       Variant::OptimizedFusion, &Paper.OptOverBase},
      {"Basic Fusion over Baseline", Variant::Baseline,
       Variant::BasicFusion, &Paper.BasicOverBase},
      {"Optimized Fusion over Basic Fusion", Variant::BasicFusion,
       Variant::OptimizedFusion, &Paper.OptOverBasic},
  };

  for (const Comparison &Cmp : Comparisons) {
    std::printf("\n-- %s --\n", Cmp.Title);
    std::vector<std::string> Header{"device"};
    for (const AppVariants &App : Apps)
      Header.push_back(App.Name);
    TablePrinter Table(Header);
    for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
      std::vector<std::string> Row{Device.Name};
      for (const AppVariants &App : Apps) {
        double Slow =
            variantRunStats(App, Cmp.Num, Device, Params, Runs).Median;
        double Fast =
            variantRunStats(App, Cmp.Den, Device, Params, Runs).Median;
        double Published =
            Cmp.Published->at(Device.Name).at(App.Name);
        Row.push_back(formatDouble(Slow / Fast, 3) + " (" +
                      formatDouble(Published, 3) + ")");
      }
      Table.addRow(Row);
    }
    std::fputs(Table.render().c_str(), stdout);
  }

  std::printf("\nShape checks (the claims the reproduction preserves):\n"
              "  * every optimized-over-baseline >= 1, largest on "
              "Unsharp;\n"
              "  * basic fails on Sobel and Unsharp (ratio ~1.0) but "
              "helps Enhancement;\n"
              "  * Night stays ~1.0 everywhere (compute-bound);\n"
              "  * optimized >= basic for every cell.\n");
  return 0;
}
