//===- bench/table1_speedups.cpp - Table I reproduction -------------------------===//
//
// Regenerates the paper's Table I: per-GPU speedups of optimized fusion
// over baseline, basic fusion over baseline, and optimized over basic,
// for the six applications -- printed side by side with the paper's
// published numbers. Speedups are derived from the median of the
// simulated runs, as the paper derives its gains from medians.
//
// With --measure the speedups come from real host execution of the
// variants (bytecode VM engine) instead of the simulator; --threads N
// and --scale S (default 0.25) control the measured runs.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"measure"});
  int Runs = static_cast<int>(Cl.getIntOption("runs", 500));
  bool Measure = Cl.hasOption("measure");
  double Scale = Cl.getDoubleOption("scale", 0.25);
  ExecutionOptions ExecOptions;
  ExecOptions.Threads = static_cast<int>(Cl.getIntOption("threads", 0));
  int Repeats = static_cast<int>(Cl.getIntOption("repeats", 3));

  CostModelParams Params;
  std::vector<AppVariants> Apps;
  for (const PipelineSpec &Spec : paperPipelines())
    Apps.push_back(Measure ? buildAppVariants(Spec, Scale)
                           : buildAppVariants(Spec));
  const PaperTable1 &Paper = paperTable1();

  // With --measure, variants execute their pixels for real on the host
  // (VM engine) and the three simulated GPUs collapse into one "host"
  // row; paper values stay printed for context, but a CPU interpreter
  // is not a GPU -- recompute-heavy fusions (Night) can lose here.
  std::map<std::string, std::map<std::string, double>> HostMs;
  if (Measure) {
    std::printf("=== Table I (measured): host wall-clock speedups "
                "(VM engine, scale %.3g; paper GPU\nvalues in "
                "parentheses for context) ===\n",
                Scale);
    for (const AppVariants &App : Apps)
      for (Variant V : {Variant::Baseline, Variant::BasicFusion,
                        Variant::OptimizedFusion})
        HostMs[App.Name][variantName(V)] = measureVariantWallMs(
            App, V, ExecOptions, ExecEngine::Vm, Repeats);
  }

  if (!Measure)
    std::printf("=== Table I: speedup comparison (measured = simulator, "
                "paper values in parentheses) ===\n");

  struct Comparison {
    const char *Title;
    Variant Num;
    Variant Den;
    const std::map<std::string, std::map<std::string, double>> *Published;
  };
  const Comparison Comparisons[3] = {
      {"Optimized Fusion over Baseline", Variant::Baseline,
       Variant::OptimizedFusion, &Paper.OptOverBase},
      {"Basic Fusion over Baseline", Variant::Baseline,
       Variant::BasicFusion, &Paper.BasicOverBase},
      {"Optimized Fusion over Basic Fusion", Variant::BasicFusion,
       Variant::OptimizedFusion, &Paper.OptOverBasic},
  };

  for (const Comparison &Cmp : Comparisons) {
    std::printf("\n-- %s --\n", Cmp.Title);
    std::vector<std::string> Header{"device"};
    for (const AppVariants &App : Apps)
      Header.push_back(App.Name);
    TablePrinter Table(Header);
    if (Measure) {
      std::vector<std::string> Row{"host"};
      for (const AppVariants &App : Apps) {
        double Slow = HostMs[App.Name][variantName(Cmp.Num)];
        double Fast = HostMs[App.Name][variantName(Cmp.Den)];
        // No host GPU to compare against; print the paper's K20c
        // column for context.
        double Published = Cmp.Published->at("K20c").at(App.Name);
        Row.push_back(formatDouble(Slow / Fast, 3) + " (" +
                      formatDouble(Published, 3) + ")");
      }
      Table.addRow(Row);
    } else {
      for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
        std::vector<std::string> Row{Device.Name};
        for (const AppVariants &App : Apps) {
          double Slow =
              variantRunStats(App, Cmp.Num, Device, Params, Runs).Median;
          double Fast =
              variantRunStats(App, Cmp.Den, Device, Params, Runs).Median;
          double Published =
              Cmp.Published->at(Device.Name).at(App.Name);
          Row.push_back(formatDouble(Slow / Fast, 3) + " (" +
                        formatDouble(Published, 3) + ")");
        }
        Table.addRow(Row);
      }
    }
    std::fputs(Table.render().c_str(), stdout);
  }

  std::printf("\nShape checks (the claims the reproduction preserves):\n"
              "  * every optimized-over-baseline >= 1, largest on "
              "Unsharp;\n"
              "  * basic fails on Sobel and Unsharp (ratio ~1.0) but "
              "helps Enhancement;\n"
              "  * Night stays ~1.0 everywhere (compute-bound);\n"
              "  * optimized >= basic for every cell.\n");
  return 0;
}
