//===- bench/table2_geomean.cpp - Table II reproduction --------------------------===//
//
// Regenerates the paper's Table II: geometric mean of the speedups across
// the three GPUs, per application and comparison, next to the published
// values (headline: up to 2.52 on Unsharp).
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int Runs = static_cast<int>(Cl.getIntOption("runs", 500));

  CostModelParams Params;
  std::vector<AppVariants> Apps;
  for (const PipelineSpec &Spec : paperPipelines())
    Apps.push_back(buildAppVariants(Spec));
  const PaperTable2 &Paper = paperTable2();

  std::printf("=== Table II: geometric mean of speedups across all GPUs "
              "(measured, paper in parentheses) ===\n\n");

  struct Comparison {
    const char *Title;
    Variant Num;
    Variant Den;
    const std::map<std::string, double> *Published;
  };
  const Comparison Comparisons[3] = {
      {"Optm over Base", Variant::Baseline, Variant::OptimizedFusion,
       &Paper.OptOverBase},
      {"Basic over Base", Variant::Baseline, Variant::BasicFusion,
       &Paper.BasicOverBase},
      {"Optm over Basic", Variant::BasicFusion, Variant::OptimizedFusion,
       &Paper.OptOverBasic},
  };

  std::vector<std::string> Header{"comparison"};
  for (const AppVariants &App : Apps)
    Header.push_back(App.Name);
  TablePrinter Table(Header);

  for (const Comparison &Cmp : Comparisons) {
    std::vector<std::string> Row{Cmp.Title};
    for (const AppVariants &App : Apps) {
      std::vector<double> Speedups;
      for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
        double Slow =
            variantRunStats(App, Cmp.Num, Device, Params, Runs).Median;
        double Fast =
            variantRunStats(App, Cmp.Den, Device, Params, Runs).Median;
        Speedups.push_back(Slow / Fast);
      }
      Row.push_back(formatDouble(geometricMean(Speedups), 3) + " (" +
                    formatDouble(Cmp.Published->at(App.Name), 3) + ")");
    }
    Table.addRow(Row);
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nPaper headline: \"a geometric mean speedup of up to 2.52\" "
              "(Unsharp, optimized over baseline).\n");
  return 0;
}
