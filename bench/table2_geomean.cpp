//===- bench/table2_geomean.cpp - Table II reproduction --------------------------===//
//
// Regenerates the paper's Table II: geometric mean of the speedups across
// the three GPUs, per application and comparison, next to the published
// values (headline: up to 2.52 on Unsharp).
//
// With --measure the numbers come from real host execution of the
// variants (bytecode VM engine); --threads N and --scale S (default
// 0.25) control the measured runs.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"measure"});
  int Runs = static_cast<int>(Cl.getIntOption("runs", 500));
  bool Measure = Cl.hasOption("measure");
  double Scale = Cl.getDoubleOption("scale", 0.25);
  ExecutionOptions ExecOptions;
  ExecOptions.Threads = static_cast<int>(Cl.getIntOption("threads", 0));
  int Repeats = static_cast<int>(Cl.getIntOption("repeats", 3));

  CostModelParams Params;
  std::vector<AppVariants> Apps;
  for (const PipelineSpec &Spec : paperPipelines())
    Apps.push_back(Measure ? buildAppVariants(Spec, Scale)
                           : buildAppVariants(Spec));
  const PaperTable2 &Paper = paperTable2();

  // --measure: real host execution (VM engine); the "geomean" collapses
  // to the single host measurement per app.
  std::map<std::string, std::map<std::string, double>> HostMs;
  if (Measure)
    for (const AppVariants &App : Apps)
      for (Variant V : {Variant::Baseline, Variant::BasicFusion,
                        Variant::OptimizedFusion})
        HostMs[App.Name][variantName(V)] = measureVariantWallMs(
            App, V, ExecOptions, ExecEngine::Vm, Repeats);

  if (Measure)
    std::printf("=== Table II (measured): host wall-clock speedups "
                "(VM engine, scale %.3g; paper GPU\ngeomeans in "
                "parentheses for context) ===\n\n",
                Scale);
  else
    std::printf("=== Table II: geometric mean of speedups across all GPUs "
                "(measured, paper in parentheses) ===\n\n");

  struct Comparison {
    const char *Title;
    Variant Num;
    Variant Den;
    const std::map<std::string, double> *Published;
  };
  const Comparison Comparisons[3] = {
      {"Optm over Base", Variant::Baseline, Variant::OptimizedFusion,
       &Paper.OptOverBase},
      {"Basic over Base", Variant::Baseline, Variant::BasicFusion,
       &Paper.BasicOverBase},
      {"Optm over Basic", Variant::BasicFusion, Variant::OptimizedFusion,
       &Paper.OptOverBasic},
  };

  std::vector<std::string> Header{"comparison"};
  for (const AppVariants &App : Apps)
    Header.push_back(App.Name);
  TablePrinter Table(Header);

  for (const Comparison &Cmp : Comparisons) {
    std::vector<std::string> Row{Cmp.Title};
    for (const AppVariants &App : Apps) {
      std::vector<double> Speedups;
      if (Measure) {
        Speedups.push_back(HostMs[App.Name][variantName(Cmp.Num)] /
                           HostMs[App.Name][variantName(Cmp.Den)]);
      } else {
        for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
          double Slow =
              variantRunStats(App, Cmp.Num, Device, Params, Runs).Median;
          double Fast =
              variantRunStats(App, Cmp.Den, Device, Params, Runs).Median;
          Speedups.push_back(Slow / Fast);
        }
      }
      Row.push_back(formatDouble(geometricMean(Speedups), 3) + " (" +
                    formatDouble(Cmp.Published->at(App.Name), 3) + ")");
    }
    Table.addRow(Row);
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nPaper headline: \"a geometric mean speedup of up to 2.52\" "
              "(Unsharp, optimized over baseline).\n");
  return 0;
}
