//===- bench/mincut_scaling.cpp - Compile-time microbenchmarks -------------------===//
//
// google-benchmark microbenchmarks of the compile-time components
// (Section III-C complexity discussion): the Stoer-Wagner minimum cut on
// random connected graphs, full Algorithm 1 runs on random pipelines, the
// benefit model's weight assignment, and the exhaustive search blow-up.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/ExhaustivePartitioner.h"
#include "fusion/MinCutPartitioner.h"
#include "graph/MinCut.h"
#include "graph/RandomGraphs.h"

#include <benchmark/benchmark.h>

using namespace kf;

static void BM_StoerWagner(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng Gen(99 + N);
  auto W = randomConnectedWeights(N, 3 * N, 1.0, 100.0, Gen);
  for (auto _ : State) {
    CutResult Cut = stoerWagnerMinCut(W);
    benchmark::DoNotOptimize(Cut.Weight);
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_StoerWagner)->RangeMultiplier(2)->Range(8, 128)->Complexity();

static void BM_MinCutFusionRandomPipeline(benchmark::State &State) {
  unsigned NumKernels = static_cast<unsigned>(State.range(0));
  Rng Gen(7 + NumKernels);
  Program P = makeRandomPipeline(NumKernels, 0.4, 64, 64, Gen);
  HardwareModel HW = paperHardwareModel();
  for (auto _ : State) {
    MinCutFusionResult Result = runMinCutFusion(P, HW);
    benchmark::DoNotOptimize(Result.TotalBenefit);
  }
  State.SetComplexityN(NumKernels);
}
BENCHMARK(BM_MinCutFusionRandomPipeline)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

static void BM_MinCutFusionHarris(benchmark::State &State) {
  Program P = makeHarris(2048, 2048);
  HardwareModel HW = paperHardwareModel();
  for (auto _ : State) {
    MinCutFusionResult Result = runMinCutFusion(P, HW);
    benchmark::DoNotOptimize(Result.TotalBenefit);
  }
}
BENCHMARK(BM_MinCutFusionHarris);

static void BM_BenefitModelWeightAssignment(benchmark::State &State) {
  Program P = makeHarris(2048, 2048);
  HardwareModel HW = paperHardwareModel();
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);
  for (auto _ : State) {
    Digraph Dag = Model.buildWeightedDag();
    benchmark::DoNotOptimize(Dag.totalWeight());
  }
}
BENCHMARK(BM_BenefitModelWeightAssignment);

static void BM_ExhaustiveSearch(benchmark::State &State) {
  unsigned NumKernels = static_cast<unsigned>(State.range(0));
  Rng Gen(3 + NumKernels);
  Program P = makeRandomPipeline(NumKernels, 0.4, 64, 64, Gen);
  HardwareModel HW = paperHardwareModel();
  for (auto _ : State) {
    ExhaustiveFusionResult Result = runExhaustiveFusion(P, HW);
    benchmark::DoNotOptimize(Result.TotalBenefit);
  }
  State.SetComplexityN(NumKernels);
}
BENCHMARK(BM_ExhaustiveSearch)->DenseRange(4, 10, 2);

static void BM_FuserMaterialization(benchmark::State &State) {
  Program P = makeHarris(2048, 2048);
  HardwareModel HW = paperHardwareModel();
  MinCutFusionResult Fusion = runMinCutFusion(P, HW);
  for (auto _ : State) {
    FusedProgram FP =
        fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
    benchmark::DoNotOptimize(FP.numLaunches());
  }
}
BENCHMARK(BM_FuserMaterialization);

#include "image/Generators.h"
#include "ir/ExprVM.h"
#include "sim/Executor.h"

static void BM_InterpreterHarris(benchmark::State &State) {
  Program P = makeHarris(96, 96);
  Rng Gen(1);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeRandomImage(96, 96, 1, Gen);
  for (auto _ : State) {
    std::vector<Image> Work = Pool;
    runUnfused(P, Work);
    benchmark::DoNotOptimize(Work[9].at(48, 48));
  }
}
BENCHMARK(BM_InterpreterHarris)->Unit(benchmark::kMillisecond);

static void BM_BytecodeVmHarris(benchmark::State &State) {
  Program P = makeHarris(96, 96);
  Rng Gen(1);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = makeRandomImage(96, 96, 1, Gen);
  for (auto _ : State) {
    std::vector<Image> Work = Pool;
    runUnfusedVm(P, Work);
    benchmark::DoNotOptimize(Work[9].at(48, 48));
  }
}
BENCHMARK(BM_BytecodeVmHarris)->Unit(benchmark::kMillisecond);

static void BM_VmCompilation(benchmark::State &State) {
  Program P = makeNight(32, 32); // The fattest bodies (unrolled 5x5 x2).
  for (auto _ : State) {
    VmProgram VM = compileKernelBody(P, 1);
    benchmark::DoNotOptimize(VM.Insts.size());
  }
}
BENCHMARK(BM_VmCompilation);
