//===- bench/fig4_border_fusion.cpp - Figure 4 reproduction --------------------===//
//
// Regenerates the paper's Figure 4: local-to-local fusion of two 3x3
// binomial convolutions on the 5x5 example matrix under clamp borders.
//   (a) body fusion: the interior value 992,
//   (b) incorrect border fusion (no index exchange): the figure's
//       intermediate matrix 16/24/56/... and the wrong corner value,
//   (c) correct border fusion (index exchange): 763, identical to the
//       unfused reference everywhere.
// Also sweeps all border modes to show exactness of the exchange.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "sim/Executor.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

static void printMatrix(const char *Title, const Image &Img) {
  std::printf("%s\n", Title);
  for (int Y = 0; Y != Img.height(); ++Y) {
    for (int X = 0; X != Img.width(); ++X)
      std::printf("%7.1f", Img.at(X, Y));
    std::printf("\n");
  }
}

static Partition wholePartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

int main() {
  std::printf("=== Figure 4: local-to-local fusion with border handling "
              "===\n\n");

  Program P = makeFigure4Program();
  FusedProgram FP =
      fuseProgram(P, wholePartition(P), FusionStyle::Optimized);

  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeFigure4Matrix();
  runUnfused(P, Reference);

  printMatrix("input matrix (Figure 4a):", Reference[0]);
  printMatrix("\nintermediate after conv0 (unfused):", Reference[1]);
  printMatrix("\noutput after conv1 (unfused reference):", Reference[2]);

  std::printf("\n(a) body fusion: fused interior value at (2,2) = ");
  std::vector<Image> FusedPool = makeImagePool(P);
  FusedPool[0] = makeFigure4Matrix();
  runFused(FP, FusedPool);
  std::printf("%.0f (paper: 992)\n", FusedPool[2].at(2, 2));

  std::printf("\n(b) incorrect border fusion (no index exchange):\n");
  std::vector<Image> NaivePool = makeImagePool(P);
  NaivePool[0] = makeFigure4Matrix();
  ExecutionOptions Naive;
  Naive.UseIndexExchange = false;
  runFused(FP, NaivePool, Naive);
  std::printf("    raw exterior evaluations of conv0 around the corner "
              "(the matrix Figure 4b prints):\n");
  for (int Y = -1; Y <= 1; ++Y) {
    std::printf("   ");
    for (int X = -1; X <= 1; ++X)
      std::printf("%7.1f", evalKernelAt(P, 0, NaivePool, X, Y, 0));
    std::printf("\n");
  }
  std::printf("    top-left output = %.0f -- WRONG (correct is %.0f).\n",
              NaivePool[2].at(0, 0), Reference[2].at(0, 0));
  std::printf("    Note: the paper prints 648 in Figure 4b; convolving the "
              "figure's own intermediate\n    matrix (reproduced above, "
              "value for value) yields 684. Either way it differs from\n"
              "    the correct 763. See EXPERIMENTS.md.\n");

  std::printf("\n(c) correct border fusion (index exchange, Section "
              "IV-B):\n");
  std::printf("    top-left output = %.0f (paper: 763)\n",
              FusedPool[2].at(0, 0));
  std::printf("    max |fused - unfused| over the whole image = %g\n",
              maxAbsDifference(FusedPool[2], Reference[2]));

  std::printf("\n-- border-mode sweep (fused vs unfused, random 20x14 "
              "image) --\n");
  TablePrinter Sweep({"border mode", "max abs diff (exchange)",
                      "max abs diff (naive)"});
  for (BorderMode Mode : {BorderMode::Clamp, BorderMode::Mirror,
                          BorderMode::Repeat, BorderMode::Constant}) {
    Program Chain = makeBlurChain(20, 14, Mode);
    Rng Gen(4242);
    Image Input = makeRandomImage(20, 14, 1, Gen);

    std::vector<Image> Ref = makeImagePool(Chain);
    Ref[0] = Input;
    runUnfused(Chain, Ref);

    FusedProgram ChainFused =
        fuseProgram(Chain, wholePartition(Chain), FusionStyle::Optimized);
    std::vector<Image> Good = makeImagePool(Chain);
    Good[0] = Input;
    runFused(ChainFused, Good);

    std::vector<Image> Bad = makeImagePool(Chain);
    Bad[0] = Input;
    runFused(ChainFused, Bad, Naive);

    Sweep.addRow({borderModeName(Mode),
                  formatDouble(maxAbsDifference(Good[2], Ref[2]), 6),
                  formatDouble(maxAbsDifference(Bad[2], Ref[2]), 6)});
  }
  std::fputs(Sweep.render().c_str(), stdout);
  std::printf(
      "\nThe exchange column must be exactly 0 for every mode. The naive "
      "method corrupts the halo\nfor clamp and constant borders; mirror "
      "and repeat happen to coincide (reflection and\nperiodicity commute "
      "with a symmetric convolution), so a compiler that only tests those\n"
      "modes would never notice the bug -- which is why automatic border "
      "handling matters.\n");
  return 0;
}
