//===- bench/crossover_sweep.cpp - Locality/recompute crossover ------------------===//
//
// Regenerates the compute-boundedness discussion of Section V (the Night
// filter analysis): sweeping the arithmetic cost of a point producer
// feeding a 3x3 local consumer shows where the estimated benefit of
// point-to-local fusion (Eq. 8: w = delta_reg - cost_op * IS_ks * sz)
// crosses zero, and that the benefit model's fuse/skip decision tracks the
// simulated execution times -- fusing past the crossover would slow the
// pipeline down ("compute-bound applications benefit less from kernel
// fusion").
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/MinCutPartitioner.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  HardwareModel HW = paperHardwareModel();
  CostModelParams Params;
  DeviceSpec Device = DeviceSpec::gtx680();

  std::printf("=== Crossover sweep: point-to-local fusion vs producer cost "
              "(GTX680, 2048x2048) ===\n\n");
  std::printf("Eq. 8: w = %.0f - (%.0f * (nALU+1)) * 1 * 9; the model "
              "predicts the crossover at\nnALU+1 > %.1f operations.\n\n",
              HW.GlobalAccessCycles, HW.AluCost,
              HW.GlobalAccessCycles / (HW.AluCost * 9.0));

  TablePrinter Table({"producer ALU ops", "edge weight w", "model fuses?",
                      "t_base ms", "t_fused ms", "fused/base speedup"});

  for (int AluOps : {1, 2, 4, 6, 8, 10, 11, 12, 16, 24, 48, 96}) {
    Program P = makePointToLocal(2048, 2048, AluOps);

    // What the model decides.
    MinCutFusionResult Decision = runMinCutFusion(P, HW);
    bool Fused = Decision.Blocks.Blocks.size() == 1;
    LegalityChecker Checker(P, HW);
    BenefitModel Model(Checker);
    EdgeBenefit Edge = Model.edgeBenefit(0, 1);

    // Simulated times of both choices, regardless of the decision.
    double TBase = estimateProgramTimeMs(
        accountFusedProgram(unfusedProgram(P)), Device, Params);
    Partition Whole;
    Whole.Blocks.push_back(PartitionBlock{{0, 1}});
    double TFused = estimateProgramTimeMs(
        accountFusedProgram(fuseProgram(P, Whole, FusionStyle::Optimized)),
        Device, Params);

    Table.addRow({std::to_string(AluOps + 1), // +1: the store (Eq. 6).
                  Edge.Weight <= HW.Epsilon ? "eps"
                                            : formatDouble(Edge.Weight, 0),
                  Fused ? "yes" : "no", formatDouble(TBase, 3),
                  formatDouble(TFused, 3),
                  formatDouble(TBase / TFused, 3)});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nReading: while the producer is cheap, fusing wins and the "
              "model fuses; as the producer\ngrows, the 9x recompute makes "
              "the fused kernel compute-bound and the speedup decays\n"
              "below 1.0 -- the model stops fusing near the analytic "
              "crossover. This is the mechanism\nbehind the Night filter's "
              "flat Table I row.\n");
  return 0;
}
