//===- bench/crossover_sweep.cpp - Locality/recompute crossover ------------------===//
//
// Regenerates the compute-boundedness discussion of Section V (the Night
// filter analysis): sweeping the arithmetic cost of a point producer
// feeding a 3x3 local consumer shows where the estimated benefit of
// point-to-local fusion (Eq. 8: w = delta_reg - cost_op * IS_ks * sz)
// crosses zero, and that the benefit model's fuse/skip decision tracks the
// simulated execution times -- fusing past the crossover would slow the
// pipeline down ("compute-bound applications benefit less from kernel
// fusion").
//
// The second half studies the analogous crossover between the two tiling
// strategies of the fused VM: the interior/halo split (recursive halo
// recompute at tile edges) vs overlapped tiling (each tile recomputes a
// margin-grown footprint into scratch planes, Eq. 9's fused reach).
// It sweeps fused reach against tile size on synthetic blur chains,
// A/Bs Harris at the paper's 2048x2048, measures every registry pipeline
// under both strategies, and checks the execution autotuner's predicted
// winner against the measured one. Results are spliced into the shared
// throughput JSON as the "tiling_crossover" section.
//
// Options:
//   --out FILE          JSON results file (default BENCH_throughput.json)
//   --tiling-scale S    registry-pipeline image scale (default 0.25)
//   --tiling-reps N     best-of-N wall-clock reps (default 3)
//   --harris-size N     Harris A/B image extent (default 2048)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/MinCutPartitioner.h"
#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "sim/Metrics.h"
#include "sim/Tuner.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace kf;

namespace {

/// A chain of \p Depth 3x3 binomial blurs: fused whole, the destination's
/// reach (Eq. 9) is exactly \p Depth, which makes chains the natural axis
/// for the reach-vs-tile-size sweep.
Program makeDeepBlurChain(int Width, int Height, int Depth) {
  Program P("blurdepth" + std::to_string(Depth));
  ExprContext &C = P.context();
  int MaskIdx = P.addMask(binomial3Normalized());
  ImageId Prev = P.addImage("in", Width, Height);
  for (int N = 0; N != Depth; ++N) {
    ImageId Next = P.addImage("blur" + std::to_string(N), Width, Height);
    Kernel K;
    K.Name = "blur" + std::to_string(N);
    K.Kind = OperatorKind::Local;
    K.Inputs = {Prev};
    K.Output = Next;
    K.Body = C.stencil(MaskIdx, ReduceOp::Sum,
                       C.mul(C.maskValue(), C.stencilInput(0)));
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
    Prev = Next;
  }
  verifyProgramOrDie(P);
  return P;
}

/// Best-of-\p Reps wall milliseconds for one whole-program-fused run of
/// \p P under \p Options.
double measureFusedWallMs(const Program &P, const FusedProgram &FP,
                          const ExecutionOptions &Options, int Reps) {
  std::vector<Image> Pool = makeImagePool(P);
  fillExternalInputs(P, Pool, 0x7113);
  double Best = 0.0;
  for (int R = 0; R < std::max(Reps, 1); ++R) {
    auto Start = std::chrono::steady_clock::now();
    runFusedVm(FP, Pool, Options);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    Best = R == 0 ? Ms : std::min(Best, Ms);
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  HardwareModel HW = paperHardwareModel();
  CostModelParams Params;
  DeviceSpec Device = DeviceSpec::gtx680();

  std::printf("=== Crossover sweep: point-to-local fusion vs producer cost "
              "(GTX680, 2048x2048) ===\n\n");
  std::printf("Eq. 8: w = %.0f - (%.0f * (nALU+1)) * 1 * 9; the model "
              "predicts the crossover at\nnALU+1 > %.1f operations.\n\n",
              HW.GlobalAccessCycles, HW.AluCost,
              HW.GlobalAccessCycles / (HW.AluCost * 9.0));

  TablePrinter Table({"producer ALU ops", "edge weight w", "model fuses?",
                      "t_base ms", "t_fused ms", "fused/base speedup"});

  for (int AluOps : {1, 2, 4, 6, 8, 10, 11, 12, 16, 24, 48, 96}) {
    Program P = makePointToLocal(2048, 2048, AluOps);

    // What the model decides.
    MinCutFusionResult Decision = runMinCutFusion(P, HW);
    bool Fused = Decision.Blocks.Blocks.size() == 1;
    LegalityChecker Checker(P, HW);
    BenefitModel Model(Checker);
    EdgeBenefit Edge = Model.edgeBenefit(0, 1);

    // Simulated times of both choices, regardless of the decision.
    double TBase = estimateProgramTimeMs(
        accountFusedProgram(unfusedProgram(P)), Device, Params);
    Partition Whole;
    Whole.Blocks.push_back(PartitionBlock{{0, 1}});
    double TFused = estimateProgramTimeMs(
        accountFusedProgram(fuseProgram(P, Whole, FusionStyle::Optimized)),
        Device, Params);

    Table.addRow({std::to_string(AluOps + 1), // +1: the store (Eq. 6).
                  Edge.Weight <= HW.Epsilon ? "eps"
                                            : formatDouble(Edge.Weight, 0),
                  Fused ? "yes" : "no", formatDouble(TBase, 3),
                  formatDouble(TFused, 3),
                  formatDouble(TBase / TFused, 3)});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nReading: while the producer is cheap, fusing wins and the "
              "model fuses; as the producer\ngrows, the 9x recompute makes "
              "the fused kernel compute-bound and the speedup decays\n"
              "below 1.0 -- the model stops fusing near the analytic "
              "crossover. This is the mechanism\nbehind the Night filter's "
              "flat Table I row.\n");

  //===------------------------------------------------------------------===//
  // Tiling-strategy crossover: interior/halo vs overlapped tiling.
  //===------------------------------------------------------------------===//

  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");
  double TilingScale = Cl.getDoubleOption("tiling-scale", 0.25);
  int Reps = std::max(1, static_cast<int>(Cl.getIntOption("tiling-reps", 3)));
  int HarrisSize =
      std::max(64, static_cast<int>(Cl.getIntOption("harris-size", 2048)));

  auto abOptions = [](TilingStrategy Strategy, int TileW, int TileH) {
    ExecutionOptions Options;
    Options.Tiling = Strategy;
    if (Strategy == TilingStrategy::Overlapped) {
      Options.TileWidth = TileW;
      Options.TileHeight = TileH;
    }
    return Options;
  };

  // Reach vs tile size: deep blur chains fused whole (reach == depth) at
  // a fixed image size, overlapped tiles shrinking against them. The
  // redundant margin area grows as (T+2R)^2/T^2, so deep chains punish
  // small tiles -- the measured crossover the tuner's tileLoadFactor
  // term models.
  std::printf("\n=== Tiling crossover: fused reach vs overlapped tile size "
              "(host VM, 512x512) ===\n\n");
  TablePrinter ReachTable({"chain depth (reach)", "tile", "interior ms",
                           "overlapped ms", "overlapped/interior speedup"});
  std::string ReachJson = "[";
  // Depth stops at 4: the shared border-ring path recomputes producers
  // recursively per halo pixel (9^depth taps), so deeper chains measure
  // the ring, not the tiled interior the sweep is about.
  for (int Depth : {1, 2, 3, 4}) {
    Program P = makeDeepBlurChain(512, 512, Depth);
    Partition Whole;
    PartitionBlock Block;
    for (KernelId Id = 0; Id != P.numKernels(); ++Id)
      Block.Kernels.push_back(Id);
    Whole.Blocks.push_back(Block);
    FusedProgram FP = fuseProgram(P, Whole, FusionStyle::Optimized);
    for (auto [TileW, TileH] : {std::pair<int, int>{32, 8},
                                std::pair<int, int>{128, 32},
                                std::pair<int, int>{256, 64}}) {
      double InteriorMs = measureFusedWallMs(
          P, FP, abOptions(TilingStrategy::InteriorHalo, 0, 0), Reps);
      double OverlapMs = measureFusedWallMs(
          P, FP, abOptions(TilingStrategy::Overlapped, TileW, TileH), Reps);
      double Speedup = OverlapMs > 0.0 ? InteriorMs / OverlapMs : 0.0;
      ReachTable.addRow({std::to_string(Depth),
                         std::to_string(TileW) + "x" + std::to_string(TileH),
                         formatDouble(InteriorMs, 3),
                         formatDouble(OverlapMs, 3),
                         formatDouble(Speedup, 3)});
      char Row[256];
      std::snprintf(Row, sizeof(Row),
                    "%s\n    {\"reach\": %d, \"tile\": \"%dx%d\", "
                    "\"interior_ms\": %.4f, \"overlapped_ms\": %.4f, "
                    "\"overlapped_speedup\": %.4f}",
                    ReachJson.size() > 1 ? "," : "", Depth, TileW, TileH,
                    InteriorMs, OverlapMs, Speedup);
      ReachJson += Row;
    }
  }
  ReachJson += "\n  ]";
  std::fputs(ReachTable.render().c_str(), stdout);

  // Registry pipelines under both strategies, with the execution
  // autotuner's prediction alongside the measured winner.
  std::printf("\n=== Tiling crossover: registry pipelines (scale %.2f, "
              "best of %d) ===\n\n",
              TilingScale, Reps);
  TablePrinter AppTable({"app", "interior ms", "overlapped ms",
                         "measured winner", "tuned prediction", "tile",
                         "match"});
  std::string AppJson = "[";
  int Matches = 0, Apps = 0, InteriorWins = 0, OverlappedWins = 0;
  int RegistryMatches = 0, RegistryApps = 0;
  auto measureOne = [&](const std::string &Name, const Program &P,
                        const FusedProgram &FP, bool Registry) {
    double InteriorMs = measureFusedWallMs(
        P, FP, abOptions(TilingStrategy::InteriorHalo, 0, 0), Reps);
    ExecTuneResult Tuned = tuneExecution(
        FP, MetricsRegistry::referenceDevice(), CostModelParams());
    bool TunedOverlapped =
        Tuned.Best.Candidate.Strategy == TilingStrategy::Overlapped;
    double OverlapMs = measureFusedWallMs(
        P, FP,
        abOptions(TilingStrategy::Overlapped,
                  TunedOverlapped ? Tuned.Best.Candidate.Tile.Width : 0,
                  TunedOverlapped ? Tuned.Best.Candidate.Tile.Height : 0),
        Reps);

    const char *MeasuredWinner =
        OverlapMs < InteriorMs ? "overlapped" : "interior";
    (OverlapMs < InteriorMs ? OverlappedWins : InteriorWins) += 1;
    const char *TunedWinner = tilingStrategyName(Tuned.Best.Candidate.Strategy);
    bool Match = std::string(MeasuredWinner) == TunedWinner;
    Matches += Match;
    ++Apps;
    if (Registry) {
      RegistryMatches += Match;
      ++RegistryApps;
    }
    std::string Tile =
        TunedOverlapped
            ? std::to_string(Tuned.Best.Candidate.Tile.Width) + "x" +
                  std::to_string(Tuned.Best.Candidate.Tile.Height)
            : std::string("-");
    AppTable.addRow({Name, formatDouble(InteriorMs, 3),
                     formatDouble(OverlapMs, 3), MeasuredWinner, TunedWinner,
                     Tile, Match ? "yes" : "no"});
    char Row[320];
    std::snprintf(Row, sizeof(Row),
                  "%s\n    {\"app\": \"%s\", \"registry\": %s, "
                  "\"interior_ms\": %.4f, "
                  "\"overlapped_ms\": %.4f, \"measured_winner\": \"%s\", "
                  "\"tuned_strategy\": \"%s\", \"tuned_tile\": \"%s\", "
                  "\"predicted_ms\": %.4f, \"match\": %s}",
                  AppJson.size() > 1 ? "," : "", Name.c_str(),
                  Registry ? "true" : "false", InteriorMs, OverlapMs,
                  MeasuredWinner, TunedWinner, Tile.c_str(), Tuned.Best.TimeMs,
                  Match ? "true" : "false");
    AppJson += Row;
  };

  for (const PipelineSpec &Spec : paperPipelines()) {
    AppVariants App = buildAppVariants(Spec, TilingScale);
    measureOne(Spec.Name, *App.Source, App.Optimized, /*Registry=*/true);
  }
  // Pure point chains bound the other side of the crossover: no windows,
  // so overlapped tiling's scratch planes are pure overhead against the
  // interior path's in-register chaining.
  for (int ChainAlu : {8, 32}) {
    Program P = makePointChain(512, 512, 6, ChainAlu);
    MinCutFusionResult Fusion = runMinCutFusion(P, HW);
    FusedProgram FP =
        fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
    measureOne("pointchain-alu" + std::to_string(ChainAlu), P, FP,
               /*Registry=*/false);
  }
  AppJson += "\n  ]";
  std::fputs(AppTable.render().c_str(), stdout);
  std::printf("tuner matched the measured winner on %d of %d pipelines "
              "(%d of %d registry); wins: %d interior, %d overlapped\n",
              Matches, Apps, RegistryMatches, RegistryApps, InteriorWins,
              OverlappedWins);

  // Harris at the paper's full frame: the headline A/B of the strategy.
  const PipelineSpec *Harris = findPipeline("harris");
  Program HarrisP = Harris->Builder(HarrisSize, HarrisSize);
  FusedProgram HarrisFp =
      fuseProgram(HarrisP, runMinCutFusion(HarrisP, HW).Blocks,
                  FusionStyle::Optimized);
  double HarrisInterior = measureFusedWallMs(
      HarrisP, HarrisFp, abOptions(TilingStrategy::InteriorHalo, 0, 0), Reps);
  double HarrisOverlap = measureFusedWallMs(
      HarrisP, HarrisFp, abOptions(TilingStrategy::Overlapped, 0, 0), Reps);
  std::printf("\nharris %dx%d A/B (best of %d): interior %.3f ms, "
              "overlapped %.3f ms, overlapped speedup %.3fx\n",
              HarrisSize, HarrisSize, Reps, HarrisInterior, HarrisOverlap,
              HarrisOverlap > 0.0 ? HarrisInterior / HarrisOverlap : 0.0);

  std::string Section = "{\n  \"reach_sweep\": " + ReachJson +
                        ",\n  \"pipelines\": " + AppJson;
  char Tail[512];
  std::snprintf(
      Tail, sizeof(Tail),
      ",\n  \"tuner_match_count\": %d, \"tuner_pipelines\": %d, "
      "\"registry_match_count\": %d, \"registry_pipelines\": %d,\n"
      "  \"harris_ab\": {\"width\": %d, \"height\": %d, "
      "\"interior_ms\": %.4f, \"overlapped_ms\": %.4f, "
      "\"overlapped_speedup\": %.4f}\n}",
      Matches, Apps, RegistryMatches, RegistryApps, HarrisSize, HarrisSize,
      HarrisInterior, HarrisOverlap,
      HarrisOverlap > 0.0 ? HarrisInterior / HarrisOverlap : 0.0);
  Section += Tail;
  if (spliceJsonSection(OutFile, "tiling_crossover", Section))
    std::printf("appended tiling_crossover section to %s\n", OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }
  return 0;
}
