//===- bench/autotune.cpp - Tuning the fusion knobs -------------------------------===//
//
// Mechanizes the tradeoff exploration of the paper's Figure 1: sweeps the
// Eq. 2 shared-memory threshold and the thread-block tile shape per
// application and device, and reports the best configuration against the
// paper's hand-picked defaults (cMshared = 2, 32x4 tiles). Shows where
// the default is already optimal and where a different resource budget
// pays.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/Tuner.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  HardwareModel HW = paperHardwareModel();
  CostModelParams Params;

  std::printf("=== Autotuning cMshared and the tile shape (grid of %zu "
              "candidates) ===\n\n",
              defaultTuneGrid().size());

  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    std::printf("-- %s --\n", Device.Name.c_str());
    TablePrinter Table({"app", "default ms", "best ms", "gain",
                        "best cMshared", "best tile", "launches"});
    for (const PipelineSpec &Spec : paperPipelines()) {
      Program P = Spec.build();
      // The paper's default configuration.
      TuneCandidate Default;
      TuneResult DefaultRun =
          tuneFusion(P, Device, HW, Params, {Default});
      TuneResult Tuned = tuneFusion(P, Device, HW, Params);
      Table.addRow(
          {Spec.Name, formatDouble(DefaultRun.Best.TimeMs, 3),
           formatDouble(Tuned.Best.TimeMs, 3),
           formatDouble(DefaultRun.Best.TimeMs / Tuned.Best.TimeMs, 3),
           formatDouble(Tuned.Best.Candidate.SharedMemThreshold, 1),
           std::to_string(Tuned.Best.Candidate.Tile.Width) + "x" +
               std::to_string(Tuned.Best.Candidate.Tile.Height),
           std::to_string(Tuned.Best.Launches)});
    }
    std::fputs(Table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Reading: Night is insensitive (compute-bound) and the chain "
      "pipelines tune mildly. The\nlarge Harris/ShiTomasi gains at "
      "cMshared = 8 say the *analytic* model would fuse deeper\nthan the "
      "paper's threshold of 2: its occupancy penalty for stacked shared "
      "tiles is milder\nthan real hardware's (no register-pressure or "
      "instruction-cache effects), so it happily\ntrades a 9x recompute "
      "chain for the eliminated traffic. The paper's conservative\n"
      "threshold guards exactly the effects the model does not see -- "
      "which is what makes this\nsweep a useful sensitivity analysis "
      "rather than a tuning recipe.\n");
  return 0;
}
