//===- bench/ablation_partitioners.cpp - Search-strategy ablation ---------------===//
//
// Ablation of the paper's central design choice: solving the fusion search
// with recursive weighted min-cut (Algorithm 1) instead of greedy
// heaviest-edge grouping (PolyMage/Halide style) or strictly pairwise
// fusion (prior work [12]). Compares the achieved objective (Eq. 1) on
// the six paper applications and on random pipelines, with the exhaustive
// optimum as the oracle where feasible (<= 10 kernels; min-weight k-cut
// is NP-complete for undetermined k).
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/BasicFusion.h"
#include "fusion/ExhaustivePartitioner.h"
#include "fusion/GreedyPartitioner.h"
#include "fusion/MinCutPartitioner.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int RandomTrials = static_cast<int>(Cl.getIntOption("trials", 40));
  HardwareModel HW = paperHardwareModel();

  std::printf("=== Ablation: fusion search strategies (objective beta of "
              "Eq. 1, cycles/pixel) ===\n\n");

  std::printf("-- the six paper applications (exhaustive optimum as "
              "oracle) --\n");
  TablePrinter Table({"app", "kernels", "min-cut", "greedy", "basic [12]",
                      "optimal", "min-cut blocks"});
  for (const PipelineSpec &Spec : paperPipelines()) {
    Program P = Spec.Builder(256, 256);
    MinCutFusionResult MinCut = runMinCutFusion(P, HW);
    GreedyFusionResult Greedy = runGreedyFusion(P, HW);
    BasicFusionResult Basic = runBasicFusion(P, HW);
    ExhaustiveFusionResult Optimal = runExhaustiveFusion(P, HW);
    Table.addRow({Spec.Name, std::to_string(P.numKernels()),
                  formatDouble(MinCut.TotalBenefit, 1),
                  formatDouble(Greedy.TotalBenefit, 1),
                  formatDouble(Basic.TotalBenefit, 1),
                  formatDouble(Optimal.TotalBenefit, 1),
                  std::to_string(MinCut.Blocks.Blocks.size())});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\n-- random pipelines (%d trials per size, 40%% local "
              "kernels) --\n",
              RandomTrials);
  TablePrinter Rand({"kernels", "min-cut avg", "greedy avg", "basic avg",
                     "greedy/min-cut", "basic/min-cut"});
  Rng Gen(20260704);
  for (unsigned NumKernels : {6u, 8u, 10u, 14u, 20u}) {
    double SumMinCut = 0.0, SumGreedy = 0.0, SumBasic = 0.0;
    for (int Trial = 0; Trial != RandomTrials; ++Trial) {
      Program P = makeRandomPipeline(NumKernels, 0.4, 128, 128, Gen);
      SumMinCut += runMinCutFusion(P, HW).TotalBenefit;
      SumGreedy += runGreedyFusion(P, HW).TotalBenefit;
      SumBasic += runBasicFusion(P, HW).TotalBenefit;
    }
    auto ratio = [&](double Num) {
      return SumMinCut > 0.0 ? formatDouble(Num / SumMinCut, 3) : "n/a";
    };
    Rand.addRow({std::to_string(NumKernels),
                 formatDouble(SumMinCut / RandomTrials, 1),
                 formatDouble(SumGreedy / RandomTrials, 1),
                 formatDouble(SumBasic / RandomTrials, 1),
                 ratio(SumGreedy), ratio(SumBasic)});
  }
  std::fputs(Rand.render().c_str(), stdout);

  std::printf("\nReading: min-cut matches the optimum on all six paper "
              "apps and dominates the pairwise\nbasic fusion everywhere; "
              "greedy tracks min-cut on beneficial-edge DAGs but finds "
              "nothing\non shared-input shapes (Sobel, Unsharp) whose "
              "edges are pairwise-illegal.\n");
  return 0;
}
