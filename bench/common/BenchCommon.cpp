//===- bench/common/BenchCommon.cpp --------------------------------------------===//

#include "bench/common/BenchCommon.h"

#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Generators.h"
#include "support/Error.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace kf;

const char *kf::variantName(Variant V) {
  switch (V) {
  case Variant::Baseline:
    return "baseline";
  case Variant::BasicFusion:
    return "basic";
  case Variant::OptimizedFusion:
    return "optimized";
  }
  KF_UNREACHABLE("unknown variant");
}

HardwareModel kf::paperHardwareModel() {
  HardwareModel HW;
  HW.GlobalAccessCycles = 400.0;
  HW.SharedAccessCycles = 4.0;
  HW.AluCost = 4.0;
  HW.SfuCost = 16.0;
  HW.SharedMemThreshold = 2.0;
  HW.Gamma = 0.0;
  return HW;
}

const FusedProgram &AppVariants::variant(Variant V) const {
  switch (V) {
  case Variant::Baseline:
    return Baseline;
  case Variant::BasicFusion:
    return Basic;
  case Variant::OptimizedFusion:
    return Optimized;
  }
  KF_UNREACHABLE("unknown variant");
}

AppVariants kf::buildAppVariants(const PipelineSpec &Spec, double Scale) {
  AppVariants App;
  App.Name = Spec.Name;
  int W = std::max(8, static_cast<int>(std::lround(Spec.Width * Scale)));
  int H = std::max(8, static_cast<int>(std::lround(Spec.Height * Scale)));
  App.Source = std::make_unique<Program>(Spec.Builder(W, H));
  const Program &P = *App.Source;
  HardwareModel HW = paperHardwareModel();
  App.Baseline = unfusedProgram(P);
  BasicFusionResult Basic = runBasicFusion(P, HW);
  App.Basic = fuseProgram(P, Basic.Blocks, FusionStyle::Basic);
  MinCutFusionResult Optimized = runMinCutFusion(P, HW);
  App.Optimized = fuseProgram(P, Optimized.Blocks, FusionStyle::Optimized);
  return App;
}

const char *kf::execEngineName(ExecEngine E) {
  switch (E) {
  case ExecEngine::Ast:
    return "ast";
  case ExecEngine::Vm:
    return "vm";
  }
  KF_UNREACHABLE("unknown engine");
}

void kf::fillExternalInputs(const Program &P, std::vector<Image> &Pool,
                            uint64_t Seed) {
  std::vector<bool> Produced(P.numImages());
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Produced[P.kernel(Id).Output] = true;
  Rng Gen(Seed);
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    if (!Produced[Id]) {
      const ImageInfo &Info = P.image(Id);
      Pool[Id] =
          makeRandomImage(Info.Width, Info.Height, Info.Channels, Gen);
    }
}

double kf::measureVariantWallMs(const AppVariants &App, Variant V,
                                const ExecutionOptions &Options,
                                ExecEngine Engine, int Repeats) {
  const Program &P = *App.Source;
  const FusedProgram &FP = App.variant(V);
  std::vector<Image> Pool = makeImagePool(P);
  fillExternalInputs(P, Pool, 0xbe7c);

  double Best = 0.0;
  for (int R = 0; R < std::max(Repeats, 1); ++R) {
    auto Start = std::chrono::steady_clock::now();
    if (V == Variant::Baseline) {
      if (Engine == ExecEngine::Ast)
        runUnfused(P, Pool, Options);
      else
        runUnfusedVm(P, Pool, Options);
    } else {
      if (Engine == ExecEngine::Ast)
        runFused(FP, Pool, Options);
      else
        runFusedVm(FP, Pool, Options);
    }
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    Best = R == 0 ? Ms : std::min(Best, Ms);
  }
  return Best;
}

double kf::variantTimeMs(const AppVariants &App, Variant V,
                         const DeviceSpec &Device,
                         const CostModelParams &Params) {
  ProgramStats Stats = accountFusedProgram(App.variant(V), Params.Tile);
  return estimateProgramTimeMs(Stats, Device, Params);
}

BoxStats kf::variantRunStats(const AppVariants &App, Variant V,
                             const DeviceSpec &Device,
                             const CostModelParams &Params, int Runs) {
  NoiseModel Noise;
  // Distinct deterministic seed per configuration.
  Noise.Seed = 0x5eed ^ (static_cast<uint64_t>(V) << 32) ^
               std::hash<std::string>{}(App.Name + Device.Name);
  return simulateRuns(variantTimeMs(App, V, Device, Params), Runs, Noise);
}

const PaperTable1 &kf::paperTable1() {
  static const PaperTable1 Table = [] {
    PaperTable1 T;
    auto fill = [](std::map<std::string, std::map<std::string, double>> &M,
                   const char *Device, std::initializer_list<double> Row) {
      const char *Apps[6] = {"harris",    "sobel",   "unsharp",
                             "shitomasi", "enhance", "night"};
      int I = 0;
      for (double V : Row)
        M[Device][Apps[I++]] = V;
    };
    fill(T.OptOverBase, "GTX745", {1.145, 1.108, 2.025, 1.138, 1.760, 1.000});
    fill(T.OptOverBase, "GTX680", {1.344, 1.377, 3.438, 1.357, 1.920, 1.020});
    fill(T.OptOverBase, "K20c", {1.146, 1.048, 2.304, 1.149, 1.809, 1.000});
    fill(T.BasicOverBase, "GTX745",
         {1.044, 1.002, 1.007, 1.046, 1.413, 1.001});
    fill(T.BasicOverBase, "GTX680",
         {1.266, 0.987, 1.001, 1.287, 1.785, 1.020});
    fill(T.BasicOverBase, "K20c", {1.094, 1.002, 0.999, 1.099, 1.490, 1.000});
    fill(T.OptOverBasic, "GTX745",
         {1.097, 1.106, 2.011, 1.088, 1.245, 0.999});
    fill(T.OptOverBasic, "GTX680",
         {1.061, 1.394, 3.435, 1.055, 1.076, 1.000});
    fill(T.OptOverBasic, "K20c", {1.047, 1.046, 2.304, 1.046, 1.214, 1.000});
    return T;
  }();
  return Table;
}

const PaperTable2 &kf::paperTable2() {
  static const PaperTable2 Table = [] {
    PaperTable2 T;
    const char *Apps[6] = {"harris",    "sobel",   "unsharp",
                           "shitomasi", "enhance", "night"};
    const double Opt[6] = {1.208, 1.169, 2.522, 1.211, 1.829, 1.007};
    const double Basic[6] = {1.131, 1.000, 1.002, 1.139, 1.555, 1.007};
    const double OptBasic[6] = {1.068, 1.173, 2.516, 1.063, 1.176, 1.000};
    for (int I = 0; I != 6; ++I) {
      T.OptOverBase[Apps[I]] = Opt[I];
      T.BasicOverBase[Apps[I]] = Basic[I];
      T.OptOverBasic[Apps[I]] = OptBasic[I];
    }
    return T;
  }();
  return Table;
}

namespace {

/// Finds the end (one past the matching close) of the JSON value that
/// starts at \p From in \p Text, honoring strings and escapes. Returns
/// std::string::npos when the value never closes.
size_t jsonValueEnd(const std::string &Text, size_t From) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = From; I < Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      if (--Depth == 0)
        return I + 1;
      break;
    default:
      // Scalar member values end at the enclosing ',' or '}'.
      if (Depth == 0 && (C == ',' || C == '}'))
        return I;
      break;
    }
  }
  return std::string::npos;
}

} // namespace

bool kf::spliceJsonSection(const std::string &Path, const std::string &Key,
                           const std::string &Section) {
  std::string Content;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Content = Buf.str();
  }

  // Remove only the previous run's section, if any: from the comma (or
  // key quote) that introduces it through the end of its value.
  std::string Quoted = "\"" + Key + "\"";
  size_t KeyPos = Content.find(Quoted);
  if (KeyPos != std::string::npos) {
    size_t Colon = Content.find(':', KeyPos + Quoted.size());
    size_t ValueStart =
        Colon == std::string::npos
            ? std::string::npos
            : Content.find_first_not_of(" \t\r\n", Colon + 1);
    size_t End = ValueStart == std::string::npos
                     ? std::string::npos
                     : jsonValueEnd(Content, ValueStart);
    if (End != std::string::npos) {
      size_t Start = Content.rfind(',', KeyPos);
      if (Start == std::string::npos)
        Start = KeyPos;
      // If the section was not last, swallow the comma that followed it
      // instead so the remaining members stay well-formed.
      if (Content.compare(Start, 1, ",") != 0) {
        size_t Next = Content.find_first_not_of(" \t\r\n", End);
        if (Next != std::string::npos && Content[Next] == ',')
          End = Next + 1;
      }
      Content.erase(Start, End - Start);
    } else {
      Content.clear(); // Unrecognizable; start a fresh object.
    }
  }

  // Reopen the top-level object: drop the final close brace only (a
  // nested member may legitimately end in '}' right before it).
  size_t Close = Content.find_last_of('}');
  if (Close == std::string::npos)
    Content.clear();
  else
    Content.erase(Close);
  while (!Content.empty() &&
         std::isspace(static_cast<unsigned char>(Content.back())))
    Content.pop_back();

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out.good())
    return false;
  if (Content.empty() || Content == "{")
    Out << "{";
  else
    Out << Content << ",";
  Out << "\n  " << Quoted << ": " << Section << "\n}\n";
  return Out.good();
}
