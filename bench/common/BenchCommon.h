//===- bench/common/BenchCommon.h - Shared evaluation harness ---*- C++ -*-===//
///
/// \file
/// Shared machinery of the evaluation benchmarks: building the three
/// implementation variants the paper compares (baseline, basic fusion of
/// prior work [12], optimized fusion), timing them on the three simulated
/// GPUs, and the paper's published Table I / Table II numbers for
/// side-by-side reporting.
///
//===----------------------------------------------------------------------===//

#ifndef KF_BENCH_COMMON_BENCHCOMMON_H
#define KF_BENCH_COMMON_BENCHCOMMON_H

#include "fusion/HardwareModel.h"
#include "pipelines/Pipelines.h"
#include "sim/CostModel.h"
#include "sim/Executor.h"
#include "sim/Runner.h"
#include "transform/Fuser.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace kf {

/// The three implementations compared throughout Section V.
enum class Variant { Baseline, BasicFusion, OptimizedFusion };

const char *variantName(Variant V);

/// The paper's benefit-model constants (Section III-B walk-through).
HardwareModel paperHardwareModel();

/// One application prepared in all three variants. The source program is
/// heap-allocated so the fused programs' back-pointers stay valid when an
/// AppVariants is moved around.
struct AppVariants {
  std::string Name;
  std::unique_ptr<Program> Source;
  FusedProgram Baseline;
  FusedProgram Basic;
  FusedProgram Optimized;

  const FusedProgram &variant(Variant V) const;
};

/// Builds the three variants of \p Spec at its paper image size scaled by
/// \p Scale on each axis (1.0 = the paper size; benchmarks use smaller
/// scales to keep host-execution runs tractable).
AppVariants buildAppVariants(const PipelineSpec &Spec, double Scale = 1.0);

/// Which host evaluation engine executes a variant's pixels.
enum class ExecEngine {
  Ast, ///< Tree-walking interpreter (semantic reference).
  Vm,  ///< Bytecode VM with interior/halo split + row-wise evaluation.
};

const char *execEngineName(ExecEngine E);

/// Fills every external input of \p P (images no kernel produces) in
/// \p Pool with deterministic random data, so measured runs are
/// reproducible across invocations and engines.
void fillExternalInputs(const Program &P, std::vector<Image> &Pool,
                        uint64_t Seed);

/// Wall-clock milliseconds to actually execute one variant's pixels on
/// the host with the given engine and execution options (best of
/// \p Repeats runs on a shared pre-filled pool). The Baseline variant
/// runs the unfused engines; fused variants run runFused / runFusedVm.
double measureVariantWallMs(const AppVariants &App, Variant V,
                            const ExecutionOptions &Options,
                            ExecEngine Engine, int Repeats = 3);

/// Analytic execution time of one variant on one device (milliseconds).
double variantTimeMs(const AppVariants &App, Variant V,
                     const DeviceSpec &Device, const CostModelParams &Params);

/// Simulated repeated-measurement statistics (Figure 6 protocol: the
/// paper performs 500 runs per configuration).
BoxStats variantRunStats(const AppVariants &App, Variant V,
                         const DeviceSpec &Device,
                         const CostModelParams &Params, int Runs);

/// Published speedups from the paper's Table I, indexed by
/// [device name][app name]. Apps use the registry names.
struct PaperTable1 {
  std::map<std::string, std::map<std::string, double>> OptOverBase;
  std::map<std::string, std::map<std::string, double>> BasicOverBase;
  std::map<std::string, std::map<std::string, double>> OptOverBasic;
};
const PaperTable1 &paperTable1();

/// Splices \p Section (a JSON value) into the top-level JSON object of
/// \p Path as member \p Key, replacing only a previous run's \p Key
/// section (brace-matched, string-aware) and leaving every other
/// member intact -- so the benches that share BENCH_throughput.json
/// can run in any order without destroying each other's sections.
/// Writes a fresh object when the file is missing or unrecognizable.
bool spliceJsonSection(const std::string &Path, const std::string &Key,
                       const std::string &Section);

/// Published geometric means from Table II, indexed by app name.
struct PaperTable2 {
  std::map<std::string, double> OptOverBase;
  std::map<std::string, double> BasicOverBase;
  std::map<std::string, double> OptOverBasic;
};
const PaperTable2 &paperTable2();

} // namespace kf

#endif // KF_BENCH_COMMON_BENCHCOMMON_H
