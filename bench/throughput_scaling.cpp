//===- bench/throughput_scaling.cpp - Host engine throughput -------------------===//
//
// Measures real (wall-clock) pixel throughput of the host evaluation
// engines -- the AST walker on the fused program, the bytecode VM on the
// unfused program, and the staged fused-kernel VM -- across thread counts
// {1, 2, 4, hardware}. This is the harness behind the reproduction's
// "fast path" claims: the fused VM's interior/halo split plus row-wise
// evaluation versus per-pixel tree walking.
//
// Options:
//   --app <name>      pipeline registry name (default harris)
//   --width/--height  image size (default 512x512; the paper size 2048
//                     is reachable but slow for the AST rows)
//   --repeats N       best-of-N timing per configuration (default 3)
//   --out FILE        JSON results file (default BENCH_throughput.json)
//   --skip-ast        omit the slow AST rows (VM scaling only)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

using namespace kf;

namespace {

struct Row {
  std::string Engine;
  int Threads = 1;
  double WallMs = 0.0;
  double PixelsPerSec = 0.0;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"skip-ast"});
  std::string AppName = Cl.getOption("app", "harris");
  const PipelineSpec *Spec = findPipeline(AppName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", AppName.c_str());
    return 1;
  }
  int Width = static_cast<int>(Cl.getIntOption("width", 512));
  int Height = static_cast<int>(Cl.getIntOption("height", 512));
  int Repeats = static_cast<int>(Cl.getIntOption("repeats", 3));
  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");
  bool SkipAst = Cl.hasOption("skip-ast");

  PipelineSpec Sized = *Spec;
  Sized.Width = Width;
  Sized.Height = Height;
  AppVariants App = buildAppVariants(Sized);

  std::vector<int> ThreadCounts{1, 2, 4};
  int Hardware =
      static_cast<int>(std::max(std::thread::hardware_concurrency(), 1u));
  ThreadCounts.push_back(Hardware);
  std::sort(ThreadCounts.begin(), ThreadCounts.end());
  ThreadCounts.erase(std::unique(ThreadCounts.begin(), ThreadCounts.end()),
                     ThreadCounts.end());

  double Pixels = static_cast<double>(Width) * Height;
  std::printf("=== Host throughput: %s at %dx%d (best of %d, "
              "hardware threads: %d) ===\n\n",
              AppName.c_str(), Width, Height, Repeats, Hardware);

  struct EngineSpec {
    const char *Name;
    Variant V;
    ExecEngine Engine;
    bool AstPriced; ///< Slow row, skipped under --skip-ast.
  };
  const EngineSpec Engines[3] = {
      {"ast-fused", Variant::OptimizedFusion, ExecEngine::Ast, true},
      {"vm-unfused", Variant::Baseline, ExecEngine::Vm, false},
      {"vm-fused", Variant::OptimizedFusion, ExecEngine::Vm, false},
  };

  std::vector<Row> Rows;
  TablePrinter Table({"engine", "threads", "wall ms", "Mpixels/s",
                      "vs ast-fused@1"});
  double AstSingleMs = 0.0;
  for (const EngineSpec &E : Engines) {
    if (SkipAst && E.AstPriced)
      continue;
    for (int Threads : ThreadCounts) {
      ExecutionOptions Options;
      Options.Threads = Threads;
      double Ms =
          measureVariantWallMs(App, E.V, Options, E.Engine, Repeats);
      if (E.AstPriced && Threads == 1)
        AstSingleMs = Ms;
      Row R{E.Name, Threads, Ms, Pixels * 1000.0 / Ms};
      Table.addRow({R.Engine, std::to_string(R.Threads),
                    formatDouble(R.WallMs, 3),
                    formatDouble(R.PixelsPerSec / 1e6, 2),
                    AstSingleMs > 0.0 ? formatDouble(AstSingleMs / Ms, 2)
                                      : "-"});
      Rows.push_back(R);
    }
  }
  std::fputs(Table.render().c_str(), stdout);

  if (FILE *Out = std::fopen(OutFile.c_str(), "w")) {
    std::fprintf(Out,
                 "{\n  \"app\": \"%s\",\n  \"width\": %d,\n"
                 "  \"height\": %d,\n  \"repeats\": %d,\n"
                 "  \"hardware_threads\": %d,\n  \"results\": [\n",
                 AppName.c_str(), Width, Height, Repeats, Hardware);
    for (size_t I = 0; I != Rows.size(); ++I)
      std::fprintf(Out,
                   "    {\"engine\": \"%s\", \"threads\": %d, "
                   "\"wall_ms\": %.4f, \"pixels_per_sec\": %.1f}%s\n",
                   Rows[I].Engine.c_str(), Rows[I].Threads, Rows[I].WallMs,
                   Rows[I].PixelsPerSec, I + 1 == Rows.size() ? "" : ",");
    std::fputs("  ]\n}\n", Out);
    std::fclose(Out);
    std::printf("\nwrote %s\n", OutFile.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  std::printf("\nExpected shape: both VM engines >> ast-fused at every "
              "thread count; scaling with\nthreads tracks the machine's "
              "core count. vm-unfused can beat vm-fused on a CPU\nhost: "
              "recompute-based fusion pays real arithmetic to save memory "
              "traffic that is\ncheap here (on the paper's GPUs the trade "
              "goes the other way). Results are\nbit-identical at every "
              "thread count -- see tests/test_fusedvm.cpp.\n");
  return 0;
}
