//===- bench/server_load.cpp - Multi-tenant server under mixed load -------------===//
//
// Drives a PipelineServer with N concurrent client sessions running MIXED
// registry pipelines (tenant i gets the i-th pipeline of a fixed rotation)
// over one shared thread pool and plan cache, with a Zipf-skewed arrival
// pattern by default: low-numbered tenants are hot, the tail is cold --
// the classic shape of a shared inference/imaging service. Frames are
// admitted through each tenant's bounded queue (Block policy), executed
// by dispatcher threads under stride-fair tile arbitration, and timed
// from admission to completion.
//
// Reported per session: completed frames and p50/p99/mean frame latency
// (queue wait + execution); aggregate: total pixels/sec across all
// tenants, and the shared plan cache's hit/miss split. A probe frame of
// the hottest tenant is re-run serially on a private session and must be
// bit-identical -- the sharing must be invisible in the pixels.
//
// Results are appended to the throughput JSON (BENCH_throughput.json) as
// a "server_load" section.
//
// Options:
//   --sessions N      concurrent tenant sessions (default 6, min 4)
//   --frames N        average frames per session (default 4; the arrival
//                     pattern decides each tenant's actual share)
//   --width/--height  frame size (default 512x384: the paper's pipelines
//                     scaled to keep a many-tenant sweep tractable)
//   --arrival uniform|zipf  arrival pattern (default zipf)
//   --threads N       shared pool worker threads (0 = auto)
//   --out FILE        JSON results file (default BENCH_throughput.json)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "sim/Server.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "transform/Fuser.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace kf;

namespace {

/// One tenant's pipeline, lowered to its fused form. The Program is heap
/// allocated because FusedProgram::Source points at it.
struct TenantPipeline {
  std::string App;
  std::unique_ptr<Program> P;
  FusedProgram FP;
  long long PixelsPerFrame = 0;
};

TenantPipeline buildTenantPipeline(const std::string &App, int W, int H) {
  const PipelineSpec *Spec = findPipeline(App);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", App.c_str());
    std::exit(1);
  }
  TenantPipeline T;
  T.App = App;
  T.P = std::make_unique<Program>(Spec->Builder(W, H));
  MinCutFusionResult MinCut = runMinCutFusion(*T.P, HardwareModel());
  T.FP = fuseProgram(*T.P, MinCut.Blocks, FusionStyle::Optimized);
  for (ImageId Out : T.P->terminalOutputs())
    T.PixelsPerFrame += T.P->image(Out).iterationSpace();
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {});
  int Sessions =
      std::max(4, static_cast<int>(Cl.getIntOption("sessions", 6)));
  int FramesEach =
      std::max(1, static_cast<int>(Cl.getIntOption("frames", 4)));
  int Width = static_cast<int>(Cl.getIntOption("width", 512));
  int Height = static_cast<int>(Cl.getIntOption("height", 384));
  std::string Arrival = Cl.getOption("arrival", "zipf");
  if (Arrival != "uniform" && Arrival != "zipf") {
    std::fprintf(stderr, "error: invalid --arrival '%s'\n", Arrival.c_str());
    return 1;
  }
  int Threads = static_cast<int>(Cl.getIntOption("threads", 0));
  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");

  // The tenant rotation: mixed pipelines so the shared plan cache holds
  // several distinct plans while same-pipeline tenants still share.
  const char *Rotation[] = {"harris", "sobel",     "unsharp",
                            "night",  "shitomasi", "enhance"};
  constexpr int RotationSize = 6;
  std::vector<TenantPipeline> Pipelines;
  for (int S = 0; S != Sessions; ++S)
    Pipelines.push_back(
        buildTenantPipeline(Rotation[S % RotationSize], Width, Height));

  // Arrival schedule. Uniform round-robins; zipf draws each admission's
  // tenant with probability proportional to 1 / (rank + 1).
  int Total = FramesEach * Sessions;
  std::vector<int> Schedule;
  Schedule.reserve(Total);
  if (Arrival == "uniform") {
    for (int F = 0; F != Total; ++F)
      Schedule.push_back(F % Sessions);
  } else {
    std::vector<double> Cdf(Sessions);
    double Sum = 0.0;
    for (int S = 0; S != Sessions; ++S) {
      Sum += 1.0 / (S + 1);
      Cdf[S] = Sum;
    }
    Rng Gen(0x217f);
    for (int F = 0; F != Total; ++F) {
      double U = Gen.uniform(0.0, Sum);
      int S = 0;
      while (S + 1 < Sessions && Cdf[S] < U)
        ++S;
      Schedule.push_back(S);
    }
  }
  std::vector<int> PerSession(Sessions, 0);
  for (int S : Schedule)
    ++PerSession[S];

  // The same (tenant, frame) seed drives the server and the probe.
  auto fillFor = [&Pipelines](int Tenant) {
    const Program &P = *Pipelines[Tenant].P;
    return [&P, Tenant](int Frame, std::vector<Image> &Pool) {
      fillExternalInputs(P, Pool,
                         0x5eed + static_cast<uint64_t>(Tenant) * 131071 +
                             static_cast<uint64_t>(Frame) * 977);
    };
  };

  ExecutionOptions Exec;
  Exec.Threads = Threads;

  std::printf("=== Server load: %d sessions at %dx%d, %s arrivals, %d "
              "frames total, %u threads ===\n\n",
              Sessions, Width, Height, Arrival.c_str(), Total,
              resolveThreadCount(Threads));

  int ProbeIndex = PerSession[0] - 1;
  std::vector<Image> Probe;
  double WallMs = 0.0;
  std::vector<TenantStats> Stats;
  PlanCacheStats CacheStats;
  {
    ServerOptions SO;
    SO.Threads = Threads;
    SO.Dispatchers = 2;
    PipelineServer Server(SO);
    std::vector<PipelineServer::SessionId> Ids;
    for (int S = 0; S != Sessions; ++S) {
      TenantOptions TO;
      TO.Name = "s" + std::to_string(S) + "-" + Pipelines[S].App;
      TO.QueueCapacity = 4;
      Ids.push_back(Server.open(Pipelines[S].FP, Exec, TO));
    }
    const std::vector<ImageId> ProbeOutputs =
        Pipelines[0].P->terminalOutputs();
    auto Start = std::chrono::steady_clock::now();
    for (int S : Schedule) {
      PipelineSession::FrameConsumer Consume;
      if (S == 0)
        Consume = [&Probe, &ProbeOutputs,
                   ProbeIndex](int Idx, const std::vector<Image> &Pool) {
          if (Idx == ProbeIndex)
            for (ImageId Out : ProbeOutputs)
              Probe.push_back(Pool[Out]);
        };
      Server.submit(Ids[S], fillFor(S), Consume);
    }
    Server.drainAll();
    WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
    for (int S = 0; S != Sessions; ++S)
      Stats.push_back(Server.tenantStats(Ids[S]));
    CacheStats = Server.cacheStats();
  } // Server scope: the shared pool exports its counters on destruction.

  // Replay the hot tenant's probe frame on a private serial session: the
  // multiplexing must be invisible in the pixels.
  double MaxDiff = 0.0;
  if (ProbeIndex >= 0) {
    PipelineSession Serial(Pipelines[0].FP, Exec);
    std::vector<Image> Ref = Serial.acquireFrame();
    fillFor(0)(ProbeIndex, Ref);
    Serial.runFrame(Ref);
    size_t Slot = 0;
    for (ImageId Out : Pipelines[0].P->terminalOutputs())
      MaxDiff =
          std::max(MaxDiff, maxAbsDifference(Ref[Out], Probe[Slot++]));
    Serial.releaseFrame(std::move(Ref));
  }

  uint64_t Completed = 0;
  double TotalPixels = 0.0;
  TablePrinter Table(
      {"session", "frames", "p50 ms", "p99 ms", "mean ms", "max depth"});
  std::string PerSessionJson = "[";
  for (int S = 0; S != Sessions; ++S) {
    const TenantStats &T = Stats[S];
    Completed += T.Completed;
    TotalPixels +=
        static_cast<double>(T.Completed) * Pipelines[S].PixelsPerFrame;
    std::vector<double> Sorted = T.LatenciesMs;
    std::sort(Sorted.begin(), Sorted.end());
    double P50 = Sorted.empty() ? 0.0 : quantileSorted(Sorted, 0.5);
    double P99 = Sorted.empty() ? 0.0 : quantileSorted(Sorted, 0.99);
    double Mean = 0.0;
    for (double L : Sorted)
      Mean += L;
    Mean = Sorted.empty() ? 0.0 : Mean / Sorted.size();
    Table.addRow({T.Name, std::to_string(T.Completed), formatDouble(P50, 3),
                  formatDouble(P99, 3), formatDouble(Mean, 3),
                  std::to_string(T.MaxQueueDepth)});
    char Entry[512];
    std::snprintf(Entry, sizeof(Entry),
                  "%s{\"name\": \"%s\", \"frames\": %llu, \"p50_ms\": "
                  "%.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f, "
                  "\"max_queue_depth\": %zu}",
                  S == 0 ? "" : ", ", T.Name.c_str(),
                  static_cast<unsigned long long>(T.Completed), P50, P99,
                  Mean, T.MaxQueueDepth);
    PerSessionJson += Entry;
  }
  PerSessionJson += "]";

  double PixelsPerSec = TotalPixels * 1000.0 / std::max(WallMs, 1e-9);
  std::fputs(Table.render().c_str(), stdout);
  std::printf("aggregate: %llu frames in %.3f ms -> %.3f Mpixel/s; "
              "shared plan cache: %llu hits, %llu misses, %zu entries\n",
              static_cast<unsigned long long>(Completed), WallMs,
              PixelsPerSec / 1e6,
              static_cast<unsigned long long>(CacheStats.Hits),
              static_cast<unsigned long long>(CacheStats.Misses),
              CacheStats.Entries);
  std::printf("max |server frame - serial session| on the hot tenant's "
              "probe: %g\n",
              MaxDiff);
  if (MaxDiff != 0.0) {
    std::fprintf(stderr, "error: concurrent execution diverged from the "
                         "serial reference\n");
    return 1;
  }

  char Section[1024];
  std::snprintf(
      Section, sizeof(Section),
      "{\"sessions\": %d, \"arrival\": \"%s\", \"width\": %d, "
      "\"height\": %d, \"threads\": %u, \"frames_total\": %llu, "
      "\"wall_ms\": %.4f, \"aggregate_pixels_per_sec\": %.1f, "
      "\"plan_cache_hits\": %llu, \"plan_cache_misses\": %llu, "
      "\"max_abs_diff\": %g, \"per_session\": ",
      Sessions, Arrival.c_str(), Width, Height, resolveThreadCount(Threads),
      static_cast<unsigned long long>(Completed), WallMs, PixelsPerSec,
      static_cast<unsigned long long>(CacheStats.Hits),
      static_cast<unsigned long long>(CacheStats.Misses), MaxDiff);
  std::string Json = std::string(Section) + PerSessionJson + "}";
  if (spliceJsonSection(OutFile, "server_load", Json))
    std::printf("\nappended server_load section to %s\n", OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  std::printf(
      "\nExpected shape: hot tenants (low session numbers under zipf) "
      "complete more\nframes at higher p99 latency -- their queue is the "
      "contended one -- while the\nstride scheduler keeps cold tenants' "
      "p50 close to their pure execution time\n(no starvation). Tenants "
      "sharing a pipeline compile once (cache hits > 0), and\nthe probe "
      "diff must print 0: multiplexing is invisible in the pixels.\n");
  return 0;
}
