//===- bench/fig6_execution_times.cpp - Figure 6 reproduction -------------------===//
//
// Regenerates the paper's Figure 6: execution times in milliseconds of the
// six applications on the three (simulated) GPUs, for the baseline, basic
// fusion, and optimized fusion implementations. The paper performs 500
// runs per configuration and draws box plots; this harness prints the
// same five-number summaries (min / 25% / median / 75% / max).
//
// Options: --runs N (default 500), --csv (machine-readable output).
//
// With --measure the harness executes the variants' pixels for real on
// the host (bytecode VM engine, see sim/Executor.h) instead of querying
// the analytic model: one "host" row replaces the three simulated GPUs.
// --threads N and --scale S (image-size factor, default 0.25) control
// the measured runs.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/AsciiPlot.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"csv", "plot", "measure"});
  int Runs = static_cast<int>(Cl.getIntOption("runs", 500));
  bool Csv = Cl.hasOption("csv");
  bool Plot = Cl.hasOption("plot");

  if (Cl.hasOption("measure")) {
    double Scale = Cl.getDoubleOption("scale", 0.25);
    ExecutionOptions Options;
    Options.Threads = static_cast<int>(Cl.getIntOption("threads", 0));
    int Repeats = static_cast<int>(Cl.getIntOption("repeats", 3));

    std::printf("=== Figure 6 (measured): host wall-clock times in ms "
                "(VM engine, scale %.3g, best of %d) ===\n\n",
                Scale, Repeats);
    TablePrinter Table({"app", "size", "variant", "wall ms"});
    for (const PipelineSpec &Spec : paperPipelines()) {
      AppVariants App = buildAppVariants(Spec, Scale);
      const ImageInfo &In = App.Source->image(0);
      std::string Size =
          std::to_string(In.Width) + "x" + std::to_string(In.Height);
      for (Variant V : {Variant::Baseline, Variant::BasicFusion,
                        Variant::OptimizedFusion}) {
        double Ms =
            measureVariantWallMs(App, V, Options, ExecEngine::Vm, Repeats);
        Table.addRow({App.Name, Size, variantName(V),
                      formatDouble(Ms, 3)});
      }
    }
    std::fputs(Table.render().c_str(), stdout);
    std::printf("\nHost caveat: recompute-based fusion trades memory "
                "traffic for arithmetic, which\npays off on GPUs (the "
                "simulated rows) but can lose on a CPU interpreter "
                "for\ncompute-bound apps (Night).\n");
    return 0;
  }

  CostModelParams Params;
  std::vector<AppVariants> Apps;
  for (const PipelineSpec &Spec : paperPipelines())
    Apps.push_back(buildAppVariants(Spec));

  if (!Csv)
    std::printf("=== Figure 6: execution times in ms (%d simulated runs, "
                "box statistics) ===\n",
                Runs);

  TablePrinter CsvTable({"device", "app", "variant", "min", "q25", "median",
                         "q75", "max"});

  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    if (!Csv)
      std::printf("\n-- %s --\n", Device.Name.c_str());
    TablePrinter Table({"app", "variant", "median", "min", "q25", "q75",
                        "max"});
    std::vector<BoxPlotRow> PlotRows;
    for (const AppVariants &App : Apps) {
      for (Variant V : {Variant::Baseline, Variant::BasicFusion,
                        Variant::OptimizedFusion}) {
        BoxStats Stats = variantRunStats(App, V, Device, Params, Runs);
        Table.addRow({App.Name, variantName(V),
                      formatDouble(Stats.Median, 3),
                      formatDouble(Stats.Min, 3),
                      formatDouble(Stats.Q25, 3),
                      formatDouble(Stats.Q75, 3),
                      formatDouble(Stats.Max, 3)});
        CsvTable.addRow({Device.Name, App.Name, variantName(V),
                         formatDouble(Stats.Min, 4),
                         formatDouble(Stats.Q25, 4),
                         formatDouble(Stats.Median, 4),
                         formatDouble(Stats.Q75, 4),
                         formatDouble(Stats.Max, 4)});
        PlotRows.push_back(
            BoxPlotRow{App.Name + "/" + variantName(V), Stats});
      }
    }
    if (!Csv)
      std::fputs(Plot ? renderBoxPlots(PlotRows).c_str()
                      : Table.render().c_str(),
                 stdout);
  }

  if (Csv) {
    std::fputs(CsvTable.renderCsv().c_str(), stdout);
  } else {
    std::printf("\nShapes to compare with the paper's Figure 6: optimized "
                "<= basic <= baseline per app;\nUnsharp shows the largest "
                "gap; Night is essentially flat (compute-bound); GTX745 "
                "has the\nlargest absolute times (lowest memory "
                "bandwidth).\n");
  }
  return 0;
}
