//===- bench/lazy_fusion.cpp - Record-and-fuse materialization costs ------------===//
//
// Measures what the lazy frontend (frontend/Lazy.h, sim/LazyRuntime.h)
// costs and what fusion buys it, on a lazily recorded Harris DAG:
//
//   cold   record the DAG, run the full gate (lower + lint + fuse +
//          footprint/bytecode/interval checks), compile the session
//          plan, execute one frame -- the first tenant's end-to-end
//          materialization latency;
//   warm   re-record the same *shape* (fresh pipeline, different value
//          names) and materialize against the now-populated plan cache
//          -- the canonical-naming structural hash must hit, so only
//          the gate and the frame execution remain.
//
// A second experiment compares steady-state throughput of the fused
// pipeline against the op-at-a-time gate (LazyGateOptions::Fuse = false,
// one launch per recorded op -- what a record-and-replay runtime without
// kernel fusion would execute), asserting both bit-identical.
//
// Results are appended to BENCH_throughput.json as a "lazy_fusion"
// section (docs/EXPERIMENTS.md).
//
// Options:
//   --width/--height  frame size (default 1024x1024)
//   --frames N        frames per measured stream (default 8)
//   --reps N          cold/warm materialization reps (default 5)
//   --threads N       worker threads (0 = auto)
//   --out FILE        JSON results file (default BENCH_throughput.json)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "frontend/Lazy.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "sim/LazyRuntime.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace kf;

namespace {

double sinceMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Records the Harris corner response through the lazy handle API
/// (the registry pipeline of pipelines/Harris.cpp, op for op).
LazyImage recordHarris(LazyPipeline &LP, int Width, int Height,
                       const std::string &InputName) {
  const float S8 = 1.0f / 8.0f;
  const float S16 = 1.0f / 16.0f;
  int SobelX = LP.addMask(3, 3,
                          {-1 * S8, 0, 1 * S8, -2 * S8, 0, 2 * S8, -1 * S8, 0,
                           1 * S8});
  int SobelY = LP.addMask(3, 3,
                          {-1 * S8, -2 * S8, -1 * S8, 0, 0, 0, 1 * S8, 2 * S8,
                           1 * S8});
  int Binom = LP.addMask(3, 3,
                         {1 * S16, 2 * S16, 1 * S16, 2 * S16, 4 * S16, 2 * S16,
                          1 * S16, 2 * S16, 1 * S16});
  LazyImage In = LP.input(InputName, Width, Height);
  LazyImage Dx = LP.convolve(In, SobelX);
  LazyImage Dy = LP.convolve(In, SobelY);
  LazyImage Gx = LP.convolve(LP.mul(Dx, Dx), Binom);
  LazyImage Gy = LP.convolve(LP.mul(Dy, Dy), Binom);
  LazyImage Gxy = LP.convolve(LP.mul(Dx, Dy), Binom);
  LazyImage M = LP.sub(LP.mul(Gx, Gy), LP.mul(Gxy, Gxy));
  LazyImage Tr = LP.add(Gx, Gy);
  LazyImage Ktr = LP.binary(BinOp::Mul, 0.04f, LP.mul(Tr, Tr));
  return LP.sub(M, Ktr);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {});
  int Width = static_cast<int>(Cl.getIntOption("width", 1024));
  int Height = static_cast<int>(Cl.getIntOption("height", 1024));
  int Frames = std::max(2, static_cast<int>(Cl.getIntOption("frames", 8)));
  int Reps = std::max(1, static_cast<int>(Cl.getIntOption("reps", 5)));
  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");

  ExecutionOptions Exec;
  Exec.Threads = static_cast<int>(Cl.getIntOption("threads", 0));

  std::printf("=== Lazy fusion: recorded harris at %dx%d, %d frames, "
              "%d reps, %u threads ===\n\n",
              Width, Height, Frames, Reps,
              resolveThreadCount(Exec.Threads));

  Rng Gen(0x1a2f);
  Image In = makeRandomImage(Width, Height, 1, Gen, 0.05f, 1.0f);

  // Cold vs warm materialization latency. Every rep re-records a fresh
  // pipeline (recording is part of the lazy frontend's per-build cost);
  // rep 0 compiles the session plan, later reps hit the shared cache by
  // structural shape despite their distinct value names.
  PlanCache Cache;
  double ColdRecordGateMs = 0, ColdPlanMs = 0, ColdExecMs = 0;
  double WarmRecordGateMs = 0, WarmExecMs = 0;
  int WarmHits = 0;
  size_t RecordedOps = 0, LiveKernels = 0, FusedLaunches = 0;
  for (int R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    LazyPipeline LP("bench_" + std::to_string(R));
    LazyImage Hc = recordHarris(LP, Width, Height, "in_" + std::to_string(R));
    MaterializedPipeline MP = compileLazy(LP, {Hc});
    double GateMs = sinceMs(Start);
    if (!MP.Ok) {
      std::fprintf(stderr, "error: gate rejected the recorded DAG:\n%s",
                   MP.Diags.renderText().c_str());
      return 1;
    }
    LazyRunResult Run =
        runLazy(MP, {{"in_" + std::to_string(R), &In}}, Exec, &Cache);
    if (!Run.Ok) {
      std::fprintf(stderr, "error: %s", Run.Diags.renderText().c_str());
      return 1;
    }
    if (R == 0) {
      ColdRecordGateMs = GateMs;
      ColdPlanMs = Run.Stats.CompileMs;
      ColdExecMs = Run.Stats.ExecMs;
      RecordedOps = LP.numOps();
      LiveKernels = MP.Prog->kernels().size();
      FusedLaunches = MP.Fused.Kernels.size();
      if (Run.Stats.PlanWasHit) {
        std::fprintf(stderr, "error: first materialization hit the cache\n");
        return 1;
      }
    } else {
      WarmRecordGateMs += GateMs;
      WarmExecMs += Run.Stats.ExecMs;
      WarmHits += Run.Stats.PlanWasHit ? 1 : 0;
    }
  }
  if (Reps > 1) {
    WarmRecordGateMs /= Reps - 1;
    WarmExecMs /= Reps - 1;
    if (WarmHits != Reps - 1) {
      std::fprintf(stderr,
                   "error: only %d of %d warm materializations hit the "
                   "plan cache\n",
                   WarmHits, Reps - 1);
      return 1;
    }
  }

  TablePrinter Lat({"build", "record+gate ms", "plan ms", "exec ms"});
  Lat.addRow({"cold (first shape)", formatDouble(ColdRecordGateMs, 3),
              formatDouble(ColdPlanMs, 3), formatDouble(ColdExecMs, 3)});
  Lat.addRow({"warm (same shape)", formatDouble(WarmRecordGateMs, 3),
              "0.000", formatDouble(WarmExecMs, 3)});
  std::fputs(Lat.render().c_str(), stdout);
  std::printf("%zu recorded ops -> %zu live kernels in %zu fused launches\n\n",
              RecordedOps, LiveKernels, FusedLaunches);

  // Fused vs op-at-a-time steady-state throughput on warm plans.
  auto measure = [&](bool Fuse, Image &LastOut) -> double {
    LazyPipeline LP(Fuse ? "fused" : "op_at_a_time");
    LazyImage Hc = recordHarris(LP, Width, Height, "in");
    LazyGateOptions Gate;
    Gate.Fuse = Fuse;
    MaterializedPipeline MP = compileLazy(LP, {Hc}, Gate);
    PlanCache StreamCache;
    runLazy(MP, {{"in", &In}}, Exec, &StreamCache); // primer: compile plan
    auto Start = std::chrono::steady_clock::now();
    for (int F = 0; F != Frames; ++F) {
      LazyRunResult Run = runLazy(MP, {{"in", &In}}, Exec, &StreamCache);
      if (!Run.Ok) {
        std::fprintf(stderr, "error: %s", Run.Diags.renderText().c_str());
        std::exit(1);
      }
      if (F + 1 == Frames)
        LastOut = std::move(Run.Outputs.front());
    }
    return sinceMs(Start);
  };

  Image FusedOut, UnfusedOut;
  double FusedMs = measure(true, FusedOut);
  double UnfusedMs = measure(false, UnfusedOut);
  double MaxDiff = maxAbsDifference(FusedOut, UnfusedOut);
  double FusedFps = Frames * 1000.0 / FusedMs;
  double UnfusedFps = Frames * 1000.0 / UnfusedMs;

  TablePrinter Tp({"gate", "wall ms", "frames/s", "speedup"});
  Tp.addRow({"op-at-a-time (Fuse=off)", formatDouble(UnfusedMs, 3),
             formatDouble(UnfusedFps, 3), "1.000"});
  Tp.addRow({"fused (min-cut)", formatDouble(FusedMs, 3),
             formatDouble(FusedFps, 3), formatDouble(FusedFps / UnfusedFps, 3)});
  std::fputs(Tp.render().c_str(), stdout);
  std::printf("max |fused - op-at-a-time| = %g\n", MaxDiff);
  if (MaxDiff != 0.0) {
    std::fprintf(stderr, "error: fused and op-at-a-time results differ\n");
    return 1;
  }

  char Section[1024];
  std::snprintf(
      Section, sizeof(Section),
      "{\"app\": \"harris\", \"width\": %d, \"height\": %d, "
      "\"frames\": %d, \"reps\": %d, \"threads\": %u, "
      "\"recorded_ops\": %zu, \"live_kernels\": %zu, "
      "\"fused_launches\": %zu, "
      "\"cold_record_gate_ms\": %.4f, \"cold_plan_ms\": %.4f, "
      "\"cold_exec_ms\": %.4f, \"warm_record_gate_ms\": %.4f, "
      "\"warm_exec_ms\": %.4f, "
      "\"fused_frames_per_sec\": %.4f, \"unfused_frames_per_sec\": %.4f, "
      "\"fused_over_unfused\": %.4f, \"max_abs_diff\": %g}",
      Width, Height, Frames, Reps, resolveThreadCount(Exec.Threads),
      RecordedOps, LiveKernels, FusedLaunches, ColdRecordGateMs, ColdPlanMs,
      ColdExecMs, WarmRecordGateMs, WarmExecMs, FusedFps, UnfusedFps,
      FusedFps / UnfusedFps, MaxDiff);
  if (spliceJsonSection(OutFile, "lazy_fusion", Section)) {
    std::printf("\nappended lazy_fusion section to %s\n", OutFile.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }
  return 0;
}
