//===- bench/frame_throughput.cpp - Streaming session frame rate ----------------===//
//
// Measures frames/sec of a streaming serving workload -- the same fused
// pipeline applied to a stream of frames -- cold versus warm:
//
//   cold  per-frame runFusedVm loop: every frame re-compiles the staged
//         bytecode, rebuilds the thread pool, and allocates every buffer
//         (what a naive serving loop over the PR-1 engine pays);
//   warm  PipelineSession: the plan is compiled once and served from the
//         plan cache, frame buffers recycle through the session's frame
//         pool, and the next frame's input fill overlaps execution on a
//         filler thread (double buffering).
//
// A second experiment swaps the interior VM engine on the same compiled
// launches: scalar (per-pixel bytecode dispatch) versus span (lane-
// batched interpretation) versus jit (per-plan compiled cell chains,
// src/jit), reporting the pairwise interior speedups and asserting all
// three engines bit-identical.
//
// A third experiment compiles session plans for the primary app plus the
// guard-heavy registry pipelines (clamp/select-dense night and enhance)
// with the interval-fact-gated bytecode optimizer on versus off
// (ExecutionOptions::Opt, ir/VmOptimizer.h) and reports the interior
// speedup and removed-instruction counts, asserting optimized and
// unoptimized plans bit-identical.
//
// Results are appended to the throughput JSON (BENCH_throughput.json) as
// "frame_throughput", "jit_speedup", and "opt_speedup" sections. The
// final cold and warm frames use the same input and are checked
// bit-identical.
//
// Options:
//   --app <name>      pipeline registry name (default harris)
//   --width/--height  frame size (default the paper's 2048x2048)
//   --frames N        frames per measured stream (default 4)
//   --ab-reps N       runs per engine in the interior A/Bs (default 3)
//   --threads N       worker threads (0 = auto)
//   --out FILE        JSON results file (default BENCH_throughput.json)
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "sim/Session.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace kf;

namespace {

double sinceMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {});
  std::string AppName = Cl.getOption("app", "harris");
  const PipelineSpec *Spec = findPipeline(AppName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", AppName.c_str());
    return 1;
  }
  int Width = static_cast<int>(Cl.getIntOption("width", 2048));
  int Height = static_cast<int>(Cl.getIntOption("height", 2048));
  int Frames = std::max(2, static_cast<int>(Cl.getIntOption("frames", 4)));
  std::string OutFile = Cl.getOption("out", "BENCH_throughput.json");

  ExecutionOptions Options;
  Options.Threads = static_cast<int>(Cl.getIntOption("threads", 0));

  PipelineSpec Sized = *Spec;
  Sized.Width = Width;
  Sized.Height = Height;
  AppVariants App = buildAppVariants(Sized);
  const Program &P = *App.Source;
  const FusedProgram &FP = App.Optimized;

  auto FillFrame = [&](int Frame, std::vector<Image> &Pool) {
    fillExternalInputs(P, Pool, 0xf3a7e + static_cast<uint64_t>(Frame));
  };

  std::printf("=== Frame throughput: %s at %dx%d, %d frames, %u threads "
              "===\n\n",
              AppName.c_str(), Width, Height, Frames,
              resolveThreadCount(Options.Threads));

  // Cold: a per-frame runFusedVm loop -- compile, thread pool, and every
  // buffer paid per frame.
  std::vector<Image> ColdLast;
  auto ColdStart = std::chrono::steady_clock::now();
  for (int F = 0; F != Frames; ++F) {
    std::vector<Image> Pool = makeImagePool(P);
    FillFrame(F, Pool);
    runFusedVm(FP, Pool, Options);
    if (F + 1 == Frames)
      ColdLast = std::move(Pool);
  }
  double ColdMs = sinceMs(ColdStart);

  // Warm: one primer frame compiles the plan and charges the cold-start
  // cost, then the measured stream runs entirely from the caches.
  PlanCache Cache;
  PipelineSession Session(FP, Options, &Cache);
  auto PrimeStart = std::chrono::steady_clock::now();
  Session.runFrames(1, FillFrame);
  double PrimeMs = sinceMs(PrimeStart);

  std::vector<Image> WarmLast;
  auto WarmStart = std::chrono::steady_clock::now();
  Session.runFrames(Frames, FillFrame,
                    [&](int F, const std::vector<Image> &Pool) {
                      if (F + 1 == Frames)
                        WarmLast = Pool;
                    });
  double WarmMs = sinceMs(WarmStart);

  double MaxDiff = 0.0;
  for (const FusedKernel &FK : FP.Kernels)
    for (KernelId Dest : FK.Destinations) {
      ImageId Out = P.kernel(Dest).Output;
      MaxDiff =
          std::max(MaxDiff, maxAbsDifference(WarmLast[Out], ColdLast[Out]));
    }

  // Span-vs-scalar interior A/B: the same compiled launches with the
  // interior engine swapped, interior CPU time collected per launch via
  // LaunchTiming (min over reps -- compile time never enters the split).
  int AbReps = std::max(1, static_cast<int>(Cl.getIntOption("ab-reps", 3)));
  struct InteriorMeasure {
    double InteriorMs = 0.0;
    double HaloMs = 0.0;
    std::vector<Image> Pool;
  };
  auto measureInterior = [&](VmMode Mode) {
    ExecutionOptions ModeOptions = Options;
    ModeOptions.Mode = Mode;
    ThreadPool TP(resolveThreadCount(ModeOptions.Threads));
    VmScratch Scratch;
    InteriorMeasure M;
    M.Pool = makeImagePool(P);
    FillFrame(0, M.Pool);
    for (int R = 0; R != AbReps; ++R) {
      LaunchTiming Timing;
      for (const FusedKernel &FK : FP.Kernels) {
        StagedVmProgram SP = compileFusedKernel(FP, FK);
        for (KernelId DestId : FK.Destinations) {
          uint16_t Root = 0;
          for (size_t I = 0; I != FK.Stages.size(); ++I)
            if (FK.Stages[I].Kernel == DestId)
              Root = static_cast<uint16_t>(I);
          ImageId OutId = P.kernel(DestId).Output;
          const ImageInfo &Info = P.image(OutId);
          Image Out(Info.Width, Info.Height, Info.Channels);
          runCompiledLaunch(SP, Root, fusedLaunchHalo(SP, Root, Info),
                            M.Pool, Out, ModeOptions, TP, Scratch, &Timing);
          M.Pool[OutId] = std::move(Out);
        }
      }
      if (R == 0 || Timing.InteriorMs < M.InteriorMs) {
        M.InteriorMs = Timing.InteriorMs;
        M.HaloMs = Timing.HaloMs;
      }
    }
    return M;
  };
  InteriorMeasure Scalar = measureInterior(VmMode::Scalar);
  InteriorMeasure Span = measureInterior(VmMode::Span);
  InteriorMeasure Jit = measureInterior(VmMode::Jit);
  double SpanSpeedup =
      Span.InteriorMs > 0.0 ? Scalar.InteriorMs / Span.InteriorMs : 0.0;
  double JitOverSpan =
      Jit.InteriorMs > 0.0 ? Span.InteriorMs / Jit.InteriorMs : 0.0;
  double JitOverScalar =
      Jit.InteriorMs > 0.0 ? Scalar.InteriorMs / Jit.InteriorMs : 0.0;
  double AbDiff = 0.0;
  for (const FusedKernel &FK : FP.Kernels)
    for (KernelId Dest : FK.Destinations) {
      ImageId Out = P.kernel(Dest).Output;
      AbDiff = std::max(AbDiff,
                        maxAbsDifference(Scalar.Pool[Out], Span.Pool[Out]));
      AbDiff = std::max(AbDiff,
                        maxAbsDifference(Span.Pool[Out], Jit.Pool[Out]));
    }

  double ColdFps = Frames * 1000.0 / ColdMs;
  double WarmFps = Frames * 1000.0 / WarmMs;
  const SessionStats &S = Session.stats();

  TablePrinter Table({"mode", "wall ms", "frames/s", "speedup"});
  Table.addRow({"cold per-frame runFusedVm", formatDouble(ColdMs, 3),
                formatDouble(ColdFps, 3), "1.000"});
  Table.addRow({"warm session stream", formatDouble(WarmMs, 3),
                formatDouble(WarmFps, 3), formatDouble(WarmFps / ColdFps, 3)});
  std::fputs(Table.render().c_str(), stdout);
  std::printf("session cold-start (first frame incl. compile): %.3f ms; "
              "plan cache: %llu hits, %llu misses; frame buffers: %llu "
              "reused, %llu allocated\n",
              PrimeMs, static_cast<unsigned long long>(S.PlanHits),
              static_cast<unsigned long long>(S.PlanMisses),
              static_cast<unsigned long long>(S.FramesReused),
              static_cast<unsigned long long>(S.FramesAllocated));
  std::printf("max |warm - cold| over destinations: %g\n", MaxDiff);
  std::printf("interior A/B (best of %d): scalar %.3f ms, span %.3f ms, "
              "jit %.3f ms; span-over-scalar %.2fx, jit-over-span %.2fx, "
              "jit-over-scalar %.2fx; max pairwise |diff| over "
              "destinations: %g\n",
              AbReps, Scalar.InteriorMs, Span.InteriorMs, Jit.InteriorMs,
              SpanSpeedup, JitOverSpan, JitOverScalar, AbDiff);

  char Section[1024];
  std::snprintf(
      Section, sizeof(Section),
      "{\"app\": \"%s\", \"width\": %d, \"height\": %d, \"frames\": %d, "
      "\"threads\": %u, \"vm_mode\": \"%s\", "
      "\"cold_wall_ms\": %.4f, \"warm_wall_ms\": %.4f, "
      "\"cold_frames_per_sec\": %.4f, \"warm_frames_per_sec\": %.4f, "
      "\"warm_over_cold\": %.4f, \"session_cold_start_ms\": %.4f, "
      "\"plan_cache_hits\": %llu, \"plan_cache_misses\": %llu, "
      "\"interior_scalar_ms\": %.4f, \"interior_span_ms\": %.4f, "
      "\"span_over_scalar_interior\": %.4f}",
      AppName.c_str(), Width, Height, Frames,
      resolveThreadCount(Options.Threads),
      vmModeName(resolveVmMode(Options.Mode)), ColdMs, WarmMs, ColdFps,
      WarmFps, WarmFps / ColdFps, PrimeMs,
      static_cast<unsigned long long>(S.PlanHits),
      static_cast<unsigned long long>(S.PlanMisses), Scalar.InteriorMs,
      Span.InteriorMs, SpanSpeedup);
  if (spliceJsonSection(OutFile, "frame_throughput", Section))
    std::printf("\nappended frame_throughput section to %s\n",
                OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  // The JIT interior A/B as its own section: the same compiled launches
  // with the interpreter dispatch removed (per-plan cell chains).
  std::snprintf(
      Section, sizeof(Section),
      "{\"app\": \"%s\", \"width\": %d, \"height\": %d, "
      "\"threads\": %u, \"ab_reps\": %d, "
      "\"interior_scalar_ms\": %.4f, \"interior_span_ms\": %.4f, "
      "\"interior_jit_ms\": %.4f, \"jit_over_span_interior\": %.4f, "
      "\"jit_over_scalar_interior\": %.4f, \"max_abs_diff\": %g}",
      AppName.c_str(), Width, Height, resolveThreadCount(Options.Threads),
      AbReps, Scalar.InteriorMs, Span.InteriorMs, Jit.InteriorMs,
      JitOverSpan, JitOverScalar, AbDiff);
  if (spliceJsonSection(OutFile, "jit_speedup", Section))
    std::printf("appended jit_speedup section to %s\n", OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  // Optimizer A/B: the same fused program compiled into session plans
  // with the interval-fact-gated bytecode optimizer on versus off, over
  // the primary app plus the guard-heavy registry pipelines whose
  // clamp/select guards the facts can decide. Interior time is the min
  // over AbReps plan executions on identical inputs; removed-instruction
  // counts come from the optimized plan's per-launch VmOptStats.
  struct OptMeasure {
    double InteriorMs = 0.0;
    unsigned Removed = 0;
    unsigned OriginalInsts = 0;
    unsigned OptimizedInsts = 0;
    std::vector<Image> Pool;
  };
  auto measurePlan = [&](const Program &AppP, const FusedProgram &AppFP,
                         OptMode Opt) {
    ExecutionOptions PlanOptions = Options;
    PlanOptions.Opt = Opt;
    std::shared_ptr<const CompiledPlan> Plan = compilePlan(AppFP, PlanOptions);
    ThreadPool TP(resolveThreadCount(PlanOptions.Threads));
    VmScratch Scratch;
    OptMeasure M;
    M.Pool = makeImagePool(AppP);
    fillExternalInputs(AppP, M.Pool, 0xf3a7e);
    for (const CompiledLaunch &L : Plan->Launches) {
      M.Removed += L.OptStats.removedInsts();
      M.OriginalInsts += L.OptStats.OriginalInsts;
      M.OptimizedInsts += L.OptStats.OptimizedInsts;
    }
    for (int R = 0; R != AbReps; ++R) {
      LaunchTiming Timing;
      for (const CompiledLaunch &L : Plan->Launches) {
        const ImageInfo &Info = Plan->Shapes[L.Output];
        Image Out(Info.Width, Info.Height, Info.Channels);
        runCompiledLaunch(L.Code, L.Root, L.Halo, M.Pool, Out, PlanOptions,
                          TP, Scratch, &Timing, L.Jit.get());
        M.Pool[L.Output] = std::move(Out);
      }
      if (R == 0 || Timing.InteriorMs < M.InteriorMs)
        M.InteriorMs = Timing.InteriorMs;
    }
    return M;
  };

  std::vector<std::string> OptApps = {AppName};
  for (const char *GuardHeavy : {"night", "enhance"})
    if (AppName != GuardHeavy && findPipeline(GuardHeavy))
      OptApps.push_back(GuardHeavy);

  TablePrinter OptTable(
      {"app", "opt off ms", "opt on ms", "speedup", "insts", "removed"});
  std::string OptEntries;
  double OptAbDiff = 0.0;
  for (const std::string &OptApp : OptApps) {
    PipelineSpec OptSpec = *findPipeline(OptApp);
    OptSpec.Width = Width;
    OptSpec.Height = Height;
    AppVariants Variants = buildAppVariants(OptSpec);
    OptMeasure Off = measurePlan(*Variants.Source, Variants.Optimized,
                                 OptMode::Off);
    OptMeasure On = measurePlan(*Variants.Source, Variants.Optimized,
                                OptMode::On);
    double Speedup = On.InteriorMs > 0.0 ? Off.InteriorMs / On.InteriorMs
                                         : 0.0;
    double Diff = 0.0;
    for (const FusedKernel &FK : Variants.Optimized.Kernels)
      for (KernelId Dest : FK.Destinations) {
        ImageId Out = Variants.Source->kernel(Dest).Output;
        Diff = std::max(Diff, maxAbsDifference(On.Pool[Out], Off.Pool[Out]));
      }
    OptAbDiff = std::max(OptAbDiff, Diff);
    OptTable.addRow({OptApp, formatDouble(Off.InteriorMs, 3),
                     formatDouble(On.InteriorMs, 3), formatDouble(Speedup, 3),
                     std::to_string(On.OriginalInsts),
                     std::to_string(On.Removed)});
    std::snprintf(
        Section, sizeof(Section),
        "%s{\"app\": \"%s\", \"interior_opt_off_ms\": %.4f, "
        "\"interior_opt_on_ms\": %.4f, \"opt_over_unopt_interior\": %.4f, "
        "\"original_insts\": %u, \"optimized_insts\": %u, "
        "\"removed_insts\": %u, \"max_abs_diff\": %g}",
        OptEntries.empty() ? "" : ", ", OptApp.c_str(), Off.InteriorMs,
        On.InteriorMs, Speedup, On.OriginalInsts, On.OptimizedInsts,
        On.Removed, Diff);
    OptEntries += Section;
  }
  std::printf("\noptimizer A/B (interior, best of %d):\n", AbReps);
  std::fputs(OptTable.render().c_str(), stdout);
  std::printf("max |opt on - opt off| over destinations: %g\n", OptAbDiff);

  std::string OptSection = "{\"width\": " + std::to_string(Width) +
                           ", \"height\": " + std::to_string(Height) +
                           ", \"threads\": " +
                           std::to_string(resolveThreadCount(Options.Threads)) +
                           ", \"ab_reps\": " + std::to_string(AbReps) +
                           ", \"apps\": [" + OptEntries + "]}";
  if (spliceJsonSection(OutFile, "opt_speedup", OptSection))
    std::printf("appended opt_speedup section to %s\n", OutFile.c_str());
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }

  std::printf("\nExpected shape: warm >= cold -- the warm stream serves "
              "the compiled plan from the\nplan cache, recycles frame "
              "buffers instead of reallocating, and overlaps input\nfill "
              "with execution; the gap widens with core count (the fill "
              "thread and the\ntile workers genuinely overlap) and "
              "narrows at 1 thread where only the saved\ncompile, "
              "allocation, and zero-fill passes remain. Outputs are "
              "bit-identical\n(max |warm - cold| must print 0).\n\n"
              "The interior A/B swaps per-pixel bytecode dispatch "
              "(scalar) for lane-batched\nspan interpretation and for "
              "the JIT's per-plan cell chains over the same\nlaunches: "
              "span should beat scalar clearly (the register working set "
              "stays\nL1-resident and the per-op loops vectorize), and "
              "jit should shave a further\nmargin off span by removing "
              "the switch-per-instruction-per-chunk dispatch.\nAll "
              "three must stay bit-identical (max pairwise |diff| must "
              "print 0).\n\n"
              "The optimizer A/B compiles the same plans with the "
              "interval-fact-gated bytecode\noptimizer on vs off: "
              "guard-heavy pipelines (decidable clamps and selects, "
              "CSE-able\nrecomputes) should show an interior win "
              "proportional to the removed-instruction\ncount, and "
              "optimized plans must stay bit-identical (max |diff| must "
              "print 0).\n");
  return 0;
}
