//===- fusion/BasicFusion.h - Prior-work pairwise fusion [12] ---*- C++ -*-===//
///
/// \file
/// Reimplementation of the *basic* kernel fusion of the authors' prior
/// work (Qiao et al., SCOPES 2018, reference [12] of the paper), used as
/// the middle comparison point of the evaluation (Figure 6 / Table I
/// "Basic Fusion"). Its restrictions, as described in the paper:
///
///   - only point-related scenarios fuse: point-to-point, local-to-point,
///     and point-to-local -- never local-to-local (rejects Sobel),
///   - only pair-wise fusion: each kernel joins at most one pair, so long
///     chains are not aggregated (Enhancement fuses only partially),
///   - strictly true-dependence pairs: the consumer's only input is the
///     producer's output and the producer's output has no other consumer;
///     shared-input DAGs are "regarded as external and invalid" (rejects
///     Unsharp),
///   - no benefit model: a legal pair always fuses ("kernels are precluded
///     as long as any constraint is met" -- the locality/recompute
///     tradeoff "has not been explored by previous work").
///
/// The downstream transform also treats basic point-to-local fusion
/// differently: the intermediate is staged through shared memory rather
/// than recomputed into registers, which is where part of the optimized-
/// over-basic gain of Table I comes from.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_BASICFUSION_H
#define KF_FUSION_BASICFUSION_H

#include "fusion/BenefitModel.h"
#include "fusion/Partition.h"

namespace kf {

/// Result of the basic pairwise fusion pass.
struct BasicFusionResult {
  Partition Blocks;
  Digraph WeightedDag;               ///< Same weights as the optimized pass
                                     ///< (for objective comparison only).
  std::vector<EdgeBenefit> EdgeInfo; ///< Per DAG edge id.
  double TotalBenefit = 0.0;         ///< beta achieved by the pairing.
};

/// Runs the prior-work pairwise fusion on \p P.
BasicFusionResult runBasicFusion(const Program &P, const HardwareModel &HW);

} // namespace kf

#endif // KF_FUSION_BASICFUSION_H
