//===- fusion/MinCutPartitioner.h - Algorithm 1 of the paper ----*- C++ -*-===//
///
/// \file
/// The recursive min-cut fusion algorithm (Algorithm 1, Section III):
///
///   1. Assign each dependence edge its estimated benefit (BenefitModel).
///   2. Initialize the working set with the whole DAG as one block.
///   3. Repeatedly: move legal (or singleton) blocks to the ready set;
///      split illegal blocks along their weighted minimum cut
///      (Stoer-Wagner) and push the two sides back into the working set.
///
/// Block legality here is the Section II-B check plus the paper's rule
/// that non-beneficial fusions "should not be performed ... treat them as
/// illegal scenarios": a block containing a dependence pair whose best
/// edge weight is the epsilon floor is not accepted, so the min cut
/// separates it (this is what keeps the compute-bound Night filter's
/// atrous kernels unfused).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_MINCUTPARTITIONER_H
#define KF_FUSION_MINCUTPARTITIONER_H

#include "fusion/BenefitModel.h"
#include "fusion/Partition.h"

namespace kf {

/// One iteration record of Algorithm 1, for the Figure 3 style trace.
struct FusionTraceStep {
  std::vector<KernelId> Block;     ///< Block examined this step.
  bool Accepted = false;           ///< Moved to the ready set.
  std::string Reason;              ///< Illegality reason when split.
  double CutWeight = 0.0;          ///< Weight of the min cut when split.
  std::vector<KernelId> SideA;     ///< First generated block when split.
  std::vector<KernelId> SideB;     ///< Second generated block when split.
};

/// Complete result of the optimized fusion analysis.
struct MinCutFusionResult {
  Partition Blocks;                   ///< The ready set (normalized).
  Digraph WeightedDag;                ///< DAG with assigned edge weights.
  std::vector<EdgeBenefit> EdgeInfo;  ///< Per DAG edge id.
  std::vector<FusionTraceStep> Trace; ///< Algorithm 1 iterations.
  double TotalBenefit = 0.0;          ///< beta of Eq. 1.
};

/// Runs Algorithm 1 on \p P under \p HW. The program must verify cleanly.
/// \p Options can relax the legality rules (e.g. multi-destination
/// fusion, an extension beyond the paper).
MinCutFusionResult
runMinCutFusion(const Program &P, const HardwareModel &HW,
                const LegalityOptions &Options = LegalityOptions());

} // namespace kf

#endif // KF_FUSION_MINCUTPARTITIONER_H
