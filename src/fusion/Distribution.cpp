//===- fusion/Distribution.cpp -----------------------------------------------===//

#include "fusion/Distribution.h"

#include "graph/MinCut.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <deque>

using namespace kf;

static std::string namesOf(const Program &P,
                           const std::vector<KernelId> &Block) {
  std::vector<std::string> Names;
  for (KernelId Id : Block)
    Names.push_back(P.kernel(Id).Name);
  return "{" + joinStrings(Names, ", ") + "}";
}

DistributionResult kf::distributeBlocks(const Program &P, const Partition &S,
                                        const HardwareModel &TargetHW) {
  std::string Invalid = validatePartition(P, S);
  if (!Invalid.empty())
    reportFatalError("cannot distribute: " + Invalid);

  LegalityChecker Checker(P, TargetHW);
  BenefitModel Model(Checker);
  Digraph WeightedDag = Model.buildWeightedDag();

  DistributionResult Result;
  Result.BenefitBefore = partitionBenefit(WeightedDag, S);

  for (const PartitionBlock &Block : S.Blocks) {
    // Acceptable blocks survive unchanged.
    if (Block.Kernels.size() == 1 ||
        fusibleBlockRejection(Model, Block.Kernels).empty()) {
      Result.Blocks.Blocks.push_back(Block);
      continue;
    }

    // Distribute: recursive min-cut splitting, as in Algorithm 1.
    ++Result.NumBlocksSplit;
    std::deque<std::vector<KernelId>> Working{Block.Kernels};
    while (!Working.empty()) {
      std::vector<KernelId> Piece = Working.front();
      Working.pop_front();
      std::string Reason = Piece.size() == 1
                               ? std::string()
                               : fusibleBlockRejection(Model, Piece);
      if (Reason.empty()) {
        Result.Blocks.Blocks.push_back(PartitionBlock{Piece});
        continue;
      }
      CutResult Cut = stoerWagnerMinCut(WeightedDag, Piece);
      Result.Log.push_back("split " + namesOf(P, Piece) + " (" + Reason +
                           ") into " + namesOf(P, Cut.SideA) + " | " +
                           namesOf(P, Cut.SideB));
      Working.push_back(Cut.SideA);
      Working.push_back(Cut.SideB);
    }
  }

  Result.Blocks.normalize();
  Result.BenefitAfter = partitionBenefit(WeightedDag, Result.Blocks);
  return Result;
}
