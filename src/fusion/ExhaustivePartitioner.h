//===- fusion/ExhaustivePartitioner.h - Optimal small-graph search -*- C++-*-===//
///
/// \file
/// Exhaustive search over all set partitions of the kernel DAG, keeping
/// the acceptable one maximizing Eq. 1. The minimum-weight k-cut problem
/// with undetermined k is NP-complete (reference [16] of the paper), so
/// "an exhaustive search is prohibited for applications with a large
/// number of kernels" -- but on the paper's pipelines (<= 9 kernels) it is
/// feasible and serves as the optimality oracle for Algorithm 1 in the
/// test suite and the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_EXHAUSTIVEPARTITIONER_H
#define KF_FUSION_EXHAUSTIVEPARTITIONER_H

#include "fusion/BenefitModel.h"
#include "fusion/Partition.h"

namespace kf {

/// Result of the exhaustive search.
struct ExhaustiveFusionResult {
  Partition Blocks;
  Digraph WeightedDag;
  double TotalBenefit = 0.0;
  unsigned long long PartitionsExamined = 0;
};

/// Enumerates every set partition of the kernels (restricted-growth
/// strings), filters by block acceptability, and maximizes the total
/// intra-block weight. Requires at most 12 kernels.
ExhaustiveFusionResult runExhaustiveFusion(const Program &P,
                                           const HardwareModel &HW);

} // namespace kf

#endif // KF_FUSION_EXHAUSTIVEPARTITIONER_H
