//===- fusion/Legality.cpp -------------------------------------------------===//

#include "fusion/Legality.h"

#include <algorithm>
#include <cassert>

using namespace kf;

LegalityChecker::LegalityChecker(const Program &P, const HardwareModel &HW,
                                 const LegalityOptions &Options)
    : P(P), HW(HW), Options(Options), Dag(P.buildKernelDag()) {
  Costs.reserve(P.numKernels());
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Costs.push_back(analyzeKernelCost(P, Id));
}

static bool contains(const std::vector<KernelId> &Block, KernelId Id) {
  return std::find(Block.begin(), Block.end(), Id) != Block.end();
}

int LegalityChecker::carriedHalo(const std::vector<KernelId> &Block,
                                 KernelId Id) const {
  const Kernel &K = P.kernel(Id);
  int Own = K.Kind == OperatorKind::Local ? (Costs[Id].WindowWidth - 1) / 2
                                          : 0;
  int MaxUpstream = 0;
  for (ImageId In : K.Inputs) {
    std::optional<KernelId> Producer = P.producerOf(In);
    if (Producer && contains(Block, *Producer))
      MaxUpstream = std::max(MaxUpstream, carriedHalo(Block, *Producer));
  }
  return Own + MaxUpstream;
}

int LegalityChecker::effectiveWindowWidth(const std::vector<KernelId> &Block,
                                          KernelId Id) const {
  const Kernel &K = P.kernel(Id);
  int OwnHalo = (Costs[Id].WindowWidth - 1) / 2;
  int MaxUpstream = 0;
  for (ImageId In : K.Inputs) {
    std::optional<KernelId> Producer = P.producerOf(In);
    if (Producer && contains(Block, *Producer))
      MaxUpstream = std::max(MaxUpstream, carriedHalo(Block, *Producer));
  }
  (void)K;
  return 2 * (OwnHalo + MaxUpstream) + 1;
}

double LegalityChecker::sharedMemoryRatio(
    const std::vector<KernelId> &Block) const {
  int MaxOriginalWidth = 0;
  for (KernelId Id : Block)
    if (P.kernel(Id).Kind == OperatorKind::Local)
      MaxOriginalWidth = std::max(MaxOriginalWidth, Costs[Id].WindowWidth);
  if (MaxOriginalWidth == 0)
    return 0.0; // No shared-memory user in the block; Eq. 2 is vacuous.

  // Fused footprint: one line tile per in-block intermediate a local kernel
  // consumes through a window, sized by the grown window width (Eq. 9).
  double FusedFootprint = 0.0;
  for (KernelId Id : Block) {
    const Kernel &K = P.kernel(Id);
    if (K.Kind != OperatorKind::Local)
      continue;
    int NumInternalWindowInputs = 0;
    for (size_t InIdx = 0; InIdx != K.Inputs.size(); ++InIdx) {
      const InputFootprint &F = Costs[Id].Footprints[InIdx];
      if (!F.WindowAccess && F.HaloX == 0 && F.HaloY == 0)
        continue; // Point access: register-promotable, no tile.
      std::optional<KernelId> Producer = P.producerOf(K.Inputs[InIdx]);
      if (Producer && contains(Block, *Producer))
        ++NumInternalWindowInputs;
    }
    if (NumInternalWindowInputs > 0)
      FusedFootprint += static_cast<double>(NumInternalWindowInputs) *
                        effectiveWindowWidth(Block, Id);
  }
  return FusedFootprint / MaxOriginalWidth;
}

LegalityResult
LegalityChecker::checkBlock(const std::vector<KernelId> &Block) const {
  LegalityResult Result;
  if (Block.empty()) {
    Result.Reason = "empty block";
    return Result;
  }
  if (Block.size() == 1) {
    Result.Legal = true;
    return Result;
  }

  // Global (reduction) operators are not fusion candidates.
  for (KernelId Id : Block)
    if (P.kernel(Id).Kind == OperatorKind::Global) {
      Result.Reason = "block contains a global operator ('" +
                      P.kernel(Id).Name + "')";
      return Result;
    }

  // Fused kernels iterate one iteration space: the block must be one
  // weakly-connected region of the dependence DAG.
  if (!Dag.isWeaklyConnected(Block)) {
    Result.Reason = "block is not weakly connected";
    return Result;
  }

  // Header compatibility (Section II-B2): same iteration-space size and
  // access granularity.
  const Kernel &First = P.kernel(Block.front());
  const ImageInfo &FirstOut = P.image(First.Output);
  for (KernelId Id : Block) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Out = P.image(K.Output);
    if (Out.Width != FirstOut.Width || Out.Height != FirstOut.Height) {
      Result.Reason = "incompatible headers: iteration spaces of '" +
                      First.Name + "' and '" + K.Name + "' differ";
      return Result;
    }
    if (K.Granularity != First.Granularity) {
      Result.Reason = "incompatible headers: access granularity of '" +
                      First.Name + "' and '" + K.Name + "' differ";
      return Result;
    }
  }

  // Border-mode compatibility (Section IV-B). Fusing a halo-consumed
  // intermediate eliminates the producer's image -- and with it the
  // producer's border handling: out-of-range accesses are index-exchanged
  // under the *consumer's* mode, and the producer's own window reads are
  // re-evaluated at the exchanged coordinates. If the two local kernels
  // disagree on the mode (or the constant value), the fused kernel would
  // compute different border pixels than the unfused pipeline; reject
  // instead of silently changing results.
  for (KernelId Id : Block) {
    const Kernel &K = P.kernel(Id);
    for (size_t InIdx = 0; InIdx != K.Inputs.size(); ++InIdx) {
      const InputFootprint &F = Costs[Id].Footprints[InIdx];
      if (!F.WindowAccess && F.HaloX == 0 && F.HaloY == 0)
        continue; // Point access: no border handling involved.
      std::optional<KernelId> Producer = P.producerOf(K.Inputs[InIdx]);
      if (!Producer || !contains(Block, *Producer))
        continue;
      const Kernel &Prod = P.kernel(*Producer);
      if (Prod.Kind != OperatorKind::Local)
        continue; // Point producers carry no border semantics.
      if (Prod.Border != K.Border ||
          (Prod.Border == BorderMode::Constant &&
           Prod.BorderConstant != K.BorderConstant)) {
        Result.Reason = std::string("conflicting border modes: '") + K.Name +
                        "' (" + borderModeName(K.Border) +
                        ") consumes the window intermediate of '" +
                        Prod.Name + "' (" + borderModeName(Prod.Border) +
                        ")";
        return Result;
      }
    }
  }

  // Dependence scenarios (Figure 2). Only the destination kernel's output
  // may be consumed outside the block; a block therefore has exactly one
  // sink, and no other member's output escapes.
  std::vector<KernelId> Sinks;
  for (KernelId Id : Block) {
    ImageId Out = P.kernel(Id).Output;
    bool HasInternalConsumer = false;
    bool HasExternalConsumer = false;
    for (KernelId Consumer : P.consumersOf(Out))
      (contains(Block, Consumer) ? HasInternalConsumer
                                 : HasExternalConsumer) = true;
    if (!HasInternalConsumer) {
      Sinks.push_back(Id);
      continue;
    }
    if (HasExternalConsumer) {
      Result.Reason = "external output dependence: intermediate of '" +
                      P.kernel(Id).Name + "' is consumed outside the block";
      return Result;
    }
  }
  if (Sinks.size() != 1 && !Options.AllowMultipleDestinations) {
    Result.Reason = "block has " + std::to_string(Sinks.size()) +
                    " destination kernels (needs exactly one)";
    return Result;
  }

  // External inputs are only preserved when a source kernel reads them
  // (Figure 2b is legal, Figure 2d is not). A source kernel has no
  // in-block producer.
  auto isSource = [&](KernelId Id) {
    for (ImageId In : P.kernel(Id).Inputs) {
      std::optional<KernelId> Producer = P.producerOf(In);
      if (Producer && contains(Block, *Producer))
        return false;
    }
    return true;
  };
  auto readBySomeSource = [&](ImageId Img) {
    for (KernelId Id : Block) {
      if (!isSource(Id))
        continue;
      const Kernel &K = P.kernel(Id);
      if (std::find(K.Inputs.begin(), K.Inputs.end(), Img) != K.Inputs.end())
        return true;
    }
    return false;
  };
  for (KernelId Id : Block) {
    if (isSource(Id))
      continue;
    for (ImageId In : P.kernel(Id).Inputs) {
      std::optional<KernelId> Producer = P.producerOf(In);
      if (Producer && contains(Block, *Producer))
        continue; // Internal intermediate: eliminated by fusion.
      if (!readBySomeSource(In)) {
        Result.Reason = "external input dependence: '" + P.kernel(Id).Name +
                        "' reads '" + P.image(In).Name +
                        "' which no source kernel preserves";
        return Result;
      }
    }
  }

  // Resource constraint (Eq. 2).
  Result.SharedRatio = sharedMemoryRatio(Block);
  if (Result.SharedRatio > HW.SharedMemThreshold) {
    Result.Reason = "shared memory constraint violated: fused usage ratio " +
                    std::to_string(Result.SharedRatio) + " exceeds " +
                    std::to_string(HW.SharedMemThreshold);
    return Result;
  }

  // Eq. 2, per tile. The aggregate ratio divides by the widest original
  // mask in the block, so an unrelated wide-mask kernel can dilute it and
  // silently admit a consumer whose own window grows (Eq. 9) far past
  // what its tile sustains. Bound each grown window by the threshold
  // times the consumer's own original width.
  for (KernelId Id : Block) {
    const Kernel &K = P.kernel(Id);
    if (K.Kind != OperatorKind::Local)
      continue;
    bool ConsumesInternal = false;
    for (size_t InIdx = 0; InIdx != K.Inputs.size(); ++InIdx) {
      const InputFootprint &F = Costs[Id].Footprints[InIdx];
      if (!F.WindowAccess && F.HaloX == 0 && F.HaloY == 0)
        continue;
      std::optional<KernelId> Producer = P.producerOf(K.Inputs[InIdx]);
      if (Producer && contains(Block, *Producer))
        ConsumesInternal = true;
    }
    if (!ConsumesInternal)
      continue;
    int Grown = effectiveWindowWidth(Block, Id);
    if (static_cast<double>(Grown) >
        HW.SharedMemThreshold * Costs[Id].WindowWidth) {
      Result.Reason = "shared memory constraint violated: window of '" +
                      K.Name + "' grows from " +
                      std::to_string(Costs[Id].WindowWidth) + " to " +
                      std::to_string(Grown) +
                      " under fusion (Eq. 9), past the threshold";
      return Result;
    }
  }

  Result.Legal = true;
  return Result;
}
