//===- fusion/BenefitModel.h - Edge benefit estimation (Sec II-C)-*- C++ -*-===//
///
/// \file
/// The analytic benefit-estimation model of Section II-C. Each dependence
/// edge (ks, kd) is classified into one of four fusion scenarios and
/// assigned a weight representing the execution cycles saved per pixel of
/// the communicated image:
///
///   Illegal        w = epsilon                                   (pair
///                  cannot fuse: external dependence / resources / header)
///   Point-based    w = delta_reg                    (Eq. 5; kd is point)
///   Point-to-local w = delta_reg - phi              (Eq. 8; recompute
///                  cost phi = cost_op * IS_ks * sz(kd), Eq. 7)
///   Local-to-local w = delta_shared - phi           (Eq. 11; phi uses the
///                  grown window g() of Eq. 9, Eq. 10)
///
/// and finally clamped per Eq. 12: w_e = max(w + gamma, epsilon).
///
/// Weights are normalized by the iteration-space size exactly as in the
/// paper's Harris walk-through ("IS can be simply replaced by the number
/// of images for input" when the pipeline is constant-size, which header
/// compatibility guarantees for fusible kernels): delta_reg = t_g,
/// delta_shared = t_g / t_s, and IS_ks = number of input images of ks.
/// With the paper's constants the Harris edges get 328 (sx->gx, sy->gy)
/// and 256 (sxy->gxy).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_BENEFITMODEL_H
#define KF_FUSION_BENEFITMODEL_H

#include "fusion/Legality.h"

namespace kf {

/// The four scenarios of Section II-C3.
enum class FusionScenario : uint8_t {
  Illegal,
  PointBased,
  PointToLocal,
  LocalToLocal,
};

/// Printable scenario name.
const char *fusionScenarioName(FusionScenario Scenario);

/// Weight assigned to one dependence edge plus its decomposition.
struct EdgeBenefit {
  FusionScenario Scenario = FusionScenario::Illegal;
  double Weight = 0.0;        ///< Final clamped w_e of Eq. 12.
  double Locality = 0.0;      ///< delta term before subtraction.
  double RecomputeCost = 0.0; ///< phi term (0 for point-based/illegal).
  std::string IllegalReason;  ///< Populated for Illegal.
};

/// Computes Eq. 9: the window width of the fused kernel given the window
/// widths (not element counts) of the source and destination kernels.
/// fusedWindowWidth(3, 5) == 7 as in the paper's example.
int fusedWindowWidth(int SourceWidth, int DestWidth);

/// The acceptance test every partitioner uses for candidate blocks: the
/// Section II-B legality of \p Block plus the paper's barrier rule that a
/// *legal* dependence pair whose estimated benefit is not positive is
/// "treated as an illegal scenario" and must not be fused over (this is
/// what keeps the Night filter's expensive atrous chain apart). Pairwise-
/// illegal edges (epsilon-weighted for the objective) are NOT barriers:
/// block-level legality governs them -- that is how the min-cut approach
/// "can explore fusion opportunities in a larger scope" (e.g. the Sobel
/// and Unsharp DAGs, whose edges are all pairwise-rejected yet fuse as a
/// whole). Returns an empty string when acceptable, else the reason.
std::string fusibleBlockRejection(const class BenefitModel &Model,
                                  const std::vector<KernelId> &Block);

/// Edge-weight assignment for one program under one hardware model.
class BenefitModel {
public:
  BenefitModel(const LegalityChecker &Checker);

  /// cost_op of kernel \p Id (Eq. 6): cALU * nALU + cSFU * nSFU.
  double costOp(KernelId Id) const;

  /// IS_ks normalized: the number of input images of \p Id (the sum of
  /// their iteration spaces in units of the common image size).
  double normalizedInputSpace(KernelId Id) const;

  /// Classifies and weighs the dependence edge \p Src -> \p Dst. The pair
  /// must actually be a producer/consumer pair in the program.
  EdgeBenefit edgeBenefit(KernelId Src, KernelId Dst) const;

  /// Builds the weighted kernel DAG: the program's dependence DAG with
  /// every edge weighted by edgeBenefit. \p Info, when non-null, receives
  /// one EdgeBenefit per DAG edge id.
  Digraph buildWeightedDag(std::vector<EdgeBenefit> *Info = nullptr) const;

  const LegalityChecker &legality() const { return Checker; }

private:
  const LegalityChecker &Checker;
};

} // namespace kf

#endif // KF_FUSION_BENEFITMODEL_H
