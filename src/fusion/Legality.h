//===- fusion/Legality.h - Partition-block legality (Sec. II-B) -*- C++ -*-===//
///
/// \file
/// Implements the legality rules of Section II-B: a partition block is
/// legal to fuse when
///   1. it is weakly connected and free of global (reduction) operators,
///   2. all kernels have compatible headers (same iteration-space size and
///      access granularity),
///   3. no external dependence is introduced (the four scenarios of
///      Figure 2): only the destination kernel's output may leave the
///      block, and every external image must be read by a source kernel,
///   4. the shared-memory constraint of Eq. 2 holds: fusing must not grow
///      the shared-memory footprint by more than the threshold c_Mshared.
///
/// The shared-memory model is the line-tile model: a local kernel stages
/// its window input in a tile whose size is proportional to the window
/// width. Under fusion the window of a local consumer of an in-block
/// intermediate grows per Eq. 9, so the fused footprint is the sum of the
/// grown widths of such consumers -- with a 3x3 producer this reproduces
/// the paper's Harris arithmetic exactly ("the memory consumption
/// increases five times" for the full graph; threshold 2 rejects it).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_LEGALITY_H
#define KF_FUSION_LEGALITY_H

#include "fusion/HardwareModel.h"
#include "ir/CostInfo.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace kf {

/// Outcome of a legality check with a human-readable reason on failure.
struct LegalityResult {
  bool Legal = false;
  std::string Reason;        ///< Empty when legal.
  double SharedRatio = 0.0;  ///< LHS of Eq. 2 (0 when not applicable).
};

/// Optional relaxations of the paper's legality rules.
struct LegalityOptions {
  /// The paper restricts fused kernels to a single destination ("only
  /// ... the output of the destination kernel are preserved"). Allowing
  /// multiple destinations is a natural extension: the fused kernel
  /// writes one global output per sink. Everything else (no escaping
  /// intermediates, source-preserved inputs, Eq. 2) stays in force.
  bool AllowMultipleDestinations = false;
};

/// Checks partition blocks of one program against one hardware model.
/// Kernel costs are analyzed once and cached.
class LegalityChecker {
public:
  LegalityChecker(const Program &P, const HardwareModel &HW,
                  const LegalityOptions &Options = LegalityOptions());

  /// Full legality check of \p Block (kernel ids, any order). Blocks of
  /// size one are trivially legal; empty blocks are illegal.
  LegalityResult checkBlock(const std::vector<KernelId> &Block) const;

  /// Effective window width of kernel \p Id when fused inside \p Block:
  /// its own window grown by the halos of transitive in-block local
  /// producers (the width generalization of Eq. 9).
  int effectiveWindowWidth(const std::vector<KernelId> &Block,
                           KernelId Id) const;

  /// LHS of Eq. 2 for \p Block: fused shared footprint over the largest
  /// footprint of the member kernels. Returns 0 when no local kernel in
  /// the block consumes an in-block intermediate.
  double sharedMemoryRatio(const std::vector<KernelId> &Block) const;

  const KernelCost &cost(KernelId Id) const { return Costs[Id]; }
  const Program &program() const { return P; }
  const HardwareModel &hardware() const { return HW; }
  const LegalityOptions &options() const { return Options; }

private:
  /// Halo a kernel's output carries when consumed inside the block
  /// (transitively grown); see effectiveWindowWidth.
  int carriedHalo(const std::vector<KernelId> &Block, KernelId Id) const;

  const Program &P;
  HardwareModel HW;
  LegalityOptions Options;
  Digraph Dag; ///< Kernel dependence DAG, cached at construction.
  std::vector<KernelCost> Costs;
};

} // namespace kf

#endif // KF_FUSION_LEGALITY_H
