//===- fusion/GreedyPartitioner.h - Heaviest-edge grouping ------*- C++ -*-===//
///
/// \file
/// Greedy heaviest-edge-first grouping, the fusion-search strategy the
/// paper contrasts with its min-cut formulation: "One method to search
/// fusible candidates is by greedy fusion, namely fusing along the
/// heaviest edge" (the approach of PolyMage's grouping and Halide's
/// auto-scheduler). It shares the benefit model and legality rules with
/// the min-cut partitioner, so ablation benchmarks isolate exactly the
/// search-strategy difference.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_GREEDYPARTITIONER_H
#define KF_FUSION_GREEDYPARTITIONER_H

#include "fusion/BenefitModel.h"
#include "fusion/Partition.h"

namespace kf {

/// Result of the greedy grouping pass.
struct GreedyFusionResult {
  Partition Blocks;
  Digraph WeightedDag;
  double TotalBenefit = 0.0;
};

/// Repeatedly merges the two blocks joined by the heaviest dependence edge
/// whenever the merged block remains acceptable, until no edge admits a
/// merge. Ties break toward the smallest edge id (deterministic).
GreedyFusionResult runGreedyFusion(const Program &P, const HardwareModel &HW);

} // namespace kf

#endif // KF_FUSION_GREEDYPARTITIONER_H
