//===- fusion/Partition.h - Partitions of the kernel DAG --------*- C++ -*-===//
///
/// \file
/// The output type of the fusion problem (Section II-A): a partition
/// S = {P1, ..., Pk} of the kernel DAG into pairwise-disjoint blocks that
/// cover the graph, each of which is legal to fuse into one kernel. The
/// objective value beta (Eq. 1) is the total weight of intra-block edges.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_PARTITION_H
#define KF_FUSION_PARTITION_H

#include "graph/Digraph.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace kf {

/// One partition block: the kernels to be fused into a single kernel.
/// Kernel ids are kept sorted for deterministic output.
struct PartitionBlock {
  std::vector<KernelId> Kernels;
};

/// A complete partition of a program's kernels.
struct Partition {
  std::vector<PartitionBlock> Blocks;

  /// Index of the block containing kernel \p Id, or -1 when absent.
  int blockOf(KernelId Id) const;

  /// Number of blocks with more than one kernel (actual fusions).
  unsigned numFusedBlocks() const;

  /// Canonical form: kernels sorted within blocks, blocks sorted by their
  /// smallest kernel id. Enables equality comparison in tests.
  void normalize();

  bool operator==(const Partition &Other) const;
};

/// Checks the partition properties of Section II-A against \p P: pairwise
/// disjoint and covering all kernels. Returns an empty string when valid,
/// otherwise a diagnostic.
std::string validatePartition(const Program &P, const Partition &S);

/// The objective beta of Eq. 1 evaluated on a weighted kernel DAG: the sum
/// of edge weights internal to the partition's blocks.
double partitionBenefit(const Digraph &WeightedDag, const Partition &S);

/// The trivial partition with one singleton block per kernel (the unfused
/// baseline).
Partition makeSingletonPartition(const Program &P);

/// Renders the partition as "{a, b} {c} ..." using kernel names.
std::string partitionToString(const Program &P, const Partition &S);

} // namespace kf

#endif // KF_FUSION_PARTITION_H
