//===- fusion/Distribution.h - Kernel distribution (future work) -*- C++ -*-===//
///
/// \file
/// Kernel *distribution*, the inverse transformation the paper names as
/// future work ("we want to ... explore further optimization techniques
/// that can be used in conjunction with kernel fusion, such as kernel
/// distribution"). Given a partition computed for one architecture,
/// distribution re-splits any block that is no longer acceptable under a
/// different (typically tighter) hardware model -- e.g. when retargeting
/// a pipeline fused for a large-shared-memory device to a smaller one.
///
/// The split reuses the Algorithm 1 machinery: a violating block is cut
/// recursively along its weighted minimum cut until every piece is
/// acceptable, so the distribution loses the least estimated benefit.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_DISTRIBUTION_H
#define KF_FUSION_DISTRIBUTION_H

#include "fusion/BenefitModel.h"
#include "fusion/Partition.h"

namespace kf {

/// Result of a distribution pass.
struct DistributionResult {
  Partition Blocks;              ///< Refined partition (normalized).
  unsigned NumBlocksSplit = 0;   ///< Blocks that had to be distributed.
  double BenefitBefore = 0.0;    ///< Eq. 1 under the target model, before.
  double BenefitAfter = 0.0;     ///< Eq. 1 under the target model, after.
  std::vector<std::string> Log;  ///< One line per split, for reports.
};

/// Re-partitions the blocks of \p S that are not acceptable under
/// \p TargetHW. Blocks that remain acceptable are kept verbatim, so the
/// result is \p S itself whenever \p S already fits the target.
DistributionResult distributeBlocks(const Program &P, const Partition &S,
                                    const HardwareModel &TargetHW);

} // namespace kf

#endif // KF_FUSION_DISTRIBUTION_H
