//===- fusion/HardwareModel.h - Architecture parameters ---------*- C++ -*-===//
///
/// \file
/// The simplified GPU memory model of Section II-C2: registers, shared
/// memory, and global memory, with expected access costs in cycles. "Those
/// variables are flexible and can be adapted for new architectures" -- they
/// are plain fields here, defaulted to the values the paper uses in its
/// Harris walk-through (tg = 400 cycles, cALU = 4 cycles).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FUSION_HARDWAREMODEL_H
#define KF_FUSION_HARDWAREMODEL_H

namespace kf {

/// Parameters of the benefit-estimation model (Eqs. 3-12).
struct HardwareModel {
  /// t_g: expected cycles to access a pixel in global memory. The paper
  /// uses the global-memory latency (typically 400-800 cycles) as a
  /// conservative estimate and picks 400 for its example.
  double GlobalAccessCycles = 400.0;

  /// t_s: expected cycles to access a pixel in shared memory ("a few
  /// cycles").
  double SharedAccessCycles = 4.0;

  /// Registers are accessed "in a single cycle".
  double RegisterAccessCycles = 1.0;

  /// c_ALU: average cost in cycles of an ALU operation (Eq. 6).
  double AluCost = 4.0;

  /// c_SFU: average cost in cycles of a special-function-unit operation
  /// such as a transcendental (Eq. 6).
  double SfuCost = 16.0;

  /// c_Mshared: the user-given threshold of Eq. 2 bounding the growth of
  /// shared-memory usage under fusion. The paper limits it to 2 "in order
  /// to obtain high resource utilization".
  double SharedMemThreshold = 2.0;

  /// epsilon: the arbitrarily small positive weight assigned to illegal
  /// (and non-beneficial) edges so that all weights stay positive, as the
  /// Stoer-Wagner step requires.
  double Epsilon = 1e-3;

  /// gamma: the independent term of Eq. 12 summarizing additional gains
  /// (kernel-launch overhead removal, enlarged optimization scope). The
  /// paper omits it in its example; default zero.
  double Gamma = 0.0;

  /// delta_Mshared per pixel: locality improvement of moving one access
  /// from global to shared memory (Eq. 3, normalized by IS).
  double sharedImprovementPerPixel() const {
    return GlobalAccessCycles / SharedAccessCycles;
  }

  /// delta_reg per pixel: improvement of moving one access from global
  /// memory to a register (Eq. 4, normalized by IS).
  double registerImprovementPerPixel() const { return GlobalAccessCycles; }
};

} // namespace kf

#endif // KF_FUSION_HARDWAREMODEL_H
