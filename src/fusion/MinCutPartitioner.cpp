//===- fusion/MinCutPartitioner.cpp -----------------------------------------===//

#include "fusion/MinCutPartitioner.h"

#include "graph/MinCut.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>

using namespace kf;

namespace {

/// Shared state of one fusion run.
class MinCutFusion {
public:
  MinCutFusion(const Program &P, const HardwareModel &HW,
               const LegalityOptions &Options)
      : Checker(P, HW, Options), Model(Checker) {}

  MinCutFusionResult run() {
    TraceSpan Span("fusion.mincut", "fusion");
    MinCutFusionResult Result;
    Result.WeightedDag = Model.buildWeightedDag(&Result.EdgeInfo);

    // Lines 5-6: ready set and working set, the latter seeded with the
    // whole DAG as one partition block.
    std::vector<PartitionBlock> Ready;
    std::deque<std::vector<KernelId>> Working;
    std::vector<KernelId> All(Checker.program().numKernels());
    for (KernelId Id = 0; Id != Checker.program().numKernels(); ++Id)
      All[Id] = Id;
    if (!All.empty())
      Working.push_back(All);

    // Lines 7-18: recurse until the working set is empty.
    while (!Working.empty()) {
      std::vector<KernelId> Block = Working.front();
      Working.pop_front();

      FusionTraceStep Step;
      Step.Block = Block;

      std::string Reason = fusibleBlockRejection(Model, Block);
      if (Block.size() == 1 || Reason.empty()) {
        Step.Accepted = true;
        std::sort(Block.begin(), Block.end());
        Ready.push_back(PartitionBlock{Block});
        Result.Trace.push_back(std::move(Step));
        continue;
      }

      // Lines 13-14: split along the weighted minimum cut.
      CutResult Cut = stoerWagnerMinCut(Result.WeightedDag, Block);
      Step.Reason = Reason;
      Step.CutWeight = Cut.Weight;
      Step.SideA = Cut.SideA;
      Step.SideB = Cut.SideB;
      Working.push_back(Cut.SideA);
      Working.push_back(Cut.SideB);
      Result.Trace.push_back(std::move(Step));
    }

    Result.Blocks.Blocks = std::move(Ready);
    Result.Blocks.normalize();
    Result.TotalBenefit = partitionBenefit(Result.WeightedDag, Result.Blocks);
    if (Span.active()) {
      uint64_t Cuts = 0;
      for (const FusionTraceStep &Step : Result.Trace)
        if (!Step.Accepted)
          ++Cuts;
      Span.arg("steps", static_cast<double>(Result.Trace.size()));
      Span.arg("cuts", static_cast<double>(Cuts));
      Span.arg("blocks", static_cast<double>(Result.Blocks.Blocks.size()));
      Span.arg("total_benefit", Result.TotalBenefit);
    }
    return Result;
  }

private:
  LegalityChecker Checker;
  BenefitModel Model;
};

} // namespace

MinCutFusionResult kf::runMinCutFusion(const Program &P,
                                       const HardwareModel &HW,
                                       const LegalityOptions &Options) {
  return MinCutFusion(P, HW, Options).run();
}
