//===- fusion/BasicFusion.cpp ----------------------------------------------===//

#include "fusion/BasicFusion.h"

#include <algorithm>

using namespace kf;

BasicFusionResult kf::runBasicFusion(const Program &P,
                                     const HardwareModel &HW) {
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);

  BasicFusionResult Result;
  Result.WeightedDag = Model.buildWeightedDag(&Result.EdgeInfo);

  std::vector<bool> Paired(P.numKernels(), false);
  std::vector<PartitionBlock> Blocks;

  // Scan dependence edges in deterministic (kernel id) order, pairing
  // greedily; a kernel participates in at most one pair.
  for (Digraph::EdgeId E = 0; E != Result.WeightedDag.numEdges(); ++E) {
    const Digraph::Edge &Ed = Result.WeightedDag.edge(E);
    KernelId Src = Ed.From;
    KernelId Dst = Ed.To;
    if (Paired[Src] || Paired[Dst])
      continue;

    const Kernel &Producer = P.kernel(Src);
    const Kernel &Consumer = P.kernel(Dst);

    // Point-related scenarios only.
    if (Producer.Kind == OperatorKind::Local &&
        Consumer.Kind == OperatorKind::Local)
      continue;
    if (Producer.Kind == OperatorKind::Global ||
        Consumer.Kind == OperatorKind::Global)
      continue;

    // Strict true dependence: single-input consumer, single-consumer
    // producer (anything else was regarded as an external dependence).
    if (Consumer.Inputs.size() != 1 ||
        Consumer.Inputs.front() != Producer.Output)
      continue;
    if (P.consumersOf(Producer.Output).size() != 1)
      continue;

    // Shared legality core (headers, resources).
    if (!Checker.checkBlock({Src, Dst}).Legal)
      continue;

    Paired[Src] = Paired[Dst] = true;
    Blocks.push_back(PartitionBlock{{Src, Dst}});
  }

  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (!Paired[Id])
      Blocks.push_back(PartitionBlock{{Id}});

  Result.Blocks.Blocks = std::move(Blocks);
  Result.Blocks.normalize();
  Result.TotalBenefit = partitionBenefit(Result.WeightedDag, Result.Blocks);
  return Result;
}
