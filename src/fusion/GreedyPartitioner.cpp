//===- fusion/GreedyPartitioner.cpp -----------------------------------------===//

#include "fusion/GreedyPartitioner.h"

#include <algorithm>
#include <numeric>

using namespace kf;

GreedyFusionResult kf::runGreedyFusion(const Program &P,
                                       const HardwareModel &HW) {
  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);

  GreedyFusionResult Result;
  Result.WeightedDag = Model.buildWeightedDag();
  const Digraph &Dag = Result.WeightedDag;

  // Union-find style ownership: Owner[kernel] -> block index.
  std::vector<unsigned> Owner(P.numKernels());
  std::iota(Owner.begin(), Owner.end(), 0u);
  std::vector<std::vector<KernelId>> Blocks(P.numKernels());
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Blocks[Id] = {Id};

  // Edge order: heaviest first, then smallest edge id.
  std::vector<Digraph::EdgeId> Order(Dag.numEdges());
  std::iota(Order.begin(), Order.end(), 0u);
  std::sort(Order.begin(), Order.end(),
            [&](Digraph::EdgeId A, Digraph::EdgeId B) {
              if (Dag.edge(A).Weight != Dag.edge(B).Weight)
                return Dag.edge(A).Weight > Dag.edge(B).Weight;
              return A < B;
            });

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Digraph::EdgeId E : Order) {
      const Digraph::Edge &Ed = Dag.edge(E);
      if (Ed.Weight <= HW.Epsilon)
        continue; // Epsilon edges never justify a merge.
      unsigned A = Owner[Ed.From];
      unsigned B = Owner[Ed.To];
      if (A == B)
        continue;
      std::vector<KernelId> Merged = Blocks[A];
      Merged.insert(Merged.end(), Blocks[B].begin(), Blocks[B].end());
      if (!fusibleBlockRejection(Model, Merged).empty())
        continue;
      // Commit the merge into the lower index; empty the other.
      unsigned Keep = std::min(A, B);
      unsigned Drop = std::max(A, B);
      Blocks[Keep] = std::move(Merged);
      Blocks[Drop].clear();
      for (KernelId Id : Blocks[Keep])
        Owner[Id] = Keep;
      Changed = true;
    }
  }

  for (std::vector<KernelId> &Block : Blocks)
    if (!Block.empty())
      Result.Blocks.Blocks.push_back(PartitionBlock{std::move(Block)});
  Result.Blocks.normalize();
  Result.TotalBenefit = partitionBenefit(Result.WeightedDag, Result.Blocks);
  return Result;
}
