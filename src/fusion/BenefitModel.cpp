//===- fusion/BenefitModel.cpp ---------------------------------------------===//

#include "fusion/BenefitModel.h"

#include "support/Error.h"
#include "support/Trace.h"

#include <cmath>
#include <string>

using namespace kf;

const char *kf::fusionScenarioName(FusionScenario Scenario) {
  switch (Scenario) {
  case FusionScenario::Illegal:
    return "illegal";
  case FusionScenario::PointBased:
    return "point-based";
  case FusionScenario::PointToLocal:
    return "point-to-local";
  case FusionScenario::LocalToLocal:
    return "local-to-local";
  }
  KF_UNREACHABLE("unknown fusion scenario");
}

int kf::fusedWindowWidth(int SourceWidth, int DestWidth) {
  // Eq. 9 in window widths: the destination window grows by the source
  // halo on both sides. floor(sqrt(sz_s)/2)*2 == (SourceWidth/2)*2 for odd
  // widths.
  return DestWidth + (SourceWidth / 2) * 2;
}

BenefitModel::BenefitModel(const LegalityChecker &Checker)
    : Checker(Checker) {}

double BenefitModel::costOp(KernelId Id) const {
  const HardwareModel &HW = Checker.hardware();
  const KernelCost &Cost = Checker.cost(Id);
  return HW.AluCost * static_cast<double>(Cost.NumAlu) +
         HW.SfuCost * static_cast<double>(Cost.NumSfu);
}

double BenefitModel::normalizedInputSpace(KernelId Id) const {
  return static_cast<double>(Checker.program().kernel(Id).Inputs.size());
}

EdgeBenefit BenefitModel::edgeBenefit(KernelId Src, KernelId Dst) const {
  const Program &P = Checker.program();
  const HardwareModel &HW = Checker.hardware();
  assert(P.communicatedImage(Src, Dst) &&
         "edge benefit queried on a non-edge");

  EdgeBenefit Result;

  // Scenario "Illegal": the pair itself cannot fuse.
  LegalityResult Pair = Checker.checkBlock({Src, Dst});
  if (!Pair.Legal) {
    Result.Scenario = FusionScenario::Illegal;
    Result.Weight = HW.Epsilon;
    Result.IllegalReason = Pair.Reason;
    return Result;
  }

  const Kernel &Producer = P.kernel(Src);
  const Kernel &Consumer = P.kernel(Dst);
  double W = 0.0;

  if (Consumer.Kind == OperatorKind::Point) {
    // Point-based (Eq. 5): the communicated pixel stays in a register of
    // the computing thread, regardless of the producer's pattern.
    Result.Scenario = FusionScenario::PointBased;
    Result.Locality = HW.registerImprovementPerPixel();
    W = Result.Locality;
  } else if (Producer.Kind == OperatorKind::Point) {
    // Point-to-local (Eqs. 7-8): recompute the producer per window element.
    Result.Scenario = FusionScenario::PointToLocal;
    Result.Locality = HW.registerImprovementPerPixel();
    Result.RecomputeCost = costOp(Src) * normalizedInputSpace(Src) *
                           Checker.cost(Dst).windowSize();
    W = Result.Locality - Result.RecomputeCost;
  } else {
    // Local-to-local (Eqs. 9-11): the intermediate moves to shared memory
    // and the recompute window grows to g(sz_s, sz_d).
    Result.Scenario = FusionScenario::LocalToLocal;
    Result.Locality = HW.sharedImprovementPerPixel();
    int Grown = fusedWindowWidth(Checker.cost(Src).WindowWidth,
                                 Checker.cost(Dst).WindowWidth);
    Result.RecomputeCost = costOp(Src) * normalizedInputSpace(Src) *
                           static_cast<double>(Grown) * Grown;
    W = Result.Locality - Result.RecomputeCost;
  }

  // Eq. 12: fold in gamma and clamp at epsilon so all weights stay
  // positive ("if any fusion indicates a benefit <= 0 ... treat them as
  // illegal scenarios").
  Result.Weight = std::max(W + HW.Gamma, HW.Epsilon);
  if (Result.Weight == HW.Epsilon && Result.Scenario != FusionScenario::Illegal)
    Result.IllegalReason = "estimated benefit not positive";
  return Result;
}

std::string kf::fusibleBlockRejection(const BenefitModel &Model,
                                      const std::vector<KernelId> &Block) {
  const LegalityChecker &Checker = Model.legality();
  LegalityResult Legality = Checker.checkBlock(Block);
  if (!Legality.Legal)
    return Legality.Reason;
  if (Block.size() == 1)
    return "";

  // Barrier rule (Section II-C4): a legal pair with non-positive estimated
  // benefit must not be fused over.
  const Program &P = Checker.program();
  double Floor = Checker.hardware().Epsilon;
  std::vector<bool> InBlock(P.numKernels(), false);
  for (KernelId Id : Block)
    InBlock[Id] = true;
  for (KernelId Src : Block) {
    ImageId Out = P.kernel(Src).Output;
    for (KernelId Dst : P.consumersOf(Out)) {
      if (!InBlock[Dst])
        continue;
      EdgeBenefit Benefit = Model.edgeBenefit(Src, Dst);
      if (Benefit.Scenario != FusionScenario::Illegal &&
          Benefit.Weight <= Floor)
        return "dependence '" + P.kernel(Src).Name + "' -> '" +
               P.kernel(Dst).Name + "' is not beneficial to fuse";
    }
  }
  return "";
}

Digraph BenefitModel::buildWeightedDag(std::vector<EdgeBenefit> *Info) const {
  TraceSpan Span("fusion.benefit_dag", "fusion");
  const Program &P = Checker.program();
  Digraph Dag = P.buildKernelDag();
  if (Info) {
    Info->clear();
    Info->reserve(Dag.numEdges());
  }
  for (Digraph::EdgeId E = 0; E != Dag.numEdges(); ++E) {
    const Digraph::Edge &Ed = Dag.edge(E);
    EdgeBenefit Benefit = edgeBenefit(Ed.From, Ed.To);
    Dag.setEdgeWeight(E, Benefit.Weight);
    if (TraceRecorder::enabled())
      TraceRecorder::global().addCounter(
          std::string("fusion.edges.") + fusionScenarioName(Benefit.Scenario),
          1.0);
    if (Info)
      Info->push_back(std::move(Benefit));
  }
  Span.arg("edges", static_cast<double>(Dag.numEdges()));
  return Dag;
}
