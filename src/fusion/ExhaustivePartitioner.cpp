//===- fusion/ExhaustivePartitioner.cpp --------------------------------------===//

#include "fusion/ExhaustivePartitioner.h"

#include "support/Error.h"

using namespace kf;

namespace {

/// Recursive restricted-growth-string enumeration of set partitions.
class PartitionEnumerator {
public:
  PartitionEnumerator(const BenefitModel &Model, const Digraph &Dag,
                      unsigned NumKernels)
      : Model(Model), Dag(Dag), N(NumKernels), Assign(NumKernels, 0) {}

  void run() {
    if (N != 0)
      descend(/*Level=*/1, /*MaxBlock=*/0);
  }

  double BestBenefit = -1.0;
  Partition BestPartition;
  unsigned long long Examined = 0;

private:
  void descend(unsigned Level, unsigned MaxBlock) {
    if (Level == N) {
      evaluate(MaxBlock + 1);
      return;
    }
    for (unsigned Block = 0; Block <= MaxBlock + 1; ++Block) {
      Assign[Level] = Block;
      descend(Level + 1, std::max(MaxBlock, Block));
    }
  }

  void evaluate(unsigned NumBlocks) {
    ++Examined;
    Partition S;
    S.Blocks.resize(NumBlocks);
    for (unsigned I = 0; I != N; ++I)
      S.Blocks[Assign[I]].Kernels.push_back(I);
    for (const PartitionBlock &Block : S.Blocks)
      if (!fusibleBlockRejection(Model, Block.Kernels).empty())
        return;
    double Benefit = partitionBenefit(Dag, S);
    if (Benefit > BestBenefit) {
      BestBenefit = Benefit;
      BestPartition = std::move(S);
    }
  }

  const BenefitModel &Model;
  const Digraph &Dag;
  unsigned N;
  std::vector<unsigned> Assign;
};

} // namespace

ExhaustiveFusionResult kf::runExhaustiveFusion(const Program &P,
                                               const HardwareModel &HW) {
  unsigned N = P.numKernels();
  if (N > 12)
    reportFatalError("exhaustive fusion search limited to 12 kernels");

  LegalityChecker Checker(P, HW);
  BenefitModel Model(Checker);

  ExhaustiveFusionResult Result;
  Result.WeightedDag = Model.buildWeightedDag();

  PartitionEnumerator Enumerator(Model, Result.WeightedDag, N);
  Enumerator.run();

  Result.Blocks = std::move(Enumerator.BestPartition);
  Result.Blocks.normalize();
  Result.TotalBenefit = std::max(0.0, Enumerator.BestBenefit);
  Result.PartitionsExamined = Enumerator.Examined;
  return Result;
}
