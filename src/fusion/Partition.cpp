//===- fusion/Partition.cpp ------------------------------------------------===//

#include "fusion/Partition.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace kf;

int Partition::blockOf(KernelId Id) const {
  for (size_t B = 0; B != Blocks.size(); ++B)
    if (std::find(Blocks[B].Kernels.begin(), Blocks[B].Kernels.end(), Id) !=
        Blocks[B].Kernels.end())
      return static_cast<int>(B);
  return -1;
}

unsigned Partition::numFusedBlocks() const {
  unsigned Count = 0;
  for (const PartitionBlock &B : Blocks)
    if (B.Kernels.size() > 1)
      ++Count;
  return Count;
}

void Partition::normalize() {
  for (PartitionBlock &B : Blocks)
    std::sort(B.Kernels.begin(), B.Kernels.end());
  std::sort(Blocks.begin(), Blocks.end(),
            [](const PartitionBlock &A, const PartitionBlock &B) {
              return A.Kernels.front() < B.Kernels.front();
            });
}

bool Partition::operator==(const Partition &Other) const {
  Partition A = *this, B = Other;
  A.normalize();
  B.normalize();
  if (A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t I = 0; I != A.Blocks.size(); ++I)
    if (A.Blocks[I].Kernels != B.Blocks[I].Kernels)
      return false;
  return true;
}

std::string kf::validatePartition(const Program &P, const Partition &S) {
  std::vector<int> Owner(P.numKernels(), -1);
  for (size_t B = 0; B != S.Blocks.size(); ++B) {
    if (S.Blocks[B].Kernels.empty())
      return "partition contains an empty block";
    for (KernelId Id : S.Blocks[B].Kernels) {
      if (Id >= P.numKernels())
        return "partition references kernel id out of range";
      if (Owner[Id] != -1)
        return "kernel '" + P.kernel(Id).Name +
               "' appears in more than one block";
      Owner[Id] = static_cast<int>(B);
    }
  }
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    if (Owner[Id] == -1)
      return "kernel '" + P.kernel(Id).Name + "' is not covered";
  return "";
}

double kf::partitionBenefit(const Digraph &WeightedDag, const Partition &S) {
  double Total = 0.0;
  for (const PartitionBlock &B : S.Blocks)
    if (B.Kernels.size() > 1)
      Total += WeightedDag.blockWeight(B.Kernels);
  return Total;
}

Partition kf::makeSingletonPartition(const Program &P) {
  Partition S;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    S.Blocks.push_back(PartitionBlock{{Id}});
  return S;
}

std::string kf::partitionToString(const Program &P, const Partition &S) {
  Partition Sorted = S;
  Sorted.normalize();
  std::string Out;
  for (const PartitionBlock &B : Sorted.Blocks) {
    std::vector<std::string> Names;
    for (KernelId Id : B.Kernels)
      Names.push_back(P.kernel(Id).Name);
    if (!Out.empty())
      Out += " ";
    Out += "{" + joinStrings(Names, ", ") + "}";
  }
  return Out;
}
