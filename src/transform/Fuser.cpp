//===- transform/Fuser.cpp --------------------------------------------------===//

#include "transform/Fuser.h"

#include "fusion/Legality.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace kf;

const char *kf::placementName(Placement P) {
  switch (P) {
  case Placement::Global:
    return "global";
  case Placement::Register:
    return "register";
  case Placement::RegisterRecompute:
    return "register-recompute";
  case Placement::SharedTile:
    return "shared-tile";
  }
  KF_UNREACHABLE("unknown placement");
}

const FusedStage *FusedKernel::findStage(KernelId Id) const {
  for (const FusedStage &Stage : Stages)
    if (Stage.Kernel == Id)
      return &Stage;
  return nullptr;
}

bool FusedKernel::isDestination(KernelId Id) const {
  return std::find(Destinations.begin(), Destinations.end(), Id) !=
         Destinations.end();
}

const FusedKernel *FusedProgram::producerOf(ImageId Id) const {
  for (const FusedKernel &FK : Kernels)
    for (const FusedStage &Stage : FK.Stages)
      if (Source->kernel(Stage.Kernel).Output == Id)
        return &FK;
  return nullptr;
}

namespace {

/// Builds one FusedKernel from a partition block.
class BlockFuser {
public:
  BlockFuser(const Program &P, const LegalityChecker &Checker,
             const std::vector<KernelId> &Block, FusionStyle Style,
             const TileShape &Tile)
      : P(P), Checker(Checker), Block(Block), Style(Style), Tile(Tile) {}

  FusedKernel fuse() {
    FusedKernel FK;
    orderStages(FK);
    FK.Destination = FK.Stages.back().Kernel;
    // Destinations: stages without in-block consumers. Exactly one under
    // the paper's rules; several under the multi-destination extension.
    for (const FusedStage &Stage : FK.Stages) {
      bool HasInternalConsumer = false;
      for (KernelId Consumer :
           P.consumersOf(P.kernel(Stage.Kernel).Output))
        HasInternalConsumer |= inBlock(Consumer);
      if (!HasInternalConsumer)
        FK.Destinations.push_back(Stage.Kernel);
    }
    std::sort(FK.Destinations.begin(), FK.Destinations.end());
    assert(FK.isDestination(FK.Destination) &&
           "last stage must be a destination");

    std::vector<std::string> Names;
    for (const FusedStage &Stage : FK.Stages)
      Names.push_back(P.kernel(Stage.Kernel).Name);
    FK.Name = joinStrings(Names, "+");

    for (FusedStage &Stage : FK.Stages) {
      Stage.EffectiveWindowWidth =
          Checker.effectiveWindowWidth(Block, Stage.Kernel);
      Stage.CarriedHalo = (Stage.EffectiveWindowWidth - 1) / 2;
    }
    assignPlacements(FK);
    computeMultiplicities(FK);
    return FK;
  }

private:
  bool inBlock(KernelId Id) const {
    return std::find(Block.begin(), Block.end(), Id) != Block.end();
  }

  /// Orders the block's kernels topologically; the unique sink comes last.
  void orderStages(FusedKernel &FK) {
    std::optional<std::vector<Digraph::NodeId>> Order =
        P.buildKernelDag().topologicalOrder();
    assert(Order && "kernel DAG has a cycle");
    for (Digraph::NodeId N : *Order)
      if (inBlock(N)) {
        FusedStage Stage;
        Stage.Kernel = N;
        FK.Stages.push_back(Stage);
      }
    assert(FK.Stages.size() == Block.size() && "stage ordering lost kernels");

    // Move the destination (no in-block consumer) to the end; topological
    // order guarantees it is already last for legal single-sink blocks,
    // but assert it.
    ImageId LastOut = P.kernel(FK.Stages.back().Kernel).Output;
    for (KernelId Consumer : P.consumersOf(LastOut))
      assert(!inBlock(Consumer) &&
             "last stage of a block must be its destination");
  }

  /// Reads-per-pixel of \p Consumer on image \p Img, plus whether any
  /// access is windowed.
  std::pair<long long, bool> consumerAccess(KernelId Consumer,
                                            ImageId Img) const {
    const Kernel &K = P.kernel(Consumer);
    const KernelCost &Cost = Checker.cost(Consumer);
    long long Reads = 0;
    bool Window = false;
    for (size_t In = 0; In != K.Inputs.size(); ++In) {
      if (K.Inputs[In] != Img)
        continue;
      const InputFootprint &F = Cost.Footprints[In];
      Reads += F.ReadsPerPixel;
      Window |= F.WindowAccess || F.HaloX > 0 || F.HaloY > 0;
    }
    return {Reads, Window};
  }

  void assignPlacements(FusedKernel &FK) {
    for (FusedStage &Stage : FK.Stages) {
      if (FK.isDestination(Stage.Kernel)) {
        Stage.OutputPlacement = Placement::Global;
        continue;
      }
      ImageId Out = P.kernel(Stage.Kernel).Output;
      bool AnyWindow = false;
      for (KernelId Consumer : P.consumersOf(Out)) {
        assert(inBlock(Consumer) &&
               "non-destination intermediate escapes the block");
        AnyWindow |= consumerAccess(Consumer, Out).second;
      }
      if (!AnyWindow) {
        Stage.OutputPlacement = Placement::Register;
        continue;
      }
      bool ProducerIsPoint =
          P.kernel(Stage.Kernel).Kind == OperatorKind::Point;
      if (Style == FusionStyle::Optimized && ProducerIsPoint)
        Stage.OutputPlacement = Placement::RegisterRecompute;
      else
        Stage.OutputPlacement = Placement::SharedTile;
    }
  }

  void computeMultiplicities(FusedKernel &FK) {
    // Reverse topological walk: consumers are later stages.
    for (auto It = FK.Stages.rbegin(); It != FK.Stages.rend(); ++It) {
      FusedStage &Stage = *It;
      if (FK.isDestination(Stage.Kernel)) {
        Stage.Multiplicity = 1.0;
        continue;
      }
      ImageId Out = P.kernel(Stage.Kernel).Output;
      switch (Stage.OutputPlacement) {
      case Placement::Register: {
        // Evaluated once per consumer context; contexts are shared, so
        // the widest consumer dominates.
        double MaxConsumer = 0.0;
        for (KernelId Consumer : P.consumersOf(Out))
          MaxConsumer = std::max(
              MaxConsumer, FK.findStage(Consumer)->Multiplicity);
        Stage.Multiplicity = std::max(1.0, MaxConsumer);
        break;
      }
      case Placement::RegisterRecompute: {
        // Re-evaluated for every window element of every consumer.
        double Total = 0.0;
        for (KernelId Consumer : P.consumersOf(Out)) {
          auto [Reads, Window] = consumerAccess(Consumer, Out);
          (void)Window;
          Total += FK.findStage(Consumer)->Multiplicity *
                   static_cast<double>(Reads);
        }
        Stage.Multiplicity = std::max(1.0, Total);
        break;
      }
      case Placement::SharedTile: {
        // Filled once per thread block; the per-pixel overhead is the
        // tile-to-block area ratio, with the tile halo covering the
        // widest consumer window.
        int Halo = 0;
        for (KernelId Consumer : P.consumersOf(Out)) {
          const FusedStage *CS = FK.findStage(Consumer);
          int ConsumerHalo =
              (Checker.cost(Consumer).WindowWidth - 1) / 2;
          (void)CS;
          Halo = std::max(Halo, ConsumerHalo);
        }
        double TileElems = static_cast<double>(Tile.Width + 2 * Halo) *
                           (Tile.Height + 2 * Halo);
        double BlockElems =
            static_cast<double>(Tile.Width) * Tile.Height;
        Stage.Multiplicity = TileElems / BlockElems;
        break;
      }
      case Placement::Global:
        KF_UNREACHABLE("non-destination stage placed in global memory");
      }
    }
  }

  const Program &P;
  const LegalityChecker &Checker;
  const std::vector<KernelId> &Block;
  FusionStyle Style;
  TileShape Tile;
};

} // namespace

FusedProgram kf::fuseProgram(const Program &P, const Partition &S,
                             FusionStyle Style, const TileShape &Tile) {
  std::string Invalid = validatePartition(P, S);
  if (!Invalid.empty())
    reportFatalError("cannot fuse program '" + P.name() + "': " + Invalid);

  // The legality checker provides cached costs and the width growth rule;
  // the hardware model is irrelevant for those, use defaults.
  static const HardwareModel DefaultHW;
  LegalityChecker Checker(P, DefaultHW);

  FusedProgram FP;
  FP.Source = &P;
  FP.Style = Style;
  FP.SourcePartition = S;
  FP.SourcePartition.normalize();

  // Launch order: topological order of the block contraction of the DAG.
  Digraph Dag = P.buildKernelDag();
  Digraph BlockGraph;
  for (size_t B = 0; B != FP.SourcePartition.Blocks.size(); ++B)
    BlockGraph.addNode("block" + std::to_string(B));
  for (Digraph::EdgeId E = 0; E != Dag.numEdges(); ++E) {
    const Digraph::Edge &Ed = Dag.edge(E);
    int From = FP.SourcePartition.blockOf(Ed.From);
    int To = FP.SourcePartition.blockOf(Ed.To);
    if (From != To)
      BlockGraph.addEdge(static_cast<unsigned>(From),
                         static_cast<unsigned>(To));
  }
  std::optional<std::vector<Digraph::NodeId>> BlockOrder =
      BlockGraph.topologicalOrder();
  if (!BlockOrder)
    reportFatalError("partition blocks of '" + P.name() +
                     "' form a dependence cycle");

  for (Digraph::NodeId B : *BlockOrder) {
    BlockFuser Fuser(P, Checker, FP.SourcePartition.Blocks[B].Kernels, Style,
                     Tile);
    FP.Kernels.push_back(Fuser.fuse());
  }
  return FP;
}

FusedProgram kf::unfusedProgram(const Program &P) {
  return fuseProgram(P, makeSingletonPartition(P), FusionStyle::Optimized);
}

std::string kf::fusedProgramToString(const FusedProgram &FP) {
  const Program &P = *FP.Source;
  std::string Out = "fused program " + P.name() + " (" +
                    (FP.Style == FusionStyle::Optimized ? "optimized"
                                                        : "basic") +
                    ", " + std::to_string(FP.Kernels.size()) + " launches)\n";
  for (const FusedKernel &FK : FP.Kernels) {
    Out += "  kernel " + FK.Name + "\n";
    for (const FusedStage &Stage : FK.Stages) {
      Out += "    stage " + P.kernel(Stage.Kernel).Name + " [" +
             placementName(Stage.OutputPlacement) +
             ", mult=" + formatDouble(Stage.Multiplicity, 3) +
             ", width=" + std::to_string(Stage.EffectiveWindowWidth) + "]\n";
    }
  }
  return Out;
}
