//===- transform/Fuser.h - Materialize partitions as fused kernels -*- C++-*-===//
///
/// \file
/// Applies a fusion partition to a program, producing the FusedProgram the
/// simulator executes and the CUDA backend prints. The fuser decides
/// output placements per stage (register, register-recompute, shared
/// tile), computes evaluation multiplicities, and records the grown window
/// widths the cost model and the index-exchange border handling need.
///
//===----------------------------------------------------------------------===//

#ifndef KF_TRANSFORM_FUSER_H
#define KF_TRANSFORM_FUSER_H

#include "transform/FusedKernel.h"

namespace kf {

/// Tile block shape assumed for shared-tile amortization (threads per
/// block = Width x Height). Matches the simulator's default launch shape.
struct TileShape {
  int Width = 32;
  int Height = 4;
};

/// Fuses \p P according to partition \p S. \p S must validate against
/// \p P (aborts otherwise); every multi-kernel block must be a legal
/// fusion candidate -- the fuser asserts the structural invariants the
/// legality checker guarantees (single sink, acyclic block order).
FusedProgram fuseProgram(const Program &P, const Partition &S,
                         FusionStyle Style,
                         const TileShape &Tile = TileShape());

/// Convenience: the unfused baseline (singleton partition).
FusedProgram unfusedProgram(const Program &P);

/// Renders the fused program structure (stages, placements,
/// multiplicities) as text for traces and golden tests.
std::string fusedProgramToString(const FusedProgram &FP);

} // namespace kf

#endif // KF_TRANSFORM_FUSER_H
