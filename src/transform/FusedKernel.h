//===- transform/FusedKernel.h - Fused kernel representation ----*- C++ -*-===//
///
/// \file
/// The result of applying a fusion partition to a program (Section IV of
/// the paper): each partition block becomes one FusedKernel whose stages
/// are the original kernels in topological order, the last stage being the
/// destination. Every non-destination stage's intermediate image is
/// eliminated from global memory; its placement records how:
///
///   Register          the value lives in a register of the same thread
///                     (point-based fusion, Eq. 5),
///   RegisterRecompute the producer is re-evaluated per window element of
///                     its local consumer (optimized point-to-local
///                     fusion, Eqs. 7-8),
///   SharedTile        the producer is staged into a shared-memory tile
///                     that the local consumer reads (local-to-local
///                     fusion, Eqs. 9-11; also how the *basic* fusion of
///                     prior work [12] implements point-to-local).
///
//===----------------------------------------------------------------------===//

#ifndef KF_TRANSFORM_FUSEDKERNEL_H
#define KF_TRANSFORM_FUSEDKERNEL_H

#include "fusion/Partition.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace kf {

/// Where a stage's output lives inside the fused kernel.
enum class Placement : uint8_t {
  Global,            ///< Destination stage: written to global memory.
  Register,          ///< Point-consumed: register of the computing thread.
  RegisterRecompute, ///< Window-consumed: recomputed per window element.
  SharedTile,        ///< Window-consumed: staged in a shared-memory tile.
};

/// Printable placement name.
const char *placementName(Placement P);

/// Which transform rules to apply; see FusedKernel.h file comment.
enum class FusionStyle : uint8_t {
  Optimized, ///< This paper: recompute point producers into registers.
  Basic,     ///< Prior work [12]: stage window-consumed data in shared mem.
};

/// One original kernel inside a fused kernel.
struct FusedStage {
  KernelId Kernel = 0;
  Placement OutputPlacement = Placement::Global;

  /// Times this stage's body is evaluated per output pixel of the fused
  /// kernel (1 for the destination; window size products for recomputed
  /// chains; amortized tile-fill overhead for shared tiles).
  double Multiplicity = 1.0;

  /// Window width of this stage grown by its in-block producers (Eq. 9);
  /// equals the plain window width for stages without local ancestors.
  int EffectiveWindowWidth = 1;

  /// Halo this stage's output carries for in-block consumers.
  int CarriedHalo = 0;
};

/// A partition block materialized as one launchable kernel.
struct FusedKernel {
  std::string Name;               ///< Joined stage names ("sx+gx").
  std::vector<FusedStage> Stages; ///< Topological order.
  /// Primary destination (the last stage). Under the paper's rules it is
  /// the block's only sink; the multi-destination extension may add more
  /// (see LegalityOptions::AllowMultipleDestinations).
  KernelId Destination = 0;
  /// All destinations, ascending kernel id; singleton under the paper's
  /// rules.
  std::vector<KernelId> Destinations;

  const FusedStage &destinationStage() const { return Stages.back(); }

  /// Stage holding kernel \p Id, or nullptr.
  const FusedStage *findStage(KernelId Id) const;

  /// True if \p Id is one of this kernel's destinations.
  bool isDestination(KernelId Id) const;

  bool isSingleton() const { return Stages.size() == 1; }
};

/// The fused program: one kernel per partition block, in launch order.
struct FusedProgram {
  const Program *Source = nullptr;
  FusionStyle Style = FusionStyle::Optimized;
  Partition SourcePartition;
  std::vector<FusedKernel> Kernels;

  /// Fused kernel producing image \p Id, or nullptr.
  const FusedKernel *producerOf(ImageId Id) const;

  /// Number of kernel launches (one per fused kernel).
  unsigned numLaunches() const {
    return static_cast<unsigned>(Kernels.size());
  }
};

} // namespace kf

#endif // KF_TRANSFORM_FUSEDKERNEL_H
