//===- ir/Kernel.h - Kernels, masks, and operator kinds ---------*- C++ -*-===//
///
/// \file
/// Kernel descriptors of the DSL. Following the paper (Section II-C1) and
/// Hipacc, kernels are classified by what information contributes to an
/// output pixel:
///   - Point operators read exactly one pixel per input (offset (0,0)).
///   - Local operators read a region of pixels described by a mask.
///   - Global operators (reductions) exist in the taxonomy but are not
///     fusion candidates; the fusion engine treats them as barriers.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_KERNEL_H
#define KF_IR_KERNEL_H

#include "image/Border.h"
#include "ir/Expr.h"

#include <cassert>
#include <string>
#include <vector>

namespace kf {

/// Identifies an image inside a Program.
using ImageId = unsigned;
/// Identifies a kernel inside a Program (its index).
using KernelId = unsigned;

/// Compute-pattern taxonomy of Section II-C1.
enum class OperatorKind : uint8_t { Point, Local, Global };

/// Printable name ("point", "local", "global").
const char *operatorKindName(OperatorKind Kind);

/// A convolution/stencil mask: odd-sized window of coefficients. The paper
/// assumes square masks for its size arithmetic (Eq. 9); rectangular masks
/// are representable but the fusion legality check requires square ones.
struct Mask {
  int Width = 0;
  int Height = 0;
  std::vector<float> Weights;

  Mask() = default;
  Mask(int WidthIn, int HeightIn, std::vector<float> WeightsIn)
      : Width(WidthIn), Height(HeightIn), Weights(std::move(WeightsIn)) {
    assert(Width > 0 && Height > 0 && Width % 2 == 1 && Height % 2 == 1 &&
           "mask extents must be positive and odd");
    assert(Weights.size() == static_cast<size_t>(Width) * Height &&
           "mask weight count must match extents");
  }

  /// Uniform mask of the given extent (all coefficients \p Value).
  static Mask uniform(int Width, int Height, float Value);

  int haloX() const { return Width / 2; }
  int haloY() const { return Height / 2; }

  /// Number of window elements; sz() in the paper's notation.
  int size() const { return Width * Height; }

  /// Coefficient at window offset (Dx, Dy), each in [-halo, +halo].
  float at(int Dx, int Dy) const {
    assert(Dx >= -haloX() && Dx <= haloX() && Dy >= -haloY() &&
           Dy <= haloY() && "mask offset out of range");
    return Weights[static_cast<size_t>(Dy + haloY()) * Width + (Dx + haloX())];
  }
};

/// A kernel: one output image computed from zero or more input images by a
/// body expression, executed over the output's iteration space.
struct Kernel {
  std::string Name;
  OperatorKind Kind = OperatorKind::Point;
  std::vector<ImageId> Inputs;
  ImageId Output = 0;
  const Expr *Body = nullptr;

  /// Border handling of window accesses (local kernels only). In Hipacc
  /// this is a property of the accessor; one mode per kernel is enough for
  /// the pipelines of the paper.
  BorderMode Border = BorderMode::Clamp;
  float BorderConstant = 0.0f;

  /// Pixels computed per thread; part of the kernel "header" that must be
  /// compatible across fused kernels (Section II-B2).
  int Granularity = 1;
};

} // namespace kf

#endif // KF_IR_KERNEL_H
