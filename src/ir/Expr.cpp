//===- ir/Expr.cpp ---------------------------------------------------------===//

#include "ir/Expr.h"

#include <cassert>

using namespace kf;

bool kf::isSfuUnOp(UnOp Op) {
  return Op == UnOp::Sqrt || Op == UnOp::Exp || Op == UnOp::Log;
}

bool kf::isSfuBinOp(BinOp Op) { return Op == BinOp::Pow; }

const Expr *ExprContext::make(Expr Node) {
  Arena.push_back(Node);
  return &Arena.back();
}

const Expr *ExprContext::floatConst(float Value) {
  Expr E;
  E.Kind = ExprKind::FloatConst;
  E.Value = Value;
  return make(E);
}

const Expr *ExprContext::coordX() {
  Expr E;
  E.Kind = ExprKind::CoordX;
  return make(E);
}

const Expr *ExprContext::coordY() {
  Expr E;
  E.Kind = ExprKind::CoordY;
  return make(E);
}

const Expr *ExprContext::inputAt(int InputIdx, int OffsetX, int OffsetY,
                                 int Channel) {
  assert(InputIdx >= 0 && "negative input index");
  Expr E;
  E.Kind = ExprKind::InputAt;
  E.InputIdx = InputIdx;
  E.OffsetX = OffsetX;
  E.OffsetY = OffsetY;
  E.Channel = Channel;
  return make(E);
}

const Expr *ExprContext::stencilInput(int InputIdx, int Channel) {
  assert(InputIdx >= 0 && "negative input index");
  Expr E;
  E.Kind = ExprKind::StencilInput;
  E.InputIdx = InputIdx;
  E.Channel = Channel;
  return make(E);
}

const Expr *ExprContext::maskValue() {
  Expr E;
  E.Kind = ExprKind::MaskValue;
  return make(E);
}

const Expr *ExprContext::stencilOffX() {
  Expr E;
  E.Kind = ExprKind::StencilOffX;
  return make(E);
}

const Expr *ExprContext::stencilOffY() {
  Expr E;
  E.Kind = ExprKind::StencilOffY;
  return make(E);
}

const Expr *ExprContext::binary(BinOp Op, const Expr *Lhs, const Expr *Rhs) {
  assert(Lhs && Rhs && "null operand");
  Expr E;
  E.Kind = ExprKind::Binary;
  E.BinaryOp = Op;
  E.Lhs = Lhs;
  E.Rhs = Rhs;
  return make(E);
}

const Expr *ExprContext::unary(UnOp Op, const Expr *Operand) {
  assert(Operand && "null operand");
  Expr E;
  E.Kind = ExprKind::Unary;
  E.UnaryOp = Op;
  E.Lhs = Operand;
  return make(E);
}

const Expr *ExprContext::select(const Expr *Cond, const Expr *TrueValue,
                                const Expr *FalseValue) {
  assert(Cond && TrueValue && FalseValue && "null operand");
  Expr E;
  E.Kind = ExprKind::Select;
  E.Cond = Cond;
  E.Lhs = TrueValue;
  E.Rhs = FalseValue;
  return make(E);
}

const Expr *ExprContext::stencil(int MaskIdx, ReduceOp Op,
                                 const Expr *Element) {
  assert(Element && "null stencil element");
  assert(MaskIdx >= 0 && "negative mask index");
  Expr E;
  E.Kind = ExprKind::Stencil;
  E.MaskIdx = MaskIdx;
  E.Reduce = Op;
  E.Lhs = Element;
  return make(E);
}
