//===- ir/CostInfo.cpp -----------------------------------------------------===//

#include "ir/CostInfo.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace kf;

long long KernelCost::totalReadsPerPixel() const {
  long long Sum = 0;
  for (const InputFootprint &F : Footprints)
    Sum += F.ReadsPerPixel;
  return Sum;
}

namespace {

/// Recursive AST walk accumulating a KernelCost. CurrentMask is the mask of
/// the enclosing Stencil node (-1 outside), Multiplier the number of times
/// the current subtree executes per output pixel.
class CostWalker {
public:
  CostWalker(const Program &P, const Kernel &K, KernelCost &Result)
      : P(P), K(K), Result(Result) {}

  void walk(const Expr *E, long long Multiplier, int CurrentMask) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
    case ExprKind::CoordX:
    case ExprKind::CoordY:
    case ExprKind::StencilOffX:
    case ExprKind::StencilOffY:
    case ExprKind::MaskValue:
      return; // Free: literals and loop-carried scalars.
    case ExprKind::InputAt: {
      InputFootprint &F = Result.Footprints[E->InputIdx];
      F.HaloX = std::max(F.HaloX, std::abs(E->OffsetX));
      F.HaloY = std::max(F.HaloY, std::abs(E->OffsetY));
      F.ReadsPerPixel += Multiplier;
      return;
    }
    case ExprKind::StencilInput: {
      assert(CurrentMask >= 0 && "window access outside a stencil");
      const Mask &M = P.mask(CurrentMask);
      InputFootprint &F = Result.Footprints[E->InputIdx];
      F.HaloX = std::max(F.HaloX, M.haloX());
      F.HaloY = std::max(F.HaloY, M.haloY());
      F.ReadsPerPixel += Multiplier;
      F.WindowAccess = true;
      return;
    }
    case ExprKind::Binary:
      (isSfuBinOp(E->BinaryOp) ? Result.NumSfu : Result.NumAlu) += Multiplier;
      walk(E->Lhs, Multiplier, CurrentMask);
      walk(E->Rhs, Multiplier, CurrentMask);
      return;
    case ExprKind::Unary:
      (isSfuUnOp(E->UnaryOp) ? Result.NumSfu : Result.NumAlu) += Multiplier;
      walk(E->Lhs, Multiplier, CurrentMask);
      return;
    case ExprKind::Select:
      Result.NumAlu += Multiplier;
      walk(E->Cond, Multiplier, CurrentMask);
      walk(E->Lhs, Multiplier, CurrentMask);
      walk(E->Rhs, Multiplier, CurrentMask);
      return;
    case ExprKind::Stencil: {
      assert(CurrentMask < 0 && "nested stencils are not supported");
      const Mask &M = P.mask(E->MaskIdx);
      long long Size = M.size();
      // The reduce combines Size elements with Size - 1 ALU operations.
      Result.NumAlu += Multiplier * (Size - 1);
      walk(E->Lhs, Multiplier * Size, E->MaskIdx);
      return;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

private:
  const Program &P;
  const Kernel &K;
  KernelCost &Result;
};

} // namespace

KernelCost kf::analyzeKernelCost(const Program &P, KernelId Id) {
  const Kernel &K = P.kernel(Id);
  KernelCost Result;
  Result.Footprints.resize(K.Inputs.size());

  CostWalker Walker(P, K, Result);
  Walker.walk(K.Body, /*Multiplier=*/1, /*CurrentMask=*/-1);

  // Writing the output pixel costs one ALU operation; this convention makes
  // the Harris square kernels cost n_ALU = 2 as in the paper's example.
  Result.NumAlu += 1;

  int MaxHalo = 0;
  for (const InputFootprint &F : Result.Footprints)
    MaxHalo = std::max({MaxHalo, F.HaloX, F.HaloY});
  Result.WindowWidth = 2 * MaxHalo + 1;
  return Result;
}
