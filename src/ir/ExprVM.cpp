//===- ir/ExprVM.cpp ----------------------------------------------------------===//

#include "ir/ExprVM.h"

#include "image/Border.h"
#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace kf;

VmMode kf::resolveVmMode(VmMode Requested, bool JitAvailable) {
  if (Requested != VmMode::Auto)
    return Requested;
  if (const char *Env = std::getenv("KF_VM")) {
    if (std::strcmp(Env, "scalar") == 0)
      return VmMode::Scalar;
    if (std::strcmp(Env, "span") == 0)
      return VmMode::Span;
    if (std::strcmp(Env, "jit") == 0)
      return VmMode::Jit;
    // A malformed KF_VM silently changing which interior engine every run
    // uses is a debugging trap: say so, but only once per process (the
    // mode is resolved per launch).
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: ignoring invalid KF_VM='%s' (expected 'scalar', "
                   "'span' or 'jit'); using the default\n",
                   Env);
  }
  // Auto prefers the JIT artifact when the caller already holds one (the
  // artifact is bit-identical to span, only faster); span otherwise.
  return JitAvailable ? VmMode::Jit : VmMode::Span;
}

const char *kf::vmModeName(VmMode Mode) {
  switch (Mode) {
  case VmMode::Auto:
    return "auto";
  case VmMode::Scalar:
    return "scalar";
  case VmMode::Span:
    return "span";
  case VmMode::Jit:
    return "jit";
  }
  KF_UNREACHABLE("unknown VM mode");
}

TilingStrategy kf::resolveTilingStrategy(TilingStrategy Requested) {
  if (Requested != TilingStrategy::Auto)
    return Requested;
  if (const char *Env = std::getenv("KF_TILING")) {
    if (std::strcmp(Env, "interior") == 0)
      return TilingStrategy::InteriorHalo;
    if (std::strcmp(Env, "overlapped") == 0)
      return TilingStrategy::Overlapped;
    if (std::strcmp(Env, "tuned") == 0)
      return TilingStrategy::Tuned;
    // Same warn-once policy as KF_VM: a malformed value silently changing
    // the execution strategy of every run is a debugging trap.
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: ignoring invalid KF_TILING='%s' (expected "
                   "'interior', 'overlapped' or 'tuned'); using interior\n",
                   Env);
  }
  return TilingStrategy::InteriorHalo;
}

const char *kf::tilingStrategyName(TilingStrategy Strategy) {
  switch (Strategy) {
  case TilingStrategy::Auto:
    return "auto";
  case TilingStrategy::InteriorHalo:
    return "interior";
  case TilingStrategy::Overlapped:
    return "overlapped";
  case TilingStrategy::Tuned:
    return "tuned";
  }
  KF_UNREACHABLE("unknown tiling strategy");
}

OptMode kf::resolveOptMode(OptMode Requested) {
  if (Requested != OptMode::Auto)
    return Requested;
  if (const char *Env = std::getenv("KF_OPT")) {
    if (std::strcmp(Env, "on") == 0)
      return OptMode::On;
    if (std::strcmp(Env, "off") == 0)
      return OptMode::Off;
    // Same warn-once policy as KF_VM: a malformed value silently changing
    // which bytecode every session executes is a debugging trap.
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: ignoring invalid KF_OPT='%s' (expected 'on' or "
                   "'off'); using on\n",
                   Env);
  }
  return OptMode::On;
}

const char *kf::optModeName(OptMode Mode) {
  switch (Mode) {
  case OptMode::Auto:
    return "auto";
  case OptMode::On:
    return "on";
  case OptMode::Off:
    return "off";
  }
  KF_UNREACHABLE("unknown opt mode");
}

namespace {

/// Bindings of stencil-scoped scalars while compiling an element.
struct StencilBinding {
  int Dx = 0;
  int Dy = 0;
  float MaskVal = 0.0f;
  bool Active = false;
};

/// Recursive compiler from expression trees to the linear VM form. When
/// \p Eliminated maps an input image to a stage index, reads of that
/// image compile to StageCall instructions (fused-kernel compilation).
class VmCompiler {
public:
  VmCompiler(const Program &P, const Kernel *K = nullptr,
             const std::map<ImageId, uint16_t> *Eliminated = nullptr)
      : P(P), K(K), Eliminated(Eliminated) {}

  VmProgram compile(const Expr *Body) {
    VmProgram VM;
    VM.ResultReg = emit(Body, StencilBinding(), VM);
    VM.NumRegs = NextReg;
    return VM;
  }

private:
  uint16_t fresh() {
    assert(NextReg < 0xFFFF && "register file exhausted");
    return static_cast<uint16_t>(NextReg++);
  }

  uint16_t emitConst(float Value, VmProgram &VM) {
    VmInst Inst;
    Inst.Op = VmOp::Const;
    Inst.Dst = fresh();
    Inst.Imm = Value;
    VM.Insts.push_back(Inst);
    return Inst.Dst;
  }

  uint16_t emitBinary(VmOp Op, uint16_t A, uint16_t B, VmProgram &VM) {
    VmInst Inst;
    Inst.Op = Op;
    Inst.Dst = fresh();
    Inst.A = A;
    Inst.B = B;
    VM.Insts.push_back(Inst);
    return Inst.Dst;
  }

  uint16_t emit(const Expr *E, const StencilBinding &Env, VmProgram &VM) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
      return emitConst(E->Value, VM);
    case ExprKind::CoordX:
    case ExprKind::CoordY: {
      VmInst Inst;
      Inst.Op = E->Kind == ExprKind::CoordX ? VmOp::CoordX : VmOp::CoordY;
      Inst.Dst = fresh();
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::MaskValue:
      assert(Env.Active && "mask value outside a stencil");
      return emitConst(Env.MaskVal, VM);
    case ExprKind::StencilOffX:
      assert(Env.Active && "stencil offset outside a stencil");
      return emitConst(static_cast<float>(Env.Dx), VM);
    case ExprKind::StencilOffY:
      assert(Env.Active && "stencil offset outside a stencil");
      return emitConst(static_cast<float>(Env.Dy), VM);
    case ExprKind::InputAt:
    case ExprKind::StencilInput: {
      VmInst Inst;
      Inst.Op = VmOp::Load;
      Inst.Dst = fresh();
      Inst.InputIdx = static_cast<int16_t>(E->InputIdx);
      if (E->Kind == ExprKind::InputAt) {
        Inst.Ox = static_cast<int16_t>(E->OffsetX);
        Inst.Oy = static_cast<int16_t>(E->OffsetY);
      } else {
        assert(Env.Active && "window access outside a stencil");
        Inst.Ox = static_cast<int16_t>(Env.Dx);
        Inst.Oy = static_cast<int16_t>(Env.Dy);
      }
      Inst.Channel = static_cast<int16_t>(E->Channel);
      if (Eliminated) {
        assert(K && "staged compilation needs the owning kernel");
        auto Stage = Eliminated->find(K->Inputs[E->InputIdx]);
        if (Stage != Eliminated->end()) {
          Inst.Op = VmOp::StageCall;
          Inst.Sel = Stage->second;
        }
      }
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Binary: {
      uint16_t A = emit(E->Lhs, Env, VM);
      uint16_t B = emit(E->Rhs, Env, VM);
      VmOp Op = VmOp::Add;
      switch (E->BinaryOp) {
      case BinOp::Add:
        Op = VmOp::Add;
        break;
      case BinOp::Sub:
        Op = VmOp::Sub;
        break;
      case BinOp::Mul:
        Op = VmOp::Mul;
        break;
      case BinOp::Div:
        Op = VmOp::Div;
        break;
      case BinOp::Min:
        Op = VmOp::Min;
        break;
      case BinOp::Max:
        Op = VmOp::Max;
        break;
      case BinOp::Pow:
        Op = VmOp::Pow;
        break;
      case BinOp::CmpLT:
        Op = VmOp::CmpLT;
        break;
      case BinOp::CmpGT:
        Op = VmOp::CmpGT;
        break;
      }
      return emitBinary(Op, A, B, VM);
    }
    case ExprKind::Unary: {
      uint16_t A = emit(E->Lhs, Env, VM);
      VmOp Op = VmOp::Neg;
      switch (E->UnaryOp) {
      case UnOp::Neg:
        Op = VmOp::Neg;
        break;
      case UnOp::Abs:
        Op = VmOp::Abs;
        break;
      case UnOp::Sqrt:
        Op = VmOp::Sqrt;
        break;
      case UnOp::Exp:
        Op = VmOp::Exp;
        break;
      case UnOp::Log:
        Op = VmOp::Log;
        break;
      case UnOp::Floor:
        Op = VmOp::Floor;
        break;
      }
      VmInst Inst;
      Inst.Op = Op;
      Inst.Dst = fresh();
      Inst.A = A;
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Select: {
      VmInst Inst;
      Inst.Op = VmOp::Select;
      Inst.Sel = emit(E->Cond, Env, VM);
      Inst.A = emit(E->Lhs, Env, VM);
      Inst.B = emit(E->Rhs, Env, VM);
      Inst.Dst = fresh();
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Stencil: {
      // Fully unroll the reduction: one element expansion per window
      // position with mask value and offsets baked as constants; combine
      // with the reduce operator in evaluation order.
      const Mask &M = P.mask(E->MaskIdx);
      uint16_t Acc = 0;
      bool First = true;
      for (int Dy = -M.haloY(); Dy <= M.haloY(); ++Dy)
        for (int Dx = -M.haloX(); Dx <= M.haloX(); ++Dx) {
          StencilBinding Elem{Dx, Dy, M.at(Dx, Dy), true};
          uint16_t Value = emit(E->Lhs, Elem, VM);
          if (First) {
            Acc = Value;
            First = false;
            continue;
          }
          VmOp Op = VmOp::Add;
          switch (E->Reduce) {
          case ReduceOp::Sum:
            Op = VmOp::Add;
            break;
          case ReduceOp::Product:
            Op = VmOp::Mul;
            break;
          case ReduceOp::Min:
            Op = VmOp::Min;
            break;
          case ReduceOp::Max:
            Op = VmOp::Max;
            break;
          }
          Acc = emitBinary(Op, Acc, Value, VM);
        }
      return Acc;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

  const Program &P;
  const Kernel *K;
  const std::map<ImageId, uint16_t> *Eliminated;
  unsigned NextReg = 0;
};

/// Evaluates one non-load, non-call instruction into \p Regs. Shared by
/// the scalar evaluators.
inline void evalAluInst(const VmInst &Inst, float *Regs, int X, int Y) {
  switch (Inst.Op) {
  case VmOp::Const:
    Regs[Inst.Dst] = Inst.Imm;
    break;
  case VmOp::CoordX:
    Regs[Inst.Dst] = static_cast<float>(X);
    break;
  case VmOp::CoordY:
    Regs[Inst.Dst] = static_cast<float>(Y);
    break;
  case VmOp::Add:
    Regs[Inst.Dst] = Regs[Inst.A] + Regs[Inst.B];
    break;
  case VmOp::Sub:
    Regs[Inst.Dst] = Regs[Inst.A] - Regs[Inst.B];
    break;
  case VmOp::Mul:
    Regs[Inst.Dst] = Regs[Inst.A] * Regs[Inst.B];
    break;
  case VmOp::Div:
    Regs[Inst.Dst] = Regs[Inst.A] / Regs[Inst.B];
    break;
  case VmOp::Min:
    Regs[Inst.Dst] = std::min(Regs[Inst.A], Regs[Inst.B]);
    break;
  case VmOp::Max:
    Regs[Inst.Dst] = std::max(Regs[Inst.A], Regs[Inst.B]);
    break;
  case VmOp::Pow:
    Regs[Inst.Dst] = std::pow(Regs[Inst.A], Regs[Inst.B]);
    break;
  case VmOp::CmpLT:
    Regs[Inst.Dst] = Regs[Inst.A] < Regs[Inst.B] ? 1.0f : 0.0f;
    break;
  case VmOp::CmpGT:
    Regs[Inst.Dst] = Regs[Inst.A] > Regs[Inst.B] ? 1.0f : 0.0f;
    break;
  case VmOp::Neg:
    Regs[Inst.Dst] = -Regs[Inst.A];
    break;
  case VmOp::Abs:
    Regs[Inst.Dst] = std::abs(Regs[Inst.A]);
    break;
  case VmOp::Sqrt:
    Regs[Inst.Dst] = std::sqrt(Regs[Inst.A]);
    break;
  case VmOp::Exp:
    Regs[Inst.Dst] = std::exp(Regs[Inst.A]);
    break;
  case VmOp::Log:
    Regs[Inst.Dst] = std::log(Regs[Inst.A]);
    break;
  case VmOp::Floor:
    Regs[Inst.Dst] = std::floor(Regs[Inst.A]);
    break;
  case VmOp::Select:
    Regs[Inst.Dst] = Regs[Inst.Sel] != 0.0f ? Regs[Inst.A] : Regs[Inst.B];
    break;
  case VmOp::Load:
  case VmOp::StageCall:
    KF_UNREACHABLE("memory op reached the ALU path");
  }
}

} // namespace

VmProgram kf::compileKernelBody(const Program &P, KernelId Id) {
  VmCompiler Compiler(P);
  return Compiler.compile(P.kernel(Id).Body);
}

int kf::vmHalo(const VmProgram &VM) {
  int Halo = 0;
  for (const VmInst &Inst : VM.Insts)
    if (Inst.Op == VmOp::Load || Inst.Op == VmOp::StageCall)
      Halo = std::max(Halo,
                      std::max(std::abs(static_cast<int>(Inst.Ox)),
                               std::abs(static_cast<int>(Inst.Oy))));
  return Halo;
}

/// Shared evaluation loop; \p Bordered selects bordered vs direct loads.
template <bool Bordered>
static float runVmImpl(const VmProgram &VM, const Program &P, KernelId Id,
                       const std::vector<Image> &Pool, int X, int Y,
                       int Channel, float *Regs) {
  const Kernel &K = P.kernel(Id);
  for (const VmInst &Inst : VM.Insts) {
    if (Inst.Op == VmOp::Load) {
      const Image &Img = Pool[K.Inputs[Inst.InputIdx]];
      int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
      if (Bordered)
        Regs[Inst.Dst] = sampleWithBorder(Img, X + Inst.Ox, Y + Inst.Oy,
                                          Ch, K.Border, K.BorderConstant);
      else
        Regs[Inst.Dst] = Img.at(X + Inst.Ox, Y + Inst.Oy, Ch);
      continue;
    }
    evalAluInst(Inst, Regs, X, Y);
  }
  return Regs[VM.ResultReg];
}

float kf::runVm(const VmProgram &VM, const Program &P, KernelId Id,
                const std::vector<Image> &Pool, int X, int Y, int Channel,
                float *Regs) {
  return runVmImpl<true>(VM, P, Id, Pool, X, Y, Channel, Regs);
}

float kf::runVmInterior(const VmProgram &VM, const Program &P, KernelId Id,
                        const std::vector<Image> &Pool, int X, int Y,
                        int Channel, float *Regs) {
  return runVmImpl<false>(VM, P, Id, Pool, X, Y, Channel, Regs);
}

//===----------------------------------------------------------------------===//
// Row-wise (instruction-major) interior evaluation
//===----------------------------------------------------------------------===//

namespace {

/// Executes \p Code instruction-major over pixels [X0, X1) of row \p Y.
/// \p Inputs resolves Load pool images; \p CallRow handles StageCall ops
/// (writes the callee's value per pixel into the destination row).
template <class CallRowFn>
void evalRowImpl(const VmProgram &Code, const std::vector<Image> &Pool,
                 const std::vector<ImageId> &Inputs, int Y, int X0, int X1,
                 int Channel, float *RowRegs, float *Out, int OutStride,
                 CallRowFn &&CallRow) {
  const int W = X1 - X0;
  auto Row = [&](uint16_t Reg) {
    return RowRegs + static_cast<size_t>(Reg) * W;
  };
  for (const VmInst &Inst : Code.Insts) {
    float *D = Row(Inst.Dst);
    switch (Inst.Op) {
    case VmOp::Const:
      for (int I = 0; I != W; ++I)
        D[I] = Inst.Imm;
      break;
    case VmOp::CoordX:
      for (int I = 0; I != W; ++I)
        D[I] = static_cast<float>(X0 + I);
      break;
    case VmOp::CoordY:
      for (int I = 0; I != W; ++I)
        D[I] = static_cast<float>(Y);
      break;
    case VmOp::Load: {
      const Image &Img = Pool[Inputs[Inst.InputIdx]];
      int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
      assert(Y + Inst.Oy >= 0 && Y + Inst.Oy < Img.height() &&
             X0 + Inst.Ox >= 0 && X1 - 1 + Inst.Ox < Img.width() &&
             "row evaluation outside the interior region");
      const float *Base =
          Img.data().data() +
          (static_cast<size_t>(Y + Inst.Oy) * Img.width() + (X0 + Inst.Ox)) *
              Img.channels() +
          Ch;
      const int Stride = Img.channels();
      for (int I = 0; I != W; ++I)
        D[I] = Base[static_cast<size_t>(I) * Stride];
      break;
    }
    case VmOp::Add: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] + B[I];
      break;
    }
    case VmOp::Sub: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] - B[I];
      break;
    }
    case VmOp::Mul: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] * B[I];
      break;
    }
    case VmOp::Div: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] / B[I];
      break;
    }
    case VmOp::Min: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = std::min(A[I], B[I]);
      break;
    }
    case VmOp::Max: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = std::max(A[I], B[I]);
      break;
    }
    case VmOp::Pow: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = std::pow(A[I], B[I]);
      break;
    }
    case VmOp::CmpLT: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] < B[I] ? 1.0f : 0.0f;
      break;
    }
    case VmOp::CmpGT: {
      const float *A = Row(Inst.A), *B = Row(Inst.B);
      for (int I = 0; I != W; ++I)
        D[I] = A[I] > B[I] ? 1.0f : 0.0f;
      break;
    }
    case VmOp::Neg: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = -A[I];
      break;
    }
    case VmOp::Abs: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = std::abs(A[I]);
      break;
    }
    case VmOp::Sqrt: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = std::sqrt(A[I]);
      break;
    }
    case VmOp::Exp: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = std::exp(A[I]);
      break;
    }
    case VmOp::Log: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = std::log(A[I]);
      break;
    }
    case VmOp::Floor: {
      const float *A = Row(Inst.A);
      for (int I = 0; I != W; ++I)
        D[I] = std::floor(A[I]);
      break;
    }
    case VmOp::Select: {
      const float *A = Row(Inst.A), *B = Row(Inst.B), *S = Row(Inst.Sel);
      for (int I = 0; I != W; ++I)
        D[I] = S[I] != 0.0f ? A[I] : B[I];
      break;
    }
    case VmOp::StageCall:
      CallRow(Inst, D);
      break;
    }
  }
  const float *Result = Row(Code.ResultReg);
  for (int I = 0; I != W; ++I)
    Out[static_cast<size_t>(I) * OutStride] = Result[I];
}

} // namespace

void kf::runVmRow(const VmProgram &VM, const Program &P, KernelId Id,
                  const std::vector<Image> &Pool, int Y, int X0, int X1,
                  int Channel, float *RowRegs, float *Out, int OutStride) {
  if (X1 <= X0)
    return;
  const Kernel &K = P.kernel(Id);
  evalRowImpl(VM, Pool, K.Inputs, Y, X0, X1, Channel, RowRegs, Out,
              OutStride, [](const VmInst &, float *) {
                KF_UNREACHABLE("StageCall in a plain kernel body");
              });
}

void kf::runVmSpan(const VmProgram &VM, const Program &P, KernelId Id,
                   const std::vector<Image> &Pool, int Y, int X0, int X1,
                   int Channel, float *LaneRegs, float *Out, int OutStride) {
  const Kernel &K = P.kernel(Id);
  // Chunk the span into lanes: every chunk's per-register stride is its
  // own width (at most VmLaneWidth), so the register file of a chunk
  // stays within the fixed lane buffer. The tail chunk simply runs the
  // same contiguous loops with a smaller bound.
  for (int C0 = X0; C0 < X1; C0 += VmLaneWidth) {
    const int C1 = std::min(X1, C0 + VmLaneWidth);
    evalRowImpl(VM, Pool, K.Inputs, Y, C0, C1, Channel, LaneRegs,
                Out + static_cast<size_t>(C0 - X0) * OutStride, OutStride,
                [](const VmInst &, float *) {
                  KF_UNREACHABLE("StageCall in a plain kernel body");
                });
  }
}

//===----------------------------------------------------------------------===//
// Staged (fused-kernel) programs
//===----------------------------------------------------------------------===//

StagedVmProgram
kf::compileStagedProgram(const Program &P,
                         const std::vector<KernelId> &StageKernels,
                         const std::vector<bool> &IsEliminated) {
  assert(StageKernels.size() == IsEliminated.size() &&
         "one elimination flag per stage");
  assert(StageKernels.size() <= 0xFFFF && "stage index must fit Sel");

  std::map<ImageId, uint16_t> Eliminated;
  for (size_t I = 0; I != StageKernels.size(); ++I)
    if (IsEliminated[I])
      Eliminated[P.kernel(StageKernels[I]).Output] =
          static_cast<uint16_t>(I);

  StagedVmProgram SP;
  SP.Reach.resize(StageKernels.size(), 0);
  unsigned RegBase = 0;
  int RefW = -1, RefH = -1;
  auto noteExtent = [&](int W, int H) {
    if (RefW < 0) {
      RefW = W;
      RefH = H;
    } else if (W != RefW || H != RefH) {
      SP.UniformExtents = false;
    }
  };

  for (size_t I = 0; I != StageKernels.size(); ++I) {
    const Kernel &K = P.kernel(StageKernels[I]);
    VmStage Stage;
    VmCompiler Compiler(P, &K, &Eliminated);
    Stage.Code = Compiler.compile(K.Body);
    Stage.Inputs = K.Inputs;
    Stage.Border = K.Border;
    Stage.BorderConstant = K.BorderConstant;
    const ImageInfo &OutInfo = P.image(K.Output);
    Stage.OutW = OutInfo.Width;
    Stage.OutH = OutInfo.Height;
    Stage.RegBase = RegBase;
    RegBase += Stage.Code.NumRegs;
    noteExtent(Stage.OutW, Stage.OutH);

    // Transitive reach: direct load offsets, plus call offsets grown by
    // the callee's reach (callees precede their consumers in stage
    // order, so Reach is final when read).
    int Reach = 0;
    for (const VmInst &Inst : Stage.Code.Insts) {
      int Off = std::max(std::abs(static_cast<int>(Inst.Ox)),
                         std::abs(static_cast<int>(Inst.Oy)));
      if (Inst.Op == VmOp::Load) {
        const ImageInfo &In = P.image(K.Inputs[Inst.InputIdx]);
        noteExtent(In.Width, In.Height);
        Reach = std::max(Reach, Off);
      } else if (Inst.Op == VmOp::StageCall) {
        assert(Inst.Sel < I && "stage call to a non-preceding stage");
        Reach = std::max(Reach, Off + SP.Reach[Inst.Sel]);
      }
    }
    SP.Reach[I] = Reach;
    SP.Stages.push_back(std::move(Stage));
  }
  SP.NumRegs = RegBase;
  return SP;
}

namespace {

/// Scalar staged evaluation; \p Bordered selects the halo-correct slow
/// path (bordered loads, index-exchanged stage calls) vs the interior
/// fast path (direct loads, unchecked calls).
template <bool Bordered>
float evalStagedVm(const StagedVmProgram &SP, uint16_t StageIdx,
                   const std::vector<Image> &Pool, int X, int Y, int Channel,
                   float *Regs, bool UseIndexExchange) {
  const VmStage &Stage = SP.Stages[StageIdx];
  float *Frame = Regs + Stage.RegBase;
  for (const VmInst &Inst : Stage.Code.Insts) {
    switch (Inst.Op) {
    case VmOp::Load: {
      const Image &Img = Pool[Stage.Inputs[Inst.InputIdx]];
      assert(!Img.empty() && "reading an unmaterialized image");
      int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
      if (Bordered)
        Frame[Inst.Dst] =
            sampleWithBorder(Img, X + Inst.Ox, Y + Inst.Oy, Ch,
                             Stage.Border, Stage.BorderConstant);
      else
        Frame[Inst.Dst] = Img.at(X + Inst.Ox, Y + Inst.Oy, Ch);
      break;
    }
    case VmOp::StageCall: {
      const VmStage &Callee = SP.Stages[Inst.Sel];
      int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
      int TX = X + Inst.Ox;
      int TY = Y + Inst.Oy;
      if (Bordered) {
        bool Exterior = TX < 0 || TX >= Callee.OutW || TY < 0 ||
                        TY >= Callee.OutH;
        if (Exterior && UseIndexExchange) {
          // Index exchange (Section IV-B): exterior accesses to the
          // eliminated intermediate are exchanged per the *consuming*
          // stage's border handling before the producer is evaluated.
          int EX = exchangeIndex(TX, Callee.OutW, Stage.Border);
          int EY = exchangeIndex(TY, Callee.OutH, Stage.Border);
          if (EX < 0 || EY < 0) {
            Frame[Inst.Dst] = Stage.BorderConstant;
            break;
          }
          TX = EX;
          TY = EY;
        }
        // Without the exchange the producer is (incorrectly) evaluated
        // at the raw exterior position -- reproducing Figure 4b.
      }
      Frame[Inst.Dst] = evalStagedVm<Bordered>(SP, Inst.Sel, Pool, TX, TY,
                                               Ch, Regs, UseIndexExchange);
      break;
    }
    default:
      evalAluInst(Inst, Frame, X, Y);
      break;
    }
  }
  return Frame[Stage.Code.ResultReg];
}

} // namespace

float kf::runStagedVm(const StagedVmProgram &SP, uint16_t RootStage,
                      const std::vector<Image> &Pool, int X, int Y,
                      int Channel, float *Regs, bool UseIndexExchange) {
  return evalStagedVm<true>(SP, RootStage, Pool, X, Y, Channel, Regs,
                            UseIndexExchange);
}

float kf::runStagedVmInterior(const StagedVmProgram &SP, uint16_t RootStage,
                              const std::vector<Image> &Pool, int X, int Y,
                              int Channel, float *Regs) {
  return evalStagedVm<false>(SP, RootStage, Pool, X, Y, Channel, Regs, true);
}

namespace {

/// Row-wise interior evaluation of one stage over columns [X0, X1) of
/// row \p Y. Stage calls recurse row-wise too -- the callee streams its
/// subprogram across the (offset-shifted) scanline straight into the
/// caller's destination row register -- so the whole staged program
/// stays instruction-major. \p RowRegs holds SP.NumRegs * RowWidth
/// floats partitioned by the stages' RegBase frames; the acyclic call
/// graph guarantees a stage never reuses a live frame, and sequential
/// calls to the same callee simply overwrite its frame.
void evalStagedRow(const StagedVmProgram &SP, uint16_t StageIdx,
                   const std::vector<Image> &Pool, int Y, int X0, int X1,
                   int Channel, float *RowRegs, size_t RowWidth, float *Out,
                   int OutStride) {
  const VmStage &Stage = SP.Stages[StageIdx];
  float *Frame = RowRegs + static_cast<size_t>(Stage.RegBase) * RowWidth;
  evalRowImpl(Stage.Code, Pool, Stage.Inputs, Y, X0, X1, Channel, Frame,
              Out, OutStride, [&](const VmInst &Inst, float *D) {
                int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
                evalStagedRow(SP, Inst.Sel, Pool, Y + Inst.Oy,
                              X0 + Inst.Ox, X1 + Inst.Ox, Ch, RowRegs,
                              RowWidth, D, 1);
              });
}

} // namespace

void kf::runStagedVmRow(const StagedVmProgram &SP, uint16_t RootStage,
                        const std::vector<Image> &Pool, int Y, int X0,
                        int X1, int Channel, float *RowRegs, float *Out,
                        int OutStride) {
  if (X1 <= X0)
    return;
  evalStagedRow(SP, RootStage, Pool, Y, X0, X1, Channel, RowRegs,
                static_cast<size_t>(X1 - X0), Out, OutStride);
}

void kf::runStagedVmSpan(const StagedVmProgram &SP, uint16_t RootStage,
                         const std::vector<Image> &Pool, int Y, int X0,
                         int X1, int Channel, float *LaneRegs,
                         float *Out, int OutStride) {
  // Chunked lane-buffer evaluation: stage frames partition the buffer at
  // RegBase * VmLaneWidth while each chunk's per-register stride is the
  // chunk width (<= VmLaneWidth), so no frame ever overruns into its
  // neighbour (the validator's KF-B11 invariant) and the whole register
  // working set is SP.NumRegs * VmLaneWidth floats. StageCall recursion
  // inside evalStagedRow shifts the chunk's column range per call, so the
  // callee streams over exactly the caller's lanes.
  for (int C0 = X0; C0 < X1; C0 += VmLaneWidth) {
    const int C1 = std::min(X1, C0 + VmLaneWidth);
    evalStagedRow(SP, RootStage, Pool, Y, C0, C1, Channel, LaneRegs,
                  static_cast<size_t>(VmLaneWidth),
                  Out + static_cast<size_t>(C0 - X0) * OutStride, OutStride);
  }
}

//===----------------------------------------------------------------------===//
// Overlapped tiling
//===----------------------------------------------------------------------===//

OverlapSchedule kf::buildOverlapSchedule(const StagedVmProgram &SP,
                                         uint16_t Root, int Channels) {
  OverlapSchedule Schedule;
  if (!SP.UniformExtents || Root >= SP.Stages.size() || Channels <= 0)
    return Schedule; // Valid stays false: no interior, no planes.

  Schedule.PerChannel.resize(Channels);
  for (int C = 0; C != Channels; ++C) {
    // Margin per demanded (stage, channel): the maximum stage-call
    // distance from the root. Walking stages in decreasing index is a
    // reverse topological order (calls always target preceding stages),
    // so a stage's margin is final before its own calls are expanded.
    std::vector<std::map<int, int>> Margin(Root + 1);
    Margin[Root][C] = 0;
    for (int S = Root; S >= 0; --S) {
      for (const auto &[Ch, M] : Margin[S]) {
        for (const VmInst &Inst : SP.Stages[S].Code.Insts) {
          if (Inst.Op != VmOp::StageCall)
            continue;
          assert(Inst.Sel < S && "stage call to a non-preceding stage");
          int Off = std::max(std::abs(static_cast<int>(Inst.Ox)),
                             std::abs(static_cast<int>(Inst.Oy)));
          int CalleeCh = Inst.Channel < 0 ? Ch : Inst.Channel;
          auto [It, Inserted] = Margin[Inst.Sel].emplace(CalleeCh, M + Off);
          if (!Inserted)
            It->second = std::max(It->second, M + Off);
        }
      }
    }
    // Materialization order: ascending stage index puts every callee
    // before its callers, so a plane only reads already-filled planes.
    for (int S = 0; S <= static_cast<int>(Root); ++S)
      for (const auto &[Ch, M] : Margin[S]) {
        if (S == Root && Ch == C)
          continue; // The root writes the destination, not a plane.
        Schedule.PerChannel[C].push_back(
            {static_cast<uint16_t>(S), static_cast<int16_t>(Ch), M});
        Schedule.MaxMargin = std::max(Schedule.MaxMargin, M);
      }
  }
  Schedule.Valid = true;
  return Schedule;
}

size_t kf::overlapPlaneFloats(const OverlapSchedule &Schedule, int RootW,
                              int RootH) {
  size_t Max = 0;
  for (const std::vector<OverlapPlane> &Planes : Schedule.PerChannel) {
    size_t Floats = 0;
    for (const OverlapPlane &Plane : Planes)
      Floats += static_cast<size_t>(RootW + 2 * Plane.Margin) *
                (RootH + 2 * Plane.Margin);
    Max = std::max(Max, Floats);
  }
  return Max;
}

namespace {

/// A materialized plane during one runOverlappedTile call: the grown
/// region [X0, X0+W) x [Y0, Y0+H) backed by \p Data (pitch = W).
struct PlaneView {
  int X0 = 0;
  int Y0 = 0;
  int W = 0;
  int H = 0;
  float *Data = nullptr;
};

/// Evaluates stage \p StageIdx of \p SP over region
/// [RX0, RX1) x [RY0, RY1) at channel \p Ch, resolving StageCall ops
/// against the plane views of \p Resolve, writing result (x, y) to
/// Dst[(y - RY0) * DstPitch + (x - RX0) * DstStride]. Span mode streams
/// evalRowImpl chunks (plane reads are contiguous row copies); scalar
/// mode dispatches per pixel. Both run exactly the instruction streams
/// the interior/halo strategy runs, so values are bit-identical.
template <class ResolveFn>
void evalOverlapRegion(const StagedVmProgram &SP, uint16_t StageIdx,
                       const std::vector<Image> &Pool, int RX0, int RX1,
                       int RY0, int RY1, int Ch, VmMode Mode, float *Regs,
                       float *Dst, size_t DstPitch, int DstStride,
                       ResolveFn &&Resolve) {
  const VmStage &Stage = SP.Stages[StageIdx];
  if (Mode == VmMode::Span) {
    float *Frame =
        Regs + static_cast<size_t>(Stage.RegBase) * VmLaneWidth;
    for (int Y = RY0; Y != RY1; ++Y) {
      float *DstRow = Dst + static_cast<size_t>(Y - RY0) * DstPitch;
      for (int C0 = RX0; C0 < RX1; C0 += VmLaneWidth) {
        const int C1 = std::min(RX1, C0 + VmLaneWidth);
        evalRowImpl(
            Stage.Code, Pool, Stage.Inputs, Y, C0, C1, Ch, Frame,
            DstRow + static_cast<size_t>(C0 - RX0) * DstStride, DstStride,
            [&](const VmInst &Inst, float *D) {
              const PlaneView &V =
                  Resolve(Inst.Sel, Inst.Channel < 0 ? Ch : Inst.Channel);
              assert(Y + Inst.Oy >= V.Y0 && Y + Inst.Oy < V.Y0 + V.H &&
                     C0 + Inst.Ox >= V.X0 &&
                     C1 - 1 + Inst.Ox < V.X0 + V.W &&
                     "plane read outside the materialized margin");
              const float *Src =
                  V.Data +
                  static_cast<size_t>(Y + Inst.Oy - V.Y0) * V.W +
                  (C0 + Inst.Ox - V.X0);
              for (int I = 0; I != C1 - C0; ++I)
                D[I] = Src[I];
            });
      }
    }
    return;
  }

  // Scalar mode: per-pixel dispatch, stage calls are O(1) plane reads
  // (no recursion -- the recompute already happened into the planes).
  float *Frame = Regs + Stage.RegBase;
  for (int Y = RY0; Y != RY1; ++Y) {
    float *Px = Dst + static_cast<size_t>(Y - RY0) * DstPitch;
    for (int X = RX0; X != RX1; ++X, Px += DstStride) {
      for (const VmInst &Inst : Stage.Code.Insts) {
        switch (Inst.Op) {
        case VmOp::Load: {
          const Image &Img = Pool[Stage.Inputs[Inst.InputIdx]];
          int LCh = Inst.Channel < 0 ? Ch : Inst.Channel;
          Frame[Inst.Dst] = Img.at(X + Inst.Ox, Y + Inst.Oy, LCh);
          break;
        }
        case VmOp::StageCall: {
          const PlaneView &V =
              Resolve(Inst.Sel, Inst.Channel < 0 ? Ch : Inst.Channel);
          assert(Y + Inst.Oy >= V.Y0 && Y + Inst.Oy < V.Y0 + V.H &&
                 X + Inst.Ox >= V.X0 && X + Inst.Ox < V.X0 + V.W &&
                 "plane read outside the materialized margin");
          Frame[Inst.Dst] =
              V.Data[static_cast<size_t>(Y + Inst.Oy - V.Y0) * V.W +
                     (X + Inst.Ox - V.X0)];
          break;
        }
        default:
          evalAluInst(Inst, Frame, X, Y);
          break;
        }
      }
      *Px = Frame[Stage.Code.ResultReg];
    }
  }
}

} // namespace

void kf::runOverlappedTile(const StagedVmProgram &SP, uint16_t Root,
                           const OverlapSchedule &Schedule,
                           const std::vector<Image> &Pool, int X0, int X1,
                           int Y0, int Y1, int Channels, VmMode Mode,
                           float *PlaneScratch, float *Regs, float *OutBase,
                           int OutWidth, OverlapTileStats *Stats) {
  assert(Schedule.Valid && "overlapped execution without a valid schedule");
  assert(Mode != VmMode::Auto && "tile execution needs a resolved mode");
  const int RootW = X1 - X0, RootH = Y1 - Y0;
  if (RootW <= 0 || RootH <= 0)
    return;
  const long long RootArea = static_cast<long long>(RootW) * RootH;

  for (int C = 0; C != Channels; ++C) {
    const std::vector<OverlapPlane> &Planes = Schedule.PerChannel[C];
    // Lay the channel's planes out back to back in the scratch; every
    // channel reuses the same block (overlapPlaneFloats is the maximum).
    std::vector<PlaneView> Views(Planes.size());
    size_t Offset = 0;
    for (size_t I = 0; I != Planes.size(); ++I) {
      const OverlapPlane &Plane = Planes[I];
      PlaneView &V = Views[I];
      V.X0 = X0 - Plane.Margin;
      V.Y0 = Y0 - Plane.Margin;
      V.W = RootW + 2 * Plane.Margin;
      V.H = RootH + 2 * Plane.Margin;
      V.Data = PlaneScratch + Offset;
      Offset += static_cast<size_t>(V.W) * V.H;
    }
    auto Resolve = [&](uint16_t Stage, int Ch) -> const PlaneView & {
      // The plane lists are tiny (demanded stages x channels); a linear
      // scan beats a hash per stage-call instruction.
      for (size_t I = 0; I != Planes.size(); ++I)
        if (Planes[I].Stage == Stage && Planes[I].Channel == Ch)
          return Views[I];
      KF_UNREACHABLE("stage call outside the overlap schedule");
    };

    // Materialize demanded planes (callees first), then the root region
    // straight into the destination image.
    for (size_t I = 0; I != Planes.size(); ++I) {
      const PlaneView &V = Views[I];
      evalOverlapRegion(SP, Planes[I].Stage, Pool, V.X0, V.X0 + V.W, V.Y0,
                        V.Y0 + V.H, Planes[I].Channel, Mode, Regs, V.Data,
                        V.W, 1, Resolve);
      if (Stats) {
        const long long Area = static_cast<long long>(V.W) * V.H;
        Stats->OverlapPixels += Area - RootArea;
        Stats->ComputedPixels += Area;
      }
    }
    evalOverlapRegion(SP, Root, Pool, X0, X1, Y0, Y1, C, Mode, Regs,
                      OutBase +
                          (static_cast<size_t>(Y0) * OutWidth + X0) *
                              Channels +
                          C,
                      static_cast<size_t>(OutWidth) * Channels, Channels,
                      Resolve);
    if (Stats)
      Stats->ComputedPixels += RootArea;
  }
}

//===----------------------------------------------------------------------===//
// Serial unfused driver (the parallel one lives in sim/Executor)
//===----------------------------------------------------------------------===//

void kf::runUnfusedVm(const Program &P, std::vector<Image> &Pool) {
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  std::optional<std::vector<Digraph::NodeId>> Order =
      P.buildKernelDag().topologicalOrder();
  assert(Order && "kernel DAG has a cycle");

  std::vector<float> Regs;
  std::vector<float> RowRegs;
  for (KernelId Id : *Order) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Info = P.image(K.Output);
    VmProgram VM = compileKernelBody(P, Id);
    Regs.resize(std::max<size_t>(Regs.size(), VM.NumRegs));
    Image Out(Info.Width, Info.Height, Info.Channels);

    // Interior/halo decomposition (the Section IV-B regions): the
    // interior takes the row-wise direct-indexing fast path, only the
    // halo pays for border handling. Inputs of an unfused kernel always
    // match the output extent in the bundled pipelines, but guard
    // against mismatched extents by keeping the halo conservative.
    int Halo = vmHalo(VM);
    for (ImageId In : K.Inputs) {
      const ImageInfo &InInfo = P.image(In);
      if (InInfo.Width != Info.Width || InInfo.Height != Info.Height)
        Halo = std::max(Info.Width, Info.Height);
    }
    int X0 = std::min(Halo, Info.Width);
    int Y0 = std::min(Halo, Info.Height);
    int X1 = std::max(X0, Info.Width - Halo);
    int Y1 = std::max(Y0, Info.Height - Halo);

    // Span-mode interior: the lane buffer is VM.NumRegs * VmLaneWidth
    // floats regardless of the image width.
    RowRegs.resize(std::max<size_t>(
        RowRegs.size(),
        static_cast<size_t>(VM.NumRegs) * VmLaneWidth));
    if (X0 < X1)
      for (int Y = Y0; Y < Y1; ++Y)
        for (int Ch = 0; Ch != Info.Channels; ++Ch)
          runVmSpan(VM, P, Id, Pool, Y, X0, X1, Ch, RowRegs.data(),
                    Out.data().data() +
                        (static_cast<size_t>(Y) * Info.Width + X0) *
                            Info.Channels +
                        Ch,
                    Info.Channels);
    for (int Y = 0; Y != Info.Height; ++Y)
      for (int X = 0; X != Info.Width; ++X) {
        bool Interior = X >= X0 && X < X1 && Y >= Y0 && Y < Y1;
        if (Interior)
          continue;
        for (int Ch = 0; Ch != Info.Channels; ++Ch)
          Out.at(X, Y, Ch) = runVm(VM, P, Id, Pool, X, Y, Ch, Regs.data());
      }
    Pool[K.Output] = std::move(Out);
  }
}
