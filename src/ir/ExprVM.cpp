//===- ir/ExprVM.cpp ----------------------------------------------------------===//

#include "ir/ExprVM.h"

#include "image/Border.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kf;

namespace {

/// Bindings of stencil-scoped scalars while compiling an element.
struct StencilBinding {
  int Dx = 0;
  int Dy = 0;
  float MaskVal = 0.0f;
  bool Active = false;
};

/// Recursive compiler from expression trees to the linear VM form.
class VmCompiler {
public:
  VmCompiler(const Program &P) : P(P) {}

  VmProgram compile(const Expr *Body) {
    VmProgram VM;
    VM.ResultReg = emit(Body, StencilBinding(), VM);
    VM.NumRegs = NextReg;
    return VM;
  }

private:
  uint16_t fresh() {
    assert(NextReg < 0xFFFF && "register file exhausted");
    return static_cast<uint16_t>(NextReg++);
  }

  uint16_t emitConst(float Value, VmProgram &VM) {
    VmInst Inst;
    Inst.Op = VmOp::Const;
    Inst.Dst = fresh();
    Inst.Imm = Value;
    VM.Insts.push_back(Inst);
    return Inst.Dst;
  }

  uint16_t emitBinary(VmOp Op, uint16_t A, uint16_t B, VmProgram &VM) {
    VmInst Inst;
    Inst.Op = Op;
    Inst.Dst = fresh();
    Inst.A = A;
    Inst.B = B;
    VM.Insts.push_back(Inst);
    return Inst.Dst;
  }

  uint16_t emit(const Expr *E, const StencilBinding &Env, VmProgram &VM) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
      return emitConst(E->Value, VM);
    case ExprKind::CoordX:
    case ExprKind::CoordY: {
      VmInst Inst;
      Inst.Op = E->Kind == ExprKind::CoordX ? VmOp::CoordX : VmOp::CoordY;
      Inst.Dst = fresh();
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::MaskValue:
      assert(Env.Active && "mask value outside a stencil");
      return emitConst(Env.MaskVal, VM);
    case ExprKind::StencilOffX:
      assert(Env.Active && "stencil offset outside a stencil");
      return emitConst(static_cast<float>(Env.Dx), VM);
    case ExprKind::StencilOffY:
      assert(Env.Active && "stencil offset outside a stencil");
      return emitConst(static_cast<float>(Env.Dy), VM);
    case ExprKind::InputAt:
    case ExprKind::StencilInput: {
      VmInst Inst;
      Inst.Op = VmOp::Load;
      Inst.Dst = fresh();
      Inst.InputIdx = static_cast<int16_t>(E->InputIdx);
      if (E->Kind == ExprKind::InputAt) {
        Inst.Ox = static_cast<int16_t>(E->OffsetX);
        Inst.Oy = static_cast<int16_t>(E->OffsetY);
      } else {
        assert(Env.Active && "window access outside a stencil");
        Inst.Ox = static_cast<int16_t>(Env.Dx);
        Inst.Oy = static_cast<int16_t>(Env.Dy);
      }
      Inst.Channel = static_cast<int16_t>(E->Channel);
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Binary: {
      uint16_t A = emit(E->Lhs, Env, VM);
      uint16_t B = emit(E->Rhs, Env, VM);
      VmOp Op = VmOp::Add;
      switch (E->BinaryOp) {
      case BinOp::Add:
        Op = VmOp::Add;
        break;
      case BinOp::Sub:
        Op = VmOp::Sub;
        break;
      case BinOp::Mul:
        Op = VmOp::Mul;
        break;
      case BinOp::Div:
        Op = VmOp::Div;
        break;
      case BinOp::Min:
        Op = VmOp::Min;
        break;
      case BinOp::Max:
        Op = VmOp::Max;
        break;
      case BinOp::Pow:
        Op = VmOp::Pow;
        break;
      case BinOp::CmpLT:
        Op = VmOp::CmpLT;
        break;
      case BinOp::CmpGT:
        Op = VmOp::CmpGT;
        break;
      }
      return emitBinary(Op, A, B, VM);
    }
    case ExprKind::Unary: {
      uint16_t A = emit(E->Lhs, Env, VM);
      VmOp Op = VmOp::Neg;
      switch (E->UnaryOp) {
      case UnOp::Neg:
        Op = VmOp::Neg;
        break;
      case UnOp::Abs:
        Op = VmOp::Abs;
        break;
      case UnOp::Sqrt:
        Op = VmOp::Sqrt;
        break;
      case UnOp::Exp:
        Op = VmOp::Exp;
        break;
      case UnOp::Log:
        Op = VmOp::Log;
        break;
      case UnOp::Floor:
        Op = VmOp::Floor;
        break;
      }
      VmInst Inst;
      Inst.Op = Op;
      Inst.Dst = fresh();
      Inst.A = A;
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Select: {
      VmInst Inst;
      Inst.Op = VmOp::Select;
      Inst.Sel = emit(E->Cond, Env, VM);
      Inst.A = emit(E->Lhs, Env, VM);
      Inst.B = emit(E->Rhs, Env, VM);
      Inst.Dst = fresh();
      VM.Insts.push_back(Inst);
      return Inst.Dst;
    }
    case ExprKind::Stencil: {
      // Fully unroll the reduction: one element expansion per window
      // position with mask value and offsets baked as constants; combine
      // with the reduce operator in evaluation order.
      const Mask &M = P.mask(E->MaskIdx);
      uint16_t Acc = 0;
      bool First = true;
      for (int Dy = -M.haloY(); Dy <= M.haloY(); ++Dy)
        for (int Dx = -M.haloX(); Dx <= M.haloX(); ++Dx) {
          StencilBinding Elem{Dx, Dy, M.at(Dx, Dy), true};
          uint16_t Value = emit(E->Lhs, Elem, VM);
          if (First) {
            Acc = Value;
            First = false;
            continue;
          }
          VmOp Op = VmOp::Add;
          switch (E->Reduce) {
          case ReduceOp::Sum:
            Op = VmOp::Add;
            break;
          case ReduceOp::Product:
            Op = VmOp::Mul;
            break;
          case ReduceOp::Min:
            Op = VmOp::Min;
            break;
          case ReduceOp::Max:
            Op = VmOp::Max;
            break;
          }
          Acc = emitBinary(Op, Acc, Value, VM);
        }
      return Acc;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

  const Program &P;
  unsigned NextReg = 0;
};

} // namespace

VmProgram kf::compileKernelBody(const Program &P, KernelId Id) {
  VmCompiler Compiler(P);
  return Compiler.compile(P.kernel(Id).Body);
}

/// Shared evaluation loop; \p Bordered selects bordered vs direct loads.
template <bool Bordered>
static float runVmImpl(const VmProgram &VM, const Program &P, KernelId Id,
                       const std::vector<Image> &Pool, int X, int Y,
                       int Channel, float *Regs) {
  const Kernel &K = P.kernel(Id);
  for (const VmInst &Inst : VM.Insts) {
    switch (Inst.Op) {
    case VmOp::Const:
      Regs[Inst.Dst] = Inst.Imm;
      break;
    case VmOp::CoordX:
      Regs[Inst.Dst] = static_cast<float>(X);
      break;
    case VmOp::CoordY:
      Regs[Inst.Dst] = static_cast<float>(Y);
      break;
    case VmOp::Load: {
      const Image &Img = Pool[K.Inputs[Inst.InputIdx]];
      int Ch = Inst.Channel < 0 ? Channel : Inst.Channel;
      if (Bordered)
        Regs[Inst.Dst] = sampleWithBorder(Img, X + Inst.Ox, Y + Inst.Oy,
                                          Ch, K.Border, K.BorderConstant);
      else
        Regs[Inst.Dst] = Img.at(X + Inst.Ox, Y + Inst.Oy, Ch);
      break;
    }
    case VmOp::Add:
      Regs[Inst.Dst] = Regs[Inst.A] + Regs[Inst.B];
      break;
    case VmOp::Sub:
      Regs[Inst.Dst] = Regs[Inst.A] - Regs[Inst.B];
      break;
    case VmOp::Mul:
      Regs[Inst.Dst] = Regs[Inst.A] * Regs[Inst.B];
      break;
    case VmOp::Div:
      Regs[Inst.Dst] = Regs[Inst.A] / Regs[Inst.B];
      break;
    case VmOp::Min:
      Regs[Inst.Dst] = std::min(Regs[Inst.A], Regs[Inst.B]);
      break;
    case VmOp::Max:
      Regs[Inst.Dst] = std::max(Regs[Inst.A], Regs[Inst.B]);
      break;
    case VmOp::Pow:
      Regs[Inst.Dst] = std::pow(Regs[Inst.A], Regs[Inst.B]);
      break;
    case VmOp::CmpLT:
      Regs[Inst.Dst] = Regs[Inst.A] < Regs[Inst.B] ? 1.0f : 0.0f;
      break;
    case VmOp::CmpGT:
      Regs[Inst.Dst] = Regs[Inst.A] > Regs[Inst.B] ? 1.0f : 0.0f;
      break;
    case VmOp::Neg:
      Regs[Inst.Dst] = -Regs[Inst.A];
      break;
    case VmOp::Abs:
      Regs[Inst.Dst] = std::abs(Regs[Inst.A]);
      break;
    case VmOp::Sqrt:
      Regs[Inst.Dst] = std::sqrt(Regs[Inst.A]);
      break;
    case VmOp::Exp:
      Regs[Inst.Dst] = std::exp(Regs[Inst.A]);
      break;
    case VmOp::Log:
      Regs[Inst.Dst] = std::log(Regs[Inst.A]);
      break;
    case VmOp::Floor:
      Regs[Inst.Dst] = std::floor(Regs[Inst.A]);
      break;
    case VmOp::Select:
      Regs[Inst.Dst] = Regs[Inst.Sel] != 0.0f ? Regs[Inst.A] : Regs[Inst.B];
      break;
    }
  }
  return Regs[VM.ResultReg];
}

float kf::runVm(const VmProgram &VM, const Program &P, KernelId Id,
                const std::vector<Image> &Pool, int X, int Y, int Channel,
                float *Regs) {
  return runVmImpl<true>(VM, P, Id, Pool, X, Y, Channel, Regs);
}

float kf::runVmInterior(const VmProgram &VM, const Program &P, KernelId Id,
                        const std::vector<Image> &Pool, int X, int Y,
                        int Channel, float *Regs) {
  return runVmImpl<false>(VM, P, Id, Pool, X, Y, Channel, Regs);
}

void kf::runUnfusedVm(const Program &P, std::vector<Image> &Pool) {
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  std::optional<std::vector<Digraph::NodeId>> Order =
      P.buildKernelDag().topologicalOrder();
  assert(Order && "kernel DAG has a cycle");

  std::vector<float> Regs;
  for (KernelId Id : *Order) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Info = P.image(K.Output);
    VmProgram VM = compileKernelBody(P, Id);
    Regs.resize(std::max<size_t>(Regs.size(), VM.NumRegs));
    Image Out(Info.Width, Info.Height, Info.Channels);

    // Interior/halo decomposition (the Section IV-B regions): the
    // interior takes the direct-indexing fast path, only the halo pays
    // for border handling.
    int Halo = 0;
    for (const VmInst &Inst : VM.Insts)
      if (Inst.Op == VmOp::Load)
        Halo = std::max(
            Halo, std::max(std::abs(static_cast<int>(Inst.Ox)),
                           std::abs(static_cast<int>(Inst.Oy))));
    int X0 = std::min(Halo, Info.Width);
    int Y0 = std::min(Halo, Info.Height);
    int X1 = std::max(X0, Info.Width - Halo);
    int Y1 = std::max(Y0, Info.Height - Halo);

    for (int Y = Y0; Y < Y1; ++Y)
      for (int X = X0; X < X1; ++X)
        for (int Ch = 0; Ch != Info.Channels; ++Ch)
          Out.at(X, Y, Ch) =
              runVmInterior(VM, P, Id, Pool, X, Y, Ch, Regs.data());
    for (int Y = 0; Y != Info.Height; ++Y)
      for (int X = 0; X != Info.Width; ++X) {
        bool Interior = X >= X0 && X < X1 && Y >= Y0 && Y < Y1;
        if (Interior)
          continue;
        for (int Ch = 0; Ch != Info.Channels; ++Ch)
          Out.at(X, Y, Ch) = runVm(VM, P, Id, Pool, X, Y, Ch, Regs.data());
      }
    Pool[K.Output] = std::move(Out);
  }
}
