//===- ir/Kernel.cpp -------------------------------------------------------===//

#include "ir/Kernel.h"

#include "support/Error.h"

using namespace kf;

const char *kf::operatorKindName(OperatorKind Kind) {
  switch (Kind) {
  case OperatorKind::Point:
    return "point";
  case OperatorKind::Local:
    return "local";
  case OperatorKind::Global:
    return "global";
  }
  KF_UNREACHABLE("unknown operator kind");
}

Mask Mask::uniform(int Width, int Height, float Value) {
  return Mask(Width, Height,
              std::vector<float>(static_cast<size_t>(Width) * Height, Value));
}
