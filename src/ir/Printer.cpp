//===- ir/Printer.cpp ------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Error.h"
#include "support/StringUtils.h"

using namespace kf;

static const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Min:
    return "min";
  case BinOp::Max:
    return "max";
  case BinOp::Pow:
    return "pow";
  case BinOp::CmpLT:
    return "<";
  case BinOp::CmpGT:
    return ">";
  }
  KF_UNREACHABLE("unknown binary op");
}

static const char *unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "neg";
  case UnOp::Abs:
    return "abs";
  case UnOp::Sqrt:
    return "sqrt";
  case UnOp::Exp:
    return "exp";
  case UnOp::Log:
    return "log";
  case UnOp::Floor:
    return "floor";
  }
  KF_UNREACHABLE("unknown unary op");
}

static const char *reduceOpName(ReduceOp Op) {
  switch (Op) {
  case ReduceOp::Sum:
    return "sum";
  case ReduceOp::Product:
    return "product";
  case ReduceOp::Min:
    return "min";
  case ReduceOp::Max:
    return "max";
  }
  KF_UNREACHABLE("unknown reduce op");
}

static std::string inputName(int Idx,
                             const std::vector<std::string> &InputNames) {
  if (Idx >= 0 && Idx < static_cast<int>(InputNames.size()))
    return InputNames[Idx];
  return "in" + std::to_string(Idx);
}

static std::string channelSuffix(int Channel) {
  return Channel < 0 ? std::string() : "." + std::to_string(Channel);
}

std::string kf::exprToString(const Expr *E,
                             const std::vector<std::string> &InputNames) {
  switch (E->Kind) {
  case ExprKind::FloatConst:
    return formatDouble(E->Value, 4);
  case ExprKind::CoordX:
    return "x";
  case ExprKind::CoordY:
    return "y";
  case ExprKind::InputAt: {
    std::string Name = inputName(E->InputIdx, InputNames);
    if (E->OffsetX == 0 && E->OffsetY == 0)
      return Name + "(0,0)" + channelSuffix(E->Channel);
    return Name + "(" + std::to_string(E->OffsetX) + "," +
           std::to_string(E->OffsetY) + ")" + channelSuffix(E->Channel);
  }
  case ExprKind::StencilInput:
    return inputName(E->InputIdx, InputNames) + "(dx,dy)" +
           channelSuffix(E->Channel);
  case ExprKind::MaskValue:
    return "mask(dx,dy)";
  case ExprKind::StencilOffX:
    return "dx";
  case ExprKind::StencilOffY:
    return "dy";
  case ExprKind::Binary: {
    std::string L = exprToString(E->Lhs, InputNames);
    std::string R = exprToString(E->Rhs, InputNames);
    switch (E->BinaryOp) {
    case BinOp::Min:
    case BinOp::Max:
    case BinOp::Pow:
      return std::string(binOpName(E->BinaryOp)) + "(" + L + ", " + R + ")";
    default:
      return "(" + L + " " + binOpName(E->BinaryOp) + " " + R + ")";
    }
  }
  case ExprKind::Unary:
    return std::string(unOpName(E->UnaryOp)) + "(" +
           exprToString(E->Lhs, InputNames) + ")";
  case ExprKind::Select:
    return "select(" + exprToString(E->Cond, InputNames) + ", " +
           exprToString(E->Lhs, InputNames) + ", " +
           exprToString(E->Rhs, InputNames) + ")";
  case ExprKind::Stencil:
    return std::string(reduceOpName(E->Reduce)) + "[mask" +
           std::to_string(E->MaskIdx) + "](" +
           exprToString(E->Lhs, InputNames) + ")";
  }
  KF_UNREACHABLE("unknown expression kind");
}

std::string kf::kernelToString(const Program &P, KernelId Id) {
  const Kernel &K = P.kernel(Id);
  std::vector<std::string> InputNames;
  for (ImageId In : K.Inputs)
    InputNames.push_back(P.image(In).Name);

  std::string Out = std::string(operatorKindName(K.Kind)) + " kernel " +
                    K.Name + "(";
  Out += joinStrings(InputNames, ", ");
  Out += ") -> " + P.image(K.Output).Name;
  if (K.Kind == OperatorKind::Local)
    Out += std::string(" [border=") + borderModeName(K.Border) + "]";
  Out += "\n  " + P.image(K.Output).Name +
         " = " + exprToString(K.Body, InputNames) + "\n";
  return Out;
}

std::string kf::programToString(const Program &P) {
  std::string Out = "program " + P.name() + "\n";
  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    const ImageInfo &Info = P.image(Id);
    Out += "  image " + Info.Name + " " + std::to_string(Info.Width) + "x" +
           std::to_string(Info.Height) + "x" +
           std::to_string(Info.Channels) + "\n";
  }
  for (int M = 0; M != static_cast<int>(P.numMasks()); ++M) {
    const Mask &Msk = P.mask(M);
    Out += "  mask" + std::to_string(M) + " " + std::to_string(Msk.Width) +
           "x" + std::to_string(Msk.Height) + "\n";
  }
  for (KernelId K = 0; K != P.numKernels(); ++K)
    Out += kernelToString(P, K);
  return Out;
}
