//===- ir/CostInfo.h - Static kernel cost & footprint analysis --*- C++ -*-===//
///
/// \file
/// Extracts the per-kernel quantities the benefit-estimation model of
/// Section II-C consumes: the estimated ALU and SFU operation counts of
/// Eq. 6 (n_ALU, n_SFU), the read footprint on every input, and the
/// effective square window width (whose square is sz() in Eqs. 7-10).
///
/// Operation counting convention: every arithmetic AST node costs one
/// operation on its unit (ALU or SFU), stencil element expressions are
/// counted once per window element plus the reduce combines, and the final
/// store of the output pixel costs one ALU operation. With this convention
/// the paper's Harris example (n_ALU = 2 for the square kernels sx, sy,
/// sxy) is reproduced exactly: one multiply plus one store.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_COSTINFO_H
#define KF_IR_COSTINFO_H

#include "ir/Program.h"

namespace kf {

/// Read footprint of one kernel input.
struct InputFootprint {
  int HaloX = 0;                ///< Max |x offset| over all accesses.
  int HaloY = 0;                ///< Max |y offset| over all accesses.
  long long ReadsPerPixel = 0;  ///< Reads per output pixel.
  bool WindowAccess = false;    ///< True if accessed through a stencil.
};

/// Static costs of one kernel.
struct KernelCost {
  long long NumAlu = 0; ///< n_ALU of Eq. 6, per output pixel.
  long long NumSfu = 0; ///< n_SFU of Eq. 6, per output pixel.
  std::vector<InputFootprint> Footprints; ///< One entry per kernel input.
  int WindowWidth = 1; ///< Effective square window width (1 for point).

  /// sz() of the paper: number of window elements.
  int windowSize() const { return WindowWidth * WindowWidth; }

  /// Total reads per output pixel over all inputs.
  long long totalReadsPerPixel() const;
};

/// Analyzes kernel \p Id of \p P. The program must verify cleanly; the
/// analysis asserts on malformed bodies.
KernelCost analyzeKernelCost(const Program &P, KernelId Id);

} // namespace kf

#endif // KF_IR_COSTINFO_H
