//===- ir/Program.cpp ------------------------------------------------------===//

#include "ir/Program.h"

#include <algorithm>
#include <cassert>

using namespace kf;

ImageId Program::addImage(std::string ImageName, int Width, int Height,
                          int Channels) {
  assert(Width > 0 && Height > 0 && Channels > 0 && "invalid image shape");
  Images.push_back(ImageInfo{std::move(ImageName), Width, Height, Channels});
  return static_cast<ImageId>(Images.size() - 1);
}

int Program::addMask(Mask MaskIn) {
  Masks.push_back(std::move(MaskIn));
  return static_cast<int>(Masks.size() - 1);
}

KernelId Program::addKernel(Kernel KernelIn) {
  assert(KernelIn.Body && "kernel needs a body");
  assert(KernelIn.Output < numImages() && "kernel output image out of range");
  for (ImageId In : KernelIn.Inputs)
    assert(In < numImages() && "kernel input image out of range");
  Kernels.push_back(std::move(KernelIn));
  return static_cast<KernelId>(Kernels.size() - 1);
}

const ImageInfo &Program::image(ImageId Id) const {
  assert(Id < numImages() && "image id out of range");
  return Images[Id];
}

const Mask &Program::mask(int Idx) const {
  assert(Idx >= 0 && Idx < static_cast<int>(numMasks()) &&
         "mask index out of range");
  return Masks[Idx];
}

const Kernel &Program::kernel(KernelId Id) const {
  assert(Id < numKernels() && "kernel id out of range");
  return Kernels[Id];
}

Kernel &Program::kernel(KernelId Id) {
  assert(Id < numKernels() && "kernel id out of range");
  return Kernels[Id];
}

std::optional<KernelId> Program::producerOf(ImageId Id) const {
  for (KernelId K = 0; K != numKernels(); ++K)
    if (Kernels[K].Output == Id)
      return K;
  return std::nullopt;
}

std::vector<KernelId> Program::consumersOf(ImageId Id) const {
  std::vector<KernelId> Result;
  for (KernelId K = 0; K != numKernels(); ++K) {
    const Kernel &Kn = Kernels[K];
    if (std::find(Kn.Inputs.begin(), Kn.Inputs.end(), Id) != Kn.Inputs.end())
      Result.push_back(K);
  }
  return Result;
}

std::vector<ImageId> Program::externalInputs() const {
  std::vector<ImageId> Result;
  for (ImageId Id = 0; Id != numImages(); ++Id)
    if (!producerOf(Id) && !consumersOf(Id).empty())
      Result.push_back(Id);
  return Result;
}

std::vector<ImageId> Program::terminalOutputs() const {
  std::vector<ImageId> Result;
  for (ImageId Id = 0; Id != numImages(); ++Id)
    if (producerOf(Id) && consumersOf(Id).empty())
      Result.push_back(Id);
  return Result;
}

Digraph Program::buildKernelDag() const {
  Digraph G;
  for (KernelId K = 0; K != numKernels(); ++K)
    G.addNode(Kernels[K].Name);
  for (KernelId Producer = 0; Producer != numKernels(); ++Producer) {
    ImageId Out = Kernels[Producer].Output;
    for (KernelId Consumer : consumersOf(Out))
      G.addEdge(Producer, Consumer);
  }
  return G;
}

std::optional<ImageId>
Program::communicatedImage(KernelId Producer, KernelId Consumer) const {
  ImageId Out = kernel(Producer).Output;
  const Kernel &Cons = kernel(Consumer);
  if (std::find(Cons.Inputs.begin(), Cons.Inputs.end(), Out) !=
      Cons.Inputs.end())
    return Out;
  return std::nullopt;
}
