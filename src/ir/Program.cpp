//===- ir/Program.cpp ------------------------------------------------------===//

#include "ir/Program.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace kf;

namespace {

/// FNV-1a accumulator used for the structural hash. Every ingested value
/// is tagged by the caller with a distinct field code so that, e.g., a
/// mask extent can never collide with an image extent.
class StructuralHasher {
public:
  void u64(uint64_t Value) {
    for (int Byte = 0; Byte != 8; ++Byte) {
      H ^= (Value >> (Byte * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }

  void i32(int Value) { u64(static_cast<uint64_t>(static_cast<uint32_t>(Value))); }

  /// Floats hash by bit pattern: -0.0f != +0.0f and every NaN payload is
  /// distinct, so the hash is exactly as strict as bit-identity.
  void f32(float Value) { u64(std::bit_cast<uint32_t>(Value)); }

  void str(const std::string &S) {
    u64(S.size());
    for (char Ch : S) {
      H ^= static_cast<unsigned char>(Ch);
      H *= 1099511628211ull;
    }
  }

  void expr(const Expr *E) {
    if (!E) {
      u64(0xfeed);
      return;
    }
    u64(static_cast<uint64_t>(E->Kind) + 0x100);
    switch (E->Kind) {
    case ExprKind::FloatConst:
      f32(E->Value);
      break;
    case ExprKind::CoordX:
    case ExprKind::CoordY:
    case ExprKind::MaskValue:
    case ExprKind::StencilOffX:
    case ExprKind::StencilOffY:
      break;
    case ExprKind::InputAt:
      i32(E->InputIdx);
      i32(E->OffsetX);
      i32(E->OffsetY);
      i32(E->Channel);
      break;
    case ExprKind::StencilInput:
      i32(E->InputIdx);
      i32(E->Channel);
      break;
    case ExprKind::Binary:
      u64(static_cast<uint64_t>(E->BinaryOp));
      expr(E->Lhs);
      expr(E->Rhs);
      break;
    case ExprKind::Unary:
      u64(static_cast<uint64_t>(E->UnaryOp));
      expr(E->Lhs);
      break;
    case ExprKind::Select:
      expr(E->Cond);
      expr(E->Lhs);
      expr(E->Rhs);
      break;
    case ExprKind::Stencil:
      u64(static_cast<uint64_t>(E->Reduce));
      i32(E->MaskIdx);
      expr(E->Lhs);
      break;
    }
  }

  uint64_t finish() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

} // namespace

uint64_t Program::structuralHash() const {
  StructuralHasher Hash;
  Hash.str(Name);
  Hash.u64(Images.size());
  for (const ImageInfo &Info : Images) {
    Hash.str(Info.Name);
    Hash.i32(Info.Width);
    Hash.i32(Info.Height);
    Hash.i32(Info.Channels);
  }
  Hash.u64(Masks.size());
  for (const Mask &M : Masks) {
    Hash.i32(M.Width);
    Hash.i32(M.Height);
    for (float W : M.Weights)
      Hash.f32(W);
  }
  Hash.u64(Kernels.size());
  for (const Kernel &K : Kernels) {
    Hash.str(K.Name);
    Hash.u64(static_cast<uint64_t>(K.Kind));
    Hash.u64(K.Inputs.size());
    for (ImageId In : K.Inputs)
      Hash.u64(In);
    Hash.u64(K.Output);
    Hash.u64(static_cast<uint64_t>(K.Border));
    Hash.f32(K.BorderConstant);
    Hash.i32(K.Granularity);
    Hash.expr(K.Body);
  }
  return Hash.finish();
}

ImageId Program::addImage(std::string ImageName, int Width, int Height,
                          int Channels) {
  assert(Width > 0 && Height > 0 && Channels > 0 && "invalid image shape");
  Images.push_back(ImageInfo{std::move(ImageName), Width, Height, Channels});
  return static_cast<ImageId>(Images.size() - 1);
}

int Program::addMask(Mask MaskIn) {
  Masks.push_back(std::move(MaskIn));
  return static_cast<int>(Masks.size() - 1);
}

KernelId Program::addKernel(Kernel KernelIn) {
  assert(KernelIn.Body && "kernel needs a body");
  assert(KernelIn.Output < numImages() && "kernel output image out of range");
  for (ImageId In : KernelIn.Inputs)
    assert(In < numImages() && "kernel input image out of range");
  Kernels.push_back(std::move(KernelIn));
  return static_cast<KernelId>(Kernels.size() - 1);
}

const ImageInfo &Program::image(ImageId Id) const {
  assert(Id < numImages() && "image id out of range");
  return Images[Id];
}

const Mask &Program::mask(int Idx) const {
  assert(Idx >= 0 && Idx < static_cast<int>(numMasks()) &&
         "mask index out of range");
  return Masks[Idx];
}

const Kernel &Program::kernel(KernelId Id) const {
  assert(Id < numKernels() && "kernel id out of range");
  return Kernels[Id];
}

Kernel &Program::kernel(KernelId Id) {
  assert(Id < numKernels() && "kernel id out of range");
  return Kernels[Id];
}

std::optional<KernelId> Program::producerOf(ImageId Id) const {
  for (KernelId K = 0; K != numKernels(); ++K)
    if (Kernels[K].Output == Id)
      return K;
  return std::nullopt;
}

std::vector<KernelId> Program::consumersOf(ImageId Id) const {
  std::vector<KernelId> Result;
  for (KernelId K = 0; K != numKernels(); ++K) {
    const Kernel &Kn = Kernels[K];
    if (std::find(Kn.Inputs.begin(), Kn.Inputs.end(), Id) != Kn.Inputs.end())
      Result.push_back(K);
  }
  return Result;
}

std::vector<ImageId> Program::externalInputs() const {
  std::vector<ImageId> Result;
  for (ImageId Id = 0; Id != numImages(); ++Id)
    if (!producerOf(Id) && !consumersOf(Id).empty())
      Result.push_back(Id);
  return Result;
}

std::vector<ImageId> Program::terminalOutputs() const {
  std::vector<ImageId> Result;
  for (ImageId Id = 0; Id != numImages(); ++Id)
    if (producerOf(Id) && consumersOf(Id).empty())
      Result.push_back(Id);
  return Result;
}

Digraph Program::buildKernelDag() const {
  Digraph G;
  for (KernelId K = 0; K != numKernels(); ++K)
    G.addNode(Kernels[K].Name);
  for (KernelId Producer = 0; Producer != numKernels(); ++Producer) {
    ImageId Out = Kernels[Producer].Output;
    for (KernelId Consumer : consumersOf(Out))
      G.addEdge(Producer, Consumer);
  }
  return G;
}

std::optional<ImageId>
Program::communicatedImage(KernelId Producer, KernelId Consumer) const {
  ImageId Out = kernel(Producer).Output;
  const Kernel &Cons = kernel(Consumer);
  if (std::find(Cons.Inputs.begin(), Cons.Inputs.end(), Out) !=
      Cons.Inputs.end())
    return Out;
  return std::nullopt;
}
