//===- ir/ExprVM.h - Bytecode compilation of kernel bodies ------*- C++ -*-===//
///
/// \file
/// A linear bytecode representation of kernel bodies. Where the
/// interpreter in sim/Executor walks the AST per pixel (virtual dispatch
/// per node), the VM compiles a body once -- unrolling stencil loops and
/// folding mask coefficients and window offsets into immediate operands
/// -- and then evaluates a flat instruction stream into a register file.
///
/// Fused kernels compile to a *staged* VM program (StagedVmProgram): one
/// subprogram per original kernel, where reads of eliminated intermediates
/// become StageCall instructions that evaluate the producer's subprogram at
/// an offset-shifted position -- the runtime mirror of the recompute-based
/// fusion of Section IV, including the index-exchange border handling of
/// Section IV-B. Interior evaluation (runVmInterior / runStagedVmInterior /
/// the row-wise variants) skips every border check, implementing the
/// interior/halo specialization the generated GPU code performs.
///
/// Interior evaluation comes in two selectable modes (VmMode):
///   - span (the default): each instruction streams across a whole row
///     span through fixed-width lane buffers (VmLaneWidth floats per
///     register, structure-of-arrays), written as plain contiguous loops
///     the compiler autovectorizes; tail chunks narrower than a lane run
///     the same loops with a smaller bound.
///   - scalar: per-pixel bytecode dispatch -- the escape hatch and the
///     honest baseline the span-vs-scalar benchmarks compare against.
///
/// This is the evaluation path the benchmarks use for large images; the
/// tree walker stays the semantic reference (the test suite asserts
/// bit-identical results).
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_EXPRVM_H
#define KF_IR_EXPRVM_H

#include "image/Image.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace kf {

/// How the VM engines evaluate interior pixels.
enum class VmMode : uint8_t {
  /// Resolve via the KF_VM environment variable ("scalar", "span" or
  /// "jit"). When unset or malformed, Auto prefers a JIT-compiled
  /// artifact if the launch carries one and falls back to Span.
  Auto,
  /// Per-pixel bytecode dispatch over the interior (the pre-span
  /// behaviour): one pass over the instruction stream per pixel.
  Scalar,
  /// Batched row-span execution: each instruction runs across a whole
  /// span of interior pixels through fixed-width lane buffers.
  Span,
  /// JIT-compiled row-span execution: the validated staged bytecode is
  /// flattened (stage calls inlined with their offsets baked in) into a
  /// direct-threaded chain of specialized op functions compiled per plan
  /// (src/jit), removing per-instruction interpreter dispatch from the
  /// interior loop. Bit-identical to Span.
  Jit,
};

/// Resolves \p Requested against the KF_VM environment variable: an
/// explicit Scalar/Span/Jit request wins; Auto consults KF_VM and, when
/// it is unset or malformed (warning once per process), resolves to Jit
/// if \p JitAvailable -- the caller holds a compiled JIT artifact for the
/// launch -- and to Span otherwise.
VmMode resolveVmMode(VmMode Requested, bool JitAvailable = false);

/// Stable lower-case name of \p Mode ("auto" / "scalar" / "span" /
/// "jit").
const char *vmModeName(VmMode Mode);

/// How a fused launch decomposes the image across tiles.
enum class TilingStrategy : uint8_t {
  /// Resolve via the KF_TILING environment variable ("interior",
  /// "overlapped" or "tuned"), defaulting to InteriorHalo.
  Auto,
  /// The global interior/halo split of Section IV-B: one interior region
  /// per image runs the border-check-free fast path, the border ring the
  /// bordered slow path, and eliminated producers are recomputed
  /// recursively per read (stage-call recursion).
  InteriorHalo,
  /// Overlapped tiling: every interior tile independently materializes
  /// the eliminated producer stages it demands over the tile *grown by
  /// the producer's reach margin* into per-worker scratch planes, then
  /// reads the planes instead of recomputing. Adjacent grown tiles
  /// overlap, so the margin cells are computed redundantly -- the classic
  /// redundant-compute-for-zero-synchronization trade (Jangda & Guha).
  /// Bit-identical to InteriorHalo; the border ring keeps the bordered
  /// slow path either way.
  Overlapped,
  /// Pick strategy and tile shape per compiled plan with the analytic
  /// cost model (sim/Tuner's tuneExecution). Engines that have no plan
  /// context fall back to InteriorHalo.
  Tuned,
};

/// Resolves \p Requested against the KF_TILING environment variable: an
/// explicit strategy wins; Auto consults KF_TILING and falls back to
/// InteriorHalo (warning once per process about malformed values).
TilingStrategy resolveTilingStrategy(TilingStrategy Requested);

/// Stable lower-case name of \p Strategy ("auto" / "interior" /
/// "overlapped" / "tuned").
const char *tilingStrategyName(TilingStrategy Strategy);

/// Whether session plan compilation runs the fact-gated bytecode
/// optimizer (ir/VmOptimizer.h) over the validated staged programs
/// before JIT lowering.
enum class OptMode : uint8_t {
  /// Resolve via the KF_OPT environment variable ("on" or "off"),
  /// defaulting to On.
  Auto,
  /// Run the interval-fact-gated rewrites (the default).
  On,
  /// Escape hatch: compile and execute the un-optimized bytecode
  /// exactly as the compiler emitted it.
  Off,
};

/// Resolves \p Requested against the KF_OPT environment variable: an
/// explicit On/Off request wins; Auto consults KF_OPT ("on"/"off",
/// warning once per process about malformed values) and defaults to On.
OptMode resolveOptMode(OptMode Requested);

/// Stable lower-case name of \p Mode ("auto" / "on" / "off").
const char *optModeName(OptMode Mode);

/// Lane width of the span execution mode: every register of a span chunk
/// is a contiguous block of this many floats (structure of arrays), so
/// the whole register file of a chunk stays L1-resident independent of
/// the image width. Tail chunks simply run with a smaller bound -- the
/// interpreter's equivalent of masked tail handling.
constexpr int VmLaneWidth = 64;

/// VM opcodes. Loads read images with the owning kernel's border
/// handling; everything else operates on the register file.
enum class VmOp : uint8_t {
  Const,  ///< Dst = Imm.
  CoordX, ///< Dst = (float)x.
  CoordY, ///< Dst = (float)y.
  Load,   ///< Dst = input[InputIdx] at (x + Ox, y + Oy), channel field.
  Add,    ///< Dst = A + B.
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Pow,
  CmpLT,
  CmpGT,
  Neg,
  Abs,
  Sqrt,
  Exp,
  Log,
  Floor,
  Select,    ///< Dst = regs[C] != 0 ? A : B  (C in the Sel field).
  StageCall, ///< Dst = stage Sel of the staged program, evaluated at
             ///< (x + Ox, y + Oy) with the channel field's rules. Only
             ///< valid inside a StagedVmProgram.
};

/// One VM instruction (fixed width; unused fields are zero).
struct VmInst {
  VmOp Op = VmOp::Const;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t Sel = 0;     ///< Select condition register / StageCall callee.
  float Imm = 0.0f;     ///< Const immediate.
  int16_t InputIdx = 0; ///< Load: kernel input index.
  int16_t Ox = 0;       ///< Load/StageCall: x offset (stencil baked in).
  int16_t Oy = 0;       ///< Load/StageCall: y offset.
  int16_t Channel = -1; ///< Load/StageCall: -1 = current channel.
};

/// A compiled kernel body.
struct VmProgram {
  std::vector<VmInst> Insts;
  uint16_t ResultReg = 0;
  unsigned NumRegs = 0;

  bool empty() const { return Insts.empty(); }
};

/// Compiles kernel \p Id of \p P. Stencil reductions are fully unrolled:
/// the instruction count grows with the mask sizes.
VmProgram compileKernelBody(const Program &P, KernelId Id);

/// Evaluates \p VM for kernel \p Id at (X, Y, Channel), reading inputs
/// from \p Pool with the kernel's border handling. \p Regs is scratch
/// space of at least VM.NumRegs floats (caller-owned to avoid per-pixel
/// allocation).
float runVm(const VmProgram &VM, const Program &P, KernelId Id,
            const std::vector<Image> &Pool, int X, int Y, int Channel,
            float *Regs);

/// Interior fast path: like runVm but loads index the images directly,
/// skipping border handling. Only valid when every access of the body
/// stays in bounds -- i.e. (X, Y) lies in the kernel's interior region
/// (the same interior/halo decomposition Section IV-B uses for the
/// fused kernels).
float runVmInterior(const VmProgram &VM, const Program &P, KernelId Id,
                    const std::vector<Image> &Pool, int X, int Y,
                    int Channel, float *Regs);

/// Row-wise interior evaluation: computes pixels [X0, X1) of row \p Y for
/// \p Channel in one call, writing result i to Out[i * OutStride]. The
/// instruction stream is executed instruction-major -- each op streams
/// across the whole scanline -- which amortizes per-pixel dispatch and
/// lets the compiler vectorize the inner loops. \p RowRegs must hold
/// VM.NumRegs * (X1 - X0) floats. Interior-only, like runVmInterior.
void runVmRow(const VmProgram &VM, const Program &P, KernelId Id,
              const std::vector<Image> &Pool, int Y, int X0, int X1,
              int Channel, float *RowRegs, float *Out, int OutStride = 1);

/// Span-mode interior evaluation: like runVmRow, but the span [X0, X1) is
/// chunked into lanes of at most VmLaneWidth pixels and each chunk runs
/// instruction-major through a fixed-size lane buffer, so the register
/// working set is VM.NumRegs * VmLaneWidth floats regardless of the span
/// width (L1-resident where full-row frames spill). \p LaneRegs must hold
/// VM.NumRegs * VmLaneWidth floats. Bit-identical to runVmRow and to
/// per-pixel runVmInterior.
void runVmSpan(const VmProgram &VM, const Program &P, KernelId Id,
               const std::vector<Image> &Pool, int Y, int X0, int X1,
               int Channel, float *LaneRegs, float *Out, int OutStride = 1);

/// The largest absolute load offset of \p VM on either axis: the kernel's
/// access halo, bounding the region where border handling can trigger.
int vmHalo(const VmProgram &VM);

/// One stage of a staged (fused-kernel) VM program.
struct VmStage {
  VmProgram Code;              ///< Body; may contain StageCall ops.
  std::vector<ImageId> Inputs; ///< Pool image ids for Load ops.
  BorderMode Border = BorderMode::Clamp; ///< Owning kernel's border mode.
  float BorderConstant = 0.0f;
  int OutW = 0; ///< Extent of the stage's output image (index exchange
  int OutH = 0; ///< happens against this when the stage is a callee).
  unsigned RegBase = 0; ///< This stage's frame in the shared scratch.
};

/// A fused kernel compiled to bytecode: one subprogram per stage (in the
/// fused kernel's topological stage order), where every read of an
/// eliminated intermediate is a StageCall into the producer's subprogram.
/// Because the stage call graph is acyclic, each stage owns a fixed
/// register frame inside one shared scratch block of NumRegs floats.
struct StagedVmProgram {
  std::vector<VmStage> Stages;
  unsigned NumRegs = 0;

  /// Reach[i]: how far stage i's evaluation can read from its own
  /// position, transitively through stage calls -- the fused halo when
  /// i is a destination (Eq. 9's grown window, measured in pixels).
  std::vector<int> Reach;

  /// True when every stage output and every loaded input share one
  /// extent; only then is an interior region (border checks statically
  /// impossible) well-defined.
  bool UniformExtents = true;
};

/// Compiles kernels \p StageKernels of \p P (topological order) into a
/// staged program. \p IsEliminated[i] marks stages whose output image is
/// eliminated by fusion: reads of those images from later stages become
/// StageCall instructions instead of pool loads. sim/Executor uses this
/// to compile FusedKernels (compileFusedKernel).
StagedVmProgram compileStagedProgram(const Program &P,
                                     const std::vector<KernelId> &StageKernels,
                                     const std::vector<bool> &IsEliminated);

/// Evaluates stage \p RootStage of \p SP at (X, Y, Channel) with full
/// border handling: pool loads are bordered, and exterior stage calls
/// apply the index exchange of Section IV-B (or, with
/// \p UseIndexExchange false, reproduce the incorrect naive border fusion
/// of Figure 4b by evaluating producers at raw exterior positions).
/// \p Regs must hold SP.NumRegs floats.
float runStagedVm(const StagedVmProgram &SP, uint16_t RootStage,
                  const std::vector<Image> &Pool, int X, int Y, int Channel,
                  float *Regs, bool UseIndexExchange = true);

/// Interior fast path: direct loads, unchecked stage calls. Valid only
/// when (X, Y) is at least SP.Reach[RootStage] away from every border
/// (and SP.UniformExtents holds).
float runStagedVmInterior(const StagedVmProgram &SP, uint16_t RootStage,
                          const std::vector<Image> &Pool, int X, int Y,
                          int Channel, float *Regs);

/// Row-wise interior evaluation of a staged program: every stage's
/// instruction stream runs instruction-major across the scanline --
/// StageCall ops recurse row-wise, streaming the callee's subprogram
/// over the offset-shifted column range straight into the caller's
/// destination row register. \p RowRegs must hold
/// SP.NumRegs * (X1 - X0) floats (one row-register frame per stage,
/// partitioned by VmStage::RegBase).
void runStagedVmRow(const StagedVmProgram &SP, uint16_t RootStage,
                    const std::vector<Image> &Pool, int Y, int X0, int X1,
                    int Channel, float *RowRegs, float *Out,
                    int OutStride = 1);

/// Span-mode interior evaluation of a staged program: the span [X0, X1)
/// is chunked into lanes of at most VmLaneWidth pixels; within a chunk
/// every stage's instruction stream runs instruction-major, and StageCall
/// ops recurse span-aware (the callee streams over the offset-shifted
/// chunk straight into the caller's destination lanes). Stage frames
/// partition the lane buffer at VmStage::RegBase * VmLaneWidth, so a
/// chunk never overruns a frame and the whole working set is
/// SP.NumRegs * VmLaneWidth floats -- the locality the full-row frames of
/// runStagedVmRow lose on wide images. \p LaneRegs must hold
/// SP.NumRegs * VmLaneWidth floats. Bit-identical to runStagedVmRow and
/// to per-pixel runStagedVmInterior.
void runStagedVmSpan(const StagedVmProgram &SP, uint16_t RootStage,
                     const std::vector<Image> &Pool, int Y, int X0, int X1,
                     int Channel, float *LaneRegs, float *Out,
                     int OutStride = 1);

//===----------------------------------------------------------------------===//
// Overlapped tiling (TilingStrategy::Overlapped)
//===----------------------------------------------------------------------===//

/// One scratch plane of the overlapped execution strategy: stage
/// \p Stage evaluated at concrete channel \p Channel over the
/// destination tile grown by \p Margin pixels on every side. The margin
/// is the transitive stage-call distance from the root, so every plane
/// cell a consumer reads (at offsets up to the call offset) lies inside
/// the callee's own, larger plane.
struct OverlapPlane {
  uint16_t Stage = 0;
  int16_t Channel = 0;
  int Margin = 0;
};

/// The compile-time materialization schedule of one launch under
/// overlapped tiling: which (stage, channel) planes each destination
/// channel demands, in materialization order (callees before callers).
/// Derived purely from the staged bytecode -- the same Eq. 9 reach
/// arithmetic compileStagedProgram records in Reach[], split per stage
/// instead of collapsed to the root maximum.
struct OverlapSchedule {
  /// Planes demanded when the root runs at destination channel c.
  std::vector<std::vector<OverlapPlane>> PerChannel;
  int MaxMargin = 0; ///< Largest margin of any plane (<= Reach[Root]).
  /// False when the strategy cannot run this launch (mixed stage or
  /// input extents void the interior region the planes are built for);
  /// the executor then falls back to the interior/halo strategy.
  bool Valid = false;
};

/// Builds the overlap schedule of \p SP rooted at \p Root for a
/// \p Channels -channel destination. Invalid (Valid == false) when
/// SP.UniformExtents does not hold.
OverlapSchedule buildOverlapSchedule(const StagedVmProgram &SP,
                                     uint16_t Root, int Channels);

/// Scratch floats one worker needs to hold every plane of \p Schedule
/// for a RootW x RootH destination tile: the maximum over destination
/// channels of the summed grown-plane areas.
size_t overlapPlaneFloats(const OverlapSchedule &Schedule, int RootW,
                          int RootH);

/// Optional per-call accounting of runOverlappedTile, feeding the
/// tile.overlap_pixels / tile.redundant_halo_ms trace counters.
struct OverlapTileStats {
  long long OverlapPixels = 0;  ///< Plane cells outside the root tile.
  long long ComputedPixels = 0; ///< All evaluated cells (planes + root).
};

/// Executes destination stage \p Root over the interior tile
/// [X0, X1) x [Y0, Y1) under the overlapped strategy: each demanded
/// plane of \p Schedule is materialized over the margin-grown tile into
/// \p PlaneScratch (at least overlapPlaneFloats(Schedule, X1-X0, Y1-Y0)
/// floats), stage calls read the callee's plane, and the root writes
/// straight into \p OutBase (the destination image base, width
/// \p OutWidth, \p Channels channels). \p Regs is the per-worker
/// register scratch: SP.NumRegs * VmLaneWidth floats in span mode,
/// SP.NumRegs floats in scalar mode (\p Mode must be resolved, never
/// Auto). The tile must lie at least SP.Reach[Root] away from every
/// border (the interior region); every value is computed by the same
/// instruction stream as the interior/halo strategy, so results are
/// bit-identical.
void runOverlappedTile(const StagedVmProgram &SP, uint16_t Root,
                       const OverlapSchedule &Schedule,
                       const std::vector<Image> &Pool, int X0, int X1,
                       int Y0, int Y1, int Channels, VmMode Mode,
                       float *PlaneScratch, float *Regs, float *OutBase,
                       int OutWidth, OverlapTileStats *Stats = nullptr);

/// Executes every kernel of \p P unfused through the VM, filling the
/// pool's non-input images -- the fast-path equivalent of runUnfused.
/// Serial; the parallel tiled driver lives in sim/Executor
/// (runUnfusedVm with ExecutionOptions).
void runUnfusedVm(const Program &P, std::vector<Image> &Pool);

} // namespace kf

#endif // KF_IR_EXPRVM_H
