//===- ir/ExprVM.h - Bytecode compilation of kernel bodies ------*- C++ -*-===//
///
/// \file
/// A linear bytecode representation of kernel bodies. Where the
/// interpreter in sim/Executor walks the AST per pixel (virtual dispatch
/// per node), the VM compiles a body once -- unrolling stencil loops and
/// folding mask coefficients and window offsets into immediate operands
/// -- and then evaluates a flat instruction stream into a register file.
/// This is the evaluation path the benchmarks use for large images; the
/// tree walker stays the semantic reference (the test suite asserts
/// bit-identical results).
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_EXPRVM_H
#define KF_IR_EXPRVM_H

#include "image/Image.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace kf {

/// VM opcodes. Loads read images with the owning kernel's border
/// handling; everything else operates on the register file.
enum class VmOp : uint8_t {
  Const,  ///< Dst = Imm.
  CoordX, ///< Dst = (float)x.
  CoordY, ///< Dst = (float)y.
  Load,   ///< Dst = input[InputIdx] at (x + Ox, y + Oy), channel field.
  Add,    ///< Dst = A + B.
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Pow,
  CmpLT,
  CmpGT,
  Neg,
  Abs,
  Sqrt,
  Exp,
  Log,
  Floor,
  Select, ///< Dst = regs[C] != 0 ? A : B  (C in the Sel field).
};

/// One VM instruction (fixed width; unused fields are zero).
struct VmInst {
  VmOp Op = VmOp::Const;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t Sel = 0;     ///< Select condition register.
  float Imm = 0.0f;     ///< Const immediate.
  int16_t InputIdx = 0; ///< Load: kernel input index.
  int16_t Ox = 0;       ///< Load: x offset (stencil offsets baked in).
  int16_t Oy = 0;       ///< Load: y offset.
  int16_t Channel = -1; ///< Load: -1 = current channel.
};

/// A compiled kernel body.
struct VmProgram {
  std::vector<VmInst> Insts;
  uint16_t ResultReg = 0;
  unsigned NumRegs = 0;

  bool empty() const { return Insts.empty(); }
};

/// Compiles kernel \p Id of \p P. Stencil reductions are fully unrolled:
/// the instruction count grows with the mask sizes.
VmProgram compileKernelBody(const Program &P, KernelId Id);

/// Evaluates \p VM for kernel \p Id at (X, Y, Channel), reading inputs
/// from \p Pool with the kernel's border handling. \p Regs is scratch
/// space of at least VM.NumRegs floats (caller-owned to avoid per-pixel
/// allocation).
float runVm(const VmProgram &VM, const Program &P, KernelId Id,
            const std::vector<Image> &Pool, int X, int Y, int Channel,
            float *Regs);

/// Interior fast path: like runVm but loads index the images directly,
/// skipping border handling. Only valid when every access of the body
/// stays in bounds -- i.e. (X, Y) lies in the kernel's interior region
/// (the same interior/halo decomposition Section IV-B uses for the
/// fused kernels).
float runVmInterior(const VmProgram &VM, const Program &P, KernelId Id,
                    const std::vector<Image> &Pool, int X, int Y,
                    int Channel, float *Regs);

/// Executes every kernel of \p P unfused through the VM, filling the
/// pool's non-input images -- the fast-path equivalent of runUnfused.
void runUnfusedVm(const Program &P, std::vector<Image> &Pool);

} // namespace kf

#endif // KF_IR_EXPRVM_H
