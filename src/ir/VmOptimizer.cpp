//===- ir/VmOptimizer.cpp -----------------------------------------------------===//

#include "ir/VmOptimizer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>

using namespace kf;

std::string kf::formatInterval(const RegInterval &R) {
  if (R.bottom())
    return "unwritten";
  if (R.numericEmpty())
    return "always-nan";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "[%g, %g]%s", static_cast<double>(R.Lo),
                static_cast<double>(R.Hi), R.MayNaN ? " | nan" : "");
  return Buf;
}

//===----------------------------------------------------------------------===//
// Rewrite decisions
//
// These must be exact under the interpreter's operator semantics:
//   std::min(a, b) = (b < a) ? b : a   -- returns a when either is NaN
//   std::max(a, b) = (a < b) ? b : a   -- returns a when either is NaN
//   select: cond != 0 ? a : b          -- NaN != 0 is true; -0 == 0
// Note both min and max return the *first* operand on ties, so deciding
// "TakeA" never has to distinguish -0 from +0; deciding "TakeB" requires
// strict ordering and NaN-freedom on both sides.
//===----------------------------------------------------------------------===//

ClampDecision kf::decideMin(const RegInterval &A, const RegInterval &B) {
  if (A.bottom() || B.bottom())
    return ClampDecision::Keep;
  // min returns A unless B < A strictly: B always >= A numerically (the
  // empty-B sentinel Lo = +inf satisfies this vacuously, and NaN on
  // either side also returns A).
  if (B.Lo >= A.Hi || A.numericEmpty())
    return ClampDecision::TakeA;
  // min returns B only when B < A strictly for every pair, which NaN on
  // either side would break.
  if (B.Hi < A.Lo && !A.MayNaN && !B.MayNaN)
    return ClampDecision::TakeB;
  return ClampDecision::Keep;
}

ClampDecision kf::decideMax(const RegInterval &A, const RegInterval &B) {
  if (A.bottom() || B.bottom())
    return ClampDecision::Keep;
  if (B.Hi <= A.Lo || A.numericEmpty())
    return ClampDecision::TakeA;
  if (A.Hi < B.Lo && !A.MayNaN && !B.MayNaN)
    return ClampDecision::TakeB;
  return ClampDecision::Keep;
}

ClampDecision kf::decideSelect(const RegInterval &Sel) {
  if (Sel.bottom())
    return ClampDecision::Keep;
  // cond != 0 is true for every nonzero numeric value and for NaN. The
  // numeric-empty (always-NaN) sentinel has Lo = +inf, so Lo > 0 covers
  // it; Lo > 0 also excludes both signed zeros (-0 == 0 compares equal).
  if (Sel.Lo > 0.0f || Sel.Hi < 0.0f)
    return ClampDecision::TakeA;
  if (Sel.Lo == 0.0f && Sel.Hi == 0.0f && !Sel.MayNaN)
    return ClampDecision::TakeB;
  return ClampDecision::Keep;
}

//===----------------------------------------------------------------------===//
// The rewriter
//===----------------------------------------------------------------------===//

bool kf::vmOpReadsA(VmOp Op) {
  switch (Op) {
  case VmOp::Const:
  case VmOp::CoordX:
  case VmOp::CoordY:
  case VmOp::Load:
  case VmOp::StageCall:
    return false;
  default:
    return true;
  }
}

bool kf::vmOpReadsB(VmOp Op) {
  switch (Op) {
  case VmOp::Add:
  case VmOp::Sub:
  case VmOp::Mul:
  case VmOp::Div:
  case VmOp::Min:
  case VmOp::Max:
  case VmOp::Pow:
  case VmOp::CmpLT:
  case VmOp::CmpGT:
  case VmOp::Select:
    return true;
  default:
    return false;
  }
}

namespace {

bool readsA(VmOp Op) { return vmOpReadsA(Op); }
bool readsB(VmOp Op) { return vmOpReadsB(Op); }

/// Folds one all-constant ALU instruction with the identical std:: float
/// operations evalAluInst executes, so the folded immediate is bit-equal
/// to what the interpreter would have computed. Returns false for ops
/// that are not pure functions of (A, B).
bool foldAlu(VmOp Op, float A, float B, float &Out) {
  switch (Op) {
  case VmOp::Add:
    Out = A + B;
    return true;
  case VmOp::Sub:
    Out = A - B;
    return true;
  case VmOp::Mul:
    Out = A * B;
    return true;
  case VmOp::Div:
    Out = A / B;
    return true;
  case VmOp::Min:
    Out = std::min(A, B);
    return true;
  case VmOp::Max:
    Out = std::max(A, B);
    return true;
  case VmOp::Pow:
    Out = std::pow(A, B);
    return true;
  case VmOp::CmpLT:
    Out = A < B ? 1.0f : 0.0f;
    return true;
  case VmOp::CmpGT:
    Out = A > B ? 1.0f : 0.0f;
    return true;
  case VmOp::Neg:
    Out = -A;
    return true;
  case VmOp::Abs:
    Out = std::abs(A);
    return true;
  case VmOp::Sqrt:
    Out = std::sqrt(A);
    return true;
  case VmOp::Exp:
    Out = std::exp(A);
    return true;
  case VmOp::Log:
    Out = std::log(A);
    return true;
  case VmOp::Floor:
    Out = std::floor(A);
    return true;
  default:
    return false;
  }
}

/// Zeroes every field \p Inst's opcode does not read, so structurally
/// equal computations compare equal under the CSE key no matter what
/// stale operand bits they carried.
VmInst normalize(const VmInst &Inst) {
  VmInst N;
  N.Op = Inst.Op;
  N.Dst = Inst.Dst;
  switch (Inst.Op) {
  case VmOp::Const:
    N.Imm = Inst.Imm;
    break;
  case VmOp::CoordX:
  case VmOp::CoordY:
    break;
  case VmOp::Load:
    N.InputIdx = Inst.InputIdx;
    N.Ox = Inst.Ox;
    N.Oy = Inst.Oy;
    N.Channel = Inst.Channel;
    break;
  case VmOp::StageCall:
    N.Sel = Inst.Sel;
    N.Ox = Inst.Ox;
    N.Oy = Inst.Oy;
    N.Channel = Inst.Channel;
    break;
  case VmOp::Select:
    N.A = Inst.A;
    N.B = Inst.B;
    N.Sel = Inst.Sel;
    break;
  default:
    N.A = Inst.A;
    if (readsB(Inst.Op))
      N.B = Inst.B;
    break;
  }
  return N;
}

/// Value-number key of a normalized instruction (Dst excluded). Imm is
/// keyed by bit pattern so -0 and +0 constants stay distinct.
using CseKey = std::tuple<uint8_t, uint16_t, uint16_t, uint16_t, uint32_t,
                          int16_t, int16_t, int16_t, int16_t>;

CseKey cseKey(const VmInst &Inst) {
  uint32_t ImmBits;
  static_assert(sizeof(ImmBits) == sizeof(Inst.Imm), "float is 32-bit");
  std::memcpy(&ImmBits, &Inst.Imm, sizeof(ImmBits));
  return CseKey(static_cast<uint8_t>(Inst.Op), Inst.A, Inst.B, Inst.Sel,
                ImmBits, Inst.InputIdx, Inst.Ox, Inst.Oy, Inst.Channel);
}

} // namespace

bool kf::optimizeStagedProgram(StagedVmProgram &SP, uint16_t &Root,
                               const std::vector<StageValueFacts> &Facts,
                               VmOptStats *Stats) {
  VmOptStats Local;
  VmOptStats &S = Stats ? *Stats : Local;
  S = VmOptStats();
  if (Root >= SP.Stages.size() || Facts.size() != SP.Stages.size())
    return false;
  for (const VmStage &Stage : SP.Stages)
    S.OriginalInsts += static_cast<unsigned>(Stage.Code.Insts.size());
  S.OptimizedInsts = S.OriginalInsts;

  // The forward pass relies on the single-assignment form the bytecode
  // compiler emits (one fresh destination per expression node). Foreign
  // streams that reuse destinations are left untouched.
  for (const VmStage &Stage : SP.Stages) {
    std::vector<char> Written(Stage.Code.NumRegs, 0);
    for (const VmInst &Inst : Stage.Code.Insts) {
      if (Inst.Dst >= Stage.Code.NumRegs || Written[Inst.Dst])
        return false;
      Written[Inst.Dst] = 1;
    }
    if (Stage.Code.ResultReg >= Stage.Code.NumRegs ||
        !Written[Stage.Code.ResultReg])
      return false;
  }

  StagedVmProgram New = SP;
  for (size_t SI = 0; SI != New.Stages.size(); ++SI) {
    VmProgram &Code = New.Stages[SI].Code;
    const StageValueFacts &SF = Facts[SI];
    auto factOf = [&](uint16_t Reg) -> RegInterval {
      if (Reg < SF.Regs.size())
        return SF.Regs[Reg];
      return RegInterval(); // bottom: decisions keep, folds skip
    };

    const unsigned NumRegs = Code.NumRegs;
    std::vector<uint16_t> Rename(NumRegs);
    for (unsigned R = 0; R != NumRegs; ++R)
      Rename[R] = static_cast<uint16_t>(R);
    std::vector<char> HasConst(NumRegs, 0);
    std::vector<float> ConstVal(NumRegs, 0.0f);
    std::map<CseKey, uint16_t> Cse;
    std::vector<VmInst> Fwd;
    Fwd.reserve(Code.Insts.size());

    for (const VmInst &Orig : Code.Insts) {
      VmInst Inst = Orig;
      if (readsA(Inst.Op))
        Inst.A = Rename[Inst.A];
      if (readsB(Inst.Op))
        Inst.B = Rename[Inst.B];
      if (Inst.Op == VmOp::Select)
        Inst.Sel = Rename[Inst.Sel];

      // Fact-gated decisions: collapse a decided Min/Max/Select to a
      // rename of the surviving operand. Facts are indexed by the
      // *original* operand registers (renames preserve runtime values,
      // so the decision transfers to the renamed operands).
      ClampDecision Decision = ClampDecision::Keep;
      if (Inst.Op == VmOp::Min)
        Decision = decideMin(factOf(Orig.A), factOf(Orig.B));
      else if (Inst.Op == VmOp::Max)
        Decision = decideMax(factOf(Orig.A), factOf(Orig.B));
      else if (Inst.Op == VmOp::Select)
        Decision = decideSelect(factOf(Orig.Sel));
      if (Decision != ClampDecision::Keep) {
        const uint16_t Src =
            Decision == ClampDecision::TakeA ? Inst.A : Inst.B;
        Rename[Orig.Dst] = Src;
        if (HasConst[Src]) {
          HasConst[Orig.Dst] = 1;
          ConstVal[Orig.Dst] = ConstVal[Src];
        }
        if (Inst.Op == VmOp::Select)
          ++S.SelectsDecided;
        else
          ++S.ClampsRemoved;
        continue;
      }

      // Exact constant folding. Folding to a non-finite or NaN immediate
      // is refused: it would trade an instruction for a KF-B09 warning
      // and a JIT refusal, and guaranteed-bad values are the analyzer's
      // (KF-V04) business, not the optimizer's.
      if (Inst.Op == VmOp::Const) {
        HasConst[Orig.Dst] = 1;
        ConstVal[Orig.Dst] = Inst.Imm;
      } else if (readsA(Inst.Op) && Inst.Op != VmOp::Select &&
                 HasConst[Inst.A] &&
                 (!readsB(Inst.Op) || HasConst[Inst.B])) {
        float Folded = 0.0f;
        if (foldAlu(Inst.Op, ConstVal[Inst.A],
                    readsB(Inst.Op) ? ConstVal[Inst.B] : 0.0f, Folded) &&
            std::isfinite(Folded)) {
          VmInst C;
          C.Op = VmOp::Const;
          C.Dst = Orig.Dst;
          C.Imm = Folded;
          Inst = C;
          HasConst[Orig.Dst] = 1;
          ConstVal[Orig.Dst] = Folded;
          ++S.FoldedConsts;
        }
      }

      // Value-numbering CSE over the renamed stream. Every opcode is a
      // pure function of its operands and the evaluation position, so
      // structurally equal instructions -- including Load and StageCall
      // sites, where a duplicate means a whole redundant recursive
      // recompute -- collapse to the first definition.
      Inst = normalize(Inst);
      auto It = Cse.find(cseKey(Inst));
      if (It != Cse.end()) {
        Rename[Orig.Dst] = It->second;
        if (HasConst[It->second]) {
          HasConst[Orig.Dst] = 1;
          ConstVal[Orig.Dst] = ConstVal[It->second];
        }
        ++S.CseReplaced;
        continue;
      }
      Cse.emplace(cseKey(Inst), Inst.Dst);
      Fwd.push_back(Inst);
    }

    Code.ResultReg = Rename[Code.ResultReg];

    // Backward sweep: drop every instruction whose destination no
    // surviving instruction (or the stage result) reads.
    std::vector<char> Live(NumRegs, 0);
    Live[Code.ResultReg] = 1;
    std::vector<VmInst> Kept;
    Kept.reserve(Fwd.size());
    for (size_t I = Fwd.size(); I != 0; --I) {
      const VmInst &Inst = Fwd[I - 1];
      if (!Live[Inst.Dst])
        continue;
      if (readsA(Inst.Op))
        Live[Inst.A] = 1;
      if (readsB(Inst.Op))
        Live[Inst.B] = 1;
      if (Inst.Op == VmOp::Select)
        Live[Inst.Sel] = 1;
      Kept.push_back(Inst);
    }
    std::reverse(Kept.begin(), Kept.end());
    Code.Insts = std::move(Kept);
  }

  // Stages whose last StageCall site was rewritten away are dead weight:
  // drop everything unreachable from the root, renumbering call targets.
  // Order is preserved, so the strictly-backward invariant (KF-B05)
  // survives the renumbering.
  std::vector<char> Reachable(New.Stages.size(), 0);
  std::vector<uint16_t> Work = {Root};
  Reachable[Root] = 1;
  while (!Work.empty()) {
    const uint16_t SI = Work.back();
    Work.pop_back();
    for (const VmInst &Inst : New.Stages[SI].Code.Insts)
      if (Inst.Op == VmOp::StageCall && !Reachable[Inst.Sel]) {
        Reachable[Inst.Sel] = 1;
        Work.push_back(Inst.Sel);
      }
  }
  std::vector<uint16_t> StageMap(New.Stages.size(), 0);
  {
    std::vector<VmStage> LiveStages;
    uint16_t Next = 0;
    for (size_t SI = 0; SI != New.Stages.size(); ++SI) {
      if (!Reachable[SI]) {
        ++S.RemovedStages;
        continue;
      }
      StageMap[SI] = Next++;
      LiveStages.push_back(std::move(New.Stages[SI]));
    }
    New.Stages = std::move(LiveStages);
    for (VmStage &Stage : New.Stages)
      for (VmInst &Inst : Stage.Code.Insts)
        if (Inst.Op == VmOp::StageCall)
          Inst.Sel = StageMap[Inst.Sel];
  }
  const uint16_t NewRoot = StageMap[Root];

  // Register-frame compaction: dense-renumber each stage's surviving
  // destinations in definition order (single assignment makes the def
  // set the used set), then rebase the frames. StageCall's Sel is a
  // stage index, never a register -- it is not remapped here.
  unsigned RegBase = 0;
  for (VmStage &Stage : New.Stages) {
    std::vector<uint16_t> Remap(Stage.Code.NumRegs, 0);
    uint16_t Next = 0;
    for (const VmInst &Inst : Stage.Code.Insts)
      Remap[Inst.Dst] = Next++;
    for (VmInst &Inst : Stage.Code.Insts) {
      Inst.Dst = Remap[Inst.Dst];
      if (readsA(Inst.Op))
        Inst.A = Remap[Inst.A];
      if (readsB(Inst.Op))
        Inst.B = Remap[Inst.B];
      if (Inst.Op == VmOp::Select)
        Inst.Sel = Remap[Inst.Sel];
    }
    Stage.Code.ResultReg = Remap[Stage.Code.ResultReg];
    Stage.Code.NumRegs = Next;
    Stage.RegBase = RegBase;
    RegBase += Next;
  }
  New.NumRegs = RegBase;

  // Recompute Reach[] with the compiler's recurrence; rewrites only ever
  // remove access sites, so reach can shrink (growing the interior) but
  // never grow. UniformExtents is left as compiled: a surviving-extent
  // set is a subset of the original, so a true claim stays honest.
  New.Reach.assign(New.Stages.size(), 0);
  for (size_t SI = 0; SI != New.Stages.size(); ++SI) {
    int Reach = 0;
    for (const VmInst &Inst : New.Stages[SI].Code.Insts) {
      const int Off = std::max(std::abs(static_cast<int>(Inst.Ox)),
                               std::abs(static_cast<int>(Inst.Oy)));
      if (Inst.Op == VmOp::Load)
        Reach = std::max(Reach, Off);
      else if (Inst.Op == VmOp::StageCall)
        Reach = std::max(Reach, Off + New.Reach[Inst.Sel]);
    }
    New.Reach[SI] = Reach;
  }

  S.OptimizedInsts = 0;
  for (const VmStage &Stage : New.Stages)
    S.OptimizedInsts += static_cast<unsigned>(Stage.Code.Insts.size());

  const bool Changed = S.FoldedConsts != 0 || S.ClampsRemoved != 0 ||
                       S.SelectsDecided != 0 || S.CseReplaced != 0 ||
                       S.RemovedStages != 0 ||
                       S.OptimizedInsts != S.OriginalInsts;
  if (!Changed)
    return false;
  SP = std::move(New);
  Root = NewRoot;
  return true;
}
