//===- ir/Printer.h - Textual dump of programs and exprs --------*- C++ -*-===//
///
/// \file
/// Deterministic textual rendering of expressions, kernels, and programs.
/// Used for golden tests, debugging, and the example drivers; the CUDA
/// backend has its own (code-shaped) printer.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_PRINTER_H
#define KF_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace kf {

/// Renders \p E as a compact prefix/infix expression string. \p InputNames
/// supplies display names per kernel-input index (falls back to "inN").
std::string exprToString(const Expr *E,
                         const std::vector<std::string> &InputNames = {});

/// Renders kernel \p Id of \p P (header plus body).
std::string kernelToString(const Program &P, KernelId Id);

/// Renders the entire program: images, masks, kernels.
std::string programToString(const Program &P);

} // namespace kf

#endif // KF_IR_PRINTER_H
