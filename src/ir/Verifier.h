//===- ir/Verifier.h - Structural validation of programs --------*- C++ -*-===//
///
/// \file
/// Structural validation of a Program before the fusion engine runs:
/// single-producer images, acyclic kernel DAG, operator-kind / body
/// consistency (point kernels must not contain window accesses), and mask
/// well-formedness. Returns human-readable diagnostics instead of aborting
/// so DSL users get actionable messages.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_VERIFIER_H
#define KF_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace kf {

/// Verifies \p P; returns one message per violation (empty means valid).
std::vector<std::string> verifyProgram(const Program &P);

/// Convenience: aborts with the first diagnostic when \p P is invalid.
/// Pipelines call this after construction.
void verifyProgramOrDie(const Program &P);

} // namespace kf

#endif // KF_IR_VERIFIER_H
