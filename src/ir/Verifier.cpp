//===- ir/Verifier.cpp -----------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/Error.h"

#include <set>

using namespace kf;

namespace {

/// Walks one kernel body and records diagnostics.
class BodyChecker {
public:
  BodyChecker(const Program &P, const Kernel &K, const std::string &Where,
              std::vector<std::string> &Diags)
      : P(P), K(K), Where(Where), Diags(Diags) {}

  bool SawStencil = false;
  bool SawNonZeroOffset = false;

  void walk(const Expr *E, bool InStencil) {
    if (!E) {
      Diags.push_back(Where + ": null expression operand");
      return;
    }
    switch (E->Kind) {
    case ExprKind::FloatConst:
    case ExprKind::CoordX:
    case ExprKind::CoordY:
      return;
    case ExprKind::MaskValue:
    case ExprKind::StencilOffX:
    case ExprKind::StencilOffY:
      if (!InStencil)
        Diags.push_back(Where + ": stencil-scoped node outside a stencil");
      return;
    case ExprKind::InputAt:
      checkInput(E->InputIdx, E->Channel);
      if (E->OffsetX != 0 || E->OffsetY != 0)
        SawNonZeroOffset = true;
      return;
    case ExprKind::StencilInput:
      if (!InStencil)
        Diags.push_back(Where + ": window access outside a stencil");
      checkInput(E->InputIdx, E->Channel);
      return;
    case ExprKind::Binary:
      walk(E->Lhs, InStencil);
      walk(E->Rhs, InStencil);
      return;
    case ExprKind::Unary:
      walk(E->Lhs, InStencil);
      return;
    case ExprKind::Select:
      walk(E->Cond, InStencil);
      walk(E->Lhs, InStencil);
      walk(E->Rhs, InStencil);
      return;
    case ExprKind::Stencil:
      SawStencil = true;
      if (InStencil)
        Diags.push_back(Where + ": nested stencils are not supported");
      if (E->MaskIdx < 0 || E->MaskIdx >= static_cast<int>(P.numMasks()))
        Diags.push_back(Where + ": stencil references mask out of range");
      walk(E->Lhs, /*InStencil=*/true);
      return;
    }
    KF_UNREACHABLE("unknown expression kind");
  }

private:
  void checkInput(int InputIdx, int Channel) {
    if (InputIdx < 0 || InputIdx >= static_cast<int>(K.Inputs.size())) {
      Diags.push_back(Where + ": input index out of range");
      return;
    }
    const ImageInfo &In = P.image(K.Inputs[InputIdx]);
    if (Channel >= In.Channels)
      Diags.push_back(Where + ": channel out of range for input '" +
                      In.Name + "'");
    const ImageInfo &Out = P.image(K.Output);
    if (Channel < 0 && In.Channels != Out.Channels)
      Diags.push_back(Where +
                      ": implicit channel access requires matching channel "
                      "counts (input '" +
                      In.Name + "')");
  }

  const Program &P;
  const Kernel &K;
  const std::string &Where;
  std::vector<std::string> &Diags;
};

} // namespace

std::vector<std::string> kf::verifyProgram(const Program &P) {
  std::vector<std::string> Diags;

  for (int M = 0; M != static_cast<int>(P.numMasks()); ++M) {
    const Mask &Msk = P.mask(M);
    if (Msk.Width <= 0 || Msk.Height <= 0 || Msk.Width % 2 == 0 ||
        Msk.Height % 2 == 0)
      Diags.push_back("mask " + std::to_string(M) +
                      ": extents must be positive and odd");
  }

  std::set<ImageId> Produced;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    const Kernel &K = P.kernel(Id);
    std::string Where = "kernel '" + K.Name + "'";

    if (!Produced.insert(K.Output).second)
      Diags.push_back(Where + ": image '" + P.image(K.Output).Name +
                      "' has more than one producer");
    if (K.Granularity <= 0)
      Diags.push_back(Where + ": granularity must be positive");

    const ImageInfo &Out = P.image(K.Output);
    for (ImageId In : K.Inputs) {
      const ImageInfo &InInfo = P.image(In);
      if (InInfo.Width != Out.Width || InInfo.Height != Out.Height)
        Diags.push_back(Where + ": input '" + InInfo.Name +
                        "' shape differs from output shape");
      if (In == K.Output)
        Diags.push_back(Where + ": reads its own output");
    }

    BodyChecker Checker(P, K, Where, Diags);
    Checker.walk(K.Body, /*InStencil=*/false);

    bool IsWindowed = Checker.SawStencil || Checker.SawNonZeroOffset;
    if (K.Kind == OperatorKind::Point && IsWindowed)
      Diags.push_back(Where + ": point kernels must access inputs at the "
                              "iteration point only");
    if (K.Kind == OperatorKind::Local && !IsWindowed)
      Diags.push_back(Where +
                      ": local kernels must contain a window access");
  }

  if (P.buildKernelDag().hasCycle())
    Diags.push_back("kernel dependence graph has a cycle");

  return Diags;
}

void kf::verifyProgramOrDie(const Program &P) {
  std::vector<std::string> Diags = verifyProgram(P);
  if (!Diags.empty())
    reportFatalError("program '" + P.name() + "' is invalid: " + Diags[0]);
}
