//===- ir/Expr.h - Kernel body expression AST -------------------*- C++ -*-===//
///
/// \file
/// The expression AST of kernel bodies in the embedded DSL. A kernel
/// computes one output pixel per iteration-space point by evaluating its
/// body expression; local (stencil) operators additionally contain Stencil
/// reduction nodes that walk a mask window.
///
/// The AST is what makes kernel fusion a *source-to-source* transformation
/// in this reproduction: the fuser substitutes producer bodies into consumer
/// accesses (register promotion / recompute), and the CUDA backend prints
/// the resulting trees as device code.
///
/// Nodes are immutable and arena-allocated inside an ExprContext; they are
/// freely shared between kernels of the same program.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_EXPR_H
#define KF_IR_EXPR_H

#include <cstddef>
#include <cstdint>
#include <deque>

namespace kf {

/// Discriminator for Expr nodes (LLVM-style kind field instead of RTTI).
enum class ExprKind : uint8_t {
  FloatConst,    ///< Literal float value.
  CoordX,        ///< Iteration-space x coordinate (as float).
  CoordY,        ///< Iteration-space y coordinate (as float).
  InputAt,       ///< Read input image InputIdx at iter + (OffsetX, OffsetY).
  StencilInput,  ///< Inside Stencil: input at iter + current window offset.
  MaskValue,     ///< Inside Stencil: current mask coefficient.
  StencilOffX,   ///< Inside Stencil: current window x offset (as float).
  StencilOffY,   ///< Inside Stencil: current window y offset (as float).
  Binary,        ///< Two-operand arithmetic / comparison.
  Unary,         ///< One-operand arithmetic.
  Select,        ///< Cond != 0 ? TrueValue : FalseValue.
  Stencil,       ///< Reduce an element expression over a mask window.
};

/// Binary operators. Comparisons yield 1.0f / 0.0f.
enum class BinOp : uint8_t { Add, Sub, Mul, Div, Min, Max, Pow, CmpLT, CmpGT };

/// Unary operators. Sqrt/Exp/Log are special-function-unit (SFU) operations
/// in the cost model (Eq. 6 of the paper); the rest are ALU operations.
enum class UnOp : uint8_t { Neg, Abs, Sqrt, Exp, Log, Floor };

/// Reduction combining operator of a Stencil node.
enum class ReduceOp : uint8_t { Sum, Product, Min, Max };

/// True for operators executed on the GPU's special function units.
bool isSfuUnOp(UnOp Op);
/// True for binary operators executed on the SFUs (currently Pow).
bool isSfuBinOp(BinOp Op);

/// An immutable AST node. All fields are populated by ExprContext factory
/// methods; which fields are meaningful depends on Kind.
struct Expr {
  ExprKind Kind;

  // FloatConst.
  float Value = 0.0f;

  // InputAt / StencilInput: which kernel input is read and, for InputAt,
  // the constant offset from the iteration point. Channel -1 means "the
  // channel currently being computed"; >= 0 selects a fixed channel.
  int InputIdx = 0;
  int OffsetX = 0;
  int OffsetY = 0;
  int Channel = -1;

  // Binary / Unary / Select / Stencil operands.
  BinOp BinaryOp = BinOp::Add;
  UnOp UnaryOp = UnOp::Neg;
  ReduceOp Reduce = ReduceOp::Sum;
  int MaskIdx = 0; ///< Stencil: index into the program's mask table.
  const Expr *Lhs = nullptr;
  const Expr *Rhs = nullptr;
  const Expr *Cond = nullptr;
};

/// Arena owning Expr nodes. Factory methods assert structural rules that
/// the verifier re-checks at program level.
class ExprContext {
public:
  const Expr *floatConst(float Value);
  const Expr *coordX();
  const Expr *coordY();

  /// Point access to input \p InputIdx at the iteration point plus a
  /// constant offset. Point operators must use zero offsets.
  const Expr *inputAt(int InputIdx, int OffsetX = 0, int OffsetY = 0,
                      int Channel = -1);

  /// Window access inside a Stencil element expression.
  const Expr *stencilInput(int InputIdx, int Channel = -1);
  const Expr *maskValue();
  const Expr *stencilOffX();
  const Expr *stencilOffY();

  const Expr *binary(BinOp Op, const Expr *Lhs, const Expr *Rhs);
  const Expr *unary(UnOp Op, const Expr *Operand);
  const Expr *select(const Expr *Cond, const Expr *TrueValue,
                     const Expr *FalseValue);

  /// Reduce \p Element over the window of mask \p MaskIdx with \p Op.
  const Expr *stencil(int MaskIdx, ReduceOp Op, const Expr *Element);

  // Convenience arithmetic wrappers.
  const Expr *add(const Expr *L, const Expr *R) {
    return binary(BinOp::Add, L, R);
  }
  const Expr *sub(const Expr *L, const Expr *R) {
    return binary(BinOp::Sub, L, R);
  }
  const Expr *mul(const Expr *L, const Expr *R) {
    return binary(BinOp::Mul, L, R);
  }
  const Expr *div(const Expr *L, const Expr *R) {
    return binary(BinOp::Div, L, R);
  }

  size_t numExprs() const { return Arena.size(); }

private:
  const Expr *make(Expr Node);
  std::deque<Expr> Arena;
};

} // namespace kf

#endif // KF_IR_EXPR_H
