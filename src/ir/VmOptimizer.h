//===- ir/VmOptimizer.h - Fact-gated bytecode optimizer ---------*- C++ -*-===//
///
/// \file
/// A bytecode-to-bytecode rewriter over staged VM programs, gated on the
/// per-register value facts the interval abstract interpreter
/// (analysis/IntervalAnalysis.h) proves. Every rewrite is required to be
/// **bit-identical** on every pixel the original program could evaluate
/// -- interior, halo, index-exchanged exterior, and overlapped-tiling
/// plane cells alike -- because the differential test suites compare
/// optimized session plans against the unoptimized reference paths at
/// full float precision.
///
/// The passes, in order per stage: copy propagation (decided Min/Max/
/// Select collapse to operand renames), exact constant folding (with the
/// same std:: float operations the interpreter executes; never folding
/// to a non-finite constant, which would trip KF-B09 and the JIT gate),
/// common-subexpression elimination (including StageCall sites, which
/// deduplicates whole recursive recomputes), a backward dead-instruction
/// sweep from the stage result, dead-stage removal from the launch root,
/// and register-frame compaction. The result is re-validated through
/// BytecodeValidator (KF-B01..B11) by the caller before it may replace
/// the original program.
///
/// The interval domain (RegInterval) lives here rather than in
/// src/analysis because the rewriter consumes the facts and kf_analysis
/// already links against kf_ir, not the other way around.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_VMOPTIMIZER_H
#define KF_IR_VMOPTIMIZER_H

#include "ir/ExprVM.h"

#include <cmath>
#include <string>
#include <vector>

namespace kf {

/// The abstract value of one register: the closed float interval
/// [Lo, Hi] of its possible non-NaN outcomes (endpoints may be +-inf),
/// plus whether NaN is a possible outcome. The empty numeric range --
/// "no non-NaN outcome exists" -- is the sentinel Lo = +inf, Hi = -inf;
/// an always-NaN value is that sentinel with MayNaN set. Lo and Hi are
/// themselves never NaN.
struct RegInterval {
  float Lo = INFINITY;  ///< Sentinel pair: the default-constructed
  float Hi = -INFINITY; ///< interval is bottom (no value possible).
  bool MayNaN = false;

  /// Top: any float including NaN.
  static RegInterval full() {
    RegInterval R;
    R.Lo = -INFINITY;
    R.Hi = INFINITY;
    R.MayNaN = true;
    return R;
  }

  /// The singleton {V}; a NaN \p V maps to the always-NaN element.
  static RegInterval point(float V) {
    RegInterval R;
    if (std::isnan(V)) {
      R.MayNaN = true;
    } else {
      R.Lo = V;
      R.Hi = V;
    }
    return R;
  }

  static RegInterval range(float LoIn, float HiIn, bool MayNaNIn = false) {
    RegInterval R;
    R.Lo = LoIn;
    R.Hi = HiIn;
    R.MayNaN = MayNaNIn;
    return R;
  }

  /// No non-NaN outcome (with MayNaN: the value is always NaN; without:
  /// bottom -- the register can hold no value at all).
  bool numericEmpty() const { return !(Lo <= Hi); }

  /// Bottom: the register was never written (or the fact is absent).
  bool bottom() const { return numericEmpty() && !MayNaN; }

  /// Whether the numeric range admits zero (either sign).
  bool containsZero() const { return Lo <= 0.0f && 0.0f <= Hi; }

  bool mayPosInf() const { return Hi == INFINITY && !numericEmpty(); }
  bool mayNegInf() const { return Lo == -INFINITY && !numericEmpty(); }
  bool mayInf() const { return mayPosInf() || mayNegInf(); }

  /// Soundness predicate the property suite asserts: every concretely
  /// observed value must satisfy this.
  bool contains(float V) const {
    if (std::isnan(V))
      return MayNaN;
    return Lo <= V && V <= Hi;
  }

  /// Least upper bound.
  void join(const RegInterval &O) {
    Lo = std::min(Lo, O.Lo);
    Hi = std::max(Hi, O.Hi);
    MayNaN = MayNaN || O.MayNaN;
  }

  /// Folds one concrete outcome into the interval.
  void joinValue(float V) {
    if (std::isnan(V)) {
      MayNaN = true;
      return;
    }
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
};

/// Renders \p R for the kfc --analyze interval table: "[lo, hi]",
/// "[lo, hi] | nan", "always-nan", or "unwritten".
std::string formatInterval(const RegInterval &R);

/// Whether \p Op reads the A (resp. B) register operand. Const, CoordX/Y,
/// Load and StageCall read no registers; only the binary arithmetic ops,
/// the comparisons and Select read B. (Select additionally reads the Sel
/// register; StageCall's Sel is a stage index, not a register.)
bool vmOpReadsA(VmOp Op);
bool vmOpReadsB(VmOp Op);

/// The exported facts of one stage of a staged program: one interval per
/// frame-relative register (bottom for registers the stage never
/// writes), plus the stage's result interval. Intervals are
/// position-independent -- they cover every pixel, border mode, and
/// execution path -- which is what lets the property suite check final
/// register states without tracking where each value was computed.
struct StageValueFacts {
  std::vector<RegInterval> Regs;
  RegInterval Result;
};

/// How a fact decides a Min/Max/Select instruction. TakeA/TakeB assert
/// that replacing the instruction with a copy of the named operand is
/// bit-identical for every value the operands can hold, including NaN
/// propagation and signed-zero ordering under the exact
/// std::min/std::max/!= semantics the interpreter executes.
enum class ClampDecision : uint8_t { Keep, TakeA, TakeB };

/// Decision for `Dst = std::min(A, B)` (= B < A ? B : A).
ClampDecision decideMin(const RegInterval &A, const RegInterval &B);

/// Decision for `Dst = std::max(A, B)` (= A < B ? B : A).
ClampDecision decideMax(const RegInterval &A, const RegInterval &B);

/// Decision for `Dst = Sel != 0 ? A : B`, from the condition interval
/// (NaN compares unequal to zero, so an always-NaN condition takes A).
ClampDecision decideSelect(const RegInterval &Sel);

/// Counters of one optimizeStagedProgram run.
struct VmOptStats {
  unsigned FoldedConsts = 0;   ///< ALU instructions folded to Const.
  unsigned ClampsRemoved = 0;  ///< Min/Max decided to one operand.
  unsigned SelectsDecided = 0; ///< Selects decided to one arm.
  unsigned CseReplaced = 0;    ///< Instructions removed as duplicates.
  unsigned RemovedStages = 0;  ///< Stages unreachable from the root.
  unsigned OriginalInsts = 0;  ///< Total instructions before.
  unsigned OptimizedInsts = 0; ///< Total instructions after.

  unsigned removedInsts() const {
    return OriginalInsts >= OptimizedInsts ? OriginalInsts - OptimizedInsts
                                           : 0;
  }
};

/// Rewrites \p SP in place using per-stage \p Facts (one StageValueFacts
/// per stage, Regs sized to the stage frame), rebasing \p Root if dead
/// stages are dropped. Returns true when anything changed. The rewritten
/// program preserves every KF-B invariant the input satisfied (the
/// caller re-validates regardless) and recomputes Reach[]; a shrunk
/// reach only widens the interior, never the footprint. Bails out
/// unchanged on streams that are not in the single-assignment form the
/// bytecode compiler emits.
bool optimizeStagedProgram(StagedVmProgram &SP, uint16_t &Root,
                           const std::vector<StageValueFacts> &Facts,
                           VmOptStats *Stats = nullptr);

} // namespace kf

#endif // KF_IR_VMOPTIMIZER_H
