//===- ir/Simplify.cpp -------------------------------------------------------===//

#include "ir/Simplify.h"

#include "support/Error.h"

#include <cmath>
#include <map>
#include <string>

using namespace kf;

static bool isConst(const Expr *E, float Value) {
  return E->Kind == ExprKind::FloatConst && E->Value == Value;
}

/// Folds a binary op over two constants with the evaluator's semantics.
static float foldBinary(BinOp Op, float L, float R) {
  switch (Op) {
  case BinOp::Add:
    return L + R;
  case BinOp::Sub:
    return L - R;
  case BinOp::Mul:
    return L * R;
  case BinOp::Div:
    return L / R;
  case BinOp::Min:
    return std::min(L, R);
  case BinOp::Max:
    return std::max(L, R);
  case BinOp::Pow:
    return std::pow(L, R);
  case BinOp::CmpLT:
    return L < R ? 1.0f : 0.0f;
  case BinOp::CmpGT:
    return L > R ? 1.0f : 0.0f;
  }
  KF_UNREACHABLE("unknown binary op");
}

static float foldUnary(UnOp Op, float V) {
  switch (Op) {
  case UnOp::Neg:
    return -V;
  case UnOp::Abs:
    return std::abs(V);
  case UnOp::Sqrt:
    return std::sqrt(V);
  case UnOp::Exp:
    return std::exp(V);
  case UnOp::Log:
    return std::log(V);
  case UnOp::Floor:
    return std::floor(V);
  }
  KF_UNREACHABLE("unknown unary op");
}

const Expr *kf::simplifyExpr(ExprContext &Ctx, const Expr *E) {
  switch (E->Kind) {
  case ExprKind::FloatConst:
  case ExprKind::CoordX:
  case ExprKind::CoordY:
  case ExprKind::InputAt:
  case ExprKind::StencilInput:
  case ExprKind::MaskValue:
  case ExprKind::StencilOffX:
  case ExprKind::StencilOffY:
    return E;

  case ExprKind::Binary: {
    const Expr *L = simplifyExpr(Ctx, E->Lhs);
    const Expr *R = simplifyExpr(Ctx, E->Rhs);
    if (L->Kind == ExprKind::FloatConst && R->Kind == ExprKind::FloatConst)
      return Ctx.floatConst(foldBinary(E->BinaryOp, L->Value, R->Value));
    // Float-safe identities only (never drop a non-constant operand whose
    // value could be NaN or infinite into a constant).
    switch (E->BinaryOp) {
    case BinOp::Add:
      if (isConst(R, 0.0f))
        return L;
      if (isConst(L, 0.0f))
        return R;
      break;
    case BinOp::Sub:
      if (isConst(R, 0.0f))
        return L;
      break;
    case BinOp::Mul:
      if (isConst(R, 1.0f))
        return L;
      if (isConst(L, 1.0f))
        return R;
      break;
    case BinOp::Div:
      if (isConst(R, 1.0f))
        return L;
      break;
    default:
      break;
    }
    if (L == E->Lhs && R == E->Rhs)
      return E;
    return Ctx.binary(E->BinaryOp, L, R);
  }

  case ExprKind::Unary: {
    const Expr *V = simplifyExpr(Ctx, E->Lhs);
    if (V->Kind == ExprKind::FloatConst)
      return Ctx.floatConst(foldUnary(E->UnaryOp, V->Value));
    if (E->UnaryOp == UnOp::Neg && V->Kind == ExprKind::Unary &&
        V->UnaryOp == UnOp::Neg)
      return V->Lhs;
    if (V == E->Lhs)
      return E;
    return Ctx.unary(E->UnaryOp, V);
  }

  case ExprKind::Select: {
    const Expr *Cond = simplifyExpr(Ctx, E->Cond);
    const Expr *L = simplifyExpr(Ctx, E->Lhs);
    const Expr *R = simplifyExpr(Ctx, E->Rhs);
    if (Cond->Kind == ExprKind::FloatConst)
      return Cond->Value != 0.0f ? L : R;
    if (Cond == E->Cond && L == E->Lhs && R == E->Rhs)
      return E;
    return Ctx.select(Cond, L, R);
  }

  case ExprKind::Stencil: {
    const Expr *Elem = simplifyExpr(Ctx, E->Lhs);
    if (Elem == E->Lhs)
      return E;
    return Ctx.stencil(E->MaskIdx, E->Reduce, Elem);
  }
  }
  KF_UNREACHABLE("unknown expression kind");
}

unsigned kf::simplifyProgram(Program &P) {
  unsigned Changed = 0;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    const Expr *Simplified = simplifyExpr(P.context(), P.kernel(Id).Body);
    if (Simplified != P.kernel(Id).Body) {
      P.kernel(Id).Body = Simplified;
      ++Changed;
    }
  }
  return Changed;
}

namespace {

/// Structural hash-consing over expression trees. Interns every subtree
/// into an id; accesses are keyed by *program image id* so bodies of
/// different kernels can share (pass each body's input mapping).
class ExprInterner {
public:
  /// Interns \p E whose InputIdx values map to \p InputImages. Counts
  /// each newly interned arithmetic node. \p CurrentMask scopes
  /// stencil-relative leaves: an element under a 3x3 mask never unifies
  /// with one under a different mask (their windows differ).
  int intern(const Expr *E, const std::vector<ImageId> &InputImages,
             int CurrentMask = -1) {
    std::string Key;
    bool Arithmetic = false;
    switch (E->Kind) {
    case ExprKind::FloatConst:
      Key = "c" + std::to_string(E->Value);
      break;
    case ExprKind::CoordX:
      Key = "x";
      break;
    case ExprKind::CoordY:
      Key = "y";
      break;
    case ExprKind::MaskValue:
      Key = "mv" + std::to_string(CurrentMask);
      break;
    case ExprKind::StencilOffX:
      Key = "dx" + std::to_string(CurrentMask);
      break;
    case ExprKind::StencilOffY:
      Key = "dy" + std::to_string(CurrentMask);
      break;
    case ExprKind::InputAt:
      Key = "in" + std::to_string(InputImages[E->InputIdx]) + "@" +
            std::to_string(E->OffsetX) + "," + std::to_string(E->OffsetY) +
            "." + std::to_string(E->Channel);
      break;
    case ExprKind::StencilInput:
      Key = "win" + std::to_string(InputImages[E->InputIdx]) + "." +
            std::to_string(E->Channel) + "@m" +
            std::to_string(CurrentMask);
      break;
    case ExprKind::Binary:
      Key = "b" + std::to_string(static_cast<int>(E->BinaryOp)) + "(" +
            std::to_string(intern(E->Lhs, InputImages, CurrentMask)) + "," +
            std::to_string(intern(E->Rhs, InputImages, CurrentMask)) + ")";
      Arithmetic = true;
      break;
    case ExprKind::Unary:
      Key = "u" + std::to_string(static_cast<int>(E->UnaryOp)) + "(" +
            std::to_string(intern(E->Lhs, InputImages, CurrentMask)) + ")";
      Arithmetic = true;
      break;
    case ExprKind::Select:
      Key = "s(" + std::to_string(intern(E->Cond, InputImages, CurrentMask)) +
            "," + std::to_string(intern(E->Lhs, InputImages, CurrentMask)) +
            "," + std::to_string(intern(E->Rhs, InputImages, CurrentMask)) +
            ")";
      Arithmetic = true;
      break;
    case ExprKind::Stencil:
      Key = "st" + std::to_string(E->MaskIdx) + "," +
            std::to_string(static_cast<int>(E->Reduce)) + "(" +
            std::to_string(intern(E->Lhs, InputImages, E->MaskIdx)) + ")";
      Arithmetic = true; // The reduction itself is work.
      break;
    }
    auto [It, Inserted] = Ids.emplace(Key, static_cast<int>(Ids.size()));
    if (Inserted && Arithmetic)
      ++UniqueArithmetic;
    return It->second;
  }

  long long UniqueArithmetic = 0;

private:
  std::map<std::string, int> Ids;
};

/// Total (unshared) arithmetic node count.
long long totalOpsImpl(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::FloatConst:
  case ExprKind::CoordX:
  case ExprKind::CoordY:
  case ExprKind::InputAt:
  case ExprKind::StencilInput:
  case ExprKind::MaskValue:
  case ExprKind::StencilOffX:
  case ExprKind::StencilOffY:
    return 0;
  case ExprKind::Binary:
    return 1 + totalOpsImpl(E->Lhs) + totalOpsImpl(E->Rhs);
  case ExprKind::Unary:
    return 1 + totalOpsImpl(E->Lhs);
  case ExprKind::Select:
    return 1 + totalOpsImpl(E->Cond) + totalOpsImpl(E->Lhs) +
           totalOpsImpl(E->Rhs);
  case ExprKind::Stencil:
    return 1 + totalOpsImpl(E->Lhs);
  }
  KF_UNREACHABLE("unknown expression kind");
}

} // namespace

long long kf::countUniqueOps(const Expr *E) {
  ExprInterner Interner;
  // Input indices without a program context: identity mapping suffices
  // for a single body.
  std::vector<ImageId> Identity(16);
  for (unsigned I = 0; I != Identity.size(); ++I)
    Identity[I] = I;
  Interner.intern(E, Identity);
  return Interner.UniqueArithmetic;
}

long long kf::countTotalOps(const Expr *E) { return totalOpsImpl(E); }

long long
kf::crossKernelCseSavings(const Program &P,
                          const std::vector<KernelId> &Kernels) {
  long long SumPerKernel = 0;
  for (KernelId Id : Kernels) {
    ExprInterner Local;
    Local.intern(P.kernel(Id).Body, P.kernel(Id).Inputs);
    SumPerKernel += Local.UniqueArithmetic;
  }
  ExprInterner Union;
  for (KernelId Id : Kernels)
    Union.intern(P.kernel(Id).Body, P.kernel(Id).Inputs);
  return SumPerKernel - Union.UniqueArithmetic;
}

double kf::deriveGamma(const Program &P, KernelId Src, KernelId Dst,
                       double AluCost, double LaunchCyclesPerPixel) {
  return AluCost *
             static_cast<double>(crossKernelCseSavings(P, {Src, Dst})) +
         LaunchCyclesPerPixel;
}
