//===- ir/Simplify.h - Expression simplification and CSE analysis -*- C++ -*-===//
///
/// \file
/// Expression-level optimizations on kernel bodies:
///
///   - simplifyExpr: bottom-up constant folding plus float-safe algebraic
///     identities (x*1, x/1, x+0, x-0, double negation, select on a
///     constant condition). No reassociation or distribution; results are
///     numerically identical for finite inputs.
///
///   - countUniqueOps / crossKernelCseSavings: structural-hashing CSE
///     analysis. The paper folds "enlarging the scope for further
///     optimizations such as common sub-expression elimination" into the
///     constant gamma term of Eq. 12; these helpers *derive* that gain:
///     the arithmetic operations a compiler can deduplicate once kernel
///     bodies share one scope.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_SIMPLIFY_H
#define KF_IR_SIMPLIFY_H

#include "ir/Program.h"

namespace kf {

/// Returns a simplified equivalent of \p E, allocating any new nodes in
/// \p Ctx. The result computes bit-identical values (only exact
/// identities are applied).
const Expr *simplifyExpr(ExprContext &Ctx, const Expr *E);

/// Simplifies every kernel body of \p P in place. Returns the number of
/// kernels whose body changed.
unsigned simplifyProgram(Program &P);

/// Number of arithmetic operations (ALU + SFU) in \p E counting every
/// structurally distinct subtree once -- the op count after perfect CSE
/// within one kernel. Stencil elements count once (the loop body).
long long countUniqueOps(const Expr *E);

/// Number of arithmetic operations in \p E with no sharing at all (every
/// textual occurrence counts). Stencil elements count once.
long long countTotalOps(const Expr *E);

/// Operations a compiler saves by CSE across the bodies of \p Kernels
/// when fusion puts them into one scope, beyond what per-kernel CSE
/// already achieves: sum of per-kernel unique ops minus unique ops over
/// the union scope. Bodies must belong to \p P; accesses are considered
/// equal only when they read the same program image at the same offsets.
long long crossKernelCseSavings(const Program &P,
                                const std::vector<KernelId> &Kernels);

/// A derived estimate of the paper's gamma term (Eq. 12) for fusing
/// \p Src with \p Dst: the ALU cost of cross-kernel CSE savings plus the
/// per-pixel share of the saved kernel launch.
double deriveGamma(const Program &P, KernelId Src, KernelId Dst,
                   double AluCost, double LaunchCyclesPerPixel);

} // namespace kf

#endif // KF_IR_SIMPLIFY_H
