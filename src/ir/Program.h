//===- ir/Program.h - Kernel pipelines as DAGs over images ------*- C++ -*-===//
///
/// \file
/// A Program is the DSL-level view of an image-processing application: a
/// set of images, masks, and kernels. Kernels and the images they produce/
/// consume induce the dependence DAG G = (V, E) of Section II that the
/// fusion engine partitions.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IR_PROGRAM_H
#define KF_IR_PROGRAM_H

#include "graph/Digraph.h"
#include "ir/Kernel.h"

#include <optional>

namespace kf {

/// Shape metadata of a program image.
struct ImageInfo {
  std::string Name;
  int Width = 0;
  int Height = 0;
  int Channels = 1;

  /// IS(i) of the benefit model: the number of pixels.
  long long iterationSpace() const {
    return static_cast<long long>(Width) * Height;
  }
};

/// An image-processing pipeline. Images and masks are added first; kernels
/// reference them by id. The expression arena lives in the program so that
/// fused programs can extend it.
class Program {
public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  // Programs own an expression arena; moving is fine, copying is not.
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const std::string &name() const { return Name; }

  ImageId addImage(std::string ImageName, int Width, int Height,
                   int Channels = 1);
  int addMask(Mask MaskIn);
  KernelId addKernel(Kernel KernelIn);

  unsigned numImages() const { return static_cast<unsigned>(Images.size()); }
  unsigned numMasks() const { return static_cast<unsigned>(Masks.size()); }
  unsigned numKernels() const {
    return static_cast<unsigned>(Kernels.size());
  }

  const ImageInfo &image(ImageId Id) const;
  const Mask &mask(int Idx) const;
  const Kernel &kernel(KernelId Id) const;
  Kernel &kernel(KernelId Id);
  const std::vector<Kernel> &kernels() const { return Kernels; }

  ExprContext &context() { return Ctx; }
  const ExprContext &context() const { return Ctx; }

  /// Kernel producing \p Id, if any. Verified programs have at most one.
  std::optional<KernelId> producerOf(ImageId Id) const;

  /// Kernels reading \p Id, in kernel order.
  std::vector<KernelId> consumersOf(ImageId Id) const;

  /// Images no kernel produces (pipeline inputs).
  std::vector<ImageId> externalInputs() const;

  /// Images produced but never consumed (pipeline outputs).
  std::vector<ImageId> terminalOutputs() const;

  /// Builds the kernel dependence DAG: node n mirrors kernel n; one edge
  /// per (producer, consumer) pair per communicated image. Edge weights
  /// are zero; the benefit model assigns them.
  Digraph buildKernelDag() const;

  /// The image communicated along DAG edge (\p Producer, \p Consumer):
  /// the producer's output when the consumer reads it.
  std::optional<ImageId> communicatedImage(KernelId Producer,
                                           KernelId Consumer) const;

  /// Content hash of the program IR: images (names and shapes), masks
  /// (extents and coefficient bits), and kernels (header fields and the
  /// full body expression tree, float constants hashed by bit pattern).
  /// Two programs built independently -- e.g. parsed from the same .kfp
  /// text -- hash equally iff they are structurally identical; changing
  /// any single constant in any kernel body changes the hash. Used as the
  /// plan-cache key of the serving layer (sim/Session.h).
  uint64_t structuralHash() const;

private:
  std::string Name;
  std::vector<ImageInfo> Images;
  std::vector<Mask> Masks;
  std::vector<Kernel> Kernels;
  ExprContext Ctx;
};

} // namespace kf

#endif // KF_IR_PROGRAM_H
