//===- support/Error.h - Fatal error reporting and unreachable -*- C++ -*-===//
//
// Part of the kernel-fusion reproduction of Qiao et al., CGO 2019.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting helpers. The library follows the LLVM convention of
/// not using exceptions: programmatic errors abort via assertions or
/// kf::reportFatalError, and recoverable conditions are surfaced through
/// return values (std::optional / status structs) at the API boundary.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_ERROR_H
#define KF_SUPPORT_ERROR_H

#include <string>

namespace kf {

/// Prints \p Message to stderr and aborts the process. Used for invariant
/// violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the control flow that must never be reached if the
/// program invariants hold. Aborts with \p Message when executed.
[[noreturn]] void unreachableImpl(const char *Message, const char *File,
                                  unsigned Line);

} // namespace kf

/// Use KF_UNREACHABLE("why") for covered-switch defaults and impossible
/// states; it reports file/line before aborting.
#define KF_UNREACHABLE(MSG) ::kf::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // KF_SUPPORT_ERROR_H
