//===- support/Trace.cpp ----------------------------------------------------===//

#include "support/Trace.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace kf;

std::atomic<bool> TraceRecorder::EnabledFlag{false};

TraceRecorder::TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder Recorder;
  return Recorder;
}

void TraceRecorder::setEnabled(bool Enabled) {
  EnabledFlag.store(Enabled, std::memory_order_relaxed);
}

double TraceRecorder::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

uint32_t TraceRecorder::threadId() {
  // Cached per OS thread; the slow path assigns the next sequential id.
  thread_local uint32_t Cached = UINT32_MAX;
  if (Cached == UINT32_MAX) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Cached = NextThreadId++;
  }
  return Cached;
}

void TraceRecorder::recordSpan(
    std::string Name, std::string Category, double StartUs,
    double DurationUs, std::vector<std::pair<std::string, double>> Args) {
  if (!enabled())
    return;
  TraceSpanRecord Record;
  Record.Name = std::move(Name);
  Record.Category = std::move(Category);
  Record.ThreadId = threadId();
  Record.StartUs = StartUs;
  Record.DurationUs = DurationUs;
  Record.Args = std::move(Args);
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(std::move(Record));
}

void TraceRecorder::addCounter(const std::string &Name, double Delta) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

void TraceRecorder::setGauge(const std::string &Name, double Value) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  GaugeValue &Gauge = Gauges[Name];
  Gauge.Last = Value;
  Gauge.Max = Gauge.Samples == 0 ? Value : std::max(Gauge.Max, Value);
  ++Gauge.Samples;
}

std::vector<TraceSpanRecord> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans;
}

std::map<std::string, double> TraceRecorder::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

std::map<std::string, GaugeValue> TraceRecorder::gauges() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Gauges;
}

std::vector<SpanAggregate> TraceRecorder::aggregateSpans() const {
  std::map<std::string, SpanAggregate> ByName;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const TraceSpanRecord &Span : Spans) {
      SpanAggregate &Agg = ByName[Span.Name];
      Agg.Name = Span.Name;
      ++Agg.Count;
      Agg.TotalUs += Span.DurationUs;
    }
  }
  std::vector<SpanAggregate> Result;
  Result.reserve(ByName.size());
  for (auto &[Name, Agg] : ByName)
    Result.push_back(std::move(Agg));
  std::sort(Result.begin(), Result.end(),
            [](const SpanAggregate &A, const SpanAggregate &B) {
              return A.TotalUs > B.TotalUs;
            });
  return Result;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.clear();
  Counters.clear();
  Gauges.clear();
}

/// Escapes the characters JSON string literals cannot carry verbatim.
static std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

bool TraceRecorder::writeChromeTrace(const std::string &Path) const {
  std::vector<TraceSpanRecord> Snapshot = spans();
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out.good())
    return false;
  Out << "{\"traceEvents\": [\n";
  bool First = true;
  for (const TraceSpanRecord &Span : Snapshot) {
    if (!First)
      Out << ",\n";
    First = false;
    Out << "  {\"name\": \"" << jsonEscape(Span.Name) << "\", \"cat\": \""
        << jsonEscape(Span.Category) << "\", \"ph\": \"X\", \"pid\": 0, "
        << "\"tid\": " << Span.ThreadId << ", \"ts\": "
        << formatDouble(Span.StartUs, 3) << ", \"dur\": "
        << formatDouble(Span.DurationUs, 3);
    if (!Span.Args.empty()) {
      Out << ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[Key, Value] : Span.Args) {
        if (!FirstArg)
          Out << ", ";
        FirstArg = false;
        Out << "\"" << jsonEscape(Key) << "\": " << formatDouble(Value, 4);
      }
      Out << "}";
    }
    Out << "}";
  }
  Out << "\n]}\n";
  return Out.good();
}

std::string TraceRecorder::metricsSummary() const {
  std::string Result;
  std::vector<SpanAggregate> Aggregates = aggregateSpans();
  if (!Aggregates.empty()) {
    TablePrinter Table({"span", "count", "total ms", "mean ms"});
    for (const SpanAggregate &Agg : Aggregates)
      Table.addRow({Agg.Name, std::to_string(Agg.Count),
                    formatDouble(Agg.TotalUs / 1e3, 3),
                    formatDouble(Agg.TotalUs / 1e3 / Agg.Count, 4)});
    Result += Table.render();
  }
  std::map<std::string, double> Counts = counters();
  if (!Counts.empty()) {
    TablePrinter Table({"counter", "value"});
    for (const auto &[Name, Value] : Counts)
      Table.addRow({Name, formatDouble(Value, 0)});
    if (!Result.empty())
      Result += "\n";
    Result += Table.render();
  }
  std::map<std::string, GaugeValue> Levels = gauges();
  if (!Levels.empty()) {
    TablePrinter Table({"gauge", "last", "max"});
    for (const auto &[Name, Gauge] : Levels)
      Table.addRow({Name, formatDouble(Gauge.Last, 0),
                    formatDouble(Gauge.Max, 0)});
    if (!Result.empty())
      Result += "\n";
    Result += Table.render();
  }
  return Result;
}

//===--------------------------------------------------------------------===//
// TraceSpan
//===--------------------------------------------------------------------===//

TraceSpan::TraceSpan(const char *NameIn, const char *CategoryIn)
    : Active(TraceRecorder::enabled()), Name(NameIn), Category(CategoryIn) {
  if (Active)
    StartUs = TraceRecorder::global().nowUs();
}

TraceSpan::~TraceSpan() {
  if (!Active)
    return;
  TraceRecorder &Recorder = TraceRecorder::global();
  double EndUs = Recorder.nowUs();
  Recorder.recordSpan(Name, Category, StartUs, EndUs - StartUs,
                      std::move(Args));
}

void TraceSpan::arg(const char *Key, double Value) {
  if (Active)
    Args.emplace_back(Key, Value);
}
