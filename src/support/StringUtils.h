//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
///
/// \file
/// String helpers used by the printers and the command-line parser.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_STRINGUTILS_H
#define KF_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace kf {

/// Splits \p Text on \p Separator; empty fields are kept.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Joins \p Parts with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Separator);

/// Strips leading and trailing ASCII whitespace.
std::string trimString(std::string_view Text);

/// Pads \p Text with spaces on the left up to \p Width (right alignment).
std::string padLeft(std::string_view Text, size_t Width);

/// Pads \p Text with spaces on the right up to \p Width (left alignment).
std::string padRight(std::string_view Text, size_t Width);

/// Formats a double with \p Precision fractional digits.
std::string formatDouble(double Value, int Precision);

/// Returns true if \p Text consists only of an optional sign and digits.
bool isIntegerLiteral(std::string_view Text);

} // namespace kf

#endif // KF_SUPPORT_STRINGUTILS_H
