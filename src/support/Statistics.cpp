//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace kf;

double kf::quantileSorted(const std::vector<double> &Sorted, double Q) {
  assert(!Sorted.empty() && "quantile of an empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Rank));
  size_t Hi = static_cast<size_t>(std::ceil(Rank));
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

BoxStats kf::computeBoxStats(std::vector<double> Samples) {
  assert(!Samples.empty() && "box stats of an empty sample");
  std::sort(Samples.begin(), Samples.end());
  BoxStats Stats;
  Stats.Min = Samples.front();
  Stats.Max = Samples.back();
  Stats.Q25 = quantileSorted(Samples, 0.25);
  Stats.Median = quantileSorted(Samples, 0.50);
  Stats.Q75 = quantileSorted(Samples, 0.75);
  Stats.Mean = arithmeticMean(Samples);
  Stats.Count = Samples.size();
  return Stats;
}

double kf::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of an empty sample");
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double kf::arithmeticMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of an empty sample");
  double Sum = std::accumulate(Values.begin(), Values.end(), 0.0);
  return Sum / static_cast<double>(Values.size());
}
