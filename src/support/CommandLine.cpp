//===- support/CommandLine.cpp --------------------------------------------===//

#include "support/CommandLine.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace kf;

CommandLine::CommandLine(int Argc, const char *const *Argv,
                         const std::vector<std::string> &BoolFlags) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Options[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    bool IsBool = std::find(BoolFlags.begin(), BoolFlags.end(), Body) !=
                  BoolFlags.end();
    if (IsBool) {
      Options[Body] = "1";
      continue;
    }
    if (I + 1 >= Argc)
      reportFatalError("option --" + Body + " expects a value");
    Options[Body] = Argv[++I];
  }
}

bool CommandLine::hasOption(const std::string &Name) const {
  return Options.count(Name) != 0;
}

std::string CommandLine::getOption(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Options.find(Name);
  return It == Options.end() ? Default : It->second;
}

long CommandLine::getIntOption(const std::string &Name, long Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  if (!isIntegerLiteral(It->second))
    reportFatalError("option --" + Name + " expects an integer, got '" +
                     It->second + "'");
  errno = 0;
  long Value = std::strtol(It->second.c_str(), nullptr, 10);
  if (errno == ERANGE)
    reportFatalError("option --" + Name + " value '" + It->second +
                     "' is out of range");
  return Value;
}

double CommandLine::getDoubleOption(const std::string &Name,
                                    double Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  char *End = nullptr;
  errno = 0;
  double Value = std::strtod(It->second.c_str(), &End);
  if (End == It->second.c_str() || *End != '\0')
    reportFatalError("option --" + Name + " expects a number, got '" +
                     It->second + "'");
  // Overflow clamps to +/-HUGE_VAL with ERANGE; underflow (denormal or
  // zero result) also raises ERANGE but is an acceptable representation.
  if (errno == ERANGE && std::abs(Value) == HUGE_VAL)
    reportFatalError("option --" + Name + " value '" + It->second +
                     "' is out of range");
  // strtod happily parses "nan" and "inf"; neither is a usable rate,
  // weight, or threshold anywhere these options flow.
  if (!std::isfinite(Value))
    reportFatalError("option --" + Name + " value '" + It->second +
                     "' is out of range");
  return Value;
}
