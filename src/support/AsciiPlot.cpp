//===- support/AsciiPlot.cpp -------------------------------------------------===//

#include "support/AsciiPlot.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace kf;

std::string kf::renderBoxPlots(const std::vector<BoxPlotRow> &Rows,
                               int Width, double AxisMax) {
  assert(!Rows.empty() && Width >= 10 && "degenerate box plot");

  double Max = AxisMax;
  size_t LabelWidth = 0;
  for (const BoxPlotRow &Row : Rows) {
    Max = std::max(Max, Row.Stats.Max);
    LabelWidth = std::max(LabelWidth, Row.Label.size());
  }
  if (Max <= 0.0)
    Max = 1.0;

  auto column = [&](double Value) {
    int Col = static_cast<int>(Value / Max * (Width - 1) + 0.5);
    return std::clamp(Col, 0, Width - 1);
  };

  std::string Out;
  for (const BoxPlotRow &Row : Rows) {
    const BoxStats &S = Row.Stats;
    std::string Lane(Width, ' ');
    int Lo = column(S.Min);
    int Hi = column(S.Max);
    int BoxLo = column(S.Q25);
    int BoxHi = column(S.Q75);
    int Med = column(S.Median);
    for (int I = Lo; I <= Hi; ++I)
      Lane[I] = '-';
    for (int I = BoxLo; I <= BoxHi; ++I)
      Lane[I] = '=';
    if (BoxLo <= BoxHi) {
      Lane[BoxLo] = '[';
      Lane[BoxHi] = ']';
    }
    Lane[Med] = '|';
    Out += padRight(Row.Label, LabelWidth) + "  " + Lane + "  " +
           formatDouble(S.Median, 3) + "\n";
  }
  // Axis line.
  Out += std::string(LabelWidth + 2, ' ') + "0" +
         std::string(Width - 1, ' ') + formatDouble(Max, 2) + "\n";
  return Out;
}
