//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
///
/// \file
/// A small, deterministic xorshift-based RNG. Every randomized component of
/// the reproduction (test-input images, random DAGs, the measurement-noise
/// model of the GPU simulator) draws from this generator so results are
/// bit-reproducible across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_RANDOM_H
#define KF_SUPPORT_RANDOM_H

#include <cstdint>

namespace kf {

/// xorshift64* generator (Vigna, 2016). Deterministic across platforms,
/// unlike std::mt19937 paired with standard distributions.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed | 1) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Approximately normal sample (mean 0, stddev 1) via the sum of twelve
  /// uniforms; adequate for the multiplicative timing-noise model.
  double nextGaussian() {
    double Sum = 0.0;
    for (int I = 0; I < 12; ++I)
      Sum += nextDouble();
    return Sum - 6.0;
  }

private:
  uint64_t State;
};

} // namespace kf

#endif // KF_SUPPORT_RANDOM_H
