//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace kf;

std::vector<std::string> kf::splitString(std::string_view Text,
                                         char Separator) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string kf::joinStrings(const std::vector<std::string> &Parts,
                            std::string_view Separator) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

std::string kf::trimString(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin != End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End != Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return std::string(Text.substr(Begin, End - Begin));
}

std::string kf::padLeft(std::string_view Text, size_t Width) {
  if (Text.size() >= Width)
    return std::string(Text);
  return std::string(Width - Text.size(), ' ') + std::string(Text);
}

std::string kf::padRight(std::string_view Text, size_t Width) {
  if (Text.size() >= Width)
    return std::string(Text);
  return std::string(Text) + std::string(Width - Text.size(), ' ');
}

std::string kf::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

bool kf::isIntegerLiteral(std::string_view Text) {
  if (Text.empty())
    return false;
  size_t Begin = (Text[0] == '+' || Text[0] == '-') ? 1 : 0;
  if (Begin == Text.size())
    return false;
  for (size_t I = Begin, E = Text.size(); I != E; ++I)
    if (!std::isdigit(static_cast<unsigned char>(Text[I])))
      return false;
  return true;
}
