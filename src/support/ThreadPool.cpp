//===- support/ThreadPool.cpp ---------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace kf;

unsigned kf::resolveThreadCount(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  if (const char *Env = std::getenv("KF_THREADS")) {
    char *End = nullptr;
    errno = 0;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && errno != ERANGE && Value > 0 &&
        Value <= INT_MAX)
      return static_cast<unsigned>(Value);
    // A malformed / non-positive / out-of-range KF_THREADS silently
    // changing the parallelism of every run is a debugging trap: say so,
    // but only once per process (resolveThreadCount runs per launch).
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: ignoring invalid KF_THREADS='%s' (expected a "
                   "positive integer); using hardware concurrency\n",
                   Env);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned ThreadsIn)
    : NumThreads(ThreadsIn > 0 ? ThreadsIn : 1), TileCounts(NumThreads) {
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shutdown = true;
  }
  StartCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();

  // A pool created inside a single run (runFusedVm, a session) dies with
  // it; exporting its scheduling counters here gives the tracing layer
  // tile-queue utilization without threading the pool object out.
  if (TraceRecorder::enabled()) {
    TraceRecorder &Recorder = TraceRecorder::global();
    ThreadPoolStats Stats = stats();
    Recorder.addCounter("threadpool.launches",
                        static_cast<double>(Stats.Launches));
    Recorder.addCounter("threadpool.tiles",
                        static_cast<double>(Stats.Tiles));
    Recorder.addCounter("threadpool.idle_waits",
                        static_cast<double>(Stats.IdleWaits));
    for (unsigned I = 0; I != Stats.TilesPerWorker.size(); ++I)
      Recorder.addCounter("threadpool.tiles.worker" + std::to_string(I),
                          static_cast<double>(Stats.TilesPerWorker[I]));
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats Stats;
  Stats.TilesPerWorker.resize(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I) {
    Stats.TilesPerWorker[I] = TileCounts[I].load(std::memory_order_relaxed);
    Stats.Tiles += Stats.TilesPerWorker[I];
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.Launches = LaunchCount;
  Stats.IdleWaits = IdleWaitCount;
  return Stats;
}

void ThreadPool::drainTiles(unsigned WorkerIdx) {
  size_t Count = Tiles.size();
  uint64_t Drained = 0;
  for (size_t I = NextTile.fetch_add(1, std::memory_order_relaxed);
       I < Count; I = NextTile.fetch_add(1, std::memory_order_relaxed)) {
    (*JobFn)(Tiles[I], WorkerIdx);
    ++Drained;
  }
  if (Drained != 0)
    TileCounts[WorkerIdx].fetch_add(Drained, std::memory_order_relaxed);
}

void ThreadPool::workerLoop(unsigned WorkerIdx) {
  uint64_t SeenGeneration = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (!Shutdown && JobGeneration == SeenGeneration)
        ++IdleWaitCount; // The worker is about to block for work.
      StartCv.wait(Lock, [&] {
        return Shutdown || JobGeneration != SeenGeneration;
      });
      if (Shutdown)
        return;
      SeenGeneration = JobGeneration;
    }
    drainTiles(WorkerIdx);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveWorkers;
    }
    DoneCv.notify_one();
  }
}

void ThreadPool::parallelFor2D(
    int Width, int Height, int TileW, int TileH,
    const std::function<void(const TileRange &, unsigned)> &Fn) {
  if (Width <= 0 || Height <= 0)
    return;
  if (TileW <= 0)
    TileW = Width;
  if (TileH <= 0)
    TileH = Height;

  std::vector<TileRange> Enumerated;
  for (int Y0 = 0; Y0 < Height; Y0 += TileH)
    for (int X0 = 0; X0 < Width; X0 += TileW)
      Enumerated.push_back(TileRange{X0, Y0, std::min(X0 + TileW, Width),
                                     std::min(Y0 + TileH, Height)});

  // Serial reference path: no workers, or nothing worth fanning out.
  if (NumThreads == 1 || Enumerated.size() == 1) {
    for (const TileRange &Tile : Enumerated)
      Fn(Tile, 0);
    TileCounts[0].fetch_add(Enumerated.size(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++LaunchCount;
    }
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobFn = &Fn;
    Tiles = std::move(Enumerated);
    NextTile.store(0, std::memory_order_relaxed);
    ActiveWorkers = NumThreads - 1;
    ++JobGeneration;
    ++LaunchCount;
  }
  StartCv.notify_all();

  drainTiles(0); // The caller is worker 0.

  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [&] { return ActiveWorkers == 0; });
  JobFn = nullptr;
  Tiles.clear();
}
