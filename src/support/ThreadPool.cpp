//===- support/ThreadPool.cpp ---------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

using namespace kf;

unsigned kf::resolveThreadCount(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  if (const char *Env = std::getenv("KF_THREADS")) {
    char *End = nullptr;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Value > 0)
      return static_cast<unsigned>(Value);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned ThreadsIn)
    : NumThreads(ThreadsIn > 0 ? ThreadsIn : 1) {
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shutdown = true;
  }
  StartCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::drainTiles(unsigned WorkerIdx) {
  size_t Count = Tiles.size();
  for (size_t I = NextTile.fetch_add(1, std::memory_order_relaxed);
       I < Count; I = NextTile.fetch_add(1, std::memory_order_relaxed))
    (*JobFn)(Tiles[I], WorkerIdx);
}

void ThreadPool::workerLoop(unsigned WorkerIdx) {
  uint64_t SeenGeneration = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      StartCv.wait(Lock, [&] {
        return Shutdown || JobGeneration != SeenGeneration;
      });
      if (Shutdown)
        return;
      SeenGeneration = JobGeneration;
    }
    drainTiles(WorkerIdx);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveWorkers;
    }
    DoneCv.notify_one();
  }
}

void ThreadPool::parallelFor2D(
    int Width, int Height, int TileW, int TileH,
    const std::function<void(const TileRange &, unsigned)> &Fn) {
  if (Width <= 0 || Height <= 0)
    return;
  if (TileW <= 0)
    TileW = Width;
  if (TileH <= 0)
    TileH = Height;

  std::vector<TileRange> Enumerated;
  for (int Y0 = 0; Y0 < Height; Y0 += TileH)
    for (int X0 = 0; X0 < Width; X0 += TileW)
      Enumerated.push_back(TileRange{X0, Y0, std::min(X0 + TileW, Width),
                                     std::min(Y0 + TileH, Height)});

  // Serial reference path: no workers, or nothing worth fanning out.
  if (NumThreads == 1 || Enumerated.size() == 1) {
    for (const TileRange &Tile : Enumerated)
      Fn(Tile, 0);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobFn = &Fn;
    Tiles = std::move(Enumerated);
    NextTile.store(0, std::memory_order_relaxed);
    ActiveWorkers = NumThreads - 1;
    ++JobGeneration;
  }
  StartCv.notify_all();

  drainTiles(0); // The caller is worker 0.

  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [&] { return ActiveWorkers == 0; });
  JobFn = nullptr;
  Tiles.clear();
}
