//===- support/ThreadPool.cpp ---------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace kf;

unsigned kf::resolveThreadCount(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  if (const char *Env = std::getenv("KF_THREADS")) {
    char *End = nullptr;
    errno = 0;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && errno != ERANGE && Value > 0 &&
        Value <= INT_MAX)
      return static_cast<unsigned>(Value);
    // A malformed / non-positive / out-of-range KF_THREADS silently
    // changing the parallelism of every run is a debugging trap: say so,
    // but only once per process (resolveThreadCount runs per launch).
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: ignoring invalid KF_THREADS='%s' (expected a "
                   "positive integer); using hardware concurrency\n",
                   Env);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned ThreadsIn)
    : NumThreads(ThreadsIn > 0 ? ThreadsIn : 1), TileCounts(NumThreads) {
  // Source 0: the unnamed default every untagged launch charges.
  Sched.addSource(1);
  SourceNames.emplace_back("default");
  SourceTiles.push_back(0);
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shutdown = true;
  }
  StartCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();

  // A pool created inside a single run (runFusedVm, a session) dies with
  // it; exporting its scheduling counters here gives the tracing layer
  // tile-queue utilization without threading the pool object out.
  if (TraceRecorder::enabled()) {
    TraceRecorder &Recorder = TraceRecorder::global();
    ThreadPoolStats Stats = stats();
    Recorder.addCounter("threadpool.launches",
                        static_cast<double>(Stats.Launches));
    Recorder.addCounter("threadpool.tiles",
                        static_cast<double>(Stats.Tiles));
    Recorder.addCounter("threadpool.idle_waits",
                        static_cast<double>(Stats.IdleWaits));
    for (unsigned I = 0; I != Stats.TilesPerWorker.size(); ++I)
      Recorder.addCounter("threadpool.tiles.worker" + std::to_string(I),
                          static_cast<double>(Stats.TilesPerWorker[I]));
    // Source 0 carries every untagged launch; named sources only exist
    // when a server registered tenants, so only emit the split then.
    for (unsigned I = 1; I < Stats.TilesPerSource.size(); ++I)
      Recorder.addCounter("threadpool.tiles.source." + Stats.SourceNames[I],
                          static_cast<double>(Stats.TilesPerSource[I]));
  }
}

unsigned ThreadPool::registerSource(const std::string &Name, uint64_t Weight) {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned Id = Sched.addSource(Weight);
  SourceNames.push_back(Name.empty() ? "source" + std::to_string(Id) : Name);
  SourceTiles.push_back(0);
  return Id;
}

void ThreadPool::setSourceWeight(unsigned Source, uint64_t Weight) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Clamp the re-weighted source's pass to the runnable minimum: a tenant
  // downgraded from a heavy weight keeps the tiny pass it earned while
  // heavy, and without the clamp it would win every tile claim until the
  // pass caught up at the new slow rate.
  std::vector<unsigned> Runnable;
  for (const Job *Active : ActiveJobs)
    if (Active->NextTile < Active->Tiles.size())
      Runnable.push_back(Active->Source);
  Sched.setWeight(Source, Weight, Runnable);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats Stats;
  Stats.TilesPerWorker.resize(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I) {
    Stats.TilesPerWorker[I] = TileCounts[I].load(std::memory_order_relaxed);
    Stats.Tiles += Stats.TilesPerWorker[I];
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.Launches = LaunchCount;
  Stats.IdleWaits = IdleWaitCount;
  Stats.TilesPerSource = SourceTiles;
  Stats.SourceNames = SourceNames;
  return Stats;
}

bool ThreadPool::anyRunnableLocked() const {
  for (const Job *J : ActiveJobs)
    if (J->NextTile < J->Tiles.size())
      return true;
  return false;
}

ThreadPool::Job *ThreadPool::pickJobLocked() {
  // Stride pick over the active jobs: minimum source pass wins; ties keep
  // the earliest-submitted job (ActiveJobs is FIFO), so within one source
  // frames complete in submission order.
  Job *Best = nullptr;
  uint64_t BestPass = 0;
  for (Job *J : ActiveJobs) {
    if (J->NextTile >= J->Tiles.size())
      continue;
    uint64_t Pass = Sched.pass(J->Source);
    if (!Best || Pass < BestPass) {
      Best = J;
      BestPass = Pass;
    }
  }
  return Best;
}

size_t ThreadPool::claimTileLocked(Job &J) {
  size_t TileIdx = J.NextTile++;
  Sched.charge(J.Source);
  ++SourceTiles[J.Source];
  return TileIdx;
}

void ThreadPool::workerLoop(unsigned WorkerIdx) {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    Job *J = pickJobLocked();
    if (!J) {
      if (Shutdown)
        return;
      ++IdleWaitCount; // The worker is about to block for work.
      StartCv.wait(Lock, [&] { return Shutdown || anyRunnableLocked(); });
      continue;
    }
    size_t TileIdx = claimTileLocked(*J);
    const auto &Fn = *J->Fn;
    const TileRange &Tile = J->Tiles[TileIdx];
    Lock.unlock();
    Fn(Tile, WorkerIdx);
    TileCounts[WorkerIdx].fetch_add(1, std::memory_order_relaxed);
    Lock.lock();
    if (--J->Remaining == 0)
      DoneCv.notify_all(); // J's caller may be waiting; wake every waiter.
  }
}

void ThreadPool::parallelFor2D(
    int Width, int Height, int TileW, int TileH,
    const std::function<void(const TileRange &, unsigned)> &Fn,
    unsigned Source) {
  if (Width <= 0 || Height <= 0)
    return;
  if (TileW <= 0)
    TileW = Width;
  if (TileH <= 0)
    TileH = Height;

  std::vector<TileRange> Enumerated;
  for (int Y0 = 0; Y0 < Height; Y0 += TileH)
    for (int X0 = 0; X0 < Width; X0 += TileW)
      Enumerated.push_back(TileRange{X0, Y0, std::min(X0 + TileW, Width),
                                     std::min(Y0 + TileH, Height)});

  // Serial reference path: no workers, or nothing worth fanning out. The
  // caller runs every tile inline in enumeration order; concurrent
  // callers of a 1-thread shared pool each drain their own launch on
  // their own thread.
  if (NumThreads == 1 || Enumerated.size() == 1) {
    for (const TileRange &Tile : Enumerated)
      Fn(Tile, 0);
    TileCounts[0].fetch_add(Enumerated.size(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++LaunchCount;
      if (Source >= SourceTiles.size())
        Source = 0;
      SourceTiles[Source] += Enumerated.size();
    }
    return;
  }

  Job J;
  J.Fn = &Fn;
  J.Tiles = std::move(Enumerated);
  J.Remaining = J.Tiles.size();

  std::unique_lock<std::mutex> Lock(Mutex);
  if (Source >= Sched.numSources())
    Source = 0; // Unregistered tag: charge the default source.
  J.Source = Source;
  // If this source had no job in flight, clamp its pass up to the busiest
  // competitors' minimum so a returning tenant doesn't replay its idle
  // time as a monopoly burst.
  std::vector<unsigned> Runnable;
  bool SourceWasIdle = true;
  for (const Job *Active : ActiveJobs) {
    if (Active->Source == Source)
      SourceWasIdle = false;
    if (Active->NextTile < Active->Tiles.size())
      Runnable.push_back(Active->Source);
  }
  if (SourceWasIdle)
    Sched.activate(Source, Runnable);
  ActiveJobs.push_back(&J);
  ++LaunchCount;
  Lock.unlock();
  StartCv.notify_all();

  // The caller drains only its own job, as that job's worker 0. It must
  // not steal tiles from concurrent launches: worker index 0 would then
  // be shared by two threads inside one launch, and per-worker scratch
  // indexed by the callback's worker id would race.
  uint64_t Drained = 0;
  Lock.lock();
  while (J.NextTile < J.Tiles.size()) {
    size_t TileIdx = claimTileLocked(J);
    const TileRange &Tile = J.Tiles[TileIdx];
    Lock.unlock();
    Fn(Tile, 0);
    ++Drained;
    Lock.lock();
    if (--J.Remaining == 0)
      DoneCv.notify_all();
  }
  DoneCv.wait(Lock, [&] { return J.Remaining == 0; });
  ActiveJobs.erase(std::find(ActiveJobs.begin(), ActiveJobs.end(), &J));
  Lock.unlock();
  if (Drained != 0)
    TileCounts[0].fetch_add(Drained, std::memory_order_relaxed);
}
