//===- support/CommandLine.h - Tiny option parser ---------------*- C++ -*-===//
///
/// \file
/// A minimal command-line option parser for the example and benchmark
/// drivers: `--name value`, `--name=value`, and boolean `--flag` forms.
/// Unknown options are fatal so typos in experiment scripts surface loudly.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_COMMANDLINE_H
#define KF_SUPPORT_COMMANDLINE_H

#include <map>
#include <string>
#include <vector>

namespace kf {

/// Parsed command line: named options plus positional arguments.
class CommandLine {
public:
  /// Parses argv-style arguments. \p BoolFlags lists names that take no
  /// value. A parse error (unknown syntax) aborts with a message.
  CommandLine(int Argc, const char *const *Argv,
              const std::vector<std::string> &BoolFlags = {});

  bool hasOption(const std::string &Name) const;

  /// Value of option \p Name or \p Default when absent.
  std::string getOption(const std::string &Name,
                        const std::string &Default) const;

  /// Integer-valued option; aborts when present but not an integer.
  long getIntOption(const std::string &Name, long Default) const;

  /// Floating-point option; aborts when present but malformed.
  double getDoubleOption(const std::string &Name, double Default) const;

  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
};

} // namespace kf

#endif // KF_SUPPORT_COMMANDLINE_H
