//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace kf;

TablePrinter::TablePrinter(std::vector<std::string> HeaderIn)
    : Header(std::move(HeaderIn)) {
  assert(!Header.empty() && "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Row) {
  if (Row.size() != Header.size())
    reportFatalError("table row arity does not match header");
  Rows.push_back(std::move(Row));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Line += "  ";
      Line += C == 0 ? padRight(Row[C], Widths[C]) : padLeft(Row[C], Widths[C]);
    }
    return Line + "\n";
  };

  std::string Out = renderRow(Header);
  size_t Total = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C == 0 ? 0 : 2);
  Out += std::string(Total, '-') + "\n";
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

std::string TablePrinter::renderCsv() const {
  std::string Out = joinStrings(Header, ",") + "\n";
  for (const auto &Row : Rows)
    Out += joinStrings(Row, ",") + "\n";
  return Out;
}
