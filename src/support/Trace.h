//===- support/Trace.h - Low-overhead span/counter tracing -----*- C++ -*-===//
///
/// \file
/// The observability substrate of the execution engines: a process-wide,
/// thread-safe recorder of timed *spans* (named intervals on a thread) and
/// monotonic *counters*. Runtime fusion systems ship exactly this kind of
/// launch-level telemetry to drive their caches and validate their models
/// (Kristensen et al., "Fusion of Array Operations at Runtime"); here it
/// is what lets every perf PR see where time actually goes per launch,
/// per stage, and per tile batch.
///
/// Design constraints:
///   - Disabled by default, and near-free when disabled: the only cost on
///     an instrumented path is one relaxed atomic load (no clock reads,
///     no allocation, no locking). The engines additionally keep their
///     finest-grained accounting (interior/halo splits) behind the same
///     flag.
///   - Thread-safe when enabled: spans may be recorded concurrently from
///     worker and filler threads; each record carries a small sequential
///     thread id assigned on first use.
///
/// Two exporters:
///   - writeChromeTrace: the chrome://tracing / Perfetto JSON array of
///     complete ("ph":"X") events -- load the file in a trace viewer to
///     see launches, stages, and fill/exec overlap on a timeline;
///   - metricsSummary: a flat per-span-name aggregation (count, total,
///     mean) plus the counter values, for terminal consumption.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_TRACE_H
#define KF_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kf {

/// One completed span: a named interval recorded on one thread.
struct TraceSpanRecord {
  std::string Name;
  std::string Category;
  uint32_t ThreadId = 0; ///< Sequential id, 0 = first thread seen.
  double StartUs = 0.0;  ///< Microseconds since the recorder epoch.
  double DurationUs = 0.0;
  /// Optional numeric arguments ("interior_ms", "halo_ms", ...), emitted
  /// into the chrome-trace "args" object.
  std::vector<std::pair<std::string, double>> Args;
};

/// Aggregated view of all spans sharing one name.
struct SpanAggregate {
  std::string Name;
  uint64_t Count = 0;
  double TotalUs = 0.0;
};

/// A gauge: a sampled level (queue depth, in-flight frames) rather than a
/// monotonic total. The recorder keeps the last sample and the high-water
/// mark, which is what capacity questions ("did backpressure engage?")
/// need from a trace.
struct GaugeValue {
  double Last = 0.0;
  double Max = 0.0;
  uint64_t Samples = 0;
};

/// The process-wide span/counter recorder. All member functions are
/// thread-safe; recording functions are no-ops while disabled.
class TraceRecorder {
public:
  /// The recorder instrumented code reports into.
  static TraceRecorder &global();

  /// Cheap enabled test for instrumentation sites: one relaxed atomic
  /// load, no function-local statics on the hot path.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Enables or disables recording (globally, all threads).
  void setEnabled(bool Enabled);

  /// Microseconds since the recorder epoch (process start, steady clock).
  double nowUs() const;

  /// Small sequential id of the calling thread, assigned on first use and
  /// cached thread-locally.
  uint32_t threadId();

  /// Records one completed span. No-op while disabled.
  void recordSpan(std::string Name, std::string Category, double StartUs,
                  double DurationUs,
                  std::vector<std::pair<std::string, double>> Args = {});

  /// Adds \p Delta to counter \p Name (created at zero). No-op while
  /// disabled.
  void addCounter(const std::string &Name, double Delta);

  /// Samples gauge \p Name at \p Value (tracking last and max). No-op
  /// while disabled.
  void setGauge(const std::string &Name, double Value);

  /// Snapshot of all recorded spans, in recording order.
  std::vector<TraceSpanRecord> spans() const;

  /// Snapshot of all counters.
  std::map<std::string, double> counters() const;

  /// Snapshot of all gauges.
  std::map<std::string, GaugeValue> gauges() const;

  /// Spans aggregated by name, ordered by descending total time.
  std::vector<SpanAggregate> aggregateSpans() const;

  /// Drops all recorded spans and counters (the enabled flag is kept).
  void clear();

  /// Writes the chrome://tracing JSON ("traceEvents" array of "ph":"X"
  /// complete events). Returns false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Flat text summary: per-name span aggregates and counter values.
  std::string metricsSummary() const;

private:
  TraceRecorder();

  static std::atomic<bool> EnabledFlag;

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex;
  std::vector<TraceSpanRecord> Spans;
  std::map<std::string, double> Counters;
  std::map<std::string, GaugeValue> Gauges;
  uint32_t NextThreadId = 0;
};

/// RAII span recorder: captures the start time at construction and
/// records the span at destruction. When tracing is disabled at
/// construction the object is inert (no clock reads).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Category = "kf");
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a numeric argument to the span (ignored when inert).
  void arg(const char *Key, double Value);

  /// True when the span is actually recording.
  bool active() const { return Active; }

private:
  bool Active;
  const char *Name;
  const char *Category;
  double StartUs = 0.0;
  std::vector<std::pair<std::string, double>> Args;
};

} // namespace kf

#endif // KF_SUPPORT_TRACE_H
