//===- support/AsciiPlot.h - Terminal box plots ------------------*- C++ -*-===//
///
/// \file
/// Renders horizontal box plots in plain text, used by the Figure 6
/// benchmark to show the paper's box-plot view directly in the terminal:
///
///   harris/baseline   |----[=|=]------|        3.12 ms
///
/// Whiskers span min..max, the box spans the quartiles, and '|' inside
/// the box marks the median -- the same decomposition as the figure.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_ASCIIPLOT_H
#define KF_SUPPORT_ASCIIPLOT_H

#include "support/Statistics.h"

#include <string>
#include <vector>

namespace kf {

/// One row of a box-plot chart.
struct BoxPlotRow {
  std::string Label;
  BoxStats Stats;
};

/// Renders \p Rows as aligned box plots over a shared horizontal axis
/// from 0 to the largest maximum (or \p AxisMax when positive), using
/// \p Width characters for the plotting area. Each row ends with the
/// median value. Rows must be non-empty and have positive statistics.
std::string renderBoxPlots(const std::vector<BoxPlotRow> &Rows,
                           int Width = 50, double AxisMax = 0.0);

} // namespace kf

#endif // KF_SUPPORT_ASCIIPLOT_H
