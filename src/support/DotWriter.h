//===- support/DotWriter.h - Graphviz DOT emission -------------*- C++ -*-===//
///
/// \file
/// Emits Graphviz DOT text for kernel dependence graphs and partitions, the
/// same visualization style as Figure 3 of the paper (partition blocks are
/// rendered as clusters).
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_DOTWRITER_H
#define KF_SUPPORT_DOTWRITER_H

#include <string>
#include <vector>

namespace kf {

/// Incrementally builds a DOT digraph description.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName);

  /// Adds node \p Id with display \p Label.
  void addNode(const std::string &Id, const std::string &Label);

  /// Adds a directed edge with an optional edge label (e.g. a fusion weight).
  void addEdge(const std::string &From, const std::string &To,
               const std::string &Label = "");

  /// Groups \p NodeIds into a labelled cluster (a partition block).
  void addCluster(const std::string &Label,
                  const std::vector<std::string> &NodeIds);

  /// Returns the complete DOT document.
  std::string finish() const;

private:
  std::string Name;
  std::vector<std::string> Lines;
  unsigned NumClusters = 0;
};

} // namespace kf

#endif // KF_SUPPORT_DOTWRITER_H
