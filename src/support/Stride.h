//===- support/Stride.h - Deterministic stride scheduling -------*- C++ -*-===//
///
/// \file
/// Stride scheduling (proportional-share, Waldspurger & Weihl): each work
/// source owns a virtual-time "pass"; every unit of service advances the
/// pass by StrideOne / weight, and the next unit of service always goes to
/// the runnable source with the minimum pass (ties break to the lowest
/// source id). Over any window the service received by competing sources
/// converges to the ratio of their weights, and the pick sequence is a
/// pure function of the charge history — fully deterministic, which is
/// what the fairness tests pin down.
///
/// The same scheduler arbitrates at two granularities: the ThreadPool uses
/// it to interleave tile batches from concurrently in-flight launches, and
/// the pipeline server's FrameScheduler uses it to pick which session's
/// queued frame dispatches next.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_STRIDE_H
#define KF_SUPPORT_STRIDE_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace kf {

/// A deterministic proportional-share arbiter over a dense id space of
/// work sources. Not thread-safe: callers serialize access (the ThreadPool
/// charges it under its job mutex).
class StrideScheduler {
public:
  /// Pass advance for one unit of service at weight 1. Large enough that
  /// integer division by any sane weight keeps precision.
  static constexpr uint64_t StrideOne = 1ull << 20;

  /// Adds a source with the given scheduling weight (clamped to
  /// [1, StrideOne]) and returns its dense id.
  unsigned addSource(uint64_t Weight = 1) {
    Entries.push_back({normalize(Weight), 0});
    return static_cast<unsigned>(Entries.size() - 1);
  }

  unsigned numSources() const { return static_cast<unsigned>(Entries.size()); }

  /// Re-weights an existing source. Takes effect on the next charge. A
  /// source that grew its weight while competing kept accumulating pass at
  /// the old (faster) rate, so its absolute pass may sit far behind or
  /// ahead of its peers; callers that know the runnable set should use the
  /// three-argument overload so the re-weighted source re-enters at parity
  /// instead of bursting or stalling.
  void setWeight(unsigned Source, uint64_t Weight) {
    if (Source < Entries.size())
      Entries[Source].Weight = normalize(Weight);
  }

  /// Re-weights \p Source and clamps its pass up to the minimum among the
  /// other sources in \p Runnable (same rule as \c activate). Without the
  /// clamp, a source downgraded from a heavy weight keeps the tiny pass it
  /// accumulated while heavy and monopolizes the arbiter until it catches
  /// up at the new, slow rate.
  void setWeight(unsigned Source, uint64_t Weight,
                 const std::vector<unsigned> &Runnable) {
    setWeight(Source, Weight);
    activate(Source, Runnable);
  }

  uint64_t weight(unsigned Source) const {
    return Source < Entries.size() ? Entries[Source].Weight : 1;
  }

  uint64_t pass(unsigned Source) const {
    return Source < Entries.size() ? Entries[Source].Pass : 0;
  }

  /// Picks the candidate with the minimum pass; ties break to the lowest
  /// id. Returns -1 if \p Candidates is empty. Does not charge.
  int pick(const std::vector<unsigned> &Candidates) const {
    int Best = -1;
    uint64_t BestPass = 0;
    for (unsigned C : Candidates) {
      uint64_t P = pass(C);
      if (Best < 0 || P < BestPass ||
          (P == BestPass && C < static_cast<unsigned>(Best))) {
        Best = static_cast<int>(C);
        BestPass = P;
      }
    }
    return Best;
  }

  /// Charges one unit of service to \p Source: its pass advances by
  /// StrideOne / weight, so heavier sources advance slower and win the
  /// min-pass race proportionally more often.
  void charge(unsigned Source) {
    if (Source < Entries.size())
      Entries[Source].Pass += StrideOne / Entries[Source].Weight;
  }

  /// Called when \p Source transitions idle -> runnable while the sources
  /// in \p Runnable are already competing: clamps its pass up to the
  /// current minimum so a long-idle source re-enters at parity instead of
  /// monopolizing the arbiter with a catch-up burst.
  void activate(unsigned Source, const std::vector<unsigned> &Runnable) {
    if (Source >= Entries.size())
      return;
    bool Any = false;
    uint64_t Min = 0;
    for (unsigned R : Runnable) {
      if (R == Source || R >= Entries.size())
        continue;
      if (!Any || Entries[R].Pass < Min) {
        Min = Entries[R].Pass;
        Any = true;
      }
    }
    if (Any && Entries[Source].Pass < Min)
      Entries[Source].Pass = Min;
  }

private:
  struct Entry {
    uint64_t Weight = 1;
    uint64_t Pass = 0;
  };

  /// Clamps a requested weight to [1, StrideOne]. Zero would divide by
  /// zero in charge(); anything above StrideOne would make
  /// StrideOne / Weight truncate to 0, freezing the pass so the source
  /// wins every pick forever.
  static uint64_t normalize(uint64_t Weight) {
    return std::min(std::max<uint64_t>(Weight, 1), StrideOne);
  }

  std::vector<Entry> Entries;
};

} // namespace kf

#endif // KF_SUPPORT_STRIDE_H
