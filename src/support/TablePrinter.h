//===- support/TablePrinter.h - Aligned text tables and CSV ----*- C++ -*-===//
///
/// \file
/// Renders the tables of the evaluation section (Table I, Table II and the
/// Figure 6 series) as aligned monospace text or CSV. Cells are strings;
/// numeric formatting is chosen by the caller.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_TABLEPRINTER_H
#define KF_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace kf {

/// A simple column-aligned table with one header row.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row; its arity must match the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with a separator line under the header. The first
  /// column is left-aligned, remaining columns right-aligned.
  std::string render() const;

  /// Renders the table as CSV (no quoting; cells must not contain commas).
  std::string renderCsv() const;

  size_t numRows() const { return Rows.size(); }
  size_t numColumns() const { return Header.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace kf

#endif // KF_SUPPORT_TABLEPRINTER_H
