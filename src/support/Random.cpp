//===- support/Random.cpp -------------------------------------------------===//
// Rng is header-only; this file anchors the translation unit for the target.

#include "support/Random.h"
