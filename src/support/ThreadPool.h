//===- support/ThreadPool.h - Tiled data-parallel execution -----*- C++ -*-===//
///
/// \file
/// A reusable pool of worker threads with a 2-D tiled parallel-for
/// primitive, the host-side analogue of the tiled GPU launches the paper's
/// generated kernels use. The iteration space is decomposed into tiles in
/// a fixed row-major order; workers claim tiles from an atomic cursor
/// (static enumeration, dynamic work-queue assignment), so load imbalance
/// between cheap interior tiles and expensive halo tiles self-schedules.
/// Every executor callback writes a disjoint tile of the output and reads
/// only immutable inputs, so results are bit-identical at any thread
/// count; with one thread the tiles run inline on the caller in
/// enumeration order (the serial reference path).
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_THREADPOOL_H
#define KF_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kf {

/// A half-open 2-D tile [X0, X1) x [Y0, Y1) of an iteration space.
struct TileRange {
  int X0 = 0;
  int Y0 = 0;
  int X1 = 0;
  int Y1 = 0;

  int width() const { return X1 - X0; }
  int height() const { return Y1 - Y0; }
  long long area() const {
    return static_cast<long long>(width()) * height();
  }
};

/// Resolves a requested worker count: \p Requested > 0 is taken verbatim;
/// 0 consults the KF_THREADS environment variable and falls back to
/// std::thread::hardware_concurrency(). A malformed or non-positive
/// KF_THREADS value is ignored with a one-time stderr warning (it would
/// otherwise silently change the parallelism of every run). The result is
/// always >= 1.
unsigned resolveThreadCount(int Requested);

/// Cumulative scheduling counters of one ThreadPool, for the tracing /
/// metrics layer: how evenly tiles spread over workers and how often
/// workers went idle waiting for a launch.
struct ThreadPoolStats {
  uint64_t Launches = 0;  ///< parallelFor2D calls that fanned out.
  uint64_t Tiles = 0;     ///< Tiles executed across all launches.
  uint64_t IdleWaits = 0; ///< Times a worker blocked awaiting work.
  std::vector<uint64_t> TilesPerWorker; ///< Indexed by worker id.
};

/// A fixed-size pool of persistent worker threads. The pool is created
/// once and reused across many parallelFor2D launches (kernel launches of
/// a program run), so thread start-up cost is not paid per kernel.
class ThreadPool {
public:
  /// Spawns \p ThreadsIn - 1 workers (the caller participates as worker
  /// 0). A count of 0 or 1 creates no threads: every launch runs inline.
  explicit ThreadPool(unsigned ThreadsIn);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumThreads; }

  /// Snapshot of the cumulative scheduling counters. Always maintained
  /// (the per-tile cost is one non-atomic per-worker increment); consumed
  /// by the tracing layer and `kfc --metrics`.
  ThreadPoolStats stats() const;

  /// Decomposes the Width x Height space into TileW x TileH tiles (edge
  /// tiles are clipped) and invokes \p Fn once per tile with the tile and
  /// the index of the executing worker (in [0, numThreads())). Blocks
  /// until every tile has run. Empty spaces invoke nothing. Non-positive
  /// tile extents select the full corresponding extent.
  void parallelFor2D(int Width, int Height, int TileW, int TileH,
                     const std::function<void(const TileRange &, unsigned)> &Fn);

private:
  void workerLoop(unsigned WorkerIdx);
  void drainTiles(unsigned WorkerIdx);

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;

  mutable std::mutex Mutex; ///< mutable: stats() snapshots under lock.
  std::condition_variable StartCv;
  std::condition_variable DoneCv;
  bool Shutdown = false;
  uint64_t JobGeneration = 0;  ///< Bumped per launch to wake the workers.
  unsigned ActiveWorkers = 0;  ///< Workers still draining the current job.

  // Current job (valid while ActiveWorkers > 0 or the caller drains).
  const std::function<void(const TileRange &, unsigned)> *JobFn = nullptr;
  std::vector<TileRange> Tiles;
  std::atomic<size_t> NextTile{0};

  // Scheduling counters. Per-worker tile counts are atomics so stats()
  // can read them while workers drain (relaxed; they are statistics, not
  // synchronization). IdleWaits is guarded by Mutex (incremented only
  // while it is held).
  std::vector<std::atomic<uint64_t>> TileCounts;
  uint64_t LaunchCount = 0; ///< Caller-side only.
  uint64_t IdleWaitCount = 0;
};

} // namespace kf

#endif // KF_SUPPORT_THREADPOOL_H
