//===- support/ThreadPool.h - Tiled data-parallel execution -----*- C++ -*-===//
///
/// \file
/// A reusable pool of worker threads with a 2-D tiled parallel-for
/// primitive, the host-side analogue of the tiled GPU launches the paper's
/// generated kernels use. The iteration space is decomposed into tiles in
/// a fixed row-major order; workers claim tiles from the job's cursor
/// (static enumeration, dynamic work-queue assignment), so load imbalance
/// between cheap interior tiles and expensive halo tiles self-schedules.
/// Every executor callback writes a disjoint tile of the output and reads
/// only immutable inputs, so results are bit-identical at any thread
/// count; with one thread the tiles run inline on the caller in
/// enumeration order (the serial reference path).
///
/// Multiple launches may be in flight concurrently (the multi-tenant
/// pipeline server dispatches frames from independent sessions onto one
/// shared pool). Each launch is tagged with a *work source* id; pool
/// workers arbitrate between runnable launches with deterministic stride
/// scheduling (support/Stride.h), so tile batches from concurrent frames
/// interleave in proportion to their sources' weights instead of running
/// serially. The caller of parallelFor2D drains only its own launch — it
/// participates as worker index 0 of that launch, and worker indices
/// 1..numThreads()-1 are globally unique across launches, so per-worker
/// scratch indexed by the callback's worker id is never shared between
/// threads within a launch.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_THREADPOOL_H
#define KF_SUPPORT_THREADPOOL_H

#include "support/Stride.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace kf {

/// A half-open 2-D tile [X0, X1) x [Y0, Y1) of an iteration space.
struct TileRange {
  int X0 = 0;
  int Y0 = 0;
  int X1 = 0;
  int Y1 = 0;

  int width() const { return X1 - X0; }
  int height() const { return Y1 - Y0; }
  long long area() const {
    return static_cast<long long>(width()) * height();
  }
};

/// Resolves a requested worker count: \p Requested > 0 is taken verbatim;
/// 0 consults the KF_THREADS environment variable and falls back to
/// std::thread::hardware_concurrency(). A malformed or non-positive
/// KF_THREADS value is ignored with a one-time stderr warning (it would
/// otherwise silently change the parallelism of every run). The result is
/// always >= 1.
unsigned resolveThreadCount(int Requested);

/// Cumulative scheduling counters of one ThreadPool, for the tracing /
/// metrics layer: how evenly tiles spread over workers and sources, and
/// how often workers went idle waiting for a launch.
struct ThreadPoolStats {
  uint64_t Launches = 0;  ///< parallelFor2D calls that fanned out.
  uint64_t Tiles = 0;     ///< Tiles executed across all launches.
  uint64_t IdleWaits = 0; ///< Times a worker blocked awaiting work.
  std::vector<uint64_t> TilesPerWorker; ///< Indexed by worker id.
  std::vector<uint64_t> TilesPerSource; ///< Indexed by work-source id.
  std::vector<std::string> SourceNames; ///< Parallel to TilesPerSource.
};

/// A fixed-size pool of persistent worker threads. The pool is created
/// once and reused across many parallelFor2D launches (kernel launches of
/// a program run), so thread start-up cost is not paid per kernel.
/// parallelFor2D is safe to call from multiple threads concurrently; the
/// launches share the workers under stride-fair arbitration.
class ThreadPool {
public:
  /// Spawns \p ThreadsIn - 1 workers (the caller participates as worker
  /// 0). A count of 0 or 1 creates no threads: every launch runs inline.
  explicit ThreadPool(unsigned ThreadsIn);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumThreads; }

  /// Registers a named work source with scheduling weight \p Weight
  /// (clamped to >= 1) and returns its id for ExecutionOptions::Source /
  /// parallelFor2D. Source 0 always exists: the unnamed default at weight
  /// 1 that every untagged launch charges.
  unsigned registerSource(const std::string &Name, uint64_t Weight = 1);

  /// Re-weights an existing source; out-of-range ids are ignored.
  void setSourceWeight(unsigned Source, uint64_t Weight);

  /// Snapshot of the cumulative scheduling counters. Always maintained
  /// (the per-tile cost is one non-atomic per-worker increment); consumed
  /// by the tracing layer and `kfc --metrics`.
  ThreadPoolStats stats() const;

  /// Decomposes the Width x Height space into TileW x TileH tiles (edge
  /// tiles are clipped) and invokes \p Fn once per tile with the tile and
  /// the index of the executing worker (in [0, numThreads())). Blocks
  /// until every tile has run. Empty spaces invoke nothing. Non-positive
  /// tile extents select the full corresponding extent. \p Source tags
  /// the launch for stride arbitration against concurrent launches;
  /// unregistered ids fall back to source 0. The calling thread drains
  /// only this launch (as its worker 0) — concurrent callers never share
  /// a worker index within a launch.
  void parallelFor2D(int Width, int Height, int TileW, int TileH,
                     const std::function<void(const TileRange &, unsigned)> &Fn,
                     unsigned Source = 0);

private:
  /// One in-flight launch. Lives on the calling thread's stack for the
  /// duration of its parallelFor2D call; linked into ActiveJobs while any
  /// tile is unclaimed or running. All fields are guarded by Mutex.
  struct Job {
    const std::function<void(const TileRange &, unsigned)> *Fn = nullptr;
    std::vector<TileRange> Tiles;
    size_t NextTile = 0;  ///< First unclaimed tile index.
    size_t Remaining = 0; ///< Tiles claimed-or-unclaimed but not finished.
    unsigned Source = 0;
  };

  void workerLoop(unsigned WorkerIdx);
  /// Min-pass runnable job, or nullptr. Mutex must be held.
  Job *pickJobLocked();
  /// True if any active job still has unclaimed tiles. Mutex must be held.
  bool anyRunnableLocked() const;
  /// Claims the next tile of \p J and charges its source. Mutex must be
  /// held; returns the claimed tile index.
  size_t claimTileLocked(Job &J);

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;

  mutable std::mutex Mutex; ///< mutable: stats() snapshots under lock.
  std::condition_variable StartCv; ///< Workers: work arrived.
  std::condition_variable DoneCv;  ///< Callers: some job finished a tile.
  bool Shutdown = false;
  std::list<Job *> ActiveJobs; ///< FIFO within a source.

  StrideScheduler Sched;                ///< Guarded by Mutex.
  std::vector<std::string> SourceNames; ///< Guarded by Mutex.
  std::vector<uint64_t> SourceTiles;    ///< Guarded by Mutex.

  // Scheduling counters. Per-worker tile counts are atomics so stats()
  // can read them while workers drain (relaxed; they are statistics, not
  // synchronization). The rest is guarded by Mutex.
  std::vector<std::atomic<uint64_t>> TileCounts;
  uint64_t LaunchCount = 0;
  uint64_t IdleWaitCount = 0;
};

} // namespace kf

#endif // KF_SUPPORT_THREADPOOL_H
