//===- support/Error.cpp -------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace kf;

void kf::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}

void kf::unreachableImpl(const char *Message, const char *File,
                         unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
