//===- support/Statistics.h - Box-plot statistics & geomean ----*- C++ -*-===//
///
/// \file
/// Summary statistics used to reproduce the evaluation section of the paper:
/// Figure 6 reports box plots (min, 25th percentile, median, 75th percentile,
/// max) over 500 runs and Table II reports geometric means of speedups.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SUPPORT_STATISTICS_H
#define KF_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace kf {

/// Five-number summary of a sample plus its arithmetic mean, matching the
/// whisker/box/median decomposition in Figure 6 of the paper.
struct BoxStats {
  double Min = 0.0;
  double Q25 = 0.0;
  double Median = 0.0;
  double Q75 = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  size_t Count = 0;
};

/// Computes box-plot statistics for \p Samples. Quartiles use linear
/// interpolation between closest ranks (the "R-7" definition used by NumPy).
/// \p Samples must be non-empty.
BoxStats computeBoxStats(std::vector<double> Samples);

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Sorted, which must be
/// sorted ascending and non-empty. Linear interpolation between ranks.
double quantileSorted(const std::vector<double> &Sorted, double Q);

/// Geometric mean of \p Values; all values must be strictly positive.
/// Used for Table II (geometric mean of speedups across GPUs).
double geometricMean(const std::vector<double> &Values);

/// Arithmetic mean of \p Values; must be non-empty.
double arithmeticMean(const std::vector<double> &Values);

} // namespace kf

#endif // KF_SUPPORT_STATISTICS_H
