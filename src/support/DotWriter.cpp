//===- support/DotWriter.cpp ----------------------------------------------===//

#include "support/DotWriter.h"

using namespace kf;

/// DOT identifiers with unusual characters must be quoted; we always quote.
static std::string quoted(const std::string &Text) {
  std::string Out = "\"";
  for (char Ch : Text) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

void DotWriter::addNode(const std::string &Id, const std::string &Label) {
  Lines.push_back("  " + quoted(Id) + " [label=" + quoted(Label) + "];");
}

void DotWriter::addEdge(const std::string &From, const std::string &To,
                        const std::string &Label) {
  std::string Line = "  " + quoted(From) + " -> " + quoted(To);
  if (!Label.empty())
    Line += " [label=" + quoted(Label) + "]";
  Lines.push_back(Line + ";");
}

void DotWriter::addCluster(const std::string &Label,
                           const std::vector<std::string> &NodeIds) {
  Lines.push_back("  subgraph cluster_" + std::to_string(NumClusters++) +
                  " {");
  Lines.push_back("    label=" + quoted(Label) + ";");
  std::string Members = "   ";
  for (const std::string &Id : NodeIds)
    Members += " " + quoted(Id) + ";";
  Lines.push_back(Members);
  Lines.push_back("  }");
}

std::string DotWriter::finish() const {
  std::string Out = "digraph " + quoted(Name) + " {\n";
  for (const std::string &Line : Lines)
    Out += Line + "\n";
  Out += "}\n";
  return Out;
}
