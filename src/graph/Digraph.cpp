//===- graph/Digraph.cpp --------------------------------------------------===//

#include "graph/Digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace kf;

Digraph::NodeId Digraph::addNode(std::string Label) {
  Labels.push_back(std::move(Label));
  OutEdges.emplace_back();
  InEdges.emplace_back();
  return static_cast<NodeId>(Labels.size() - 1);
}

Digraph::EdgeId Digraph::addEdge(NodeId From, NodeId To, double Weight) {
  assert(From < numNodes() && To < numNodes() && "edge endpoint out of range");
  EdgeList.push_back(Edge{From, To, Weight});
  EdgeId Id = static_cast<EdgeId>(EdgeList.size() - 1);
  OutEdges[From].push_back(Id);
  InEdges[To].push_back(Id);
  return Id;
}

const std::string &Digraph::label(NodeId N) const {
  assert(N < numNodes() && "node id out of range");
  return Labels[N];
}

const Digraph::Edge &Digraph::edge(EdgeId E) const {
  assert(E < numEdges() && "edge id out of range");
  return EdgeList[E];
}

void Digraph::setEdgeWeight(EdgeId E, double Weight) {
  assert(E < numEdges() && "edge id out of range");
  EdgeList[E].Weight = Weight;
}

std::optional<Digraph::NodeId>
Digraph::findNode(const std::string &Label) const {
  for (NodeId N = 0; N != numNodes(); ++N)
    if (Labels[N] == Label)
      return N;
  return std::nullopt;
}

const std::vector<Digraph::EdgeId> &Digraph::edgesFrom(NodeId N) const {
  assert(N < numNodes() && "node id out of range");
  return OutEdges[N];
}

const std::vector<Digraph::EdgeId> &Digraph::edgesTo(NodeId N) const {
  assert(N < numNodes() && "node id out of range");
  return InEdges[N];
}

std::vector<Digraph::NodeId> Digraph::successors(NodeId N) const {
  std::vector<NodeId> Result;
  for (EdgeId E : edgesFrom(N))
    Result.push_back(EdgeList[E].To);
  return Result;
}

std::vector<Digraph::NodeId> Digraph::predecessors(NodeId N) const {
  std::vector<NodeId> Result;
  for (EdgeId E : edgesTo(N))
    Result.push_back(EdgeList[E].From);
  return Result;
}

std::optional<std::vector<Digraph::NodeId>>
Digraph::topologicalOrder() const {
  std::vector<unsigned> InDegree(numNodes(), 0);
  for (const Edge &E : EdgeList)
    ++InDegree[E.To];

  // A sorted worklist keeps the order deterministic (smallest id first).
  std::vector<NodeId> Ready;
  for (NodeId N = 0; N != numNodes(); ++N)
    if (InDegree[N] == 0)
      Ready.push_back(N);

  std::vector<NodeId> Order;
  Order.reserve(numNodes());
  while (!Ready.empty()) {
    NodeId N = Ready.front();
    Ready.erase(Ready.begin());
    Order.push_back(N);
    for (EdgeId E : OutEdges[N]) {
      NodeId Succ = EdgeList[E].To;
      if (--InDegree[Succ] == 0) {
        auto Pos = std::lower_bound(Ready.begin(), Ready.end(), Succ);
        Ready.insert(Pos, Succ);
      }
    }
  }
  if (Order.size() != numNodes())
    return std::nullopt;
  return Order;
}

bool Digraph::isWeaklyConnected(const std::vector<NodeId> &Nodes) const {
  if (Nodes.empty())
    return false;
  std::vector<bool> InSet(numNodes(), false);
  for (NodeId N : Nodes)
    InSet[N] = true;

  std::vector<bool> Seen(numNodes(), false);
  std::deque<NodeId> Work{Nodes.front()};
  Seen[Nodes.front()] = true;
  size_t Reached = 0;
  while (!Work.empty()) {
    NodeId N = Work.front();
    Work.pop_front();
    ++Reached;
    auto visit = [&](NodeId M) {
      if (InSet[M] && !Seen[M]) {
        Seen[M] = true;
        Work.push_back(M);
      }
    };
    for (EdgeId E : OutEdges[N])
      visit(EdgeList[E].To);
    for (EdgeId E : InEdges[N])
      visit(EdgeList[E].From);
  }
  return Reached == Nodes.size();
}

std::vector<Digraph::EdgeId>
Digraph::internalEdges(const std::vector<NodeId> &Nodes) const {
  std::vector<bool> InSet(numNodes(), false);
  for (NodeId N : Nodes)
    InSet[N] = true;
  std::vector<EdgeId> Result;
  for (EdgeId E = 0; E != numEdges(); ++E)
    if (InSet[EdgeList[E].From] && InSet[EdgeList[E].To])
      Result.push_back(E);
  return Result;
}

double Digraph::totalWeight() const {
  double Sum = 0.0;
  for (const Edge &E : EdgeList)
    Sum += E.Weight;
  return Sum;
}

double Digraph::blockWeight(const std::vector<NodeId> &Nodes) const {
  double Sum = 0.0;
  for (EdgeId E : internalEdges(Nodes))
    Sum += EdgeList[E].Weight;
  return Sum;
}
