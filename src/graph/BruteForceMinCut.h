//===- graph/BruteForceMinCut.h - Exhaustive min-cut oracle ----*- C++ -*-===//
///
/// \file
/// Exhaustive global minimum cut over all bipartitions. Exponential; only
/// used as a test oracle to validate the Stoer-Wagner implementation and to
/// measure the optimality gap of Algorithm 1 on small graphs (the k-cut
/// problem the paper cites as NP-complete for undetermined k).
///
//===----------------------------------------------------------------------===//

#ifndef KF_GRAPH_BRUTEFORCEMINCUT_H
#define KF_GRAPH_BRUTEFORCEMINCUT_H

#include "graph/MinCut.h"

namespace kf {

/// Minimum cut by enumerating all 2^(N-1) - 1 bipartitions of the dense
/// symmetric weight matrix \p Weights. Requires 2 <= N <= 24.
CutResult bruteForceMinCut(const std::vector<std::vector<double>> &Weights);

} // namespace kf

#endif // KF_GRAPH_BRUTEFORCEMINCUT_H
