//===- graph/Digraph.h - Weighted directed graphs ---------------*- C++ -*-===//
///
/// \file
/// A small directed-graph class used to represent the kernel dependence DAG
/// G = (V, E) of Section II of the paper: vertices are kernels, and an edge
/// (vi, vj) means kernel vj consumes the output produced by kernel vi. Edge
/// weights carry the fusion benefit assigned by the benefit-estimation model.
///
//===----------------------------------------------------------------------===//

#ifndef KF_GRAPH_DIGRAPH_H
#define KF_GRAPH_DIGRAPH_H

#include <optional>
#include <string>
#include <vector>

namespace kf {

/// Directed multigraph with string node labels and double edge weights.
/// Node and edge identifiers are dense indices in insertion order, which
/// keeps every algorithm in the library deterministic.
class Digraph {
public:
  using NodeId = unsigned;
  using EdgeId = unsigned;

  struct Edge {
    NodeId From;
    NodeId To;
    double Weight;
  };

  /// Adds a node and returns its id. Labels need not be unique, though the
  /// fusion layer always uses unique kernel names.
  NodeId addNode(std::string Label);

  /// Adds a directed edge From -> To and returns its id.
  EdgeId addEdge(NodeId From, NodeId To, double Weight = 0.0);

  unsigned numNodes() const { return static_cast<unsigned>(Labels.size()); }
  unsigned numEdges() const { return static_cast<unsigned>(EdgeList.size()); }

  const std::string &label(NodeId N) const;
  const Edge &edge(EdgeId E) const;
  void setEdgeWeight(EdgeId E, double Weight);

  /// First node with \p Label, if any.
  std::optional<NodeId> findNode(const std::string &Label) const;

  /// Edge ids leaving / entering \p N in insertion order.
  const std::vector<EdgeId> &edgesFrom(NodeId N) const;
  const std::vector<EdgeId> &edgesTo(NodeId N) const;

  /// Successor / predecessor node ids (may contain duplicates when parallel
  /// edges exist).
  std::vector<NodeId> successors(NodeId N) const;
  std::vector<NodeId> predecessors(NodeId N) const;

  /// Kahn topological order, or std::nullopt when the graph has a cycle.
  /// Ties are broken by node id, so the order is deterministic.
  std::optional<std::vector<NodeId>> topologicalOrder() const;

  bool hasCycle() const { return !topologicalOrder().has_value(); }

  /// True if the subgraph induced by \p Nodes is weakly connected (edges
  /// taken as undirected). A single node is connected; an empty set is not.
  bool isWeaklyConnected(const std::vector<NodeId> &Nodes) const;

  /// Edge ids with both endpoints inside \p Nodes.
  std::vector<EdgeId> internalEdges(const std::vector<NodeId> &Nodes) const;

  /// Sum of weights of all edges in the graph (w_G in Eq. 13).
  double totalWeight() const;

  /// Sum of weights of internalEdges(Nodes) (the weight w_P of a partition
  /// block in Eq. 1).
  double blockWeight(const std::vector<NodeId> &Nodes) const;

private:
  std::vector<std::string> Labels;
  std::vector<Edge> EdgeList;
  std::vector<std::vector<EdgeId>> OutEdges;
  std::vector<std::vector<EdgeId>> InEdges;
};

} // namespace kf

#endif // KF_GRAPH_DIGRAPH_H
