//===- graph/RandomGraphs.cpp ----------------------------------------------===//

#include "graph/RandomGraphs.h"

#include <cassert>

using namespace kf;

std::vector<std::vector<double>>
kf::randomConnectedWeights(unsigned NumVertices, unsigned ExtraEdges,
                           double MinWeight, double MaxWeight,
                           Rng &Generator) {
  assert(NumVertices >= 2 && "need at least two vertices");
  std::vector<std::vector<double>> W(NumVertices,
                                     std::vector<double>(NumVertices, 0.0));
  auto addEdge = [&](unsigned A, unsigned B) {
    double Weight = Generator.uniform(MinWeight, MaxWeight);
    W[A][B] += Weight;
    W[B][A] += Weight;
  };
  // Random spanning tree: attach each vertex to a random earlier one.
  for (unsigned V = 1; V != NumVertices; ++V)
    addEdge(V, static_cast<unsigned>(Generator.nextBelow(V)));
  for (unsigned I = 0; I != ExtraEdges; ++I) {
    unsigned A = static_cast<unsigned>(Generator.nextBelow(NumVertices));
    unsigned B = static_cast<unsigned>(Generator.nextBelow(NumVertices));
    if (A != B)
      addEdge(A, B);
  }
  return W;
}

Digraph kf::randomDag(unsigned NumNodes, double ExtraEdgeProb,
                      Rng &Generator) {
  assert(NumNodes >= 1 && "need at least one node");
  Digraph G;
  for (unsigned N = 0; N != NumNodes; ++N)
    G.addNode("n" + std::to_string(N));
  for (unsigned N = 1; N != NumNodes; ++N) {
    unsigned Pred = static_cast<unsigned>(Generator.nextBelow(N));
    G.addEdge(Pred, N, Generator.uniform(1.0, 100.0));
  }
  for (unsigned From = 0; From != NumNodes; ++From)
    for (unsigned To = From + 1; To != NumNodes; ++To)
      if (Generator.nextDouble() < ExtraEdgeProb)
        G.addEdge(From, To, Generator.uniform(1.0, 100.0));
  return G;
}
