//===- graph/RandomGraphs.h - Random graph generators ----------*- C++ -*-===//
///
/// \file
/// Deterministic random-graph generators used by the property tests and the
/// scaling benchmarks: connected undirected weight matrices for min-cut
/// validation and layered DAGs shaped like image-processing pipelines for
/// the fusion algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef KF_GRAPH_RANDOMGRAPHS_H
#define KF_GRAPH_RANDOMGRAPHS_H

#include "graph/Digraph.h"
#include "support/Random.h"

#include <vector>

namespace kf {

/// Generates a connected undirected weighted graph on \p NumVertices
/// vertices as a dense symmetric matrix: a random spanning tree plus
/// \p ExtraEdges additional random edges. Weights are uniform in
/// [\p MinWeight, \p MaxWeight).
std::vector<std::vector<double>>
randomConnectedWeights(unsigned NumVertices, unsigned ExtraEdges,
                       double MinWeight, double MaxWeight, Rng &Generator);

/// Generates a random connected DAG with \p NumNodes nodes. Every non-root
/// node receives an edge from a random earlier node, and each additional
/// edge is added with probability \p ExtraEdgeProb per ordered pair.
/// Edge weights are uniform in [1, 100). Node labels are "n0", "n1", ...
Digraph randomDag(unsigned NumNodes, double ExtraEdgeProb, Rng &Generator);

} // namespace kf

#endif // KF_GRAPH_RANDOMGRAPHS_H
