//===- graph/MinCut.cpp ---------------------------------------------------===//

#include "graph/MinCut.h"

#include <algorithm>
#include <cassert>

using namespace kf;

std::vector<std::vector<double>>
kf::buildUndirectedWeights(const Digraph &G,
                           const std::vector<Digraph::NodeId> &Nodes) {
  size_t N = Nodes.size();
  std::vector<unsigned> Position(G.numNodes(), ~0u);
  for (size_t I = 0; I != N; ++I)
    Position[Nodes[I]] = static_cast<unsigned>(I);

  std::vector<std::vector<double>> W(N, std::vector<double>(N, 0.0));
  for (Digraph::EdgeId E : G.internalEdges(Nodes)) {
    const Digraph::Edge &Ed = G.edge(E);
    unsigned A = Position[Ed.From];
    unsigned B = Position[Ed.To];
    if (A == B)
      continue; // Ignore self loops; they never cross a cut.
    W[A][B] += Ed.Weight;
    W[B][A] += Ed.Weight;
  }
  return W;
}

CutResult
kf::stoerWagnerMinCut(const std::vector<std::vector<double>> &Weights) {
  size_t N = Weights.size();
  assert(N >= 2 && "minimum cut needs at least two vertices");

  // Working copy of the weight matrix; vertices get merged in place.
  std::vector<std::vector<double>> W = Weights;
  // Groups[i] lists the original vertices merged into working vertex i.
  std::vector<std::vector<unsigned>> Groups(N);
  for (size_t I = 0; I != N; ++I)
    Groups[I] = {static_cast<unsigned>(I)};
  // Active working vertices, in a deterministic order.
  std::vector<unsigned> Active(N);
  for (size_t I = 0; I != N; ++I)
    Active[I] = static_cast<unsigned>(I);

  CutResult Best;
  bool HaveBest = false;

  while (Active.size() > 1) {
    // One minimum-cut phase: a maximum-adjacency search starting from the
    // first active vertex (the paper starts from kernel dx in its example).
    std::vector<unsigned> Order{Active.front()};
    std::vector<bool> Added(N, false);
    Added[Active.front()] = true;
    std::vector<double> Attach(N, 0.0);
    for (unsigned V : Active)
      if (V != Active.front())
        Attach[V] = W[Active.front()][V];

    while (Order.size() != Active.size()) {
      unsigned Next = ~0u;
      double BestAttach = -1.0;
      for (unsigned V : Active) {
        if (Added[V])
          continue;
        // Strict > keeps the smallest index on ties: deterministic.
        if (Attach[V] > BestAttach) {
          BestAttach = Attach[V];
          Next = V;
        }
      }
      Added[Next] = true;
      Order.push_back(Next);
      for (unsigned V : Active)
        if (!Added[V])
          Attach[V] += W[Next][V];
    }

    unsigned T = Order[Order.size() - 1];
    unsigned S = Order[Order.size() - 2];
    double PhaseCut = Attach[T];

    // "The first one encountered" wins on ties, hence strict less-than.
    if (!HaveBest || PhaseCut < Best.Weight) {
      HaveBest = true;
      Best.Weight = PhaseCut;
      Best.SideA = Groups[T];
    }

    // Merge T into S.
    for (unsigned V : Active) {
      if (V == S || V == T)
        continue;
      W[S][V] += W[T][V];
      W[V][S] = W[S][V];
    }
    Groups[S].insert(Groups[S].end(), Groups[T].begin(), Groups[T].end());
    Active.erase(std::find(Active.begin(), Active.end(), T));
  }

  // SideB is the complement of SideA over the original vertices.
  std::vector<bool> InA(N, false);
  for (unsigned V : Best.SideA)
    InA[V] = true;
  for (size_t I = 0; I != N; ++I)
    if (!InA[I])
      Best.SideB.push_back(static_cast<unsigned>(I));
  std::sort(Best.SideA.begin(), Best.SideA.end());
  assert(!Best.SideA.empty() && !Best.SideB.empty() &&
         "cut must produce two non-empty sides");
  return Best;
}

CutResult kf::stoerWagnerMinCut(const Digraph &G,
                                const std::vector<Digraph::NodeId> &Nodes) {
  CutResult Local = stoerWagnerMinCut(buildUndirectedWeights(G, Nodes));
  CutResult Result;
  Result.Weight = Local.Weight;
  for (unsigned I : Local.SideA)
    Result.SideA.push_back(Nodes[I]);
  for (unsigned I : Local.SideB)
    Result.SideB.push_back(Nodes[I]);
  return Result;
}
