//===- graph/BruteForceMinCut.cpp ------------------------------------------===//

#include "graph/BruteForceMinCut.h"

#include <cassert>

using namespace kf;

CutResult
kf::bruteForceMinCut(const std::vector<std::vector<double>> &Weights) {
  size_t N = Weights.size();
  assert(N >= 2 && N <= 24 && "brute-force cut limited to small graphs");

  CutResult Best;
  bool HaveBest = false;
  // Vertex 0 stays on side A; enumerate membership of the remaining N-1.
  // Mask 0 would put everyone on side A (no cut), so start at 1.
  uint64_t Limit = 1ull << (N - 1);
  for (uint64_t Mask = 1; Mask < Limit; ++Mask) {
    double CutWeight = 0.0;
    auto onSideA = [&](size_t V) {
      return V == 0 || ((Mask >> (V - 1)) & 1) == 0;
    };
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J)
        if (onSideA(I) != onSideA(J))
          CutWeight += Weights[I][J];
    if (!HaveBest || CutWeight < Best.Weight) {
      HaveBest = true;
      Best.Weight = CutWeight;
      Best.SideA.clear();
      Best.SideB.clear();
      for (size_t V = 0; V != N; ++V)
        (onSideA(V) ? Best.SideA : Best.SideB)
            .push_back(static_cast<unsigned>(V));
    }
  }
  return Best;
}
