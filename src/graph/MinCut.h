//===- graph/MinCut.h - Stoer-Wagner global minimum cut --------*- C++ -*-===//
///
/// \file
/// The weighted global minimum-cut building block of the fusion algorithm
/// (Section III-A of the paper). The paper chooses the Stoer-Wagner
/// algorithm [14]: deterministic, O(|V||E| + |V|^2 log |V|), and defined for
/// undirected edge-weighted graphs, "which is also applicable to directed
/// graphs as in our case" -- directed edges are taken as undirected and
/// parallel edges have their weights summed.
///
//===----------------------------------------------------------------------===//

#ifndef KF_GRAPH_MINCUT_H
#define KF_GRAPH_MINCUT_H

#include "graph/Digraph.h"

#include <vector>

namespace kf {

/// Result of a global minimum cut: the two sides of the bipartition and the
/// total weight of the crossing edges. Sides are always non-empty.
struct CutResult {
  double Weight = 0.0;
  std::vector<unsigned> SideA;
  std::vector<unsigned> SideB;
};

/// Stoer-Wagner minimum cut of the dense symmetric weight matrix \p Weights
/// (Weights[i][j] is the undirected weight between i and j; the diagonal is
/// ignored). Requires at least two vertices. Sides hold vertex indices.
///
/// Tie-breaking is deterministic: the maximum-adjacency search starts from
/// vertex 0 and prefers the smallest vertex index, and the first
/// cut-of-the-phase achieving the minimum weight is kept -- matching the
/// paper's "the algorithm selects the first one encountered".
CutResult stoerWagnerMinCut(const std::vector<std::vector<double>> &Weights);

/// Convenience overload on a subset of a digraph: builds the symmetric
/// weight matrix over \p Nodes (summing parallel and anti-parallel edge
/// weights) and returns sides as node ids of \p G.
CutResult stoerWagnerMinCut(const Digraph &G,
                            const std::vector<Digraph::NodeId> &Nodes);

/// Builds the dense symmetric weight matrix over \p Nodes used by both the
/// Stoer-Wagner and the brute-force cut. Exposed for testing.
std::vector<std::vector<double>>
buildUndirectedWeights(const Digraph &G,
                       const std::vector<Digraph::NodeId> &Nodes);

} // namespace kf

#endif // KF_GRAPH_MINCUT_H
