//===- analysis/Diagnostics.cpp --------------------------------------------===//

#include "analysis/Diagnostics.h"

#include "support/Error.h"

#include <cstdio>

using namespace kf;

const char *kf::diagSeverityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  KF_UNREACHABLE("unknown diagnostic severity");
}

std::string DiagLocation::str() const {
  std::string Out = Unit;
  if (!Kernel.empty())
    Out += (Out.empty() ? "" : ":") + ("kernel '" + Kernel + "'");
  if (Stage >= 0)
    Out += (Out.empty() ? "" : ":") + ("stage " + std::to_string(Stage));
  if (Inst >= 0)
    Out += (Out.empty() ? "" : ":") + ("inst " + std::to_string(Inst));
  return Out;
}

void DiagnosticEngine::report(Diagnostic Diag) {
  if (Diag.Severity == DiagSeverity::Error)
    ++Errors;
  else if (Diag.Severity == DiagSeverity::Warning)
    ++Warnings;
  Diags.push_back(std::move(Diag));
}

void DiagnosticEngine::error(std::string Code, std::string Message,
                             DiagLocation Loc, std::string FixHint) {
  report({DiagSeverity::Error, std::move(Code), std::move(Message),
          std::move(Loc), std::move(FixHint)});
}

void DiagnosticEngine::warning(std::string Code, std::string Message,
                               DiagLocation Loc, std::string FixHint) {
  report({DiagSeverity::Warning, std::move(Code), std::move(Message),
          std::move(Loc), std::move(FixHint)});
}

void DiagnosticEngine::note(std::string Code, std::string Message,
                            DiagLocation Loc, std::string FixHint) {
  report({DiagSeverity::Note, std::move(Code), std::move(Message),
          std::move(Loc), std::move(FixHint)});
}

bool DiagnosticEngine::hasCode(const std::string &Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticEngine::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += diagSeverityName(D.Severity);
    Out += ": ";
    Out += D.Code;
    std::string Where = D.Loc.str();
    if (!Where.empty()) {
      Out += ": ";
      Out += Where;
    }
    Out += ": ";
    Out += D.Message;
    Out += '\n';
    if (!D.FixHint.empty()) {
      Out += "  hint: ";
      Out += D.FixHint;
      Out += '\n';
    }
  }
  return Out;
}

namespace {

/// Escapes \p In for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size());
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string DiagnosticEngine::renderJson() const {
  std::string Out = "{\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Diags) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"severity\": \"";
    Out += diagSeverityName(D.Severity);
    Out += "\", \"code\": \"" + jsonEscape(D.Code) + "\"";
    Out += ", \"message\": \"" + jsonEscape(D.Message) + "\"";
    if (!D.Loc.Unit.empty())
      Out += ", \"unit\": \"" + jsonEscape(D.Loc.Unit) + "\"";
    if (!D.Loc.Kernel.empty())
      Out += ", \"kernel\": \"" + jsonEscape(D.Loc.Kernel) + "\"";
    if (D.Loc.Stage >= 0)
      Out += ", \"stage\": " + std::to_string(D.Loc.Stage);
    if (D.Loc.Inst >= 0)
      Out += ", \"inst\": " + std::to_string(D.Loc.Inst);
    if (!D.FixHint.empty())
      Out += ", \"hint\": \"" + jsonEscape(D.FixHint) + "\"";
    Out += "}";
  }
  Out += First ? "]" : "\n  ]";
  Out += ",\n  \"errors\": " + std::to_string(Errors);
  Out += ",\n  \"warnings\": " + std::to_string(Warnings);
  Out += "\n}\n";
  return Out;
}

const kf::DiagCodeInfo *kf::lookupDiagCode(const std::string &Code) {
  for (const DiagCodeInfo &Info : DiagCodeRegistry)
    if (Code == Info.Code)
      return &Info;
  return nullptr;
}
