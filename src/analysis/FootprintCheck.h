//===- analysis/FootprintCheck.h - Static footprint/halo checks -*- C++ -*-===//
///
/// \file
/// The static footprint/halo checker -- the analyzer's second pass. The
/// fused executor splits every launch into an interior (border checks
/// statically impossible, row-wise fast path) and a halo rim (bordered,
/// index-exchanged slow path); the split parameter is the launch halo
/// derived from the staged program's Reach metadata. A halo that is too
/// small turns border pixels into out-of-bounds reads -- silently, since
/// the interior path does no checking.
///
/// This pass re-derives the footprint twice, independently of what
/// compileFusedKernel recorded:
///
///   1. from the *bytecode*: the transitive maximum access offset of each
///      stage through loads and stage calls (what the emitted code can
///      actually touch), and
///   2. from the *IR*: each stage's window halo grown by its eliminated
///      in-block producers -- the Eq. 9 mask-growth arithmetic of the
///      paper, the same recurrence fusion/Legality uses for Eq. 2.
///
/// It then proves, per launch: the bytecode never reaches farther than the
/// source IR allows (KF-F02, a miscompile otherwise), the recorded Reach
/// metadata covers the bytecode (KF-F03), the interior/halo split covers
/// every access of the fused stage chain (KF-F01), and the uniform-extent
/// flag that legitimizes the interior is honest (KF-F04).
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_FOOTPRINTCHECK_H
#define KF_ANALYSIS_FOOTPRINTCHECK_H

#include "analysis/Diagnostics.h"
#include "ir/ExprVM.h"
#include "transform/FusedKernel.h"

namespace kf {

/// Per-stage transitive access reach recomputed from the bytecode alone
/// (load offsets, plus stage-call offsets grown by the callee's reach).
/// Invalid (non-preceding) stage-call targets contribute nothing; the
/// bytecode validator reports those.
std::vector<int> computeBytecodeReach(const StagedVmProgram &SP);

/// Per-stage reach derived from the source IR of fused kernel \p FK: the
/// stage's own input halos, grown through eliminated in-block producers
/// (Eq. 9 generalized to rectangular halos via the max extent). Stage
/// order matches FK.Stages.
std::vector<int> computeIrReach(const Program &P, const FusedKernel &FK);

/// Checks one compiled launch of \p FK: \p SP/\p Root/\p Halo as the
/// executor will run them, \p PoolShapes the plan's image table. Reports
/// KF-F01..KF-F04 into \p DE.
void checkLaunchFootprint(const Program &P, const FusedKernel &FK,
                          const StagedVmProgram &SP, uint16_t Root,
                          int Halo, const std::vector<ImageInfo> &PoolShapes,
                          DiagnosticEngine &DE, DiagLocation Loc = {});

/// Proves the overlapped tiling strategy safe for this launch: every
/// scratch plane's margin (recomputed from the bytecode's stage-call
/// offsets, the walk buildOverlapSchedule performs collapsed over
/// channels) plus the plane stage's direct load halo must stay within
/// the launch halo -- the interior rectangle overlapped tiles run on is
/// inset by exactly \p Halo, so a violating stage would read out of
/// bounds from inside a grown tile. Reports KF-F06. Skipped for mixed
/// extents (overlapped execution falls back to interior/halo there).
void checkOverlapCoverage(const StagedVmProgram &SP, uint16_t Root,
                          int Halo, DiagnosticEngine &DE,
                          DiagLocation Loc = {});

} // namespace kf

#endif // KF_ANALYSIS_FOOTPRINTCHECK_H
