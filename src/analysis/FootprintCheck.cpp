//===- analysis/FootprintCheck.cpp -----------------------------------------===//

#include "analysis/FootprintCheck.h"

#include "ir/CostInfo.h"

#include <algorithm>
#include <cstdlib>
#include <map>

using namespace kf;

std::vector<int> kf::computeBytecodeReach(const StagedVmProgram &SP) {
  std::vector<int> Reach(SP.Stages.size(), 0);
  for (size_t S = 0; S != SP.Stages.size(); ++S) {
    int R = 0;
    for (const VmInst &Inst : SP.Stages[S].Code.Insts) {
      int Off = std::max(std::abs(static_cast<int>(Inst.Ox)),
                         std::abs(static_cast<int>(Inst.Oy)));
      if (Inst.Op == VmOp::Load)
        R = std::max(R, Off);
      else if (Inst.Op == VmOp::StageCall && Inst.Sel < S)
        R = std::max(R, Off + Reach[Inst.Sel]);
    }
    Reach[S] = R;
  }
  return Reach;
}

std::vector<int> kf::computeIrReach(const Program &P, const FusedKernel &FK) {
  // Stage index of each eliminated in-block producer, by output image.
  std::map<ImageId, size_t> Eliminated;
  for (size_t S = 0; S != FK.Stages.size(); ++S) {
    KernelId Id = FK.Stages[S].Kernel;
    if (!FK.isDestination(Id))
      Eliminated[P.kernel(Id).Output] = S;
  }

  std::vector<int> Reach(FK.Stages.size(), 0);
  for (size_t S = 0; S != FK.Stages.size(); ++S) {
    const Kernel &K = P.kernel(FK.Stages[S].Kernel);
    KernelCost Cost = analyzeKernelCost(P, FK.Stages[S].Kernel);
    int R = 0;
    for (size_t In = 0; In != K.Inputs.size(); ++In) {
      const InputFootprint &F = Cost.Footprints[In];
      int Halo = std::max(F.HaloX, F.HaloY);
      auto It = Eliminated.find(K.Inputs[In]);
      // Eq. 9: a window over an eliminated intermediate grows by the
      // producer's own (already grown) reach. Producers precede their
      // consumers in stage order, so Reach[It->second] is final.
      if (It != Eliminated.end() && It->second < S)
        Halo += Reach[It->second];
      R = std::max(R, Halo);
    }
    Reach[S] = R;
  }
  return Reach;
}

void kf::checkLaunchFootprint(const Program &P, const FusedKernel &FK,
                              const StagedVmProgram &SP, uint16_t Root,
                              int Halo,
                              const std::vector<ImageInfo> &PoolShapes,
                              DiagnosticEngine &DE, DiagLocation Loc) {
  if (Root >= SP.Stages.size() || SP.Stages.size() != FK.Stages.size())
    return; // The bytecode validator reports malformed stage structure.

  std::vector<int> BcReach = computeBytecodeReach(SP);
  std::vector<int> IrReach = computeIrReach(P, FK);

  for (size_t S = 0; S != SP.Stages.size(); ++S) {
    DiagLocation StageLoc = Loc;
    StageLoc.Stage = static_cast<int>(S);
    StageLoc.Kernel = P.kernel(FK.Stages[S].Kernel).Name;
    // The emitted code must stay inside the source footprint: a stage
    // reading farther than its IR (window halos grown per Eq. 9) allows
    // is a miscompile, not a legal specialization.
    if (BcReach[S] > IrReach[S])
      DE.error("KF-F02",
               "compiled stage reaches " + std::to_string(BcReach[S]) +
                   " pixels but the source footprint allows only " +
                   std::to_string(IrReach[S]),
               StageLoc);
    // The recorded metadata must cover the emitted code: Reach is what
    // the interior/halo split is derived from.
    if (S < SP.Reach.size() && SP.Reach[S] < BcReach[S])
      DE.error("KF-F03",
               "recorded reach " + std::to_string(SP.Reach[S]) +
                   " does not cover the bytecode reach " +
                   std::to_string(BcReach[S]),
               StageLoc);
  }

  // Recompute extent uniformity from the stages and the pool images their
  // loads target; the flag legitimizes the interior region.
  bool Uniform = true;
  int RefW = SP.Stages.front().OutW, RefH = SP.Stages.front().OutH;
  auto note = [&](int W, int H) {
    if (W != RefW || H != RefH)
      Uniform = false;
  };
  for (const VmStage &Stage : SP.Stages) {
    note(Stage.OutW, Stage.OutH);
    for (const VmInst &Inst : Stage.Code.Insts)
      if (Inst.Op == VmOp::Load && Inst.InputIdx >= 0 &&
          static_cast<size_t>(Inst.InputIdx) < Stage.Inputs.size() &&
          Stage.Inputs[Inst.InputIdx] < PoolShapes.size()) {
        const ImageInfo &In = PoolShapes[Stage.Inputs[Inst.InputIdx]];
        note(In.Width, In.Height);
      }
  }
  if (SP.UniformExtents && !Uniform)
    DE.error("KF-F04",
             "staged program claims uniform extents but stages or loaded "
             "inputs differ in shape; the interior fast path would skip "
             "required border handling",
             Loc);

  const ImageInfo *Out =
      Root < FK.Stages.size() &&
              P.kernel(FK.Stages[Root].Kernel).Output < PoolShapes.size()
          ? &PoolShapes[P.kernel(FK.Stages[Root].Kernel).Output]
          : nullptr;
  if (Uniform && SP.UniformExtents) {
    // Interior pixels lie at least Halo away from every border; each can
    // reach BcReach[Root] pixels out, so the split is conservative iff
    // Halo covers the root's transitive reach.
    if (Halo < BcReach[Root])
      DE.error("KF-F01",
               "launch halo " + std::to_string(Halo) +
                   " does not cover the fused access reach " +
                   std::to_string(BcReach[Root]) +
                   "; interior pixels would read out of bounds",
               Loc,
               "the halo must be at least the destination stage's "
               "transitive reach");
  } else if (Out) {
    // Mixed extents void the interior: the split is only safe when the
    // halo empties it on at least one axis.
    if (2 * Halo < Out->Width && 2 * Halo < Out->Height)
      DE.error("KF-F01",
               "mixed stage/input extents require an empty interior, but "
               "halo " +
                   std::to_string(Halo) + " leaves interior pixels in a " +
                   std::to_string(Out->Width) + "x" +
                   std::to_string(Out->Height) + " launch",
               Loc);
  }
}

void kf::checkOverlapCoverage(const StagedVmProgram &SP, uint16_t Root,
                              int Halo, DiagnosticEngine &DE,
                              DiagLocation Loc) {
  if (!SP.UniformExtents || Root >= SP.Stages.size())
    return; // Overlapped execution falls back to interior/halo here.

  // Plane margins from the bytecode alone, walking stage calls from the
  // root outward: a callee's plane must extend as far as any caller's
  // plane plus the call offset. -1 marks stages the root never demands
  // (no plane, nothing to prove).
  std::vector<int> Margin(Root + 1, -1);
  Margin[Root] = 0;
  for (int S = Root; S >= 0; --S) {
    if (Margin[S] < 0)
      continue;
    for (const VmInst &Inst : SP.Stages[S].Code.Insts) {
      if (Inst.Op != VmOp::StageCall || Inst.Sel >= S)
        continue;
      int Off = std::max(std::abs(static_cast<int>(Inst.Ox)),
                         std::abs(static_cast<int>(Inst.Oy)));
      Margin[Inst.Sel] = std::max(Margin[Inst.Sel], Margin[S] + Off);
    }
  }

  for (int S = 0; S <= static_cast<int>(Root); ++S) {
    if (Margin[S] < 0)
      continue;
    int LoadHalo = 0;
    for (const VmInst &Inst : SP.Stages[S].Code.Insts)
      if (Inst.Op == VmOp::Load)
        LoadHalo = std::max(LoadHalo,
                            std::max(std::abs(static_cast<int>(Inst.Ox)),
                                     std::abs(static_cast<int>(Inst.Oy))));
    // A plane cell Margin[S] outside the tile loads LoadHalo farther;
    // interior tiles are inset by Halo, so that is the safety budget.
    if (Margin[S] + LoadHalo > Halo) {
      DiagLocation StageLoc = Loc;
      StageLoc.Stage = S;
      DE.error("KF-F06",
               "overlapped-tiling plane margin " +
                   std::to_string(Margin[S]) + " plus direct load halo " +
                   std::to_string(LoadHalo) + " exceeds the launch halo " +
                   std::to_string(Halo) +
                   "; grown tiles would read out of bounds",
               StageLoc,
               "the launch halo must cover every demanded plane's margin "
               "plus that stage's own load halo");
    }
  }
}
