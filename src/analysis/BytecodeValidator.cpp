//===- analysis/BytecodeValidator.cpp --------------------------------------===//

#include "analysis/BytecodeValidator.h"

#include <algorithm>
#include <cmath>

using namespace kf;

namespace {

/// Validates one instruction stream against its register frame and input
/// table. \p AllowStageCalls distinguishes staged subprograms from plain
/// kernel programs; \p CheckStageCall is invoked for every StageCall so
/// the staged validator can apply its cross-stage rules.
template <class StageCallFn>
void validateStream(const VmProgram &Code, size_t NumInputs,
                    const std::vector<ImageInfo> *PoolShapes,
                    const std::vector<ImageId> *Inputs, bool AllowStageCalls,
                    DiagnosticEngine &DE, const DiagLocation &Loc,
                    StageCallFn &&CheckStageCall) {
  if (Code.Insts.empty()) {
    DE.error("KF-B01", "empty instruction stream", Loc);
    return;
  }
  // Registers are uninitialized scratch: an instruction may only read a
  // register some earlier instruction wrote.
  std::vector<bool> Defined(Code.NumRegs, false);

  auto located = [&](size_t InstIdx) {
    DiagLocation L = Loc;
    L.Inst = static_cast<int>(InstIdx);
    return L;
  };
  auto checkReg = [&](uint16_t Reg, const char *Role, size_t InstIdx,
                      bool Read) {
    if (Reg >= Code.NumRegs) {
      DE.error("KF-B02",
               std::string(Role) + " register " + std::to_string(Reg) +
                   " out of range (frame has " +
                   std::to_string(Code.NumRegs) + " registers)",
               located(InstIdx));
      return;
    }
    if (Read && !Defined[Reg])
      DE.error("KF-B03",
               std::string(Role) + " register " + std::to_string(Reg) +
                   " read before it is written",
               located(InstIdx));
  };

  for (size_t I = 0; I != Code.Insts.size(); ++I) {
    const VmInst &Inst = Code.Insts[I];
    switch (Inst.Op) {
    case VmOp::Const:
      if (!std::isfinite(Inst.Imm))
        DE.warning("KF-B09", "non-finite constant immediate", located(I));
      break;
    case VmOp::CoordX:
    case VmOp::CoordY:
      break;
    case VmOp::Load: {
      if (Inst.InputIdx < 0 ||
          static_cast<size_t>(Inst.InputIdx) >= NumInputs) {
        DE.error("KF-B04",
                 "load input index " + std::to_string(Inst.InputIdx) +
                     " out of range (stage has " +
                     std::to_string(NumInputs) + " inputs)",
                 located(I));
        break;
      }
      if (Inst.Channel < -1)
        DE.error("KF-B04",
                 "load channel " + std::to_string(Inst.Channel) +
                     " is invalid (-1 or a fixed channel index)",
                 located(I));
      if (PoolShapes && Inputs) {
        ImageId Img = (*Inputs)[Inst.InputIdx];
        if (Img >= PoolShapes->size()) {
          DE.error("KF-B04",
                   "load targets pool image " + std::to_string(Img) +
                       " beyond the plan's " +
                       std::to_string(PoolShapes->size()) + " images",
                   located(I));
        } else if (Inst.Channel >= (*PoolShapes)[Img].Channels) {
          DE.error("KF-B04",
                   "load channel " + std::to_string(Inst.Channel) +
                       " out of range for image '" +
                       (*PoolShapes)[Img].Name + "' (" +
                       std::to_string((*PoolShapes)[Img].Channels) +
                       " channels)",
                   located(I));
        }
      }
      break;
    }
    case VmOp::Add:
    case VmOp::Sub:
    case VmOp::Mul:
    case VmOp::Div:
    case VmOp::Min:
    case VmOp::Max:
    case VmOp::Pow:
    case VmOp::CmpLT:
    case VmOp::CmpGT:
      checkReg(Inst.A, "operand", I, /*Read=*/true);
      checkReg(Inst.B, "operand", I, /*Read=*/true);
      break;
    case VmOp::Neg:
    case VmOp::Abs:
    case VmOp::Sqrt:
    case VmOp::Exp:
    case VmOp::Log:
    case VmOp::Floor:
      checkReg(Inst.A, "operand", I, /*Read=*/true);
      break;
    case VmOp::Select:
      checkReg(Inst.A, "operand", I, /*Read=*/true);
      checkReg(Inst.B, "operand", I, /*Read=*/true);
      checkReg(Inst.Sel, "condition", I, /*Read=*/true);
      break;
    case VmOp::StageCall:
      if (!AllowStageCalls) {
        DE.error("KF-B06", "StageCall in a plain kernel program",
                 located(I));
        break;
      }
      CheckStageCall(Inst, I);
      break;
    }
    checkReg(Inst.Dst, "destination", I, /*Read=*/false);
    if (Inst.Dst < Code.NumRegs)
      Defined[Inst.Dst] = true;
  }

  if (Code.ResultReg >= Code.NumRegs)
    DE.error("KF-B02",
             "result register " + std::to_string(Code.ResultReg) +
                 " out of range (frame has " +
                 std::to_string(Code.NumRegs) + " registers)",
             Loc);
  else if (!Defined[Code.ResultReg])
    DE.error("KF-B03",
             "result register " + std::to_string(Code.ResultReg) +
                 " is never written",
             Loc, "the instruction stream may be truncated");
}

} // namespace

void kf::validateVmProgram(const VmProgram &VM, size_t NumInputs,
                           DiagnosticEngine &DE, DiagLocation Loc) {
  validateStream(VM, NumInputs, /*PoolShapes=*/nullptr, /*Inputs=*/nullptr,
                 /*AllowStageCalls=*/false, DE, Loc,
                 [](const VmInst &, size_t) {});
}

void kf::validateStagedProgram(const StagedVmProgram &SP, uint16_t Root,
                               const std::vector<ImageInfo> &PoolShapes,
                               DiagnosticEngine &DE, DiagLocation Loc,
                               int MaxCallDepth) {
  if (SP.Stages.empty()) {
    DE.error("KF-B01", "staged program has no stages", Loc);
    return;
  }
  if (SP.Stages.size() > 0xFFFF)
    DE.error("KF-B10",
             "stage count " + std::to_string(SP.Stages.size()) +
                 " exceeds the 16-bit StageCall operand range",
             Loc);
  if (Root >= SP.Stages.size()) {
    DE.error("KF-B05",
             "root stage " + std::to_string(Root) + " out of range (" +
                 std::to_string(SP.Stages.size()) + " stages)",
             Loc);
    return;
  }

  // CallDepth[i]: longest stage-call chain rooted at stage i. Calls must
  // target strictly preceding stages, so a forward pass suffices; invalid
  // targets contribute nothing (they are reported as errors below).
  std::vector<int> CallDepth(SP.Stages.size(), 0);

  for (size_t S = 0; S != SP.Stages.size(); ++S) {
    const VmStage &Stage = SP.Stages[S];
    DiagLocation StageLoc = Loc;
    StageLoc.Stage = static_cast<int>(S);

    if (Stage.RegBase > SP.NumRegs ||
        Stage.Code.NumRegs > SP.NumRegs - Stage.RegBase)
      DE.error("KF-B07",
               "register frame [" + std::to_string(Stage.RegBase) + ", " +
                   std::to_string(Stage.RegBase + Stage.Code.NumRegs) +
                   ") overruns the shared scratch block of " +
                   std::to_string(SP.NumRegs) + " registers",
               StageLoc);
    if (Stage.OutW <= 0 || Stage.OutH <= 0)
      DE.error("KF-B01",
               "stage output extent " + std::to_string(Stage.OutW) + "x" +
                   std::to_string(Stage.OutH) + " must be positive",
               StageLoc);

    int Depth = 0;
    validateStream(
        Stage.Code, Stage.Inputs.size(), &PoolShapes, &Stage.Inputs,
        /*AllowStageCalls=*/true, DE, StageLoc,
        [&](const VmInst &Inst, size_t InstIdx) {
          DiagLocation InstLoc = StageLoc;
          InstLoc.Inst = static_cast<int>(InstIdx);
          if (Inst.Sel >= SP.Stages.size()) {
            DE.error("KF-B05",
                     "stage call targets stage " + std::to_string(Inst.Sel) +
                         " of " + std::to_string(SP.Stages.size()),
                     InstLoc);
            return;
          }
          if (Inst.Sel >= S) {
            DE.error("KF-B05",
                     "stage call targets non-preceding stage " +
                         std::to_string(Inst.Sel) +
                         " (calls must go strictly backward; forward or "
                         "self calls can recurse unboundedly)",
                     InstLoc);
            return;
          }
          if (Inst.Channel < -1)
            DE.error("KF-B04",
                     "stage call channel " + std::to_string(Inst.Channel) +
                         " is invalid",
                     InstLoc);
          Depth = std::max(Depth, 1 + CallDepth[Inst.Sel]);
        });
    CallDepth[S] = Depth;
    if (Depth > MaxCallDepth)
      DE.error("KF-B10",
               "stage-call depth " + std::to_string(Depth) +
                   " exceeds the recursion limit " +
                   std::to_string(MaxCallDepth),
               StageLoc);
  }

  // Span-mode lane-frame layout (KF-B11): the span interpreter gives each
  // stage the lane-buffer frame [RegBase*Lane, (RegBase+NumRegs)*Lane). A
  // caller's frame stays live while its stage calls evaluate callees, so
  // the frames of distinct stages must be pairwise disjoint -- overlap
  // would let a callee silently clobber its caller's registers. (KF-B07
  // only proves each frame fits the shared scratch.)
  std::vector<std::pair<unsigned, size_t>> Frames; // (RegBase, stage).
  for (size_t S = 0; S != SP.Stages.size(); ++S)
    Frames.emplace_back(SP.Stages[S].RegBase, S);
  std::sort(Frames.begin(), Frames.end());
  for (size_t I = 1; I < Frames.size(); ++I) {
    const VmStage &Prev = SP.Stages[Frames[I - 1].second];
    if (Frames[I].first < Prev.RegBase + Prev.Code.NumRegs) {
      DiagLocation StageLoc = Loc;
      StageLoc.Stage = static_cast<int>(Frames[I].second);
      DE.error("KF-B11",
               "register frame [" + std::to_string(Frames[I].first) + ", " +
                   std::to_string(Frames[I].first +
                                  SP.Stages[Frames[I].second].Code.NumRegs) +
                   ") overlaps stage " +
                   std::to_string(Frames[I - 1].second) + "'s frame [" +
                   std::to_string(Prev.RegBase) + ", " +
                   std::to_string(Prev.RegBase + Prev.Code.NumRegs) +
                   "); span-mode lane frames must be pairwise disjoint",
               StageLoc);
    }
  }

  if (SP.Reach.size() != SP.Stages.size())
    DE.error("KF-B08",
             "reach table has " + std::to_string(SP.Reach.size()) +
                 " entries for " + std::to_string(SP.Stages.size()) +
                 " stages",
             Loc);
}
