//===- analysis/Analyzer.h - Static-analysis driver -------------*- C++ -*-===//
///
/// \file
/// The driver tying the three analysis passes together (see
/// docs/ANALYSIS.md):
///
///   1. lintProgram          program/IR verifier + lint    (KF-P##)
///   2. checkLaunchFootprint static footprint/halo checker (KF-F##)
///   3. validateStagedProgram fused-bytecode validator     (KF-B##)
///
/// analyzeLaunch runs passes 2 and 3 over one compiled fused launch --
/// the (staged program, root, halo) triple exactly as the executor will
/// run it, against the plan's image table. checkFusedLegality re-checks
/// every multi-stage partition block against the fusion legality rules
/// (Figure 2 scenarios, Eq. 2 shared-memory constraint), catching
/// partitioners that bypassed or disagreed with fusion/Legality (KF-F05).
///
/// Analysis cost is observable: each entry point opens a Trace span and
/// bumps the "analysis.*" counters when tracing is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_ANALYZER_H
#define KF_ANALYSIS_ANALYZER_H

#include "analysis/BytecodeValidator.h"
#include "analysis/Diagnostics.h"
#include "analysis/FootprintCheck.h"
#include "analysis/ProgramLint.h"
#include "fusion/Legality.h"
#include "transform/FusedKernel.h"

namespace kf {

/// Runs the bytecode validator and the footprint checker over one
/// compiled launch of \p FK. \p Name labels diagnostics (fused kernel
/// name); \p PoolShapes is the image table the launch executes over.
void analyzeLaunch(const Program &P, const FusedKernel &FK,
                   const std::string &Name, const StagedVmProgram &SP,
                   uint16_t Root, int Halo,
                   const std::vector<ImageInfo> &PoolShapes,
                   DiagnosticEngine &DE);

/// Re-checks every multi-stage block of \p FP against the legality rules
/// under \p HW / \p Options; violations (including the Eq. 2 shared-
/// memory constraint) are reported as KF-F05 errors.
void checkFusedLegality(const FusedProgram &FP, const HardwareModel &HW,
                        const LegalityOptions &Options,
                        DiagnosticEngine &DE);

} // namespace kf

#endif // KF_ANALYSIS_ANALYZER_H
