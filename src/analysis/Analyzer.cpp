//===- analysis/Analyzer.cpp ------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "support/Trace.h"

using namespace kf;

void kf::analyzeLaunch(const Program &P, const FusedKernel &FK,
                       const std::string &Name, const StagedVmProgram &SP,
                       uint16_t Root, int Halo,
                       const std::vector<ImageInfo> &PoolShapes,
                       DiagnosticEngine &DE) {
  TraceSpan Span("analysis.launch", "analysis");
  size_t Before = DE.diagnostics().size();

  DiagLocation Loc;
  Loc.Kernel = Name;
  validateStagedProgram(SP, Root, PoolShapes, DE, Loc);
  checkLaunchFootprint(P, FK, SP, Root, Halo, PoolShapes, DE, Loc);
  checkOverlapCoverage(SP, Root, Halo, DE, Loc);

  if (TraceRecorder::enabled()) {
    TraceRecorder &TR = TraceRecorder::global();
    TR.addCounter("analysis.launches_checked", 1);
    TR.addCounter("analysis.diagnostics",
                  static_cast<double>(DE.diagnostics().size() - Before));
    Span.arg("stages", static_cast<double>(SP.Stages.size()));
  }
}

void kf::checkFusedLegality(const FusedProgram &FP, const HardwareModel &HW,
                            const LegalityOptions &Options,
                            DiagnosticEngine &DE) {
  if (!FP.Source)
    return;
  TraceSpan Span("analysis.legality", "analysis");

  LegalityChecker Checker(*FP.Source, HW, Options);
  for (const FusedKernel &FK : FP.Kernels) {
    if (FK.isSingleton())
      continue;
    std::vector<KernelId> Block;
    Block.reserve(FK.Stages.size());
    for (const FusedStage &Stage : FK.Stages)
      Block.push_back(Stage.Kernel);
    LegalityResult Result = Checker.checkBlock(Block);
    if (!Result.Legal) {
      DiagLocation Loc;
      Loc.Kernel = FK.Name;
      DE.error("KF-F05",
               "fused kernel violates the legality rules: " + Result.Reason,
               Loc,
               "the partitioner must route every candidate block through "
               "LegalityChecker::checkBlock");
    }
    if (TraceRecorder::enabled())
      TraceRecorder::global().addCounter("analysis.blocks_rechecked", 1);
  }
}
