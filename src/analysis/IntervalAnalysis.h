//===- analysis/IntervalAnalysis.h - Interval abstract interp ---*- C++ -*-===//
///
/// \file
/// An abstract interpreter over staged VM programs in the interval
/// domain: each register's possible values are tracked as a closed float
/// interval with +-inf endpoints plus a may-be-NaN bit (RegInterval,
/// ir/VmOptimizer.h). The fused bytecode is straight-line -- no control
/// flow, every Select evaluates both arms -- so one pass per stage in
/// stage order is a sound fixpoint: KF-B05's strictly-backward-call
/// invariant means every StageCall's callee facts are final when the
/// caller is interpreted.
///
/// The derived facts are position-independent: they cover every
/// evaluation position (interior, halo, index-exchanged or raw exterior,
/// overlapped-tiling plane cells), every border mode, and every
/// execution engine, which is what makes them strong enough to gate the
/// bit-identical rewrites of ir/VmOptimizer.h.
///
/// Transfer functions exploit float monotonicity: + - * / min max sqrt
/// floor are evaluated at interval endpoints in float (rounding is
/// monotone, so the endpoint images bound every attainable value); exp,
/// log and pow are not correctly rounded on every libm, so their
/// endpoint images are widened outward by a couple of ULPs. NaN
/// production (inf - inf, 0 * inf, 0/0, inf/inf, sqrt/log of negatives,
/// pow of a negative base) is tracked explicitly. A per-stage value
/// numbering recognizes `x * x` even when the compiler duplicated the
/// whole subtree per reference, so discriminants like
/// (gx - gy)^2 + 4*gxy^2 prove nonnegative under sqrt.
///
/// Value-quality findings are reported as KF-V diagnostics:
///   KF-V01  warning  possible division by zero
///   KF-V02  warning  Sqrt/Log of a possibly negative value
///   KF-V03  warning  Pow of a possibly negative base with a possibly
///                    non-integral exponent
///   KF-V04  warning  result is guaranteed NaN or infinite
///   KF-V05  note     Select condition statically decided
///   KF-V06  note     Min/Max clamp is a provable no-op
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_INTERVALANALYSIS_H
#define KF_ANALYSIS_INTERVALANALYSIS_H

#include "analysis/Diagnostics.h"
#include "ir/VmOptimizer.h"

#include <vector>

namespace kf {

/// Declared value range of one pool image. The default is the [0, 1]
/// float plane of normalized image data -- the contract every session
/// input filler in the repo honors. Callers must override the entry of
/// every *produced* pool image a later launch loads (with the producing
/// launch's result interval); an image missing from the vector is
/// assumed to be a declared [0, 1] input.
struct InputRange {
  float Lo = 0.0f;
  float Hi = 1.0f;
  bool MayNaN = false;

  RegInterval interval() const {
    RegInterval R;
    R.Lo = Lo;
    R.Hi = Hi;
    R.MayNaN = MayNaN;
    return R;
  }
};

/// The result of one interval interpretation: per-stage register facts
/// (indexed like SP.Stages; bottom for never-written registers) and the
/// root stage's result interval.
struct IntervalAnalysisResult {
  std::vector<StageValueFacts> Stages;
  RegInterval Result;
};

/// Interprets \p SP in the interval domain. \p PoolRanges is indexed by
/// ImageId (entries past its size default to the [0, 1] input contract).
/// When \p DE is given, KF-V01..V06 diagnostics are reported against
/// \p Loc with stage/instruction indices filled in; the facts themselves
/// are independent of \p Root (the whole program is interpreted
/// bottom-up), which only selects the exported Result.
IntervalAnalysisResult
analyzeStagedIntervals(const StagedVmProgram &SP, uint16_t Root,
                       const std::vector<InputRange> &PoolRanges = {},
                       DiagnosticEngine *DE = nullptr,
                       DiagLocation Loc = {});

} // namespace kf

#endif // KF_ANALYSIS_INTERVALANALYSIS_H
