//===- analysis/BytecodeValidator.h - Fused-bytecode validation -*- C++ -*-===//
///
/// \file
/// Structural validation of compiled ExprVM programs -- the analyzer's
/// third pass. The VM (ir/ExprVM.h) executes flat instruction streams into
/// caller-provided register scratch with no runtime bounds checks; a
/// miscompiled program is undefined behavior. The validator proves, at
/// plan-compile time, the properties the interpreters assume:
///
///   - every register operand stays inside the stage's register frame and
///     the frame stays inside the shared scratch block (KF-B02, KF-B07);
///   - every register is written before it is read, and the stage result
///     register is written (KF-B03) -- the register-machine analog of
///     stack-depth bounds checking;
///   - loads name a declared stage input, a pool image of the plan, and an
///     in-range channel (KF-B04);
///   - stage calls target a *preceding* stage, which bounds the call depth
///     by the (validated) stage count and makes recursion impossible
///     (KF-B05, KF-B10);
///   - plain kernel programs contain no StageCall at all (KF-B06);
///   - stage register frames are pairwise disjoint (KF-B11), the layout
///     the span-mode interpreter (runStagedVmSpan) relies on: a caller's
///     lane frame stays live across its stage calls, so overlapping
///     frames would let a callee clobber its caller.
///
/// The full bytecode format, register model, and invariant list live in
/// docs/VM.md.
///
/// sim/Session runs this over every freshly compiled plan (cache-miss
/// path); tests/test_bytecode_validator.cpp proves each check fires by
/// mutating pristine programs field by field.
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_BYTECODEVALIDATOR_H
#define KF_ANALYSIS_BYTECODEVALIDATOR_H

#include "analysis/Diagnostics.h"
#include "ir/ExprVM.h"

namespace kf {

/// Validates a plain (single-kernel) VM program compiled for a kernel
/// with \p NumInputs inputs. Reports into \p DE under \p Loc.
void validateVmProgram(const VmProgram &VM, size_t NumInputs,
                       DiagnosticEngine &DE, DiagLocation Loc = {});

/// Validates staged fused-kernel bytecode against the pool it will
/// execute over: \p PoolShapes are the plan's image shapes (indexed by
/// ImageId, as VmStage::Inputs references them), \p Root the launch's
/// destination stage. \p MaxCallDepth bounds the stage-call chain depth
/// (the fused VM recurses per call; the compiler never emits chains
/// longer than the stage count, so the default is generous).
void validateStagedProgram(const StagedVmProgram &SP, uint16_t Root,
                           const std::vector<ImageInfo> &PoolShapes,
                           DiagnosticEngine &DE, DiagLocation Loc = {},
                           int MaxCallDepth = 256);

} // namespace kf

#endif // KF_ANALYSIS_BYTECODEVALIDATOR_H
