//===- analysis/IntervalAnalysis.cpp ------------------------------------------===//

#include "analysis/IntervalAnalysis.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>

using namespace kf;

namespace {

/// Two-ULP outward widening for transfer functions whose libm
/// implementation is not guaranteed correctly rounded (exp, log, pow).
/// Infinities are fixed points in both directions: an exact infinite
/// bound is already attained (e.g. log(0) = -inf), so widening it
/// inward-toward-finite would only lose the guaranteed-non-finite fact.
float widenDown(float V) {
  if (!std::isfinite(V))
    return V;
  return std::nextafterf(std::nextafterf(V, -INFINITY), -INFINITY);
}

float widenUp(float V) {
  if (!std::isfinite(V))
    return V;
  return std::nextafterf(std::nextafterf(V, INFINITY), INFINITY);
}

/// Whether every outcome of \p R is NaN or infinite -- the KF-V04
/// condition, and the cascade guard that keeps one poisoned operand from
/// flagging its entire use chain.
bool guaranteedBad(const RegInterval &R) {
  if (R.numericEmpty())
    return R.MayNaN; // always-NaN (bottom is not "bad", just absent)
  return (R.Lo == INFINITY && R.Hi == INFINITY) ||
         (R.Lo == -INFINITY && R.Hi == -INFINITY);
}

RegInterval transferAdd(const RegInterval &A, const RegInterval &B,
                        bool Subtract) {
  RegInterval R;
  R.MayNaN = A.MayNaN || B.MayNaN;
  if (A.numericEmpty() || B.numericEmpty())
    return R; // a NaN operand propagates; no numeric outcome
  // fl(+) is monotone in both arguments, so the four float corner sums
  // bound every attainable value; a NaN corner (inf + -inf) can only
  // involve endpoint infinities, so corners also find every NaN case.
  const float BL = Subtract ? -B.Hi : B.Lo;
  const float BH = Subtract ? -B.Lo : B.Hi;
  const float Corners[4] = {A.Lo + BL, A.Lo + BH, A.Hi + BL, A.Hi + BH};
  for (float V : Corners)
    R.joinValue(V);
  return R;
}

RegInterval transferMul(const RegInterval &A, const RegInterval &B) {
  RegInterval R;
  R.MayNaN = A.MayNaN || B.MayNaN;
  if (A.numericEmpty() || B.numericEmpty())
    return R;
  const float Corners[4] = {A.Lo * B.Lo, A.Lo * B.Hi, A.Hi * B.Lo,
                            A.Hi * B.Hi};
  for (float V : Corners)
    R.joinValue(V);
  // 0 * inf is NaN and the zero need not sit at a corner (an interval
  // straddling zero has it strictly inside), so corner scanning alone
  // would miss it.
  if ((A.containsZero() && B.mayInf()) || (B.containsZero() && A.mayInf()))
    R.MayNaN = true;
  return R;
}

/// x * x when both operands are the same value number: the plain product
/// transfer loses the correlation and reports [lo*hi, ...] < 0 for a
/// sign-straddling x, while the square is provably nonnegative.
RegInterval transferSquare(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  if (A.numericEmpty())
    return R;
  const float LL = A.Lo * A.Lo;
  const float HH = A.Hi * A.Hi;
  R.Lo = A.containsZero() ? 0.0f : std::min(LL, HH);
  R.Hi = std::max(LL, HH);
  return R; // a*a with numeric a is never NaN (inf*inf = inf)
}

RegInterval transferDiv(const RegInterval &A, const RegInterval &B) {
  RegInterval R;
  R.MayNaN = A.MayNaN || B.MayNaN;
  if (A.numericEmpty() || B.numericEmpty())
    return R;
  if (B.containsZero()) {
    // x/0 is +-inf for x != 0; the numeric range collapses to top.
    R.Lo = -INFINITY;
    R.Hi = INFINITY;
    if (A.containsZero())
      R.MayNaN = true; // 0/0
    if (A.mayInf())
      R.MayNaN = true; // inf/inf against an inf divisor is caught below,
                       // but inf/0 is fine; only inf/inf needs B.mayInf
  }
  if (A.mayInf() && B.mayInf())
    R.MayNaN = true; // inf/inf
  if (!B.containsZero()) {
    // A divisor interval excluding zero has one sign, so a/b is monotone
    // in each argument and float corner quotients are exact bounds.
    const float Corners[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo,
                              A.Hi / B.Hi};
    for (float V : Corners)
      R.joinValue(V);
  }
  return R;
}

RegInterval transferMin(const RegInterval &A, const RegInterval &B) {
  // std::min returns its first operand unless B < A strictly, so a NaN
  // B yields A (numeric) and a NaN A yields NaN.
  RegInterval R;
  R.MayNaN = A.MayNaN;
  if (A.numericEmpty())
    return R;
  if (!B.numericEmpty()) {
    R.joinValue(std::min(A.Lo, B.Lo));
    R.joinValue(std::min(A.Hi, B.Hi));
  }
  if (B.MayNaN || B.numericEmpty()) {
    R.joinValue(A.Lo); // min(a, NaN) == a
    R.joinValue(A.Hi);
  }
  return R;
}

RegInterval transferMax(const RegInterval &A, const RegInterval &B) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  if (A.numericEmpty())
    return R;
  if (!B.numericEmpty()) {
    R.joinValue(std::max(A.Lo, B.Lo));
    R.joinValue(std::max(A.Hi, B.Hi));
  }
  if (B.MayNaN || B.numericEmpty()) {
    R.joinValue(A.Lo);
    R.joinValue(A.Hi);
  }
  return R;
}

/// Whether the exponent interval is pinned to one finite integral value
/// (pow of a negative base is well-defined exactly then). A zero value
/// is excluded: [−0, +0] endpoints compare equal yet pow treats the
/// exponent signs identically (pow(x, +-0) == 1), so zero is fine too --
/// but the base-zero case is what the caller must keep out.
bool constIntegralExponent(const RegInterval &B) {
  return !B.MayNaN && !B.numericEmpty() && B.Lo == B.Hi &&
         std::isfinite(B.Lo) && std::floor(B.Lo) == B.Lo;
}

RegInterval transferPow(const RegInterval &A, const RegInterval &B) {
  RegInterval R;
  R.MayNaN = A.MayNaN || B.MayNaN;
  if (A.numericEmpty() || B.numericEmpty())
    return R;
  if (A.Lo == A.Hi && B.Lo == B.Hi && A.Lo != 0.0f) {
    // Both pinned (base nonzero: [-0,+0] endpoints compare equal but
    // pow(-0, -1) and pow(+0, -1) differ in sign of infinity).
    const float V = std::pow(A.Lo, B.Lo);
    if (std::isnan(V)) {
      R.MayNaN = true;
      return R;
    }
    R.Lo = widenDown(V);
    R.Hi = widenUp(V);
    return R;
  }
  if (A.Lo >= 0.0f) {
    // Nonnegative base: pow never produces NaN (pow(0,0), pow(inf,0)
    // and pow(1, +-inf) are all 1) and the result is nonnegative.
    R.Lo = 0.0f;
    R.Hi = INFINITY;
    return R;
  }
  if (constIntegralExponent(B)) {
    // Negative base, integral exponent: defined, any sign, no NaN.
    R.Lo = -INFINITY;
    R.Hi = INFINITY;
    return R;
  }
  return RegInterval::full();
}

RegInterval transferSqrt(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN || A.Lo < 0.0f;
  if (A.numericEmpty() || A.Hi < 0.0f) {
    R.MayNaN = R.MayNaN || !A.numericEmpty();
    return R;
  }
  // IEEE sqrt is correctly rounded: endpoint images are exact bounds.
  R.Lo = std::sqrt(std::max(A.Lo, 0.0f));
  R.Hi = std::sqrt(A.Hi);
  return R;
}

RegInterval transferExp(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  if (A.numericEmpty())
    return R;
  R.Lo = std::max(0.0f, widenDown(std::exp(A.Lo)));
  R.Hi = widenUp(std::exp(A.Hi));
  return R;
}

RegInterval transferLog(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN || A.Lo < 0.0f;
  if (A.numericEmpty() || A.Hi < 0.0f) {
    R.MayNaN = R.MayNaN || !A.numericEmpty();
    return R;
  }
  // log(+-0) is -inf (a pole, not NaN); only strictly negative inputs
  // produce NaN.
  R.Lo = widenDown(std::log(std::max(A.Lo, 0.0f)));
  R.Hi = widenUp(std::log(A.Hi));
  return R;
}

RegInterval transferNeg(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  R.Lo = -A.Hi; // the empty sentinel negates onto itself
  R.Hi = -A.Lo;
  return R;
}

RegInterval transferAbs(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  if (A.numericEmpty())
    return R;
  const float AL = std::abs(A.Lo);
  const float AH = std::abs(A.Hi);
  R.Lo = A.containsZero() ? 0.0f : std::min(AL, AH);
  R.Hi = std::max(AL, AH);
  return R;
}

RegInterval transferFloor(const RegInterval &A) {
  RegInterval R;
  R.MayNaN = A.MayNaN;
  R.Lo = std::floor(A.Lo); // exact and monotone; +-inf are fixed points,
  R.Hi = std::floor(A.Hi); // so the empty sentinel survives
  return R;
}

RegInterval transferCmp(const RegInterval &A, const RegInterval &B,
                        bool Greater) {
  if (A.bottom() || B.bottom())
    return RegInterval();
  RegInterval R;
  // A NaN on either side compares false (0); the empty sentinels make
  // the always-false endpoint tests hold vacuously.
  const bool Always0 = Greater ? A.Hi <= B.Lo : A.Lo >= B.Hi;
  const bool NoNaN = !A.MayNaN && !B.MayNaN && !A.numericEmpty() &&
                     !B.numericEmpty();
  const bool Always1 = NoNaN && (Greater ? A.Lo > B.Hi : A.Hi < B.Lo);
  if (Always0)
    return RegInterval::point(0.0f);
  if (Always1)
    return RegInterval::point(1.0f);
  R.Lo = 0.0f;
  R.Hi = 1.0f;
  return R;
}

/// Value-number key: (op, operand VNs, immediate bits, load/call
/// fields). Structurally identical subcomputations get one VN, which is
/// how `x * x` is recognized when the compiler duplicated the subtree.
using VnKey = std::tuple<uint8_t, unsigned, unsigned, unsigned, uint32_t,
                         int16_t, int16_t, int16_t, int16_t>;

} // namespace

IntervalAnalysisResult
kf::analyzeStagedIntervals(const StagedVmProgram &SP, uint16_t Root,
                           const std::vector<InputRange> &PoolRanges,
                           DiagnosticEngine *DE, DiagLocation Loc) {
  IntervalAnalysisResult Out;
  Out.Stages.resize(SP.Stages.size());
  if (SP.Stages.empty())
    return Out;

  // Conservative coordinate bounds: every evaluation position -- halo
  // pixels, index-exchanged or raw exterior stage-call positions, and
  // overlapped-tiling plane cells grown by the reach margin -- lies
  // within the largest stage extent padded by the largest reach.
  int MaxExtent = 1;
  for (const VmStage &Stage : SP.Stages)
    MaxExtent = std::max(MaxExtent, std::max(Stage.OutW, Stage.OutH));
  int MaxReach = 0;
  for (int R : SP.Reach)
    MaxReach = std::max(MaxReach, R);
  const RegInterval CoordRange = RegInterval::range(
      static_cast<float>(-MaxReach),
      static_cast<float>(MaxExtent - 1 + MaxReach));

  for (size_t SI = 0; SI != SP.Stages.size(); ++SI) {
    const VmStage &Stage = SP.Stages[SI];
    StageValueFacts &F = Out.Stages[SI];
    F.Regs.assign(Stage.Code.NumRegs, RegInterval());

    std::map<VnKey, unsigned> VnTable;
    std::vector<unsigned> Vn(Stage.Code.NumRegs, 0);
    unsigned NextVn = 1;

    auto regOk = [&](uint16_t R) { return R < Stage.Code.NumRegs; };
    auto fact = [&](uint16_t R) -> RegInterval {
      return regOk(R) ? F.Regs[R] : RegInterval::full();
    };

    for (size_t II = 0; II != Stage.Code.Insts.size(); ++II) {
      const VmInst &Inst = Stage.Code.Insts[II];
      if (!regOk(Inst.Dst))
        continue; // malformed stream; the validator owns that complaint
      const RegInterval A = vmOpReadsA(Inst.Op) ? fact(Inst.A)
                                                   : RegInterval();
      const RegInterval B = fact(Inst.B);
      RegInterval R;
      DiagLocation At = Loc;
      At.Stage = static_cast<int>(SI);
      At.Inst = static_cast<int>(II);

      switch (Inst.Op) {
      case VmOp::Const:
        R = RegInterval::point(Inst.Imm);
        break;
      case VmOp::CoordX:
      case VmOp::CoordY:
        R = CoordRange;
        break;
      case VmOp::Load: {
        if (Inst.InputIdx < 0 ||
            static_cast<size_t>(Inst.InputIdx) >= Stage.Inputs.size()) {
          R = RegInterval::full();
          break;
        }
        const ImageId Img = Stage.Inputs[Inst.InputIdx];
        R = Img < PoolRanges.size() ? PoolRanges[Img].interval()
                                    : InputRange().interval();
        // The bordered path of a constant-border stage can substitute
        // the border constant for any out-of-range access.
        if (Stage.Border == BorderMode::Constant)
          R.joinValue(Stage.BorderConstant);
        break;
      }
      case VmOp::StageCall:
        R = Inst.Sel < SI ? Out.Stages[Inst.Sel].Result
                          : RegInterval::full();
        break;
      case VmOp::Add:
        R = transferAdd(A, B, /*Subtract=*/false);
        break;
      case VmOp::Sub:
        R = transferAdd(A, B, /*Subtract=*/true);
        break;
      case VmOp::Mul:
        if (regOk(Inst.A) && regOk(Inst.B) && Vn[Inst.A] != 0 &&
            Vn[Inst.A] == Vn[Inst.B])
          R = transferSquare(A);
        else
          R = transferMul(A, B);
        break;
      case VmOp::Div:
        R = transferDiv(A, B);
        if (DE && B.containsZero())
          DE->warning("KF-V01",
                      "possible division by zero: divisor range " +
                          formatInterval(B) + " admits zero",
                      At,
                      "guard the divisor away from zero (e.g. "
                      "max(d, epsilon)) or declare a tighter input range");
        break;
      case VmOp::Min:
        R = transferMin(A, B);
        if (DE && decideMin(A, B) != ClampDecision::Keep)
          DE->note("KF-V06",
                   "min clamp is a provable no-op: operand ranges " +
                       formatInterval(A) + " and " + formatInterval(B) +
                       " decide it statically",
                   At, "the optimizer removes this instruction");
        break;
      case VmOp::Max:
        R = transferMax(A, B);
        if (DE && decideMax(A, B) != ClampDecision::Keep)
          DE->note("KF-V06",
                   "max clamp is a provable no-op: operand ranges " +
                       formatInterval(A) + " and " + formatInterval(B) +
                       " decide it statically",
                   At, "the optimizer removes this instruction");
        break;
      case VmOp::Pow:
        R = transferPow(A, B);
        if (DE && A.Lo < 0.0f && !constIntegralExponent(B))
          DE->warning("KF-V03",
                      "pow of a possibly negative base " +
                          formatInterval(A) +
                          " with a possibly non-integral exponent " +
                          formatInterval(B) + " can produce NaN",
                      At,
                      "clamp the base nonnegative or use an integral "
                      "constant exponent");
        break;
      case VmOp::CmpLT:
        R = transferCmp(A, B, /*Greater=*/false);
        break;
      case VmOp::CmpGT:
        R = transferCmp(A, B, /*Greater=*/true);
        break;
      case VmOp::Neg:
        R = transferNeg(A);
        break;
      case VmOp::Abs:
        R = transferAbs(A);
        break;
      case VmOp::Sqrt:
        R = transferSqrt(A);
        if (DE && A.Lo < 0.0f)
          DE->warning("KF-V02",
                      "sqrt of a possibly negative value " +
                          formatInterval(A) + " can produce NaN",
                      At, "clamp the argument with max(x, 0)");
        break;
      case VmOp::Exp:
        R = transferExp(A);
        break;
      case VmOp::Log:
        R = transferLog(A);
        if (DE && A.Lo < 0.0f)
          DE->warning("KF-V02",
                      "log of a possibly negative value " +
                          formatInterval(A) + " can produce NaN",
                      At, "clamp the argument with max(x, 0)");
        break;
      case VmOp::Floor:
        R = transferFloor(A);
        break;
      case VmOp::Select: {
        const RegInterval Sel = fact(Inst.Sel);
        const ClampDecision D = decideSelect(Sel);
        if (D == ClampDecision::TakeA)
          R = A;
        else if (D == ClampDecision::TakeB)
          R = B;
        else {
          R = A;
          R.join(B);
        }
        if (DE && D != ClampDecision::Keep)
          DE->note("KF-V05",
                   std::string("select condition ") + formatInterval(Sel) +
                       " is statically decided: the " +
                       (D == ClampDecision::TakeA ? "false" : "true") +
                       " arm is never taken",
                   At, "the optimizer folds this to the taken arm");
        break;
      }
      }

      // KF-V04: the instruction's own result is guaranteed NaN/inf while
      // none of its register operands already were -- cascades stay
      // silent so one poisoned value reports once, at its origin.
      if (DE && Inst.Op != VmOp::Const && Inst.Op != VmOp::Load &&
          Inst.Op != VmOp::StageCall && guaranteedBad(R)) {
        const bool OperandBad =
            (vmOpReadsA(Inst.Op) && guaranteedBad(A)) ||
            (vmOpReadsB(Inst.Op) && guaranteedBad(B)) ||
            (Inst.Op == VmOp::Select && guaranteedBad(fact(Inst.Sel)));
        if (!OperandBad)
          DE->warning("KF-V04",
                      "result is guaranteed non-finite: " +
                          formatInterval(R),
                      At,
                      "every pixel of this value is NaN or infinite; "
                      "check the expression or the declared input ranges");
      }

      F.Regs[Inst.Dst] = R;

      // Value number the defining instruction (operand VNs, not register
      // numbers, so re-materialized copies of a subtree unify).
      uint32_t ImmBits = 0;
      std::memcpy(&ImmBits, &Inst.Imm, sizeof(ImmBits));
      const unsigned VnA =
          vmOpReadsA(Inst.Op) && regOk(Inst.A) ? Vn[Inst.A] : 0;
      const unsigned VnB =
          vmOpReadsB(Inst.Op) && regOk(Inst.B) ? Vn[Inst.B] : 0;
      unsigned VnSel = 0;
      if (Inst.Op == VmOp::Select && regOk(Inst.Sel))
        VnSel = Vn[Inst.Sel];
      else if (Inst.Op == VmOp::StageCall)
        VnSel = Inst.Sel + 1; // stage index, already a stable identity
      const VnKey Key(static_cast<uint8_t>(Inst.Op), VnA, VnB, VnSel,
                      ImmBits, Inst.InputIdx, Inst.Ox, Inst.Oy,
                      Inst.Channel);
      auto It = VnTable.find(Key);
      if (It == VnTable.end())
        It = VnTable.emplace(Key, NextVn++).first;
      Vn[Inst.Dst] = It->second;
    }

    if (Stage.Code.ResultReg < F.Regs.size())
      F.Result = F.Regs[Stage.Code.ResultReg];
    else
      F.Result = RegInterval::full();
  }

  Out.Result = Root < Out.Stages.size() ? Out.Stages[Root].Result
                                        : RegInterval::full();
  return Out;
}
